(* Tests for the VCD trace writer. *)

module Ir = Rtlsat_rtl.Ir
module N = Rtlsat_rtl.Netlist
module Sim = Rtlsat_rtl.Sim
module Vcd = Rtlsat_rtl.Vcd

let check_bool = Alcotest.(check bool)

let build () =
  let c = N.create "trace" in
  let en = N.input c ~name:"en" 1 in
  let cnt = N.reg c ~name:"cnt" ~width:3 ~init:0 () in
  N.connect cnt (N.mux c ~sel:en ~t:(N.inc c cnt) ~e:cnt ());
  N.output c "cnt" cnt;
  (c, en, cnt)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_structure () =
  let c, en, _ = build () in
  let traces = Sim.run c ~inputs:[ [ (en, 1) ]; [ (en, 1) ]; [ (en, 0) ] ] in
  let vcd = Vcd.to_string c traces in
  List.iter
    (fun s -> check_bool ("has " ^ s) true (contains vcd s))
    [
      "$timescale"; "$scope module trace"; "$var wire 1"; "$var wire 3";
      " en "; " cnt "; "$enddefinitions"; "#0"; "#1"; "#2"; "#3";
    ]

let test_values_and_changes () =
  let c, en, _ = build () in
  let traces = Sim.run c ~inputs:[ [ (en, 1) ]; [ (en, 1) ]; [ (en, 1) ] ] in
  let vcd = Vcd.to_string c traces in
  (* cnt counts 0,1,2: binary dumps present *)
  check_bool "b000" true (contains vcd "b000 ");
  check_bool "b001" true (contains vcd "b001 ");
  check_bool "b010" true (contains vcd "b010 ");
  (* en is constant 1 after #0: only one change record for it *)
  let count_sub sub =
    let n = String.length vcd and m = String.length sub in
    let rec go i acc =
      if i + m > n then acc
      else go (i + 1) (if String.sub vcd i m = sub then acc + 1 else acc)
    in
    go 0 0
  in
  (* identifier of the first var (en) is '!' *)
  check_bool "en dumped once" true (count_sub "1!" = 1)

let test_node_selection () =
  let c, en, cnt = build () in
  let traces = Sim.run c ~inputs:[ [ (en, 1) ] ] in
  let vcd = Vcd.to_string ~nodes:[ cnt ] c traces in
  check_bool "cnt present" true (contains vcd " cnt ");
  check_bool "en absent" false (contains vcd " en ")

let test_to_file () =
  let c, en, _ = build () in
  let traces = Sim.run c ~inputs:[ [ (en, 1) ] ] in
  let path = Filename.temp_file "rtlsat" ".vcd" in
  Vcd.to_file c traces path;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  check_bool "non-empty file" true (len > 100)

let test_ident_uniqueness () =
  (* the base-94 identifier encoding must be injective over a big range *)
  let c = N.create "many" in
  let nodes =
    List.init 300 (fun i -> N.input c ~name:(Printf.sprintf "i%d" i) 1)
  in
  let traces = Sim.run c ~inputs:[ List.map (fun n -> (n, 0)) nodes ] in
  let vcd = Vcd.to_string c traces in
  (* every var declaration line must be distinct *)
  let decls =
    String.split_on_char '\n' vcd
    |> List.filter (fun l -> String.length l > 4 && String.sub l 0 4 = "$var")
  in
  let uniq = List.sort_uniq compare decls in
  Alcotest.(check int) "unique declarations" (List.length decls) (List.length uniq)

let () =
  Alcotest.run "vcd"
    [
      ( "vcd",
        [
          Alcotest.test_case "document structure" `Quick test_structure;
          Alcotest.test_case "values and change records" `Quick test_values_and_changes;
          Alcotest.test_case "node selection" `Quick test_node_selection;
          Alcotest.test_case "to_file" `Quick test_to_file;
          Alcotest.test_case "identifier uniqueness" `Quick test_ident_uniqueness;
        ] );
    ]
