(* Tests for the exporters: SMT-LIB 2 and DIMACS. *)

module Ir = Rtlsat_rtl.Ir
module N = Rtlsat_rtl.Netlist
module Smtlib = Rtlsat_rtl.Smtlib
module BB = Rtlsat_baselines.Bitblast
module Registry = Rtlsat_itc99.Registry
module Unroll = Rtlsat_bmc.Unroll
module Bmc = Rtlsat_bmc.Bmc

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let build () =
  let c = N.create "exp" in
  let a = N.input c ~name:"a" 4 in
  let b = N.input c ~name:"b" 4 in
  let gtb = N.gt c a b in
  let z = N.mux c ~name:"z" ~sel:gtb ~t:(N.add c a b) ~e:(N.sub c a b) () in
  N.output c "z" z;
  (c, a, z)

(* ---- SMT-LIB ---- *)

let test_smtlib_structure () =
  let c, _, z = build () in
  let script = Smtlib.export ~assumes:[ (z, 9) ] c in
  List.iter
    (fun s -> check_bool ("has " ^ s) true (contains script s))
    [
      "(set-logic QF_BV)"; "(declare-const a (_ BitVec 4))";
      "(declare-const b (_ BitVec 4))"; "(define-fun z () (_ BitVec 4)";
      "bvadd"; "bvsub"; "bvugt"; "(assert (= z (_ bv9 4)))"; "(check-sat)";
    ]

let test_smtlib_balanced_parens () =
  List.iter
    (fun name ->
       let inst = Registry.instance ~circuit:name ~prop:(List.hd (Registry.properties name)) ~bound:4 in
       let combo = Unroll.combo inst.Bmc.unrolled in
       let script =
         Smtlib.export ~assumes:[ (inst.Bmc.violation, 1) ] combo
       in
       let depth = ref 0 and min_depth = ref 0 in
       String.iter
         (fun ch ->
            if ch = '(' then incr depth
            else if ch = ')' then begin
              decr depth;
              if !depth < !min_depth then min_depth := !depth
            end)
         script;
       check_int (name ^ " balanced") 0 !depth;
       check_int (name ^ " never negative") 0 !min_depth)
    Registry.circuits

let test_smtlib_every_op () =
  (* all operators export without raising and reference defined symbols *)
  let c = N.create "ops" in
  let a = N.input c ~name:"a" 4 and b = N.input c ~name:"b" 4 in
  let s1 = N.input c ~name:"s" 1 in
  let nodes =
    [
      N.add c a b; N.add_ext c a b; N.sub c a b; N.mul_const c 5 a;
      N.concat c ~hi:a ~lo:b; N.extract c a ~msb:2 ~lsb:1; N.zext c a ~width:6;
      N.shl c a 2; N.shr c a 1; N.bitand c a b; N.bitor c a b; N.bitxor c a b;
      N.mux c ~sel:s1 ~t:a ~e:b ();
    ]
  in
  let cmps = List.map (fun op -> N.cmp c op a b) [ Ir.Eq; Ir.Ne; Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge ] in
  List.iteri (fun i n -> N.output c (string_of_int i) n) (nodes @ cmps);
  let script = Smtlib.export c in
  List.iter
    (fun kw -> check_bool ("mentions " ^ kw) true (contains script kw))
    [ "bvadd"; "bvsub"; "bvmul"; "concat"; "extract"; "zero_extend"; "bvlshr";
      "bvand"; "bvor"; "bvxor"; "bvult"; "bvule"; "bvugt"; "bvuge"; "distinct" ]

let test_smtlib_rejects () =
  let c = N.create "seq" in
  let r = N.reg c ~width:2 ~init:0 () in
  N.connect r r;
  Alcotest.check_raises "sequential"
    (Invalid_argument "Smtlib.export: sequential circuit (unroll first)")
    (fun () -> ignore (Smtlib.export c));
  let c, _, z = build () in
  Alcotest.check_raises "range"
    (Invalid_argument "Smtlib.export: assumption out of range") (fun () ->
        ignore (Smtlib.export ~assumes:[ (z, 99) ] c))

(* ---- DIMACS ---- *)

let test_dimacs_header_and_shape () =
  let c, _, z = build () in
  let bb = BB.encode c in
  BB.assume_interval bb z (Rtlsat_interval.Interval.point 9);
  let text = BB.to_dimacs bb in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  (match lines with
   | comment :: header :: rest ->
     check_bool "comment" true (String.length comment > 0 && comment.[0] = 'c');
     (match String.split_on_char ' ' header with
      | [ "p"; "cnf"; nv; nc ] ->
        let nv = int_of_string nv and nc = int_of_string nc in
        check_bool "vars positive" true (nv > 0);
        check_int "clause count matches body" nc (List.length rest);
        (* every clause line ends with 0 and stays within var bounds *)
        List.iter
          (fun line ->
             let toks = String.split_on_char ' ' line |> List.filter (( <> ) "") in
             let last = List.nth toks (List.length toks - 1) in
             check_bool "terminated" true (last = "0");
             List.iter
               (fun tk ->
                  let v = abs (int_of_string tk) in
                  check_bool "var in range" true (v <= nv))
               toks)
          rest
      | _ -> Alcotest.fail "bad header")
   | _ -> Alcotest.fail "too short")

let test_dimacs_roundtrip_verdict () =
  (* brute-force the exported CNF and compare with the solver verdict *)
  let c = N.create "tiny" in
  let a = N.input c ~name:"a" 2 in
  let p = N.eq_const c a 3 in
  N.output c "p" p;
  let bb = BB.encode c in
  BB.assume_bool bb p true;
  let text = BB.to_dimacs bb in
  (* parse back *)
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "" && l.[0] <> 'c' && l.[0] <> 'p') in
  let clauses =
    List.map
      (fun l ->
         String.split_on_char ' ' l
         |> List.filter (( <> ) "")
         |> List.map int_of_string
         |> List.filter (( <> ) 0))
      lines
  in
  let nv =
    List.fold_left (fun acc cl -> List.fold_left (fun a l -> max a (abs l)) acc cl) 0 clauses
  in
  check_bool "small enough to brute force" true (nv <= 20);
  let sat = ref false in
  for m = 0 to (1 lsl nv) - 1 do
    if not !sat then begin
      let value l =
        let bit = (m lsr (abs l - 1)) land 1 = 1 in
        if l > 0 then bit else not bit
      in
      if List.for_all (fun cl -> List.exists value cl) clauses then sat := true
    end
  done;
  check_bool "dimacs verdict = solver verdict" true (!sat = (BB.solve bb = BB.Sat))

let () =
  Alcotest.run "export"
    [
      ( "smtlib",
        [
          Alcotest.test_case "structure" `Quick test_smtlib_structure;
          Alcotest.test_case "balanced parens on benchmarks" `Quick
            test_smtlib_balanced_parens;
          Alcotest.test_case "every operator" `Quick test_smtlib_every_op;
          Alcotest.test_case "rejections" `Quick test_smtlib_rejects;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "header and clause shape" `Quick
            test_dimacs_header_and_shape;
          Alcotest.test_case "verdict round-trip" `Quick test_dimacs_roundtrip_verdict;
        ] );
    ]
