test/test_bmc.mli:
