test/test_baselines.ml: Alcotest Array List Printf QCheck QCheck_alcotest Random Result Rtlsat_baselines Rtlsat_constr Rtlsat_core Rtlsat_interval Rtlsat_rtl Unix
