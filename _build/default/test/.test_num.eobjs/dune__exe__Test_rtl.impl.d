test/test_rtl.ml: Alcotest Array Format List Printf Rtlsat_rtl String
