test/test_sat.ml: Alcotest Array Buffer Format List Printf QCheck QCheck_alcotest Rtlsat_sat String Unix
