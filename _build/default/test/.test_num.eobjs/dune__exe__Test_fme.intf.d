test/test_fme.mli:
