test/test_itc99.ml: Alcotest List Printf Random Rtlsat_bmc Rtlsat_harness Rtlsat_itc99 Rtlsat_rtl
