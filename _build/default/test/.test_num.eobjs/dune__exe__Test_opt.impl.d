test/test_opt.ml: Alcotest List Printf QCheck QCheck_alcotest Random Rtlsat_bmc Rtlsat_itc99 Rtlsat_rtl
