test/test_vcd.ml: Alcotest Filename List Printf Rtlsat_rtl String Sys
