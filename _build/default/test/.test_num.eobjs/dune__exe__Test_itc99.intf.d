test/test_itc99.mli:
