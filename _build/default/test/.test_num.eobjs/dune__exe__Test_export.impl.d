test/test_export.ml: Alcotest List Rtlsat_baselines Rtlsat_bmc Rtlsat_interval Rtlsat_itc99 Rtlsat_rtl String
