test/test_bmc.ml: Alcotest Array List Printf Rtlsat_bmc Rtlsat_constr Rtlsat_core Rtlsat_rtl
