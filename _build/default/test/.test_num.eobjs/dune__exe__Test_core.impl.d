test/test_core.ml: Alcotest Array List Option QCheck QCheck_alcotest Random Result Rtlsat_constr Rtlsat_core Rtlsat_interval Rtlsat_rtl Unix
