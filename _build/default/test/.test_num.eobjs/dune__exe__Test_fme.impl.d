test/test_fme.ml: Alcotest Array Format List Printf QCheck QCheck_alcotest Rtlsat_fme Rtlsat_num String
