test/test_constr.ml: Alcotest Array Hashtbl List QCheck QCheck_alcotest Random Result Rtlsat_constr Rtlsat_interval Rtlsat_rtl
