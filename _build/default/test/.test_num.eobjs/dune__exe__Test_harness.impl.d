test/test_harness.ml: Alcotest Array Buffer Format List Option Printf Random Rtlsat_bmc Rtlsat_constr Rtlsat_core Rtlsat_harness Rtlsat_itc99 Rtlsat_rtl String
