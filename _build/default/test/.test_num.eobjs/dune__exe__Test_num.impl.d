test/test_num.ml: Alcotest List Printf QCheck QCheck_alcotest Rtlsat_num
