test/test_text.ml: Alcotest List Printf QCheck QCheck_alcotest Random Rtlsat_itc99 Rtlsat_rtl String
