test/test_interval.ml: Alcotest List QCheck QCheck_alcotest Rtlsat_interval Seq String
