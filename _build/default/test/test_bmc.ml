(* Tests for the unroller and BMC instance construction. *)

module Ir = Rtlsat_rtl.Ir
module N = Rtlsat_rtl.Netlist
module Sim = Rtlsat_rtl.Sim
module Unroll = Rtlsat_bmc.Unroll
module Bmc = Rtlsat_bmc.Bmc
module E = Rtlsat_constr.Encode
module Solver = Rtlsat_core.Solver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* gated 3-bit counter with a comparator output *)
let build_counter () =
  let c = N.create "cnt" in
  let en = N.input c ~name:"en" 1 in
  let cnt = N.reg c ~name:"cnt" ~width:3 ~init:0 () in
  N.connect cnt (N.mux c ~sel:en ~t:(N.inc c cnt) ~e:cnt ());
  let at5 = N.eq_const c cnt 5 in
  N.output c "at5" at5;
  (c, en, cnt, at5)

let test_unroll_structure () =
  let c, en, cnt, _ = build_counter () in
  let u = Unroll.unroll c ~frames:4 in
  check_int "frames" 4 (Unroll.frames u);
  (* 4 copies of the input *)
  check_int "inputs" 4 (List.length (Ir.inputs (Unroll.combo u)));
  check_int "no regs" 0 (List.length (Ir.regs (Unroll.combo u)));
  (* frame 0 register is the reset constant *)
  (match (Unroll.node_at u cnt 0).Ir.op with
   | Ir.Const 0 -> ()
   | _ -> Alcotest.fail "frame-0 register should be the reset constant");
  check_bool "input_at works" true (Ir.is_bool (Unroll.input_at u en 2))

let test_unroll_matches_sequential_sim () =
  (* evaluate the unrolled combinational circuit on a concrete input
     trace and compare every frame against the sequential simulator *)
  let c, en, cnt, at5 = build_counter () in
  let frames = 9 in
  let u = Unroll.unroll c ~frames in
  let trace = [ 1; 1; 0; 1; 1; 1; 0; 1; 1 ] in
  let combo = Unroll.combo u in
  let combo_inputs =
    List.mapi (fun f v -> (Unroll.input_at u en f, v)) trace
  in
  let combo_vals = Sim.eval combo (Sim.initial_state combo) ~inputs:combo_inputs in
  let seq_traces = Sim.run c ~inputs:(List.map (fun v -> [ (en, v) ]) trace) in
  List.iteri
    (fun f vals ->
       check_int
         (Printf.sprintf "cnt frame %d" f)
         (Sim.value vals cnt)
         (Sim.value combo_vals (Unroll.node_at u cnt f));
       check_int
         (Printf.sprintf "at5 frame %d" f)
         (Sim.value vals at5)
         (Sim.value combo_vals (Unroll.node_at u at5 f)))
    seq_traces

let test_unroll_rejects () =
  let c = N.create "bad" in
  let _ = N.reg c ~width:2 ~init:0 () in
  Alcotest.check_raises "unconnected"
    (Invalid_argument "Unroll.unroll: unconnected register") (fun () ->
        ignore (Unroll.unroll c ~frames:2));
  let c2, _, _, _ = build_counter () in
  Alcotest.check_raises "frames<1" (Invalid_argument "Unroll.unroll: frames < 1")
    (fun () -> ignore (Unroll.unroll c2 ~frames:0))

let solve_instance inst =
  let enc = E.encode (Unroll.combo inst.Bmc.unrolled) in
  E.assume_bool enc inst.Bmc.violation true;
  let { Solver.result; _ } = Solver.solve enc in
  (enc, result)

let test_bmc_final_semantics () =
  (* prop: cnt ≠ 5, final-frame semantics — the counter can reach 5
     first at frame 5, so bounds ≤ 5 are UNSAT, bound 6 is SAT *)
  let c, _, cnt, _ = build_counter () in
  let prop = N.ne c cnt (N.const c ~width:3 5) in
  let inst_u = Bmc.make c ~prop ~bound:5 () in
  let _, r = solve_instance inst_u in
  check_bool "bound 5 unsat" true (r = Solver.Unsat);
  let inst_s = Bmc.make c ~prop ~bound:6 () in
  let enc, r = solve_instance inst_s in
  (match r with
   | Solver.Sat m ->
     check_bool "witness replays" true
       (Bmc.witness_ok inst_s (fun n -> m.(E.var enc n)))
   | _ -> Alcotest.fail "bound 6 should be sat")

let test_bmc_any_semantics () =
  (* with Any semantics, every bound >= 6 is satisfiable *)
  let c, _, cnt, _ = build_counter () in
  let prop = N.ne c cnt (N.const c ~width:3 5) in
  let inst = Bmc.make c ~prop ~bound:8 ~semantics:Bmc.Any () in
  let enc, r = solve_instance inst in
  match r with
  | Solver.Sat m ->
    check_bool "witness replays" true (Bmc.witness_ok inst (fun n -> m.(E.var enc n)))
  | _ -> Alcotest.fail "expected sat"

let test_bmc_never_semantics () =
  (* guarantee: "cnt reaches 5 at least once within k" — violated when
     the enable can be held low, so the instance is SAT *)
  let c, _, cnt, _ = build_counter () in
  let reached = N.eq_const c cnt 5 in
  let inst = Bmc.make c ~prop:reached ~bound:8 ~semantics:Bmc.Never () in
  let enc, r = solve_instance inst in
  (match r with
   | Solver.Sat m ->
     check_bool "witness replays" true (Bmc.witness_ok inst (fun n -> m.(E.var enc n)))
   | _ -> Alcotest.fail "expected sat (hold enable low)");
  (* a guarantee that cannot be dodged: cnt equals 0 at frame 0 *)
  let zero = N.eq_const c cnt 0 in
  let inst = Bmc.make c ~prop:zero ~bound:3 ~semantics:Bmc.Never () in
  let _, r = solve_instance inst in
  check_bool "unsat" true (r = Solver.Unsat)

let test_witness_rejects_bogus () =
  let c, _, cnt, _ = build_counter () in
  let prop = N.ne c cnt (N.const c ~width:3 5) in
  let inst = Bmc.make c ~prop ~bound:6 () in
  (* all-zero inputs never reach 5 *)
  check_bool "bogus rejected" false (Bmc.witness_ok inst (fun _ -> 0))

let () =
  Alcotest.run "bmc"
    [
      ( "unroll",
        [
          Alcotest.test_case "structure" `Quick test_unroll_structure;
          Alcotest.test_case "matches sequential sim" `Quick
            test_unroll_matches_sequential_sim;
          Alcotest.test_case "rejects bad input" `Quick test_unroll_rejects;
        ] );
      ( "bmc",
        [
          Alcotest.test_case "final semantics boundary" `Quick test_bmc_final_semantics;
          Alcotest.test_case "any semantics" `Quick test_bmc_any_semantics;
          Alcotest.test_case "never (bounded guarantee)" `Quick test_bmc_never_semantics;
          Alcotest.test_case "witness validation" `Quick test_witness_rejects_bogus;
        ] );
    ]
