(* Bounded model checking tour: check safety properties of the
   reconstructed ITC'99 b04 (running min/max) and print a
   counterexample trace for a violable one.

   This is the workload of the paper's evaluation: unroll the RTL,
   assert a property violation, and hand the hybrid problem to the
   engines. *)

module Ir = Rtlsat_rtl.Ir
module N = Rtlsat_rtl.Netlist
module Sim = Rtlsat_rtl.Sim
module E = Rtlsat_constr.Encode
module Unroll = Rtlsat_bmc.Unroll
module Bmc = Rtlsat_bmc.Bmc
module Registry = Rtlsat_itc99.Registry
module Solver = Rtlsat_core.Solver
module Engines = Rtlsat_harness.Engines

let check circuit prop bound =
  let label = Registry.instance_name ~circuit ~prop ~bound in
  let inst = Registry.instance ~circuit ~prop ~bound in
  let enc = E.encode (Unroll.combo inst.Bmc.unrolled) in
  E.assume_bool enc inst.Bmc.violation true;
  let { Solver.result; stats; _ } = Solver.solve ~options:Solver.hdpll_sp enc in
  (match result with
   | Solver.Unsat ->
     Format.printf "%-12s holds up to bound %d (UNSAT, %d conflicts)@." label
       bound stats.Solver.conflicts
   | Solver.Timeout -> Format.printf "%-12s timeout@." label
   | Solver.Sat m ->
     Format.printf "%-12s VIOLATED at frame %d — counterexample:@." label (bound - 1);
     let value n = m.(E.var enc n) in
     assert (Bmc.witness_ok inst value);
     (* print the input trace *)
     let src = inst.Bmc.source in
     List.iteri
       (fun f _ ->
          let ins =
            List.map
              (fun n ->
                 Printf.sprintf "%s=%d" (Ir.node_name n)
                   (value (Unroll.input_at inst.Bmc.unrolled n f)))
              (Ir.inputs src)
          in
          Format.printf "    cycle %2d: %s@." f (String.concat " " ins))
       (List.init bound (fun f -> f)));
  Format.printf "@."

let () =
  Format.printf "== BMC of the reconstructed ITC'99 b04 ==@.@.";
  (* the RMAX >= RMIN invariant holds *)
  check "b04" "1" 8;
  (* the full spread is reachable: counterexample printed *)
  check "b04" "2" 5;
  Format.printf "== and the paper's satisfiable b13 row ==@.@.";
  check "b13" "40" 13
