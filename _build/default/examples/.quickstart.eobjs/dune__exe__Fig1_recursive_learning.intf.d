examples/fig1_recursive_learning.mli:
