examples/bmc_tour.mli:
