examples/fig2_predicate_learning.mli:
