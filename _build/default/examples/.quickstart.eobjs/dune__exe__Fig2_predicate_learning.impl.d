examples/fig2_predicate_learning.ml: Format List Rtlsat_constr Rtlsat_core Rtlsat_rtl
