examples/induction_tour.mli:
