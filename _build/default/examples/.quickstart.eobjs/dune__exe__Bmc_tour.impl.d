examples/bmc_tour.ml: Array Format List Printf Rtlsat_bmc Rtlsat_constr Rtlsat_core Rtlsat_harness Rtlsat_itc99 Rtlsat_rtl String
