examples/induction_tour.ml: Format List Rtlsat_harness Rtlsat_itc99 Unix
