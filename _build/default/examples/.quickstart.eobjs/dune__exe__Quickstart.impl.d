examples/quickstart.ml: Array Format Rtlsat_constr Rtlsat_core Rtlsat_interval Rtlsat_rtl
