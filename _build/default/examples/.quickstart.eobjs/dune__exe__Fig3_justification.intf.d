examples/fig3_justification.mli:
