examples/quickstart.mli:
