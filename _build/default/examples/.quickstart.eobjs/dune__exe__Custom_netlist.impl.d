examples/custom_netlist.ml: Array Filename Format List Rtlsat_bmc Rtlsat_constr Rtlsat_core Rtlsat_rtl String
