examples/fig1_recursive_learning.ml: Format List Rtlsat_constr Rtlsat_core Rtlsat_rtl
