(* Working with external circuits: parse a textual netlist, check a
   property, export the instance for other solvers, and dump a VCD
   counterexample.

   The same flow is available from the command line:
     rtlsat check my.rtl -p safe -k 12 --vcd cex.vcd
     rtlsat export -c b04 -p 1 -k 20 --format smt2 *)

module Ir = Rtlsat_rtl.Ir
module N = Rtlsat_rtl.Netlist
module Text = Rtlsat_rtl.Text
module Sim = Rtlsat_rtl.Sim
module Vcd = Rtlsat_rtl.Vcd
module Smtlib = Rtlsat_rtl.Smtlib
module Bmc = Rtlsat_bmc.Bmc
module Unroll = Rtlsat_bmc.Unroll
module E = Rtlsat_constr.Encode
module Solver = Rtlsat_core.Solver

let netlist =
  {|# a pulse generator that must never fire twice in a row
circuit pulser
input trigger 1
reg armed 1 1
reg fire 1 0
node want = and trigger armed
node rearm = not fire
connect fire want
connect armed rearm
node fire2 = and fire fire
node safe = not fire2   # claim: fire is never high (wrong!)
output safe safe
output fire fire
|}

let () =
  Format.printf "== parsing and checking an external netlist ==@.@.";
  let c = Text.parse netlist in
  Format.printf "parsed circuit %s: %d nodes@.@." c.Ir.cname c.Ir.ncount;

  let prop = N.find_output c "safe" in
  let bound = 4 in
  let inst = Bmc.make c ~prop ~bound ~semantics:Bmc.Any () in
  let enc = E.encode (Unroll.combo inst.Bmc.unrolled) in
  E.assume_bool enc inst.Bmc.violation true;
  (match (Solver.solve ~options:Solver.hdpll_sp enc).Solver.result with
   | Solver.Unsat -> Format.printf "property holds within %d frames@." bound
   | Solver.Timeout -> Format.printf "timeout@."
   | Solver.Sat m ->
     let value n = m.(E.var enc n) in
     assert (Bmc.witness_ok inst value);
     Format.printf "property violated — replaying the counterexample:@.";
     let inputs_at f =
       List.map
         (fun n -> (n, value (Unroll.input_at inst.Bmc.unrolled n f)))
         (Ir.inputs c)
     in
     let traces = Sim.run c ~inputs:(List.init bound inputs_at) in
     let fire = N.find_output c "fire" in
     List.iteri
       (fun f vals ->
          Format.printf "  cycle %d: trigger=%d fire=%d@." f
            (snd (List.hd (inputs_at f)))
            (Sim.value vals fire))
       traces;
     let path = Filename.temp_file "pulser" ".vcd" in
     Vcd.to_file c traces path;
     Format.printf "VCD written to %s (%d bytes)@." path
       (let ic = open_in path in
        let n = in_channel_length ic in
        close_in ic;
        n));

  Format.printf "@.== exporting the same instance as SMT-LIB 2 ==@.@.";
  let combo = Unroll.combo inst.Bmc.unrolled in
  let script = Smtlib.export ~assumes:[ (inst.Bmc.violation, 1) ] combo in
  let preview = String.split_on_char '\n' script in
  List.iteri (fun i l -> if i < 6 then Format.printf "  %s@." l) preview;
  Format.printf "  ... (%d lines total)@." (List.length preview)
