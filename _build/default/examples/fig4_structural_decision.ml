(* Figure 4 of the paper: structural decision making in an RTL
   circuit.

   w4 = mux(b1, w2, w3) and w3 = mux(b2, 6, w1), with w2 in <6,7> and
   the proposition w4 = 5.  The paper's trace is

     J-frontier {w4=<5>}:  w4 ∩ w2 = ∅  ⇒ decide b1 = 0
     J-frontier {w3=<5>}:  <6> ∩ w3 = ∅ ⇒ decide b2 = 0
     J-frontier empty      ⇒ arithmetic solver certifies SATISFIABLE

   Our interval propagator implements the mux disjointness rule
   directly, so in this exact setting the two "decisions" fall out as
   implications; the second scenario keeps both mux inputs viable and
   shows a genuine justification decision being made. *)

module N = Rtlsat_rtl.Netlist
module E = Rtlsat_constr.Encode
module I = Rtlsat_interval.Interval
module State = Rtlsat_core.State
module Propagate = Rtlsat_core.Propagate
module Justify = Rtlsat_core.Justify
module Solver = Rtlsat_core.Solver

let build () =
  let c = N.create "fig4" in
  let w1 = N.input c ~name:"w1" 3 in
  let w2 = N.input c ~name:"w2" 3 in
  let b1 = N.input c ~name:"b1" 1 in
  let b2 = N.input c ~name:"b2" 1 in
  let w3 = N.mux c ~name:"w3" ~sel:b2 ~t:(N.const c ~width:3 6) ~e:w1 () in
  let w4 = N.mux c ~name:"w4" ~sel:b1 ~t:w2 ~e:w3 () in
  let prop = N.eq_const c w4 5 in
  N.output c "prop" prop;
  (c, w1, w2, b1, b2, w3, w4, prop)

let run_trace ~w2_range title =
  let c, w1, w2, b1, b2, w3, w4, prop = build () in
  let enc = E.encode c in
  E.assume_bool enc prop true;
  E.assume_interval enc w2 w2_range;
  let s = State.create enc.E.problem in
  let j = Justify.create enc in
  let dom n = I.to_string (State.dom s (E.var enc n)) in
  let sel n =
    match State.bool_value s (E.var enc n) with
    | -1 -> "free" | v -> string_of_int v
  in
  Format.printf "%s@." title;
  Format.printf "HDPLL setup : w2 = %s, w3 = <0,7>, w1 = <0,7>@."
    (I.to_string w2_range);
  (match Propagate.run ~full:true s with
   | None -> ()
   | Some _ -> failwith "conflict");
  Format.printf "Imply proposition : w4 = %s, w3 = %s, w1 = %s, b1 = %s, b2 = %s@."
    (dom w4) (dom w3) (dom w1) (sel b1) (sel b2);
  let rec go step =
    match Justify.decide j s with
    | Some atom ->
      Format.printf "Decide() : %a   (justification)@." (State.pp_atom s) atom;
      State.new_level s;
      State.assert_atom s atom None;
      (match Propagate.run s with
       | None ->
         Format.printf "Imply decision : w4 = %s, w3 = %s, w1 = %s@."
           (dom w4) (dom w3) (dom w1);
         go (step + 1)
       | Some _ -> failwith "unexpected conflict")
    | None -> Format.printf "Decide() : J-frontier empty -> arithmetic solver@."
  in
  go 1;
  let { Solver.result; _ } = Solver.solve ~options:Solver.hdpll_s enc in
  (match result with
   | Solver.Sat m ->
     Format.printf "HDPLL : SATISFIABLE (w1=%d w2=%d b1=%d b2=%d w4=%d)@.@."
       m.(E.var enc w1) m.(E.var enc w2) m.(E.var enc b1) m.(E.var enc b2)
       m.(E.var enc w4)
   | _ -> failwith "expected satisfiable")

let () =
  run_trace ~w2_range:(I.make 6 7)
    "== the paper's setting: w4 ∩ w2 = ∅, selects fall out by the\n\
     disjointness rule of the mux propagator ==";
  run_trace ~w2_range:(I.make 4 7)
    "== both mux inputs viable: the J-frontier forces a genuine\n\
     structural decision ==";
  Format.printf "matching the reasoning of Figure 4(b).@."
