(* Figure 2 of the paper: predicate-based learning in an RTL circuit
   (a fragment in the style of ITC'99 b04).

   Two AND gates b5 = b0 & b1 and b6 = b0 & b2 share the comparator
   predicates b1, b2 on the same data-path word w1, and feed the OR
   gates b8 = b5 | b7 and b9 = b6 | b7 that select two muxes.  Static
   predicate learning extended with interval constraint propagation
   discovers the cross-signal relations of Figure 2(b):

     b5=0 -> b6=0,  b6=0 -> b5=0,  b8=1 -> b9=1,  b9=1 -> b8=1.  *)

module N = Rtlsat_rtl.Netlist
module Ir = Rtlsat_rtl.Ir
module E = Rtlsat_constr.Encode
module P = Rtlsat_constr.Problem
module T = Rtlsat_constr.Types
module State = Rtlsat_core.State
module Propagate = Rtlsat_core.Propagate
module PL = Rtlsat_core.Predicate_learning

let () =
  let c = N.create "fig2" in
  let w0 = N.input c ~name:"w0" 3 in
  let w1 = N.input c ~name:"w1" 3 in
  let w3 = N.input c ~name:"w3" 3 in
  let w4 = N.input c ~name:"w4" 3 in
  let b0 = N.input c ~name:"b0" 1 in
  let b7 = N.input c ~name:"b7" 1 in
  let zero = N.const c ~width:3 0 in
  (* two comparator instances over the same word: the data-path
     correlation the procedure must discover *)
  let b1 = N.cmp c ~name:"b1" Ir.Gt w1 zero in
  let b2 = N.cmp c ~name:"b2" Ir.Gt w1 (N.const c ~width:3 0) in
  let b5 = N.and_ c ~name:"b5" [ b0; b1 ] in
  let b6 = N.and_ c ~name:"b6" [ b0; b2 ] in
  let b8 = N.or_ c ~name:"b8" [ b5; b7 ] in
  let b9 = N.or_ c ~name:"b9" [ b6; b7 ] in
  let w5 = N.mux c ~name:"w5" ~sel:b8 ~t:w3 ~e:w0 () in
  let w6 = N.mux c ~name:"w6" ~sel:b9 ~t:w4 ~e:w0 () in
  N.output c "w5" w5;
  N.output c "w6" w6;

  let enc = E.encode c in
  let s = State.create enc.E.problem in
  (match Propagate.run ~full:true s with
   | None -> ()
   | Some _ -> failwith "unexpected root conflict");

  Format.printf "Figure 2: predicate-based learning on the RTL fragment@.@.";
  (* the default threshold is the candidate count; raise it so the
     deeper OR gates are also probed *)
  let summary = PL.run ~threshold:50 s enc in
  Format.printf "relations learned: %d, probes: %d@.@." summary.PL.relations
    summary.PL.probes;

  (* verify the four relations of Figure 2(b) by probing *)
  let implies trigger_node trigger_val target_node =
    State.new_level s;
    State.assert_atom s
      (if trigger_val then T.Pos (E.var enc trigger_node)
       else T.Neg (E.var enc trigger_node))
      None;
    let ok =
      match Propagate.run s with
      | Some _ -> None
      | None -> Some (State.bool_value s (E.var enc target_node))
    in
    State.backtrack_to s 0;
    ok
  in
  let show (trig, tv, tgt, expect, label) =
    match implies trig tv tgt with
    | Some v when v = expect -> Format.printf "  learned  %s@." label
    | _ -> Format.printf "  MISSING  %s@." label
  in
  List.iter show
    [
      (b5, false, b6, 0, "b5=0 -> b6=0   i.e. (b5 | !b6)");
      (b6, false, b5, 0, "b6=0 -> b5=0   i.e. (b6 | !b5)");
      (b8, true, b9, 1, "b8=1 -> b9=1   i.e. (!b8 | b9)");
      (b9, true, b8, 1, "b9=1 -> b8=1   i.e. (!b9 | b8)");
    ];
  Format.printf
    "@.This captures (w5 = w3) -> (w6 = w4) and (w5 = w0) -> (w6 = w0):@.";
  Format.printf
    "part of the correlation between the data-path signals, as in §3.@."
