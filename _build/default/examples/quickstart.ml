(* Quickstart: build an RTL circuit, encode it, and check a property
   with the hybrid solver.

   The circuit computes z = (a > b) ? a+b : a-b over 4-bit words; we
   ask whether z can equal 9 while a > b, and read the witness back. *)

module N = Rtlsat_rtl.Netlist
module E = Rtlsat_constr.Encode
module I = Rtlsat_interval.Interval
module Solver = Rtlsat_core.Solver

let () =
  (* 1. describe the RTL *)
  let c = N.create "quickstart" in
  let a = N.input c ~name:"a" 4 in
  let b = N.input c ~name:"b" 4 in
  let a_gt_b = N.gt c a b in
  let z = N.mux c ~sel:a_gt_b ~t:(N.add c a b) ~e:(N.sub c a b) () in
  N.output c "z" z;

  (* 2. encode to hybrid constraints and state the proposition *)
  let enc = E.encode c in
  E.assume_interval enc z (I.point 9);
  E.assume_bool enc a_gt_b true;

  (* 3. solve with the structural strategy + predicate learning *)
  let { Solver.result; stats; _ } = Solver.solve ~options:Solver.hdpll_sp enc in
  (match result with
   | Solver.Sat m ->
     Format.printf "SATISFIABLE: a=%d b=%d z=%d@." m.(E.var enc a) m.(E.var enc b)
       m.(E.var enc z)
   | Solver.Unsat -> Format.printf "UNSATISFIABLE@."
   | Solver.Timeout -> Format.printf "TIMEOUT@.");
  Format.printf "decisions=%d conflicts=%d propagations=%d@."
    stats.Solver.decisions stats.Solver.conflicts stats.Solver.propagations
