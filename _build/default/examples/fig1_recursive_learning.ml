(* Figure 1 of the paper: recursive learning on a Boolean circuit.

   e = c | d with c = a & b and d = b & a.  Satisfying e = 1 requires
   c = 1 or d = 1; both ways imply a = 1 and b = 1, so level-1
   recursive learning discovers e=1 -> a=1 and e=1 -> b=1.

   (A word-level mux keeps e in the predicate cone, which is where the
   RTL variant of the procedure looks for candidates.) *)

module N = Rtlsat_rtl.Netlist
module E = Rtlsat_constr.Encode
module P = Rtlsat_constr.Problem
module T = Rtlsat_constr.Types
module State = Rtlsat_core.State
module Propagate = Rtlsat_core.Propagate
module PL = Rtlsat_core.Predicate_learning

let () =
  let c = N.create "fig1" in
  let a = N.input c ~name:"a" 1 in
  let b = N.input c ~name:"b" 1 in
  let gc = N.and_ c ~name:"c" [ a; b ] in
  let gd = N.and_ c ~name:"d" [ b; a ] in
  let e = N.or_ c ~name:"e" [ gc; gd ] in
  let w = N.input c ~name:"w" 3 in
  let z = N.mux c ~sel:e ~t:w ~e:(N.const c ~width:3 0) () in
  N.output c "z" z;

  let enc = E.encode c in
  let s = State.create enc.E.problem in
  (match Propagate.run ~full:true s with
   | None -> ()
   | Some _ -> failwith "unexpected root conflict");

  Format.printf "Figure 1: recursive learning to level 1 for e = 1@.@.";
  let before = P.n_vars enc.E.problem in
  ignore before;
  let summary = PL.run s enc in
  Format.printf "relations learned: %d (in %d probes)@." summary.PL.relations
    summary.PL.probes;

  (* show that the learned clauses give the paper's implications *)
  State.new_level s;
  State.assert_atom s (T.Pos (E.var enc e)) None;
  (match Propagate.run s with
   | None -> ()
   | Some _ -> failwith "conflict");
  Format.printf "@.after asserting e = 1, unit propagation over the learned@.";
  Format.printf "clauses yields:@.";
  List.iter
    (fun (name, n) ->
       Format.printf "  %s = %d@." name (State.bool_value s (E.var enc n)))
    [ ("a", a); ("b", b); ("c", gc); ("d", gd) ];
  assert (State.bool_value s (E.var enc a) = 1);
  assert (State.bool_value s (E.var enc b) = 1);
  Format.printf "@.i.e.  e=1 -> a=1  and  e=1 -> b=1, as in Figure 1(b).@."
