(* k-induction tour: unbounded proofs on top of the BMC substrate.

   Bounded model checking (the paper's workload) only covers a finite
   number of frames; k-induction extends the engines to proofs over
   all reachable states.  Base case: no violation within k frames
   from reset.  Step case: from an arbitrary state, k good frames
   cannot be followed by a bad one. *)

module Registry = Rtlsat_itc99.Registry
module Induction = Rtlsat_harness.Induction

let try_prove ?(max_k = 10) circuit prop =
  let c, props = Registry.build circuit in
  let p = List.assoc prop props in
  let t0 = Unix.gettimeofday () in
  let outcome = Induction.prove ~max_k c ~prop:p in
  let dt = Unix.gettimeofday () -. t0 in
  match outcome with
  | Induction.Proved k ->
    Format.printf "%s_%-3s PROVED      inductive at k=%d  (%.2fs)@." circuit prop k dt
  | Induction.Falsified k ->
    Format.printf "%s_%-3s FALSIFIED   counterexample of %d cycles  (%.2fs)@."
      circuit prop k dt
  | Induction.Unknown ->
    Format.printf "%s_%-3s UNKNOWN     not inductive within the budget  (%.2fs)@."
      circuit prop dt

let () =
  Format.printf "== k-induction over the benchmark suite ==@.@.";
  List.iter
    (fun (c, p) -> try_prove c p)
    [
      ("b01", "2");  (* overflow only at byte boundaries: inductive *)
      ("b02", "2");  (* acceptance flag only in state G *)
      ("b04", "1");  (* RMAX >= RMIN while running *)
      ("b04", "2");  (* spread 255 is reachable: falsified *)
      ("b06", "1");  (* ack channels mutually exclusive *)
      ("b08", "2");  (* no matches while loading *)
      ("b10", "2");  (* alarm implies saturated mismatch counter *)
      ("b13", "3");  (* receive FSM encoding *)
      ("b13", "5");  (* timeout counter saturates: 1-inductive *)
    ];
  (* a reachable violation needs 13 cycles of context *)
  try_prove ~max_k:15 "b13" "40";
  Format.printf
    "@.Properties that hold only up to a wrap-around bound (or need a@.";
  Format.printf
    "strengthening invariant) come back UNKNOWN rather than Proved:@.@.";
  try_prove "b13" "2"
