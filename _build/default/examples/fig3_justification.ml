(* Figure 3 of the paper: justification of RTL operator types
   (Definition 4.1).

   (a) A Boolean AND gate with a required 0 output and free inputs is
       un-justified: deciding either input to 0 justifies it.
   (b) A word-level mux whose required output interval <x,x> overlaps
       only some input intervals offers a choice of select values —
       the essence of RTL justification. *)

module N = Rtlsat_rtl.Netlist
module E = Rtlsat_constr.Encode
module I = Rtlsat_interval.Interval
module T = Rtlsat_constr.Types
module P = Rtlsat_constr.Problem
module State = Rtlsat_core.State
module Propagate = Rtlsat_core.Propagate
module Justify = Rtlsat_core.Justify

let pp_decision s = function
  | None -> Format.printf "  J-frontier empty: no justification needed@."
  | Some a -> Format.printf "  justification decision: %a@." (State.pp_atom s) a

let () =
  Format.printf "Figure 3(a): assign o = i1 & i2, require o = 0@.@.";
  let c = N.create "fig3a" in
  let i1 = N.input c ~name:"i1" 1 in
  let i2 = N.input c ~name:"i2" 1 in
  let o = N.and_ c ~name:"o" [ i1; i2 ] in
  N.output c "o" o;
  let enc = E.encode c in
  E.assume_bool enc o false;
  let s = State.create enc.E.problem in
  (match Propagate.run ~full:true s with None -> () | Some _ -> failwith "conflict");
  let j = Justify.create enc in
  Format.printf "  o = 0 cannot be satisfied by implication: un-justified@.";
  pp_decision s (Justify.decide j s);
  Format.printf "@.";

  Format.printf "Figure 3(b): assign o = sel ? i2 : i1, require o in <2,3>@.@.";
  let c = N.create "fig3b" in
  let i1 = N.input c ~name:"i1" 3 in      (* <0,7>: overlaps the requirement *)
  let i2 = N.input c ~name:"i2" 3 in
  let sel = N.input c ~name:"sel" 1 in
  let o = N.mux c ~name:"o" ~sel ~t:i2 ~e:i1 () in
  N.output c "o" o;
  let enc = E.encode c in
  E.assume_interval enc o (I.make 2 3);
  (* push i2 away from the requirement: only sel = 0 can work *)
  E.assume_interval enc i2 (I.make 5 7);
  let s = State.create enc.E.problem in
  (match Propagate.run ~full:true s with None -> () | Some _ -> failwith "conflict");
  Format.printf "  o in <2,3>, i2 in <5,7> (disjoint), i1 in <0,7> (overlaps)@.";
  Format.printf "  interval propagation alone already implies the select:@.";
  Format.printf "    sel = %d@."
    (State.bool_value s (E.var enc sel));

  Format.printf "@.Figure 3(b) again, both inputs viable@.@.";
  let c = N.create "fig3c" in
  let i1 = N.input c ~name:"i1" 3 in
  let i2 = N.input c ~name:"i2" 3 in
  let sel = N.input c ~name:"sel" 1 in
  let o = N.mux c ~name:"o" ~sel ~t:i2 ~e:i1 () in
  N.output c "o" o;
  let enc = E.encode c in
  E.assume_interval enc o (I.make 2 3);
  let s = State.create enc.E.problem in
  (match Propagate.run ~full:true s with None -> () | Some _ -> failwith "conflict");
  let j = Justify.create enc in
  Format.printf "  o in <2,3>, i1 and i2 both in <0,7>: a genuine choice —@.";
  pp_decision s (Justify.decide j s);
  ignore (P.n_vars enc.E.problem)
