(** Bounded model checking of safety properties — the workload
    generator for §3.1 and §5.

    A safety property is a Boolean circuit signal that must be 1 in
    every reachable cycle.  [b01_1(10)]-style instances ask for a
    counterexample within 10 time frames; the instance is satisfiable
    iff the property can be violated. *)

open Rtlsat_rtl

type semantics =
  | Final  (** violation in the last frame exactly *)
  | Any    (** violation anywhere within the bound *)
  | Never
      (** bounded guarantee: the signal must hold at least once within
          the bound; the violation is "it stays low in every frame" *)

type instance = {
  source : Ir.circuit;
  prop : Ir.node;       (** width-1 signal expected to hold (be 1) *)
  bound : int;
  semantics : semantics;
  unrolled : Unroll.t;
  violation : Ir.node;  (** Boolean node of the unrolled circuit that
                            is 1 iff the property is violated *)
}

val make : Ir.circuit -> prop:Ir.node -> bound:int -> ?semantics:semantics -> unit -> instance
(** Unrolls the circuit and builds the violation objective.  Default
    semantics: [Final]. *)

val witness_ok : instance -> (Ir.node -> int) -> bool
(** [witness_ok inst value] replays a model of the *unrolled* circuit
    (queried per unrolled node by [value]) through the sequential
    simulator and confirms that the property is indeed violated at the
    frame the semantics requires.  This validates SAT answers
    end-to-end against the RTL. *)
