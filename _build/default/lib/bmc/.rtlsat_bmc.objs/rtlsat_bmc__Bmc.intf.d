lib/bmc/bmc.mli: Ir Rtlsat_rtl Unroll
