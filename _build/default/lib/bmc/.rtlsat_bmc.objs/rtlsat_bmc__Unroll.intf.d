lib/bmc/unroll.mli: Ir Rtlsat_rtl
