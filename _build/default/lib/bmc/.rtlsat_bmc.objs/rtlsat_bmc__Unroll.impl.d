lib/bmc/unroll.ml: Array Hashtbl Ir List Netlist Option Printf Rtlsat_rtl
