lib/bmc/bmc.ml: Ir List Netlist Rtlsat_rtl Sim Unroll
