open Rtlsat_rtl

type semantics = Final | Any | Never

type instance = {
  source : Ir.circuit;
  prop : Ir.node;
  bound : int;
  semantics : semantics;
  unrolled : Unroll.t;
  violation : Ir.node;
}

let make source ~prop ~bound ?(semantics = Final) () =
  if not (Ir.is_bool prop) then invalid_arg "Bmc.make: property must be Boolean";
  let unrolled = Unroll.unroll source ~frames:bound in
  let combo = Unroll.combo unrolled in
  let violation =
    match semantics with
    | Final -> Netlist.not_ combo (Unroll.node_at unrolled prop (bound - 1))
    | Any ->
      let frames =
        List.init bound (fun f -> Netlist.not_ combo (Unroll.node_at unrolled prop f))
      in
      (match frames with
       | [ one ] -> one
       | many -> Netlist.or_ combo ~name:"violation" many)
    | Never ->
      let frames =
        List.init bound (fun f -> Netlist.not_ combo (Unroll.node_at unrolled prop f))
      in
      (match frames with
       | [ one ] -> one
       | many -> Netlist.and_ combo ~name:"violation" many)
  in
  Netlist.output combo "violation" violation;
  { source; prop; bound; semantics; unrolled; violation }

let witness_ok inst value =
  (* extract per-frame input valuations from the unrolled model *)
  let inputs_at f =
    List.map
      (fun n -> (n, value (Unroll.input_at inst.unrolled n f)))
      (Ir.inputs inst.source)
  in
  let traces =
    Sim.run inst.source ~inputs:(List.init inst.bound inputs_at)
  in
  let prop_at f = Sim.value (List.nth traces f) inst.prop in
  match inst.semantics with
  | Final -> prop_at (inst.bound - 1) = 0
  | Any ->
    let rec any f = f < inst.bound && (prop_at f = 0 || any (f + 1)) in
    any 0
  | Never ->
    let rec all f = f >= inst.bound || (prop_at f = 0 && all (f + 1)) in
    all 0
