type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length v = v.len
let is_empty v = v.len = 0

let check v i ctx = if i < 0 || i >= v.len then invalid_arg ("Vec." ^ ctx)

let get v i = check v i "get"; v.data.(i)
let set v i x = check v i "set"; v.data.(i) <- x

let grow v =
  let n = Array.length v.data in
  let data = Array.make (2 * n) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let top v = check v (v.len - 1) "top"; v.data.(v.len - 1)

let shrink v n =
  if n < 0 || n > v.len then invalid_arg "Vec.shrink";
  for i = n to v.len - 1 do v.data.(i) <- v.dummy done;
  v.len <- n

let clear v = shrink v 0

let iter f v = for i = 0 to v.len - 1 do f v.data.(i) done
let iteri f v = for i = 0 to v.len - 1 do f i v.data.(i) done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do acc := f !acc v.data.(i) done;
  !acc

let to_list v = List.init v.len (fun i -> v.data.(i))

let of_list ~dummy l =
  let v = create ~capacity:(List.length l + 1) ~dummy () in
  List.iter (push v) l;
  v
