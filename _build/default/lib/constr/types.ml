type var = int

type kind = Bool | Word of Rtlsat_interval.Interval.t

type atom =
  | Pos of var
  | Neg of var
  | Ge of var * int
  | Le of var * int

type clause = atom array

type linexpr = { terms : (int * var) list; const : int }

type constr =
  | Lin_le of linexpr
  | Lin_eq of linexpr
  | Pred of { b : var; e : linexpr }
  | Mux_w of { sel : var; t : var; e : var; z : var }

let negate_atom = function
  | Pos v -> Neg v
  | Neg v -> Pos v
  | Ge (v, k) -> Le (v, k - 1)
  | Le (v, k) -> Ge (v, k + 1)

let atom_var = function Pos v | Neg v | Ge (v, _) | Le (v, _) -> v

let default_name v = "v" ^ string_of_int v

let pp_atom ?(name = default_name) () fmt = function
  | Pos v -> Format.pp_print_string fmt (name v)
  | Neg v -> Format.fprintf fmt "!%s" (name v)
  | Ge (v, k) -> Format.fprintf fmt "[%s>=%d]" (name v) k
  | Le (v, k) -> Format.fprintf fmt "[%s<=%d]" (name v) k

let pp_clause ?(name = default_name) () fmt cl =
  Format.fprintf fmt "(";
  Array.iteri
    (fun i a ->
       if i > 0 then Format.fprintf fmt " | ";
       pp_atom ~name () fmt a)
    cl;
  Format.fprintf fmt ")"

let pp_linexpr ?(name = default_name) () fmt e =
  let first = ref true in
  let term (c, v) =
    if c <> 0 then begin
      if !first then begin
        if c = -1 then Format.fprintf fmt "-"
        else if c <> 1 then Format.fprintf fmt "%d*" c
      end
      else if c > 0 then begin
        if c = 1 then Format.fprintf fmt " + " else Format.fprintf fmt " + %d*" c
      end
      else begin
        if c = -1 then Format.fprintf fmt " - " else Format.fprintf fmt " - %d*" (-c)
      end;
      Format.pp_print_string fmt (name v);
      first := false
    end
  in
  List.iter term e.terms;
  if !first then Format.fprintf fmt "%d" e.const
  else if e.const > 0 then Format.fprintf fmt " + %d" e.const
  else if e.const < 0 then Format.fprintf fmt " - %d" (-e.const)

let pp_constr ?(name = default_name) () fmt = function
  | Lin_le e -> Format.fprintf fmt "%a <= 0" (pp_linexpr ~name ()) e
  | Lin_eq e -> Format.fprintf fmt "%a = 0" (pp_linexpr ~name ()) e
  | Pred { b; e } ->
    Format.fprintf fmt "%s <-> (%a <= 0)" (name b) (pp_linexpr ~name ()) e
  | Mux_w { sel; t; e; z } ->
    Format.fprintf fmt "%s = %s ? %s : %s" (name z) (name sel) (name t) (name e)

let le_zero e = (e.terms, e.const)

let lin_of_terms terms const =
  let tbl = Hashtbl.create 8 in
  let add (c, v) = Hashtbl.replace tbl v (c + Option.value ~default:0 (Hashtbl.find_opt tbl v)) in
  List.iter add terms;
  let merged =
    Hashtbl.fold (fun v c acc -> if c = 0 then acc else (c, v) :: acc) tbl []
  in
  let sorted = List.sort (fun (_, v1) (_, v2) -> compare v1 v2) merged in
  { terms = sorted; const }

let lin_neg e =
  { terms = List.map (fun (c, v) -> (-c, v)) e.terms; const = -e.const }

let lin_add a b = lin_of_terms (a.terms @ b.terms) (a.const + b.const)
let lin_sub a b = lin_add a (lin_neg b)

let constr_vars c =
  let vars =
    match c with
    | Lin_le e | Lin_eq e -> List.map snd e.terms
    | Pred { b; e } -> b :: List.map snd e.terms
    | Mux_w { sel; t; e; z } -> [ sel; t; e; z ]
  in
  List.sort_uniq compare vars

let eval_linexpr env e =
  List.fold_left (fun acc (c, v) -> acc + (c * env v)) e.const e.terms

let eval_atom env = function
  | Pos v -> env v = 1
  | Neg v -> env v = 0
  | Ge (v, k) -> env v >= k
  | Le (v, k) -> env v <= k

let eval_clause env cl = Array.exists (eval_atom env) cl

let eval_constr env = function
  | Lin_le e -> eval_linexpr env e <= 0
  | Lin_eq e -> eval_linexpr env e = 0
  | Pred { b; e } -> (env b = 1) = (eval_linexpr env e <= 0)
  | Mux_w { sel; t; e; z } -> env z = (if env sel = 1 then env t else env e)
