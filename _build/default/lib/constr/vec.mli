(** Growable arrays (amortized O(1) push), used throughout the solver
    for trails, clause databases and variable tables. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
(** @raise Invalid_argument on empty. *)

val top : 'a t -> 'a
val shrink : 'a t -> int -> unit
(** [shrink v n] truncates to the first [n] elements. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
val of_list : dummy:'a -> 'a list -> 'a t
