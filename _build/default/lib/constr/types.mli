(** Shared vocabulary of the hybrid constraint layer: solver
    variables, atoms (hybrid-clause literals), linear expressions and
    constraints.

    Variables are dense integer ids into a {!Problem} table.  A
    Boolean variable has domain ⟨0,1⟩; a word variable carries a
    finite integer interval domain (§2.1 of the paper).

    An {!atom} is the literal of a hybrid clause.  The paper's word
    literal [(w ∈ ⟨l,m⟩)] is the conjunction [Ge (w,l) ∧ Le (w,m)];
    its negation — as produced by conflict analysis — is the
    disjunction [Le (w,l-1) ∨ Ge (w,m+1)], so clauses over these atoms
    express exactly the paper's hybrid learned clauses. *)

type var = int

type kind =
  | Bool
  | Word of Rtlsat_interval.Interval.t  (** initial domain *)

type atom =
  | Pos of var          (** Boolean variable is 1 *)
  | Neg of var          (** Boolean variable is 0 *)
  | Ge of var * int     (** word variable >= k *)
  | Le of var * int     (** word variable <= k *)

type clause = atom array

(** Linear expression [Σ coef·var + const].  Boolean variables may
    appear (valued 0/1), which is how wrap-around adders carry
    overflow bits into the arithmetic. *)
type linexpr = { terms : (int * var) list; const : int }

(** Arithmetic constraints of §2.1. *)
type constr =
  | Lin_le of linexpr                    (** [e <= 0] *)
  | Lin_eq of linexpr                    (** [e = 0] *)
  | Pred of { b : var; e : linexpr }     (** [b ⇔ (e <= 0)] *)
  | Mux_w of { sel : var; t : var; e : var; z : var }
      (** word-level [z = sel ? t : e] *)

val negate_atom : atom -> atom
(** Logical negation; [Ge (v,k)] becomes [Le (v,k-1)] etc. *)

val atom_var : atom -> var

val pp_atom : ?name:(var -> string) -> unit -> Format.formatter -> atom -> unit
val pp_clause : ?name:(var -> string) -> unit -> Format.formatter -> clause -> unit
val pp_linexpr : ?name:(var -> string) -> unit -> Format.formatter -> linexpr -> unit
val pp_constr : ?name:(var -> string) -> unit -> Format.formatter -> constr -> unit

val le_zero : linexpr -> (int * var) list * int
(** Raw view [(terms, const)] of [e <= 0]. *)

val lin_add : linexpr -> linexpr -> linexpr
val lin_neg : linexpr -> linexpr
val lin_sub : linexpr -> linexpr -> linexpr
val lin_of_terms : (int * var) list -> int -> linexpr
(** Normalizes: merges duplicate variables, drops zero coefficients. *)

val constr_vars : constr -> var list
(** Variables mentioned, without duplicates. *)

val eval_linexpr : (var -> int) -> linexpr -> int
val eval_atom : (var -> int) -> atom -> bool
val eval_clause : (var -> int) -> clause -> bool
val eval_constr : (var -> int) -> constr -> bool
