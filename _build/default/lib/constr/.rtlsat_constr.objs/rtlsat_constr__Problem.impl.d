lib/constr/problem.ml: Array Format Printf Rtlsat_interval Types Vec
