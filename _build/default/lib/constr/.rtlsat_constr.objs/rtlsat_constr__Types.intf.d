lib/constr/types.mli: Format Rtlsat_interval
