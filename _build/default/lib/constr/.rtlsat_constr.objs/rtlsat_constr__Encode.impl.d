lib/constr/encode.ml: Array Hashtbl List Printf Problem Rtlsat_interval Rtlsat_rtl Types
