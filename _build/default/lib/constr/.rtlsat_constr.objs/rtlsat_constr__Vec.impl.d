lib/constr/vec.ml: Array List
