lib/constr/encode.mli: Problem Rtlsat_interval Rtlsat_rtl Types
