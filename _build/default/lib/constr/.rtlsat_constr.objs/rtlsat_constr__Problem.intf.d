lib/constr/problem.mli: Format Rtlsat_interval Types
