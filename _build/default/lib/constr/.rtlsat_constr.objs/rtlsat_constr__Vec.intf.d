lib/constr/vec.mli:
