lib/constr/types.ml: Array Format Hashtbl List Option Rtlsat_interval
