lib/harness/tables.mli: Engines Format
