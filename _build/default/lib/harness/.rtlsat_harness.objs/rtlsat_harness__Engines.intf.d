lib/harness/engines.mli: Rtlsat_bmc
