lib/harness/induction.ml: Rtlsat_bmc Rtlsat_constr Rtlsat_core
