lib/harness/engines.ml: Array Rtlsat_baselines Rtlsat_bmc Rtlsat_constr Rtlsat_core Rtlsat_rtl Rtlsat_sat Unix
