lib/harness/tables.ml: Engines Format List Rtlsat_itc99
