lib/harness/induction.mli: Rtlsat_core Rtlsat_rtl
