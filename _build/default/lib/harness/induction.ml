module Bmc = Rtlsat_bmc.Bmc
module Unroll = Rtlsat_bmc.Unroll
module E = Rtlsat_constr.Encode
module Solver = Rtlsat_core.Solver

type outcome = Proved of int | Falsified of int | Unknown

let solve_encoded options enc =
  match (Solver.solve ~options enc).Solver.result with
  | Solver.Sat _ -> `Sat
  | Solver.Unsat -> `Unsat
  | Solver.Timeout -> `Timeout

let base_case options circuit prop k =
  let inst = Bmc.make circuit ~prop ~bound:k ~semantics:Bmc.Any () in
  let enc = E.encode (Unroll.combo inst.Bmc.unrolled) in
  E.assume_bool enc inst.Bmc.violation true;
  solve_encoded options enc

let step_case options circuit prop k =
  (* frames 0..k from an arbitrary state; prop holds in 0..k-1 and
     fails in frame k *)
  let u = Unroll.unroll ~free_init:true circuit ~frames:(k + 1) in
  let enc = E.encode (Unroll.combo u) in
  for f = 0 to k - 1 do
    E.assume_bool enc (Unroll.node_at u prop f) true
  done;
  E.assume_bool enc (Unroll.node_at u prop k) false;
  solve_encoded options enc

let prove ?(options = Solver.hdpll_sp) ?(max_k = 20) circuit ~prop =
  let rec go k =
    if k > max_k then Unknown
    else begin
      match base_case options circuit prop k with
      | `Sat -> Falsified k
      | `Timeout -> Unknown
      | `Unsat ->
        (match step_case options circuit prop k with
         | `Unsat -> Proved k
         | `Timeout -> Unknown
         | `Sat -> go (k + 1))
    end
  in
  go 1
