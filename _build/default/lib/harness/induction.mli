(** k-induction on top of the BMC substrate — an unbounded extension
    of the paper's bounded workload (not in the paper; see DESIGN.md
    extensions).

    For increasing [k]: the base case asks for a violation within [k]
    frames from reset (plain BMC with [Any] semantics); the step case
    asks whether, from an {e arbitrary} state, [k] consecutive good
    frames can be followed by a bad one.  If the base is satisfiable
    the property is falsified; if the step is unsatisfiable the
    property holds in {e all} reachable states.  (No path-uniqueness
    strengthening: the method is sound but may answer [Unknown].) *)

type outcome =
  | Proved of int       (** inductive at depth k *)
  | Falsified of int    (** counterexample of that length from reset *)
  | Unknown             (** max depth or deadline exhausted *)

val prove :
  ?options:Rtlsat_core.Solver.options ->
  ?max_k:int ->
  Rtlsat_rtl.Ir.circuit ->
  prop:Rtlsat_rtl.Ir.node ->
  outcome
(** [prove circuit ~prop] with [max_k] defaulting to 20 and the
    [hdpll_sp] engine. *)
