(** Value-change-dump (IEEE 1364 §18) export of simulation traces, so
    counterexamples found by the engines can be inspected in any
    waveform viewer. *)

open Ir

val dump :
  ?nodes:node list ->
  circuit ->
  Sim.values list ->
  Buffer.t ->
  unit
(** [dump c traces buf] writes a VCD document for the per-cycle value
    tables [traces] (as produced by {!Sim.run}).  By default the
    primary inputs, registers, outputs and all named nodes are
    dumped; [nodes] overrides the selection. *)

val to_string : ?nodes:node list -> circuit -> Sim.values list -> string

val to_file : ?nodes:node list -> circuit -> Sim.values list -> string -> unit
(** @raise Sys_error on I/O failure. *)
