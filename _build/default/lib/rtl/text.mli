(** A line-oriented textual netlist format, so circuits can be stored
    in files and fed to the engines without writing OCaml.

    {v
    circuit adder
    input a 4
    input b 4
    reg acc 4 0
    node s = add a b
    node p = eq s acc
    connect acc s
    output sum s
    v}

    One definition per line; [#] starts a comment.  Node operators:
    [const V W], [not x], [and x y ...], [or x y ...], [xor x y],
    [mux sel t e], [add x y], [addext x y], [sub x y], [mulc K x],
    [eq|ne|lt|le|gt|ge x y], [concat hi lo], [extract x MSB LSB],
    [zext x W], [shl x K], [shr x K], [bitand|bitor|bitxor x y].

    {!print} emits a canonical form that {!parse} accepts; parsing a
    printed circuit and printing again is the identity. *)

open Ir

val print : Format.formatter -> circuit -> unit
val to_string : circuit -> string

val parse : string -> circuit
(** @raise Failure with a [line N:] prefix on malformed input. *)

val parse_file : string -> circuit
(** @raise Sys_error on I/O failure, [Failure] on malformed input. *)
