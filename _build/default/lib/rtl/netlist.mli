(** Width-checked builder for {!Ir} circuits.

    Every function validates operand widths and registers the new node
    with the circuit, so that [Ir.nodes] is a topological order of the
    combinational netlist.  All raise [Invalid_argument] on width or
    range violations. *)

open Ir

val create : string -> circuit

val input : circuit -> ?name:string -> int -> node
(** [input c w] is a fresh primary input of width [w]. *)

val const : circuit -> width:int -> int -> node
val ctrue : circuit -> node
val cfalse : circuit -> node

val not_ : circuit -> node -> node
val and_ : circuit -> ?name:string -> node list -> node
val or_ : circuit -> ?name:string -> node list -> node
val xor_ : circuit -> node -> node -> node
val nand_ : circuit -> node list -> node
val nor_ : circuit -> node list -> node
val xnor_ : circuit -> node -> node -> node
val implies : circuit -> node -> node -> node

val mux : circuit -> ?name:string -> sel:node -> t:node -> e:node -> unit -> node
(** [mux c ~sel ~t ~e ()] is [sel ? t : e]. *)

val add : circuit -> node -> node -> node
(** Wrapping addition (modulo [2^w]); operands of equal width. *)

val add_ext : circuit -> node -> node -> node
(** Exact addition; result width [w + 1]. *)

val sub : circuit -> node -> node -> node
(** Wrapping subtraction (modulo [2^w]). *)

val inc : circuit -> node -> node
(** Wrapping increment by one. *)

val mul_const : circuit -> int -> node -> node
(** Exact multiplication by a positive constant; the result is wide
    enough never to overflow. *)

val cmp : circuit -> ?name:string -> cmp -> node -> node -> node
val eq : circuit -> node -> node -> node
val ne : circuit -> node -> node -> node
val lt : circuit -> node -> node -> node
val le : circuit -> node -> node -> node
val gt : circuit -> node -> node -> node
val ge : circuit -> node -> node -> node
val eq_const : circuit -> node -> int -> node
(** [eq_const c n v] is the predicate [n == v]. *)

val concat : circuit -> hi:node -> lo:node -> node
val extract : circuit -> node -> msb:int -> lsb:int -> node
val bit : circuit -> node -> int -> node
(** [bit c n i] is [extract c n ~msb:i ~lsb:i]. *)

val zext : circuit -> node -> width:int -> node
val shl : circuit -> node -> int -> node
val shr : circuit -> node -> int -> node

val bitand : circuit -> node -> node -> node
val bitor : circuit -> node -> node -> node
val bitxor : circuit -> node -> node -> node

val reg : circuit -> ?name:string -> width:int -> init:int -> unit -> node
(** Creates a state element with reset value [init]; connect its
    next-state input with {!connect}. *)

val connect : node -> node -> unit
(** [connect r n] sets the next-state input of register [r] to [n].
    @raise Invalid_argument on width mismatch, non-register, or double
    connection. *)

val output : circuit -> string -> node -> unit

val set_name : node -> string -> unit
(** Attach a debug name to an anonymous node; no-op when the node is
    already named (used by the {!Text} parser). *)

val find_input : circuit -> string -> node
(** @raise Not_found. *)

val find_output : circuit -> string -> node
(** @raise Not_found. *)
