(** Netlist simplification: constant folding, algebraic identities and
    structural hashing (common-subexpression elimination).

    Unrolled BMC circuits are full of frame-0 reset constants and
    repeated per-frame logic; one simplification pass typically
    removes a large fraction of the nodes before encoding.  The pass
    is purely structural and behaviour-preserving (validated against
    the simulator in the test suite). *)

open Ir

type mapping = {
  optimized : circuit;
  fwd : node -> node;
      (** image of an original node in the optimized circuit *)
}

val simplify : circuit -> mapping
(** Rebuilds the circuit in topological order, applying:
    - constant folding of every operator with constant inputs;
    - identities: [x&0=0], [x&1=x], [x|1=1], [x|0=x], [x^x=0] (as
      gates over equal operands), double negation, [mux c t t = t],
      [mux 1 t e = t], [mux 0 t e = e], [x+0=x], [x-0=x],
      comparisons of a node with itself, full-width extracts;
    - structural hashing: identical operators over identical operands
      are shared.

    Dead nodes (not reachable from outputs, registers or retained by
    construction) are simply not copied.  Registers and primary inputs
    are always retained. *)

val node_count : circuit -> int
(** Number of nodes, for shrink statistics. *)
