type cmp = Eq | Ne | Lt | Le | Gt | Ge

type node = {
  id : int;
  width : int;
  op : op;
  mutable name : string option;
}

and op =
  | Input
  | Const of int
  | Not of node
  | And of node array
  | Or of node array
  | Xor of node * node
  | Mux of { sel : node; t : node; e : node }
  | Add of { a : node; b : node; wrap : bool }
  | Sub of { a : node; b : node }
  | Mul_const of { k : int; a : node }
  | Cmp of { op : cmp; a : node; b : node }
  | Concat of { hi : node; lo : node }
  | Extract of { a : node; msb : int; lsb : int }
  | Zext of node
  | Shl of { a : node; k : int }
  | Shr of { a : node; k : int }
  | Bitand of node * node
  | Bitor of node * node
  | Bitxor of node * node
  | Reg of reg

and reg = { init : int; mutable next : node option }

type circuit = {
  cname : string;
  mutable ncount : int;
  mutable rev_nodes : node list;
  mutable rev_inputs : node list;
  mutable rev_regs : node list;
  mutable outputs : (string * node) list;
}

let is_bool n = n.width = 1
let max_value n = (1 lsl n.width) - 1

let nodes c = List.rev c.rev_nodes
let inputs c = List.rev c.rev_inputs
let regs c = List.rev c.rev_regs

let node_name n =
  match n.name with Some s -> s | None -> "n" ^ string_of_int n.id

let reg_next n =
  match n.op with
  | Reg { next = Some nx; _ } -> nx
  | Reg { next = None; _ } -> invalid_arg "Ir.reg_next: unconnected register"
  | _ -> invalid_arg "Ir.reg_next: not a register"

let fanins n =
  match n.op with
  | Input | Const _ | Reg _ -> []
  | Not a | Zext a -> [ a ]
  | And ns | Or ns -> Array.to_list ns
  | Xor (a, b) | Bitand (a, b) | Bitor (a, b) | Bitxor (a, b) -> [ a; b ]
  | Mux { sel; t; e } -> [ sel; t; e ]
  | Add { a; b; _ } | Sub { a; b } | Cmp { a; b; _ } -> [ a; b ]
  | Mul_const { a; _ } | Extract { a; _ } | Shl { a; _ } | Shr { a; _ } -> [ a ]
  | Concat { hi; lo } -> [ hi; lo ]

let cmp_to_string = function
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let op_label n =
  match n.op with
  | Input -> "input"
  | Const v -> Printf.sprintf "const %d" v
  | Not _ -> "not"
  | And _ -> "and"
  | Or _ -> "or"
  | Xor _ -> "xor"
  | Mux _ -> "mux"
  | Add { wrap; _ } -> if wrap then "add.wrap" else "add"
  | Sub _ -> "sub.wrap"
  | Mul_const { k; _ } -> Printf.sprintf "mulc %d" k
  | Cmp { op; _ } -> "cmp " ^ cmp_to_string op
  | Concat _ -> "concat"
  | Extract { msb; lsb; _ } -> Printf.sprintf "extract[%d:%d]" msb lsb
  | Zext _ -> "zext"
  | Shl { k; _ } -> Printf.sprintf "shl %d" k
  | Shr { k; _ } -> Printf.sprintf "shr %d" k
  | Bitand _ -> "bitand"
  | Bitor _ -> "bitor"
  | Bitxor _ -> "bitxor"
  | Reg { init; _ } -> Printf.sprintf "reg init=%d" init

let pp_node fmt n =
  let pp_fanins fmt ns =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
      (fun fmt m -> Format.pp_print_string fmt (node_name m))
      fmt ns
  in
  Format.fprintf fmt "%s:%d = %s(%a)" (node_name n) n.width (op_label n)
    pp_fanins (fanins n);
  match n.op with
  | Reg r ->
    (match r.next with
     | Some nx -> Format.fprintf fmt " next=%s" (node_name nx)
     | None -> Format.fprintf fmt " next=<unconnected>")
  | _ -> ()

let pp_circuit fmt c =
  Format.fprintf fmt "circuit %s (%d nodes)@." c.cname c.ncount;
  List.iter (fun n -> Format.fprintf fmt "  %a@." pp_node n) (nodes c);
  List.iter
    (fun (name, n) -> Format.fprintf fmt "  output %s = %s@." name (node_name n))
    c.outputs
