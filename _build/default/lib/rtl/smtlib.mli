(** SMT-LIB 2 (QF_BV) export of combinational RTL problems, so any
    instance can be cross-checked with an external bit-vector solver
    (Z3, Bitwuzla, …).

    Every node becomes a [define-fun] over bit-vectors; Booleans are
    width-1 bit-vectors.  Registers are not supported — unroll first
    ({!Rtlsat_bmc.Unroll}). *)

open Ir

val export : ?assumes:(node * int) list -> circuit -> string
(** [export c ~assumes] is a complete SMT-LIB 2 script:
    [set-logic QF_BV], input declarations, node definitions, one
    [assert] per assumption ([node = value]) and [check-sat].
    @raise Invalid_argument on a sequential circuit or an assumption
    value outside the node's width. *)
