open Ir

type mapping = {
  optimized : circuit;
  fwd : node -> node;
}

let node_count c = c.ncount

let cvalue n = match n.op with Const v -> Some v | _ -> None
let is_const v n = cvalue n = Some v

let mask w = (1 lsl w) - 1

let simplify source =
  let dst = Netlist.create source.cname in
  let image : node option array = Array.make source.ncount None in
  let hash : (string, node) Hashtbl.t = Hashtbl.create 256 in
  (* reachable from outputs and register next-state functions *)
  let keep = Array.make source.ncount false in
  let rec mark n =
    if not keep.(n.id) then begin
      keep.(n.id) <- true;
      List.iter mark (fanins n)
    end
  in
  List.iter (fun (_, n) -> mark n) source.outputs;
  List.iter
    (fun n ->
       mark n;
       match n.op with Reg { next = Some nx; _ } -> mark nx | _ -> ())
    (regs source);
  List.iter (fun n -> keep.(n.id) <- true) (inputs source);
  (* interning: structural hashing of every freshly built node *)
  let interned key build =
    match Hashtbl.find_opt hash key with
    | Some n -> n
    | None ->
      let n = build () in
      Hashtbl.replace hash key n;
      n
  in
  let const w v = interned (Printf.sprintf "c%d_%d" w v) (fun () -> Netlist.const dst ~width:w v) in
  let key1 tag a = Printf.sprintf "%s %d" tag a.id in
  let key2 tag a b = Printf.sprintf "%s %d %d" tag a.id b.id in
  let keyn tag ns =
    tag ^ String.concat "," (List.map (fun n -> string_of_int n.id) ns)
  in
  (* simplifying constructors over already-optimized operands *)
  let mk_not a =
    match (cvalue a, a.op) with
    | Some v, _ -> const 1 (1 - v)
    | None, Not inner -> inner
    | None, _ -> interned (key1 "not" a) (fun () -> Netlist.not_ dst a)
  in
  let mk_and ns =
    if List.exists (is_const 0) ns then const 1 0
    else begin
      let ns =
        List.filter (fun n -> not (is_const 1 n)) ns
        |> List.sort_uniq (fun a b -> compare a.id b.id)
      in
      match ns with
      | [] -> const 1 1
      | [ n ] -> n
      | _ -> interned (keyn "and" ns) (fun () -> Netlist.and_ dst ns)
    end
  in
  let mk_or ns =
    if List.exists (is_const 1) ns then const 1 1
    else begin
      let ns =
        List.filter (fun n -> not (is_const 0 n)) ns
        |> List.sort_uniq (fun a b -> compare a.id b.id)
      in
      match ns with
      | [] -> const 1 0
      | [ n ] -> n
      | _ -> interned (keyn "or" ns) (fun () -> Netlist.or_ dst ns)
    end
  in
  let mk_xor a b =
    match (cvalue a, cvalue b) with
    | Some va, Some vb -> const 1 (va lxor vb)
    | _ when a.id = b.id -> const 1 0
    | Some 0, None -> b
    | Some 1, None -> mk_not b
    | None, Some 0 -> a
    | None, Some 1 -> mk_not a
    | _ ->
      let a, b = if a.id <= b.id then (a, b) else (b, a) in
      interned (key2 "xor" a b) (fun () -> Netlist.xor_ dst a b)
  in
  let mk_mux sel t e =
    if t.id = e.id then t
    else begin
      match cvalue sel with
      | Some 1 -> t
      | Some 0 -> e
      | _ ->
        if t.width = 1 && is_const 1 t && is_const 0 e then sel
        else if t.width = 1 && is_const 0 t && is_const 1 e then mk_not sel
        else
          interned
            (Printf.sprintf "mux %d %d %d" sel.id t.id e.id)
            (fun () -> Netlist.mux dst ~sel ~t ~e ())
    end
  in
  let mk_add ~wrap a b w =
    match (cvalue a, cvalue b) with
    | Some va, Some vb ->
      let s = va + vb in
      const w (if wrap then s land mask w else s)
    | Some 0, None when wrap -> b
    | None, Some 0 when wrap -> a
    | _ ->
      let a, b = if a.id <= b.id then (a, b) else (b, a) in
      interned
        (key2 (if wrap then "add" else "addext") a b)
        (fun () -> if wrap then Netlist.add dst a b else Netlist.add_ext dst a b)
  in
  let mk_sub a b w =
    match (cvalue a, cvalue b) with
    | Some va, Some vb -> const w ((va - vb) land mask w)
    | None, Some 0 -> a
    | _ when a.id = b.id -> const w 0
    | _ -> interned (key2 "sub" a b) (fun () -> Netlist.sub dst a b)
  in
  let mk_mulc k a w =
    match cvalue a with
    | Some va -> const w (k * va)
    | None ->
      if k = 1 then a
      else interned (Printf.sprintf "mulc%d %d" k a.id) (fun () -> Netlist.mul_const dst k a)
  in
  let mk_cmp op a b =
    let cmp_tag =
      match op with
      | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
    in
    match (cvalue a, cvalue b) with
    | Some va, Some vb ->
      let r =
        match op with
        | Eq -> va = vb | Ne -> va <> vb | Lt -> va < vb
        | Le -> va <= vb | Gt -> va > vb | Ge -> va >= vb
      in
      const 1 (if r then 1 else 0)
    | _ when a.id = b.id ->
      const 1 (match op with Eq | Le | Ge -> 1 | Ne | Lt | Gt -> 0)
    | _ -> interned (key2 cmp_tag a b) (fun () -> Netlist.cmp dst op a b)
  in
  let mk_concat hi lo w =
    match (cvalue hi, cvalue lo) with
    | Some vh, Some vl -> const w ((vh lsl lo.width) lor vl)
    | _ -> interned (key2 "concat" hi lo) (fun () -> Netlist.concat dst ~hi ~lo)
  in
  let mk_extract a msb lsb =
    if lsb = 0 && msb = a.width - 1 then a
    else begin
      match cvalue a with
      | Some v -> const (msb - lsb + 1) ((v lsr lsb) land mask (msb - lsb + 1))
      | None ->
        interned
          (Printf.sprintf "ex %d %d %d" a.id msb lsb)
          (fun () -> Netlist.extract dst a ~msb ~lsb)
    end
  in
  let mk_zext a w =
    match cvalue a with
    | Some v -> const w v
    | None -> interned (Printf.sprintf "zx %d %d" a.id w) (fun () -> Netlist.zext dst a ~width:w)
  in
  let mk_shl a k w =
    match cvalue a with
    | Some v -> const w (v lsl k)
    | None -> interned (Printf.sprintf "shl %d %d" a.id k) (fun () -> Netlist.shl dst a k)
  in
  let mk_shr a k w =
    match cvalue a with
    | Some v -> const w (v lsr k)
    | None -> interned (Printf.sprintf "shr %d %d" a.id k) (fun () -> Netlist.shr dst a k)
  in
  let mk_bitwise tag f fold a b w =
    match (cvalue a, cvalue b) with
    | Some va, Some vb -> const w (fold va vb)
    | _ when a.id = b.id && tag <> "bxor" -> a
    | _ when a.id = b.id -> const w 0
    | _ ->
      let a, b = if a.id <= b.id then (a, b) else (b, a) in
      interned (key2 tag a b) (fun () -> f a b)
  in
  (* pass 1: register shells (their next inputs are connected later) *)
  List.iter
    (fun n ->
       match n.op with
       | Reg r ->
         let shell = Netlist.reg dst ?name:n.name ~width:n.width ~init:r.init () in
         image.(n.id) <- Some shell
       | _ -> ())
    (nodes source);
  (* pass 2: rebuild every kept node in topological order *)
  let img n =
    match image.(n.id) with
    | Some m -> m
    | None -> invalid_arg "Opt.simplify: operand not yet rebuilt"
  in
  List.iter
    (fun n ->
       if keep.(n.id) && image.(n.id) = None then begin
         let m =
           match n.op with
           | Reg _ -> assert false
           | Input ->
             let m = Netlist.input dst ?name:n.name n.width in
             m
           | Const v -> const n.width v
           | Not a -> mk_not (img a)
           | And ns -> mk_and (Array.to_list (Array.map img ns))
           | Or ns -> mk_or (Array.to_list (Array.map img ns))
           | Xor (a, b) -> mk_xor (img a) (img b)
           | Mux { sel; t; e } -> mk_mux (img sel) (img t) (img e)
           | Add { a; b; wrap } -> mk_add ~wrap (img a) (img b) n.width
           | Sub { a; b } -> mk_sub (img a) (img b) n.width
           | Mul_const { k; a } -> mk_mulc k (img a) n.width
           | Cmp { op; a; b } -> mk_cmp op (img a) (img b)
           | Concat { hi; lo } -> mk_concat (img hi) (img lo) n.width
           | Extract { a; msb; lsb } -> mk_extract (img a) msb lsb
           | Zext a -> mk_zext (img a) n.width
           | Shl { a; k } -> mk_shl (img a) k n.width
           | Shr { a; k } -> mk_shr (img a) k n.width
           | Bitand (a, b) ->
             mk_bitwise "band" (fun a b -> Netlist.bitand dst a b) ( land ) (img a)
               (img b) n.width
           | Bitor (a, b) ->
             mk_bitwise "bor" (fun a b -> Netlist.bitor dst a b) ( lor ) (img a)
               (img b) n.width
           | Bitxor (a, b) ->
             mk_bitwise "bxor" (fun a b -> Netlist.bitxor dst a b) ( lxor ) (img a)
               (img b) n.width
         in
         (match n.name with Some s -> Netlist.set_name m s | None -> ());
         image.(n.id) <- Some m
       end)
    (nodes source);
  (* pass 3: connect registers and rebuild outputs *)
  List.iter
    (fun n ->
       match n.op with
       | Reg { next = Some nx; _ } -> Netlist.connect (img n) (img nx)
       | _ -> ())
    (regs source);
  List.iter
    (fun (port, n) -> Netlist.output dst port (img n))
    (List.rev source.outputs);
  let fwd n =
    match image.(n.id) with
    | Some m -> m
    | None -> raise Not_found
  in
  { optimized = dst; fwd }
