open Ir

let create cname =
  { cname; ncount = 0; rev_nodes = []; rev_inputs = []; rev_regs = []; outputs = [] }

let fresh c ?name width op =
  if width < 1 || width > 61 then invalid_arg "Netlist: width out of range";
  let n = { id = c.ncount; width; op; name } in
  c.ncount <- c.ncount + 1;
  c.rev_nodes <- n :: c.rev_nodes;
  n

let input c ?name w =
  let n = fresh c ?name w Input in
  c.rev_inputs <- n :: c.rev_inputs;
  n

let const c ~width v =
  if v < 0 || (width < 61 && v > (1 lsl width) - 1) then
    invalid_arg "Netlist.const: value out of range";
  fresh c width (Const v)

let ctrue c = const c ~width:1 1
let cfalse c = const c ~width:1 0

let check_bool ctx n =
  if not (is_bool n) then invalid_arg (ctx ^ ": Boolean operand expected")

let check_same ctx a b =
  if a.width <> b.width then invalid_arg (ctx ^ ": width mismatch")

let not_ c a =
  check_bool "not" a;
  fresh c 1 (Not a)

let nary ctx mk c ?name ns =
  (match ns with [] | [ _ ] -> invalid_arg (ctx ^ ": needs >= 2 operands") | _ -> ());
  List.iter (check_bool ctx) ns;
  fresh c ?name 1 (mk (Array.of_list ns))

let and_ c ?name ns = nary "and" (fun a -> And a) c ?name ns
let or_ c ?name ns = nary "or" (fun a -> Or a) c ?name ns

let xor_ c a b =
  check_bool "xor" a; check_bool "xor" b;
  fresh c 1 (Xor (a, b))

let nand_ c ns = not_ c (and_ c ns)
let nor_ c ns = not_ c (or_ c ns)
let xnor_ c a b = not_ c (xor_ c a b)
let implies c a b = or_ c [ not_ c a; b ]

let mux c ?name ~sel ~t ~e () =
  check_bool "mux.sel" sel;
  check_same "mux" t e;
  fresh c ?name t.width (Mux { sel; t; e })

let add c a b =
  check_same "add" a b;
  fresh c a.width (Add { a; b; wrap = true })

let add_ext c a b =
  check_same "add_ext" a b;
  fresh c (a.width + 1) (Add { a; b; wrap = false })

let sub c a b =
  check_same "sub" a b;
  fresh c a.width (Sub { a; b })

let inc c a = add c a (const c ~width:a.width 1)

let mul_const c k a =
  if k < 1 then invalid_arg "mul_const: k must be positive";
  let maxv = k * ((1 lsl a.width) - 1) in
  let rec bits w = if (1 lsl w) - 1 >= maxv then w else bits (w + 1) in
  fresh c (bits a.width) (Mul_const { k; a })

let cmp c ?name op a b =
  check_same "cmp" a b;
  fresh c ?name 1 (Cmp { op; a; b })

let eq c a b = cmp c Eq a b
let ne c a b = cmp c Ne a b
let lt c a b = cmp c Lt a b
let le c a b = cmp c Le a b
let gt c a b = cmp c Gt a b
let ge c a b = cmp c Ge a b
let eq_const c n v = eq c n (const c ~width:n.width v)

let concat c ~hi ~lo = fresh c (hi.width + lo.width) (Concat { hi; lo })

let extract c a ~msb ~lsb =
  if lsb < 0 || msb < lsb || msb >= a.width then invalid_arg "extract: bad range";
  fresh c (msb - lsb + 1) (Extract { a; msb; lsb })

let bit c n i = extract c n ~msb:i ~lsb:i

let zext c a ~width =
  if width <= a.width then invalid_arg "zext: target width must be larger";
  fresh c width (Zext a)

let shl c a k =
  if k < 0 then invalid_arg "shl: negative shift";
  if k = 0 then a else fresh c (a.width + k) (Shl { a; k })

let shr c a k =
  if k < 0 || k >= a.width then invalid_arg "shr: shift out of range";
  if k = 0 then a else fresh c a.width (Shr { a; k })

let bitwise ctx mk c a b =
  check_same ctx a b;
  fresh c a.width (mk a b)

let bitand c a b = bitwise "bitand" (fun a b -> Bitand (a, b)) c a b
let bitor c a b = bitwise "bitor" (fun a b -> Bitor (a, b)) c a b
let bitxor c a b = bitwise "bitxor" (fun a b -> Bitxor (a, b)) c a b

let reg c ?name ~width ~init () =
  if init < 0 || (width < 61 && init > (1 lsl width) - 1) then
    invalid_arg "reg: init out of range";
  let n = fresh c ?name width (Reg { init; next = None }) in
  c.rev_regs <- n :: c.rev_regs;
  n

let connect r n =
  match r.op with
  | Reg ({ next = None; _ } as rg) ->
    if r.width <> n.width then invalid_arg "connect: width mismatch";
    rg.next <- Some n
  | Reg { next = Some _; _ } -> invalid_arg "connect: register already connected"
  | _ -> invalid_arg "connect: not a register"

let output c name n = c.outputs <- (name, n) :: c.outputs

let set_name n name = if n.name = None then n.name <- Some name

let find_by_name ns name =
  match List.find_opt (fun n -> n.name = Some name) ns with
  | Some n -> n
  | None -> raise Not_found

let find_input c name = find_by_name (inputs c) name

let find_output c name =
  match List.assoc_opt name c.outputs with
  | Some n -> n
  | None -> raise Not_found
