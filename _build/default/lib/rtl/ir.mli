(** Word-level RTL netlist intermediate representation.

    A circuit is a DAG of operator nodes over unsigned words of fixed
    bit-width (Booleans are words of width 1), plus registers that cut
    combinational cycles.  All data-path semantics are unsigned; see
    the per-constructor comments for overflow behaviour.

    Nodes are created through {!Netlist} which enforces width
    discipline; the constructors here are the public pattern-matching
    surface used by the encoder, the bit-blaster, the simulator and
    the structural analyses. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type node = {
  id : int;            (** unique within the circuit, creation order *)
  width : int;         (** 1..61; Booleans have width 1 *)
  op : op;
  mutable name : string option;
}

and op =
  | Input                                   (** primary input *)
  | Const of int                            (** unsigned constant *)
  | Not of node                             (** Boolean negation *)
  | And of node array                       (** n-ary Boolean AND, n >= 2 *)
  | Or of node array                        (** n-ary Boolean OR, n >= 2 *)
  | Xor of node * node                      (** Boolean exclusive or *)
  | Mux of { sel : node; t : node; e : node }
      (** [sel ? t : e]; the RTL ITE of Definition 4.1 *)
  | Add of { a : node; b : node; wrap : bool }
      (** [wrap]: modulo [2^w], same width; otherwise width [w+1] *)
  | Sub of { a : node; b : node }           (** modulo [2^w] *)
  | Mul_const of { k : int; a : node }      (** exact: width grows *)
  | Cmp of { op : cmp; a : node; b : node } (** unsigned predicate *)
  | Concat of { hi : node; lo : node }      (** [hi · 2^w(lo) + lo] *)
  | Extract of { a : node; msb : int; lsb : int }
  | Zext of node                            (** zero extension *)
  | Shl of { a : node; k : int }            (** exact: width [w+k] *)
  | Shr of { a : node; k : int }            (** floor division by [2^k] *)
  | Bitand of node * node
  | Bitor of node * node
  | Bitxor of node * node
      (** bitwise word operators; handled by Boolean splitting
          (paper §6 future work) in the encoder *)
  | Reg of reg                              (** state element *)

and reg = { init : int; mutable next : node option }

type circuit = {
  cname : string;
  mutable ncount : int;
  mutable rev_nodes : node list;
  mutable rev_inputs : node list;
  mutable rev_regs : node list;
  mutable outputs : (string * node) list;
}

val is_bool : node -> bool
(** Width-1 test. *)

val max_value : node -> int
(** [2^width - 1]. *)

val nodes : circuit -> node list
(** All nodes in creation order (a topological order of the
    combinational edges). *)

val inputs : circuit -> node list
val regs : circuit -> node list

val node_name : node -> string
(** The given name, or ["n<id>"]. *)

val reg_next : node -> node
(** Next-state input of a register.
    @raise Invalid_argument if the node is not a connected register. *)

val fanins : node -> node list
(** Combinational fanins (registers have none). *)

val pp_node : Format.formatter -> node -> unit
val pp_circuit : Format.formatter -> circuit -> unit
