open Ir

(* VCD identifier codes: printable ASCII 33..126, little-endian base-94 *)
let ident i =
  let b = Buffer.create 4 in
  let rec go i =
    Buffer.add_char b (Char.chr (33 + (i mod 94)));
    if i >= 94 then go ((i / 94) - 1)
  in
  go i;
  Buffer.contents b

let default_nodes c =
  let outputs = List.map snd c.outputs in
  let named = List.filter (fun n -> n.name <> None) (nodes c) in
  let all = inputs c @ regs c @ named @ outputs in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
       if Hashtbl.mem seen n.id then false
       else begin
         Hashtbl.replace seen n.id ();
         true
       end)
    all

let binary_string width v =
  String.init width (fun i ->
      if (v lsr (width - 1 - i)) land 1 = 1 then '1' else '0')

let dump ?nodes:node_list c traces buf =
  let selected = match node_list with Some l -> l | None -> default_nodes c in
  let add = Buffer.add_string buf in
  add "$date\n  rtlsat trace\n$end\n";
  add "$version\n  rtlsat 1.0\n$end\n";
  add "$timescale 1 ns $end\n";
  add (Printf.sprintf "$scope module %s $end\n" c.cname);
  List.iteri
    (fun i n ->
       add
         (Printf.sprintf "$var wire %d %s %s $end\n" n.width (ident i)
            (node_name n)))
    selected;
  add "$upscope $end\n$enddefinitions $end\n";
  let previous = Hashtbl.create 16 in
  List.iteri
    (fun t vals ->
       add (Printf.sprintf "#%d\n" t);
       List.iteri
         (fun i n ->
            let v = Sim.value vals n in
            let changed =
              match Hashtbl.find_opt previous n.id with
              | Some old -> old <> v
              | None -> true
            in
            if changed then begin
              Hashtbl.replace previous n.id v;
              if n.width = 1 then add (Printf.sprintf "%d%s\n" v (ident i))
              else add (Printf.sprintf "b%s %s\n" (binary_string n.width v) (ident i))
            end)
         selected)
    traces;
  add (Printf.sprintf "#%d\n" (List.length traces))

let to_string ?nodes c traces =
  let buf = Buffer.create 4096 in
  dump ?nodes c traces buf;
  Buffer.contents buf

let to_file ?nodes c traces path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?nodes c traces))
