lib/rtl/opt.ml: Array Hashtbl Ir List Netlist Printf String
