lib/rtl/sim.ml: Array Hashtbl Ir List
