lib/rtl/sim.mli: Hashtbl Ir
