lib/rtl/text.mli: Format Ir
