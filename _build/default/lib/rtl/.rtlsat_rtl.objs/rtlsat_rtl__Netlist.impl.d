lib/rtl/netlist.ml: Array Ir List
