lib/rtl/structure.mli: Ir
