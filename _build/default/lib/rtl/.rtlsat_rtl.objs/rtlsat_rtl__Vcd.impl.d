lib/rtl/vcd.ml: Buffer Char Fun Hashtbl Ir List Printf Sim String
