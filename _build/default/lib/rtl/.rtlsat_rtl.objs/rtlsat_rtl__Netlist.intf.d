lib/rtl/netlist.mli: Ir
