lib/rtl/structure.ml: Array Hashtbl Ir List
