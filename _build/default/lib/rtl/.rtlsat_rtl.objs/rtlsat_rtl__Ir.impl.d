lib/rtl/ir.ml: Array Format List Printf
