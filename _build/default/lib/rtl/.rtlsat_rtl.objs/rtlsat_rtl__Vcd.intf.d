lib/rtl/vcd.mli: Buffer Ir Sim
