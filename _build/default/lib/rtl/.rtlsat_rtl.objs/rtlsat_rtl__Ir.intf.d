lib/rtl/ir.mli: Format
