lib/rtl/text.ml: Array Format Fun Hashtbl Ir List Netlist Printf String
