lib/rtl/smtlib.ml: Array Buffer Ir List Printf String
