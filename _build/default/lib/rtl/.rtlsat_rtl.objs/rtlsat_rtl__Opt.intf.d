lib/rtl/opt.mli: Ir
