lib/rtl/smtlib.mli: Ir
