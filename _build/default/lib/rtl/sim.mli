(** Concrete cycle-accurate simulator for {!Ir} circuits.

    Used to validate SAT witnesses end-to-end: a satisfying assignment
    found by any engine is replayed here and the property violation is
    confirmed on the actual RTL semantics. *)

open Ir

type values = (int, int) Hashtbl.t
(** Node id -> value. *)

type state = (int, int) Hashtbl.t
(** Register id -> current value. *)

val initial_state : circuit -> state

val eval : circuit -> state -> inputs:(node * int) list -> values
(** Evaluate all combinational nodes for one cycle.  Unlisted inputs
    default to 0.  @raise Invalid_argument if an input value exceeds
    the node's width. *)

val next_state : circuit -> values -> state
(** Register values for the next cycle, from this cycle's values. *)

val step : circuit -> state -> inputs:(node * int) list -> values * state

val run : circuit -> inputs:(node * int) list list -> values list
(** Simulate from reset for [List.length inputs] cycles; element [t]
    of the result holds every node's value during cycle [t]. *)

val value : values -> node -> int
(** @raise Not_found if the node was not evaluated. *)
