open Ir

(* ---- printing ---- *)

let op_syntax n =
  let name m = node_name m in
  match n.op with
  | Input | Reg _ -> assert false
  | Const v -> Printf.sprintf "const %d %d" v n.width
  | Not a -> "not " ^ name a
  | And ns ->
    "and " ^ String.concat " " (Array.to_list (Array.map name ns))
  | Or ns -> "or " ^ String.concat " " (Array.to_list (Array.map name ns))
  | Xor (a, b) -> Printf.sprintf "xor %s %s" (name a) (name b)
  | Mux { sel; t; e } -> Printf.sprintf "mux %s %s %s" (name sel) (name t) (name e)
  | Add { a; b; wrap } ->
    Printf.sprintf "%s %s %s" (if wrap then "add" else "addext") (name a) (name b)
  | Sub { a; b } -> Printf.sprintf "sub %s %s" (name a) (name b)
  | Mul_const { k; a } -> Printf.sprintf "mulc %d %s" k (name a)
  | Cmp { op; a; b } ->
    let o =
      match op with
      | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
    in
    Printf.sprintf "%s %s %s" o (name a) (name b)
  | Concat { hi; lo } -> Printf.sprintf "concat %s %s" (name hi) (name lo)
  | Extract { a; msb; lsb } -> Printf.sprintf "extract %s %d %d" (name a) msb lsb
  | Zext a -> Printf.sprintf "zext %s %d" (name a) n.width
  | Shl { a; k } -> Printf.sprintf "shl %s %d" (name a) k
  | Shr { a; k } -> Printf.sprintf "shr %s %d" (name a) k
  | Bitand (a, b) -> Printf.sprintf "bitand %s %s" (name a) (name b)
  | Bitor (a, b) -> Printf.sprintf "bitor %s %s" (name a) (name b)
  | Bitxor (a, b) -> Printf.sprintf "bitxor %s %s" (name a) (name b)

let print fmt c =
  Format.fprintf fmt "circuit %s@." c.cname;
  List.iter
    (fun n ->
       match n.op with
       | Input -> Format.fprintf fmt "input %s %d@." (node_name n) n.width
       | Reg r -> Format.fprintf fmt "reg %s %d %d@." (node_name n) n.width r.init
       | _ -> Format.fprintf fmt "node %s = %s@." (node_name n) (op_syntax n))
    (nodes c);
  List.iter
    (fun n ->
       match n.op with
       | Reg { next = Some nx; _ } ->
         Format.fprintf fmt "connect %s %s@." (node_name n) (node_name nx)
       | _ -> ())
    (nodes c);
  List.iter
    (fun (port, n) -> Format.fprintf fmt "output %s %s@." port (node_name n))
    (List.rev c.outputs)

let to_string c = Format.asprintf "%a" print c

(* ---- parsing ---- *)

let parse text =
  let env : (string, node) Hashtbl.t = Hashtbl.create 64 in
  let circuit = ref None in
  let the_circuit line =
    match !circuit with
    | Some c -> c
    | None -> failwith (Printf.sprintf "line %d: no circuit declared" line)
  in
  let resolve line name =
    match Hashtbl.find_opt env name with
    | Some n -> n
    | None -> failwith (Printf.sprintf "line %d: unknown node %s" line name)
  in
  let bind line name n =
    if Hashtbl.mem env name then
      failwith (Printf.sprintf "line %d: duplicate node %s" line name);
    Hashtbl.replace env name n
  in
  let int_of line s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> failwith (Printf.sprintf "line %d: expected integer, got %s" line s)
  in
  let parse_node line c name rhs =
    let r i = resolve line (List.nth rhs i) in
    let k i = int_of line (List.nth rhs i) in
    let arity n =
      if List.length rhs - 1 <> n then
        failwith (Printf.sprintf "line %d: wrong operand count" line)
    in
    let node =
      match List.hd rhs with
      | "const" -> arity 2; Netlist.const c ~width:(k 2) (k 1)
      | "not" -> arity 1; Netlist.not_ c (r 1)
      | "and" -> Netlist.and_ c ~name (List.map (resolve line) (List.tl rhs))
      | "or" -> Netlist.or_ c ~name (List.map (resolve line) (List.tl rhs))
      | "xor" -> arity 2; Netlist.xor_ c (r 1) (r 2)
      | "mux" -> arity 3; Netlist.mux c ~name ~sel:(r 1) ~t:(r 2) ~e:(r 3) ()
      | "add" -> arity 2; Netlist.add c (r 1) (r 2)
      | "addext" -> arity 2; Netlist.add_ext c (r 1) (r 2)
      | "sub" -> arity 2; Netlist.sub c (r 1) (r 2)
      | "mulc" -> arity 2; Netlist.mul_const c (k 1) (r 2)
      | "eq" -> arity 2; Netlist.cmp c ~name Eq (r 1) (r 2)
      | "ne" -> arity 2; Netlist.cmp c ~name Ne (r 1) (r 2)
      | "lt" -> arity 2; Netlist.cmp c ~name Lt (r 1) (r 2)
      | "le" -> arity 2; Netlist.cmp c ~name Le (r 1) (r 2)
      | "gt" -> arity 2; Netlist.cmp c ~name Gt (r 1) (r 2)
      | "ge" -> arity 2; Netlist.cmp c ~name Ge (r 1) (r 2)
      | "concat" -> arity 2; Netlist.concat c ~hi:(r 1) ~lo:(r 2)
      | "extract" -> arity 3; Netlist.extract c (r 1) ~msb:(k 2) ~lsb:(k 3)
      | "zext" -> arity 2; Netlist.zext c (r 1) ~width:(k 2)
      | "shl" -> arity 2; Netlist.shl c (r 1) (k 2)
      | "shr" -> arity 2; Netlist.shr c (r 1) (k 2)
      | "bitand" -> arity 2; Netlist.bitand c (r 1) (r 2)
      | "bitor" -> arity 2; Netlist.bitor c (r 1) (r 2)
      | "bitxor" -> arity 2; Netlist.bitxor c (r 1) (r 2)
      | op -> failwith (Printf.sprintf "line %d: unknown operator %s" line op)
    in
    Netlist.set_name node name;
    node
  in
  let handle line_no raw =
    let stripped =
      match String.index_opt raw '#' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    match String.split_on_char ' ' (String.trim stripped)
          |> List.filter (fun s -> s <> "")
    with
    | [] -> ()
    | "circuit" :: [ name ] ->
      if !circuit <> None then
        failwith (Printf.sprintf "line %d: duplicate circuit line" line_no);
      circuit := Some (Netlist.create name)
    | "input" :: [ name; w ] ->
      let c = the_circuit line_no in
      bind line_no name (Netlist.input c ~name (int_of line_no w))
    | "reg" :: [ name; w; init ] ->
      let c = the_circuit line_no in
      bind line_no name
        (Netlist.reg c ~name ~width:(int_of line_no w) ~init:(int_of line_no init) ())
    | "node" :: name :: "=" :: rhs when rhs <> [] ->
      let c = the_circuit line_no in
      (match parse_node line_no c name rhs with
       | node -> bind line_no name node
       | exception Invalid_argument msg ->
         failwith (Printf.sprintf "line %d: %s" line_no msg))
    | "connect" :: [ rname; nname ] ->
      (match Netlist.connect (resolve line_no rname) (resolve line_no nname) with
       | () -> ()
       | exception Invalid_argument msg ->
         failwith (Printf.sprintf "line %d: %s" line_no msg))
    | "output" :: [ port; nname ] ->
      Netlist.output (the_circuit line_no) port (resolve line_no nname)
    | _ -> failwith (Printf.sprintf "line %d: cannot parse %S" line_no raw)
  in
  String.split_on_char '\n' text |> List.iteri (fun i l -> handle (i + 1) l);
  match !circuit with
  | Some c -> c
  | None -> failwith "line 1: empty input (no circuit line)"

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))
