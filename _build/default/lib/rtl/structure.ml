open Ir

let levels c =
  let lvl = Array.make c.ncount 0 in
  let level_of n =
    match n.op with
    | Input | Const _ | Reg _ -> 0
    | _ -> 1 + List.fold_left (fun acc m -> max acc lvl.(m.id)) 0 (fanins n)
  in
  List.iter (fun n -> lvl.(n.id) <- level_of n) (nodes c);
  lvl

let fanout_counts c =
  let fo = Array.make c.ncount 0 in
  let count n =
    List.iter (fun m -> fo.(m.id) <- fo.(m.id) + 1) (fanins n);
    match n.op with
    | Reg { next = Some nx; _ } -> fo.(nx.id) <- fo.(nx.id) + 1
    | _ -> ()
  in
  List.iter count (nodes c);
  fo

let coi ?(through_regs = true) c roots =
  let mark = Array.make c.ncount false in
  let rec visit n =
    if not mark.(n.id) then begin
      mark.(n.id) <- true;
      List.iter visit (fanins n);
      match n.op with
      | Reg { next = Some nx; _ } when through_regs -> visit nx
      | _ -> ()
    end
  in
  List.iter visit roots;
  mark

let predicate_roots c =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add n =
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.replace seen n.id ();
      out := n :: !out
    end
  in
  let scan n =
    match n.op with
    | Cmp _ -> add n
    | Mux { sel; _ } when not (is_bool n) -> add sel
    | _ -> ()
  in
  List.iter scan (nodes c);
  List.rev !out

let predicate_cone c =
  let mark = Array.make c.ncount false in
  let rec visit n =
    if is_bool n && not mark.(n.id) then begin
      mark.(n.id) <- true;
      match n.op with
      | Input | Const _ | Reg _ | Cmp _ -> ()
      | _ -> List.iter visit (fanins n)
    end
  in
  List.iter visit (predicate_roots c);
  mark

let candidate_gates c =
  let cone = predicate_cone c in
  let lvl = levels c in
  let is_candidate n =
    cone.(n.id)
    &&
    match n.op with
    | Not _ | And _ | Or _ | Xor _ | Cmp _ -> true
    | _ -> false
  in
  nodes c
  |> List.filter is_candidate
  |> List.stable_sort (fun a b -> compare lvl.(a.id) lvl.(b.id))

let op_counts c =
  let arith = ref 0 and boolean = ref 0 in
  let count n =
    match n.op with
    | Input | Const _ | Reg _ -> ()
    | Not _ | And _ | Or _ | Xor _ -> incr boolean
    | Cmp _ -> incr arith
    | Mux _ when is_bool n -> incr boolean
    | Mux _ | Add _ | Sub _ | Mul_const _ | Concat _ | Extract _ | Zext _
    | Shl _ | Shr _ | Bitand _ | Bitor _ | Bitxor _ -> incr arith
  in
  List.iter count (nodes c);
  (!arith, !boolean)
