(** Structural analyses over {!Ir} circuits.

    Implements the pre-processing of §3 step 1 (level ordering by
    distance from primary inputs and extraction of the predicate logic
    that controls the data-path) and the fanout statistics used to
    seed the decision heuristics of §2.4 and §4. *)

open Ir

val levels : circuit -> int array
(** [levels c] maps node id to combinational level: inputs, constants
    and registers are level 0; every other node is one more than the
    maximum of its fanins. *)

val fanout_counts : circuit -> int array
(** Number of combinational fanout references per node id (register
    next-state edges included). *)

val coi : ?through_regs:bool -> circuit -> node list -> bool array
(** [coi c roots] marks the cone of influence of [roots]: every node
    whose value can affect a root.  With [through_regs] (default
    [true]) the cone follows register next-state inputs. *)

val predicate_roots : circuit -> node list
(** Predicate signals of §3: Boolean inputs that control word-level
    operators (mux selects) and comparator outputs — "all operations
    in RTL that return a Boolean value and interact with the
    data-path". *)

val predicate_cone : circuit -> bool array
(** The Boolean control logic feeding the predicate roots: the
    Boolean-width transitive fanin of {!predicate_roots} (cut at
    non-Boolean nodes, inputs and registers). *)

val candidate_gates : circuit -> node list
(** Gates eligible for static predicate learning (§3 step 2): Boolean
    gates and comparators in the predicate cone, in increasing level
    order. *)

val op_counts : circuit -> int * int
(** [(arith, bool)] operator counts, mirroring columns 3–4 of
    Table 2: word-level operators vs Boolean gates (inputs, constants
    and registers are not counted). *)
