lib/baselines/bitblast.ml: Array Buffer List Printf Rtlsat_interval Rtlsat_rtl Rtlsat_sat
