lib/baselines/bitblast.mli: Ir Rtlsat_interval Rtlsat_rtl Rtlsat_sat
