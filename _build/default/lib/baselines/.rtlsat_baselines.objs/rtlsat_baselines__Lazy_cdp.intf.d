lib/baselines/lazy_cdp.mli: Rtlsat_constr
