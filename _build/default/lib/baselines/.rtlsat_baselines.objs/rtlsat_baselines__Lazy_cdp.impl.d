lib/baselines/lazy_cdp.ml: Array List Option Rtlsat_constr Rtlsat_fme Rtlsat_interval Rtlsat_sat Unix
