(** Eager Boolean translation: bit-blast the RTL netlist to CNF and
    solve with the CDCL engine.

    This is "the most popular method of solving a satisfiability
    problem on RTL" from the paper's introduction, and our stand-in
    for UCLID's eager SAT-based approach in Table 2 — everything,
    including the data-path, is pushed into a Boolean SAT solver
    through ripple-carry adders, borrow-chain comparators and per-bit
    multiplexers. *)

open Rtlsat_rtl

type t

val encode : Ir.circuit -> t
(** @raise Invalid_argument on a sequential circuit. *)

val solver : t -> Rtlsat_sat.Cdcl.t

val assume_bool : t -> Ir.node -> bool -> unit

val assume_interval : t -> Ir.node -> Rtlsat_interval.Interval.t -> unit
(** Encodes the two comparisons against constants as circuits. *)

type result =
  | Sat
  | Unsat
  | Timeout

val solve : ?deadline:float -> t -> result

val to_dimacs : t -> string
(** The current CNF (including assumptions added so far) in DIMACS
    format, for cross-checking with external SAT solvers. *)

val node_value : t -> Ir.node -> int
(** Word value of a node in the model after [solve] returned [Sat]. *)

val model_env : t -> Rtlsat_rtl.Ir.node -> int
(** Alias of {!node_value} in function position for witness replay. *)
