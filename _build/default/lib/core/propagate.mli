(** Hybrid deduction — the [Ddeduce()] of Algorithm 1.

    Event-driven propagation to bounds consistency: Boolean constraint
    propagation over (hybrid) clauses and interval constraint
    propagation over the arithmetic constraints (§2.2), every deduced
    fact carrying its antecedent atoms for the hybrid implication
    graph. *)

open Rtlsat_constr.Types

val run : ?full:bool -> State.t -> atom array option
(** Propagate to fixpoint; [Some conflict] on inconsistency (the atoms
    are entailed and jointly inconsistent).  [full] additionally scans
    every clause and constraint once first — required for the initial
    root propagation, where unit clauses have produced no events yet. *)

val check_clause : State.t -> int -> unit
(** Examine one clause: no-op if satisfied or undetermined, asserts
    the unit atom, or @raise State.Conflict when falsified. *)

val propagate_constr : State.t -> int -> unit
(** Narrow the variables of one arithmetic constraint.
    @raise State.Conflict on empty domains. *)
