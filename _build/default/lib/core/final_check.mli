(** The arithmetic-solver call at the bottom of Algorithm 1: when all
    Boolean variables are assigned and propagation is at fixpoint, the
    remaining solution box is checked for an integer point solution by
    the FME/Omega oracle (§2.4). *)

open Rtlsat_constr.Types

type outcome =
  | Model of int array       (** a full satisfying assignment *)
  | Conflict_atoms of atom array
      (** the box holds no solution; entailed atoms explaining why *)
  | Resource_out            (** search budget exhausted (rare) *)

val run : ?max_nodes:int -> State.t -> outcome
(** Precondition: every Boolean variable is assigned and propagation
    is at fixpoint. *)
