lib/core/predicate_learning.mli: Rtlsat_constr State
