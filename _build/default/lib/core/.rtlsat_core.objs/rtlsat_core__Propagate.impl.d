lib/core/propagate.ml: Array List Option Rtlsat_constr State
