lib/core/conflict.ml: Array Hashtbl List Option Rtlsat_constr State
