lib/core/state.ml: Array Format Hashtbl Heap List Rtlsat_constr Rtlsat_interval
