lib/core/state.mli: Format Heap Rtlsat_constr Rtlsat_interval
