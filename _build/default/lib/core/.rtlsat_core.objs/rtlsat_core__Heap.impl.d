lib/core/heap.ml: Array
