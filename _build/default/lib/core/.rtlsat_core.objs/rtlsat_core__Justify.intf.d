lib/core/justify.mli: Rtlsat_constr State
