lib/core/heap.mli:
