lib/core/final_check.mli: Rtlsat_constr State
