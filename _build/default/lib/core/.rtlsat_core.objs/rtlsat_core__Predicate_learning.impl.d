lib/core/predicate_learning.ml: Array Hashtbl List Propagate Rtlsat_constr Rtlsat_rtl State Unix
