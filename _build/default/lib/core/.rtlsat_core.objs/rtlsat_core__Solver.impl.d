lib/core/solver.ml: Array Conflict Final_check Heap Justify List Option Predicate_learning Propagate Random Rtlsat_constr Rtlsat_rtl State Unix
