lib/core/solver.mli: Rtlsat_constr
