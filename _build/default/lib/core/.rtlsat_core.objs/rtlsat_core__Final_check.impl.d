lib/core/final_check.ml: Array Hashtbl List Option Rtlsat_constr Rtlsat_fme State
