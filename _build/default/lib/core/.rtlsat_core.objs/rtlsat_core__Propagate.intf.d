lib/core/propagate.mli: Rtlsat_constr State
