lib/core/conflict.mli: Rtlsat_constr State
