lib/core/justify.ml: Array List Rtlsat_constr Rtlsat_interval Rtlsat_rtl State
