(** Static predicate learning (§3): recursive learning on the
    predicate logic of the RTL, extended across the data-path by
    interval constraint propagation.

    For each candidate gate (Boolean gates and comparators in the
    predicate cone, lowest level first) and its controlling output
    value, every way of justifying that value is probed in isolation;
    implications common to all ways become learned clauses
    [(¬val ∨ a)], which are immediately available to later probes.
    A threshold caps the number of learned relations (§3.1), and the
    recursion depth generalizes the paper's level 1.

    The learned relations also bias the search (§3 step 5 and §4.4):
    variables appearing in them get activity bumps, and the per-select
    polarity counts returned here let the structural strategy prefer
    mux select values that satisfy the most learned relations. *)

type summary = {
  relations : int;        (** learned clauses added *)
  probes : int;           (** probe levels pushed *)
  learn_time : float;     (** seconds *)
  root_unsat : bool;      (** learning refuted the problem outright *)
  pos_score : int array;  (** var → #learned relations containing [Pos v] *)
  neg_score : int array;
}

val run :
  ?threshold:int ->
  ?depth:int ->
  ?deadline:float ->
  State.t ->
  Rtlsat_constr.Encode.t ->
  summary
(** Precondition: level 0, root propagation already at fixpoint.
    Default [threshold]: [min (#candidate gates) 2000] as in §5.2;
    default [depth]: 1. *)
