lib/sat/cdcl.mli:
