lib/sat/dimacs.mli: Cdcl Format
