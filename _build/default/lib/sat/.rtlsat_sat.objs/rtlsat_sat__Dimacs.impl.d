lib/sat/dimacs.ml: Array Cdcl Format List Printf String
