lib/sat/cdcl.ml: Array List Unix
