(** A standalone CDCL Boolean satisfiability solver.

    Implements the modern DPLL variant sketched in §2.4: two-watched-
    literal unit propagation, first-UIP conflict analysis with clause
    learning, non-chronological backtracking, exponentially-decaying
    variable activities (VSIDS), phase saving and Luby restarts.

    This is the Boolean engine behind the eager bit-blasting baseline
    (the UCLID stand-in) and the propositional skeleton of the lazy
    combined-decision-procedure baseline (the ICS stand-in). *)

type t

type lit = int
(** Literal encoding: [2*v] is the positive literal of variable [v],
    [2*v+1] the negative one. *)

val pos : int -> lit
val neg : int -> lit
val lit_var : lit -> int
val lit_sign : lit -> bool
(** [true] for positive literals. *)

val lit_not : lit -> lit

val create : unit -> t

val new_var : t -> int

val n_vars : t -> int
val n_clauses : t -> int
val n_conflicts : t -> int

val add_clause : t -> lit list -> unit
(** May be called only at decision level 0 (before or between
    [solve] calls).  An empty clause makes the instance trivially
    unsatisfiable. *)

val fold_clauses : ('a -> lit array -> 'a) -> 'a -> t -> 'a
(** Fold over the stored clauses (original and learned), in insertion
    order.  Unit clauses are not stored — see {!root_units}. *)

val root_units : t -> lit list
(** Literals asserted at decision level 0 (unit input clauses and
    learned units), in assignment order. *)

type outcome =
  | Sat
  | Unsat
  | Timeout

val solve : ?deadline:float -> ?assumptions:lit list -> t -> outcome
(** [deadline] is an absolute [Unix.gettimeofday]-style instant;
    the solver polls it and returns [Timeout] when exceeded.
    With [assumptions], [Unsat] means unsatisfiable under them. *)

val value : t -> int -> bool
(** Model value of a variable after [solve] returned [Sat]. *)

val model : t -> bool array
