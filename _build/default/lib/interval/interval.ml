type t = { lo : int; hi : int }

let make lo hi =
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let make_opt lo hi = if lo > hi then None else Some { lo; hi }

let point v = { lo = v; hi = v }

let of_width w =
  if w < 1 || w > 61 then invalid_arg "Interval.of_width";
  { lo = 0; hi = (1 lsl w) - 1 }

let bool_dom = { lo = 0; hi = 1 }

let lo t = t.lo
let hi t = t.hi
let size t = t.hi - t.lo + 1

let is_point t = t.lo = t.hi
let value t = if t.lo = t.hi then Some t.lo else None

let mem v t = t.lo <= v && v <= t.hi
let equal a b = a.lo = b.lo && a.hi = b.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi

let inter a b = make_opt (max a.lo b.lo) (min a.hi b.hi)
let disjoint a b = max a.lo b.lo > min a.hi b.hi
let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let add a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }
let sub a b = { lo = a.lo - b.hi; hi = a.hi - b.lo }
let neg a = { lo = -a.hi; hi = -a.lo }

let mul_const k a =
  if k >= 0 then { lo = k * a.lo; hi = k * a.hi }
  else { lo = k * a.hi; hi = k * a.lo }

let mul a b =
  let p1 = a.lo * b.lo and p2 = a.lo * b.hi and p3 = a.hi * b.lo and p4 = a.hi * b.hi in
  { lo = min (min p1 p2) (min p3 p4); hi = max (max p1 p2) (max p3 p4) }

let shift_left a k = { lo = a.lo lsl k; hi = a.hi lsl k }

(* floor division by 2^k; our domains are non-negative but keep it
   correct for negative bounds too *)
let fdiv_pow2 v k = if v >= 0 then v lsr k else -(((-v) + (1 lsl k) - 1) lsr k)

let shift_right a k = { lo = fdiv_pow2 a.lo k; hi = fdiv_pow2 a.hi k }

let remove a b =
  let left = make_opt a.lo (min a.hi (b.lo - 1)) in
  let right = make_opt (max a.lo (b.hi + 1)) a.hi in
  List.filter_map (fun x -> x) [ left; right ]

let clamp_lo k a = make_opt (max k a.lo) a.hi
let clamp_hi k a = make_opt a.lo (min k a.hi)

let to_seq t =
  let rec go v () = if v > t.hi then Seq.Nil else Seq.Cons (v, go (v + 1)) in
  go t.lo

let pp fmt t =
  if t.lo = t.hi then Format.fprintf fmt "<%d>" t.lo
  else Format.fprintf fmt "<%d,%d>" t.lo t.hi

let to_string t = Format.asprintf "%a" pp t
