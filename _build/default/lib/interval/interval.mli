(** Closed finite integer intervals [⟨lo, hi⟩] with [lo <= hi].

    This is the domain representation of §2.2 of the paper: a word
    variable of bit-width [w] has domain [⟨0, 2^w - 1⟩], and interval
    constraint propagation narrows such intervals.  The type never
    represents the empty set; operations that can produce it return an
    [option]. *)

type t = private { lo : int; hi : int }

val make : int -> int -> t
(** [make lo hi]. @raise Invalid_argument if [lo > hi]. *)

val make_opt : int -> int -> t option
(** [make_opt lo hi] is [None] when [lo > hi]. *)

val point : int -> t
(** Singleton interval. *)

val of_width : int -> t
(** [of_width w] is [⟨0, 2^w - 1⟩]. @raise Invalid_argument if
    [w < 1] or [w > 61]. *)

val bool_dom : t
(** [⟨0, 1⟩]. *)

val lo : t -> int
val hi : t -> int
val size : t -> int
(** Number of integers contained. *)

val is_point : t -> bool
val value : t -> int option
(** [Some v] when the interval is the singleton [v]. *)

val mem : int -> t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] iff every element of [a] is in [b]. *)

val inter : t -> t -> t option
val disjoint : t -> t -> bool
val hull : t -> t -> t
(** Smallest interval containing both. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul_const : int -> t -> t
val mul : t -> t -> t
(** Extension of [( * )] per Equation (1) of the paper. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Pointwise floor of division by [2^k] (monotone, hence interval). *)

val remove : t -> t -> t list
(** [remove a b] is [a \ b] as zero, one or two intervals, in
    increasing order. *)

val clamp_lo : int -> t -> t option
(** [clamp_lo k a] is [a ∩ ⟨k, ∞⟩]. *)

val clamp_hi : int -> t -> t option
(** [clamp_hi k a] is [a ∩ ⟨-∞, k⟩]. *)

val to_seq : t -> int Seq.t
(** All members in increasing order (for exhaustive checks in tests). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
