lib/interval/interval.ml: Format List Seq
