lib/interval/interval.mli: Format Seq
