(* Sign-magnitude bignum, magnitude little-endian in base 2^30.
   Invariants: mag has no trailing zero limb; sign = 0 iff mag = [||];
   sign is -1, 0 or 1. *)

let base_bits = 30
let base = 1 lsl base_bits
let limb_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ---- magnitude helpers ---- *)

let mag_normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_of_int_abs v =
  (* v >= 0, fits in native int (at most 62 bits -> 3 limbs) *)
  if v = 0 then [||]
  else begin
    let rec limbs acc v = if v = 0 then List.rev acc else limbs ((v land limb_mask) :: acc) (v lsr base_bits) in
    Array.of_list (limbs [] v)
  end

let mag_cmp a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  mag_normalize r

(* a - b, requires a >= b *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  mag_normalize r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        (* ai*bj <= (2^30-1)^2 < 2^60; + limb + carry stays < 2^62 *)
        let acc = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- acc land limb_mask;
        carry := acc lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let acc = r.(!k) + !carry in
        r.(!k) <- acc land limb_mask;
        carry := acc lsr base_bits;
        incr k
      done
    done;
    mag_normalize r
  end

let mag_bits a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
    ((n - 1) * base_bits) + width 0 top
  end

let mag_shift_left a k =
  if Array.length a = 0 || k = 0 then a
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr base_bits
    done;
    mag_normalize r
  end

let mag_shift_right a k =
  if Array.length a = 0 || k = 0 then a
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    if limbs >= la then [||]
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi = if bits > 0 && i + limbs + 1 < la then (a.(i + limbs + 1) lsl (base_bits - bits)) land limb_mask else 0 in
        r.(i) <- lo lor hi
      done;
      mag_normalize r
    end
  end

let mag_test_bit a k =
  let limb = k / base_bits and bit = k mod base_bits in
  limb < Array.length a && (a.(limb) lsr bit) land 1 = 1

(* binary long division on magnitudes: (quotient, remainder) *)
let mag_divmod a b =
  if Array.length b = 0 then raise Division_by_zero;
  if mag_cmp a b < 0 then ([||], a)
  else begin
    let nbits = mag_bits a in
    (* quotient bits collected little-endian into limb array *)
    let qlimbs = Array.make (nbits / base_bits + 1) 0 in
    let r = ref [||] in
    for bit = nbits - 1 downto 0 do
      r := mag_shift_left !r 1;
      if mag_test_bit a bit then begin
        (* set bit 0 of r *)
        let rr = if Array.length !r = 0 then [| 1 |] else begin
          let c = Array.copy !r in c.(0) <- c.(0) lor 1; c end in
        r := rr
      end;
      if mag_cmp !r b >= 0 then begin
        r := mag_sub !r b;
        qlimbs.(bit / base_bits) <- qlimbs.(bit / base_bits) lor (1 lsl (bit mod base_bits))
      end
    done;
    (mag_normalize qlimbs, !r)
  end

(* small-divisor fast path: divisor fits in one limb *)
let mag_divmod_small a d =
  assert (d > 0 && d < base);
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_normalize q, !r)

(* ---- signed interface ---- *)

let mk sign mag = if Array.length mag = 0 then zero else { sign; mag }

let of_int v =
  if v = 0 then zero
  else if v > 0 then { sign = 1; mag = mag_of_int_abs v }
  else { sign = -1; mag = mag_of_int_abs (-v) }
  (* min_int: -v overflows back to min_int; handle by splitting *)

let of_int v =
  if v = min_int then
    let half = { sign = -1; mag = mag_of_int_abs (-(v / 2)) } in
    let dbl = mk (-1) (mag_add half.mag half.mag) in
    dbl
  else of_int v

let one = of_int 1
let minus_one = of_int (-1)

let sign x = x.sign
let is_zero x = x.sign = 0
let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_cmp a.mag b.mag
  else mag_cmp b.mag a.mag

let equal a b = compare a b = 0
let is_one x = equal x one

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then mk a.sign (mag_add a.mag b.mag)
  else begin
    let c = mag_cmp a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then mk a.sign (mag_sub a.mag b.mag)
    else mk b.sign (mag_sub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else mk (a.sign * b.sign) (mag_mul a.mag b.mag)

let mul_int a k = mul a (of_int k)

let tdiv_rem a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = mag_divmod a.mag b.mag in
  let qs = a.sign * b.sign and rs = a.sign in
  (mk qs q, mk rs r)

let fdiv a b =
  let q, r = tdiv_rem a b in
  if is_zero r || sign a * sign b >= 0 then q else sub q one

let cdiv a b =
  let q, r = tdiv_rem a b in
  if is_zero r || sign a * sign b <= 0 then q else add q one

let erem a b =
  if b.sign = 0 then raise Division_by_zero;
  let _, r = tdiv_rem a b in
  if r.sign < 0 then add r (abs b) else r

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (erem a b)

let lcm a b =
  if is_zero a || is_zero b then zero
  else begin
    let g = gcd a b in
    abs (mul (fst (tdiv_rem a g)) b)
  end

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc base n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc base) (mul base base) (n lsr 1)
    else go acc (mul base base) (n lsr 1)
  in
  go one x n

let shift_left x k = if k = 0 then x else mk x.sign (mag_shift_left x.mag k)

let shift_right x k =
  if k = 0 then x
  else if x.sign >= 0 then mk 1 (mag_shift_right x.mag k)
  else fdiv x (pow (of_int 2) k)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_int_opt x =
  (* native ints hold 62 bits + sign; accept up to 62-bit magnitudes that fit *)
  if x.sign = 0 then Some 0
  else if mag_bits x.mag > 62 then None
  else begin
    let v = ref 0 in
    for i = Array.length x.mag - 1 downto 0 do
      v := (!v lsl base_bits) lor x.mag.(i)
    done;
    if !v < 0 then None else Some (x.sign * !v)
  end

let to_int x =
  match to_int_opt x with
  | Some v -> v
  | None -> failwith "Bigint.to_int: overflow"

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let chunks = ref [] in
    let m = ref x.mag in
    while Array.length !m > 0 do
      let q, r = mag_divmod_small !m 1_000_000_000 in
      chunks := r :: !chunks;
      m := q
    done;
    let b = Buffer.create 32 in
    if x.sign < 0 then Buffer.add_char b '-';
    (match !chunks with
     | [] -> Buffer.add_char b '0'
     | first :: rest ->
       Buffer.add_string b (string_of_int first);
       List.iter (fun c -> Buffer.add_string b (Printf.sprintf "%09d" c)) rest);
    Buffer.contents b
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty";
  let negp = s.[0] = '-' in
  let start = if negp || s.[0] = '+' then 1 else 0 in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if negp then neg !acc else !acc

let pp fmt x = Format.pp_print_string fmt (to_string x)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
