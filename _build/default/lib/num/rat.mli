(** Exact rational numbers over {!Bigint}.

    Always normalized: the denominator is positive and the fraction is
    in lowest terms.  Used by Fourier–Motzkin elimination. *)

type t

val zero : t
val one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] normalizes [num/den]. @raise Division_by_zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints num den]. @raise Division_by_zero. *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero. *)

val inv : t -> t
(** @raise Division_by_zero. *)

val min : t -> t -> t
val max : t -> t -> t

val floor : t -> Bigint.t
val ceil : t -> Bigint.t
val is_integer : t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
