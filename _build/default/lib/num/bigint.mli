(** Arbitrary-precision signed integers.

    A small, dependency-free bignum used by the Fourier–Motzkin
    eliminator, where coefficient growth overflows native [int]s.
    Values are immutable.  Representation: sign and little-endian
    magnitude in base [2^30]. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val to_int : t -> int
(** [to_int x] is [x] as a native integer.
    @raise Failure if [x] does not fit in a native [int]. *)

val to_int_opt : t -> int option

val of_string : string -> t
(** Decimal representation, optionally preceded by ['-'].
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t

val tdiv_rem : t -> t -> t * t
(** Truncated division: quotient rounded toward zero; the remainder
    has the sign of the dividend.  @raise Division_by_zero. *)

val fdiv : t -> t -> t
(** Floor division (quotient rounded toward negative infinity). *)

val cdiv : t -> t -> t
(** Ceiling division (quotient rounded toward positive infinity). *)

val erem : t -> t -> t
(** Euclidean remainder: [0 <= erem a b < abs b]. *)

val gcd : t -> t -> t
(** Greatest common divisor; non-negative; [gcd 0 0 = 0]. *)

val lcm : t -> t -> t

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. @raise Invalid_argument on negative [n]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift (floor of division by a power of two). *)

val min : t -> t -> t
val max : t -> t -> t

val is_zero : t -> bool
val is_one : t -> bool

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
