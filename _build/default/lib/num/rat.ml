module B = Bigint

(* Invariant: den > 0; gcd (|num|, den) = 1; zero is 0/1. *)
type t = { num : B.t; den : B.t }

let make num den =
  if B.is_zero den then raise Division_by_zero;
  let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
  if B.is_zero num then { num = B.zero; den = B.one }
  else begin
    let g = B.gcd num den in
    if B.is_one g then { num; den }
    else { num = fst (B.tdiv_rem num g); den = fst (B.tdiv_rem den g) }
  end

let of_bigint n = { num = n; den = B.one }
let of_int n = of_bigint (B.of_int n)
let of_ints n d = make (B.of_int n) (B.of_int d)

let zero = of_int 0
let one = of_int 1

let num t = t.num
let den t = t.den

let sign t = B.sign t.num

let compare a b = B.compare (B.mul a.num b.den) (B.mul b.num a.den)
let equal a b = compare a b = 0

let neg a = { a with num = B.neg a.num }
let abs a = { a with num = B.abs a.num }

let add a b = make (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)
let sub a b = add a (neg b)
let mul a b = make (B.mul a.num b.num) (B.mul a.den b.den)
let inv a = make a.den a.num
let div a b = mul a (inv b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor a = B.fdiv a.num a.den
let ceil a = B.cdiv a.num a.den
let is_integer a = B.is_one a.den

let to_string a =
  if is_integer a then B.to_string a.num
  else B.to_string a.num ^ "/" ^ B.to_string a.den

let pp fmt a = Format.pp_print_string fmt (to_string a)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
