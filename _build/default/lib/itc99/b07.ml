(* Reconstruction of ITC'99 b07: count points on a straight line.  A
   three-phase FSM loads the line parameters, then streams (x, y)
   samples and counts those that satisfy y = a*x + b over 8-bit
   arithmetic — a data-path-dominant circuit with a multiply-by-
   constant, adders and an equality comparator. *)

open Rtlsat_rtl

let s_load = 0
let s_run = 1
let s_done = 2

let slope = 3 (* the fixed slope of the reference line *)

let build () =
  let c = Netlist.create "b07" in
  let x = Netlist.input c ~name:"x" 8 in
  let y = Netlist.input c ~name:"y" 8 in
  let start = Netlist.input c ~name:"start" 1 in
  let stop = Netlist.input c ~name:"stop" 1 in
  let st = Netlist.reg c ~name:"state" ~width:2 ~init:s_load () in
  let intercept = Netlist.reg c ~name:"intercept" ~width:8 ~init:0 () in
  let hits = Netlist.reg c ~name:"hits" ~width:8 ~init:0 () in
  let samples = Netlist.reg c ~name:"samples" ~width:8 ~init:0 () in
  let is v = Netlist.eq_const c st v in
  let k2 v = Netlist.const c ~width:2 v in
  (* the line: y' = (slope*x + intercept) mod 256, computed with an
     exact multiply then truncated back to 8 bits *)
  let product = Netlist.mul_const c slope x in (* width 10 *)
  let px = Netlist.extract c product ~msb:7 ~lsb:0 in
  let expected = Netlist.add c px intercept in
  let on_line = Netlist.cmp c ~name:"on_line" Ir.Eq y expected in
  let running = is s_run in
  let counting = Netlist.and_ c [ running; on_line ] in
  let hits' =
    Netlist.mux c ~name:"hits_next" ~sel:counting ~t:(Netlist.inc c hits) ~e:hits ()
  in
  let samples' =
    Netlist.mux c ~name:"samples_next" ~sel:running ~t:(Netlist.inc c samples)
      ~e:samples ()
  in
  let intercept' =
    Netlist.mux c ~name:"intercept_next"
      ~sel:(Netlist.and_ c [ is s_load; start ])
      ~t:y ~e:intercept ()
  in
  let from_load = Netlist.mux c ~sel:start ~t:(k2 s_run) ~e:(k2 s_load) () in
  let from_run = Netlist.mux c ~sel:stop ~t:(k2 s_done) ~e:(k2 s_run) () in
  let next =
    Netlist.mux c ~name:"state_next" ~sel:(is s_load) ~t:from_load
      ~e:(Netlist.mux c ~sel:running ~t:from_run ~e:(k2 s_done) ())
      ()
  in
  Netlist.connect st next;
  Netlist.connect intercept intercept';
  Netlist.connect hits hits';
  Netlist.connect samples samples';
  Netlist.output c "hits" hits;
  Netlist.output c "done" (is s_done);
  (* properties *)
  (* 1: hits never outrun samples — a relational data-path invariant *)
  let p1 = Netlist.le c hits samples in
  (* 2: nothing is counted while loading *)
  let p2 =
    Netlist.implies c (is s_load) (Netlist.eq_const c hits 0)
  in
  (* 3: violable — a point on the line can be found *)
  let p3 = Netlist.implies c running (Netlist.not_ c on_line) in
  (c, [ ("1", p1); ("2", p2); ("3", p3) ])
