(* Reconstruction of ITC'99 b11: scramble string.  A 6-bit character
   stream is scrambled by a keyed rotate-and-add transform; the key
   register evolves with each character.  Heavy on concat/extract
   (the rotation) and wrap-around addition. *)

open Rtlsat_rtl

let build () =
  let c = Netlist.create "b11" in
  let ch = Netlist.input c ~name:"char_in" 6 in
  let stb = Netlist.input c ~name:"strobe" 1 in
  let mode = Netlist.input c ~name:"mode" 1 in
  let key = Netlist.reg c ~name:"key" ~width:6 ~init:9 () in
  let out = Netlist.reg c ~name:"char_out" ~width:6 ~init:0 () in
  let count = Netlist.reg c ~name:"count" ~width:4 ~init:0 () in
  (* rotate the character left by two: scramble's bit permutation *)
  let rot =
    Netlist.concat c
      ~hi:(Netlist.extract c ch ~msb:3 ~lsb:0)
      ~lo:(Netlist.extract c ch ~msb:5 ~lsb:4)
  in
  (* keyed transform: rot + key (mode 1) or rot xor-ish via sub (mode 0) *)
  let added = Netlist.add c rot key in
  let subbed = Netlist.sub c rot key in
  let scrambled = Netlist.mux c ~name:"scrambled" ~sel:mode ~t:added ~e:subbed () in
  let out' = Netlist.mux c ~name:"out_next" ~sel:stb ~t:scrambled ~e:out () in
  (* the key walks a fixed odd stride so it cycles all 64 values *)
  let key' =
    Netlist.mux c ~name:"key_next" ~sel:stb
      ~t:(Netlist.add c key (Netlist.const c ~width:6 7))
      ~e:key ()
  in
  let count' =
    Netlist.mux c ~name:"count_next" ~sel:stb ~t:(Netlist.inc c count) ~e:count ()
  in
  Netlist.connect key key';
  Netlist.connect out out';
  Netlist.connect count count';
  Netlist.output c "char_out" out;
  (* properties *)
  (* 1: the key is never zero before 64 strobes — it starts at 9 and
     walks stride 7, hitting 0 only after 55 steps *)
  let p1 =
    Netlist.implies c
      (Netlist.lt c count (Netlist.const c ~width:4 8))
      (Netlist.ne c key (Netlist.const c ~width:6 0))
  in
  (* 2: the scrambler is keyed: with the initial key, an all-zero
     character never maps to itself (0 + 9 = 9, 0 - 9 = 55) *)
  let p2 =
    Netlist.implies c
      (Netlist.eq_const c count 0)
      (Netlist.implies c stb (Netlist.ne c scrambled (Netlist.const c ~width:6 0)))
  in
  (* 3: violable — some character maps to zero under some key *)
  let p3 = Netlist.ne c out (Netlist.const c ~width:6 0) in
  (c, [ ("1", p1); ("2", p2); ("3", p3) ])
