(* Reconstruction of ITC'99 b05: elaborate the contents of a memory.
   A four-entry register file is filled during a write phase, then a
   scan FSM sweeps the addresses computing the running maximum.  The
   read and write networks are mux trees over address comparators —
   the deepest predicate/mux nesting in the suite, which is exactly
   what RTL justification is about. *)

open Rtlsat_rtl

let s_write = 0
let s_scan = 1
let s_done = 2

let build () =
  let c = Netlist.create "b05" in
  let waddr = Netlist.input c ~name:"waddr" 2 in
  let wdata = Netlist.input c ~name:"wdata" 8 in
  let wen = Netlist.input c ~name:"wen" 1 in
  let go = Netlist.input c ~name:"go" 1 in
  let st = Netlist.reg c ~name:"state" ~width:2 ~init:s_write () in
  let rf = Array.init 4 (fun i ->
      Netlist.reg c ~name:(Printf.sprintf "rf%d" i) ~width:8 ~init:0 ())
  in
  let ptr = Netlist.reg c ~name:"ptr" ~width:3 ~init:0 () in
  let mx = Netlist.reg c ~name:"mx" ~width:8 ~init:0 () in
  let is v = Netlist.eq_const c st v in
  let k2 v = Netlist.const c ~width:2 v in
  let writing = is s_write in
  let scanning = is s_scan in
  (* write network: one mux per entry, guarded by an address compare *)
  Array.iteri
    (fun i r ->
       let hit =
         Netlist.and_ c [ writing; wen; Netlist.eq_const c waddr i ]
       in
       Netlist.connect r
         (Netlist.mux c ~name:(Printf.sprintf "rf%d_next" i) ~sel:hit ~t:wdata
            ~e:r ()))
    rf;
  (* read network: mux tree over the scan pointer *)
  let ptr_lo = Netlist.extract c ptr ~msb:1 ~lsb:0 in
  let rd01 =
    Netlist.mux c ~sel:(Netlist.eq_const c ptr_lo 1) ~t:rf.(1) ~e:rf.(0) ()
  in
  let rd23 =
    Netlist.mux c ~sel:(Netlist.eq_const c ptr_lo 3) ~t:rf.(3) ~e:rf.(2) ()
  in
  let high = Netlist.ge c ptr_lo (Netlist.const c ~width:2 2) in
  let rdata = Netlist.mux c ~name:"rdata" ~sel:high ~t:rd23 ~e:rd01 () in
  (* running maximum during the scan *)
  let bigger = Netlist.cmp c ~name:"rdata_gt_mx" Ir.Gt rdata mx in
  let mx' =
    Netlist.mux c ~name:"mx_next"
      ~sel:(Netlist.and_ c [ scanning; bigger ])
      ~t:rdata ~e:mx ()
  in
  let scan_done = Netlist.eq_const c ptr 4 in
  let ptr' =
    Netlist.mux c ~name:"ptr_next"
      ~sel:(Netlist.and_ c [ scanning; Netlist.not_ c scan_done ])
      ~t:(Netlist.inc c ptr) ~e:ptr ()
  in
  let from_write = Netlist.mux c ~sel:go ~t:(k2 s_scan) ~e:(k2 s_write) () in
  let from_scan = Netlist.mux c ~sel:scan_done ~t:(k2 s_done) ~e:(k2 s_scan) () in
  let next =
    Netlist.mux c ~name:"state_next" ~sel:writing ~t:from_write
      ~e:(Netlist.mux c ~sel:scanning ~t:from_scan ~e:(k2 s_done) ())
      ()
  in
  Netlist.connect st next;
  Netlist.connect ptr ptr';
  Netlist.connect mx mx';
  Netlist.output c "mx" mx;
  Netlist.output c "done" (is s_done);
  (* properties *)
  (* 1: once the sweep finished, mx dominates entry 0 — the entries
     are frozen after the write phase, so this is an invariant that
     needs the scan/maximum relation *)
  let p1 = Netlist.implies c (is s_done) (Netlist.ge c mx rf.(0)) in
  (* 2: the scan pointer never overruns the memory *)
  let p2 = Netlist.le c ptr (Netlist.const c ~width:3 4) in
  (* 3: violable — the sweep does complete *)
  let p3 = Netlist.not_ c (is s_done) in
  (c, [ ("1", p1); ("2", p2); ("3", p3) ])
