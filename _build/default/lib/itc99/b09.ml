(* Reconstruction of ITC'99 b09: a serial-to-serial converter.  Bits
   are shifted in, a parity bit is appended, and the extended frame is
   shifted out; two bit counters and two shift registers under a
   four-state FSM. *)

open Rtlsat_rtl

let s_recv = 0
let s_parity = 1
let s_send = 2
let s_gap = 3

let build () =
  let c = Netlist.create "b09" in
  let din = Netlist.input c ~name:"din" 1 in
  let st = Netlist.reg c ~name:"state" ~width:2 ~init:s_recv () in
  let inreg = Netlist.reg c ~name:"inreg" ~width:4 ~init:0 () in
  let outreg = Netlist.reg c ~name:"outreg" ~width:5 ~init:0 () in
  let incnt = Netlist.reg c ~name:"incnt" ~width:3 ~init:0 () in
  let outcnt = Netlist.reg c ~name:"outcnt" ~width:3 ~init:0 () in
  let parity = Netlist.reg c ~name:"parity" ~width:1 ~init:0 () in
  let is v = Netlist.eq_const c st v in
  let k2 v = Netlist.const c ~width:2 v in
  let receiving = is s_recv in
  let sending = is s_send in
  (* input side: shift din into a 4-bit register, track parity *)
  let in_shifted =
    Netlist.concat c ~hi:(Netlist.extract c inreg ~msb:2 ~lsb:0) ~lo:din
  in
  let inreg' = Netlist.mux c ~name:"inreg_next" ~sel:receiving ~t:in_shifted ~e:inreg () in
  let parity' =
    Netlist.mux c ~name:"parity_next" ~sel:receiving
      ~t:(Netlist.xor_ c parity din)
      ~e:(Netlist.mux c ~sel:(is s_gap) ~t:(Netlist.cfalse c) ~e:parity ())
      ()
  in
  let word_in = Netlist.eq_const c incnt 3 in
  let incnt' =
    Netlist.mux c ~name:"incnt_next" ~sel:receiving
      ~t:
        (Netlist.mux c ~sel:word_in ~t:(Netlist.const c ~width:3 0)
           ~e:(Netlist.inc c incnt) ())
      ~e:incnt ()
  in
  (* output side: frame = data + parity bit, shifted out MSB first *)
  let frame = Netlist.concat c ~hi:inreg ~lo:parity in
  let out_shifted = Netlist.shl c (Netlist.extract c outreg ~msb:3 ~lsb:0) 1 in
  let outreg' =
    Netlist.mux c ~name:"outreg_next" ~sel:(is s_parity) ~t:frame
      ~e:(Netlist.mux c ~sel:sending ~t:out_shifted ~e:outreg ())
      ()
  in
  let frame_out = Netlist.eq_const c outcnt 4 in
  let outcnt' =
    Netlist.mux c ~name:"outcnt_next" ~sel:sending
      ~t:
        (Netlist.mux c ~sel:frame_out ~t:(Netlist.const c ~width:3 0)
           ~e:(Netlist.inc c outcnt) ())
      ~e:(Netlist.const c ~width:3 0) ()
  in
  let from_recv = Netlist.mux c ~sel:word_in ~t:(k2 s_parity) ~e:(k2 s_recv) () in
  let from_send = Netlist.mux c ~sel:frame_out ~t:(k2 s_gap) ~e:(k2 s_send) () in
  let next =
    Netlist.mux c ~name:"state_next" ~sel:receiving ~t:from_recv
      ~e:
        (Netlist.mux c ~sel:(is s_parity) ~t:(k2 s_send)
           ~e:(Netlist.mux c ~sel:sending ~t:from_send ~e:(k2 s_recv) ())
           ())
      ()
  in
  Netlist.connect st next;
  Netlist.connect inreg inreg';
  Netlist.connect outreg outreg';
  Netlist.connect incnt incnt';
  Netlist.connect outcnt outcnt';
  Netlist.connect parity parity';
  Netlist.output c "dout" (Netlist.extract c outreg ~msb:4 ~lsb:4);
  (* properties *)
  (* 1: the input bit counter stays within a nibble *)
  let p1 = Netlist.le c incnt (Netlist.const c ~width:3 3) in
  (* 2: the output counter only advances while sending *)
  let p2 =
    Netlist.implies c (Netlist.not_ c sending) (Netlist.eq_const c outcnt 0)
  in
  (* 3: parity consistency — a frame of four ones carries even
     parity, so the all-ones pattern can never appear in the output
     register.  XOR chains are opaque to interval reasoning: this row
     needs real search *)
  let p3 = Netlist.ne c outreg (Netlist.const c ~width:5 31) in
  (c, [ ("1", p1); ("2", p2); ("3", p3) ])
