(* Reconstruction of ITC'99 b03: a resource arbiter.  Four requesters
   compete for one resource; a last-served pointer provides rotating
   priority and a depth counter tracks outstanding requests.  The
   one-hot grant logic is comparator/mux-based control over a small
   data-path — a good mix for the structural strategy. *)

open Rtlsat_rtl

let build () =
  let c = Netlist.create "b03" in
  let req0 = Netlist.input c ~name:"req0" 1 in
  let req1 = Netlist.input c ~name:"req1" 1 in
  let req2 = Netlist.input c ~name:"req2" 1 in
  let req3 = Netlist.input c ~name:"req3" 1 in
  let release = Netlist.input c ~name:"release" 1 in
  let last = Netlist.reg c ~name:"last" ~width:2 ~init:0 () in
  let busy = Netlist.reg c ~name:"busy" ~width:1 ~init:0 () in
  let owner = Netlist.reg c ~name:"owner" ~width:2 ~init:0 () in
  let depth = Netlist.reg c ~name:"depth" ~width:3 ~init:0 () in
  let reqs = [| req0; req1; req2; req3 |] in
  let any_req = Netlist.or_ c (Array.to_list reqs) in
  (* rotating priority: the requester after [last] wins; computed
     arithmetically so the hull spans the whole range *)
  let next_cand = Netlist.inc c last in
  let cand_req =
    (* request bit of the candidate, selected by comparators *)
    let pick i =
      Netlist.and_ c [ Netlist.eq_const c next_cand i; reqs.(i) ]
    in
    Netlist.or_ c [ pick 0; pick 1; pick 2; pick 3 ]
  in
  (* fall back to fixed priority when the rotating candidate is idle *)
  let fixed =
    Netlist.mux c ~sel:req0 ~t:(Netlist.const c ~width:2 0)
      ~e:
        (Netlist.mux c ~sel:req1 ~t:(Netlist.const c ~width:2 1)
           ~e:
             (Netlist.mux c ~sel:req2 ~t:(Netlist.const c ~width:2 2)
                ~e:(Netlist.const c ~width:2 3) ())
           ())
      ()
  in
  let winner = Netlist.mux c ~name:"winner" ~sel:cand_req ~t:next_cand ~e:fixed () in
  let granting = Netlist.and_ c [ Netlist.not_ c busy; any_req ] in
  let busy' =
    Netlist.mux c ~sel:granting ~t:(Netlist.ctrue c)
      ~e:(Netlist.mux c ~sel:release ~t:(Netlist.cfalse c) ~e:busy ())
      ()
  in
  let owner' = Netlist.mux c ~name:"owner_next" ~sel:granting ~t:winner ~e:owner () in
  let last' = Netlist.mux c ~name:"last_next" ~sel:granting ~t:winner ~e:last () in
  (* outstanding-request depth: +1 on grant, -1 on release *)
  let depth_up = Netlist.add c depth (Netlist.const c ~width:3 1) in
  let depth_down = Netlist.sub c depth (Netlist.const c ~width:3 1) in
  let depth' =
    Netlist.mux c ~name:"depth_next" ~sel:granting ~t:depth_up
      ~e:
        (Netlist.mux c
           ~sel:(Netlist.and_ c [ release; busy; Netlist.gt c depth (Netlist.const c ~width:3 0) ])
           ~t:depth_down ~e:depth ())
      ()
  in
  Netlist.connect busy busy';
  Netlist.connect owner owner';
  Netlist.connect last last';
  Netlist.connect depth depth';
  let grant = Netlist.and_ c [ busy; Netlist.ctrue c ] in
  Netlist.output c "grant" grant;
  Netlist.output c "owner" owner;
  (* properties *)
  (* 1: the depth counter never exceeds the four requesters *)
  let p1 = Netlist.le c depth (Netlist.const c ~width:3 4) in
  (* 2: granting and releasing are not confused: depth is positive
     whenever the resource is busy *)
  let p2 =
    Netlist.implies c busy (Netlist.ge c depth (Netlist.const c ~width:3 1))
  in
  (* 3: violable — the rotating pointer does reach requester 3 *)
  let p3 = Netlist.ne c last (Netlist.const c ~width:2 3) in
  (c, [ ("1", p1); ("2", p2); ("3", p3) ])
