lib/itc99/b07.ml: Ir Netlist Rtlsat_rtl
