lib/itc99/b01.mli: Rtlsat_rtl
