lib/itc99/b05.ml: Array Ir Netlist Printf Rtlsat_rtl
