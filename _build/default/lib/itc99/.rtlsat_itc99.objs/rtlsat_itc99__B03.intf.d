lib/itc99/b03.mli: Rtlsat_rtl
