lib/itc99/b06.mli: Rtlsat_rtl
