lib/itc99/b05.mli: Rtlsat_rtl
