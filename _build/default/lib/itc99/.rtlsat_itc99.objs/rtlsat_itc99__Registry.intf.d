lib/itc99/registry.mli: Ir Rtlsat_bmc Rtlsat_rtl
