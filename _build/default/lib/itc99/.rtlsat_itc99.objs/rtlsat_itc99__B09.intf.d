lib/itc99/b09.mli: Rtlsat_rtl
