lib/itc99/b07.mli: Rtlsat_rtl
