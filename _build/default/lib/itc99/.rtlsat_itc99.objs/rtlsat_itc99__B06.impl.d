lib/itc99/b06.ml: Netlist Rtlsat_rtl
