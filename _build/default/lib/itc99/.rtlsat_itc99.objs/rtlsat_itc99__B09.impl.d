lib/itc99/b09.ml: Netlist Rtlsat_rtl
