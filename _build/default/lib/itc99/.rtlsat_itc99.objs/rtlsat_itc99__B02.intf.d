lib/itc99/b02.mli: Rtlsat_rtl
