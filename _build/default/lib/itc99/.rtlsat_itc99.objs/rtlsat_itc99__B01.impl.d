lib/itc99/b01.ml: Netlist Rtlsat_rtl
