lib/itc99/b04.ml: Ir Netlist Rtlsat_rtl
