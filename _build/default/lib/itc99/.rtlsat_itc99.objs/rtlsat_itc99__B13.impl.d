lib/itc99/b13.ml: Ir Netlist Rtlsat_rtl
