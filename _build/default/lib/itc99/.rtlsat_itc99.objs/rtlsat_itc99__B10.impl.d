lib/itc99/b10.ml: Netlist Rtlsat_rtl
