lib/itc99/b08.ml: Ir Netlist Rtlsat_rtl
