lib/itc99/b13.mli: Rtlsat_rtl
