lib/itc99/registry.ml: B01 B02 B03 B04 B05 B06 B07 B08 B09 B10 B11 B13 List Printf Rtlsat_bmc
