lib/itc99/b04.mli: Rtlsat_rtl
