lib/itc99/b11.mli: Rtlsat_rtl
