lib/itc99/b11.ml: Netlist Rtlsat_rtl
