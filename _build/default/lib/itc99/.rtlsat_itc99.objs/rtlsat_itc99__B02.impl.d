lib/itc99/b02.ml: Netlist Rtlsat_rtl
