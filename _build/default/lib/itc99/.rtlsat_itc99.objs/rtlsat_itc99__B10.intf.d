lib/itc99/b10.mli: Rtlsat_rtl
