lib/itc99/b03.ml: Array Netlist Rtlsat_rtl
