lib/itc99/b08.mli: Rtlsat_rtl
