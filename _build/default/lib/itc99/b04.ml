(* Reconstruction of ITC'99 b04: computes the running minimum and
   maximum of an 8-bit data stream (RMAX/RMIN registers updated
   through comparators and muxes) and outputs their difference.  This
   is the suite's data-path-heavy circuit; the fragment in Figure 2 of
   the paper comes from it. *)

open Rtlsat_rtl

let st_init = 0
let st_run = 1

let build () =
  let c = Netlist.create "b04" in
  let data = Netlist.input c ~name:"data_in" 8 in
  let restart = Netlist.input c ~name:"restart" 1 in
  let st = Netlist.reg c ~name:"state" ~width:2 ~init:st_init () in
  let rmax = Netlist.reg c ~name:"rmax" ~width:8 ~init:0 () in
  let rmin = Netlist.reg c ~name:"rmin" ~width:8 ~init:255 () in
  let rlast = Netlist.reg c ~name:"rlast" ~width:8 ~init:0 () in
  let is_init = Netlist.eq_const c st st_init in
  (* comparators controlling the data-path (Figure 2's b8/b9 flavour) *)
  let gt_max = Netlist.cmp c ~name:"data_gt_rmax" Ir.Gt data rmax in
  let lt_min = Netlist.cmp c ~name:"data_lt_rmin" Ir.Lt data rmin in
  let rmax_run = Netlist.mux c ~sel:gt_max ~t:data ~e:rmax () in
  let rmin_run = Netlist.mux c ~sel:lt_min ~t:data ~e:rmin () in
  (* in the INIT state both extrema are (re)seeded with the sample *)
  let rmax' = Netlist.mux c ~name:"rmax_next" ~sel:is_init ~t:data ~e:rmax_run () in
  let rmin' = Netlist.mux c ~name:"rmin_next" ~sel:is_init ~t:data ~e:rmin_run () in
  let st' =
    Netlist.mux c ~sel:restart
      ~t:(Netlist.const c ~width:2 st_init)
      ~e:(Netlist.const c ~width:2 st_run)
      ()
  in
  Netlist.connect st st';
  Netlist.connect rmax rmax';
  Netlist.connect rmin rmin';
  Netlist.connect rlast data;
  let data_out = Netlist.sub c rmax rmin in
  Netlist.output c "data_out" data_out;
  (* properties *)
  (* in the RUN state the extrema are ordered: RMAX >= RMIN *)
  let p1 =
    Netlist.implies c (Netlist.eq_const c st st_run) (Netlist.ge c rmax rmin)
  in
  (* violable: the full spread 255 is reachable (e.g. samples 255, 0) *)
  let p2 = Netlist.ne c data_out (Netlist.const c ~width:8 255) in
  (* RLAST is always within the extrema while running *)
  let p3 =
    Netlist.implies c (Netlist.eq_const c st st_run)
      (Netlist.and_ c [ Netlist.le c rlast rmax; Netlist.ge c rlast rmin ])
  in
  (c, [ ("1", p1); ("2", p2); ("3", p3) ])
