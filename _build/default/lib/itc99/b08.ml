(* Reconstruction of ITC'99 b08: find inclusions in sequences of
   numbers.  A target word is loaded, then stream elements are scanned
   for bit-wise inclusion (every target bit present in the element);
   matches are counted.  The inclusion test is a word-level AND plus
   equality — exercising the Boolean-splitting encoding (§6 future
   work) on the solver side. *)

open Rtlsat_rtl

let s_load = 0
let s_scan = 1
let s_done = 2

let build () =
  let c = Netlist.create "b08" in
  let data = Netlist.input c ~name:"data_in" 8 in
  let start = Netlist.input c ~name:"start" 1 in
  let stop = Netlist.input c ~name:"stop" 1 in
  let st = Netlist.reg c ~name:"state" ~width:2 ~init:s_load () in
  let target = Netlist.reg c ~name:"target" ~width:8 ~init:0 () in
  let matches = Netlist.reg c ~name:"matches" ~width:4 ~init:0 () in
  let seen = Netlist.reg c ~name:"seen" ~width:4 ~init:0 () in
  let is v = Netlist.eq_const c st v in
  let k2 v = Netlist.const c ~width:2 v in
  (* inclusion: data & target = target *)
  let masked = Netlist.bitand c data target in
  let included = Netlist.cmp c ~name:"included" Ir.Eq masked target in
  let scanning = is s_scan in
  let sat_matches = Netlist.eq_const c matches 15 in
  let bump =
    Netlist.and_ c [ scanning; included; Netlist.not_ c sat_matches ]
  in
  let matches' =
    Netlist.mux c ~name:"matches_next" ~sel:bump ~t:(Netlist.inc c matches)
      ~e:matches ()
  in
  let sat_seen = Netlist.eq_const c seen 15 in
  let seen' =
    Netlist.mux c ~name:"seen_next"
      ~sel:(Netlist.and_ c [ scanning; Netlist.not_ c sat_seen ])
      ~t:(Netlist.inc c seen) ~e:seen ()
  in
  let target' =
    Netlist.mux c ~name:"target_next"
      ~sel:(Netlist.and_ c [ is s_load; start ])
      ~t:data ~e:target ()
  in
  let from_load = Netlist.mux c ~sel:start ~t:(k2 s_scan) ~e:(k2 s_load) () in
  let from_scan = Netlist.mux c ~sel:stop ~t:(k2 s_done) ~e:(k2 s_scan) () in
  let next =
    Netlist.mux c ~name:"state_next" ~sel:(is s_load) ~t:from_load
      ~e:(Netlist.mux c ~sel:scanning ~t:from_scan ~e:(k2 s_done) ())
      ()
  in
  Netlist.connect st next;
  Netlist.connect target target';
  Netlist.connect matches matches';
  Netlist.connect seen seen';
  Netlist.output c "matches" matches;
  Netlist.output c "done" (is s_done);
  (* properties *)
  (* 1: matches never outrun the scanned count (both saturate) *)
  let p1 = Netlist.le c matches seen in
  (* 2: nothing matched while loading *)
  let p2 = Netlist.implies c (is s_load) (Netlist.eq_const c matches 0) in
  (* 3: violable — some element does include the target *)
  let p3 = Netlist.implies c scanning (Netlist.not_ c included) in
  (c, [ ("1", p1); ("2", p2); ("3", p3) ])
