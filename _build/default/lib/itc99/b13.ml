(* Reconstruction of ITC'99 b13: the interface to a weather station —
   a serial receiver (shift register, bit counter, timeout counter)
   handing bytes to a transmitter FSM with a channel counter.  Two
   interacting FSMs and several counters/comparators make it the
   largest circuit of the paper's benchmark set; the b13 rows dominate
   Tables 1 and 2. *)

open Rtlsat_rtl

(* receive FSM *)
let r_idle = 0
let r_recv = 1
let r_done = 2

(* send FSM *)
let s_wait = 0
let s_load = 1
let s_send = 2

let timeout_limit = 40 (* idle receive cycles before the receiver gives up *)

let build () =
  let c = Netlist.create "b13" in
  let din = Netlist.input c ~name:"din" 1 in
  let din_valid = Netlist.input c ~name:"din_valid" 1 in
  let eoc = Netlist.input c ~name:"eoc" 1 in
  let soc_ack = Netlist.input c ~name:"soc_ack" 1 in
  let data_in = Netlist.input c ~name:"data_in" 8 in
  (* receiver *)
  let r_state = Netlist.reg c ~name:"r_state" ~width:2 ~init:r_idle () in
  let bitcnt = Netlist.reg c ~name:"bitcnt" ~width:4 ~init:0 () in
  let sreg = Netlist.reg c ~name:"sreg" ~width:8 ~init:0 () in
  let tmo = Netlist.reg c ~name:"tmo" ~width:10 ~init:0 () in
  let terr = Netlist.reg c ~name:"terr" ~width:1 ~init:0 () in
  (* transmitter *)
  let s_state = Netlist.reg c ~name:"s_state" ~width:2 ~init:s_wait () in
  let canale = Netlist.reg c ~name:"canale" ~width:4 ~init:0 () in
  let out_reg = Netlist.reg c ~name:"out_reg" ~width:8 ~init:0 () in
  let tre = Netlist.reg c ~name:"tre" ~width:1 ~init:0 () in

  let k2 v = Netlist.const c ~width:2 v in
  let r_is v = Netlist.eq_const c r_state v in
  let s_is v = Netlist.eq_const c s_state v in
  let in_idle = r_is r_idle and in_recv = r_is r_recv and in_done = r_is r_done in
  let byte_done = Netlist.eq_const c bitcnt 8 in
  let timed_out = Netlist.ge c tmo (Netlist.const c ~width:10 timeout_limit) in

  (* receive FSM:
     IDLE --eoc--> RECV (counters cleared)
     RECV --8 bits--> DONE, --timeout--> IDLE with terr
     DONE --transmitter in LOAD--> IDLE *)
  (* the IDLE->RECV leg is computed arithmetically (an increment), so
     the interval hull of the next state spans the unused encoding 3
     and excluding it requires search *)
  let r_from_idle =
    Netlist.mux c ~sel:eoc ~t:(Netlist.inc c r_state) ~e:(k2 r_idle) ()
  in
  let r_from_recv =
    Netlist.mux c ~sel:byte_done ~t:(k2 r_done)
      ~e:(Netlist.mux c ~sel:timed_out ~t:(k2 r_idle) ~e:(k2 r_recv) ())
      ()
  in
  let r_from_done =
    Netlist.mux c ~sel:(s_is s_load) ~t:(k2 r_idle) ~e:(k2 r_done) ()
  in
  let r_state' =
    Netlist.mux c ~name:"r_state_next" ~sel:in_idle ~t:r_from_idle
      ~e:(Netlist.mux c ~sel:in_recv ~t:r_from_recv ~e:r_from_done ())
      ()
  in
  (* bit counter and shift register advance while receiving *)
  let shifted =
    Netlist.concat c ~hi:(Netlist.extract c sreg ~msb:6 ~lsb:0) ~lo:din
  in
  (* bits are sampled only when the serial strobe is high; the
     timeout counter tracks every receive cycle *)
  let recv_active =
    Netlist.and_ c [ in_recv; din_valid; Netlist.not_ c byte_done ]
  in
  let bitcnt' =
    Netlist.mux c ~name:"bitcnt_next" ~sel:in_idle
      ~t:(Netlist.const c ~width:4 0)
      ~e:(Netlist.mux c ~sel:recv_active ~t:(Netlist.inc c bitcnt) ~e:bitcnt ())
      ()
  in
  let sreg' = Netlist.mux c ~name:"sreg_next" ~sel:recv_active ~t:shifted ~e:sreg () in
  let tmo_counting =
    Netlist.and_ c
      [ in_recv; Netlist.not_ c byte_done; Netlist.not_ c timed_out ]
  in
  let tmo' =
    Netlist.mux c ~name:"tmo_next" ~sel:tmo_counting ~t:(Netlist.inc c tmo)
      ~e:(Netlist.const c ~width:10 0)
      ()
  in
  let terr' =
    Netlist.or_ c [ terr; Netlist.and_ c [ in_recv; timed_out ] ]
  in

  (* send FSM:
     WAIT --receiver DONE--> LOAD (grab byte, advance channel)
     LOAD --> SEND
     SEND --soc_ack--> WAIT *)
  let s_from_wait = Netlist.mux c ~sel:in_done ~t:(k2 s_load) ~e:(k2 s_wait) () in
  let s_from_send = Netlist.mux c ~sel:soc_ack ~t:(k2 s_wait) ~e:(k2 s_send) () in
  let s_state' =
    Netlist.mux c ~name:"s_state_next" ~sel:(s_is s_wait) ~t:s_from_wait
      ~e:(Netlist.mux c ~sel:(s_is s_load) ~t:(k2 s_send) ~e:s_from_send ())
      ()
  in
  let chan_wrap = Netlist.eq_const c canale 9 in
  let canale' =
    Netlist.mux c ~name:"canale_next" ~sel:(s_is s_load)
      ~t:
        (Netlist.mux c ~sel:chan_wrap ~t:(Netlist.const c ~width:4 0)
           ~e:(Netlist.inc c canale) ())
      ~e:canale ()
  in
  let out_reg' = Netlist.mux c ~name:"out_reg_next" ~sel:(s_is s_load) ~t:sreg ~e:out_reg () in
  (* threshold comparison against the reference input *)
  let above = Netlist.cmp c ~name:"sreg_gt_ref" Ir.Gt sreg data_in in
  let tre' = Netlist.mux c ~sel:(s_is s_load) ~t:above ~e:tre () in

  Netlist.connect r_state r_state';
  Netlist.connect bitcnt bitcnt';
  Netlist.connect sreg sreg';
  Netlist.connect tmo tmo';
  Netlist.connect terr terr';
  Netlist.connect s_state s_state';
  Netlist.connect canale canale';
  Netlist.connect out_reg out_reg';
  Netlist.connect tre tre';

  let load_dato = s_is s_load in
  let mux_en = s_is s_send in
  Netlist.output c "load_dato" load_dato;
  Netlist.output c "mux_en" mux_en;
  Netlist.output c "error" terr;

  (* properties *)
  (* 1: a byte is loaded only when fully received — a cross-FSM
     invariant that needs the DONE -> bitcnt=8 lemma *)
  let p1 = Netlist.implies c load_dato byte_done in
  (* 2: the channel counter has advanced whenever the transmitter
     drives the bus; violable only after the 10-channel wrap-around,
     i.e. at large bounds *)
  let p2 = Netlist.implies c mux_en (Netlist.ge c canale (Netlist.const c ~width:4 1)) in
  (* 3: provable in the control logic alone: the receive FSM never
     reaches its unused encoding (the paper singles b13_3 out as the
     predicate-abstraction-friendly case) *)
  let p3 = Netlist.ne c r_state (k2 3) in
  (* 5: the timeout counter saturates at the limit — relating it to
     the FSM and the strobe-gated bit counter *)
  let p5 = Netlist.le c tmo (Netlist.const c ~width:10 timeout_limit) in
  (* 8: the channel counter stays within the 10 channels *)
  let p8 = Netlist.le c canale (Netlist.const c ~width:4 9) in
  (* 40: "the threshold flag never rises" — violable, the paper's one
     satisfiable b13 row (b13_40(13) S) *)
  let p40 = Netlist.not_ c tre in
  (c, [ ("1", p1); ("2", p2); ("3", p3); ("5", p5); ("8", p8); ("40", p40) ])
