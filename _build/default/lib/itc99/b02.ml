(* Reconstruction of ITC'99 b02: an FSM that recognizes BCD numbers on
   a serial input.  Seven states in a 3-bit register, one serial input
   (linea), one output (u) asserted in the accepting state.  Pure
   control logic: the smallest circuit of the suite. *)

open Rtlsat_rtl

(* states *)
let s_a = 0
let s_b = 1
let s_c = 2
let s_d = 3
let s_e = 4
let s_f = 5
let s_g = 6

let build () =
  let c = Netlist.create "b02" in
  let linea = Netlist.input c ~name:"linea" 1 in
  let st = Netlist.reg c ~name:"state" ~width:3 ~init:s_a () in
  let u = Netlist.reg c ~name:"u" ~width:1 ~init:0 () in
  let k v = Netlist.const c ~width:3 v in
  let is v = Netlist.eq_const c st v in
  (* transition function: a serial BCD recognizer skeleton — from the
     start, the first digit bit routes between long (8-4-2-1) and
     short paths, G is accepting and restarts *)
  let branch v0 v1 = Netlist.mux c ~sel:linea ~t:(k v1) ~e:(k v0) () in
  (* several legs are computed arithmetically (D->E is an increment,
     E->G adds 2 modulo 8): the interval hull of the next state spans
     the full <0,7>, so excluding the unused encoding 7 genuinely
     requires search, not just bounds propagation *)
  let inc_leg = Netlist.inc c st in                       (* D(3) -> E(4) *)
  let add2_leg = Netlist.add c st (k 2) in                (* E(4) -> G(6) *)
  let next =
    Netlist.mux c ~sel:(is s_a) ~t:(k s_b)
      ~e:
        (Netlist.mux c ~sel:(is s_b) ~t:(branch s_c s_f)
           ~e:
             (Netlist.mux c ~sel:(is s_c) ~t:(branch s_d s_g)
                ~e:
                  (Netlist.mux c ~sel:(is s_d) ~t:inc_leg
                     ~e:
                       (Netlist.mux c ~sel:(is s_e) ~t:add2_leg
                          ~e:
                            (Netlist.mux c ~sel:(is s_f) ~t:(branch s_g s_e)
                               ~e:(k s_a) (* G and unused states restart *)
                               ())
                          ())
                     ())
                ())
           ())
      ()
  in
  Netlist.connect st next;
  (* u latches acceptance: high for one cycle when G is reached *)
  Netlist.connect u (Netlist.eq_const c next s_g);
  Netlist.output c "u" u;
  (* properties *)
  let p1 = Netlist.ne c st (k 7) in                 (* unused encoding *)
  let p2 = Netlist.implies c u (is s_g) in           (* u only in G *)
  let p3 = Netlist.not_ c u in                       (* violable: G is reachable *)
  (c, [ ("1", p1); ("2", p2); ("3", p3) ])
