(* Reconstruction of ITC'99 b10: a voting system.  Three voter inputs
   are sampled, majority is computed, a mismatch counter tracks
   disagreement and raises an alarm when it saturates. *)

open Rtlsat_rtl

let alarm_limit = 5

let build () =
  let c = Netlist.create "b10" in
  let v0 = Netlist.input c ~name:"v0" 1 in
  let v1 = Netlist.input c ~name:"v1" 1 in
  let v2 = Netlist.input c ~name:"v2" 1 in
  let sample = Netlist.input c ~name:"sample" 1 in
  let reset = Netlist.input c ~name:"reset" 1 in
  let vote = Netlist.reg c ~name:"vote" ~width:1 ~init:0 () in
  let mismatch = Netlist.reg c ~name:"mismatch" ~width:3 ~init:0 () in
  let alarm = Netlist.reg c ~name:"alarm" ~width:1 ~init:0 () in
  (* majority of the three voters *)
  let majority =
    Netlist.or_ c
      [
        Netlist.and_ c [ v0; v1 ];
        Netlist.and_ c [ v0; v2 ];
        Netlist.and_ c [ v1; v2 ];
      ]
  in
  (* a dissenter exists iff the voters disagree *)
  let disagree =
    Netlist.or_ c
      [ Netlist.xor_ c v0 v1; Netlist.xor_ c v1 v2 ]
  in
  let at_limit =
    Netlist.ge c mismatch (Netlist.const c ~width:3 alarm_limit)
  in
  let bump = Netlist.and_ c [ sample; disagree; Netlist.not_ c at_limit ] in
  let mismatch' =
    Netlist.mux c ~name:"mismatch_next" ~sel:reset
      ~t:(Netlist.const c ~width:3 0)
      ~e:(Netlist.mux c ~sel:bump ~t:(Netlist.inc c mismatch) ~e:mismatch ())
      ()
  in
  let vote' = Netlist.mux c ~name:"vote_next" ~sel:sample ~t:majority ~e:vote () in
  let alarm' =
    Netlist.mux c ~sel:reset ~t:(Netlist.cfalse c)
      ~e:(Netlist.or_ c [ alarm; Netlist.and_ c [ sample; at_limit ] ])
      ()
  in
  Netlist.connect vote vote';
  Netlist.connect mismatch mismatch';
  Netlist.connect alarm alarm';
  Netlist.output c "vote" vote;
  Netlist.output c "alarm" alarm;
  (* properties *)
  (* 1: the mismatch counter saturates at the alarm limit *)
  let p1 = Netlist.le c mismatch (Netlist.const c ~width:3 alarm_limit) in
  (* 2: no alarm without a saturated counter — relational between the
     sticky flag and the counter (both are cleared together) *)
  let p2 =
    Netlist.implies c alarm
      (Netlist.ge c mismatch (Netlist.const c ~width:3 alarm_limit))
  in
  (* 3: violable — the alarm can fire *)
  let p3 = Netlist.not_ c alarm in
  (c, [ ("1", p1); ("2", p2); ("3", p3) ])
