(* b01/b02/b04/b13 are the paper's benchmark subset; the rest extend
   the suite (see DESIGN.md) *)
let circuits = [ "b01"; "b02"; "b03"; "b04"; "b05"; "b06"; "b07"; "b08"; "b09"; "b10"; "b11"; "b13" ]

let build = function
  | "b01" -> B01.build ()
  | "b02" -> B02.build ()
  | "b03" -> B03.build ()
  | "b04" -> B04.build ()
  | "b05" -> B05.build ()
  | "b06" -> B06.build ()
  | "b07" -> B07.build ()
  | "b08" -> B08.build ()
  | "b09" -> B09.build ()
  | "b10" -> B10.build ()
  | "b11" -> B11.build ()
  | "b13" -> B13.build ()
  | _ -> raise Not_found

let properties name = List.map fst (snd (build name))

let instance ~circuit ~prop ~bound =
  let c, props = build circuit in
  let p = List.assoc prop props in
  Rtlsat_bmc.Bmc.make c ~prop:p ~bound ()

let instance_name ~circuit ~prop ~bound =
  Printf.sprintf "%s_%s(%d)" circuit prop bound
