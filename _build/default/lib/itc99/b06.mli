(** Reconstruction of ITC'99 b06; see the implementation header for the
    behavioural description and DESIGN.md for the substitution notes. *)

val build : unit -> Rtlsat_rtl.Ir.circuit * (string * Rtlsat_rtl.Ir.node) list
(** Fresh circuit and its named safety properties (width-1 nodes that
    must hold in every cycle). *)
