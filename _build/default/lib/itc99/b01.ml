(* Reconstruction of ITC'99 b01: an FSM that compares/adds two serial
   flows.  A serial full adder with a bit counter and an overflow
   flag: the control is a mux/comparator network over a 3-bit phase
   counter, which is what the paper's techniques exercise.

   Substitution note (see DESIGN.md): the original VHDL is not
   available in this container; state count (8 values, 3 bits),
   inputs (line1, line2) and outputs (outp, overflw) match the
   published interface. *)

open Rtlsat_rtl

let build () =
  let c = Netlist.create "b01" in
  let l1 = Netlist.input c ~name:"line1" 1 in
  let l2 = Netlist.input c ~name:"line2" 1 in
  let carry = Netlist.reg c ~name:"carry" ~width:1 ~init:0 () in
  let outp = Netlist.reg c ~name:"outp" ~width:1 ~init:0 () in
  let overflw = Netlist.reg c ~name:"overflw" ~width:1 ~init:0 () in
  let cnt = Netlist.reg c ~name:"cnt" ~width:3 ~init:0 () in
  (* serial full adder *)
  let sum = Netlist.xor_ c (Netlist.xor_ c l1 l2) carry in
  let carry' =
    Netlist.or_ c
      [ Netlist.and_ c [ l1; l2 ]; Netlist.and_ c [ carry; Netlist.or_ c [ l1; l2 ] ] ]
  in
  (* the phase counter advances on line activity and wraps at 7, so
     its value depends on the inputs — bounds reasoning alone cannot
     track it *)
  let advance = Netlist.or_ c [ l1; l2 ] in
  let at7 = Netlist.eq_const c cnt 7 in
  let wrap = Netlist.and_ c [ advance; at7 ] in
  let cnt' =
    Netlist.mux c ~name:"cnt_next" ~sel:advance
      ~t:(Netlist.mux c ~sel:at7 ~t:(Netlist.const c ~width:3 0)
            ~e:(Netlist.inc c cnt) ())
      ~e:cnt ()
  in
  (* overflow is latched from the carry at the end of a byte *)
  let overflw' = Netlist.mux c ~sel:wrap ~t:carry' ~e:(Netlist.cfalse c) () in
  Netlist.connect carry carry';
  Netlist.connect outp sum;
  Netlist.connect overflw overflw';
  Netlist.connect cnt cnt';
  Netlist.output c "outp" outp;
  Netlist.output c "overflw" overflw;
  (* properties *)
  let p1 = Netlist.nand_ c [ outp; overflw ] in
  (* overflw is only raised at the byte boundary, where cnt wraps to 0 *)
  let p2 = Netlist.implies c overflw (Netlist.eq_const c cnt 0) in
  (c, [ ("1", p1); ("2", p2) ])
