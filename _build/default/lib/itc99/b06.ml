(* Reconstruction of ITC'99 b06: an interrupt handler.  A small
   control FSM acknowledges interrupt requests with two output
   channels and a saturating urgency counter deciding escalation.
   Pure-control with one small counter. *)

open Rtlsat_rtl

let s_idle = 0
let s_ack1 = 1
let s_ack2 = 2
let s_wait = 3

let build () =
  let c = Netlist.create "b06" in
  let irq = Netlist.input c ~name:"irq" 1 in
  let urgent = Netlist.input c ~name:"urgent" 1 in
  let clear = Netlist.input c ~name:"clear" 1 in
  let st = Netlist.reg c ~name:"state" ~width:3 ~init:s_idle () in
  let pending = Netlist.reg c ~name:"pending" ~width:2 ~init:0 () in
  let k v = Netlist.const c ~width:3 v in
  let is v = Netlist.eq_const c st v in
  (* saturating pending counter; the increment is an arithmetic leg *)
  let sat3 = Netlist.eq_const c pending 3 in
  let pending_up =
    Netlist.mux c ~sel:sat3 ~t:pending ~e:(Netlist.inc c pending) ()
  in
  let pending' =
    Netlist.mux c ~name:"pending_next" ~sel:clear
      ~t:(Netlist.const c ~width:2 0)
      ~e:(Netlist.mux c ~sel:irq ~t:pending_up ~e:pending ())
      ()
  in
  (* FSM: IDLE -irq-> ACK1 (or ACK2 when urgent or the counter is
     saturated) -> WAIT -clear-> IDLE; the IDLE->ACK leg is computed
     arithmetically so the hull spans unused encodings *)
  let escalate = Netlist.or_ c [ urgent; sat3 ] in
  let ack_target =
    Netlist.mux c ~sel:escalate ~t:(k s_ack2) ~e:(Netlist.inc c st) ()
  in
  let from_idle = Netlist.mux c ~sel:irq ~t:ack_target ~e:(k s_idle) () in
  let from_ack = k s_wait in
  let from_wait = Netlist.mux c ~sel:clear ~t:(k s_idle) ~e:(k s_wait) () in
  let next =
    Netlist.mux c ~name:"state_next" ~sel:(is s_idle) ~t:from_idle
      ~e:
        (Netlist.mux c ~sel:(Netlist.or_ c [ is s_ack1; is s_ack2 ]) ~t:from_ack
           ~e:from_wait ())
      ()
  in
  Netlist.connect st next;
  Netlist.connect pending pending';
  let cc_mux_ig = Netlist.eq_const c st s_ack1 in
  let norm_ack = Netlist.eq_const c st s_ack2 in
  Netlist.output c "ack1" cc_mux_ig;
  Netlist.output c "ack2" norm_ack;
  (* properties *)
  (* 1: the two acknowledge channels are mutually exclusive *)
  let p1 = Netlist.nand_ c [ cc_mux_ig; norm_ack ] in
  (* 2: the FSM stays within its four encodings *)
  let p2 = Netlist.le c st (k s_wait) in
  (* 3: escalation only with cause: ack2 implies the counter moved or
     an urgent request was latched — violable, urgent is an input *)
  let p3 =
    Netlist.implies c norm_ack (Netlist.ge c pending (Netlist.const c ~width:2 1))
  in
  (c, [ ("1", p1); ("2", p2); ("3", p3) ])
