(** Complete integer point search inside a solution box.

    HDPLL's final step checks "the solution box P for a point
    solution" (§2.4).  Because every variable in an RTL problem has a
    finite domain, a branch-and-prune search — bounds propagation over
    the linear constraints, then interval splitting on an unfixed
    variable — is a sound and complete integer decision procedure and
    produces a witness point, which FME alone does not. *)

type lin = { terms : (int * int) list; const : int }
(** [Σ coefᵢ·varᵢ + const ≤ 0] with native-int coefficients. *)

val lin : (int * int) list -> int -> lin
val lin_eq : (int * int) list -> int -> lin * lin

type result =
  | Point of int array  (** a witness assignment, one value per variable *)
  | Empty
  | Limit               (** exceeded the node budget *)

val solve :
  ?max_nodes:int ->
  ?deadline:float ->
  bounds:(int * int) array ->
  lin list ->
  result
(** [solve ~bounds lins] decides whether an integer point of the box
    [bounds] satisfies all of [lins].  [max_nodes] (default
    [1_000_000]) bounds the number of search nodes. *)

val propagate_bounds : bounds:(int * int) array -> lin list -> (int * int) array option
(** One bounds-consistency fixpoint (interval constraint propagation,
    §2.2); [None] when a domain empties.  Exposed for tests and for
    the predicate-learning probes. *)
