lib/fme/omega.ml: Array Boxsearch Fme List
