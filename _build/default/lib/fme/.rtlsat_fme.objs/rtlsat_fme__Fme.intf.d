lib/fme/fme.mli: Format Rtlsat_num
