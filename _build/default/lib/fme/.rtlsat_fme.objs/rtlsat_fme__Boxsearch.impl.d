lib/fme/boxsearch.ml: Array Hashtbl List Option Unix
