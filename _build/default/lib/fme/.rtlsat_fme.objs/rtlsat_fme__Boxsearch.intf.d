lib/fme/boxsearch.mli:
