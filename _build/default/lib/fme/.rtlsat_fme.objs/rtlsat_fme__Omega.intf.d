lib/fme/omega.mli: Boxsearch
