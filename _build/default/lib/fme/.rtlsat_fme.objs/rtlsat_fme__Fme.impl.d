lib/fme/fme.ml: Format Hashtbl List Option Rtlsat_num Unix
