(* rtlsat — command-line front end.

   Subcommands:
     list               benchmark circuits and properties
     show               netlist statistics (and optionally the netlist)
     solve              decide one BMC instance with a chosen engine
     sweep              bound sweep through one incremental solver session
     serve              JSON-lines daemon over warm solver sessions
     check              BMC of a property in a textual netlist file
     prove              k-induction on a benchmark property
     fuzz               differential fuzzing of all engines
     profile            replay a --trace file and diagnose the run
     top                live (or post-hoc) monitor over a heartbeat trace
     metrics            OpenMetrics text exposition of a stats/metrics JSON
     runs               list and filter the cross-run ledger
     trace-diff         first divergence between two traces of one instance
     bench-diff         compare two BENCH_*.json perf artifacts
     bench-history      perf trajectory across a directory of artifacts
     table1 / table2    regenerate the paper's tables

   Exit codes (shared across subcommands): 0 success; 1 negative
   finding (timeout/abort verdict, fuzz failures, bench-diff
   regressions); 2 unreadable or invalid input. *)

open Cmdliner
module Ir = Rtlsat_rtl.Ir
module Structure = Rtlsat_rtl.Structure
module Registry = Rtlsat_itc99.Registry
module Engines = Rtlsat_harness.Engines
module Req = Rtlsat_harness.Req
module Serve = Rtlsat_harness.Serve
module Tables = Rtlsat_harness.Tables
module Report = Rtlsat_harness.Report
module Parallel = Rtlsat_parallel.Parallel
module Obs = Rtlsat_obs.Obs
module Mono = Rtlsat_obs.Mono
module Trace = Rtlsat_obs.Trace
module Forensics = Rtlsat_obs.Forensics
module Recorder = Rtlsat_obs.Recorder
module Heartbeat = Rtlsat_obs.Heartbeat
module Openmetrics = Rtlsat_obs.Openmetrics
module Json = Rtlsat_obs.Json
module Ledger = Rtlsat_obs.Ledger
module Trace_diff = Rtlsat_obs.Trace_diff
module Fuzz = Rtlsat_fuzz.Fuzz
module Fuzz_gen = Rtlsat_fuzz.Gen
module Fuzz_case = Rtlsat_fuzz.Case
module Oracle = Rtlsat_fuzz.Oracle

let write_json path v =
  let oc = open_out path in
  Json.to_channel oc v;
  output_char oc '\n';
  close_out oc

(* Exit-code convention, shared by every subcommand that can fail:
   0 success, 1 negative finding, 2 unreadable/invalid input. *)
let std_exits =
  [
    Cmd.Exit.info 0 ~doc:"on success.";
    Cmd.Exit.info 1
      ~doc:
        "on a negative finding: a timeout or abort verdict, fuzz failures, \
         or bench-diff regressions.";
    Cmd.Exit.info 2
      ~doc:
        "on unreadable or invalid input: unknown circuit/property, \
         malformed file, unsupported trace schema, unwritable output.";
  ]
  @ Cmd.Exit.defaults

(* read a whole JSON file; exit 2 on I/O or parse failure *)
let read_json_file path =
  match
    let ic = open_in_bin path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Json.of_string (String.trim text)
  with
  | j -> j
  | exception Sys_error msg ->
    Format.eprintf "rtlsat: %s@." msg;
    exit 2
  | exception Json.Parse_error msg ->
    Format.eprintf "rtlsat: %s: malformed JSON: %s@." path msg;
    exit 2

(* ---- the cross-run ledger (solve / sweep / sat / fuzz append;
   [rtlsat runs] reads) ---- *)

(* [Some path] = append there; [None] = --no-ledger *)
let ledger_term =
  let path =
    Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE"
           ~doc:"Append this run's rtlsat.run/1 record to $(docv) instead of \
                 the default ledger (\\$RTLSAT_LEDGER, or \
                 .rtlsat/ledger.jsonl); list it with $(b,rtlsat runs)")
  in
  let off =
    Arg.(value & flag & info [ "no-ledger" ]
           ~doc:"Do not append a run record to the ledger")
  in
  Term.(
    const (fun path off ->
        if off then None
        else
          Some (match path with Some p -> p | None -> Ledger.default_path ()))
    $ path $ off)

(* bookkeeping must never fail the run: warn and continue *)
let ledger_append ledger ~subcommand ~instance ~engine ~options ~verdict
    ~wall_s ~counters ~artifacts =
  match ledger with
  | None -> ()
  | Some path ->
    let record =
      Ledger.make ~subcommand ~argv:(Array.to_list Sys.argv) ~instance ~engine
        ~options ~verdict ~wall_s ~counters ~artifacts ()
    in
    (try Ledger.append ~path record with
     | Sys_error msg -> Format.eprintf "rtlsat: ledger: %s@." msg
     | Unix.Unix_error (e, _, _) ->
       Format.eprintf "rtlsat: ledger: %s: %s@." path (Unix.error_message e))

let engine_conv =
  let all =
    [
      ("hdpll", Engines.Hdpll); ("hdpll+s", Engines.Hdpll_s);
      ("hdpll+s+p", Engines.Hdpll_sp); ("hdpll+p", Engines.Hdpll_p);
      ("bitblast", Engines.Bitblast); ("lazy-cdp", Engines.Lazy_cdp);
    ]
  in
  Arg.enum all

(* ---- shared request-context options ----

   solve / sweep / sat / fuzz used to each re-declare
   --split/--simplify/--inprocess (next to their own --trace and
   --timeout); one spec now parses the engine knobs, and [req_of_opts]
   finishes it into the single Req.t request context threaded through
   every engine entry point. *)

type engine_opts = {
  eo_split : bool;      (* structural split nominations (hybrid engines) *)
  eo_simplify : bool;   (* pre/inprocessing of the clause database *)
  eo_inprocess : int;   (* re-simplify period in conflicts; 0 = off *)
}

let engine_opts_term =
  let split =
    Arg.(value
         & vflag true
             [ ( true,
                 info [ "split" ]
                   ~doc:"Enable stall-triggered interval-split decisions \
                         (default); engines without a split heap ignore the \
                         flag" );
               ( false,
                 info [ "no-split" ]
                   ~doc:"Disable interval-split decisions; the hybrid kernel \
                         behaves exactly as before splits existed" ) ])
  in
  let simplify =
    Arg.(value
         & vflag true
             [ ( true,
                 info [ "simplify" ]
                   ~doc:"Pre/inprocess the clause database before the search \
                         (default): subsumption, self-subsuming \
                         strengthening and — for one-shot CNF only — \
                         variable elimination, failed-literal probing and \
                         equivalent-literal substitution; incremental \
                         sessions keep elimination off, so assumptions stay \
                         sound" );
               ( false,
                 info [ "no-simplify" ]
                   ~doc:"Skip pre/inprocessing; the solver behaves exactly \
                         as before the simplifier existed" ) ])
  in
  let inprocess =
    Arg.(value & opt int 0 & info [ "inprocess" ] ~docv:"CONFLICTS"
           ~doc:"Re-simplify the clause database at the first restart after \
                 every $(docv) conflicts; 0 (default) disables inprocessing")
  in
  Term.(
    const (fun eo_split eo_simplify eo_inprocess ->
        { eo_split; eo_simplify; eo_inprocess })
    $ split $ simplify $ inprocess)

(* the one request context of the run: shared spec + per-command budget
   and telemetry *)
let req_of_opts ?obs ?dump_graph ?dump_graph_max ~timeout o =
  Req.make ~timeout ?obs ~split:o.eo_split ~simplify:o.eo_simplify
    ~inprocess:o.eo_inprocess ?dump_graph ?dump_graph_max ()

(* the --trace spec, shared shape with per-command doc *)
let trace_term ~doc =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun name ->
         let c, props = Registry.build name in
         let arith, boolean = Structure.op_counts c in
         Format.printf "%s: %d registers, %d arith ops, %d bool ops@." name
           (List.length (Ir.regs c)) arith boolean;
         List.iter
           (fun (p, _) -> Format.printf "  property %s_%s@." name p)
           props)
      Registry.circuits
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmark circuits and properties")
    Term.(const run $ const ())

(* ---- show ---- *)

let show_cmd =
  let circuit =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT")
  in
  let dump = Arg.(value & flag & info [ "netlist" ] ~doc:"Dump the netlist") in
  let run circuit dump =
    match Registry.build circuit with
    | c, props ->
      let arith, boolean = Structure.op_counts c in
      Format.printf "circuit %s: %d nodes, %d inputs, %d registers@." c.Ir.cname
        c.Ir.ncount
        (List.length (Ir.inputs c))
        (List.length (Ir.regs c));
      Format.printf "operators: %d word-level, %d Boolean@." arith boolean;
      Format.printf "predicate roots: %d@."
        (List.length (Structure.predicate_roots c));
      Format.printf "properties: %s@."
        (String.concat ", " (List.map fst props));
      if dump then Format.printf "@.%a" Ir.pp_circuit c
    | exception Not_found ->
      Format.eprintf "unknown circuit %s@." circuit;
      exit 2
  in
  Cmd.v (Cmd.info "show" ~exits:std_exits ~doc:"Show circuit statistics")
    Term.(const run $ circuit $ dump)

(* ---- solve ---- *)

let solve_cmd =
  let case_file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"CASE.rtl"
           ~doc:"A fuzz-case netlist file (test/corpus format): the circuit, \
                 the $(b,prop) output port and a $(i,# fuzz-case) directive. \
                 Replaces --circuit/--property/--bound.")
  in
  let circuit =
    Arg.(value & opt (some string) None & info [ "c"; "circuit" ] ~docv:"NAME")
  in
  let prop =
    Arg.(value & opt (some string) None & info [ "p"; "property" ] ~docv:"PROP")
  in
  let bound =
    Arg.(value & opt (some int) None & info [ "k"; "bound" ] ~docv:"FRAMES")
  in
  let engine =
    Arg.(value & opt engine_conv Engines.Hdpll_sp & info [ "e"; "engine" ])
  in
  let timeout = Arg.(value & opt float 1200.0 & info [ "timeout" ] ~docv:"SECONDS") in
  let stats_json =
    Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Write the run's counters, per-phase timings, histograms and \
                 forensics (hot constraints/variables, ICP stalls) as JSON")
  in
  let trace_out =
    trace_term
      ~doc:"Write a JSON-lines event trace (decisions, conflicts, restarts, \
            learned clauses, J-frontier sizes, ICP stalls); replay it with \
            $(b,rtlsat profile)"
  in
  let dump_graph =
    Arg.(value & opt (some string) None & info [ "dump-graph" ] ~docv:"DIR"
           ~doc:"Export the hybrid implication graph of the first conflicts \
                 as GraphViz DOT files DIR/conflict_NNNN.dot (HDPLL engines \
                 only; the directory is created if missing)")
  in
  let dump_graph_max =
    Arg.(value & opt int 10 & info [ "dump-graph-max" ] ~docv:"N"
           ~doc:"Cap on exported conflict graphs")
  in
  let progress =
    Arg.(value & flag & info [ "v"; "progress" ]
           ~doc:"Periodic one-line progress reports on stderr (decisions/s, \
                 conflicts/s, learned DB size, depth) and a phase-time summary")
  in
  let flight =
    Arg.(value
         & vflag true
             [ ( true,
                 info [ "flight-recorder-on" ]
                   ~doc:"Keep the flight recorder armed (default): a bounded \
                         in-memory ring of the last trace events, dumped for \
                         $(b,rtlsat profile) when the solve times out, \
                         aborts, dies, or receives SIGUSR1" );
               ( false,
                 info [ "no-flight-recorder" ]
                   ~doc:"Disarm the flight recorder (and, with no other \
                         observability flag, run fully uninstrumented)" ) ])
  in
  let flight_out =
    Arg.(value & opt string "rtlsat.flight.jsonl"
         & info [ "flight-recorder" ] ~docv:"FILE"
             ~doc:"Where a flight-recorder dump lands; nothing is written \
                   when the solve ends normally")
  in
  let heartbeat =
    Arg.(value & opt float 1.0 & info [ "heartbeat" ] ~docv:"SECONDS"
           ~doc:"Interval between heartbeat trace events (progress totals \
                 and per-second rates, consumed by $(b,rtlsat top)); 0 \
                 disables them")
  in
  let metrics_out =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write the run's metrics in OpenMetrics text exposition \
                 format (see also $(b,rtlsat metrics))")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Race up to $(docv) engines as a parallel portfolio over \
                 OCaml domains: the requested engine plus the others, first \
                 Sat/Unsat wins and cancels the rest cooperatively.  1 \
                 (default) solves sequentially")
  in
  let cube =
    Arg.(value & flag & info [ "cube" ]
           ~doc:"Cube-and-conquer instead of a portfolio: a short probe \
                 warms the split heap, midpoint bisection over its \
                 nominations yields cubes fanned over --jobs workers with \
                 short-clause exchange.  Hybrid engines only")
  in
  let run case_file circuit prop bound engine timeout stats_json trace_out
      dump_graph dump_graph_max progress opts flight flight_out heartbeat
      metrics_out jobs cube ledger =
    let inst, label =
      match (case_file, circuit, prop, bound) with
      | Some file, None, None, None ->
        (match Fuzz_case.of_file file with
         | case ->
           ( Fuzz_case.instance case,
             Filename.remove_extension (Filename.basename file) )
         | exception (Sys_error msg | Failure msg) ->
           Format.eprintf "rtlsat: cannot load %s: %s@." file msg;
           exit 2)
      | Some _, _, _, _ ->
        Format.eprintf
          "rtlsat: CASE.rtl and --circuit/--property/--bound are exclusive@.";
        exit 2
      | None, Some circuit, Some prop, Some bound ->
        (match Registry.instance ~circuit ~prop ~bound with
         | inst -> (inst, Registry.instance_name ~circuit ~prop ~bound)
         | exception Not_found ->
           Format.eprintf "unknown instance %s_%s@." circuit prop;
           exit 2)
      | None, _, _, _ ->
        Format.eprintf
          "rtlsat: give either CASE.rtl or all of --circuit, --property and \
           --bound@.";
        exit 2
    in
    let bound = inst.Rtlsat_bmc.Bmc.bound in
    (* fail on unwritable output paths before solving, not after *)
    (match stats_json with
     | Some path ->
       (try close_out (open_out path)
        with Sys_error msg ->
          Format.eprintf "rtlsat: cannot write stats file: %s@." msg;
          exit 2)
     | None -> ());
    (match dump_graph with
     | Some dir ->
       (try Unix.mkdir dir 0o755
        with
        | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
        | Unix.Unix_error (e, _, _) ->
          Format.eprintf "rtlsat: cannot create %s: %s@." dir
            (Unix.error_message e);
          exit 2)
     | None -> ());
    let need_obs =
      stats_json <> None || trace_out <> None || progress || flight
      || metrics_out <> None
    in
    let obs =
      if need_obs then
        Obs.create
          ?trace:
            (Option.map
               (fun path ->
                  try Trace.to_file path
                  with Sys_error msg ->
                    Format.eprintf "rtlsat: cannot write trace file: %s@." msg;
                    exit 2)
               trace_out)
          ?recorder:(if flight then Some (Recorder.create ()) else None)
          ?heartbeat_every:(if heartbeat > 0.0 then Some heartbeat else None)
          ?progress_every:(if progress then Some 1.0 else None)
          ()
      else Obs.disabled
    in
    let dump_flight () =
      match Obs.flight_dump obs flight_out with
      | true ->
        Format.eprintf
          "flight recorder dumped to %s; replay with: rtlsat profile %s@."
          flight_out flight_out;
        true
      | false -> false
      | exception Sys_error msg ->
        Format.eprintf "rtlsat: cannot dump flight recorder: %s@." msg;
        false
    in
    (* signal handlers run on the main domain only; never arm (or
       re-arm) from a worker domain *)
    if flight && Domain.is_main_domain () then
      (try
         Sys.set_signal Sys.sigusr1
           (Sys.Signal_handle (fun _ -> ignore (dump_flight ())))
       with Invalid_argument _ | Sys_error _ -> ());
    let jobs = max 1 jobs in
    (if cube then
       match engine with
       | Engines.Hdpll | Engines.Hdpll_s | Engines.Hdpll_sp | Engines.Hdpll_p
         -> ()
       | Engines.Bitblast | Engines.Lazy_cdp ->
         Format.eprintf
           "rtlsat: --cube needs a hybrid engine (no split heap to cube on)@.";
         exit 2);
    let mode_note = ref [] in
    let req =
      req_of_opts ~obs ?dump_graph ~dump_graph_max ~timeout opts
    in
    let r =
      try
        if cube then begin
          let c = Parallel.cube_solve ~req ~j:jobs ~engine inst in
          mode_note :=
            [ Printf.sprintf
                "cube-and-conquer -j %d: %d cubes over vars [%s], %d \
                 refuted, exchange %d shared / %d imported, probe %.2fs"
                jobs c.Parallel.c_cubes
                (String.concat ";"
                   (List.map string_of_int c.Parallel.c_vars))
                c.Parallel.c_refuted c.Parallel.c_exchange_pushed
                c.Parallel.c_exchange_taken c.Parallel.c_probe_time ];
          {
            Engines.verdict = c.Parallel.c_verdict;
            time = c.Parallel.c_time;
            relations = 0;
            learn_time = 0.0;
            decisions = 0;
            conflicts = 0;
            stats = None;
            metrics = (if need_obs then Some c.Parallel.c_metrics else None);
          }
        end
        else if jobs > 1 then begin
          let p = Parallel.portfolio ~req ~j:jobs ~engine inst in
          mode_note :=
            [ Printf.sprintf "portfolio -j %d raced {%s}: %s" jobs
                (String.concat ", "
                   (List.map
                      (fun (e, _) -> Engines.engine_name e)
                      p.Parallel.p_runs))
                (match p.Parallel.p_winner with
                 | Some e -> "winner " ^ Engines.engine_name e
                 | None -> "no decisive finisher") ];
          {
            p.Parallel.p_run with
            Engines.time = p.Parallel.p_wall;
            Engines.metrics =
              (if need_obs then Some p.Parallel.p_metrics
               else p.Parallel.p_run.Engines.metrics);
          }
        end
        else Engines.run_instance ~req engine inst
      with e ->
        (* post-mortem for crashes, not just timeouts *)
        ignore (dump_flight ());
        raise e
    in
    Obs.close obs;
    List.iter (fun l -> Format.printf "%s@." l) !mode_note;
    Format.printf "%s %s: %s in %.2fs@." label
      (Engines.engine_name engine)
      (match r.Engines.verdict with
       | Engines.Sat -> "SATISFIABLE (witness validated)"
       | Engines.Unsat -> "UNSATISFIABLE"
       | Engines.Timeout -> "TIMEOUT"
       | Engines.Abort msg -> "ABORT: " ^ msg)
      r.Engines.time;
    Format.printf "decisions=%d conflicts=%d relations=%d%s@."
      r.Engines.decisions r.Engines.conflicts r.Engines.relations
      (match r.Engines.stats with
       | Some st when st.Rtlsat_core.Solver.splits > 0 ->
         Printf.sprintf " splits=%d" st.Rtlsat_core.Solver.splits
       | _ -> "");
    if progress then
      (match r.Engines.metrics with
       | Some m ->
         Format.eprintf "phase self-times:@.";
         List.iter
           (fun (name, self, calls) ->
              if calls > 0 then
                Format.eprintf "  %-18s %8.3fs  (%d)@." name self calls)
           m.Obs.phases
       | None -> ());
    (match stats_json with
     | Some path ->
       write_json path (Report.solve_json ~instance:label ~bound engine r);
       Format.printf "stats written to %s@." path
     | None -> ());
    (match trace_out with
     | Some path -> Format.printf "trace written to %s@." path
     | None -> ());
    (match dump_graph with
     | Some dir -> Format.printf "conflict graphs written to %s@." dir
     | None -> ());
    (match metrics_out with
     | Some path ->
       (try
          let oc = open_out path in
          output_string oc
            (Openmetrics.of_json
               (Report.solve_json ~instance:label ~bound engine r));
          close_out oc;
          Format.printf "metrics written to %s@." path
        with Sys_error msg ->
          Format.eprintf "rtlsat: cannot write metrics file: %s@." msg;
          exit 2)
     | None -> ());
    let dumped =
      match r.Engines.verdict with
      | Engines.Timeout | Engines.Abort _ -> dump_flight ()
      | Engines.Sat | Engines.Unsat -> false
    in
    ledger_append ledger ~subcommand:"solve" ~instance:label
      ~engine:(Engines.engine_name engine)
      ~options:
        (Printf.sprintf "bound=%d,split=%b,simplify=%b,inprocess=%d,j=%d%s"
           bound opts.eo_split opts.eo_simplify opts.eo_inprocess jobs
           (if cube then ",cube" else ""))
      ~verdict:(Report.verdict_string r.Engines.verdict)
      ~wall_s:r.Engines.time
      ~counters:
        ([
           ("decisions", r.Engines.decisions);
           ("conflicts", r.Engines.conflicts);
           ("relations", r.Engines.relations);
         ]
         @
         match r.Engines.stats with
         | Some st -> [ ("splits", st.Rtlsat_core.Solver.splits) ]
         | None -> [])
      ~artifacts:
        (List.concat
           [
             (match trace_out with Some p -> [ ("trace", p) ] | None -> []);
             (match stats_json with Some p -> [ ("stats", p) ] | None -> []);
             (match metrics_out with Some p -> [ ("metrics", p) ] | None -> []);
             (if dumped then [ ("flight", flight_out) ] else []);
           ]);
    match r.Engines.verdict with
    | Engines.Timeout | Engines.Abort _ -> exit 1
    | Engines.Sat | Engines.Unsat -> ()
  in
  Cmd.v
    (Cmd.info "solve" ~exits:std_exits
       ~doc:"Decide one BMC instance (benchmark or .rtl case file)")
    Term.(const run $ case_file $ circuit $ prop $ bound $ engine $ timeout
          $ stats_json $ trace_out $ dump_graph $ dump_graph_max $ progress
          $ engine_opts_term $ flight $ flight_out $ heartbeat $ metrics_out
          $ jobs $ cube $ ledger_term)

(* ---- check: external netlist files ---- *)

let check_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"NETLIST") in
  let port =
    Arg.(required & opt (some string) None & info [ "p"; "property" ] ~docv:"OUTPUT"
           ~doc:"Output port holding the safety property (must be 1)")
  in
  let bound = Arg.(required & opt (some int) None & info [ "k"; "bound" ]) in
  let any = Arg.(value & flag & info [ "any" ] ~doc:"Violation anywhere within the bound") in
  let vcd_out =
    Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE"
           ~doc:"Write the counterexample trace as VCD")
  in
  let timeout = Arg.(value & opt float 1200.0 & info [ "timeout" ]) in
  let run file port bound any vcd_out timeout =
    let circuit =
      try Rtlsat_rtl.Text.parse_file file
      with Sys_error msg | Failure msg ->
        Format.eprintf "rtlsat: cannot load %s: %s@." file msg;
        exit 2
    in
    let prop =
      match Rtlsat_rtl.Netlist.find_output circuit port with
      | p -> p
      | exception Not_found ->
        Format.eprintf "no output port %s@." port;
        exit 2
    in
    let semantics = if any then Rtlsat_bmc.Bmc.Any else Rtlsat_bmc.Bmc.Final in
    let inst = Rtlsat_bmc.Bmc.make circuit ~prop ~bound ~semantics () in
    let combo = Rtlsat_bmc.Unroll.combo inst.Rtlsat_bmc.Bmc.unrolled in
    let enc = Rtlsat_constr.Encode.encode combo in
    Rtlsat_constr.Encode.assume_bool enc inst.Rtlsat_bmc.Bmc.violation true;
    let module Solver = Rtlsat_core.Solver in
    let options = { Solver.hdpll_sp with Solver.deadline = Mono.now () +. timeout } in
    (match (Solver.solve ~options enc).Solver.result with
     | Solver.Unsat -> Format.printf "%s holds within %d frames (UNSAT)@." port bound
     | Solver.Timeout ->
       Format.printf "TIMEOUT@.";
       exit 1
     | Solver.Sat m ->
       let value n = m.(Rtlsat_constr.Encode.var enc n) in
       assert (Rtlsat_bmc.Bmc.witness_ok inst value);
       Format.printf "%s VIOLATED within %d frames@." port bound;
       let inputs_at f =
         List.map
           (fun n -> (n, value (Rtlsat_bmc.Unroll.input_at inst.Rtlsat_bmc.Bmc.unrolled n f)))
           (Ir.inputs circuit)
       in
       let traces =
         Rtlsat_rtl.Sim.run circuit ~inputs:(List.init bound inputs_at)
       in
       (match vcd_out with
        | Some path ->
          Rtlsat_rtl.Vcd.to_file circuit traces path;
          Format.printf "counterexample written to %s@." path
        | None ->
          List.iteri
            (fun f ins ->
               Format.printf "  cycle %2d:" f;
               List.iter
                 (fun (n, v) -> Format.printf " %s=%d" (Ir.node_name n) v)
                 ins;
               Format.printf "@.")
            (List.init bound inputs_at)))
  in
  Cmd.v
    (Cmd.info "check" ~exits:std_exits
       ~doc:"Bounded model checking of a textual netlist file")
    Term.(const run $ file $ port $ bound $ any $ vcd_out $ timeout)

(* ---- sweep: bound sweep through one incremental solver session ---- *)

let sweep_cmd =
  let circuit =
    Arg.(required & opt (some string) None & info [ "c"; "circuit" ] ~docv:"NAME")
  in
  let prop =
    Arg.(required & opt (some string) None & info [ "p"; "property" ] ~docv:"PROP")
  in
  let bounds =
    Arg.(value & opt (list int) [ 10; 20; 30 ]
         & info [ "bounds" ] ~docv:"K1,K2,.."
             ~doc:"Comma-separated bounds to sweep, in order")
  in
  let engine =
    Arg.(value & opt engine_conv Engines.Hdpll_sp & info [ "e"; "engine" ])
  in
  let timeout =
    Arg.(value & opt float 1200.0 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-bound budget")
  in
  let scratch =
    Arg.(value & flag & info [ "compare-scratch" ]
           ~doc:"Also re-solve every bound from scratch and print both times")
  in
  let trace_out =
    trace_term
      ~doc:"Write a JSON-lines event trace, including the session \
            lifecycle events (session.create, solve.begin with carried \
            counters) and the per-bound sweep.bound / sweep.result \
            progress events; follow it live with $(b,rtlsat top)"
  in
  let heartbeat =
    Arg.(value & opt float 1.0 & info [ "heartbeat" ] ~docv:"SECONDS"
           ~doc:"Interval between heartbeat trace events (each tagged with \
                 the bound being solved); 0 disables them")
  in
  let metrics_out =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write the sweep's cumulative metrics in OpenMetrics text \
                 exposition format")
  in
  let flight =
    Arg.(value
         & vflag true
             [ ( true,
                 info [ "flight-recorder-on" ]
                   ~doc:"Keep the flight recorder armed (default): a bounded \
                         in-memory ring of the last trace events, dumped for \
                         $(b,rtlsat profile) when any bound times out, the \
                         sweep dies, or it receives SIGUSR1" );
               ( false,
                 info [ "no-flight-recorder" ]
                   ~doc:"Disarm the flight recorder (and, with no other \
                         observability flag, run fully uninstrumented)" ) ])
  in
  let flight_out =
    Arg.(value & opt string "rtlsat.flight.jsonl"
         & info [ "flight-recorder" ] ~docv:"FILE"
             ~doc:"Where a flight-recorder dump lands; nothing is written \
                   when every bound ends normally")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Partition the bound ladder round-robin over $(docv) worker \
                 domains, each with its own private solver session.  \
                 Verdicts match -j 1; carried counters become per-worker")
  in
  let run circuit prop bounds engine timeout scratch trace_out heartbeat
      metrics_out flight flight_out opts jobs ledger =
    let source, p =
      match Registry.build circuit with
      | c, props ->
        (match List.assoc_opt prop props with
         | Some p -> (c, p)
         | None ->
           Format.eprintf "unknown property %s_%s@." circuit prop;
           exit 2)
      | exception Not_found ->
        Format.eprintf "unknown circuit %s@." circuit;
        exit 2
    in
    let obs =
      if trace_out <> None || metrics_out <> None || flight then
        Obs.create
          ?trace:
            (Option.map
               (fun path ->
                  try Trace.to_file path
                  with Sys_error msg ->
                    Format.eprintf "rtlsat: cannot write trace file: %s@." msg;
                    exit 2)
               trace_out)
          ?recorder:(if flight then Some (Recorder.create ()) else None)
          ?heartbeat_every:(if heartbeat > 0.0 then Some heartbeat else None)
          ()
      else Obs.disabled
    in
    let dump_flight () =
      match Obs.flight_dump obs flight_out with
      | true ->
        Format.eprintf
          "flight recorder dumped to %s; replay with: rtlsat profile %s@."
          flight_out flight_out;
        true
      | false -> false
      | exception Sys_error msg ->
        Format.eprintf "rtlsat: cannot dump flight recorder: %s@." msg;
        false
    in
    (* signal handlers run on the main domain only; never arm (or
       re-arm) from a worker domain *)
    if flight && Domain.is_main_domain () then
      (try
         Sys.set_signal Sys.sigusr1
           (Sys.Signal_handle (fun _ -> ignore (dump_flight ())))
       with Invalid_argument _ | Sys_error _ -> ());
    let jobs = max 1 jobs in
    let req = req_of_opts ~obs ~timeout opts in
    let steps =
      try Parallel.sweep ~req ~j:jobs engine source ~prop:p ~bounds
      with e ->
        (* post-mortem for crashes, matching solve *)
        ignore (dump_flight ());
        raise e
    in
    (match metrics_out with
     | Some path ->
       (try
          let oc = open_out path in
          output_string oc (Openmetrics.of_snapshot (Obs.snapshot obs));
          close_out oc;
          Format.printf "metrics written to %s@." path
        with Sys_error msg ->
          Format.eprintf "rtlsat: cannot write metrics file: %s@." msg;
          exit 2)
     | None -> ());
    Obs.close obs;
    if jobs > 1 then
      Format.printf
        "%s_%s sweep, engine %s: %d worker sessions, bounds as assumptions@."
        circuit prop (Engines.engine_name engine) jobs
    else
      Format.printf
        "%s_%s sweep, engine %s: one session, bounds as assumptions@." circuit
        prop (Engines.engine_name engine);
    Format.printf "%5s %-4s %8s%s %12s %12s@." "bound" "rslt" "incr"
      (if scratch then "  scratch" else "")
      "carried-cls" "carried-rels";
    let pp_run fmt (r : Engines.run) =
      match r.Engines.verdict with
      | Engines.Timeout -> Format.fprintf fmt "%8s" "-to-"
      | Engines.Abort _ -> Format.fprintf fmt "%8s" "-A-"
      | _ -> Format.fprintf fmt "%8.2f" r.Engines.time
    in
    let incr_total = ref 0.0 and scratch_total = ref 0.0 in
    List.iter
      (fun (step : Engines.sweep_step) ->
         incr_total := !incr_total +. step.Engines.sw_run.Engines.time;
         let scratch_cell =
           if scratch then begin
             let r =
               Engines.run_instance
                 ~req:(Req.make ~timeout ())
                 engine
                 (Registry.instance ~circuit ~prop ~bound:step.Engines.sw_bound)
             in
             scratch_total := !scratch_total +. r.Engines.time;
             Format.asprintf " %a" pp_run r
           end
           else ""
         in
         Format.printf "%5d %-4s %a%s %12d %12d@." step.Engines.sw_bound
           (Engines.verdict_symbol step.Engines.sw_run.Engines.verdict)
           pp_run step.Engines.sw_run scratch_cell
           step.Engines.sw_carried_clauses step.Engines.sw_carried_relations)
      steps;
    if scratch then
      Format.printf "total: incremental %.2fs, from-scratch %.2fs@." !incr_total
        !scratch_total
    else Format.printf "total: incremental %.2fs@." !incr_total;
    (match trace_out with
     | Some path -> Format.printf "trace written to %s@." path
     | None -> ());
    let bad =
      List.exists
        (fun (step : Engines.sweep_step) ->
           match step.Engines.sw_run.Engines.verdict with
           | Engines.Timeout | Engines.Abort _ -> true
           | Engines.Sat | Engines.Unsat -> false)
        steps
    in
    let dumped = if bad then dump_flight () else false in
    let sweep_verdict =
      let has v =
        List.exists
          (fun (s : Engines.sweep_step) ->
             match (s.Engines.sw_run.Engines.verdict, v) with
             | Engines.Timeout, `T | Engines.Abort _, `A -> true
             | _ -> false)
          steps
      in
      if has `T then "timeout"
      else if has `A then "abort"
      else
        match List.rev steps with
        | last :: _ -> Report.verdict_string last.Engines.sw_run.Engines.verdict
        | [] -> "abort"
    in
    let total c =
      List.fold_left
        (fun acc (s : Engines.sweep_step) -> acc + c s.Engines.sw_run)
        0 steps
    in
    ledger_append ledger ~subcommand:"sweep"
      ~instance:(Printf.sprintf "%s_%s" circuit prop)
      ~engine:(Engines.engine_name engine)
      ~options:
        (Printf.sprintf "bounds=%s,simplify=%b,inprocess=%d,j=%d"
           (String.concat ";" (List.map string_of_int bounds))
           opts.eo_simplify opts.eo_inprocess jobs)
      ~verdict:sweep_verdict ~wall_s:!incr_total
      ~counters:
        [
          ("bounds", List.length steps);
          ("decisions", total (fun r -> r.Engines.decisions));
          ("conflicts", total (fun r -> r.Engines.conflicts));
        ]
      ~artifacts:
        (List.concat
           [
             (match trace_out with Some p -> [ ("trace", p) ] | None -> []);
             (match metrics_out with Some p -> [ ("metrics", p) ] | None -> []);
             (if dumped then [ ("flight", flight_out) ] else []);
           ]);
    if bad then exit 1
  in
  Cmd.v
    (Cmd.info "sweep" ~exits:std_exits
       ~doc:"Sweep a list of BMC bounds through one incremental solver \
             session: learned clauses, predicate relations and heuristic \
             state carry from bound to bound")
    Term.(const run $ circuit $ prop $ bounds $ engine $ timeout $ scratch
          $ trace_out $ heartbeat $ metrics_out $ flight $ flight_out
          $ engine_opts_term $ jobs $ ledger_term)

(* ---- serve: JSON-lines daemon over warm solver sessions ---- *)

let serve_cmd =
  let engine =
    Arg.(value & opt engine_conv Engines.Hdpll_sp
         & info [ "e"; "engine" ]
             ~doc:"Default engine for requests that do not name one")
  in
  let run engine ledger =
    let t = Serve.create ?ledger ~engine () in
    let served = Serve.run t stdin stdout in
    Format.eprintf "rtlsat serve: %d requests served@." served
  in
  Cmd.v
    (Cmd.info "serve" ~exits:std_exits
       ~doc:"JSON-lines request/response daemon (schema rtlsat.serve/1, one \
             request per stdin line, one response per stdout line) over a \
             pool of warm per-(circuit, property) solver sessions: a \
             repeated solve or sweep request reuses the session's unroll \
             prefix and carried learned clauses, and each request carries \
             its own deadline.  Operations: solve, sweep, ping, stats, \
             shutdown; see docs/OBSERVABILITY.md for the schema")
    Term.(const run $ engine $ ledger_term)

(* ---- prove: k-induction ---- *)

let prove_cmd =
  let circuit =
    Arg.(required & opt (some string) None & info [ "c"; "circuit" ] ~docv:"NAME")
  in
  let prop =
    Arg.(required & opt (some string) None & info [ "p"; "property" ] ~docv:"PROP")
  in
  let max_k = Arg.(value & opt int 20 & info [ "max-k" ]) in
  let run circuit prop max_k =
    match Registry.build circuit with
    | c, props ->
      (match List.assoc_opt prop props with
       | None ->
         Format.eprintf "unknown property %s_%s@." circuit prop;
         exit 2
       | Some p ->
         (match Rtlsat_harness.Induction.prove ~max_k c ~prop:p with
          | Rtlsat_harness.Induction.Proved k ->
            Format.printf "%s_%s PROVED for all reachable states (inductive at k=%d)@."
              circuit prop k
          | Rtlsat_harness.Induction.Falsified k ->
            Format.printf "%s_%s FALSIFIED by a %d-cycle trace from reset@." circuit
              prop k
          | Rtlsat_harness.Induction.Unknown ->
            Format.printf "%s_%s UNKNOWN up to k=%d (not inductive)@." circuit prop
              max_k))
    | exception Not_found ->
      Format.eprintf "unknown circuit %s@." circuit;
      exit 2
  in
  Cmd.v
    (Cmd.info "prove" ~exits:std_exits ~doc:"Unbounded proof by k-induction")
    Term.(const run $ circuit $ prop $ max_k)

(* ---- sat: standalone DIMACS solving ---- *)

let sat_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"CNF") in
  let timeout = Arg.(value & opt float 1200.0 & info [ "timeout" ]) in
  let stats_json =
    Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Write the simplification pass counters (subsumed, \
                 strengthened, eliminated, probed, equivalences, rounds) and \
                 final clause/variable counts as JSON")
  in
  let flight =
    Arg.(value
         & vflag true
             [ ( true,
                 info [ "flight-recorder-on" ]
                   ~doc:"Keep the flight recorder armed (default): a bounded \
                         in-memory ring of the last CDCL trace events \
                         (decisions, conflicts, restarts, heartbeats), dumped \
                         for $(b,rtlsat profile) when the solve times out, \
                         dies, or receives SIGUSR1" );
               ( false,
                 info [ "no-flight-recorder" ]
                   ~doc:"Disarm the flight recorder and run uninstrumented" ) ])
  in
  let flight_out =
    Arg.(value & opt string "rtlsat.flight.jsonl"
         & info [ "flight-recorder" ] ~docv:"FILE"
             ~doc:"Where a flight-recorder dump lands; nothing is written \
                   when the solve ends normally")
  in
  let run file timeout opts stats_json flight flight_out ledger =
    let simplify = opts.eo_simplify and inprocess = opts.eo_inprocess in
    let ic = open_in_bin file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let obs =
      if flight then Obs.create ~recorder:(Recorder.create ()) ~heartbeat_every:1.0 ()
      else Obs.disabled
    in
    let dump_flight () =
      match Obs.flight_dump obs flight_out with
      | true ->
        Format.eprintf
          "flight recorder dumped to %s; replay with: rtlsat profile %s@."
          flight_out flight_out;
        true
      | false -> false
      | exception Sys_error msg ->
        Format.eprintf "rtlsat: cannot dump flight recorder: %s@." msg;
        false
    in
    (* signal handlers run on the main domain only; never arm (or
       re-arm) from a worker domain *)
    if flight && Domain.is_main_domain () then
      (try
         Sys.set_signal Sys.sigusr1
           (Sys.Signal_handle (fun _ -> ignore (dump_flight ())))
       with Invalid_argument _ | Sys_error _ -> ());
    let t_start = Mono.now () in
    let deadline = t_start +. timeout in
    let solver_out = ref None in
    let result =
      try
        Rtlsat_sat.Dimacs.solve_text ~deadline ~simplify ~inprocess ~solver_out
          ~obs text
      with e ->
        ignore (dump_flight ());
        raise e
    in
    let wall = Mono.now () -. t_start in
    Rtlsat_sat.Dimacs.print_result Format.std_formatter result;
    (match (stats_json, !solver_out) with
     | Some path, Some solver ->
       let st = Rtlsat_sat.Cdcl.simp_stats solver in
       let open Rtlsat_simplify.Simp in
       write_json path
         (Json.Obj
            [ ("schema", Json.Str "rtlsat.sat/1");
              ("file", Json.Str (Filename.basename file));
              ( "result",
                Json.Str
                  (match result with
                   | `Sat _ -> "sat"
                   | `Unsat -> "unsat"
                   | `Timeout -> "timeout") );
              ( "simplify",
                Json.Obj
                  [ ("enabled", Json.Bool simplify);
                    ("subsumed", Json.Int st.subsumed);
                    ("strengthened", Json.Int st.strengthened);
                    ("eliminated", Json.Int st.eliminated);
                    ("probed", Json.Int st.probed);
                    ("equivs", Json.Int st.equivs);
                    ("rounds", Json.Int st.rounds) ] );
              ("vars", Json.Int (Rtlsat_sat.Cdcl.n_vars solver));
              ("clauses", Json.Int (Rtlsat_sat.Cdcl.n_clauses solver));
              ("conflicts", Json.Int (Rtlsat_sat.Cdcl.n_conflicts solver)) ]);
       Format.printf "stats written to %s@." path
     | _ -> ());
    let dumped =
      match result with `Timeout -> dump_flight () | `Sat _ | `Unsat -> false
    in
    ledger_append ledger ~subcommand:"sat"
      ~instance:(Filename.basename file) ~engine:"cdcl"
      ~options:(Printf.sprintf "simplify=%b,inprocess=%d" simplify inprocess)
      ~verdict:
        (match result with
         | `Sat _ -> "sat"
         | `Unsat -> "unsat"
         | `Timeout -> "timeout")
      ~wall_s:wall
      ~counters:
        (match !solver_out with
         | Some solver ->
           [
             ("vars", Rtlsat_sat.Cdcl.n_vars solver);
             ("clauses", Rtlsat_sat.Cdcl.n_clauses solver);
             ("conflicts", Rtlsat_sat.Cdcl.n_conflicts solver);
           ]
         | None -> [])
      ~artifacts:
        (List.concat
           [
             (match stats_json with Some p -> [ ("stats", p) ] | None -> []);
             (if dumped then [ ("flight", flight_out) ] else []);
           ]);
    match result with `Timeout -> exit 1 | `Sat _ | `Unsat -> ()
  in
  Cmd.v
    (Cmd.info "sat" ~exits:std_exits
       ~doc:"Solve a DIMACS CNF file with the CDCL engine")
    Term.(const run $ file $ timeout $ engine_opts_term $ stats_json
          $ flight $ flight_out $ ledger_term)

(* ---- export ---- *)

let export_cmd =
  let circuit =
    Arg.(required & opt (some string) None & info [ "c"; "circuit" ] ~docv:"NAME")
  in
  let prop =
    Arg.(required & opt (some string) None & info [ "p"; "property" ] ~docv:"PROP")
  in
  let bound = Arg.(required & opt (some int) None & info [ "k"; "bound" ]) in
  let fmt_arg =
    Arg.(value & opt (enum [ ("smt2", `Smt2); ("dimacs", `Dimacs); ("rtl", `Rtl) ]) `Smt2
         & info [ "format" ] ~docv:"smt2|dimacs|rtl")
  in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE") in
  let run circuit prop bound fmt out =
    let inst = Registry.instance ~circuit ~prop ~bound in
    let combo = Rtlsat_bmc.Unroll.combo inst.Rtlsat_bmc.Bmc.unrolled in
    let text =
      match fmt with
      | `Smt2 ->
        Rtlsat_rtl.Smtlib.export ~assumes:[ (inst.Rtlsat_bmc.Bmc.violation, 1) ] combo
      | `Dimacs ->
        let bb = Rtlsat_baselines.Bitblast.encode combo in
        Rtlsat_baselines.Bitblast.assume_bool bb inst.Rtlsat_bmc.Bmc.violation true;
        Rtlsat_baselines.Bitblast.to_dimacs bb
      | `Rtl -> Rtlsat_rtl.Text.to_string (Registry.build circuit |> fst)
    in
    match out with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Format.printf "written to %s@." path
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export an instance as SMT-LIB 2 / DIMACS, or the circuit as text")
    Term.(const run $ circuit $ prop $ bound $ fmt_arg $ out)

(* ---- fuzz: cross-engine differential fuzzing ---- *)

let fuzz_cmd =
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N") in
  let count =
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"N"
           ~doc:"Instances to generate and cross-check")
  in
  let max_nodes =
    Arg.(value & opt int Fuzz_gen.default.Fuzz_gen.max_nodes
         & info [ "max-nodes" ] ~docv:"N"
             ~doc:"Operator budget per generated circuit")
  in
  let max_regs =
    Arg.(value & opt int Fuzz_gen.default.Fuzz_gen.max_regs
         & info [ "max-regs" ] ~docv:"N"
             ~doc:"Register budget per circuit (0 = combinational only)")
  in
  let deadline =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"Stop starting new instances after this much wall time")
  in
  let timeout =
    Arg.(value & opt float 2.0 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-engine budget on each instance")
  in
  let json_out =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the campaign summary (schema rtlsat.fuzz/1), \
                 including every shrunk failing circuit")
  in
  let out_dir =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"DIR"
           ~doc:"Write each shrunk failing case as DIR/fuzz_seed<N>.rtl, \
                 ready for test/corpus/")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ]
           ~doc:"One line per instance on stderr (verdicts + certificate)")
  in
  let trace_out =
    trace_term
      ~doc:"Write a JSON-lines campaign trace (rate-limited fuzz.progress \
            events with instance/verdict/failure totals)"
  in
  let run seed count max_nodes max_regs deadline timeout json_out out_dir
      verbose trace_out opts ledger =
    let obs =
      Obs.create
        ?trace:
          (Option.map
             (fun path ->
                try Trace.to_file path
                with Sys_error msg ->
                  Format.eprintf "rtlsat: cannot write trace file: %s@." msg;
                  exit 2)
             trace_out)
        ()
    in
    let log =
      if verbose then
        Some
          (fun i _case outcome ->
             Format.eprintf "[%d] %s@." i (Oracle.describe outcome))
      else None
    in
    let cfg =
      {
        Fuzz.default with
        Fuzz.seed;
        count;
        req = req_of_opts ~timeout opts;
        obs;
        log;
        deadline = Option.value deadline ~default:infinity;
        gen = { Fuzz_gen.default with Fuzz_gen.max_nodes; max_regs };
      }
    in
    let s = Fuzz.run cfg in
    Format.printf
      "fuzz: %d instances (seed %d): %d sat, %d unsat, %d timeout, %d \
       failures in %.1fs%s@."
      s.Fuzz.instances seed s.Fuzz.sat s.Fuzz.unsat s.Fuzz.timeouts
      (List.length s.Fuzz.failures)
      s.Fuzz.wall
      (if s.Fuzz.stopped_early then " (deadline)" else "");
    List.iter
      (fun f ->
         Format.printf "FAILURE index=%d seed=%d: %s@." f.Fuzz.f_index
           f.Fuzz.f_seed
           (Oracle.describe f.Fuzz.f_outcome))
      s.Fuzz.failures;
    (match out_dir with
     | Some dir when s.Fuzz.failures <> [] ->
       (try Unix.mkdir dir 0o755
        with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
       List.iter
         (fun f ->
            let path =
              Filename.concat dir
                (Printf.sprintf "fuzz_seed%d.rtl" f.Fuzz.f_seed)
            in
            let oc = open_out path in
            output_string oc (Fuzz_case.to_string f.Fuzz.f_case);
            close_out oc;
            Format.printf "shrunk case written to %s@." path)
         s.Fuzz.failures
     | _ -> ());
    (match json_out with
     | Some path ->
       write_json path (Fuzz.summary_json cfg s);
       Format.printf "summary written to %s@." path
     | None -> ());
    Obs.close obs;
    (match trace_out with
     | Some path -> Format.printf "trace written to %s@." path
     | None -> ());
    ledger_append ledger ~subcommand:"fuzz"
      ~instance:(Printf.sprintf "seed%d" seed) ~engine:"all"
      ~options:
        (Printf.sprintf
           "count=%d,max_nodes=%d,max_regs=%d,simplify=%b,inprocess=%d" count
           max_nodes max_regs opts.eo_simplify opts.eo_inprocess)
      ~verdict:(if s.Fuzz.failures = [] then "ok" else "failures")
      ~wall_s:s.Fuzz.wall
      ~counters:
        [
          ("instances", s.Fuzz.instances);
          ("sat", s.Fuzz.sat);
          ("unsat", s.Fuzz.unsat);
          ("timeouts", s.Fuzz.timeouts);
          ("failures", List.length s.Fuzz.failures);
        ]
      ~artifacts:
        (List.concat
           [
             (match json_out with Some p -> [ ("summary", p) ] | None -> []);
             (match trace_out with Some p -> [ ("trace", p) ] | None -> []);
           ]);
    if s.Fuzz.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz" ~exits:std_exits
       ~doc:"Differential fuzzing: random circuits, all engines \
             cross-checked, failures shrunk")
    Term.(const run $ seed $ count $ max_nodes $ max_regs $ deadline $ timeout
          $ json_out $ out_dir $ verbose $ trace_out $ engine_opts_term
          $ ledger_term)

(* ---- profile: the trace-replay profiler ---- *)

let profile_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE"
           ~doc:"A JSON-lines trace written by $(b,rtlsat solve --trace)")
  in
  let run file =
    match Forensics.profile_file file with
    | p -> Forensics.print_profile Format.std_formatter p
    | exception Sys_error msg ->
      Format.eprintf "rtlsat: %s@." msg;
      exit 2
    | exception Forensics.Unsupported_schema msg ->
      Format.eprintf "rtlsat: %s@." msg;
      exit 2
  in
  Cmd.v
    (Cmd.info "profile" ~exits:std_exits
       ~doc:
         (Printf.sprintf
            "Replay a --trace file or flight-recorder dump offline: event \
             statistics, conflict locality, phase times, ICP-stall \
             forensics and a diagnosis.  Reads every trace schema from \
             rtlsat.trace/1 through rtlsat.trace/%d"
            Forensics.max_trace_version))
    Term.(const run $ file)

(* ---- top: heartbeat monitor ---- *)

let top_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE"
           ~doc:"A JSON-lines trace carrying heartbeat events (written by \
                 $(b,rtlsat solve --trace) / $(b,rtlsat sweep --trace))")
  in
  let follow =
    Arg.(value & flag & info [ "f"; "follow" ]
           ~doc:"Keep tailing the trace and re-render until the run's \
                 $(b,done) event arrives")
  in
  let interval =
    Arg.(value & opt float 0.5 & info [ "interval" ] ~docv:"SECONDS"
           ~doc:"Refresh period in follow mode")
  in
  let render fmt (v : Heartbeat.view) =
    Format.fprintf fmt "rtlsat top — %s  (%d events, t=%.1fs)@."
      (match v.Heartbeat.v_schema with
       | Some s -> s
       | None -> "headerless trace")
      v.Heartbeat.v_events v.Heartbeat.v_t;
    (match (v.Heartbeat.v_bound, v.Heartbeat.v_bound_index,
            v.Heartbeat.v_bounds_total)
     with
     | Some b, Some i, Some n ->
       Format.fprintf fmt "sweep: bound %d (%d of %d)@." b (i + 1) n
     | Some b, _, _ -> Format.fprintf fmt "sweep: bound %d@." b
     | None, _, _ -> ());
    Format.fprintf fmt "  decisions    %12d  %10.0f/s@." v.Heartbeat.v_decisions
      v.Heartbeat.v_dps;
    Format.fprintf fmt "  conflicts    %12d  %10.0f/s@." v.Heartbeat.v_conflicts
      v.Heartbeat.v_cps;
    Format.fprintf fmt "  propagations %12d  %10.0f/s@."
      v.Heartbeat.v_propagations v.Heartbeat.v_pps;
    (* trace/7 GC fields; pre-v7 traces leave the column at zero *)
    if v.Heartbeat.v_heap_mb > 0.0 then
      Format.fprintf fmt "  heap         %10.1f MB  (major %.2e words, %d compaction%s)@."
        v.Heartbeat.v_heap_mb v.Heartbeat.v_major_words
        v.Heartbeat.v_compactions
        (if v.Heartbeat.v_compactions = 1 then "" else "s");
    Format.fprintf fmt "  splits %d, stalls %d, width shaved %d, level %d@."
      v.Heartbeat.v_splits v.Heartbeat.v_stalls v.Heartbeat.v_shaved
      v.Heartbeat.v_lvl;
    (match v.Heartbeat.v_last_stall with
     | Some name ->
       Format.fprintf fmt "  last ICP stall: %s (%d report%s)@." name
         v.Heartbeat.v_stall_events
         (if v.Heartbeat.v_stall_events = 1 then "" else "s")
     | None -> ());
    (match List.rev v.Heartbeat.v_bound_results with
     | [] -> ()
     | results ->
       Format.fprintf fmt "bounds done:@.";
       List.iter
         (fun (r : Heartbeat.bound_result) ->
            Format.fprintf fmt "  %5d  %-8s %8.2fs@." r.Heartbeat.b_bound
              r.Heartbeat.b_verdict r.Heartbeat.b_time)
         results);
    match v.Heartbeat.v_result with
    | Some r -> Format.fprintf fmt "result: %s@." r
    | None -> Format.fprintf fmt "running…@."
  in
  let run file follow interval =
    let ic =
      try open_in_bin file
      with Sys_error msg ->
        Format.eprintf "rtlsat: %s@." msg;
        exit 2
    in
    let v = Heartbeat.view () in
    let pending = Buffer.create 1024 in
    let pos = ref 0 in
    let feed_line line =
      if String.trim line <> "" then
        match Json.of_string line with
        | j -> Heartbeat.view_update v j
        | exception Json.Parse_error _ -> ()
    in
    (* byte-offset tailing: only complete lines are parsed, so a
       half-written event at the live end never corrupts the view *)
    let pump () =
      let len = in_channel_length ic in
      if len > !pos then begin
        seek_in ic !pos;
        let chunk = really_input_string ic (len - !pos) in
        pos := len;
        Buffer.add_string pending chunk;
        let s = Buffer.contents pending in
        Buffer.clear pending;
        let n = String.length s in
        let start = ref 0 in
        for i = 0 to n - 1 do
          if s.[i] = '\n' then begin
            feed_line (String.sub s !start (i - !start));
            start := i + 1
          end
        done;
        if !start < n then
          Buffer.add_string pending (String.sub s !start (n - !start))
      end
    in
    pump ();
    if not follow then render Format.std_formatter v
    else begin
      let running = ref true in
      while !running do
        print_string "\027[2J\027[H";
        render Format.std_formatter v;
        Format.print_flush ();
        if v.Heartbeat.v_result <> None then running := false
        else begin
          Unix.sleepf (Float.max interval 0.05);
          pump ()
        end
      done
    end;
    close_in ic
  in
  Cmd.v
    (Cmd.info "top" ~exits:std_exits
       ~doc:"Monitor a solve or sweep through its heartbeat trace: latest \
             rates, stall/split activity, per-bound sweep progress; with \
             --follow, a live-updating display over a growing trace")
    Term.(const run $ file $ follow $ interval)

(* ---- metrics: OpenMetrics exposition ---- *)

let metrics_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"STATS.json"
           ~doc:"A $(b,rtlsat solve --stats-json) report (rtlsat.solve/1) or \
                 a bare Obs snapshot object")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the exposition to FILE instead of stdout")
  in
  let run file out =
    let j = read_json_file file in
    let recognizable =
      match Json.member "schema" j with
      | Some s -> Json.get_string s = Some "rtlsat.solve/1"
      | None -> Json.member "wall_s" j <> None
    in
    if not recognizable then begin
      Format.eprintf
        "rtlsat: %s: neither a rtlsat.solve/1 report nor an Obs snapshot@."
        file;
      exit 2
    end;
    let text = Openmetrics.of_json j in
    match out with
    | None -> print_string text
    | Some path ->
      (try
         let oc = open_out path in
         output_string oc text;
         close_out oc;
         Format.printf "metrics written to %s@." path
       with Sys_error msg ->
         Format.eprintf "rtlsat: %s@." msg;
         exit 2)
  in
  Cmd.v
    (Cmd.info "metrics" ~exits:std_exits
       ~doc:"Convert a stats/metrics JSON report into the OpenMetrics text \
             exposition format (Prometheus-compatible, trailing # EOF)")
    Term.(const run $ file $ out)

(* ---- runs: list and filter the cross-run ledger ---- *)

let runs_cmd =
  let ledger_file =
    Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE"
           ~doc:"Read this ledger instead of the default \
                 (\\$RTLSAT_LEDGER, or .rtlsat/ledger.jsonl)")
  in
  let instance =
    Arg.(value & opt (some string) None & info [ "instance" ] ~docv:"NAME"
           ~doc:"Only runs of this instance")
  in
  let engine =
    Arg.(value & opt (some string) None & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Only runs of this engine")
  in
  let last =
    Arg.(value & opt (some int) None & info [ "last" ] ~docv:"N"
           ~doc:"Only the N most recent matching runs")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the listing as JSON (schema rtlsat.runs/1) with the \
                 full ledger records and the slow-run flag")
  in
  let run ledger_file instance engine last json =
    let path =
      match ledger_file with Some p -> p | None -> Ledger.default_path ()
    in
    let all = Ledger.load ~path in
    let rs = Ledger.filter ?instance ?engine ?last all in
    if json then begin
      (* the slow flag compares each run against the whole ledger's
         median for its (instance, engine, options) key, not just the
         filtered view *)
      let runs_json =
        List.map
          (fun (r : Ledger.record) ->
             match r.Ledger.json with
             | Json.Obj fields ->
               Json.Obj (fields @ [ ("slow", Json.Bool (Ledger.slow all r)) ])
             | j -> j)
          rs
      in
      Json.to_channel stdout
        (Json.Obj
           [
             ("schema", Json.Str Ledger.runs_schema);
             ("ledger", Json.Str path);
             ("runs", Json.Arr runs_json);
           ]);
      print_newline ()
    end
    else if rs = [] then Format.printf "no matching runs in %s@." path
    else begin
      Format.printf "%-20s %-6s %-24s %-14s %-8s %9s@." "ts" "cmd" "instance"
        "engine" "verdict" "wall";
      List.iter
        (fun (r : Ledger.record) ->
           Format.printf "%-20s %-6s %-24s %-14s %-8s %8.2fs%s@." r.Ledger.ts
             r.Ledger.subcommand r.Ledger.instance r.Ledger.engine
             r.Ledger.verdict r.Ledger.wall_s
             (if Ledger.slow all r then
                Printf.sprintf "  SLOW (median %.2fs)"
                  (Ledger.group_median all r)
              else ""))
        rs;
      Format.printf "%d of %d run%s in %s@." (List.length rs) (List.length all)
        (if List.length all = 1 then "" else "s")
        path
    end
  in
  Cmd.v
    (Cmd.info "runs" ~exits:std_exits
       ~doc:"List and filter the cross-run ledger appended by \
             solve/sweep/sat/fuzz/bench: one line per run with verdict, wall \
             time and a flag for runs slower than the ledger median for the \
             same (instance, engine, options)")
    Term.(const run $ ledger_file $ instance $ engine $ last $ json)

(* ---- trace-diff: first divergence between two traces ---- *)

let trace_diff_cmd =
  let old_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD"
           ~doc:"The reference trace (e.g. before a change)")
  in
  let new_file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW"
           ~doc:"The trace to compare against it")
  in
  let run old_file new_file =
    match Trace_diff.diff ~old_file ~new_file with
    | d ->
      Trace_diff.print Format.std_formatter d;
      if Trace_diff.exit_code d <> 0 then exit 1
    | exception Sys_error msg ->
      Format.eprintf "rtlsat: %s@." msg;
      exit 2
  in
  Cmd.v
    (Cmd.info "trace-diff" ~exits:std_exits
       ~doc:"Align two --trace files of the same instance, name the first \
             divergent decision/split/conflict and report per-phase time and \
             counter deltas; exits 1 when the verdicts diverge")
    Term.(const run $ old_file $ new_file)

(* ---- bench-diff: perf-trajectory comparison ---- *)

let bench_diff_cmd =
  let old_file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD.json")
  in
  let new_file =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW.json")
  in
  let threshold =
    Arg.(value & opt float 0.20 & info [ "threshold" ] ~docv:"FRACTION"
           ~doc:"Relative slowdown that counts as a regression \
                 (0.20 = 20 percent)")
  in
  let min_time =
    Arg.(value & opt float 0.05 & info [ "min-time" ] ~docv:"SECONDS"
           ~doc:"Absolute slowdown floor: jitter below this never flags")
  in
  let run old_file new_file threshold min_time =
    let old_json = read_json_file old_file in
    let new_json = read_json_file new_file in
    match Report.bench_diff ~threshold ~min_time old_json new_json with
    | d ->
      Report.print_bench_diff Format.std_formatter d;
      if d.Report.bd_regressions > 0 then exit 1
    | exception Invalid_argument msg ->
      Format.eprintf "rtlsat: %s@." msg;
      exit 2
  in
  Cmd.v
    (Cmd.info "bench-diff" ~exits:std_exits
       ~doc:"Compare two BENCH_*.json artifacts per instance; exit 1 when \
             any engine regressed (verdict degraded, or slowed past the \
             threshold)")
    Term.(const run $ old_file $ new_file $ threshold $ min_time)

(* ---- bench-history: perf trajectory across artifacts ---- *)

let bench_history_cmd =
  let dir =
    Arg.(value & pos 0 string "bench/baselines" & info [] ~docv:"DIR"
           ~doc:"Directory holding BENCH_*.json artifacts")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the trajectory as JSON (schema rtlsat.bench_history/1) \
                 instead of the text table")
  in
  let run dir json =
    let files =
      match Sys.readdir dir with
      | entries ->
        Array.to_list entries
        |> List.filter (fun f ->
            String.length f > 6
            && String.sub f 0 6 = "BENCH_"
            && Filename.check_suffix f ".json")
      | exception Sys_error msg ->
        Format.eprintf "rtlsat: %s@." msg;
        exit 2
    in
    if files = [] then begin
      Format.eprintf "rtlsat: no BENCH_*.json artifacts in %s@." dir;
      exit 2
    end;
    let artifacts =
      List.map
        (fun f ->
           ( Filename.remove_extension f,
             read_json_file (Filename.concat dir f) ))
        files
    in
    (* chronological: generated_at first, filename as tie-break *)
    let key (label, j) =
      ( (match Option.bind (Json.member "generated_at" j) Json.get_string with
         | Some s -> s
         | None -> ""),
        label )
    in
    let artifacts =
      List.sort (fun a b -> compare (key a) (key b)) artifacts
    in
    match Report.bench_history artifacts with
    | points ->
      if json then begin
        Json.to_channel stdout (Report.bench_history_json points);
        print_newline ()
      end
      else Report.print_bench_history Format.std_formatter points
    | exception Invalid_argument msg ->
      Format.eprintf "rtlsat: %s@." msg;
      exit 2
  in
  Cmd.v
    (Cmd.info "bench-history" ~exits:std_exits
       ~doc:"Aggregate a directory of BENCH_*.json artifacts into a \
             per-section performance trajectory: runs, solved/timeout/abort \
             counts and total time per artifact, oldest first")
    Term.(const run $ dir $ json)

(* ---- tables ---- *)

let scale_term =
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper's full bound matrix") in
  Term.(const (fun f : Tables.scale -> if f then `Full else `Scaled) $ full)

let timeout_term =
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS")

let json_term =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Emit the table as JSON on stdout (with per-run metrics) \
               instead of the formatted text table")

let table1_cmd =
  let run scale timeout json =
    let rows = Tables.run_table1 ?timeout ~metrics:json scale in
    if json then (
      Json.to_channel stdout
        (Report.table1_json ~scale:(Tables.scale_name scale) rows);
      print_newline ())
    else Tables.print_table1 Format.std_formatter rows
  in
  Cmd.v (Cmd.info "table1" ~doc:"Regenerate Table 1 (predicate learning)")
    Term.(const run $ scale_term $ timeout_term $ json_term)

let table2_cmd =
  let run scale timeout json =
    let rows = Tables.run_table2 ?timeout ~metrics:json scale in
    if json then (
      Json.to_channel stdout
        (Report.table2_json ~scale:(Tables.scale_name scale) rows);
      print_newline ())
    else Tables.print_table2 Format.std_formatter rows
  in
  Cmd.v (Cmd.info "table2" ~doc:"Regenerate Table 2 (structural decisions)")
    Term.(const run $ scale_term $ timeout_term $ json_term)

let () =
  let doc = "RTL satisfiability with structural search and predicate learning" in
  let info = Cmd.info "rtlsat" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; show_cmd; solve_cmd; sweep_cmd; serve_cmd; check_cmd;
            prove_cmd; export_cmd; sat_cmd;
            fuzz_cmd;
            profile_cmd;
            top_cmd;
            metrics_cmd;
            runs_cmd;
            trace_diff_cmd;
            bench_diff_cmd;
            bench_history_cmd;
            table1_cmd;
            table2_cmd ]))
