(* Tests for the textual netlist format: golden parses, error
   reporting, and print/parse round-trips over the whole benchmark
   suite and random circuits. *)

module Ir = Rtlsat_rtl.Ir
module N = Rtlsat_rtl.Netlist
module Sim = Rtlsat_rtl.Sim
module Text = Rtlsat_rtl.Text
module Registry = Rtlsat_itc99.Registry

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let sample =
  {|# a tiny accumulating adder
circuit adder
input a 4
input b 4
reg acc 4 0
node s = add a b
node t = add s acc
node p = eq t acc
connect acc t
output sum t
output same p
|}

let test_parse_sample () =
  let c = Text.parse sample in
  check_str "name" "adder" c.Ir.cname;
  check_int "inputs" 2 (List.length (Ir.inputs c));
  check_int "regs" 1 (List.length (Ir.regs c));
  let t = N.find_output c "sum" in
  check_int "width" 4 t.Ir.width;
  (* simulate: acc starts 0; a=3 b=2 -> s=5 t=5; next acc=5 *)
  let a = N.find_input c "a" and b = N.find_input c "b" in
  let traces = Sim.run c ~inputs:[ [ (a, 3); (b, 2) ]; [ (a, 0); (b, 0) ] ] in
  check_int "cycle0 sum" 5 (Sim.value (List.nth traces 0) t);
  check_int "cycle1 sum" 5 (Sim.value (List.nth traces 1) t)

let test_roundtrip_sample () =
  let c = Text.parse sample in
  let printed = Text.to_string c in
  let reparsed = Text.parse printed in
  check_str "print . parse . print is stable" printed (Text.to_string reparsed)

let test_roundtrip_benchmarks () =
  List.iter
    (fun name ->
       let c, _ = Registry.build name in
       let printed = Text.to_string c in
       let reparsed = Text.parse printed in
       check_str (name ^ " roundtrip") printed (Text.to_string reparsed);
       (* and behaviours agree on a random trace *)
       let rng = Random.State.make [| 7 |] in
       let inputs circuit =
         List.init 20 (fun _ ->
             List.map
               (fun n -> (Ir.node_name n, Random.State.int rng (Ir.max_value n + 1)))
               (Ir.inputs circuit))
       in
       let drive circuit named =
         List.map
           (fun by_name ->
              List.map (fun (nm, v) -> (N.find_input circuit nm, v)) by_name)
           named
       in
       let named = inputs c in
       let t1 = Sim.run c ~inputs:(drive c named) in
       let t2 = Sim.run reparsed ~inputs:(drive reparsed named) in
       List.iteri
         (fun i (vals1, vals2) ->
            List.iter
              (fun (port, n1) ->
                 let n2 = N.find_output reparsed port in
                 check_int
                   (Printf.sprintf "%s %s cycle %d" name port i)
                   (Sim.value vals1 n1) (Sim.value vals2 n2))
              c.Ir.outputs)
         (List.combine t1 t2))
    Registry.circuits

let expect_failure msg text =
  match Text.parse text with
  | exception Failure m ->
    check_bool (msg ^ ": mentions line") true
      (String.length m >= 5 && String.sub m 0 5 = "line ")
  | _ -> Alcotest.failf "%s: expected parse failure" msg

let test_errors () =
  expect_failure "no circuit" "input a 4\n";
  expect_failure "unknown node" "circuit c\nnode x = not y\n";
  expect_failure "duplicate" "circuit c\ninput a 1\ninput a 1\n";
  expect_failure "bad op" "circuit c\ninput a 1\nnode x = frob a\n";
  expect_failure "bad int" "circuit c\ninput a four\n";
  expect_failure "width mismatch" "circuit c\ninput a 2\ninput b 3\nnode x = add a b\n";
  expect_failure "garbage" "circuit c\nwibble\n";
  expect_failure "empty" "";
  expect_failure "arity" "circuit c\ninput a 1\nnode x = xor a\n"

let test_comments_and_blanks () =
  let c = Text.parse "  \n# hello\ncircuit c # trailing\ninput a 3 # also\n" in
  check_int "one input" 1 (List.length (Ir.inputs c))

(* property: random combinational circuits round-trip and simulate
   identically *)
let gen_circuit seed =
  let rng = Random.State.make [| seed |] in
  let c = N.create "rand" in
  let a = N.input c ~name:"a" 4 and b = N.input c ~name:"b" 4 in
  let words = ref [ a; b ] in
  let bools = ref [] in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  for _ = 1 to 15 do
    match Random.State.int rng 10 with
    | 0 -> words := N.add c (pick !words) (pick !words) :: !words
    | 1 -> words := N.sub c (pick !words) (pick !words) :: !words
    | 2 ->
      bools :=
        N.cmp c (pick [ Ir.Eq; Ir.Lt; Ir.Ge; Ir.Ne ]) (pick !words) (pick !words)
        :: !bools
    | 3 ->
      if !bools <> [] then
        words := N.mux c ~sel:(pick !bools) ~t:(pick !words) ~e:(pick !words) () :: !words
    | 4 -> if !bools <> [] then bools := N.not_ c (pick !bools) :: !bools
    | 5 -> if List.length !bools >= 2 then bools := N.and_ c [ pick !bools; pick !bools ] :: !bools
    | 6 -> if List.length !bools >= 2 then bools := N.xor_ c (pick !bools) (pick !bools) :: !bools
    | 7 -> words := N.bitxor c (pick !words) (pick !words) :: !words
    | 8 ->
      let hi = N.extract c (pick !words) ~msb:1 ~lsb:0 in
      let lo = N.extract c (pick !words) ~msb:2 ~lsb:1 in
      words := N.concat c ~hi ~lo :: !words
    | _ ->
      (* multiply then truncate back to the uniform 4-bit width *)
      let p = N.mul_const c 3 (pick !words) in
      words := N.extract c p ~msb:3 ~lsb:0 :: !words
  done;
  N.output c "o" (pick !words);
  (c, a, b)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"random circuits roundtrip" ~count:100
    QCheck.(triple (int_bound 100_000) (int_bound 15) (int_bound 15))
    (fun (seed, av, bv) ->
       let c, a, b = gen_circuit seed in
       let printed = Text.to_string c in
       let reparsed = Text.parse printed in
       let stable = printed = Text.to_string reparsed in
       let o1 = N.find_output c "o" in
       let o2 = N.find_output reparsed "o" in
       let v1 =
         Sim.value (Sim.eval c (Sim.initial_state c) ~inputs:[ (a, av); (b, bv) ]) o1
       in
       let a2 = N.find_input reparsed "a" and b2 = N.find_input reparsed "b" in
       let v2 =
         Sim.value
           (Sim.eval reparsed (Sim.initial_state reparsed)
              ~inputs:[ (a2, av); (b2, bv) ])
           o2
       in
       stable && v1 = v2)

let qsuite = Qutil.qsuite

let () =
  Alcotest.run "text"
    [
      ( "parse",
        [
          Alcotest.test_case "sample netlist" `Quick test_parse_sample;
          Alcotest.test_case "errors carry line numbers" `Quick test_errors;
          Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "sample" `Quick test_roundtrip_sample;
          Alcotest.test_case "all benchmarks" `Quick test_roundtrip_benchmarks;
        ] );
      qsuite "props" [ prop_roundtrip_random ];
    ]
