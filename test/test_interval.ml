(* Unit and property tests for Interval. *)

module I = Rtlsat_interval.Interval

let iv lo hi = I.make lo hi

let check_iv msg expected actual =
  Alcotest.(check string) msg (I.to_string expected) (I.to_string actual)

let check_iv_opt msg expected actual =
  let show = function None -> "empty" | Some i -> I.to_string i in
  Alcotest.(check string) msg (show expected) (show actual)

let test_make () =
  Alcotest.check_raises "lo>hi" (Invalid_argument "Interval.make: lo > hi")
    (fun () -> ignore (I.make 3 2));
  Alcotest.(check int) "size" 4 (I.size (iv 2 5));
  Alcotest.(check bool) "point" true (I.is_point (I.point 7))

let test_of_width () =
  check_iv "w3" (iv 0 7) (I.of_width 3);
  check_iv "w1" (iv 0 1) (I.of_width 1);
  Alcotest.check_raises "w0" (Invalid_argument "Interval.of_width") (fun () ->
      ignore (I.of_width 0))

let test_mem_subset () =
  Alcotest.(check bool) "mem" true (I.mem 3 (iv 1 5));
  Alcotest.(check bool) "not mem" false (I.mem 6 (iv 1 5));
  Alcotest.(check bool) "subset" true (I.subset (iv 2 3) (iv 1 5));
  Alcotest.(check bool) "not subset" false (I.subset (iv 0 3) (iv 1 5))

let test_inter_hull () =
  check_iv_opt "overlap" (Some (iv 3 5)) (I.inter (iv 1 5) (iv 3 8));
  check_iv_opt "disjoint" None (I.inter (iv 1 2) (iv 4 5));
  Alcotest.(check bool) "disjoint" true (I.disjoint (iv 1 2) (iv 4 5));
  check_iv "hull" (iv 1 8) (I.hull (iv 1 2) (iv 4 8))

let test_arith () =
  check_iv "add" (iv 5 9) (I.add (iv 1 4) (iv 4 5));
  check_iv "sub" (iv (-4) 1) (I.sub (iv 1 4) (iv 3 5));
  check_iv "neg" (iv (-4) (-1)) (I.neg (iv 1 4));
  check_iv "mulc pos" (iv 3 12) (I.mul_const 3 (iv 1 4));
  check_iv "mulc neg" (iv (-12) (-3)) (I.mul_const (-3) (iv 1 4));
  check_iv "mul" (iv (-8) 12) (I.mul (iv (-2) 3) (iv 1 4))

let test_shift () =
  check_iv "shl" (iv 4 16) (I.shift_left (iv 1 4) 2);
  check_iv "shr" (iv 1 3) (I.shift_right (iv 5 15) 2);
  check_iv "shr neg" (iv (-2) 1) (I.shift_right (iv (-7) 5) 2)

let test_remove () =
  let show l = String.concat ";" (List.map I.to_string l) in
  Alcotest.(check string) "middle" "<1,2>;<6,9>"
    (show (I.remove (iv 1 9) (iv 3 5)));
  Alcotest.(check string) "prefix" "<6,9>" (show (I.remove (iv 1 9) (iv 0 5)));
  Alcotest.(check string) "all" "" (show (I.remove (iv 1 9) (iv 0 10)))

let test_clamp () =
  check_iv_opt "lo" (Some (iv 3 5)) (I.clamp_lo 3 (iv 1 5));
  check_iv_opt "lo empty" None (I.clamp_lo 6 (iv 1 5));
  check_iv_opt "hi" (Some (iv 1 3)) (I.clamp_hi 3 (iv 1 5))

let test_seq_and_value () =
  Alcotest.(check (list int)) "to_seq" [ 2; 3; 4 ] (List.of_seq (I.to_seq (iv 2 4)));
  Alcotest.(check (option int)) "value point" (Some 7) (I.value (I.point 7));
  Alcotest.(check (option int)) "value range" None (I.value (iv 1 2));
  Alcotest.(check string) "pp point" "<7>" (I.to_string (I.point 7));
  Alcotest.(check string) "pp range" "<1,2>" (I.to_string (iv 1 2))

let test_equation2_narrowing () =
  (* the paper's Equation (2)/(3) example:
     x - z < 0, x ∈ <0,15>, z ∈ <0,15>  ⟹  x ∈ <0,14>, z ∈ <1,15> *)
  let x = iv 0 15 and z = iv 0 15 in
  let x' = I.clamp_hi (I.hi z - 1) x and z' = I.clamp_lo (I.lo x + 1) z in
  check_iv_opt "x narrowed" (Some (iv 0 14)) x';
  check_iv_opt "z narrowed" (Some (iv 1 15)) z'

(* ---- properties: extended ops are the exact image hulls ---- *)

let arb_iv =
  QCheck.map
    (fun (a, b) -> if a <= b then iv a b else iv b a)
    QCheck.(pair (int_range (-30) 30) (int_range (-30) 30))

let exact_image f a b =
  let vals =
    Seq.concat_map (fun x -> Seq.map (fun y -> f x y) (I.to_seq b)) (I.to_seq a)
  in
  let lo = Seq.fold_left min max_int vals and hi = Seq.fold_left max min_int vals in
  iv lo hi

let prop_exact op f name =
  QCheck.Test.make ~name ~count:200 (QCheck.pair arb_iv arb_iv)
    (fun (a, b) -> I.equal (op a b) (exact_image f a b))

let prop_add = prop_exact I.add ( + ) "add is exact hull"
let prop_sub = prop_exact I.sub ( - ) "sub is exact hull"
let prop_mul = prop_exact I.mul ( * ) "mul is exact hull (Equation 1)"

let prop_inter_sound =
  QCheck.Test.make ~name:"inter = set intersection" ~count:200
    (QCheck.triple arb_iv arb_iv (QCheck.int_range (-40) 40))
    (fun (a, b, v) ->
       let in_inter = match I.inter a b with None -> false | Some i -> I.mem v i in
       in_inter = (I.mem v a && I.mem v b))

let prop_remove_partition =
  QCheck.Test.make ~name:"remove partitions membership" ~count:200
    (QCheck.triple arb_iv arb_iv (QCheck.int_range (-40) 40))
    (fun (a, b, v) ->
       let in_removed = List.exists (I.mem v) (I.remove a b) in
       in_removed = (I.mem v a && not (I.mem v b)))

let prop_shr_exact =
  QCheck.Test.make ~name:"shift_right is exact hull" ~count:200
    (QCheck.pair arb_iv (QCheck.int_range 0 4))
    (fun (a, k) ->
       let f v = if v >= 0 then v lsr k else -(((-v) + (1 lsl k) - 1) lsr k) in
       let img = List.of_seq (Seq.map f (I.to_seq a)) in
       I.equal (I.shift_right a k)
         (iv (List.fold_left min max_int img) (List.fold_left max min_int img)))

let qsuite = Qutil.qsuite

let () =
  Alcotest.run "interval"
    [
      ( "unit",
        [
          Alcotest.test_case "make/size/point" `Quick test_make;
          Alcotest.test_case "of_width" `Quick test_of_width;
          Alcotest.test_case "mem/subset" `Quick test_mem_subset;
          Alcotest.test_case "inter/hull" `Quick test_inter_hull;
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "shift" `Quick test_shift;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "paper equation 2/3" `Quick test_equation2_narrowing;
          Alcotest.test_case "to_seq/value/pp" `Quick test_seq_and_value;
        ] );
      qsuite "props"
        [
          prop_add; prop_sub; prop_mul; prop_inter_sound; prop_remove_partition;
          prop_shr_exact;
        ];
    ]
