(* Unit and property tests for Bigint and Rat. *)

module B = Rtlsat_num.Bigint
module R = Rtlsat_num.Rat

let check_int msg expected actual = Alcotest.(check int) msg expected actual
let check_str msg expected actual = Alcotest.(check string) msg expected actual

(* ---- Bigint unit tests ---- *)

let test_of_to_int () =
  List.iter
    (fun v -> check_int (string_of_int v) v (B.to_int (B.of_int v)))
    [ 0; 1; -1; 42; -42; max_int; min_int + 1; 1 lsl 40; -(1 lsl 40) ]

let test_min_int () =
  check_str "min_int" (string_of_int min_int) (B.to_string (B.of_int min_int))

let test_to_string () =
  check_str "zero" "0" (B.to_string B.zero);
  check_str "small" "12345" (B.to_string (B.of_int 12345));
  check_str "negative" "-987654321" (B.to_string (B.of_int (-987654321)));
  let big = B.pow (B.of_int 10) 30 in
  check_str "10^30" "1000000000000000000000000000000" (B.to_string big)

let test_of_string () =
  check_str "roundtrip" "123456789012345678901234567890"
    (B.to_string (B.of_string "123456789012345678901234567890"));
  check_str "negative" "-42" (B.to_string (B.of_string "-42"));
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty")
    (fun () -> ignore (B.of_string ""))

let test_add_carry () =
  (* force multi-limb carries *)
  let x = B.sub (B.pow (B.of_int 2) 120) B.one in
  check_str "2^120" (B.to_string (B.pow (B.of_int 2) 120)) (B.to_string (B.add x B.one))

let test_mul_big () =
  let x = B.of_string "123456789123456789" in
  let y = B.of_string "987654321987654321" in
  check_str "product" "121932631356500531347203169112635269"
    (B.to_string (B.mul x y))

let test_divmod () =
  let cases = [ (17, 5); (-17, 5); (17, -5); (-17, -5); (0, 3); (100, 1) ] in
  List.iter
    (fun (a, b) ->
       let q, r = B.tdiv_rem (B.of_int a) (B.of_int b) in
       check_int (Printf.sprintf "q %d/%d" a b) (a / b) (B.to_int q);
       check_int (Printf.sprintf "r %d/%d" a b) (a mod b) (B.to_int r))
    cases

let test_fdiv_cdiv () =
  check_int "fdiv -7 2" (-4) (B.to_int (B.fdiv (B.of_int (-7)) (B.of_int 2)));
  check_int "cdiv -7 2" (-3) (B.to_int (B.cdiv (B.of_int (-7)) (B.of_int 2)));
  check_int "fdiv 7 2" 3 (B.to_int (B.fdiv (B.of_int 7) (B.of_int 2)));
  check_int "cdiv 7 2" 4 (B.to_int (B.cdiv (B.of_int 7) (B.of_int 2)))

let test_erem () =
  check_int "erem -7 3" 2 (B.to_int (B.erem (B.of_int (-7)) (B.of_int 3)));
  check_int "erem 7 -3" 1 (B.to_int (B.erem (B.of_int 7) (B.of_int (-3))))

let test_gcd_lcm () =
  check_int "gcd" 6 (B.to_int (B.gcd (B.of_int 48) (B.of_int (-18))));
  check_int "gcd00" 0 (B.to_int (B.gcd B.zero B.zero));
  check_int "lcm" 36 (B.to_int (B.lcm (B.of_int 12) (B.of_int 18)))

let test_pow () =
  check_int "2^10" 1024 (B.to_int (B.pow (B.of_int 2) 10));
  check_int "x^0" 1 (B.to_int (B.pow (B.of_int 99) 0));
  Alcotest.check_raises "neg" (Invalid_argument "Bigint.pow: negative exponent")
    (fun () -> ignore (B.pow B.one (-1)))

let test_shift () =
  check_int "shl" 40 (B.to_int (B.shift_left (B.of_int 5) 3));
  check_int "shr" 5 (B.to_int (B.shift_right (B.of_int 40) 3));
  check_int "shr neg" (-2) (B.to_int (B.shift_right (B.of_int (-7)) 2))

let test_compare () =
  Alcotest.(check bool) "lt" true B.(of_int 3 < of_int 5);
  Alcotest.(check bool) "neg lt" true B.(of_int (-5) < of_int (-3));
  Alcotest.(check bool) "cross" true B.(of_int (-1) < of_int 0);
  check_int "sign" (-1) (B.sign (B.of_int (-7)))

let test_to_int_overflow () =
  let big = B.pow (B.of_int 2) 100 in
  Alcotest.(check bool) "overflow" true (B.to_int_opt big = None)

(* ---- Bigint properties ---- *)

let arb_small = QCheck.int_range (-1_000_000) 1_000_000

let prop_ring_ops =
  QCheck.Test.make ~name:"bigint matches native int ops" ~count:500
    (QCheck.triple arb_small arb_small arb_small)
    (fun (a, b, c) ->
       let ba = B.of_int a and bb = B.of_int b and bc = B.of_int c in
       B.to_int B.((ba + bb) * bc) = (a + b) * c
       && B.to_int B.(ba - bb) = a - b
       && B.compare ba bb = compare a b)

let prop_divmod =
  QCheck.Test.make ~name:"tdiv_rem reconstructs" ~count:500
    (QCheck.pair QCheck.int QCheck.(int_range 1 1_000_000))
    (fun (a, b) ->
       let q, r = B.tdiv_rem (B.of_int a) (B.of_int b) in
       B.equal (B.add (B.mul q (B.of_int b)) r) (B.of_int a))

let prop_big_divmod =
  QCheck.Test.make ~name:"big tdiv_rem reconstructs" ~count:100
    (QCheck.pair (QCheck.list_of_size (QCheck.Gen.return 5) arb_small)
       (QCheck.list_of_size (QCheck.Gen.return 3) arb_small))
    (fun (xs, ys) ->
       (* build big operands by positional combination *)
       let horner l =
         List.fold_left (fun acc d -> B.add (B.mul acc (B.of_int 1_000_000)) (B.of_int d))
           B.zero l
       in
       let a = horner xs and b = horner ys in
       QCheck.assume (not (B.is_zero b));
       let q, r = B.tdiv_rem a b in
       B.equal (B.add (B.mul q b) r) a && B.compare (B.abs r) (B.abs b) < 0)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"of_string/to_string roundtrip" ~count:300 QCheck.int
    (fun a -> B.to_int (B.of_string (string_of_int a)) = a)

(* ---- Rat tests ---- *)

let test_rat_normalize () =
  let r = R.of_ints 6 (-4) in
  check_str "norm" "-3/2" (R.to_string r);
  check_str "int" "5" (R.to_string (R.of_ints 10 2))

let test_rat_arith () =
  let half = R.of_ints 1 2 and third = R.of_ints 1 3 in
  check_str "add" "5/6" R.(to_string (half + third));
  check_str "sub" "1/6" R.(to_string (half - third));
  check_str "mul" "1/6" R.(to_string (half * third));
  check_str "div" "3/2" R.(to_string (half / third))

let test_rat_floor_ceil () =
  check_str "floor" "-2" (Rtlsat_num.Bigint.to_string (R.floor (R.of_ints (-3) 2)));
  check_str "ceil" "-1" (Rtlsat_num.Bigint.to_string (R.ceil (R.of_ints (-3) 2)));
  check_str "floor pos" "1" (Rtlsat_num.Bigint.to_string (R.floor (R.of_ints 3 2)))

let test_rat_compare () =
  Alcotest.(check bool) "lt" true R.(of_ints 1 3 < of_ints 1 2);
  Alcotest.(check bool) "eq" true R.(of_ints 2 4 = of_ints 1 2)

let test_rat_div_by_zero () =
  Alcotest.check_raises "div0" Division_by_zero (fun () ->
      ignore (R.div R.one R.zero))

let prop_rat_field =
  QCheck.Test.make ~name:"rat arithmetic is exact" ~count:300
    (QCheck.quad arb_small QCheck.(int_range 1 1000) arb_small QCheck.(int_range 1 1000))
    (fun (a, b, c, d) ->
       let x = R.of_ints a b and y = R.of_ints c d in
       (* (x + y) - y = x;  (x * y) / y = x  when y <> 0 *)
       R.equal R.((x + y) - y) x
       && (R.sign y = 0 || R.equal R.(x * y / y) x))

let qsuite = Qutil.qsuite

let () =
  Alcotest.run "num"
    [
      ( "bigint",
        [
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "min_int" `Quick test_min_int;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "carry chains" `Quick test_add_carry;
          Alcotest.test_case "big multiply" `Quick test_mul_big;
          Alcotest.test_case "divmod signs" `Quick test_divmod;
          Alcotest.test_case "fdiv/cdiv" `Quick test_fdiv_cdiv;
          Alcotest.test_case "erem" `Quick test_erem;
          Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "shift" `Quick test_shift;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
        ] );
      qsuite "bigint-props"
        [ prop_ring_ops; prop_divmod; prop_big_divmod; prop_string_roundtrip ];
      ( "rat",
        [
          Alcotest.test_case "normalize" `Quick test_rat_normalize;
          Alcotest.test_case "arith" `Quick test_rat_arith;
          Alcotest.test_case "floor/ceil" `Quick test_rat_floor_ceil;
          Alcotest.test_case "compare" `Quick test_rat_compare;
          Alcotest.test_case "div by zero" `Quick test_rat_div_by_zero;
        ] );
      qsuite "rat-props" [ prop_rat_field ];
    ]
