#!/bin/sh
# rtlsat serve smoke test (wired into `dune runtest` — see the rule in
# test/dune):
#   1. two identical solve requests over one connection: the first is
#      cold, the second must hit the warm session (warm=true,
#      unroll_cache=hit) and agree on the verdict
#   2. a malformed line produces an error response but keeps the loop
#      alive for the next request
#   3. shutdown ends the loop; every response carries the
#      rtlsat.serve/1 schema stamp
#   4. the serve ledger records one rtlsat.run/1 record per solve with
#      subcommand "serve" and the warm flag in options
# Pass the rtlsat binary as $1 (the dune rule does); standalone runs
# build it first.
set -eu

here=$(dirname "$0")

if [ $# -ge 1 ]; then
  rtlsat=$1
else
  root=$(cd "$here/.." && pwd)
  dune build --root "$root" bin/rtlsat.exe
  rtlsat="$root/_build/default/bin/rtlsat.exe"
fi

out=$(mktemp /tmp/rtlsat_serve.XXXXXX.out)
ledger=$(mktemp /tmp/rtlsat_serve.XXXXXX.ledger)
trap 'rm -f "$out" "$ledger"' EXIT

req='{"op":"solve","id":%d,"circuit":"b01","prop":"1","bound":10,"timeout_s":60}'

# 1.-3. one connection: solve, solve again, garbage, ping, shutdown
{
  printf "$req\n" 1
  printf "$req\n" 2
  printf 'this is not json\n'
  printf '{"op":"ping","id":4}\n'
  printf '{"op":"shutdown","id":5}\n'
} | "$rtlsat" serve --ledger "$ledger" > "$out" 2>/dev/null

[ "$(wc -l < "$out")" -eq 5 ]
[ "$(grep -c '"schema":"rtlsat.serve/1"' "$out")" -eq 5 ]

first=$(sed -n 1p "$out")
second=$(sed -n 2p "$out")

echo "$first" | grep -q '"ok":true'
echo "$first" | grep -q '"warm":false'
echo "$first" | grep -q '"unroll_cache":"miss"'

# the warm boundary: same session, cached unroll prefix, same verdict
echo "$second" | grep -q '"ok":true'
echo "$second" | grep -q '"warm":true'
echo "$second" | grep -q '"unroll_cache":"hit"'
echo "$second" | grep -q '"solves":2'
v1=$(echo "$first" | sed 's/.*"verdict":"\([^"]*\)".*/\1/')
v2=$(echo "$second" | sed 's/.*"verdict":"\([^"]*\)".*/\1/')
[ "$v1" = "$v2" ]

# the bad line answered with an error, not a dead connection
sed -n 3p "$out" | grep -q '"ok":false'
sed -n 4p "$out" | grep -q '"op":"ping"'
sed -n 5p "$out" | grep -q '"op":"shutdown"'

# 4. the ledger carries one serve record per solve request
[ "$(grep -c '"schema":"rtlsat.run/1"' "$ledger")" -eq 2 ]
[ "$(grep -c '"subcommand":"serve"' "$ledger")" -eq 2 ]
grep -q 'warm=false' "$ledger"
grep -q 'warm=true' "$ledger"
"$rtlsat" runs --ledger "$ledger" | grep -q "b01_1(10)"

echo "smoke_serve: all checks passed"
