(* Tests for the two baseline engines: bit-blasting and the lazy CDP,
   cross-validated against the hybrid solver and brute-force
   simulation. *)

module Ir = Rtlsat_rtl.Ir
module N = Rtlsat_rtl.Netlist
module Sim = Rtlsat_rtl.Sim
module E = Rtlsat_constr.Encode
module P = Rtlsat_constr.Problem
module I = Rtlsat_interval.Interval
module Solver = Rtlsat_core.Solver
module BB = Rtlsat_baselines.Bitblast
module Lazy_cdp = Rtlsat_baselines.Lazy_cdp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- bit-blasting ---- *)

let test_bb_ops_exhaustive () =
  (* every word operator agrees with the simulator, via SAT models:
     constrain inputs to concrete values and read the outputs *)
  let c = N.create "ops" in
  let a = N.input c ~name:"a" 3 in
  let b = N.input c ~name:"b" 3 in
  let nodes =
    [
      N.add c a b; N.add_ext c a b; N.sub c a b; N.mul_const c 5 a;
      N.concat c ~hi:a ~lo:b; N.extract c a ~msb:2 ~lsb:1;
      N.zext c a ~width:5; N.shl c a 2; N.shr c a 1;
      N.bitand c a b; N.bitor c a b; N.bitxor c a b;
    ]
  in
  let cmps = List.map (fun op -> N.cmp c op a b) [ Ir.Eq; Ir.Ne; Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge ] in
  let mux =
    N.mux c ~sel:(List.hd cmps) ~t:a ~e:b ()
  in
  let all = (mux :: nodes) @ cmps in
  for av = 0 to 7 do
    for bv = 0 to 7 do
      let bb = BB.encode c in
      BB.assume_interval bb a (I.point av);
      BB.assume_interval bb b (I.point bv);
      (match BB.solve bb with
       | BB.Sat ->
         let vals = Sim.eval c (Sim.initial_state c) ~inputs:[ (a, av); (b, bv) ] in
         List.iter
           (fun n ->
              check_int
                (Printf.sprintf "node %s a=%d b=%d" (Ir.node_name n) av bv)
                (Sim.value vals n) (BB.node_value bb n))
           all
       | _ -> Alcotest.fail "point assignment must be sat")
    done
  done

let test_bb_unsat () =
  let c = N.create "unsat" in
  let a = N.input c ~name:"a" 4 in
  let b = N.input c ~name:"b" 4 in
  let both = N.and_ c [ N.lt c a b; N.gt c a b ] in
  N.output c "both" both;
  let bb = BB.encode c in
  BB.assume_bool bb both true;
  check_bool "unsat" true (BB.solve bb = BB.Unsat)

let test_bb_interval_assumption () =
  let c = N.create "iv" in
  let a = N.input c ~name:"a" 4 in
  N.output c "a" a;
  let bb = BB.encode c in
  BB.assume_interval bb a (I.make 5 9);
  (match BB.solve bb with
   | BB.Sat ->
     let v = BB.node_value bb a in
     check_bool "in range" true (v >= 5 && v <= 9)
   | _ -> Alcotest.fail "sat expected");
  let bb2 = BB.encode c in
  BB.assume_interval bb2 a (I.make 5 9);
  BB.assume_interval bb2 a (I.make 10 12);
  check_bool "disjoint ranges unsat" true (BB.solve bb2 = BB.Unsat)

(* ---- lazy CDP ---- *)

let test_lazy_simple () =
  let c = N.create "lz" in
  let a = N.input c ~name:"a" 4 in
  let b = N.input c ~name:"b" 4 in
  let p = N.and_ c [ N.lt c a b; N.eq_const c a 7 ] in
  N.output c "p" p;
  let enc = E.encode c in
  E.assume_bool enc p true;
  let result, stats = Lazy_cdp.solve enc.E.problem in
  (match result with
   | Lazy_cdp.Sat m ->
     check_int "a=7" 7 m.(E.var enc a);
     check_bool "b>7" true (m.(E.var enc b) > 7)
   | _ -> Alcotest.fail "sat expected");
  check_bool "theory consulted" true (stats.Lazy_cdp.theory_calls >= 1)

let test_lazy_unsat_needs_blocking () =
  (* a < b ∧ b < c ∧ c < a: the skeleton is Boolean-satisfiable, only
     theory refutations (blocking clauses) can close it *)
  let c = N.create "cycle" in
  let x = N.input c ~name:"x" 3 in
  let y = N.input c ~name:"y" 3 in
  let z = N.input c ~name:"z" 3 in
  let p = N.and_ c [ N.lt c x y; N.lt c y z; N.lt c z x ] in
  N.output c "p" p;
  let enc = E.encode c in
  E.assume_bool enc p true;
  let result, stats = Lazy_cdp.solve enc.E.problem in
  check_bool "unsat" true (result = Lazy_cdp.Unsat);
  check_bool "used blocking clauses" true (stats.Lazy_cdp.blocking_clauses >= 1)

(* ---- randomized cross-engine agreement ---- *)

let gen_circuit seed =
  let rng = Random.State.make [| seed |] in
  let c = N.create "rand" in
  let a = N.input c ~name:"a" 4 and b = N.input c ~name:"b" 4 in
  let words = ref [ a; b ] in
  let bools = ref [] in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  for _ = 1 to 12 do
    match Random.State.int rng 8 with
    | 0 -> words := N.add c (pick !words) (pick !words) :: !words
    | 1 -> words := N.sub c (pick !words) (pick !words) :: !words
    | 2 ->
      bools :=
        N.cmp c (pick [ Ir.Eq; Ir.Lt; Ir.Ge; Ir.Ne ]) (pick !words) (pick !words)
        :: !bools
    | 3 ->
      if !bools <> [] then
        words := N.mux c ~sel:(pick !bools) ~t:(pick !words) ~e:(pick !words) () :: !words
    | 4 -> if !bools <> [] then bools := N.not_ c (pick !bools) :: !bools
    | 5 -> if List.length !bools >= 2 then bools := N.and_ c [ pick !bools; pick !bools ] :: !bools
    | 6 -> if List.length !bools >= 2 then bools := N.or_ c [ pick !bools; pick !bools ] :: !bools
    | _ -> words := N.bitxor c (pick !words) (pick !words) :: !words
  done;
  let goal = match !bools with [] -> N.eq_const c (pick !words) 3 | _ -> pick !bools in
  N.output c "goal" goal;
  (c, goal)

let hdpll_verdict c goal value =
  let enc = E.encode c in
  E.assume_bool enc goal value;
  match (Solver.solve enc).Solver.result with
  | Solver.Sat _ -> true
  | Solver.Unsat -> false
  | Solver.Timeout -> QCheck.assume_fail ()

let prop_bb_matches_hdpll =
  QCheck.Test.make ~name:"bitblast = hdpll" ~count:100
    (QCheck.pair (QCheck.int_bound 100_000) QCheck.bool)
    (fun (seed, value) ->
       let c, goal = gen_circuit seed in
       let expected = hdpll_verdict c goal value in
       let bb = BB.encode c in
       BB.assume_bool bb goal value;
       match BB.solve bb with
       | BB.Sat ->
         expected
         && (let inputs =
               List.map (fun n -> (n, BB.node_value bb n)) (Ir.inputs c)
             in
             let vals = Sim.eval c (Sim.initial_state c) ~inputs in
             Sim.value vals goal = (if value then 1 else 0))
       | BB.Unsat -> not expected
       | BB.Timeout -> QCheck.assume_fail ())

let prop_lazy_matches_hdpll =
  QCheck.Test.make ~name:"lazy-cdp = hdpll" ~count:60
    (QCheck.pair (QCheck.int_bound 100_000) QCheck.bool)
    (fun (seed, value) ->
       let c, goal = gen_circuit seed in
       let expected = hdpll_verdict c goal value in
       let enc = E.encode c in
       E.assume_bool enc goal value;
       match fst (Lazy_cdp.solve ~deadline:(Unix.gettimeofday () +. 30.0) enc.E.problem) with
       | Lazy_cdp.Sat m ->
         expected && Result.is_ok (P.check_model enc.E.problem (fun v -> m.(v)))
       | Lazy_cdp.Unsat -> not expected
       | Lazy_cdp.Timeout -> QCheck.assume_fail ())

let qsuite = Qutil.qsuite

let () =
  Alcotest.run "baselines"
    [
      ( "bitblast",
        [
          Alcotest.test_case "ops exhaustive" `Slow test_bb_ops_exhaustive;
          Alcotest.test_case "unsat" `Quick test_bb_unsat;
          Alcotest.test_case "interval assumptions" `Quick test_bb_interval_assumption;
        ] );
      ( "lazy-cdp",
        [
          Alcotest.test_case "simple theory" `Quick test_lazy_simple;
          Alcotest.test_case "blocking clauses" `Quick test_lazy_unsat_needs_blocking;
        ] );
      qsuite "props" [ prop_bb_matches_hdpll; prop_lazy_matches_hdpll ];
    ]
