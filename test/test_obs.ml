(* Tests for the observability layer: JSON emission/parsing, bounded
   histograms, span timers, counters, the JSON-lines trace sink, and —
   most importantly — that enabling observability does not change what
   the solver does. *)

module Json = Rtlsat_obs.Json
module Hist = Rtlsat_obs.Hist
module Trace = Rtlsat_obs.Trace
module Obs = Rtlsat_obs.Obs
module Registry = Rtlsat_itc99.Registry
module Bmc = Rtlsat_bmc.Bmc
module Unroll = Rtlsat_bmc.Unroll
module E = Rtlsat_constr.Encode
module Solver = Rtlsat_core.Solver
module Engines = Rtlsat_harness.Engines
module Report = Rtlsat_harness.Report
module Forensics = Rtlsat_obs.Forensics
module Recorder = Rtlsat_obs.Recorder
module Heartbeat = Rtlsat_obs.Heartbeat
module Openmetrics = Rtlsat_obs.Openmetrics
module Env = Rtlsat_obs.Env
module Ledger = Rtlsat_obs.Ledger
module Trace_diff = Rtlsat_obs.Trace_diff
module Fuzz_case = Rtlsat_fuzz.Case
module P = Rtlsat_constr.Problem
module T = Rtlsat_constr.Types
module I = Rtlsat_interval.Interval

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---- JSON ---- *)

let test_json_round_trip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("t", Json.Bool true);
        ("f", Json.Bool false);
        ("i", Json.Int (-42));
        ("x", Json.Float 1.5);
        ("s", Json.Str "a\"b\\c\n\t \xc3\xa9");
        ("a", Json.Arr [ Json.Int 1; Json.Str "two"; Json.Arr [] ]);
        ("o", Json.Obj [ ("nested", Json.Obj []) ]);
      ]
  in
  Alcotest.(check bool) "round trip" true (Json.of_string (Json.to_string v) = v)

let test_json_escapes () =
  check_string "control chars escaped" "\"\\u0001\\n\""
    (Json.to_string (Json.Str "\x01\n"));
  (match Json.of_string "\"\\u00e9\"" with
   | Json.Str s -> check_string "\\u00e9 is UTF-8 e-acute" "\xc3\xa9" s
   | _ -> Alcotest.fail "expected string");
  (* surrogate pair: U+1D11E (musical G clef) *)
  (match Json.of_string "\"\\ud834\\udd1e\"" with
   | Json.Str s -> check_string "surrogate pair" "\xf0\x9d\x84\x9e" s
   | _ -> Alcotest.fail "expected string")

let test_json_non_finite () =
  check_string "nan -> null" "null" (Json.to_string (Json.Float nan));
  check_string "inf -> null" "null" (Json.to_string (Json.Float infinity))

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  check_bool "trailing garbage" true (bad "1 2");
  check_bool "unterminated string" true (bad "\"abc");
  check_bool "bare word" true (bad "tru");
  check_bool "missing value" true (bad "{\"a\":}");
  check_bool "trailing comma" true (bad "[1,]")

let test_json_accessors () =
  let v = Json.of_string "{\"a\": [1, 2.5], \"b\": \"x\"}" in
  check_bool "member a" true (Json.member "a" v <> None);
  check_bool "member missing" true (Json.member "z" v = None);
  (match Json.member "a" v with
   | Some (Json.Arr [ one; two ]) ->
     check_bool "int" true (Json.get_int one = Some 1);
     check_bool "int promotes" true (Json.get_float one = Some 1.0);
     check_bool "float" true (Json.get_float two = Some 2.5);
     check_bool "float is not int" true (Json.get_int two = None)
   | _ -> Alcotest.fail "expected 2-array");
  check_bool "string" true
    (Option.bind (Json.member "b" v) Json.get_string = Some "x")

(* ---- histograms ---- *)

let test_hist_buckets () =
  let h = Hist.create [| 1; 2; 4 |] in
  List.iter (Hist.observe h) [ 0; 1; 2; 3; 4; 5; 100 ];
  let s = Hist.summary h in
  check_int "n" 7 s.Hist.n;
  check_int "total" 115 s.Hist.total;
  check_int "vmin" 0 s.Hist.vmin;
  check_int "vmax" 100 s.Hist.vmax;
  Alcotest.(check (list (pair string int)))
    "bucket counts"
    [ ("<=1", 2); ("<=2", 1); ("<=4", 2); (">4", 2) ]
    s.Hist.buckets

let test_hist_empty () =
  let s = Hist.summary (Hist.create [| 8 |]) in
  check_int "n" 0 s.Hist.n;
  check_int "vmin" 0 s.Hist.vmin;
  Alcotest.(check (float 0.0)) "mean" 0.0 s.Hist.mean

let test_hist_bad_limits () =
  check_bool "non-increasing limits rejected" true
    (match Hist.create [| 2; 2 |] with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* ---- spans, counters, snapshots ---- *)

let test_span_self_time () =
  let t = Obs.create () in
  let spin_until dt =
    let t0 = Unix.gettimeofday () in
    while Unix.gettimeofday () -. t0 < dt do () done
  in
  Obs.span t Obs.Bcp (fun () ->
      spin_until 0.01;
      Obs.span t Obs.Icp (fun () -> spin_until 0.01));
  let s = Obs.snapshot t in
  let self name =
    let _, v, _ = List.find (fun (n, _, _) -> n = name) s.Obs.phases in
    v
  in
  let calls name =
    let _, _, c = List.find (fun (n, _, _) -> n = name) s.Obs.phases in
    c
  in
  check_int "bcp entered once" 1 (calls "bcp");
  check_int "icp entered once" 1 (calls "icp");
  check_bool "icp got its own time" true (self "icp" >= 0.009);
  check_bool "bcp excludes nested icp" true (self "bcp" < 0.015);
  check_bool "phases sum within wall" true
    (List.fold_left (fun acc (_, v, _) -> acc +. v) 0.0 s.Obs.phases
     <= s.Obs.wall +. 1e-6)

let test_span_exception_safe () =
  let t = Obs.create () in
  (match
     Obs.span t Obs.Bcp (fun () ->
         Obs.span_enter t Obs.Icp;
         (* simulate the solver unwinding through a conflict without
            closing the inner span *)
         failwith "conflict")
   with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "expected the exception to propagate");
  check_bool "stack fully unwound" true (t.Obs.stack = []);
  (* the handle still works afterwards *)
  Obs.span t Obs.Fme (fun () -> ());
  let s = Obs.snapshot t in
  let calls name =
    let _, _, c = List.find (fun (n, _, _) -> n = name) s.Obs.phases in
    c
  in
  check_int "fme span after unwind" 1 (calls "fme")

let test_counters () =
  let t = Obs.create () in
  check_int "untouched counter" 0 (Obs.counter t "x");
  Obs.incr t "x";
  Obs.add t "x" 4;
  Obs.incr t "y";
  check_int "x" 5 (Obs.counter t "x");
  check_int "y" 1 (Obs.counter t "y");
  let s = Obs.snapshot t in
  Alcotest.(check (list (pair string int)))
    "sorted counters" [ ("x", 5); ("y", 1) ] s.Obs.counter_values

let test_disabled_is_inert () =
  let t = Obs.disabled in
  Obs.incr t "x";
  Obs.observe_learned_len t 3;
  Obs.span t Obs.Bcp (fun () -> ());
  Obs.event t "decide" [ ("var", Json.Int 1) ];
  let s = Obs.snapshot t in
  check_int "no counters" 0 (List.length s.Obs.counter_values);
  check_bool "no phase time" true
    (List.for_all (fun (_, v, c) -> v = 0.0 && c = 0) s.Obs.phases);
  check_int "no trace" 0 s.Obs.trace_events

let test_snapshot_json_schema () =
  let t = Obs.create () in
  Obs.span t Obs.Encode (fun () -> ());
  Obs.incr t "fme.calls";
  let j = Obs.snapshot_json (Obs.snapshot t) in
  (* must survive a round trip through text *)
  let j = Json.of_string (Json.to_string j) in
  check_bool "wall_s" true
    (Option.bind (Json.member "wall_s" j) Json.get_float <> None);
  let phases = Json.member "phases" j in
  check_bool "all nine phases present" true
    (List.for_all
       (fun ph ->
          Option.bind phases (Json.member (Obs.phase_name ph)) <> None)
       Obs.all_phases);
  check_bool "histograms" true (Json.member "histograms" j <> None);
  check_bool "counters carried" true
    (Option.bind
       (Option.bind (Json.member "counters" j) (Json.member "fme.calls"))
       Json.get_int
     = Some 1)

(* ---- trace round trip on a tiny instance ---- *)

let solve_instance ?obs ?(collect = false) () =
  (* b13_1(10): small, UNSAT, but needs real decisions and conflicts *)
  let inst = Registry.instance ~circuit:"b13" ~prop:"1" ~bound:10 in
  let enc = E.encode (Unroll.combo inst.Bmc.unrolled) in
  E.assume_bool enc inst.Bmc.violation true;
  let options =
    {
      Solver.hdpll_sp with
      Solver.collect_learned = collect;
      Solver.obs = (match obs with Some o -> o | None -> Obs.disabled);
    }
  in
  Solver.solve ~options enc

let test_trace_round_trip () =
  let path = Filename.temp_file "rtlsat_trace" ".jsonl" in
  let obs = Obs.create ~trace:(Trace.to_file path) () in
  let o = solve_instance ~obs () in
  check_bool "unsat" true (o.Solver.result = Solver.Unsat);
  Obs.close obs;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  check_bool "trace non-empty" true (lines <> []);
  let evs =
    List.map
      (fun line ->
         let j = Json.of_string line in
         check_bool "has t" true
           (Option.bind (Json.member "t" j) Json.get_float <> None);
         match Option.bind (Json.member "ev" j) Json.get_string with
         | Some ev -> ev
         | None -> Alcotest.fail "event without \"ev\"")
      lines
  in
  check_bool "saw decisions" true (List.mem "decide" evs);
  check_bool "saw conflicts" true (List.mem "conflict" evs);
  check_bool "saw learned clauses" true (List.mem "learn" evs);
  check_string "last event is done" "done" (List.nth evs (List.length evs - 1));
  check_int "sink counted every line" (List.length lines)
    (Obs.snapshot obs).Obs.trace_events;
  Sys.remove path

(* ---- determinism: observability must not change the solve ---- *)

let test_observation_does_not_change_solve () =
  let plain = solve_instance ~collect:true () in
  let path = Filename.temp_file "rtlsat_trace" ".jsonl" in
  let obs = Obs.create ~trace:(Trace.to_file path) () in
  let observed = solve_instance ~obs ~collect:true () in
  Obs.close obs;
  Sys.remove path;
  check_bool "same result" true (plain.Solver.result = observed.Solver.result);
  check_int "same decisions" plain.Solver.stats.Solver.decisions
    observed.Solver.stats.Solver.decisions;
  check_int "same conflicts" plain.Solver.stats.Solver.conflicts
    observed.Solver.stats.Solver.conflicts;
  check_int "same propagations" plain.Solver.stats.Solver.propagations
    observed.Solver.stats.Solver.propagations;
  check_bool "same learned clauses, same order" true
    (plain.Solver.learned_clauses = observed.Solver.learned_clauses)

(* ---- forensics: stall detection unit tests ---- *)

let test_stall_detection () =
  let f = Forensics.create ~nvars:4 ~nconstrs:2 in
  let wide = Forensics.stall_min_width + 1 in
  Forensics.constr_enter f 1;
  (* stall_streak - 1 tiny narrowings: no report yet *)
  for _ = 1 to Forensics.stall_streak - 1 do
    match Forensics.note_narrow f ~var:0 ~shaved:1 ~width:wide with
    | Some _ -> Alcotest.fail "stall reported before the streak threshold"
    | None -> ()
  done;
  (match Forensics.note_narrow f ~var:0 ~shaved:1 ~width:wide with
   | Some st ->
     check_int "stalled var" 0 st.Forensics.st_var;
     check_int "driving constraint" 1 st.Forensics.st_constr;
     check_int "streak" Forensics.stall_streak st.Forensics.st_streak;
     check_int "shaved over streak" Forensics.stall_streak
       st.Forensics.st_shaved
   | None -> Alcotest.fail "no stall at the streak threshold");
  (* the next report only fires at 16x the threshold, not immediately *)
  (match Forensics.note_narrow f ~var:0 ~shaved:1 ~width:wide with
   | Some _ -> Alcotest.fail "re-reported without backoff"
   | None -> ());
  Forensics.constr_exit f 1;
  check_int "reports so far" 1 (Forensics.stalls f)

let test_stall_needs_wide_domain_and_tiny_shave () =
  let f = Forensics.create ~nvars:2 ~nconstrs:1 in
  (* narrow domain: never a stall, no matter how long the streak *)
  for _ = 1 to 4 * Forensics.stall_streak do
    match Forensics.note_narrow f ~var:0 ~shaved:1 ~width:1000 with
    | Some _ -> Alcotest.fail "stall on a narrow domain"
    | None -> ()
  done;
  (* a big shave resets the streak *)
  let wide = Forensics.stall_min_width + 1 in
  for _ = 1 to Forensics.stall_streak - 1 do
    ignore (Forensics.note_narrow f ~var:1 ~shaved:1 ~width:wide)
  done;
  ignore
    (Forensics.note_narrow f ~var:1
       ~shaved:(Forensics.stall_max_shave + 1)
       ~width:wide);
  (match Forensics.note_narrow f ~var:1 ~shaved:1 ~width:wide with
   | Some _ -> Alcotest.fail "streak survived a big shave"
   | None -> ());
  check_int "no reports" 0 (Forensics.stalls f)

let test_forensics_attribution () =
  let f = Forensics.create ~nvars:3 ~nconstrs:2 in
  Forensics.set_names f
    ~var_name:(Printf.sprintf "v%d")
    ~constr_desc:(Printf.sprintf "c%d");
  Forensics.constr_enter f 0;
  ignore (Forensics.note_narrow f ~var:1 ~shaved:5 ~width:100);
  ignore (Forensics.note_narrow f ~var:2 ~shaved:3 ~width:50);
  (* top_constraints orders by accrued time first; both spans here are
     sub-microsecond, so without a deterministic bias a context switch
     during c1's span can invert the expected c0-first order *)
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < 0.002 do () done;
  Forensics.constr_exit f 0;
  Forensics.constr_enter f 1;
  ignore (Forensics.note_narrow f ~var:1 ~shaved:2 ~width:98);
  Forensics.constr_exit f 1;
  (match Forensics.top_constraints f ~k:10 with
   | [ a; b ] ->
     check_int "c0 wakeups" 1 a.Forensics.hc_wakeups;
     check_int "c0 narrows" 2 a.Forensics.hc_narrows;
     check_int "c0 shaved" 8 a.Forensics.hc_shaved;
     check_string "c0 desc" "c0" a.Forensics.hc_desc;
     check_int "c1 narrows" 1 b.Forensics.hc_narrows
   | l -> Alcotest.failf "expected 2 hot constraints, got %d" (List.length l));
  (match Forensics.top_vars f ~k:1 with
   | [ v ] ->
     check_int "hottest var" 1 v.Forensics.hv_id;
     check_int "its narrows" 2 v.Forensics.hv_narrows;
     check_int "its shaved" 7 v.Forensics.hv_shaved
   | l -> Alcotest.failf "expected 1 hot var, got %d" (List.length l))

(* attribution totals are pure functions of the search, so two
   instrumented runs of the same instance agree exactly (times aside) *)
let test_attribution_stable_across_runs () =
  let run () =
    let obs = Obs.create () in
    let o = solve_instance ~obs () in
    check_bool "unsat" true (o.Solver.result = Solver.Unsat);
    let f =
      match Obs.forensics obs with
      | Some f -> f
      | None -> Alcotest.fail "forensics not attached"
    in
    (* the complete per-constraint / per-variable tallies, normalized
       by id: the top-K view orders by wall time, which is noisy *)
    let by_id_c =
      List.sort compare
        (List.map
           (fun (h : Forensics.hot_constr) ->
              (h.Forensics.hc_id, h.Forensics.hc_wakeups,
               h.Forensics.hc_narrows, h.Forensics.hc_shaved))
           (Forensics.top_constraints f ~k:max_int))
    in
    let by_id_v =
      List.sort compare
        (List.map
           (fun (h : Forensics.hot_var) ->
              (h.Forensics.hv_id, h.Forensics.hv_narrows, h.Forensics.hv_shaved))
           (Forensics.top_vars f ~k:max_int))
    in
    (by_id_c, by_id_v, (Obs.snapshot obs).Obs.stalls)
  in
  let c1, v1, s1 = run () in
  let c2, v2, s2 = run () in
  check_bool "hot constraints non-empty" true (c1 <> []);
  check_bool "same hot constraints" true (c1 = c2);
  check_bool "same hot vars" true (v1 = v2);
  check_int "same stalls" s1 s2

(* ---- forensics end-to-end: the w61 wrap-around pathology ---- *)

let corpus_file name =
  if Sys.file_exists (Filename.concat "corpus" name) then
    Filename.concat "corpus" name
  else
    Filename.concat
      (Filename.concat (Filename.dirname Sys.executable_name) "corpus")
      name

(* with splits disabled the seed kernel's pathology is preserved: the
   run times out in an ICP crawl and the forensics pipeline must still
   diagnose it *)
let test_w61_stall_and_profile () =
  let case = Fuzz_case.of_file (corpus_file "w61_wrap_corner.rtl") in
  let inst = Fuzz_case.instance case in
  let path = Filename.temp_file "rtlsat_w61" ".jsonl" in
  let obs = Obs.create ~trace:(Trace.to_file path) () in
  let r =
    Engines.run_instance
      ~req:(Rtlsat_harness.Req.make ~timeout:1.0 ~obs ~split:false ())
      Engines.Hdpll inst
  in
  Obs.close obs;
  check_bool "times out" true (r.Engines.verdict = Engines.Timeout);
  (match r.Engines.metrics with
   | Some m ->
     check_bool "stalls counted" true (m.Obs.stalls > 0);
     check_bool "icp.stalls counter in snapshot" true
       (List.assoc_opt "icp.stalls" m.Obs.counter_values = Some m.Obs.stalls)
   | None -> Alcotest.fail "metrics missing");
  let p = Forensics.profile_file path in
  Sys.remove path;
  check_bool "v2 header recognized" true (p.Forensics.pf_schema <> None);
  check_bool "saw icp_stall events" true
    (List.assoc_opt "icp_stall" p.Forensics.pf_events <> None);
  (match p.Forensics.pf_stalls with
   | st :: _ ->
     check_bool "stalled variable named" true (st.Forensics.si_name <> "");
     check_bool "huge domain" true
       (st.Forensics.si_last_width >= Forensics.stall_min_width)
   | [] -> Alcotest.fail "profiler found no stalls");
  (match p.Forensics.pf_diagnosis with
   | first :: _ ->
     check_bool "slow ICP convergence is the dominant diagnosis" true
       (let needle = "slow ICP convergence" in
        let len = String.length needle in
        let rec contains i =
          i + len <= String.length first
          && (String.sub first i len = needle || contains (i + 1))
        in
        contains 0)
   | [] -> Alcotest.fail "empty diagnosis")

(* hard regression for the cure: with splits enabled (the default)
   every HDPLL configuration decides the same instance Sat well within
   the deadline.  [run_instance] only reports Sat after the witness
   replays through the simulator, so the verdict check covers the
   certificate too. *)
let test_w61_split_cures_all_configs () =
  let case = Fuzz_case.of_file (corpus_file "w61_wrap_corner.rtl") in
  let inst = Fuzz_case.instance case in
  List.iter
    (fun engine ->
       let r =
         Engines.run_instance
           ~req:(Rtlsat_harness.Req.make ~timeout:10.0 ())
           engine inst
       in
       check_string
         (Engines.engine_name engine ^ " sat with validated witness")
         "S"
         (Engines.verdict_symbol r.Engines.verdict);
       check_bool "well under the deadline" true (r.Engines.time < 5.0);
       match r.Engines.stats with
       | Some st ->
         (* the cure routes the stalled box through the certificate
            oracle rather than crawling to a timeout *)
         check_bool "final check ran" true (st.Solver.final_checks > 0)
       | None -> Alcotest.fail "stats missing")
    [ Engines.Hdpll; Engines.Hdpll_s; Engines.Hdpll_sp; Engines.Hdpll_p ]

(* a root-level ICP crawl with a free Boolean in the problem: the
   suspension heuristic must take interval-split decisions (the
   certificate oracle needs a complete Boolean skeleton), the solver
   must learn over the split literals and still answer Unsat *)
let crawl_problem () =
  let p = P.create () in
  let u = P.new_bool p ~name:"u" () in
  ignore u;
  let x = P.new_word p ~name:"x" (I.make 0 65535) in
  let y = P.new_word p ~name:"y" (I.make 0 65535) in
  (* y = x + 1 and y <= x - 1: infeasible, but ICP refutes it one unit
     per sweep from both ends *)
  P.add_constr p (T.Lin_eq (T.lin_of_terms [ (1, x); (-1, y) ] 1));
  P.add_constr p (T.Lin_le (T.lin_of_terms [ (1, y); (-1, x) ] 1));
  p

let test_split_decisions_unit () =
  let path = Filename.temp_file "rtlsat_split" ".jsonl" in
  let obs = Obs.create ~trace:(Trace.to_file path) () in
  let options = { Solver.hdpll with Solver.obs } in
  let o = Solver.solve_problem ~options (crawl_problem ()) in
  Obs.close obs;
  check_bool "unsat" true (o.Solver.result = Solver.Unsat);
  check_bool "splits taken" true (o.Solver.stats.Solver.splits > 0);
  let m = Obs.snapshot obs in
  check_int "icp.splits counter matches the stat"
    o.Solver.stats.Solver.splits
    (Obs.counter obs "icp.splits");
  check_int "forensics splits match" o.Solver.stats.Solver.splits m.Obs.splits;
  let p = Forensics.profile_file path in
  Sys.remove path;
  check_bool "profiler saw split events" true
    (p.Forensics.pf_splits = o.Solver.stats.Solver.splits);
  check_bool "split/stall interplay diagnosed" true
    (List.exists
       (fun line ->
          let needle = "interval splitting engaged" in
          let len = String.length needle in
          let rec contains i =
            i + len <= String.length line
            && (String.sub line i len = needle || contains (i + 1))
          in
          contains 0)
       p.Forensics.pf_diagnosis)

(* the streak bookkeeping lives outside the observability arm, so an
   enabled handle must not change which splits are taken; and with
   splits off the kernel still refutes the crawl (by crawling) *)
let test_split_determinism_and_off () =
  let on_plain =
    Solver.solve_problem ~options:Solver.hdpll (crawl_problem ())
  in
  let obs = Obs.create () in
  let on_observed =
    Solver.solve_problem
      ~options:{ Solver.hdpll with Solver.obs }
      (crawl_problem ())
  in
  let off =
    Solver.solve_problem
      ~options:{ Solver.hdpll with Solver.split = false }
      (crawl_problem ())
  in
  check_bool "unsat (split on)" true (on_plain.Solver.result = Solver.Unsat);
  check_bool "unsat (split off)" true (off.Solver.result = Solver.Unsat);
  check_int "same decisions under observation"
    on_plain.Solver.stats.Solver.decisions
    on_observed.Solver.stats.Solver.decisions;
  check_int "same conflicts under observation"
    on_plain.Solver.stats.Solver.conflicts
    on_observed.Solver.stats.Solver.conflicts;
  check_int "same splits under observation"
    on_plain.Solver.stats.Solver.splits
    on_observed.Solver.stats.Solver.splits;
  check_int "no splits when disabled" 0 off.Solver.stats.Solver.splits

let test_profile_v1_warning () =
  (* a headerless (v1) trace still profiles, with a warning *)
  let p =
    Forensics.profile_string
      "{\"ev\":\"decide\",\"t\":0.1,\"kind\":\"activity\",\"lvl\":1,\"var\":3}\n\
       {\"ev\":\"done\",\"t\":0.2,\"result\":\"sat\",\"conflicts\":0,\"decisions\":1}\n"
  in
  check_bool "no schema" true (p.Forensics.pf_schema = None);
  check_bool "warned" true (p.Forensics.pf_warnings <> []);
  check_bool "result still parsed" true (p.Forensics.pf_result = Some "sat")

(* ---- bench-diff ---- *)

let row section instance engine verdict time =
  {
    Report.br_section = section;
    br_instance = instance;
    br_engine = engine;
    br_verdict = verdict;
    br_time = time;
  }

let test_bench_diff_self_clean () =
  let rows =
    [ row "table2" "a" "hdpll" "unsat" 1.0; row "table2" "b" "hdpll" "sat" 0.3 ]
  in
  let d = Report.diff_rows rows rows in
  check_int "no regressions" 0 d.Report.bd_regressions;
  check_int "all matched" 2 (List.length d.Report.bd_entries);
  check_bool "nothing unmatched" true
    (d.Report.bd_only_old = [] && d.Report.bd_only_new = [])

let test_bench_diff_flags_slowdown () =
  let old_rows = [ row "table2" "a" "hdpll" "unsat" 1.0 ] in
  (* +50% > the 20% threshold and past the absolute floor *)
  let d = Report.diff_rows old_rows [ row "table2" "a" "hdpll" "unsat" 1.5 ] in
  check_int "slowdown flagged" 1 d.Report.bd_regressions;
  (* +10%: within threshold *)
  let d = Report.diff_rows old_rows [ row "table2" "a" "hdpll" "unsat" 1.1 ] in
  check_int "within threshold" 0 d.Report.bd_regressions;
  (* micro-instance jitter below the absolute floor never flags *)
  let d =
    Report.diff_rows
      [ row "table2" "a" "hdpll" "unsat" 0.010 ]
      [ row "table2" "a" "hdpll" "unsat" 0.045 ]
  in
  check_int "jitter below min_time" 0 d.Report.bd_regressions

let test_bench_diff_verdicts () =
  let d =
    Report.diff_rows
      [ row "table2" "a" "hdpll" "unsat" 1.0 ]
      [ row "table2" "a" "hdpll" "timeout" 5.0 ]
  in
  check_int "degradation is a regression" 1 d.Report.bd_regressions;
  let d =
    Report.diff_rows
      [ row "table2" "a" "hdpll" "sat" 1.0 ]
      [ row "table2" "a" "hdpll" "unsat" 1.0 ]
  in
  check_int "sat/unsat flip is a regression" 1 d.Report.bd_regressions;
  let d =
    Report.diff_rows
      [ row "table2" "a" "hdpll" "timeout" 5.0 ]
      [ row "table2" "a" "hdpll" "unsat" 1.0 ]
  in
  check_int "now solved is not a regression" 0 d.Report.bd_regressions;
  (match d.Report.bd_entries with
   | [ e ] -> check_bool "but noted" true (e.Report.de_status = Report.Improvement)
   | _ -> Alcotest.fail "expected one entry")

let test_bench_diff_unmatched () =
  let d =
    Report.diff_rows
      [ row "table2" "gone" "hdpll" "sat" 1.0 ]
      [ row "table2" "new" "hdpll" "sat" 1.0 ]
  in
  check_int "nothing compared" 0 (List.length d.Report.bd_entries);
  check_bool "old key reported" true
    (d.Report.bd_only_old = [ ("table2", "gone", "hdpll") ]);
  check_bool "new key reported" true
    (d.Report.bd_only_new = [ ("table2", "new", "hdpll") ])

(* ---- the report serializers ---- *)

let test_solve_json_shape () =
  let obs = Obs.create () in
  let inst = Registry.instance ~circuit:"b01" ~prop:"1" ~bound:5 in
  let r =
    Engines.run_instance
      ~req:(Rtlsat_harness.Req.make ~timeout:60.0 ~obs ())
      Engines.Hdpll_sp inst
  in
  let j =
    Json.of_string
      (Json.to_string (Report.solve_json ~instance:"b01_1(5)" ~bound:5
                         Engines.Hdpll_sp r))
  in
  check_bool "schema tag" true
    (Option.bind (Json.member "schema" j) Json.get_string
     = Some "rtlsat.solve/1");
  check_bool "verdict" true
    (Option.bind (Json.member "verdict" j) Json.get_string = Some "unsat");
  List.iter
    (fun key ->
       check_bool (key ^ " in stats") true
         (Option.bind (Json.member "stats" j) (Json.member key) <> None))
    [ "decisions"; "conflicts"; "propagations"; "learned"; "jconflicts";
      "final_checks"; "splits"; "relations"; "learn_time_s"; "solve_time_s" ];
  check_bool "metrics attached" true (Json.member "metrics" j <> None)

(* ---- telemetry: heartbeats, flight recorder, OpenMetrics ---- *)

let fixture_file name =
  if Sys.file_exists (Filename.concat "fixtures" name) then
    Filename.concat "fixtures" name
  else
    Filename.concat
      (Filename.concat (Filename.dirname Sys.executable_name) "fixtures")
      name

let test_heartbeat_rates () =
  let hb = Heartbeat.create ~every:1.0 in
  check_bool "due immediately" true (Heartbeat.due hb 0.0);
  let fields =
    Heartbeat.beat hb ~now:100.0 ~now_rel:2.0 ~decisions:200 ~conflicts:20
      ~propagations:10000 ~splits:3 ~stalls:1 ~shaved:42 ~lvl:7
  in
  let geti name = Option.bind (List.assoc_opt name fields) Json.get_int in
  let getf name = Option.bind (List.assoc_opt name fields) Json.get_float in
  check_bool "seq" true (geti "seq" = Some 1);
  check_bool "decisions total" true (geti "decisions" = Some 200);
  (* first beat: deltas over now_rel - 0 = 2s *)
  check_bool "dps" true (getf "dps" = Some 100.0);
  check_bool "pps" true (getf "pps" = Some 5000.0);
  check_bool "lvl" true (geti "lvl" = Some 7);
  check_bool "not due after beat" false (Heartbeat.due hb 100.5);
  check_bool "due after interval" true (Heartbeat.due hb 101.0);
  let fields2 =
    Heartbeat.beat hb ~now:101.0 ~now_rel:3.0 ~decisions:250 ~conflicts:20
      ~propagations:11000 ~splits:3 ~stalls:1 ~shaved:50 ~lvl:2
  in
  let getf2 name = Option.bind (List.assoc_opt name fields2) Json.get_float in
  check_bool "dps delta" true (getf2 "dps" = Some 50.0);
  check_bool "cps zero delta" true (getf2 "cps" = Some 0.0);
  (match Heartbeat.create ~every:0.0 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "zero interval accepted")

let test_heartbeat_view () =
  let v = Heartbeat.view () in
  let feed line = Heartbeat.view_update v (Json.of_string line) in
  let ic = open_in (fixture_file "trace_v5.jsonl") in
  (try
     while true do
       feed (input_line ic)
     done
   with End_of_file -> close_in ic);
  check_bool "schema" true (v.Heartbeat.v_schema = Some "rtlsat.trace/5");
  check_int "decisions" 100 v.Heartbeat.v_decisions;
  check_bool "dps" true (v.Heartbeat.v_dps = 200.0);
  check_bool "bound from heartbeat" true (v.Heartbeat.v_bound = Some 10);
  check_bool "bounds total" true (v.Heartbeat.v_bounds_total = Some 2);
  (match v.Heartbeat.v_bound_results with
   | [ r ] ->
     check_int "result bound" 10 r.Heartbeat.b_bound;
     check_string "result verdict" "unsat" r.Heartbeat.b_verdict
   | l -> Alcotest.fail (Printf.sprintf "%d bound results" (List.length l)));
  check_bool "done" true (v.Heartbeat.v_result = Some "unsat");
  check_int "events" 5 v.Heartbeat.v_events

let test_recorder_ring () =
  let r = Recorder.create ~cap:4 () in
  check_bool "fresh is empty" true (Recorder.is_empty r);
  for i = 1 to 6 do
    Recorder.record r ~t_rel:(float_of_int i)
      ~ev:"decide" [ ("var", Json.Int i) ]
  done;
  check_int "recorded caps at capacity" 4 (Recorder.recorded r);
  check_int "dropped counts overflow" 2 (Recorder.dropped r);
  let seen = ref [] in
  Recorder.iter r (fun e ->
      match List.assoc_opt "var" e.Recorder.e_fields with
      | Some (Json.Int v) -> seen := v :: !seen
      | _ -> ());
  (* oldest first: 3,4,5,6 survive a cap of 4 *)
  check_bool "oldest-first order" true (List.rev !seen = [ 3; 4; 5; 6 ])

let test_recorder_dump_roundtrip () =
  let r = Recorder.create ~cap:3 () in
  for i = 1 to 5 do
    Recorder.record r ~t_rel:(0.1 *. float_of_int i)
      ~ev:"decide"
      [ ("kind", Json.Str "activity"); ("lvl", Json.Int 1); ("var", Json.Int i) ]
  done;
  let path = Filename.temp_file "rtlsat_rec" ".jsonl" in
  Recorder.dump r path;
  let p = Forensics.profile_file path in
  Sys.remove path;
  check_bool "dump replays at the current version" true
    (p.Forensics.pf_version = Forensics.max_trace_version);
  check_bool "decide events survive" true
    (List.assoc_opt "decide" p.Forensics.pf_events = Some 3);
  (* 2 of 5 events fell off the ring: the profiler must say so *)
  check_bool "drop warning" true
    (List.exists
       (fun w ->
          List.exists
            (fun part ->
               String.length w >= String.length part
               &&
               let rec find i =
                 i + String.length part <= String.length w
                 && (String.sub w i (String.length part) = part || find (i + 1))
               in
               find 0)
            [ "dropped" ])
       p.Forensics.pf_warnings)

let test_flight_dump_through_obs () =
  let obs = Obs.create ~recorder:(Recorder.create ()) () in
  let _ = solve_instance ~obs () in
  let path = Filename.temp_file "rtlsat_flight" ".jsonl" in
  check_bool "dump written" true (Obs.flight_dump obs path);
  let p = Forensics.profile_file path in
  Sys.remove path;
  check_bool "dump carries the run's result" true
    (p.Forensics.pf_result = Some "unsat");
  check_bool "recorder marker seen" true
    (List.mem_assoc "recorder" p.Forensics.pf_events);
  (* no recorder attached -> nothing to dump *)
  let bare = Obs.create () in
  check_bool "no recorder, no dump" false (Obs.flight_dump bare "/nonexistent/x")

let test_overhead_guard () =
  (* Telemetry must not blow up solve time.  Best-of-3 on both arms
     to shed scheduler noise; the bar is deliberately generous (2x +
     0.25s) — it catches an accidentally hot heartbeat gate, not
     micro-regressions. *)
  let best_of f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let off = best_of (fun () -> solve_instance ()) in
  let on_ =
    best_of (fun () ->
        let obs =
          Obs.create ~recorder:(Recorder.create ()) ~heartbeat_every:0.05 ()
        in
        solve_instance ~obs ())
  in
  check_bool
    (Printf.sprintf "telemetry overhead (off %.3fs, on %.3fs)" off on_)
    true
    (on_ <= (off *. 2.0) +. 0.25)

let test_openmetrics_exposition () =
  let obs = Obs.create () in
  Obs.span obs Obs.Icp (fun () -> ());
  Obs.incr obs "fme.calls";
  Obs.observe_learned_len obs 3;
  let text = Openmetrics.of_snapshot (Obs.snapshot obs) in
  let contains part =
    let n = String.length text and k = String.length part in
    let rec find i = i + k <= n && (String.sub text i k = part || find (i + 1)) in
    find 0
  in
  check_bool "wall gauge" true (contains "# TYPE rtlsat_wall_seconds gauge");
  check_bool "counter sanitized + _total" true
    (contains "rtlsat_fme_calls_total 1");
  check_bool "phase label" true
    (contains "rtlsat_phase_self_seconds{phase=\"icp\"}");
  check_bool "histogram +Inf bucket" true
    (contains "rtlsat_learned_clause_len_bucket{le=\"+Inf\"} 1");
  check_bool "histogram sum" true (contains "rtlsat_learned_clause_len_sum 3");
  check_bool "ends with EOF" true
    (String.length text >= 6
     && String.sub text (String.length text - 6) 6 = "# EOF\n")

let test_openmetrics_solve_report () =
  let j =
    Json.Obj
      [
        ("schema", Json.Str "rtlsat.solve/1");
        ("instance", Json.Str "b01_1(5)\"quoted\\");
        ("engine", Json.Str "hdpll");
        ("verdict", Json.Str "unsat");
        ("time_s", Json.Float 0.25);
        ("decisions", Json.Int 12);
        ("conflicts", Json.Int 3);
      ]
  in
  let text = Openmetrics.of_json j in
  let contains part =
    let n = String.length text and k = String.length part in
    let rec find i = i + k <= n && (String.sub text i k = part || find (i + 1)) in
    find 0
  in
  check_bool "info metric with escaped labels" true
    (contains "instance=\"b01_1(5)\\\"quoted\\\\\"");
  check_bool "verdict label" true (contains "verdict=\"unsat\"");
  check_bool "decisions counter" true
    (contains "rtlsat_solver_decisions_total 12");
  check_string "sanitize" "fme_calls_2" (Openmetrics.sanitize "fme.calls-2")

(* ---- trace version dispatch ---- *)

let test_trace_version_table () =
  check_int "max version" 8 Forensics.max_trace_version;
  List.iter
    (fun v ->
       check_bool
         (Printf.sprintf "version %d in table" v)
         true
         (List.mem_assoc v Forensics.trace_versions))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  check_bool "current schema parses" true
    (Forensics.schema_version Trace.schema = Some Forensics.max_trace_version);
  check_bool "foreign tag rejected" true
    (Forensics.schema_version "somebody.else/3" = None)

let test_profile_every_version () =
  List.iter
    (fun v ->
       let p =
         Forensics.profile_file
           (fixture_file (Printf.sprintf "trace_v%d.jsonl" v))
       in
       check_int (Printf.sprintf "v%d dispatched" v) v p.Forensics.pf_version;
       check_bool
         (Printf.sprintf "v%d result parsed" v)
         true
         (p.Forensics.pf_result <> None))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_profile_unsupported_version () =
  match Forensics.profile_file (fixture_file "trace_v9_unsupported.jsonl") with
  | _ -> Alcotest.fail "future schema accepted"
  | exception Forensics.Unsupported_schema msg ->
    check_bool "message names the supported range" true
      (let part =
         Printf.sprintf "rtlsat.trace/%d" Forensics.max_trace_version
       in
       let n = String.length msg and k = String.length part in
       let rec find i = i + k <= n && (String.sub msg i k = part || find (i + 1)) in
       find 0)

(* ---- GC/memory telemetry ---- *)

let test_snapshot_mem () =
  let t = Obs.create () in
  Obs.span t Obs.Icp (fun () -> ignore (Sys.opaque_identity (Array.make 100_000 0.0)));
  let s = Obs.snapshot t in
  (match s.Obs.mem with
   | Some m ->
     check_bool "minor words accrued" true (m.Obs.minor_words > 0.0);
     check_bool "heap words positive" true (m.Obs.heap_words > 0);
     check_bool "top heap covers heap" true
       (m.Obs.top_heap_words >= m.Obs.heap_words
        || m.Obs.top_heap_words > 0)
   | None -> Alcotest.fail "mem missing on an enabled handle");
  (match List.assoc_opt "icp" s.Obs.phase_alloc with
   | Some a -> check_bool "icp allocation attributed" true (a > 0.0)
   | None -> Alcotest.fail "no per-phase allocation for icp");
  check_bool "disabled handle carries no mem" true
    ((Obs.snapshot Obs.disabled).Obs.mem = None);
  let j = Json.of_string (Json.to_string (Obs.snapshot_json s)) in
  check_bool "mem object in snapshot json" true
    (Option.bind (Json.member "mem" j) (Json.member "heap_mb") <> None);
  check_bool "phase alloc_w in snapshot json" true
    (Option.bind
       (Option.bind (Option.bind (Json.member "phases" j) (Json.member "icp"))
          (Json.member "alloc_w"))
       Json.get_float
     <> None)

let test_heartbeat_gc_fields () =
  (* heartbeats under trace/7 carry the GC gauges; driven directly
     because a small solve can finish inside one heartbeat gate *)
  let path = Filename.temp_file "rtlsat_hbgc" ".jsonl" in
  let obs = Obs.create ~trace:(Trace.to_file path) ~heartbeat_every:0.001 () in
  Obs.heartbeat_tick obs ~decisions:10 ~conflicts:1 ~propagations:100 ~splits:0
    ~lvl:1;
  Obs.close obs;
  let ic = open_in path in
  let found = ref None in
  (try
     while true do
       let j = Json.of_string (input_line ic) in
       if Option.bind (Json.member "ev" j) Json.get_string = Some "heartbeat"
       then found := Some j
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  match !found with
  | None -> Alcotest.fail "no heartbeat in an instrumented solve"
  | Some j ->
    check_bool "major_words" true
      (Option.bind (Json.member "major_words" j) Json.get_float <> None);
    check_bool "heap_mb positive" true
      (match Option.bind (Json.member "heap_mb" j) Json.get_float with
       | Some v -> v > 0.0
       | None -> false);
    check_bool "compactions" true
      (Option.bind (Json.member "compactions" j) Json.get_int <> None)

(* ---- heartbeat rate math under a misbehaving clock ---- *)

let test_heartbeat_dt_guard () =
  let hb = Heartbeat.create ~every:1.0 in
  let beat ~now ~now_rel ~d ~c ~p =
    Heartbeat.beat hb ~now ~now_rel ~decisions:d ~conflicts:c ~propagations:p
      ~splits:0 ~stalls:0 ~shaved:0 ~lvl:1
  in
  let getf fields name = Option.bind (List.assoc_opt name fields) Json.get_float in
  let geti fields name = Option.bind (List.assoc_opt name fields) Json.get_int in
  let f1 = beat ~now:100.0 ~now_rel:2.0 ~d:200 ~c:20 ~p:10000 in
  check_bool "baseline dps" true (getf f1 "dps" = Some 100.0);
  (* stalled clock: dt = 0 must not divide by zero *)
  let f2 = beat ~now:101.0 ~now_rel:2.0 ~d:300 ~c:30 ~p:20000 in
  check_bool "totals stay current" true (geti f2 "decisions" = Some 300);
  check_bool "seq still advances" true (geti f2 "seq" = Some 2);
  check_bool "dps cached" true (getf f2 "dps" = Some 100.0);
  check_bool "cps cached" true (getf f2 "cps" = Some 10.0);
  check_bool "pps cached" true (getf f2 "pps" = Some 5000.0);
  (* clock stepped backwards: dt < 0 must not go negative *)
  let f3 = beat ~now:102.0 ~now_rel:1.0 ~d:320 ~c:32 ~p:21000 in
  List.iter
    (fun name ->
       match getf f3 name with
       | Some v ->
         check_bool (name ^ " finite and non-negative") true
           (Float.is_finite v && v >= 0.0)
       | None -> Alcotest.fail (name ^ " missing"))
    [ "dps"; "cps"; "pps" ];
  (* recovery: the frozen baseline spans the whole stalled gap *)
  let f4 = beat ~now:103.0 ~now_rel:4.0 ~d:400 ~c:40 ~p:30000 in
  check_bool "recovered dps" true (getf f4 "dps" = Some 100.0);
  check_bool "recovered cps" true (getf f4 "cps" = Some 10.0);
  check_bool "recovered pps" true (getf f4 "pps" = Some 10000.0)

let test_heartbeat_view_v7 () =
  let v = Heartbeat.view () in
  let ic = open_in (fixture_file "trace_v7.jsonl") in
  (try
     while true do
       Heartbeat.view_update v (Json.of_string (input_line ic))
     done
   with End_of_file -> close_in ic);
  check_bool "schema" true (v.Heartbeat.v_schema = Some "rtlsat.trace/7");
  check_bool "heap gauge" true (v.Heartbeat.v_heap_mb = 17.5);
  check_bool "major words" true (v.Heartbeat.v_major_words = 123456.0);
  check_int "compactions" 1 v.Heartbeat.v_compactions

let test_openmetrics_gc_gauges () =
  let obs = Obs.create () in
  Obs.span obs Obs.Icp (fun () -> ignore (Sys.opaque_identity (Array.make 1000 0)));
  let text = Openmetrics.of_snapshot (Obs.snapshot obs) in
  let contains part =
    let n = String.length text and k = String.length part in
    let rec find i = i + k <= n && (String.sub text i k = part || find (i + 1)) in
    find 0
  in
  check_bool "heap gauge exported" true (contains "rtlsat_gc_heap_mb");
  check_bool "minor words exported" true (contains "rtlsat_gc_minor_words")

(* ---- environment fingerprint ---- *)

let test_env_fingerprint () =
  let fp = Env.fingerprint () in
  check_bool "git_rev non-empty" true (fp.Env.git_rev <> "");
  check_bool "hostname non-empty" true (fp.Env.hostname <> "");
  check_string "ocaml_version" Sys.ocaml_version fp.Env.ocaml_version;
  check_int "word_size" Sys.word_size fp.Env.word_size;
  let j = Json.of_string (Json.to_string (Env.fingerprint_json ())) in
  List.iter
    (fun key ->
       check_bool (key ^ " in json") true (Json.member key j <> None))
    [ "git_rev"; "git_dirty"; "hostname"; "ocaml_version"; "word_size" ]

(* ---- the cross-run ledger ---- *)

let mk_run ?(instance = "b13_1(10)") ?(engine = "hdpll")
    ?(options = "bound=10") ?(wall = 1.0) i =
  Ledger.make ~now:(1.7e9 +. float_of_int i) ~pid:42 ~subcommand:"solve"
    ~argv:[ "rtlsat"; "solve" ] ~instance ~engine ~options ~verdict:"unsat"
    ~wall_s:wall
    ~counters:[ ("decisions", 5); ("conflicts", 2) ]
    ~artifacts:[ ("trace", "t.jsonl") ]
    ()

let test_ledger_round_trip () =
  let dir = Filename.temp_file "rtlsat_ledger" "" in
  Sys.remove dir;
  (* a path whose parent does not exist yet: append must create it *)
  let path = Filename.concat dir "ledger.jsonl" in
  Ledger.append ~path (mk_run ~wall:1.0 0);
  Ledger.append ~path (mk_run ~wall:2.0 1);
  Ledger.append ~path (mk_run ~engine:"bitblast" ~wall:3.0 2);
  let all = Ledger.load ~path in
  check_int "all records load" 3 (List.length all);
  (match all with
   | r :: _ ->
     check_string "subcommand" "solve" r.Ledger.subcommand;
     check_string "instance" "b13_1(10)" r.Ledger.instance;
     check_string "engine" "hdpll" r.Ledger.engine;
     check_string "verdict" "unsat" r.Ledger.verdict;
     check_bool "wall" true (r.Ledger.wall_s = 1.0);
     check_bool "distinct run ids" true
       (match all with
        | a :: b :: _ -> a.Ledger.id <> b.Ledger.id
        | _ -> false);
     check_bool "env fingerprint embedded" true
       (Option.bind (Json.member "env" r.Ledger.json) (Json.member "git_rev")
        <> None);
     check_bool "counters survive" true
       (Option.bind
          (Option.bind (Json.member "counters" r.Ledger.json)
             (Json.member "decisions"))
          Json.get_int
        = Some 5)
   | [] -> Alcotest.fail "empty ledger");
  check_int "filter by engine" 2
    (List.length (Ledger.filter ~engine:"hdpll" all));
  check_int "filter last" 1 (List.length (Ledger.filter ~last:1 all));
  (match Ledger.filter ~last:1 all with
   | [ r ] -> check_string "last keeps the newest" "bitblast" r.Ledger.engine
   | _ -> Alcotest.fail "last 1");
  check_int "filter instance miss" 0
    (List.length (Ledger.filter ~instance:"nope" all));
  (* a torn final line (crash mid-append) must not poison the ledger *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"schema\":\"rtlsat.run/1\",\"id\":\"torn";
  close_out oc;
  check_int "torn tail skipped" 3 (List.length (Ledger.load ~path));
  check_bool "missing file is an empty ledger" true
    (Ledger.load ~path:(Filename.concat dir "absent.jsonl") = []);
  Sys.remove path;
  Unix.rmdir dir

let test_ledger_median_slow () =
  check_bool "empty median" true (Ledger.median [] = 0.0);
  check_bool "odd median" true (Ledger.median [ 3.0; 1.0; 2.0 ] = 2.0);
  check_bool "even median" true (Ledger.median [ 4.0; 1.0; 3.0; 2.0 ] = 2.5);
  let parse j =
    match Ledger.of_json j with
    | Some r -> r
    | None -> Alcotest.fail "of_json rejected a fresh record"
  in
  let records =
    List.map parse
      [
        mk_run ~wall:1.0 0;
        mk_run ~wall:2.0 1;
        mk_run ~wall:10.0 2;
        mk_run ~engine:"bitblast" ~wall:0.5 3;
      ]
  in
  let nth = List.nth records in
  check_bool "outlier flagged slow" true (Ledger.slow records (nth 2));
  check_bool "at-median run not slow" false (Ledger.slow records (nth 1));
  check_bool "fastest not slow" false (Ledger.slow records (nth 0));
  check_bool "a key's only record is never slow" false
    (Ledger.slow records (nth 3));
  check_bool "of_json rejects foreign schema" true
    (Ledger.of_json (Json.Obj [ ("schema", Json.Str "other/1") ]) = None)

(* ---- trace-diff ---- *)

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
  close_out oc

let header7 = "{\"ev\":\"header\",\"t\":0,\"schema\":\"rtlsat.trace/7\"}"

let decide ~t ~var ~lvl =
  Printf.sprintf
    "{\"ev\":\"decide\",\"t\":%g,\"kind\":\"activity\",\"lvl\":%d,\"var\":%d}" t
    lvl var

let test_trace_diff_divergence () =
  let old_file = Filename.temp_file "rtlsat_tdo" ".jsonl" in
  let new_file = Filename.temp_file "rtlsat_tdn" ".jsonl" in
  write_lines old_file
    [
      header7;
      decide ~t:0.1 ~var:1 ~lvl:1;
      decide ~t:0.2 ~var:2 ~lvl:2;
      "{\"ev\":\"conflict\",\"t\":0.3,\"lvl\":2,\"bt\":1,\"len\":3}";
      "{\"ev\":\"phases\",\"t\":0.9,\"self_s\":{\"bcp\":0.5,\"icp\":0.1}}";
      "{\"ev\":\"done\",\"t\":1.0,\"result\":\"unsat\",\"conflicts\":1,\"decisions\":2}";
    ];
  write_lines new_file
    [
      header7;
      decide ~t:0.1 ~var:1 ~lvl:1;
      decide ~t:0.2 ~var:7 ~lvl:2;
      "{\"ev\":\"phases\",\"t\":0.4,\"self_s\":{\"bcp\":0.2,\"icp\":0.1}}";
      "{\"ev\":\"done\",\"t\":0.5,\"result\":\"sat\",\"conflicts\":0,\"decisions\":2}";
    ];
  let d = Trace_diff.diff ~old_file ~new_file in
  Sys.remove old_file;
  Sys.remove new_file;
  check_bool "old schema" true (d.Trace_diff.old_side.Trace_diff.schema = Some "rtlsat.trace/7");
  check_bool "verdicts read" true
    (d.Trace_diff.old_side.Trace_diff.verdict = Some "unsat"
     && d.Trace_diff.new_side.Trace_diff.verdict = Some "sat");
  check_bool "verdict divergence detected" true d.Trace_diff.verdict_diverged;
  check_int "exit 1 on verdict flip" 1 (Trace_diff.exit_code d);
  (match d.Trace_diff.first with
   | Some dv ->
     check_int "diverges at the second decision" 1 dv.Trace_diff.index;
     check_bool "old key names var 2" true
       (match dv.Trace_diff.older with
        | Some k ->
          let part = "var=2" in
          let n = String.length k and l = String.length part in
          let rec find i =
            i + l <= n && (String.sub k i l = part || find (i + 1))
          in
          find 0
        | None -> false)
   | None -> Alcotest.fail "no divergence found");
  check_bool "phase delta visible" true
    (List.assoc_opt "bcp" d.Trace_diff.old_side.Trace_diff.phases = Some 0.5)

let test_trace_diff_identical () =
  let f = Filename.temp_file "rtlsat_tdi" ".jsonl" in
  write_lines f
    [
      header7;
      decide ~t:0.1 ~var:1 ~lvl:1;
      "{\"ev\":\"done\",\"t\":0.2,\"result\":\"sat\",\"conflicts\":0,\"decisions\":1}";
    ];
  let d = Trace_diff.diff ~old_file:f ~new_file:f in
  Sys.remove f;
  check_bool "no divergence" true (d.Trace_diff.first = None);
  check_bool "verdicts agree" false d.Trace_diff.verdict_diverged;
  check_int "exit 0" 0 (Trace_diff.exit_code d)

let test_trace_diff_truncated () =
  (* one trace is a strict prefix of the other: the divergence is the
     length difference, and a missing done is a verdict divergence *)
  let old_file = Filename.temp_file "rtlsat_tdt" ".jsonl" in
  let new_file = Filename.temp_file "rtlsat_tdt" ".jsonl" in
  write_lines old_file
    [
      header7;
      decide ~t:0.1 ~var:1 ~lvl:1;
      decide ~t:0.2 ~var:2 ~lvl:2;
      "{\"ev\":\"done\",\"t\":0.3,\"result\":\"sat\",\"conflicts\":0,\"decisions\":2}";
    ];
  write_lines new_file [ header7; decide ~t:0.1 ~var:1 ~lvl:1 ];
  let d = Trace_diff.diff ~old_file ~new_file in
  Sys.remove old_file;
  Sys.remove new_file;
  (match d.Trace_diff.first with
   | Some dv ->
     check_int "diverges where the short trace ends" 1 dv.Trace_diff.index;
     check_bool "new side ended" true (dv.Trace_diff.newer = None);
     check_bool "old side still has the event" true (dv.Trace_diff.older <> None)
   | None -> Alcotest.fail "prefix not reported as divergence");
  check_bool "missing done diverges the verdict" true d.Trace_diff.verdict_diverged;
  check_int "exit 1" 1 (Trace_diff.exit_code d)

(* ---- bench-history ---- *)

let mk_bench_artifact ~generated_at rows =
  let run (engine, verdict, time) =
    Json.Obj
      [
        ("engine", Json.Str engine);
        ("verdict", Json.Str verdict);
        ("time_s", Json.Float time);
      ]
  in
  let row (instance, runs) =
    Json.Obj
      [
        ("instance", Json.Str instance);
        ("runs", Json.Arr (List.map run runs));
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str "rtlsat.bench/1");
      ("generated_at", Json.Str generated_at);
      ( "sections",
        Json.Obj
          [ ("table2", Json.Obj [ ("rows", Json.Arr (List.map row rows)) ]) ]
      );
    ]

let test_bench_history_aggregation () =
  let a =
    mk_bench_artifact ~generated_at:"2026-08-01T00:00:00Z"
      [
        ("i1", [ ("hdpll", "unsat", 1.0); ("bitblast", "timeout", 5.0) ]);
        ("i2", [ ("hdpll", "sat", 0.5) ]);
      ]
  in
  let b =
    mk_bench_artifact ~generated_at:"2026-08-02T00:00:00Z"
      [
        ("i1", [ ("hdpll", "unsat", 0.8); ("bitblast", "abort", 0.1) ]);
        ("i2", [ ("hdpll", "sat", 0.4) ]);
      ]
  in
  let points = Report.bench_history [ ("old", a); ("new", b) ] in
  (match points with
   | [ p1; p2 ] ->
     check_string "order preserved" "old" p1.Report.hp_label;
     check_int "runs" 3 p1.Report.hp_runs;
     check_int "solved" 2 p1.Report.hp_solved;
     check_int "timeouts" 1 p1.Report.hp_timeouts;
     check_int "aborts" 0 p1.Report.hp_aborts;
     check_bool "total time" true (abs_float (p1.Report.hp_total_time -. 6.5) < 1e-9);
     check_int "new aborts" 1 p2.Report.hp_aborts;
     check_int "new timeouts" 0 p2.Report.hp_timeouts
   | l -> Alcotest.fail (Printf.sprintf "%d points" (List.length l)));
  match Report.bench_history_json points with
  | Json.Obj fields ->
    check_bool "schema" true
      (List.assoc_opt "schema" fields
       = Some (Json.Str "rtlsat.bench_history/1"));
    (match Option.bind (List.assoc_opt "sections" fields) Json.get_obj with
     | Some [ ("table2", Json.Arr pts) ] -> check_int "points in json" 2 (List.length pts)
     | _ -> Alcotest.fail "sections shape")
  | _ -> Alcotest.fail "not an object"

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "non-finite floats" `Quick test_json_non_finite;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "hist",
        [
          Alcotest.test_case "buckets" `Quick test_hist_buckets;
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "bad limits" `Quick test_hist_bad_limits;
        ] );
      ( "obs",
        [
          Alcotest.test_case "span self time" `Quick test_span_self_time;
          Alcotest.test_case "span exception safety" `Quick
            test_span_exception_safe;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "disabled handle is inert" `Quick
            test_disabled_is_inert;
          Alcotest.test_case "snapshot json schema" `Quick
            test_snapshot_json_schema;
        ] );
      ( "forensics",
        [
          Alcotest.test_case "stall detection" `Quick test_stall_detection;
          Alcotest.test_case "stall preconditions" `Quick
            test_stall_needs_wide_domain_and_tiny_shave;
          Alcotest.test_case "attribution" `Quick test_forensics_attribution;
          Alcotest.test_case "attribution stable across runs" `Quick
            test_attribution_stable_across_runs;
          Alcotest.test_case "w61 stall + profile (splits off)" `Quick
            test_w61_stall_and_profile;
          Alcotest.test_case "w61 cured by splits in all configs" `Quick
            test_w61_split_cures_all_configs;
          Alcotest.test_case "split decisions" `Quick test_split_decisions_unit;
          Alcotest.test_case "split determinism + off-switch" `Quick
            test_split_determinism_and_off;
          Alcotest.test_case "profile v1 warning" `Quick test_profile_v1_warning;
        ] );
      ( "bench-diff",
        [
          Alcotest.test_case "self-diff clean" `Quick test_bench_diff_self_clean;
          Alcotest.test_case "slowdown threshold" `Quick
            test_bench_diff_flags_slowdown;
          Alcotest.test_case "verdict changes" `Quick test_bench_diff_verdicts;
          Alcotest.test_case "unmatched keys" `Quick test_bench_diff_unmatched;
        ] );
      ( "integration",
        [
          Alcotest.test_case "trace round trip" `Quick test_trace_round_trip;
          Alcotest.test_case "determinism under observation" `Quick
            test_observation_does_not_change_solve;
          Alcotest.test_case "solve json shape" `Quick test_solve_json_shape;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "heartbeat rates" `Quick test_heartbeat_rates;
          Alcotest.test_case "heartbeat dt guard" `Quick test_heartbeat_dt_guard;
          Alcotest.test_case "monitor view fold" `Quick test_heartbeat_view;
          Alcotest.test_case "monitor view v7 gc fields" `Quick
            test_heartbeat_view_v7;
          Alcotest.test_case "recorder ring" `Quick test_recorder_ring;
          Alcotest.test_case "recorder dump round trip" `Quick
            test_recorder_dump_roundtrip;
          Alcotest.test_case "flight dump through obs" `Quick
            test_flight_dump_through_obs;
          Alcotest.test_case "overhead guard" `Slow test_overhead_guard;
          Alcotest.test_case "openmetrics exposition" `Quick
            test_openmetrics_exposition;
          Alcotest.test_case "openmetrics solve report" `Quick
            test_openmetrics_solve_report;
        ] );
      ( "gc-telemetry",
        [
          Alcotest.test_case "snapshot mem + phase alloc" `Quick
            test_snapshot_mem;
          Alcotest.test_case "heartbeat gc fields" `Quick
            test_heartbeat_gc_fields;
          Alcotest.test_case "openmetrics gc gauges" `Quick
            test_openmetrics_gc_gauges;
        ] );
      ( "env",
        [ Alcotest.test_case "fingerprint" `Quick test_env_fingerprint ] );
      ( "ledger",
        [
          Alcotest.test_case "round trip + torn tail" `Quick
            test_ledger_round_trip;
          Alcotest.test_case "median + slow flag" `Quick
            test_ledger_median_slow;
        ] );
      ( "trace-diff",
        [
          Alcotest.test_case "first divergence + verdict flip" `Quick
            test_trace_diff_divergence;
          Alcotest.test_case "identical traces" `Quick test_trace_diff_identical;
          Alcotest.test_case "truncated trace" `Quick test_trace_diff_truncated;
        ] );
      ( "trace-versions",
        [
          Alcotest.test_case "dispatch table" `Quick test_trace_version_table;
          Alcotest.test_case "profile v1..v8 fixtures" `Quick
            test_profile_every_version;
          Alcotest.test_case "unsupported version rejected" `Quick
            test_profile_unsupported_version;
        ] );
      ( "bench-history",
        [
          Alcotest.test_case "aggregation" `Quick test_bench_history_aggregation;
        ] );
    ]
