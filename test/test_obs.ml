(* Tests for the observability layer: JSON emission/parsing, bounded
   histograms, span timers, counters, the JSON-lines trace sink, and —
   most importantly — that enabling observability does not change what
   the solver does. *)

module Json = Rtlsat_obs.Json
module Hist = Rtlsat_obs.Hist
module Trace = Rtlsat_obs.Trace
module Obs = Rtlsat_obs.Obs
module Registry = Rtlsat_itc99.Registry
module Bmc = Rtlsat_bmc.Bmc
module Unroll = Rtlsat_bmc.Unroll
module E = Rtlsat_constr.Encode
module Solver = Rtlsat_core.Solver
module Engines = Rtlsat_harness.Engines
module Report = Rtlsat_harness.Report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---- JSON ---- *)

let test_json_round_trip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("t", Json.Bool true);
        ("f", Json.Bool false);
        ("i", Json.Int (-42));
        ("x", Json.Float 1.5);
        ("s", Json.Str "a\"b\\c\n\t \xc3\xa9");
        ("a", Json.Arr [ Json.Int 1; Json.Str "two"; Json.Arr [] ]);
        ("o", Json.Obj [ ("nested", Json.Obj []) ]);
      ]
  in
  Alcotest.(check bool) "round trip" true (Json.of_string (Json.to_string v) = v)

let test_json_escapes () =
  check_string "control chars escaped" "\"\\u0001\\n\""
    (Json.to_string (Json.Str "\x01\n"));
  (match Json.of_string "\"\\u00e9\"" with
   | Json.Str s -> check_string "\\u00e9 is UTF-8 e-acute" "\xc3\xa9" s
   | _ -> Alcotest.fail "expected string");
  (* surrogate pair: U+1D11E (musical G clef) *)
  (match Json.of_string "\"\\ud834\\udd1e\"" with
   | Json.Str s -> check_string "surrogate pair" "\xf0\x9d\x84\x9e" s
   | _ -> Alcotest.fail "expected string")

let test_json_non_finite () =
  check_string "nan -> null" "null" (Json.to_string (Json.Float nan));
  check_string "inf -> null" "null" (Json.to_string (Json.Float infinity))

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  check_bool "trailing garbage" true (bad "1 2");
  check_bool "unterminated string" true (bad "\"abc");
  check_bool "bare word" true (bad "tru");
  check_bool "missing value" true (bad "{\"a\":}");
  check_bool "trailing comma" true (bad "[1,]")

let test_json_accessors () =
  let v = Json.of_string "{\"a\": [1, 2.5], \"b\": \"x\"}" in
  check_bool "member a" true (Json.member "a" v <> None);
  check_bool "member missing" true (Json.member "z" v = None);
  (match Json.member "a" v with
   | Some (Json.Arr [ one; two ]) ->
     check_bool "int" true (Json.get_int one = Some 1);
     check_bool "int promotes" true (Json.get_float one = Some 1.0);
     check_bool "float" true (Json.get_float two = Some 2.5);
     check_bool "float is not int" true (Json.get_int two = None)
   | _ -> Alcotest.fail "expected 2-array");
  check_bool "string" true
    (Option.bind (Json.member "b" v) Json.get_string = Some "x")

(* ---- histograms ---- *)

let test_hist_buckets () =
  let h = Hist.create [| 1; 2; 4 |] in
  List.iter (Hist.observe h) [ 0; 1; 2; 3; 4; 5; 100 ];
  let s = Hist.summary h in
  check_int "n" 7 s.Hist.n;
  check_int "total" 115 s.Hist.total;
  check_int "vmin" 0 s.Hist.vmin;
  check_int "vmax" 100 s.Hist.vmax;
  Alcotest.(check (list (pair string int)))
    "bucket counts"
    [ ("<=1", 2); ("<=2", 1); ("<=4", 2); (">4", 2) ]
    s.Hist.buckets

let test_hist_empty () =
  let s = Hist.summary (Hist.create [| 8 |]) in
  check_int "n" 0 s.Hist.n;
  check_int "vmin" 0 s.Hist.vmin;
  Alcotest.(check (float 0.0)) "mean" 0.0 s.Hist.mean

let test_hist_bad_limits () =
  check_bool "non-increasing limits rejected" true
    (match Hist.create [| 2; 2 |] with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* ---- spans, counters, snapshots ---- *)

let test_span_self_time () =
  let t = Obs.create () in
  let spin_until dt =
    let t0 = Unix.gettimeofday () in
    while Unix.gettimeofday () -. t0 < dt do () done
  in
  Obs.span t Obs.Bcp (fun () ->
      spin_until 0.01;
      Obs.span t Obs.Icp (fun () -> spin_until 0.01));
  let s = Obs.snapshot t in
  let self name =
    let _, v, _ = List.find (fun (n, _, _) -> n = name) s.Obs.phases in
    v
  in
  let calls name =
    let _, _, c = List.find (fun (n, _, _) -> n = name) s.Obs.phases in
    c
  in
  check_int "bcp entered once" 1 (calls "bcp");
  check_int "icp entered once" 1 (calls "icp");
  check_bool "icp got its own time" true (self "icp" >= 0.009);
  check_bool "bcp excludes nested icp" true (self "bcp" < 0.015);
  check_bool "phases sum within wall" true
    (List.fold_left (fun acc (_, v, _) -> acc +. v) 0.0 s.Obs.phases
     <= s.Obs.wall +. 1e-6)

let test_span_exception_safe () =
  let t = Obs.create () in
  (match
     Obs.span t Obs.Bcp (fun () ->
         Obs.span_enter t Obs.Icp;
         (* simulate the solver unwinding through a conflict without
            closing the inner span *)
         failwith "conflict")
   with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "expected the exception to propagate");
  check_bool "stack fully unwound" true (t.Obs.stack = []);
  (* the handle still works afterwards *)
  Obs.span t Obs.Fme (fun () -> ());
  let s = Obs.snapshot t in
  let calls name =
    let _, _, c = List.find (fun (n, _, _) -> n = name) s.Obs.phases in
    c
  in
  check_int "fme span after unwind" 1 (calls "fme")

let test_counters () =
  let t = Obs.create () in
  check_int "untouched counter" 0 (Obs.counter t "x");
  Obs.incr t "x";
  Obs.add t "x" 4;
  Obs.incr t "y";
  check_int "x" 5 (Obs.counter t "x");
  check_int "y" 1 (Obs.counter t "y");
  let s = Obs.snapshot t in
  Alcotest.(check (list (pair string int)))
    "sorted counters" [ ("x", 5); ("y", 1) ] s.Obs.counter_values

let test_disabled_is_inert () =
  let t = Obs.disabled in
  Obs.incr t "x";
  Obs.observe_learned_len t 3;
  Obs.span t Obs.Bcp (fun () -> ());
  Obs.event t "decide" [ ("var", Json.Int 1) ];
  let s = Obs.snapshot t in
  check_int "no counters" 0 (List.length s.Obs.counter_values);
  check_bool "no phase time" true
    (List.for_all (fun (_, v, c) -> v = 0.0 && c = 0) s.Obs.phases);
  check_int "no trace" 0 s.Obs.trace_events

let test_snapshot_json_schema () =
  let t = Obs.create () in
  Obs.span t Obs.Encode (fun () -> ());
  Obs.incr t "fme.calls";
  let j = Obs.snapshot_json (Obs.snapshot t) in
  (* must survive a round trip through text *)
  let j = Json.of_string (Json.to_string j) in
  check_bool "wall_s" true
    (Option.bind (Json.member "wall_s" j) Json.get_float <> None);
  let phases = Json.member "phases" j in
  check_bool "all eight phases present" true
    (List.for_all
       (fun ph ->
          Option.bind phases (Json.member (Obs.phase_name ph)) <> None)
       Obs.all_phases);
  check_bool "histograms" true (Json.member "histograms" j <> None);
  check_bool "counters carried" true
    (Option.bind
       (Option.bind (Json.member "counters" j) (Json.member "fme.calls"))
       Json.get_int
     = Some 1)

(* ---- trace round trip on a tiny instance ---- *)

let solve_instance ?obs ?(collect = false) () =
  (* b13_1(10): small, UNSAT, but needs real decisions and conflicts *)
  let inst = Registry.instance ~circuit:"b13" ~prop:"1" ~bound:10 in
  let enc = E.encode (Unroll.combo inst.Bmc.unrolled) in
  E.assume_bool enc inst.Bmc.violation true;
  let options =
    {
      Solver.hdpll_sp with
      Solver.collect_learned = collect;
      Solver.obs = (match obs with Some o -> o | None -> Obs.disabled);
    }
  in
  Solver.solve ~options enc

let test_trace_round_trip () =
  let path = Filename.temp_file "rtlsat_trace" ".jsonl" in
  let obs = Obs.create ~trace:(Trace.to_file path) () in
  let o = solve_instance ~obs () in
  check_bool "unsat" true (o.Solver.result = Solver.Unsat);
  Obs.close obs;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  check_bool "trace non-empty" true (lines <> []);
  let evs =
    List.map
      (fun line ->
         let j = Json.of_string line in
         check_bool "has t" true
           (Option.bind (Json.member "t" j) Json.get_float <> None);
         match Option.bind (Json.member "ev" j) Json.get_string with
         | Some ev -> ev
         | None -> Alcotest.fail "event without \"ev\"")
      lines
  in
  check_bool "saw decisions" true (List.mem "decide" evs);
  check_bool "saw conflicts" true (List.mem "conflict" evs);
  check_bool "saw learned clauses" true (List.mem "learn" evs);
  check_string "last event is done" "done" (List.nth evs (List.length evs - 1));
  check_int "sink counted every line" (List.length lines)
    (Obs.snapshot obs).Obs.trace_events;
  Sys.remove path

(* ---- determinism: observability must not change the solve ---- *)

let test_observation_does_not_change_solve () =
  let plain = solve_instance ~collect:true () in
  let path = Filename.temp_file "rtlsat_trace" ".jsonl" in
  let obs = Obs.create ~trace:(Trace.to_file path) () in
  let observed = solve_instance ~obs ~collect:true () in
  Obs.close obs;
  Sys.remove path;
  check_bool "same result" true (plain.Solver.result = observed.Solver.result);
  check_int "same decisions" plain.Solver.stats.Solver.decisions
    observed.Solver.stats.Solver.decisions;
  check_int "same conflicts" plain.Solver.stats.Solver.conflicts
    observed.Solver.stats.Solver.conflicts;
  check_int "same propagations" plain.Solver.stats.Solver.propagations
    observed.Solver.stats.Solver.propagations;
  check_bool "same learned clauses, same order" true
    (plain.Solver.learned_clauses = observed.Solver.learned_clauses)

(* ---- the report serializers ---- *)

let test_solve_json_shape () =
  let obs = Obs.create () in
  let inst = Registry.instance ~circuit:"b01" ~prop:"1" ~bound:5 in
  let r = Engines.run_instance ~timeout:60.0 ~obs Engines.Hdpll_sp inst in
  let j =
    Json.of_string
      (Json.to_string (Report.solve_json ~instance:"b01_1(5)" ~bound:5
                         Engines.Hdpll_sp r))
  in
  check_bool "schema tag" true
    (Option.bind (Json.member "schema" j) Json.get_string
     = Some "rtlsat.solve/1");
  check_bool "verdict" true
    (Option.bind (Json.member "verdict" j) Json.get_string = Some "unsat");
  List.iter
    (fun key ->
       check_bool (key ^ " in stats") true
         (Option.bind (Json.member "stats" j) (Json.member key) <> None))
    [ "decisions"; "conflicts"; "propagations"; "learned"; "jconflicts";
      "final_checks"; "relations"; "learn_time_s"; "solve_time_s" ];
  check_bool "metrics attached" true (Json.member "metrics" j <> None)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "non-finite floats" `Quick test_json_non_finite;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "hist",
        [
          Alcotest.test_case "buckets" `Quick test_hist_buckets;
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "bad limits" `Quick test_hist_bad_limits;
        ] );
      ( "obs",
        [
          Alcotest.test_case "span self time" `Quick test_span_self_time;
          Alcotest.test_case "span exception safety" `Quick
            test_span_exception_safe;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "disabled handle is inert" `Quick
            test_disabled_is_inert;
          Alcotest.test_case "snapshot json schema" `Quick
            test_snapshot_json_schema;
        ] );
      ( "integration",
        [
          Alcotest.test_case "trace round trip" `Quick test_trace_round_trip;
          Alcotest.test_case "determinism under observation" `Quick
            test_observation_does_not_change_solve;
          Alcotest.test_case "solve json shape" `Quick test_solve_json_shape;
        ] );
    ]
