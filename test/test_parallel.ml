(* Parallel driver: the race primitive (deterministic fast/slow rig),
   portfolio / cube / sweep verdict equivalence with the sequential
   paths, the multi-domain ledger-append stress, snapshot merging and
   the clause exchange. *)

module Parallel = Rtlsat_parallel.Parallel
module Exchange = Rtlsat_parallel.Exchange
module Engines = Rtlsat_harness.Engines
module Registry = Rtlsat_itc99.Registry
module Obs = Rtlsat_obs.Obs
module Ledger = Rtlsat_obs.Ledger
module Json = Rtlsat_obs.Json
module Mono = Rtlsat_obs.Mono
module Gen = Rtlsat_fuzz.Gen
module Case = Rtlsat_fuzz.Case

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let verdict_eq a b =
  match (a, b) with
  | Engines.Sat, Engines.Sat
  | Engines.Unsat, Engines.Unsat
  | Engines.Timeout, Engines.Timeout -> true
  | Engines.Abort _, Engines.Abort _ -> true
  | _ -> false

(* ---- the race primitive, rigged deterministic ---- *)

let test_race_fast_wins () =
  (* fast finishes decisively after 50ms; slow only returns once it
     observes the cancel flag (or after a 10s safety net).  The winner
     must be fast, and slow must see the cancellation promptly. *)
  let observed = Atomic.make (-1.0) in
  let fast ~worker:_ ~cancel:_ =
    Unix.sleepf 0.05;
    `Fast
  in
  let slow ~worker:_ ~cancel =
    let t0 = Mono.now () in
    let rec loop () =
      if Atomic.get cancel then Atomic.set observed (Mono.now () -. t0)
      else if Mono.now () -. t0 > 10.0 then ()
      else begin
        Unix.sleepf 0.001;
        loop ()
      end
    in
    loop ();
    `Slow
  in
  let rr = Parallel.race ~decisive:(fun r -> r = `Fast) [| fast; slow |] in
  check_bool "fast wins" true (rr.Parallel.winner = Some 0);
  check_bool "winner entry recorded" true (rr.Parallel.entries.(0) = Some `Fast);
  check_bool "loser entry recorded" true (rr.Parallel.entries.(1) = Some `Slow);
  check_bool "slow observed cancellation" true (Atomic.get observed >= 0.0);
  check_bool "cancellation prompt (< 5s)" true (Atomic.get observed < 5.0)

let test_race_survives_exception () =
  (* a crashing worker leaves a None entry and does not steal the win *)
  let crash ~worker:_ ~cancel:_ = failwith "boom" in
  let ok ~worker:_ ~cancel:_ = `Ok in
  let rr = Parallel.race ~decisive:(fun _ -> true) [| crash; ok |] in
  check_bool "crashed entry is None" true (rr.Parallel.entries.(0) = None);
  check_bool "survivor wins" true (rr.Parallel.winner = Some 1)

(* ---- multi-domain ledger appends: no torn or interleaved lines ---- *)

let test_ledger_stress () =
  let path = Filename.temp_file "rtlsat_ledger_stress" ".jsonl" in
  Sys.remove path;
  let n_domains = 4 and n_appends = 64 in
  let doms =
    Array.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to n_appends - 1 do
              let record =
                Ledger.make ~subcommand:"test" ~argv:[ "test_parallel" ]
                  ~instance:(Printf.sprintf "d%d_i%d" d i)
                  ~engine:"none" ~options:"" ~verdict:"ok" ~wall_s:0.0
                  ~counters:[] ~artifacts:[] ()
              in
              Ledger.append ~path record
            done))
  in
  Array.iter Domain.join doms;
  (* every raw line is complete JSON — a torn or interleaved write
     would fail to parse *)
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       ignore (Json.of_string line)
     done
   with End_of_file -> ());
  close_in ic;
  check_int "one line per append" (n_domains * n_appends) !lines;
  (* and Ledger.load, which skips corrupt lines, must skip nothing *)
  let records = Ledger.load ~path in
  check_int "every record loads" (n_domains * n_appends) (List.length records);
  let ids = List.map (fun r -> r.Ledger.id) records in
  check_int "run ids are collision-free" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Sys.remove path

(* ---- portfolio == sequential verdicts (fixed-seed property) ---- *)

let prop_portfolio_equiv =
  QCheck.Test.make ~count:12 ~name:"portfolio -j 6 verdict == -j 1 verdict"
    QCheck.(int_range 0 10_000)
    (fun seed ->
       let cfg = { Gen.default with Gen.max_nodes = 10 } in
       let case = Gen.circuit ~cfg ~seed () in
       let req = Rtlsat_harness.Req.make ~timeout:60.0 () in
       let seq =
         Engines.run_instance ~req Engines.Hdpll_sp (Case.instance case)
       in
       (* the full six-engine lineup; workers share one instance, so
          this also exercises concurrent encoding of the same unroll *)
       let p =
         Parallel.portfolio ~req ~j:6 ~engine:Engines.Hdpll_sp
           (Case.instance case)
       in
       match (seq.Engines.verdict, p.Parallel.p_run.Engines.verdict) with
       | Engines.Sat, Engines.Sat -> true
       | Engines.Unsat, Engines.Unsat -> true
       (* a Sat portfolio verdict is witness-validated inside
          run_instance; disagreement on decided verdicts is the bug
          this property exists to catch *)
       | Engines.Timeout, _ | _, Engines.Timeout -> true
       | _ -> false)

(* ---- cube-and-conquer == sequential verdicts ---- *)

let test_cube_probe_decides () =
  (* easy instances: the probe settles them without cubing *)
  List.iter
    (fun (c, p, b, expect) ->
       let inst = Registry.instance ~circuit:c ~prop:p ~bound:b in
       let r =
         Parallel.cube_solve
           ~req:(Rtlsat_harness.Req.make ~timeout:60.0 ())
           ~j:2 ~engine:Engines.Hdpll_sp inst
       in
       check_bool
         (Printf.sprintf "%s_%s(%d) verdict" c p b)
         true
         (verdict_eq r.Parallel.c_verdict expect);
       check_int (Printf.sprintf "%s_%s(%d) no cubes" c p b) 0
         r.Parallel.c_cubes)
    [ ("b01", "1", 10, Engines.Sat); ("b02", "1", 10, Engines.Unsat) ]

let test_cube_conquers () =
  (* a tiny probe budget forces the cube path on an instance the
     engine needs ~0.5s for; all cubes must be refuted and the
     all-refuted verdict must equal the sequential Unsat *)
  let inst = Registry.instance ~circuit:"b13" ~prop:"2" ~bound:50 in
  let r =
    Parallel.cube_solve
      ~req:(Rtlsat_harness.Req.make ~timeout:120.0 ())
      ~probe_budget:0.1 ~j:2 ~engine:Engines.Hdpll_sp inst
  in
  check_bool "verdict unsat" true (verdict_eq r.Parallel.c_verdict Engines.Unsat);
  if r.Parallel.c_cubes > 0 then begin
    check_int "all cubes refuted" r.Parallel.c_cubes r.Parallel.c_refuted;
    check_bool "cube variables nominated" true (r.Parallel.c_vars <> [])
  end

(* ---- parallel sweep == sequential sweep ---- *)

let test_sweep_matches () =
  let source, props = Registry.build "b01" in
  let p = List.assoc "1" props in
  let bounds = [ 2; 4; 6; 8; 10; 12 ] in
  let req = Rtlsat_harness.Req.make ~timeout:60.0 () in
  let seqs = Engines.run_sweep ~req Engines.Hdpll_sp source ~prop:p ~bounds in
  let pars =
    Parallel.sweep ~req ~j:3 Engines.Hdpll_sp source ~prop:p ~bounds
  in
  check_int "same step count" (List.length seqs) (List.length pars);
  List.iter2
    (fun (a : Engines.sweep_step) (b : Engines.sweep_step) ->
       check_int "bound order preserved" a.Engines.sw_bound b.Engines.sw_bound;
       check_bool
         (Printf.sprintf "bound %d verdict" a.Engines.sw_bound)
         true
         (verdict_eq a.Engines.sw_run.Engines.verdict
            b.Engines.sw_run.Engines.verdict))
    seqs pars

(* ---- per-worker snapshots merge ---- *)

let test_merge_snapshots () =
  let o1 = Obs.create () and o2 = Obs.create () in
  Obs.incr o1 "shared";
  Obs.incr o2 "shared";
  Obs.incr o2 "shared";
  Obs.incr o2 "only2";
  Obs.span o1 Obs.Bcp (fun () -> ());
  Obs.span o2 Obs.Bcp (fun () -> ());
  Obs.observe_learned_len o1 2;
  Obs.observe_learned_len o2 3;
  let s1 = Obs.snapshot o1 and s2 = Obs.snapshot o2 in
  let m = Obs.merge_snapshots [ s1; s2 ] in
  check_int "counters sum" 3 (List.assoc "shared" m.Obs.counter_values);
  check_int "disjoint counters kept" 1 (List.assoc "only2" m.Obs.counter_values);
  let bcp_calls =
    List.fold_left
      (fun acc (name, _, calls) -> if name = "bcp" then calls else acc)
      0 m.Obs.phases
  in
  check_int "phase entries sum" 2 bcp_calls;
  let learned = List.assoc "learned_clause_len" m.Obs.histograms in
  check_int "histogram n sums" 2 learned.Rtlsat_obs.Hist.n;
  check_bool "wall is the max" true
    (m.Obs.wall >= s1.Obs.wall && m.Obs.wall >= s2.Obs.wall);
  let z = Obs.merge_snapshots [] in
  check_int "empty merge is all-zero" 0 (List.length z.Obs.counter_values)

(* ---- the clause exchange ---- *)

let test_exchange_basics () =
  let x = Exchange.create 8 in
  check_int "capacity" 8 (Exchange.capacity x);
  Exchange.push x 1;
  Exchange.push x 2;
  Exchange.push x 3;
  let got = ref [] in
  Exchange.drain x (fun v -> got := v :: !got);
  check_int "drained all" 3 (List.length !got);
  check_int "pushed counter" 3 (Exchange.pushed x);
  check_int "taken counter" 3 (Exchange.taken x);
  Exchange.drain x (fun v -> got := v :: !got);
  check_int "second drain finds nothing" 3 (List.length !got)

let test_exchange_lossy () =
  (* overfilling a 2-cell ring keeps at most 2 values; the push
     counter still records every offer *)
  let x = Exchange.create 2 in
  for i = 1 to 5 do Exchange.push x i done;
  let got = ref [] in
  Exchange.drain x (fun v -> got := v :: !got);
  check_bool "at most capacity survives" true (List.length !got <= 2);
  check_int "all pushes counted" 5 (Exchange.pushed x)

let test_exchange_multidomain () =
  (* capacity above total pushes: the fetch-and-add cursor gives every
     push its own cell, so nothing is lost even across domains *)
  let n_domains = 4 and per = 100 in
  let x = Exchange.create 1024 in
  let doms =
    Array.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Exchange.push x ((d * per) + i)
            done))
  in
  Array.iter Domain.join doms;
  let got = ref [] in
  Exchange.drain x (fun v -> got := v :: !got);
  check_int "every push drained" (n_domains * per) (List.length !got);
  check_int "no duplicates" (n_domains * per)
    (List.length (List.sort_uniq compare !got))

let () =
  Alcotest.run "parallel"
    [
      ( "race",
        [
          Alcotest.test_case "fast wins, slow cancelled" `Quick
            test_race_fast_wins;
          Alcotest.test_case "worker exception tolerated" `Quick
            test_race_survives_exception;
        ] );
      ( "ledger",
        [ Alcotest.test_case "multi-domain appends" `Quick test_ledger_stress ]
      );
      Qutil.qsuite "equivalence" [ prop_portfolio_equiv ];
      ( "cube",
        [
          Alcotest.test_case "probe decides easy instances" `Quick
            test_cube_probe_decides;
          Alcotest.test_case "cubes refute a hard unsat" `Slow
            test_cube_conquers;
        ] );
      ( "sweep",
        [ Alcotest.test_case "bound-parallel == sequential" `Quick
            test_sweep_matches ] );
      ( "obs",
        [ Alcotest.test_case "merge_snapshots" `Quick test_merge_snapshots ] );
      ( "exchange",
        [
          Alcotest.test_case "push/drain" `Quick test_exchange_basics;
          Alcotest.test_case "lossy overwrite" `Quick test_exchange_lossy;
          Alcotest.test_case "multi-domain" `Quick test_exchange_multidomain;
        ] );
    ]
