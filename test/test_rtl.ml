(* Tests for the RTL IR: builder discipline, simulator semantics,
   structural analyses. *)

module Ir = Rtlsat_rtl.Ir
module N = Rtlsat_rtl.Netlist
module Sim = Rtlsat_rtl.Sim
module S = Rtlsat_rtl.Structure

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* a small combinational circuit: z = (a > b) ? a+b : a-b over 4-bit words *)
let build_combo () =
  let c = N.create "combo" in
  let a = N.input c ~name:"a" 4 in
  let b = N.input c ~name:"b" 4 in
  let gtb = N.gt c a b in
  let s = N.add c a b in
  let d = N.sub c a b in
  let z = N.mux c ~sel:gtb ~t:s ~e:d () in
  N.output c "z" z;
  (c, a, b, z)

let test_builder_widths () =
  let c = N.create "w" in
  let a = N.input c 4 and b = N.input c 3 in
  Alcotest.check_raises "add mismatch" (Invalid_argument "add: width mismatch")
    (fun () -> ignore (N.add c a b));
  let x = N.input c 1 in
  Alcotest.check_raises "and word" (Invalid_argument "and: Boolean operand expected")
    (fun () -> ignore (N.and_ c [ a; x ]));
  Alcotest.check_raises "1-ary or" (Invalid_argument "or: needs >= 2 operands")
    (fun () -> ignore (N.or_ c [ x ]));
  Alcotest.check_raises "const range" (Invalid_argument "Netlist.const: value out of range")
    (fun () -> ignore (N.const c ~width:3 8));
  Alcotest.check_raises "extract range" (Invalid_argument "extract: bad range")
    (fun () -> ignore (N.extract c a ~msb:4 ~lsb:0))

let test_derived_widths () =
  let c = N.create "w2" in
  let a = N.input c 4 and b = N.input c 4 in
  check_int "add wrap" 4 (N.add c a b).Ir.width;
  check_int "add ext" 5 (N.add_ext c a b).Ir.width;
  check_int "mulc 3" 6 (N.mul_const c 3 a).Ir.width;
  check_int "concat" 8 (N.concat c ~hi:a ~lo:b).Ir.width;
  check_int "extract" 2 (N.extract c a ~msb:2 ~lsb:1).Ir.width;
  check_int "shl" 6 (N.shl c a 2).Ir.width;
  check_int "shr" 4 (N.shr c a 2).Ir.width;
  check_int "cmp" 1 (N.lt c a b).Ir.width;
  check_int "zext" 7 (N.zext c a ~width:7).Ir.width

let test_sim_combo () =
  let c, a, b, z = build_combo () in
  let run av bv =
    let vals = Sim.eval c (Sim.initial_state c) ~inputs:[ (a, av); (b, bv) ] in
    Sim.value vals z
  in
  check_int "gt branch" ((9 + 3) land 15) (run 9 3);
  check_int "le branch" ((3 - 9) land 15) (run 3 9);
  check_int "eq branch" 0 (run 5 5)

let test_sim_ops () =
  let c = N.create "ops" in
  let a = N.input c ~name:"a" 4 in
  let b = N.input c ~name:"b" 4 in
  let nodes =
    [
      ("concat", N.concat c ~hi:a ~lo:b, fun x y -> (x lsl 4) lor y);
      ("extract", N.extract c a ~msb:2 ~lsb:1, fun x _ -> (x lsr 1) land 3);
      ("mulc", N.mul_const c 5 a, fun x _ -> 5 * x);
      ("shl", N.shl c a 2, fun x _ -> x lsl 2);
      ("shr", N.shr c a 2, fun x _ -> x lsr 2);
      ("zext", N.zext c a ~width:6, fun x _ -> x);
      ("bitand", N.bitand c a b, fun x y -> x land y);
      ("bitor", N.bitor c a b, fun x y -> x lor y);
      ("bitxor", N.bitxor c a b, fun x y -> x lxor y);
      ("sub", N.sub c a b, fun x y -> (x - y) land 15);
      ("addext", N.add_ext c a b, fun x y -> x + y);
    ]
  in
  for av = 0 to 15 do
    for bv = 0 to 15 do
      let vals = Sim.eval c (Sim.initial_state c) ~inputs:[ (a, av); (b, bv) ] in
      List.iter
        (fun (msg, n, f) ->
           check_int (Printf.sprintf "%s %d %d" msg av bv) (f av bv) (Sim.value vals n))
        nodes
    done
  done

let test_derived_gates () =
  let c = N.create "derived" in
  let a = N.input c ~name:"a" 1 and b = N.input c ~name:"b" 1 in
  let gates =
    [
      ("nand", N.nand_ c [ a; b ], fun x y -> 1 - (x land y));
      ("nor", N.nor_ c [ a; b ], fun x y -> 1 - (x lor y));
      ("xnor", N.xnor_ c a b, fun x y -> 1 - (x lxor y));
      ("implies", N.implies c a b, fun x y -> if x = 1 && y = 0 then 0 else 1);
    ]
  in
  let w = N.input c ~name:"w" 4 in
  let bit2 = N.bit c w 2 in
  for av = 0 to 1 do
    for bv = 0 to 1 do
      let vals = Sim.eval c (Sim.initial_state c) ~inputs:[ (a, av); (b, bv); (w, 13) ] in
      List.iter
        (fun (msg, n, f) ->
           check_int (Printf.sprintf "%s %d %d" msg av bv) (f av bv) (Sim.value vals n))
        gates;
      check_int "bit extraction" 1 (Sim.value vals bit2)
    done
  done

(* Sim vs bit-blast agreement on the corners the differential fuzzer
   stresses: width 61, wrapping adds at overflow, extract at the
   msb/lsb boundaries, shr flooring.  Each row pins the inputs to a
   point through the CNF encoding and compares every listed node's
   model value against the simulator. *)
let test_sim_vs_bitblast_edges () =
  let module BB = Rtlsat_baselines.Bitblast in
  let module I = Rtlsat_interval.Interval in
  let max61 = (1 lsl 61) - 1 in
  let rows =
    [
      ("w61 add wrap at max", 61, max61, 1, fun c a b -> [ N.add c a b ]);
      ("w61 sub underflow", 61, 0, max61, fun c a b -> [ N.sub c a b ]);
      ( "w61 cmp at max", 61, max61, max61 - 1,
        fun c a b -> [ N.le c a b; N.gt c a b; N.eq c a b ] );
      ( "add wrap overflow 4b", 4, 15, 1,
        fun c a b -> [ N.add c a b; N.add_ext c a b ] );
      ( "add wrap carry-free 4b", 4, 7, 8,
        fun c a b -> [ N.add c a b; N.add_ext c a b ] );
      ( "extract boundaries", 5, 21, 0,
        fun c a _ ->
          [
            N.extract c a ~msb:4 ~lsb:4; N.extract c a ~msb:0 ~lsb:0;
            N.extract c a ~msb:4 ~lsb:0; N.extract c a ~msb:3 ~lsb:1;
          ] );
      ("shr flooring", 5, 21, 0, fun c a _ -> [ N.shr c a 1; N.shr c a 2; N.shr c a 4 ]);
      ("w61 shr", 61, max61, 0, fun c a _ -> [ N.shr c a 32; N.shr c a 60 ]);
      ( "w61 extract msb", 61, max61 - 5, 0,
        fun c a _ -> [ N.extract c a ~msb:60 ~lsb:60; N.extract c a ~msb:60 ~lsb:31 ] );
    ]
  in
  List.iter
    (fun (name, w, av, bv, build) ->
       let c = N.create "edge" in
       let a = N.input c ~name:"a" w in
       let b = N.input c ~name:"b" w in
       let nodes = build c a b in
       List.iteri (fun i n -> N.output c (Printf.sprintf "o%d" i) n) nodes;
       let bb = BB.encode c in
       BB.assume_interval bb a (I.point av);
       BB.assume_interval bb b (I.point bv);
       match BB.solve bb with
       | BB.Sat ->
         let vals = Sim.eval c (Sim.initial_state c) ~inputs:[ (a, av); (b, bv) ] in
         List.iter
           (fun n ->
              check_int
                (Printf.sprintf "%s: %s" name (Ir.node_name n))
                (Sim.value vals n) (BB.node_value bb n))
           nodes
       | _ -> Alcotest.fail (name ^ ": point assignment must be sat"))
    rows

let test_pretty_printers () =
  let c, _, _, _ = build_combo () in
  let text = Format.asprintf "%a" Ir.pp_circuit c in
  check_bool "mentions circuit" true
    (String.length text > 0 && String.sub text 0 7 = "circuit");
  List.iter
    (fun needle ->
       check_bool ("mentions " ^ needle) true
         (let n = String.length text and m = String.length needle in
          let rec go i = i + m <= n && (String.sub text i m = needle || go (i + 1)) in
          go 0))
    [ "mux"; "add"; "cmp >"; "output z" ]

let test_sim_sequential () =
  (* 3-bit counter with enable; check wrap-around *)
  let c = N.create "counter" in
  let en = N.input c ~name:"en" 1 in
  let cnt = N.reg c ~name:"cnt" ~width:3 ~init:0 () in
  let next = N.mux c ~sel:en ~t:(N.inc c cnt) ~e:cnt () in
  N.connect cnt next;
  N.output c "cnt" cnt;
  let traces = Sim.run c ~inputs:(List.init 10 (fun i -> [ (en, if i = 4 then 0 else 1) ])) in
  let values = List.map (fun vals -> Sim.value vals cnt) traces in
  Alcotest.(check (list int)) "counter trace" [ 0; 1; 2; 3; 4; 4; 5; 6; 7; 0 ] values

let test_connect_errors () =
  let c = N.create "r" in
  let r = N.reg c ~width:2 ~init:0 () in
  let x = N.input c 3 in
  Alcotest.check_raises "width" (Invalid_argument "connect: width mismatch")
    (fun () -> N.connect r x);
  let y = N.input c 2 in
  N.connect r y;
  Alcotest.check_raises "double" (Invalid_argument "connect: register already connected")
    (fun () -> N.connect r y);
  Alcotest.check_raises "not reg" (Invalid_argument "connect: not a register")
    (fun () -> N.connect x x)

let test_levels () =
  let c, a, b, z = build_combo () in
  let lvl = S.levels c in
  check_int "input level" 0 lvl.(a.Ir.id);
  check_int "input level" 0 lvl.(b.Ir.id);
  check_int "mux is deepest" 2 lvl.(z.Ir.id)

let test_fanout () =
  let c, a, _, _ = build_combo () in
  let fo = S.fanout_counts c in
  (* a feeds gt, add, sub *)
  check_int "fanout a" 3 fo.(a.Ir.id)

let test_coi () =
  let c = N.create "coi" in
  let a = N.input c 4 and b = N.input c 4 in
  let s = N.add c a a in
  let t = N.sub c b b in
  let mark = S.coi c [ s ] in
  check_bool "a in coi" true mark.(a.Ir.id);
  check_bool "b not in coi" false mark.(b.Ir.id);
  check_bool "t not in coi" false mark.(t.Ir.id)

let test_coi_through_regs () =
  let c = N.create "coi_seq" in
  let a = N.input c 2 in
  let r = N.reg c ~width:2 ~init:0 () in
  N.connect r a;
  let z = N.inc c r in
  N.output c "z" z;
  let with_regs = S.coi ~through_regs:true c [ z ] in
  let without = S.coi ~through_regs:false c [ z ] in
  check_bool "a reached through reg" true with_regs.(a.Ir.id);
  check_bool "a cut at reg" false without.(a.Ir.id)

let test_predicates () =
  let c, a, b, _ = build_combo () in
  let roots = S.predicate_roots c in
  (* the comparator (which is also the mux select) is the only predicate *)
  check_int "one predicate root" 1 (List.length roots);
  let cone = S.predicate_cone c in
  check_bool "cmp in cone" true (List.for_all (fun n -> cone.(n.Ir.id)) roots);
  check_bool "a not in cone" false cone.(a.Ir.id);
  ignore b

let test_candidate_gates_order () =
  let c = N.create "cand" in
  let x = N.input c ~name:"x" 1 and y = N.input c ~name:"y" 1 in
  let g1 = N.and_ c [ x; y ] in
  let g2 = N.or_ c [ g1; x ] in
  let w = N.input c 3 in
  let z = N.mux c ~sel:g2 ~t:w ~e:(N.const c ~width:3 0) () in
  N.output c "z" z;
  let cands = S.candidate_gates c in
  check_int "two candidates" 2 (List.length cands);
  (* level order: g1 before g2 *)
  Alcotest.(check (list int)) "order" [ g1.Ir.id; g2.Ir.id ]
    (List.map (fun n -> n.Ir.id) cands)

let test_op_counts () =
  let c, _, _, _ = build_combo () in
  let arith, boolean = S.op_counts c in
  (* gt, add, sub, mux are arithmetic/word ops; no Boolean gates *)
  check_int "arith" 4 arith;
  check_int "bool" 0 boolean

let () =
  Alcotest.run "rtl"
    [
      ( "builder",
        [
          Alcotest.test_case "width checks" `Quick test_builder_widths;
          Alcotest.test_case "derived widths" `Quick test_derived_widths;
          Alcotest.test_case "connect errors" `Quick test_connect_errors;
        ] );
      ( "sim",
        [
          Alcotest.test_case "combo mux/cmp/add" `Quick test_sim_combo;
          Alcotest.test_case "all ops exhaustive" `Quick test_sim_ops;
          Alcotest.test_case "sequential counter" `Quick test_sim_sequential;
          Alcotest.test_case "sim vs bitblast edges" `Quick test_sim_vs_bitblast_edges;
          Alcotest.test_case "derived gates" `Quick test_derived_gates;
          Alcotest.test_case "pretty printers" `Quick test_pretty_printers;
        ] );
      ( "structure",
        [
          Alcotest.test_case "levels" `Quick test_levels;
          Alcotest.test_case "fanout" `Quick test_fanout;
          Alcotest.test_case "coi" `Quick test_coi;
          Alcotest.test_case "coi through regs" `Quick test_coi_through_regs;
          Alcotest.test_case "predicate roots/cone" `Quick test_predicates;
          Alcotest.test_case "candidate gates order" `Quick test_candidate_gates_order;
          Alcotest.test_case "op counts" `Quick test_op_counts;
        ] );
    ]
