(* Incremental solver sessions (Solver.Session): monotone appends,
   assumption push/pop semantics, carried-lemma counters, and the
   equivalence property — a bound sweep through one session must agree
   verdict-for-verdict with fresh per-bound solves in every HDPLL
   configuration and the bit-blast baseline, with Sat witnesses
   replayed through the simulator. *)

module P = Rtlsat_constr.Problem
module T = Rtlsat_constr.Types
module E = Rtlsat_constr.Encode
module Solver = Rtlsat_core.Solver
module Session = Rtlsat_core.Solver.Session
module Ir = Rtlsat_rtl.Ir
module N = Rtlsat_rtl.Netlist
module Bmc = Rtlsat_bmc.Bmc
module Unroll = Rtlsat_bmc.Unroll
module Engines = Rtlsat_harness.Engines
module Gen = Rtlsat_fuzz.Gen
module Case = Rtlsat_fuzz.Case
module Obs = Rtlsat_obs.Obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let result_tag = function
  | Solver.Sat _ -> "sat"
  | Solver.Unsat -> "unsat"
  | Solver.Timeout -> "timeout"

let check_result msg expected r = Alcotest.(check string) msg expected (result_tag r)

(* ---- monotone appends keep the session usable ---- *)

let test_monotone_appends () =
  let p = P.create () in
  let a = P.new_bool p ~name:"a" () in
  let b = P.new_bool p ~name:"b" () in
  P.add_clause p [| T.Pos a; T.Pos b |];
  let sess = Session.of_problem p in
  let r1 = Session.solve sess in
  check_result "initially sat" "sat" r1.Session.outcome.Solver.result;
  check_int "first call" 1 r1.Session.n_solves;
  (* appending new variables and clauses between calls must be picked
     up by the next solve *)
  let c = P.new_bool p ~name:"c" () in
  Session.add_clause sess [| T.Pos c |];
  Session.add_atom sess (T.Neg a);
  let r2 = Session.solve sess in
  check_result "still sat" "sat" r2.Session.outcome.Solver.result;
  (match r2.Session.outcome.Solver.result with
   | Solver.Sat m ->
     check_int "a forced off" 0 m.(a);
     check_int "b forced on" 1 m.(b);
     check_int "c forced on" 1 m.(c)
   | _ -> ());
  Session.add_atom sess (T.Neg b);
  let r3 = Session.solve sess in
  check_result "contradiction appended" "unsat" r3.Session.outcome.Solver.result;
  check_int "third call" 3 r3.Session.n_solves

(* ---- assumptions decide the prefix and pop after the call ---- *)

let test_assumptions_pop () =
  let p = P.create () in
  let a = P.new_bool p ~name:"a" () in
  let sess = Session.of_problem p in
  let under asm =
    (Session.solve ~assumptions:asm sess).Session.outcome.Solver.result
  in
  (match under [| T.Pos a |] with
   | Solver.Sat m -> check_int "assumed on" 1 m.(a)
   | r -> check_result "sat under Pos" "sat" r);
  (* the opposite assumption on the same session: nothing from the
     previous call may persist *)
  (match under [| T.Neg a |] with
   | Solver.Sat m -> check_int "assumed off" 0 m.(a)
   | r -> check_result "sat under Neg" "sat" r);
  (match under [||] with
   | Solver.Sat _ -> ()
   | r -> check_result "free solve stays sat" "sat" r)

let test_unsat_under_assumptions () =
  let p = P.create () in
  let a = P.new_bool p ~name:"a" () in
  P.add_clause p [| T.Pos a |];
  let sess = Session.of_problem p in
  let r1 = Session.solve ~assumptions:[| T.Neg a |] sess in
  check_result "unsat under conflicting assumption" "unsat"
    r1.Session.outcome.Solver.result;
  (* unsat-under-assumptions must not poison the session *)
  let r2 = Session.solve sess in
  check_result "sat without it" "sat" r2.Session.outcome.Solver.result

let test_word_assumptions () =
  let p = P.create () in
  let w = P.new_word p ~name:"w" (Rtlsat_interval.Interval.make 0 15) in
  let sess = Session.of_problem p in
  let r = Session.solve ~assumptions:[| T.Ge (w, 9); T.Le (w, 9) |] sess in
  (match r.Session.outcome.Solver.result with
   | Solver.Sat m -> check_int "interval assumption pins w" 9 m.(w)
   | res -> check_result "sat under interval" "sat" res);
  let r2 = Session.solve ~assumptions:[| T.Ge (w, 16) |] sess in
  check_result "empty interval is unsat" "unsat" r2.Session.outcome.Solver.result

(* ---- carried counters and per-call vs cumulative stats ---- *)

let test_carried_counters () =
  (* a BMC instance small enough to be instant but non-trivial *)
  let c = N.create "carried" in
  let x = N.input c ~name:"x" 8 in
  let r = N.reg c ~name:"r" ~width:8 ~init:0 () in
  N.connect r (N.add c r x);
  let prop = N.le c r (N.const c ~width:8 200) in
  N.output c "prop" prop;
  let sw = Bmc.sweep c ~prop () in
  let v1 = Bmc.sweep_violation sw ~bound:2 in
  let enc = E.encode (Unroll.combo (Bmc.sweep_unrolled sw)) in
  let sess = Session.create ~options:Solver.hdpll_sp enc in
  let r1 = Session.solve ~assumptions:[| T.Pos (E.var enc v1) |] sess in
  check_int "nothing carried into the first call" 0 r1.Session.carried_clauses;
  check_int "no relations carried either" 0 r1.Session.carried_relations;
  let v2 = Bmc.sweep_violation sw ~bound:4 in
  E.extend enc;
  let r2 = Session.solve ~assumptions:[| T.Pos (E.var enc v2) |] sess in
  check_bool "lemmas carried into the second call" true
    (r2.Session.carried_clauses >= 0);
  check_int "two calls" 2 r2.Session.n_solves;
  let cum = r2.Session.cumulative and per = r2.Session.outcome.Solver.stats in
  check_bool "per-call decisions within cumulative" true
    (per.Solver.decisions <= cum.Solver.decisions);
  check_bool "cumulative counts both calls" true
    (cum.Solver.decisions
     >= r1.Session.outcome.Solver.stats.Solver.decisions + per.Solver.decisions
        - cum.Solver.decisions || cum.Solver.decisions >= per.Solver.decisions);
  check_bool "cumulative time includes both calls" true
    (cum.Solver.solve_time >= per.Solver.solve_time)

(* session lifecycle counters surface through the obs layer *)
let test_session_obs_counters () =
  let obs = Obs.create () in
  let p = P.create () in
  let a = P.new_bool p () in
  P.add_clause p [| T.Pos a |];
  let sess =
    Session.of_problem ~options:{ Solver.default with Solver.obs } p
  in
  ignore (Session.solve sess);
  ignore (Session.solve sess);
  check_int "session.creates" 1 (Obs.counter obs "session.creates");
  check_int "session.solves" 2 (Obs.counter obs "session.solves");
  Obs.close obs

(* ---- equivalence property: one session per sweep vs fresh solves ---- *)

let sweep_engines =
  [
    Engines.Hdpll; Engines.Hdpll_s; Engines.Hdpll_sp; Engines.Hdpll_p;
    Engines.Bitblast;
  ]

let sweep_equivalence =
  QCheck.Test.make ~count:20
    ~name:"session sweep agrees with from-scratch solves (all engines)"
    QCheck.(small_nat)
    (fun seed ->
       let case =
         Gen.circuit ~seed
           ~cfg:{ Gen.default with Gen.max_nodes = 10; max_bound = 3 } ()
       in
       let bounds = [ 1; 2; 3; 4 ] in
       List.for_all
         (fun engine ->
            let req = Rtlsat_harness.Req.make ~timeout:2.0 () in
            let steps =
              Engines.run_sweep ~req engine case.Case.circuit
                ~prop:case.Case.prop ~semantics:case.Case.semantics ~bounds
            in
            List.for_all
              (fun (step : Engines.sweep_step) ->
                 let scratch =
                   Engines.run_instance ~req engine
                     (Bmc.make case.Case.circuit ~prop:case.Case.prop
                        ~bound:step.Engines.sw_bound
                        ~semantics:case.Case.semantics ())
                 in
                 (* witness replay is built into both paths: any Abort
                    is a failure.  Timeouts never count as
                    disagreement. *)
                 match
                   (step.Engines.sw_run.Engines.verdict, scratch.Engines.verdict)
                 with
                 | Engines.Abort _, _ | _, Engines.Abort _ -> false
                 | Engines.Timeout, _ | _, Engines.Timeout -> true
                 | a, b -> a = b)
              steps)
         sweep_engines)

let () =
  Alcotest.run "session"
    [
      ( "session",
        [
          Alcotest.test_case "monotone appends" `Quick test_monotone_appends;
          Alcotest.test_case "assumptions pop" `Quick test_assumptions_pop;
          Alcotest.test_case "unsat under assumptions" `Quick
            test_unsat_under_assumptions;
          Alcotest.test_case "word assumptions" `Quick test_word_assumptions;
          Alcotest.test_case "carried counters" `Quick test_carried_counters;
          Alcotest.test_case "obs counters" `Quick test_session_obs_counters;
        ] );
      Qutil.qsuite "sweep-properties" [ sweep_equivalence ];
    ]
