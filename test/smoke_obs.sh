#!/bin/sh
# Observability smoke test, standalone version of the rules in
# test/dune (for CI or by-hand checks):
#   1. solve a tiny instance with --stats-json, validate against the
#      rtlsat.solve/1 schema (forensics section included)
#   2. force the w61 ICP stall with a short deadline, check the v2
#      trace carries icp_stall, and profile it — the diagnosis must
#      name slow ICP convergence
#   3. bench-diff exit codes: self-diff clean, injected slowdown flagged
set -eu

here=$(dirname "$0")
root=$(cd "$here/.." && pwd)

dune build --root "$root" bin/rtlsat.exe test/validate_stats.exe test/check_trace.exe

rtlsat="$root/_build/default/bin/rtlsat.exe"

out=$(mktemp /tmp/rtlsat_stats.XXXXXX.json)
trace=$(mktemp /tmp/rtlsat_w61.XXXXXX.jsonl)
profile=$(mktemp /tmp/rtlsat_w61.XXXXXX.profile)
trap 'rm -f "$out" "$trace" "$profile"' EXIT

# 1. stats schema
"$rtlsat" solve -c b01 -p 1 -k 5 --stats-json "$out"
"$root/_build/default/test/validate_stats.exe" "$out"

# 2. stall forensics + trace-replay profiler
"$rtlsat" solve "$root/test/corpus/w61_wrap_corner.rtl" -e hdpll \
  --timeout 2 --trace "$trace"
"$root/_build/default/test/check_trace.exe" "$trace" icp_stall var name constr
"$rtlsat" profile "$trace" > "$profile"
grep -q "slow ICP convergence is the dominant behaviour" "$profile"

# 3. bench-diff exit-code contract
"$rtlsat" bench-diff "$root/test/fixtures/bench_a.json" \
  "$root/test/fixtures/bench_a.json"
if "$rtlsat" bench-diff "$root/test/fixtures/bench_a.json" \
  "$root/test/fixtures/bench_b.json"; then
  echo "FAIL: bench-diff did not flag the injected slowdown" >&2
  exit 1
fi

echo "smoke_obs: all checks passed"
