#!/bin/sh
# Observability smoke test: solve a tiny instance with --stats-json
# and validate the emitted JSON against the rtlsat.solve/1 schema.
# `dune runtest` runs the same two steps via the rule in test/dune;
# this script is the standalone version for CI or by-hand checks.
set -eu

here=$(dirname "$0")
root=$(cd "$here/.." && pwd)

dune build --root "$root" bin/rtlsat.exe test/validate_stats.exe

out=$(mktemp /tmp/rtlsat_stats.XXXXXX.json)
trap 'rm -f "$out"' EXIT

"$root/_build/default/bin/rtlsat.exe" solve -c b01 -p 1 -k 5 --stats-json "$out"
"$root/_build/default/test/validate_stats.exe" "$out"
