#!/bin/sh
# Observability smoke test, standalone version of the rules in
# test/dune (for CI or by-hand checks):
#   1. solve a tiny instance with --stats-json, validate against the
#      rtlsat.solve/1 schema (forensics section included)
#   2. force the w61 ICP stall with a short deadline, check the trace
#      carries icp_stall + heartbeat, and profile it — the diagnosis
#      must name slow ICP convergence
#   3. bench-diff exit codes: self-diff clean, injected slowdown flagged
#   4. rtlsat metrics: OpenMetrics exposition from a solve report
#   5. flight-recorder round trip: a --no-split timeout with no --trace
#      must still leave a dump that rtlsat profile diagnoses
#   6. cross-run ledger: solves append rtlsat.run/1 records (env
#      fingerprint included), rtlsat runs lists them, and trace-diff
#      exits 1 on the committed w61 verdict flip
set -eu

here=$(dirname "$0")
root=$(cd "$here/.." && pwd)

dune build --root "$root" bin/rtlsat.exe test/validate_stats.exe \
  test/check_trace.exe test/check_openmetrics.exe

rtlsat="$root/_build/default/bin/rtlsat.exe"

out=$(mktemp /tmp/rtlsat_stats.XXXXXX.json)
trace=$(mktemp /tmp/rtlsat_w61.XXXXXX.jsonl)
profile=$(mktemp /tmp/rtlsat_w61.XXXXXX.profile)
om=$(mktemp /tmp/rtlsat_metrics.XXXXXX.om)
flight=$(mktemp /tmp/rtlsat_w61.XXXXXX.flight)
ledger=$(mktemp /tmp/rtlsat_ledger.XXXXXX.jsonl)
trap 'rm -f "$out" "$trace" "$profile" "$om" "$flight" "$ledger"' EXIT

# 1. stats schema
"$rtlsat" solve -c b01 -p 1 -k 5 --no-ledger --stats-json "$out"
"$root/_build/default/test/validate_stats.exe" "$out"

# 2. stall forensics + trace-replay profiler
"$rtlsat" solve "$root/test/corpus/w61_wrap_corner.rtl" -e hdpll \
  --timeout 2 --no-ledger --trace "$trace"
"$root/_build/default/test/check_trace.exe" "$trace" icp_stall var name constr
"$rtlsat" profile "$trace" > "$profile"
grep -q "slow ICP convergence is the dominant behaviour" "$profile"

# 3. bench-diff exit-code contract
"$rtlsat" bench-diff "$root/test/fixtures/bench_a.json" \
  "$root/test/fixtures/bench_a.json"
if "$rtlsat" bench-diff "$root/test/fixtures/bench_a.json" \
  "$root/test/fixtures/bench_b.json"; then
  echo "FAIL: bench-diff did not flag the injected slowdown" >&2
  exit 1
fi

# 4. OpenMetrics exposition (rtlsat metrics on the step-1 report, and
#    --metrics-out straight from a solve); both must satisfy the
#    line-format checker
"$rtlsat" metrics "$out" -o "$om"
"$root/_build/default/test/check_openmetrics.exe" "$om"
"$rtlsat" solve -c b01 -p 1 -k 5 --metrics-out "$om" --no-ledger > /dev/null
"$root/_build/default/test/check_openmetrics.exe" "$om"

# 5. flight-recorder round trip: trace OFF, timeout -> exit 1 plus a
#    dump the profiler can read; icp_stall and heartbeat events must
#    survive the ring, and the diagnosis must still fire
if "$rtlsat" solve "$root/test/corpus/w61_wrap_corner.rtl" -e hdpll \
  --no-split --timeout 2 --no-ledger --flight-recorder "$flight" > /dev/null; then
  echo "FAIL: w61 --no-split did not time out (expected exit 1)" >&2
  exit 1
fi
"$root/_build/default/test/check_trace.exe" "$flight" icp_stall var name constr
"$root/_build/default/test/check_trace.exe" "$flight" heartbeat seq decisions pps
"$root/_build/default/test/check_trace.exe" "$flight" recorder recorded dropped cap
"$rtlsat" profile "$flight" > "$profile"
grep -q "slow ICP convergence is the dominant behaviour" "$profile"
grep -q "heartbeat" "$profile"

# 6. cross-run ledger round trip: two solves append two parseable
#    rtlsat.run/1 records with the environment fingerprint, rtlsat
#    runs reproduces them (text and rtlsat.runs/1 JSON), and
#    trace-diff on the committed divergent w61 traces names the first
#    divergent key event and exits 1 on the verdict flip
rm -f "$ledger"
"$rtlsat" solve -c b01 -p 1 -k 5 --ledger "$ledger" > /dev/null
"$rtlsat" solve -c b01 -p 1 -k 5 --ledger "$ledger" > /dev/null
[ "$(wc -l < "$ledger")" -eq 2 ]
grep -q '"schema":"rtlsat.run/1"' "$ledger"
grep -q '"git_rev"' "$ledger"
"$rtlsat" runs --ledger "$ledger" | grep -q "b01_1(5)"
"$rtlsat" runs --ledger "$ledger" --json | grep -q '"schema":"rtlsat.runs/1"'
"$rtlsat" runs --ledger "$ledger" --engine hdpll+s+p --last 1 --json \
  | grep -q '"engine":"hdpll+s+p"'
if "$rtlsat" trace-diff "$root/test/fixtures/w61_split_on.jsonl" \
  "$root/test/fixtures/w61_split_off.jsonl" > "$profile"; then
  echo "FAIL: trace-diff did not exit 1 on the verdict flip" >&2
  exit 1
fi
grep -q "first divergence at key event" "$profile"

echo "smoke_obs: all checks passed"
