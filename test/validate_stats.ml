(* Smoke validator for `rtlsat solve --stats-json` output: parses the
   file given on the command line and checks every key the schema
   (docs/OBSERVABILITY.md, "rtlsat.solve/1") promises.  Exits non-zero
   with a message on the first missing or ill-typed key. *)

module Json = Rtlsat_obs.Json
module Obs = Rtlsat_obs.Obs

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let require name = function Some v -> v | None -> fail "missing %s" name

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ -> fail "usage: validate_stats FILE"
  in
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let j =
    match Json.of_string (String.trim text) with
    | j -> j
    | exception Json.Parse_error m -> fail "%s is not valid JSON: %s" path m
  in
  let str name = require name (Option.bind (Json.member name j) Json.get_string) in
  if str "schema" <> "rtlsat.solve/1" then
    fail "unexpected schema %S" (str "schema");
  ignore (str "instance");
  ignore (str "engine");
  ignore (str "verdict");
  ignore (require "bound" (Option.bind (Json.member "bound" j) Json.get_int));
  ignore (require "time_s" (Option.bind (Json.member "time_s" j) Json.get_float));
  (* environment fingerprint: the artifact must be self-describing *)
  let env = require "env" (Json.member "env" j) in
  List.iter
    (fun key ->
       ignore
         (require ("env." ^ key)
            (Option.bind (Json.member key env) Json.get_string)))
    [ "git_rev"; "hostname"; "ocaml_version" ];
  ignore
    (require "env.word_size"
       (Option.bind (Json.member "word_size" env) Json.get_int));
  (match Json.member "git_dirty" env with
   | Some (Json.Bool _) -> ()
   | _ -> fail "env.git_dirty missing or not a bool");
  (* every §5 counter *)
  let stats = require "stats" (Json.member "stats" j) in
  List.iter
    (fun key ->
       ignore
         (require ("stats." ^ key)
            (Option.bind (Json.member key stats) Json.get_float)))
    [ "decisions"; "conflicts"; "propagations"; "learned"; "jconflicts";
      "final_checks"; "splits"; "relations"; "learn_time_s"; "solve_time_s" ];
  (* per-phase timings, all eight phases *)
  let metrics = require "metrics" (Json.member "metrics" j) in
  ignore
    (require "metrics.wall_s"
       (Option.bind (Json.member "wall_s" metrics) Json.get_float));
  let phases = require "metrics.phases" (Json.member "phases" metrics) in
  List.iter
    (fun ph ->
       let name = Obs.phase_name ph in
       let p = require ("metrics.phases." ^ name) (Json.member name phases) in
       ignore
         (require
            ("metrics.phases." ^ name ^ ".self_s")
            (Option.bind (Json.member "self_s" p) Json.get_float));
       ignore
         (require
            ("metrics.phases." ^ name ^ ".calls")
            (Option.bind (Json.member "calls" p) Json.get_int)))
    Obs.all_phases;
  ignore (require "metrics.histograms" (Json.member "histograms" metrics));
  (* GC/memory telemetry *)
  let mem = require "metrics.mem" (Json.member "mem" metrics) in
  List.iter
    (fun key ->
       ignore
         (require ("metrics.mem." ^ key)
            (Option.bind (Json.member key mem) Json.get_float)))
    [ "minor_words"; "major_words"; "promoted_words"; "heap_mb" ];
  List.iter
    (fun key ->
       ignore
         (require ("metrics.mem." ^ key)
            (Option.bind (Json.member key mem) Json.get_int)))
    [ "minor_collections"; "major_collections"; "compactions"; "heap_words";
      "top_heap_words" ];
  (* forensics: always present, arrays possibly empty *)
  let forensics = require "metrics.forensics" (Json.member "forensics" metrics) in
  ignore
    (require "metrics.forensics.stalls"
       (Option.bind (Json.member "stalls" forensics) Json.get_int));
  ignore
    (require "metrics.forensics.splits"
       (Option.bind (Json.member "splits" forensics) Json.get_int));
  let hot name =
    require ("metrics.forensics." ^ name)
      (Option.bind (Json.member name forensics) Json.get_list)
  in
  List.iter
    (fun hc ->
       List.iter
         (fun key ->
            ignore
              (require ("hot_constraints." ^ key)
                 (Option.bind (Json.member key hc) Json.get_float)))
         [ "constr"; "wakeups"; "narrows"; "shaved"; "time_s" ];
       ignore
         (require "hot_constraints.desc"
            (Option.bind (Json.member "desc" hc) Json.get_string)))
    (hot "hot_constraints");
  List.iter
    (fun hv ->
       List.iter
         (fun key ->
            ignore
              (require ("hot_vars." ^ key)
                 (Option.bind (Json.member key hv) Json.get_int)))
         [ "var"; "narrows"; "shaved" ];
       ignore
         (require "hot_vars.name"
            (Option.bind (Json.member "name" hv) Json.get_string)))
    (hot "hot_vars");
  Printf.printf "OK: %s conforms to rtlsat.solve/1\n" path
