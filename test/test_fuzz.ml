(* Tests for the differential fuzzing subsystem: generator coverage
   and determinism, case round-tripping, the shrinker, the oracle's
   certificates, and replay of the committed regression corpus. *)

module Ir = Rtlsat_rtl.Ir
module N = Rtlsat_rtl.Netlist
module Bmc = Rtlsat_bmc.Bmc
module Case = Rtlsat_fuzz.Case
module Gen = Rtlsat_fuzz.Gen
module Oracle = Rtlsat_fuzz.Oracle
module Shrink = Rtlsat_fuzz.Shrink
module Fuzz = Rtlsat_fuzz.Fuzz

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---- generator ---- *)

let test_gen_deterministic () =
  let a = Case.to_string (Gen.circuit ~seed:7 ()) in
  let b = Case.to_string (Gen.circuit ~seed:7 ()) in
  check_string "same seed, same case" a b;
  let c = Case.to_string (Gen.circuit ~seed:8 ()) in
  check_bool "different seed, different case" true (a <> c)

let op_tag (n : Ir.node) =
  match n.Ir.op with
  | Ir.Input -> "input"
  | Ir.Const _ -> "const"
  | Ir.Reg _ -> "reg"
  | Ir.Not _ -> "not"
  | Ir.And _ -> "and"
  | Ir.Or _ -> "or"
  | Ir.Xor _ -> "xor"
  | Ir.Mux _ -> "mux"
  | Ir.Add { wrap = true; _ } -> "add"
  | Ir.Add { wrap = false; _ } -> "addext"
  | Ir.Sub _ -> "sub"
  | Ir.Mul_const _ -> "mulc"
  | Ir.Cmp _ -> "cmp"
  | Ir.Concat _ -> "concat"
  | Ir.Extract _ -> "extract"
  | Ir.Zext _ -> "zext"
  | Ir.Shl _ -> "shl"
  | Ir.Shr _ -> "shr"
  | Ir.Bitand _ -> "bitand"
  | Ir.Bitor _ -> "bitor"
  | Ir.Bitxor _ -> "bitxor"

let all_tags =
  [
    "input"; "const"; "reg"; "not"; "and"; "or"; "xor"; "mux"; "add";
    "addext"; "sub"; "mulc"; "cmp"; "concat"; "extract"; "zext"; "shl";
    "shr"; "bitand"; "bitor"; "bitxor";
  ]

let test_gen_op_coverage () =
  (* across a handful of seeds every constructor must appear, as must
     the width edges 1 and 61 and all three BMC semantics *)
  let seen = Hashtbl.create 32 in
  let widths = Hashtbl.create 8 in
  let sems = Hashtbl.create 4 in
  for seed = 0 to 19 do
    let case = Gen.circuit ~seed () in
    List.iter
      (fun n ->
         Hashtbl.replace seen (op_tag n) ();
         Hashtbl.replace widths n.Ir.width ())
      (Ir.nodes case.Case.circuit);
    Hashtbl.replace sems case.Case.semantics ()
  done;
  List.iter
    (fun tag -> check_bool (tag ^ " generated") true (Hashtbl.mem seen tag))
    all_tags;
  check_bool "width 1 generated" true (Hashtbl.mem widths 1);
  check_bool "width 61 generated" true (Hashtbl.mem widths 61);
  check_int "all three semantics" 3 (Hashtbl.length sems)

let test_gen_well_typed () =
  (* the builders enforce the invariants; make sure generation and
     unrolling never raise across many seeds and configs *)
  List.iter
    (fun (seed, cfg) ->
       let case = Gen.circuit ~cfg ~seed () in
       let inst = Case.instance case in
       check_bool "bool violation" true (Ir.is_bool inst.Bmc.violation))
    [
      (0, Gen.default);
      (1, { Gen.default with Gen.max_width = 1 });
      (2, { Gen.default with Gen.max_regs = 0 });
      (3, { Gen.default with Gen.max_nodes = 4 });
      (4, { Gen.default with Gen.max_width = 2; max_nodes = 6 });
    ]

(* ---- case round-trip ---- *)

let test_case_roundtrip () =
  for seed = 0 to 4 do
    let case = Gen.circuit ~seed () in
    let text = Case.to_string case in
    let back = Case.of_string text in
    check_string
      (Printf.sprintf "seed %d round-trip" seed)
      text (Case.to_string back);
    check_int "bound" case.Case.bound back.Case.bound;
    check_bool "semantics" true (case.Case.semantics = back.Case.semantics)
  done

(* ---- shrinker ---- *)

let test_shrink_converges () =
  (* under an always-true predicate the shrinker must drive the case
     to the measure's floor: bound 1 and a tiny live cone *)
  let case = Gen.circuit ~seed:3 () in
  let small, steps = Shrink.shrink ~still_failing:(fun _ -> true) case in
  check_int "bound minimized" 1 small.Case.bound;
  check_bool "few live nodes" true (Shrink.node_count small <= 3);
  check_bool "steps spent" true (steps > 0 && steps <= 256);
  check_bool "cone shrank" true
    (Shrink.node_count small < Shrink.node_count case)

let test_shrink_preserves_predicate () =
  (* a non-trivial failure predicate: the live cone still contains a
     register.  Every intermediate acceptance re-validates it, so the
     result must satisfy it too. *)
  let has_reg c =
    List.exists
      (fun n -> match n.Ir.op with Ir.Reg _ -> true | _ -> false)
      (Ir.nodes (Shrink.prune c).Case.circuit)
  in
  let case = Gen.circuit ~seed:11 ~cfg:{ Gen.default with Gen.max_regs = 2 } () in
  if has_reg case then begin
    let small, _ = Shrink.shrink ~still_failing:has_reg case in
    check_bool "predicate preserved" true (has_reg small);
    check_bool "not larger" true
      (Shrink.node_count small <= Shrink.node_count case)
  end

let test_shrink_rejects_all () =
  (* if nothing else fails, the (pruned) input comes back unchanged *)
  let case = Gen.circuit ~seed:5 () in
  let pruned = Shrink.prune case in
  let small, _ =
    Shrink.shrink ~still_failing:(fun c -> Case.to_string c = Case.to_string pruned) case
  in
  check_string "fixed point" (Case.to_string pruned) (Case.to_string small)

(* ---- oracle ---- *)

let quick_engines =
  [ Oracle.Engines.Hdpll; Oracle.Engines.Hdpll_sp; Oracle.Engines.Bitblast ]

let test_oracle_sat_certificate () =
  let c = N.create "sat1" in
  let a = N.input c ~name:"a" 3 in
  let p = N.eq_const c a 6 in
  N.output c "prop" p;
  let case = Case.make c ~prop:p ~bound:1 ~semantics:Bmc.Final in
  let o = Oracle.check ~engines:quick_engines case in
  check_bool "no failure" true (o.Oracle.failure = None);
  check_bool "sat certified by replay" true (o.Oracle.cert = Oracle.Witness_replay)

let test_oracle_unsat_certificate () =
  let c = N.create "unsat1" in
  let a = N.input c ~name:"a" 2 in
  let p = N.le c a (N.const c ~width:2 3) in
  N.output c "prop" p;
  let case = Case.make c ~prop:p ~bound:1 ~semantics:Bmc.Final in
  let o = Oracle.check ~engines:quick_engines case in
  check_bool "no failure" true (o.Oracle.failure = None);
  check_bool "unsat certified exhaustively" true
    (o.Oracle.cert = Oracle.Exhaustive 4)

let test_oracle_violated () =
  (* the refutation search's own violation check mirrors witness_ok *)
  let c = N.create "viol" in
  let a = N.input c ~name:"a" 2 in
  let p = N.eq_const c a 2 in
  N.output c "prop" p;
  let case = Case.make c ~prop:p ~bound:2 ~semantics:Bmc.Any in
  let inst = Case.instance case in
  check_bool "a=2 everywhere holds" false (Oracle.violated inst [ [ 2 ]; [ 2 ] ]);
  check_bool "a=1 in frame 2 violates" true (Oracle.violated inst [ [ 2 ]; [ 1 ] ])

(* ---- campaign driver ---- *)

let test_fuzz_run () =
  let cfg =
    {
      Fuzz.default with
      Fuzz.count = 3;
      engines = quick_engines;
      gen = { Gen.default with Gen.max_nodes = 8 };
      obs = Rtlsat_obs.Obs.create ();
    }
  in
  let s = Fuzz.run cfg in
  check_int "all instances run" 3 s.Fuzz.instances;
  check_int "no failures" 0 (List.length s.Fuzz.failures);
  check_int "obs counter" 3 (Rtlsat_obs.Obs.counter cfg.Fuzz.obs "fuzz.instances");
  check_int "classified" 3 (s.Fuzz.sat + s.Fuzz.unsat + s.Fuzz.timeouts);
  match Fuzz.summary_json cfg s with
  | Rtlsat_obs.Json.Obj fields ->
    check_bool "schema tag" true
      (List.assoc_opt "schema" fields = Some (Rtlsat_obs.Json.Str "rtlsat.fuzz/1"))
  | _ -> Alcotest.fail "summary must be an object"

(* ---- corpus replay ---- *)

let corpus_cases () =
  (* dune runtest runs us next to the corpus; under `dune exec` fall
     back to the directory holding the test binary *)
  let dir =
    if Sys.file_exists "corpus" then "corpus"
    else Filename.concat (Filename.dirname Sys.executable_name) "corpus"
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".rtl")
  |> List.filter (fun f ->
       (* CORPUS_ONLY=substr narrows the replay when debugging a case *)
       match Sys.getenv_opt "CORPUS_ONLY" with
       | None -> true
       | Some s ->
         let n = String.length s and m = String.length f in
         let rec at i = i + n <= m && (String.sub f i n = s || at (i + 1)) in
         at 0)
  |> List.sort compare
  |> List.map (fun f -> (f, Case.of_file (Filename.concat dir f)))

(* ---- property: interval splitting never changes verdicts ---- *)

(* split-on vs split-off HDPLL vs the bit-blast oracle on random small
   circuits: every non-timeout verdict must agree, and a Sat answer is
   only reported after the model replayed through the simulator inside
   [run_instance] (a rejected witness surfaces as Abort and fails the
   property) *)
let split_verdict_agreement =
  QCheck.Test.make ~count:40 ~name:"split on/off agrees with bit-blast"
    QCheck.(small_nat)
    (fun seed ->
       let case =
         Gen.circuit ~seed ~cfg:{ Gen.default with Gen.max_nodes = 10 } ()
       in
       let inst = Case.instance case in
       let module E = Oracle.Engines in
       let run ?split engine =
         (E.run_instance
            ~req:(Rtlsat_harness.Req.make ~timeout:2.0 ?split ())
            engine inst)
           .E.verdict
       in
       let vs =
         [ run ~split:true E.Hdpll; run ~split:false E.Hdpll; run E.Bitblast ]
       in
       if List.exists (function E.Abort _ -> true | _ -> false) vs then false
       else
         match
           List.filter (function E.Sat | E.Unsat -> true | _ -> false) vs
         with
         | [] -> true (* timeouts never count as disagreement *)
         | v :: rest -> List.for_all (( = ) v) rest)

let test_corpus_replay () =
  let cases = corpus_cases () in
  if Sys.getenv_opt "CORPUS_ONLY" = None then
    check_bool "corpus is non-empty" true (List.length cases >= 5);
  List.iter
    (fun (file, case) ->
       Printf.eprintf "[corpus] %s\n%!" file;
       let o =
         Oracle.check ~req:(Rtlsat_harness.Req.make ~timeout:5.0 ()) case
       in
       match o.Oracle.failure with
       | None -> ()
       | Some _ ->
         Alcotest.fail (Printf.sprintf "%s: %s" file (Oracle.describe o)))
    cases

let () =
  Alcotest.run "fuzz"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "op coverage" `Quick test_gen_op_coverage;
          Alcotest.test_case "well-typed configs" `Quick test_gen_well_typed;
        ] );
      ("case", [ Alcotest.test_case "round-trip" `Quick test_case_roundtrip ]);
      ( "shrink",
        [
          Alcotest.test_case "converges" `Quick test_shrink_converges;
          Alcotest.test_case "preserves predicate" `Quick test_shrink_preserves_predicate;
          Alcotest.test_case "rejects all" `Quick test_shrink_rejects_all;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "sat certificate" `Quick test_oracle_sat_certificate;
          Alcotest.test_case "unsat certificate" `Quick test_oracle_unsat_certificate;
          Alcotest.test_case "violation check" `Quick test_oracle_violated;
        ] );
      ("driver", [ Alcotest.test_case "small campaign" `Quick test_fuzz_run ]);
      Qutil.qsuite "split-properties" [ split_verdict_agreement ];
      ("corpus", [ Alcotest.test_case "replay" `Slow test_corpus_replay ]);
    ]
