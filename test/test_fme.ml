(* Tests for Fourier–Motzkin elimination, the box search and the
   layered Omega oracle, including randomized equivalence with brute
   force over small boxes. *)

module F = Rtlsat_fme.Fme
module Box = Rtlsat_fme.Boxsearch
module O = Rtlsat_fme.Omega
module B = Rtlsat_num.Bigint

let check_bool = Alcotest.(check bool)

let feasible = function F.Feasible -> true | F.Infeasible _ -> false

(* ---- FME unit tests ---- *)

let test_constant_ineqs () =
  check_bool "0<=0" true (feasible (F.check [ F.ineq [] 0 ]));
  check_bool "1<=0" false (feasible (F.check [ F.ineq [] 1 ]));
  check_bool "-5<=0" true (feasible (F.check [ F.ineq [] (-5) ]))

let test_simple_elim () =
  (* x >= 3  ∧  x <= 2  is infeasible *)
  let sys = [ F.ineq [ (-1, 0) ] 3; F.ineq [ (1, 0) ] (-2) ] in
  check_bool "x>=3,x<=2" false (feasible (F.check sys));
  (* x >= 3  ∧  x <= 5  is feasible *)
  let sys = [ F.ineq [ (-1, 0) ] 3; F.ineq [ (1, 0) ] (-5) ] in
  check_bool "x>=3,x<=5" true (feasible (F.check sys))

let test_chain () =
  (* x <= y, y <= z, z <= x - 1: infeasible *)
  let sys =
    [
      F.ineq [ (1, 0); (-1, 1) ] 0;
      F.ineq [ (1, 1); (-1, 2) ] 0;
      F.ineq [ (1, 2); (-1, 0) ] 1;
    ]
  in
  check_bool "cycle" false (feasible (F.check sys))

let test_core () =
  (* tag inequalities; the core must identify the contradicting pair *)
  let sys =
    [
      F.ineq ~origin:[ 10 ] [ (-1, 0) ] 3;       (* x >= 3 *)
      F.ineq ~origin:[ 20 ] [ (1, 0) ] (-2);     (* x <= 2 *)
      F.ineq ~origin:[ 30 ] [ (1, 1) ] (-100);   (* irrelevant: y <= 100 *)
    ]
  in
  match F.check sys with
  | F.Feasible -> Alcotest.fail "expected infeasible"
  | F.Infeasible core -> Alcotest.(check (list int)) "core" [ 10; 20 ] core

let test_integer_normalization () =
  (* 2x >= 1 ∧ 2x <= 1 has a real solution (x = 1/2) but no integer
     one; gcd normalization with floor rounding must refute it *)
  let sys = [ F.ineq [ (-2, 0) ] 1; F.ineq [ (2, 0) ] (-1) ] in
  check_bool "2x=1 integer-infeasible" false (feasible (F.check sys))

let test_dark_shadow () =
  (* dark shadow proves integer feasibility of a wide box *)
  let sys = [ F.ineq [ (-1, 0) ] 0; F.ineq [ (1, 0) ] (-10) ] in
  check_bool "dark feasible" true (feasible (F.check ~shadow:`Dark sys))

let test_eq_ineqs () =
  let le, ge = F.eq_ineqs [ (1, 0); (1, 1) ] (-5) in
  (* x + y = 5 with x,y >= 0 bounded: feasible *)
  let sys = [ le; ge; F.ineq [ (-1, 0) ] 0; F.ineq [ (-1, 1) ] 0 ] in
  check_bool "x+y=5" true (feasible (F.check sys));
  let sys = sys @ [ F.ineq [ (1, 0) ] (-1); F.ineq [ (1, 1) ] (-1) ] in
  (* additionally x <= 1, y <= 1: infeasible *)
  check_bool "x+y=5, x,y<=1" false (feasible (F.check sys))

let test_eval_ineq () =
  let i = F.ineq [ (2, 0); (-1, 1) ] (-3) in
  check_bool "sat point" true (F.eval_ineq (function 0 -> 1 | _ -> 0) i);
  check_bool "unsat point" false (F.eval_ineq (function 0 -> 5 | _ -> 0) i)

let test_budget_exceeded () =
  (* a dense random-ish system with a 1-combination budget must trip *)
  let sys =
    List.concat
      (List.init 6 (fun i ->
           [ F.ineq [ (1, i); (1, (i + 1) mod 6) ] (-5);
             F.ineq [ (-1, i); (-2, (i + 2) mod 6) ] 1 ]))
  in
  match F.check ~max_derived:1 sys with
  | exception F.Budget_exceeded -> ()
  | _ -> Alcotest.fail "expected Budget_exceeded"

let test_pp_ineq () =
  let show i = Format.asprintf "%a" F.pp_ineq i in
  Alcotest.(check string) "mixed" "x0 - 2*x1 + 3 <= 0"
    (show (F.ineq [ (1, 0); (-2, 1) ] 3));
  Alcotest.(check string) "constant" "-4 <= 0" (show (F.ineq [] (-4)));
  Alcotest.(check string) "normalized" "x0 - 1 <= 0"
    (show (F.ineq [ (3, 0) ] (-5)))
  (* 3x <= 5 tightens to x <= 1 over the integers *)

(* ---- Boxsearch unit tests ---- *)

let test_box_propagate () =
  (* x - z < 0 (i.e. x - z + 1 <= 0) over <0,15>²: the paper's
     Equations (2)-(3): x ∈ <0,14>, z ∈ <1,15> *)
  let bounds = [| (0, 15); (0, 15) |] in
  match Box.propagate_bounds ~bounds [ Box.lin [ (1, 0); (-1, 1) ] 1 ] with
  | None -> Alcotest.fail "should not be empty"
  | Some b ->
    Alcotest.(check (pair int int)) "x" (0, 14) b.(0);
    Alcotest.(check (pair int int)) "z" (1, 15) b.(1)

let test_box_point () =
  (* x + y = 7, x - y = 1 → x=4, y=3 *)
  let e1a, e1b = Box.lin_eq [ (1, 0); (1, 1) ] (-7) in
  let e2a, e2b = Box.lin_eq [ (1, 0); (-1, 1) ] (-1) in
  match Box.solve ~bounds:[| (0, 15); (0, 15) |] [ e1a; e1b; e2a; e2b ] with
  | Box.Point p ->
    Alcotest.(check int) "x" 4 p.(0);
    Alcotest.(check int) "y" 3 p.(1)
  | _ -> Alcotest.fail "expected point"

let test_box_empty () =
  (* 3x = 7 has no integer solution in <0,10> *)
  let a, b = Box.lin_eq [ (3, 0) ] (-7) in
  match Box.solve ~bounds:[| (0, 10) |] [ a; b ] with
  | Box.Empty -> ()
  | _ -> Alcotest.fail "expected empty"

let test_box_limit () =
  let a = Box.lin [ (1, 0); (1, 1) ] (-100000) in
  match Box.solve ~max_nodes:1 ~bounds:[| (0, 100000); (0, 100000) |] [ a ] with
  | Box.Limit | Box.Point _ -> () (* fixpoint may solve at the root *)
  | Box.Empty -> Alcotest.fail "not empty"

(* ---- Omega unit tests ---- *)

let test_omega_sat_witness () =
  let lins = [ Box.lin [ (2, 0); (3, 1) ] (-12) ] in
  (* 2x + 3y >= ... wait: 2x+3y <= 12; also x >= 2 via bounds *)
  match O.decide ~bounds:[| (2, 10); (0, 10) |] lins with
  | O.Sat p ->
    check_bool "witness" true ((2 * p.(0)) + (3 * p.(1)) <= 12 && p.(0) >= 2)
  | _ -> Alcotest.fail "expected sat"

let test_omega_unsat_core_bounds () =
  (* x <= 3 constraint vs bound x >= 5: core mentions ineq 0 and var 0 *)
  let lins = [ Box.lin [ (1, 0) ] (-3) ] in
  match O.decide ~bounds:[| (5, 10) |] lins with
  | O.Unsat core ->
    check_bool "mentions constraint" true (List.mem 0 core);
    check_bool "mentions var bound" true (List.mem (-1) core)
  | _ -> Alcotest.fail "expected unsat"

let test_omega_empty_bounds () =
  match O.decide ~bounds:[| (0, 3); (7, 2) |] [] with
  | O.Unsat core -> Alcotest.(check (list int)) "core is var 1" [ -2 ] core
  | _ -> Alcotest.fail "expected unsat"

let test_omega_integer_gap () =
  (* 2 <= 2x <= 3 ∧ 2x odd-ish gap: 2x >= 3 and 2x <= 3 → x = 3/2 *)
  let lins = [ Box.lin [ (-2, 0) ] 3; Box.lin [ (2, 0) ] (-3) ] in
  match O.decide ~bounds:[| (0, 10) |] lins with
  | O.Unsat _ -> ()
  | _ -> Alcotest.fail "expected unsat (no integer point)"

(* ---- randomized equivalence with brute force ---- *)

let gen_system =
  QCheck.make
    ~print:(fun (n, lins) ->
        String.concat "; "
          (List.map
             (fun (coeffs, c) ->
                String.concat "+"
                  (List.map (fun (k, v) -> Printf.sprintf "%d*x%d" k v) coeffs)
                ^ Printf.sprintf "%+d<=0" c)
             lins)
        ^ Printf.sprintf " [n=%d]" n)
    QCheck.Gen.(
      let* n = int_range 1 4 in
      let* n_ineqs = int_range 1 6 in
      let gen_term = map2 (fun c v -> (c, v)) (int_range (-3) 3) (int_bound (n - 1)) in
      let gen_ineq =
        map2 (fun ts c -> (ts, c)) (list_size (int_range 1 3) gen_term) (int_range (-10) 10)
      in
      let* lins = list_size (return n_ineqs) gen_ineq in
      return (n, lins))

let brute_force n lins lo hi =
  (* exhaustive over [lo,hi]^n *)
  let sat = ref None in
  let point = Array.make n lo in
  let rec go v =
    if !sat <> None then ()
    else if v = n then begin
      let ok =
        List.for_all
          (fun (coeffs, c) ->
             List.fold_left (fun acc (k, u) -> acc + (k * point.(u))) c coeffs <= 0)
          lins
      in
      if ok then sat := Some (Array.copy point)
    end
    else
      for x = lo to hi do
        point.(v) <- x;
        go (v + 1)
      done
  in
  go 0;
  !sat

let prop_omega_matches_brute =
  QCheck.Test.make ~name:"omega = brute force on small boxes" ~count:300 gen_system
    (fun (n, raw) ->
       let lins = List.map (fun (coeffs, c) -> Box.lin coeffs c) raw in
       let bounds = Array.make n (0, 5) in
       let bf = brute_force n raw 0 5 in
       match O.decide ~bounds lins with
       | O.Sat p ->
         bf <> None
         && List.for_all
              (fun (coeffs, c) ->
                 List.fold_left (fun acc (k, u) -> acc + (k * p.(u))) c coeffs <= 0)
              raw
         && Array.for_all (fun x -> x >= 0 && x <= 5) p
       | O.Unsat _ -> bf = None
       | O.Unknown -> QCheck.assume_fail ())

let prop_fme_real_sound =
  (* if FME says infeasible, brute force must find nothing *)
  QCheck.Test.make ~name:"FME infeasible => no integer point" ~count:300 gen_system
    (fun (n, raw) ->
       let sys =
         List.map (fun (coeffs, c) -> F.ineq coeffs c) raw
         @ List.concat
             (List.init n (fun v ->
                  [ F.ineq [ (1, v) ] (-5); F.ineq [ (-1, v) ] 0 ]))
       in
       match F.check sys with
       | F.Infeasible _ -> brute_force n raw 0 5 = None
       | F.Feasible -> true)

let prop_dark_shadow_complete =
  (* if the dark shadow is feasible, an integer point must exist *)
  QCheck.Test.make ~name:"dark feasible => integer point exists" ~count:300 gen_system
    (fun (n, raw) ->
       let sys =
         List.map (fun (coeffs, c) -> F.ineq coeffs c) raw
         @ List.concat
             (List.init n (fun v ->
                  [ F.ineq [ (1, v) ] (-5); F.ineq [ (-1, v) ] 0 ]))
       in
       match F.check ~shadow:`Dark sys with
       | F.Feasible -> brute_force n raw 0 5 <> None
       | F.Infeasible _ -> true)

let prop_core_is_unsat =
  (* restricting the system to its core must still be infeasible *)
  QCheck.Test.make ~name:"unsat core is itself infeasible" ~count:300 gen_system
    (fun (n, raw) ->
       let tagged =
         List.mapi (fun i (coeffs, c) -> F.ineq ~origin:[ i ] coeffs c) raw
         @ List.concat
             (List.init n (fun v ->
                  [
                    F.ineq ~origin:[ 1000 + v ] [ (1, v) ] (-5);
                    F.ineq ~origin:[ 1000 + v ] [ (-1, v) ] 0;
                  ]))
       in
       match F.check tagged with
       | F.Feasible -> true
       | F.Infeasible core ->
         let sub =
           List.filter
             (fun (i : F.ineq) -> List.exists (fun o -> List.mem o core) i.F.origin)
             tagged
         in
         (match F.check sub with F.Infeasible _ -> true | F.Feasible -> false))

let qsuite = Qutil.qsuite

let () =
  Alcotest.run "fme"
    [
      ( "fme",
        [
          Alcotest.test_case "constants" `Quick test_constant_ineqs;
          Alcotest.test_case "single var" `Quick test_simple_elim;
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "unsat core" `Quick test_core;
          Alcotest.test_case "integer normalization" `Quick test_integer_normalization;
          Alcotest.test_case "dark shadow" `Quick test_dark_shadow;
          Alcotest.test_case "equalities" `Quick test_eq_ineqs;
          Alcotest.test_case "eval" `Quick test_eval_ineq;
          Alcotest.test_case "budget exception" `Quick test_budget_exceeded;
          Alcotest.test_case "pretty printer" `Quick test_pp_ineq;
        ] );
      ( "boxsearch",
        [
          Alcotest.test_case "paper eq2/3 narrowing" `Quick test_box_propagate;
          Alcotest.test_case "point solving" `Quick test_box_point;
          Alcotest.test_case "integer gap" `Quick test_box_empty;
          Alcotest.test_case "node limit" `Quick test_box_limit;
        ] );
      ( "omega",
        [
          Alcotest.test_case "sat witness" `Quick test_omega_sat_witness;
          Alcotest.test_case "unsat core tags" `Quick test_omega_unsat_core_bounds;
          Alcotest.test_case "empty bounds" `Quick test_omega_empty_bounds;
          Alcotest.test_case "integer gap" `Quick test_omega_integer_gap;
        ] );
      qsuite "props"
        [
          prop_omega_matches_brute; prop_fme_real_sound; prop_dark_shadow_complete;
          prop_core_is_unsat;
        ];
    ]
