#!/bin/sh
# Parallel-solving smoke test (also wired into `dune runtest` — see
# the rule in test/dune):
#   1. portfolio race: solve -j 3 prints the lineup + winner and still
#      validates the witness
#   2. cube-and-conquer: --cube settles an easy Unsat via the probe
#      and reports the cube/exchange note
#   3. --cube on a non-hybrid engine is rejected (exit 2) — there is
#      no split heap to nominate cube variables from
#   4. bound-parallel sweep: sweep -j 2 announces its worker sessions
#      and produces one row per requested bound
#   5. worker-tagged tracing: a -j 2 solve writes an rtlsat.trace/8
#      trace whose events carry "worker" tags, and the replay profiler
#      accepts it
#   6. the run ledger records the parallelism (j=N in options) and the
#      record still parses via rtlsat runs
# Pass the rtlsat binary as $1 (the dune rule does); standalone runs
# build it first.
set -eu

here=$(dirname "$0")

if [ $# -ge 1 ]; then
  rtlsat=$1
else
  root=$(cd "$here/.." && pwd)
  dune build --root "$root" bin/rtlsat.exe
  rtlsat="$root/_build/default/bin/rtlsat.exe"
fi

out=$(mktemp /tmp/rtlsat_par.XXXXXX.out)
trace=$(mktemp /tmp/rtlsat_par.XXXXXX.jsonl)
ledger=$(mktemp /tmp/rtlsat_par.XXXXXX.ledger)
trap 'rm -f "$out" "$trace" "$ledger"' EXIT

# 1. portfolio race
"$rtlsat" solve -c b01 -p 1 -k 20 -j 3 --no-ledger > "$out"
grep -q "portfolio -j 3 raced" "$out"
grep -q "winner" "$out"
grep -q "SATISFIABLE (witness validated)" "$out"

# 2. cube-and-conquer, probe-decided
"$rtlsat" solve -c b02 -p 1 -k 10 -j 2 --cube --no-ledger > "$out"
grep -q "cube-and-conquer -j 2" "$out"
grep -q "UNSATISFIABLE" "$out"

# 3. --cube needs a hybrid engine
if "$rtlsat" solve -c b02 -p 1 -k 10 -e bitblast --cube --no-ledger \
  > /dev/null 2>&1; then
  echo "FAIL: --cube with bitblast should be rejected" >&2
  exit 1
fi

# 4. bound-parallel sweep
"$rtlsat" sweep -c b01 -p 1 --bounds 2,4,6,8 -j 2 --no-ledger > "$out"
grep -q "2 worker sessions" "$out"
[ "$(grep -c "^ " "$out")" -ge 4 ]

# 5. worker-tagged trace replays through the profiler
"$rtlsat" solve -c b01 -p 1 -k 20 -j 2 --no-ledger --trace "$trace" \
  > /dev/null
grep -q '"schema":"rtlsat.trace/8"' "$trace"
grep -q '"worker":' "$trace"
"$rtlsat" profile "$trace" > "$out"
grep -q "rtlsat.trace/8" "$out"

# 6. ledger carries j=N and stays loadable
"$rtlsat" solve -c b01 -p 1 -k 20 -j 3 --ledger "$ledger" > /dev/null
grep -q '"schema":"rtlsat.run/1"' "$ledger"
grep -q 'j=3' "$ledger"
"$rtlsat" runs --ledger "$ledger" | grep -q "b01_1(20)"

echo "smoke_parallel: all checks passed"
