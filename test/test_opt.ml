(* Tests for the netlist optimizer: individual rewrite rules, dead-code
   removal, sharing, and behaviour preservation over the benchmark
   suite and random circuits. *)

module Ir = Rtlsat_rtl.Ir
module N = Rtlsat_rtl.Netlist
module Sim = Rtlsat_rtl.Sim
module Opt = Rtlsat_rtl.Opt
module Registry = Rtlsat_itc99.Registry

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let const_value n = match n.Ir.op with Ir.Const v -> Some v | _ -> None

let test_constant_folding () =
  let c = N.create "fold" in
  let k3 = N.const c ~width:4 3 in
  let k5 = N.const c ~width:4 5 in
  let sum = N.add c k3 k5 in
  let prod = N.mul_const c 3 k5 in
  let cmp = N.lt c k3 k5 in
  let cat = N.concat c ~hi:k3 ~lo:k5 in
  let ex = N.extract c cat ~msb:5 ~lsb:2 in
  N.output c "sum" sum;
  N.output c "prod" prod;
  N.output c "cmp" cmp;
  N.output c "ex" ex;
  let { Opt.fwd; _ } = Opt.simplify c in
  Alcotest.(check (option int)) "3+5" (Some 8) (const_value (fwd sum));
  Alcotest.(check (option int)) "3*5" (Some 15) (const_value (fwd prod));
  Alcotest.(check (option int)) "3<5" (Some 1) (const_value (fwd cmp));
  Alcotest.(check (option int)) "extract" (Some ((3 lsl 4 lor 5) lsr 2 land 15))
    (const_value (fwd ex))

let test_identities () =
  let c = N.create "ids" in
  let a = N.input c ~name:"a" 1 in
  let w = N.input c ~name:"w" 4 in
  let zero1 = N.cfalse c in
  let one1 = N.ctrue c in
  let zero4 = N.const c ~width:4 0 in
  let and0 = N.and_ c [ a; zero1 ] in
  let and1 = N.and_ c [ a; one1 ] in
  let or1 = N.or_ c [ a; one1 ] in
  let xorself = N.xor_ c a a in
  let notnot = N.not_ c (N.not_ c a) in
  let muxsame = N.mux c ~sel:a ~t:w ~e:w () in
  let addz = N.add c w zero4 in
  let subself = N.sub c w w in
  let eqself = N.eq c w w in
  let mux10 = N.mux c ~sel:a ~t:one1 ~e:zero1 () in
  List.iteri (fun i n -> N.output c (string_of_int i) n)
    [ and0; and1; or1; xorself; notnot; muxsame; addz; subself; eqself; mux10 ];
  let { Opt.fwd; _ } = Opt.simplify c in
  Alcotest.(check (option int)) "a&0" (Some 0) (const_value (fwd and0));
  check_bool "a&1 = a" true (fwd and1 == fwd a);
  Alcotest.(check (option int)) "a|1" (Some 1) (const_value (fwd or1));
  Alcotest.(check (option int)) "a^a" (Some 0) (const_value (fwd xorself));
  check_bool "!!a = a" true (fwd notnot == fwd a);
  check_bool "mux s w w = w" true (fwd muxsame == fwd w);
  check_bool "w+0 = w" true (fwd addz == fwd w);
  Alcotest.(check (option int)) "w-w" (Some 0) (const_value (fwd subself));
  Alcotest.(check (option int)) "w=w" (Some 1) (const_value (fwd eqself));
  check_bool "mux a 1 0 = a" true (fwd mux10 == fwd a)

let test_structural_hashing () =
  let c = N.create "cse" in
  let x = N.input c ~name:"x" 4 in
  let y = N.input c ~name:"y" 4 in
  let s1 = N.add c x y in
  let s2 = N.add c x y in
  let s3 = N.add c y x in (* commutative: shared too *)
  N.output c "a" s1;
  N.output c "b" s2;
  N.output c "c" s3;
  let { Opt.fwd; _ } = Opt.simplify c in
  check_bool "s1 == s2" true (fwd s1 == fwd s2);
  check_bool "s1 == s3 (commuted)" true (fwd s1 == fwd s3)

let test_dead_code () =
  let c = N.create "dead" in
  let x = N.input c ~name:"x" 4 in
  let live = N.inc c x in
  let _dead1 = N.sub c x x in
  let _dead2 = N.lt c x live in
  N.output c "live" live;
  let { Opt.optimized; _ } = Opt.simplify c in
  (* input, const 1, add — the two dead nodes are gone *)
  check_int "only live nodes" 3 (Opt.node_count optimized)

let test_unroll_shrink () =
  (* unrolled benchmark circuits shrink substantially: frame-0 resets
     constant-fold forward *)
  let inst = Registry.instance ~circuit:"b13" ~prop:"1" ~bound:20 in
  let combo = Rtlsat_bmc.Unroll.combo inst.Rtlsat_bmc.Bmc.unrolled in
  let { Opt.optimized; _ } = Opt.simplify combo in
  let before = Opt.node_count combo in
  let after = Opt.node_count optimized in
  check_bool
    (Printf.sprintf "shrinks (%d -> %d)" before after)
    true
    (after * 10 < before * 9)

let random_trace rng c cycles =
  List.init cycles (fun _ ->
      List.map
        (fun n -> (Ir.node_name n, Random.State.int rng (Ir.max_value n + 1)))
        (Ir.inputs c))

let drive c named =
  List.map
    (fun by_name -> List.map (fun (nm, v) -> (N.find_input c nm, v)) by_name)
    named

let test_equivalence_on_benchmarks () =
  let rng = Random.State.make [| 2026 |] in
  List.iter
    (fun name ->
       let c, props = Registry.build name in
       List.iter (fun (pn, p) -> N.output c ("prop_" ^ pn) p) props;
       let { Opt.optimized; fwd } = Opt.simplify c in
       ignore fwd;
       let named = random_trace rng c 40 in
       let t1 = Sim.run c ~inputs:(drive c named) in
       let t2 = Sim.run optimized ~inputs:(drive optimized named) in
       List.iteri
         (fun i (v1, v2) ->
            List.iter
              (fun (port, n1) ->
                 check_int
                   (Printf.sprintf "%s %s cycle %d" name port i)
                   (Sim.value v1 n1)
                   (Sim.value v2 (N.find_output optimized port)))
              c.Ir.outputs)
         (List.combine t1 t2))
    Registry.circuits

let prop_equivalence_random =
  QCheck.Test.make ~name:"optimized = original on random circuits" ~count:100
    QCheck.(triple (int_bound 100_000) (int_bound 15) (int_bound 15))
    (fun (seed, av, bv) ->
       let rng = Random.State.make [| seed |] in
       let c = N.create "rand" in
       let a = N.input c ~name:"a" 4 and b = N.input c ~name:"b" 4 in
       let words = ref [ a; b; N.const c ~width:4 0; N.const c ~width:4 9 ] in
       let bools = ref [ N.ctrue c ] in
       let pick l = List.nth l (Random.State.int rng (List.length l)) in
       for _ = 1 to 18 do
         match Random.State.int rng 9 with
         | 0 -> words := N.add c (pick !words) (pick !words) :: !words
         | 1 -> words := N.sub c (pick !words) (pick !words) :: !words
         | 2 ->
           bools :=
             N.cmp c (pick [ Ir.Eq; Ir.Lt; Ir.Ge; Ir.Ne ]) (pick !words) (pick !words)
             :: !bools
         | 3 ->
           words := N.mux c ~sel:(pick !bools) ~t:(pick !words) ~e:(pick !words) () :: !words
         | 4 -> bools := N.not_ c (pick !bools) :: !bools
         | 5 -> bools := N.and_ c [ pick !bools; pick !bools ] :: !bools
         | 6 -> bools := N.xor_ c (pick !bools) (pick !bools) :: !bools
         | 7 -> words := N.bitxor c (pick !words) (pick !words) :: !words
         | _ -> words := N.bitand c (pick !words) (pick !words) :: !words
       done;
       let o = pick !words in
       N.output c "o" o;
       let { Opt.optimized; _ } = Opt.simplify c in
       let v1 =
         Sim.value (Sim.eval c (Sim.initial_state c) ~inputs:[ (a, av); (b, bv) ]) o
       in
       let inputs2 =
         List.filter_map
           (fun n ->
              match Ir.node_name n with
              | "a" -> Some (n, av)
              | "b" -> Some (n, bv)
              | _ -> None)
           (Ir.inputs optimized)
       in
       let v2 =
         Sim.value
           (Sim.eval optimized (Sim.initial_state optimized) ~inputs:inputs2)
           (N.find_output optimized "o")
       in
       v1 = v2 && Opt.node_count optimized <= Opt.node_count c)

let test_idempotent () =
  List.iter
    (fun name ->
       let c, _ = Registry.build name in
       let once = (Opt.simplify c).Opt.optimized in
       let twice = (Opt.simplify once).Opt.optimized in
       Alcotest.(check int)
         (name ^ " second pass is a fixpoint")
         (Opt.node_count once) (Opt.node_count twice))
    Registry.circuits

let qsuite = Qutil.qsuite

let () =
  Alcotest.run "opt"
    [
      ( "rules",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "identities" `Quick test_identities;
          Alcotest.test_case "structural hashing" `Quick test_structural_hashing;
          Alcotest.test_case "dead code removal" `Quick test_dead_code;
        ] );
      ( "effect",
        [
          Alcotest.test_case "unrolled b13 shrinks" `Quick test_unroll_shrink;
          Alcotest.test_case "benchmark equivalence" `Quick test_equivalence_on_benchmarks;
          Alcotest.test_case "idempotent" `Quick test_idempotent;
        ] );
      qsuite "props" [ prop_equivalence_random ];
    ]
