(* Shared QCheck → Alcotest adapter.

   qcheck-alcotest's [to_alcotest] self-initializes a *random* seed
   whenever QCHECK_SEED is not set, which made the property suites
   non-reproducible in CI: a failure seen once could not be replayed.
   Every suite now runs with a fixed default seed; QCHECK_SEED still
   overrides it, and the effective seed is printed when a property
   fails so the exact run can be reproduced with

     QCHECK_SEED=<seed> ./_build/default/test/test_<suite>.exe *)

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v -> v
      | None ->
        Printf.eprintf "[qcheck] ignoring malformed QCHECK_SEED=%S\n%!" s;
        42)
  | None -> 42

let to_alcotest test =
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) test
  in
  let run () =
    try run ()
    with e ->
      Printf.eprintf
        "[qcheck] property %S failed under seed %d; reproduce with QCHECK_SEED=%d\n%!"
        name seed seed;
      raise e
  in
  (name, speed, run)

let qsuite name tests = (name, List.map to_alcotest tests)
