#!/bin/sh
# CLI surface smoke test (wired into `dune runtest` — see the rule in
# test/dune):
#   1. every registered subcommand answers --help with exit 0, so no
#      refactor can leave a command with a broken term
#   2. the subcommands on the shared exit-code convention document it:
#      0 success / 1 negative finding / 2 invalid input
#   3. the top-level help lists the serve daemon next to solve/sweep
# Pass the rtlsat binary as $1 (the dune rule does); standalone runs
# build it first.
set -eu

here=$(dirname "$0")

if [ $# -ge 1 ]; then
  rtlsat=$1
else
  root=$(cd "$here/.." && pwd)
  dune build --root "$root" bin/rtlsat.exe
  rtlsat="$root/_build/default/bin/rtlsat.exe"
fi

out=$(mktemp /tmp/rtlsat_help.XXXXXX.out)
trap 'rm -f "$out"' EXIT

# 1. every subcommand answers --help
"$rtlsat" --help=plain > "$out"
grep -q "COMMANDS" "$out"
grep -q "serve" "$out"

for sub in list show solve sweep serve check prove export sat fuzz \
           profile top metrics runs trace-diff bench-diff bench-history \
           table1 table2; do
  "$rtlsat" "$sub" --help=plain > "$out"
done

# 2. the 0/1/2 exit-code convention is documented on the commands that
#    share it
for sub in show solve sweep serve check prove sat fuzz profile top \
           metrics runs trace-diff bench-diff bench-history; do
  "$rtlsat" "$sub" --help=plain > "$out"
  grep -q "on a negative finding" "$out"
  grep -q "on unreadable or invalid input" "$out"
done

echo "smoke_help: all checks passed"
