(* Tests for the standalone CDCL solver: unit cases and randomized
   equivalence against a brute-force model enumerator. *)

module C = Rtlsat_sat.Cdcl

let check_bool = Alcotest.(check bool)

let mk n_vars clauses =
  let s = C.create () in
  let vars = Array.init n_vars (fun _ -> C.new_var s) in
  List.iter
    (fun cl ->
       C.add_clause s
         (List.map (fun l -> if l > 0 then C.pos vars.(l - 1) else C.neg vars.(-l - 1)) cl))
    clauses;
  (s, vars)

let is_sat = function C.Sat -> true | C.Unsat -> false | C.Timeout -> failwith "timeout"

let test_lit_encoding () =
  Alcotest.(check int) "var" 7 (C.lit_var (C.pos 7));
  Alcotest.(check int) "var neg" 7 (C.lit_var (C.neg 7));
  check_bool "sign" true (C.lit_sign (C.pos 7));
  check_bool "sign neg" false (C.lit_sign (C.neg 7));
  Alcotest.(check int) "double negation" (C.pos 3) (C.lit_not (C.lit_not (C.pos 3)))

let test_trivial_sat () =
  let s, vars = mk 2 [ [ 1; 2 ]; [ -1; 2 ] ] in
  check_bool "sat" true (is_sat (C.solve s));
  check_bool "v2 true" true (C.value s vars.(1))

let test_trivial_unsat () =
  let s, _ = mk 1 [ [ 1 ]; [ -1 ] ] in
  check_bool "unsat" false (is_sat (C.solve s))

let test_empty_clause () =
  let s, _ = mk 1 [ [] ] in
  check_bool "unsat" false (is_sat (C.solve s))

let test_unsat_chain () =
  (* pigeonhole-ish small unsat: x1=x2, x2=x3, x1<>x3 *)
  let s, _ =
    mk 3 [ [ -1; 2 ]; [ 1; -2 ]; [ -2; 3 ]; [ 2; -3 ]; [ 1; 3 ]; [ -1; -3 ] ]
  in
  check_bool "unsat" false (is_sat (C.solve s))

let test_model_satisfies () =
  let clauses = [ [ 1; -2; 3 ]; [ -1; 2 ]; [ 2; 3 ]; [ -3; -2; 1 ] ] in
  let s, vars = mk 3 clauses in
  check_bool "sat" true (is_sat (C.solve s));
  let value l = if l > 0 then C.value s vars.(l - 1) else not (C.value s vars.(-l - 1)) in
  List.iter (fun cl -> check_bool "clause satisfied" true (List.exists value cl)) clauses

let test_assumptions () =
  let s, vars = mk 2 [ [ 1; 2 ] ] in
  check_bool "sat under a" true (is_sat (C.solve ~assumptions:[ C.neg vars.(0) ] s));
  check_bool "v2 forced" true (C.value s vars.(1));
  check_bool "unsat under both neg" false
    (is_sat (C.solve ~assumptions:[ C.neg vars.(0); C.neg vars.(1) ] s));
  (* solver state survives: still sat without assumptions *)
  check_bool "sat again" true (is_sat (C.solve s))

let test_incremental_clauses () =
  let s, vars = mk 2 [ [ 1; 2 ] ] in
  check_bool "sat" true (is_sat (C.solve s));
  C.add_clause s [ C.neg vars.(0) ];
  C.add_clause s [ C.neg vars.(1) ];
  check_bool "now unsat" false (is_sat (C.solve s))

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small UNSAT needing real search *)
  let var p h = (p * 2) + h + 1 in
  let clauses =
    List.concat_map (fun p -> [ [ var p 0; var p 1 ] ]) [ 0; 1; 2 ]
    @ List.concat_map
        (fun h ->
           [ [ -var 0 h; -var 1 h ]; [ -var 0 h; -var 2 h ]; [ -var 1 h; -var 2 h ] ])
        [ 0; 1 ]
  in
  let s, _ = mk 6 clauses in
  check_bool "php(3,2) unsat" false (is_sat (C.solve s))

let test_timeout () =
  (* php(8,7) is hard enough that a 0-second deadline must trigger *)
  let n = 8 in
  let var p h = (p * (n - 1)) + h + 1 in
  let clauses =
    List.concat_map (fun p -> [ List.init (n - 1) (fun h -> var p h) ])
      (List.init n (fun p -> p))
    @ List.concat_map
        (fun h ->
           List.concat_map
             (fun p1 ->
                List.filter_map
                  (fun p2 -> if p1 < p2 then Some [ -var p1 h; -var p2 h ] else None)
                  (List.init n (fun p -> p)))
             (List.init n (fun p -> p)))
        (List.init (n - 1) (fun h -> h))
  in
  let s, _ = mk (n * (n - 1)) clauses in
  match C.solve ~deadline:(Unix.gettimeofday () -. 1.0) s with
  | C.Timeout -> ()
  | C.Unsat -> () (* solved faster than the first deadline poll: also fine *)
  | C.Sat -> Alcotest.fail "php must not be sat"

(* ---- DIMACS front end ---- *)

module D = Rtlsat_sat.Dimacs

let test_dimacs_parse () =
  let n, cls = D.parse "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  Alcotest.(check int) "vars" 3 n;
  Alcotest.(check int) "clauses" 2 (List.length cls);
  Alcotest.(check (list (list int))) "content" [ [ 1; -2 ]; [ 2; 3 ] ] cls

let test_dimacs_multiline_clause () =
  (* clauses may span lines; a missing final 0 is tolerated *)
  let _, cls = D.parse "p cnf 2 1\n1\n-2\n0\n" in
  Alcotest.(check (list (list int))) "span" [ [ 1; -2 ] ] cls;
  let _, cls = D.parse "p cnf 2 1\n1 2" in
  Alcotest.(check (list (list int))) "no trailing zero" [ [ 1; 2 ] ] cls

let test_dimacs_errors () =
  let expect text =
    match D.parse text with
    | exception Failure m ->
      check_bool "line prefix" true (String.length m > 5 && String.sub m 0 5 = "line ")
    | _ -> Alcotest.fail "expected failure"
  in
  expect "1 2 0\n";                 (* clause before header *)
  expect "p cnf x 2\n";             (* bad count *)
  expect "p cnf 2 1\n1 5 0\n";     (* literal out of range *)
  expect "p cnf 2 1\n1 foo 0\n"    (* bad literal *)

let test_dimacs_solve () =
  (match D.solve_text "p cnf 2 2\n1 2 0\n-1 0\n" with
   | `Sat model ->
     check_bool "model" true (model.(1) && not model.(0))
   | _ -> Alcotest.fail "sat expected");
  (match D.solve_text "p cnf 1 2\n1 0\n-1 0\n" with
   | `Unsat -> ()
   | _ -> Alcotest.fail "unsat expected");
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  D.print_result fmt (`Sat [| true; false |]);
  Format.pp_print_flush fmt ();
  Alcotest.(check string) "v-line" "s SATISFIABLE\nv 1 -2 0\n" (Buffer.contents buf)

let test_clause_access () =
  let s, _ = mk 3 [ [ 1; 2 ]; [ -1; 3 ]; [ 2 ] ] in
  let stored = C.fold_clauses (fun acc _ -> acc + 1) 0 s in
  Alcotest.(check int) "stored clauses" 2 stored;
  Alcotest.(check int) "one root unit" 1 (List.length (C.root_units s))

(* ---- randomized equivalence with brute force ---- *)

let brute_force n_vars clauses =
  let sat = ref false in
  for m = 0 to (1 lsl n_vars) - 1 do
    if not !sat then begin
      let value l =
        let v = abs l - 1 in
        let bit = (m lsr v) land 1 = 1 in
        if l > 0 then bit else not bit
      in
      if List.for_all (fun cl -> List.exists value cl) clauses then sat := true
    end
  done;
  !sat

let gen_cnf =
  QCheck.make
    ~print:(fun (n, cls) ->
        Printf.sprintf "n=%d cls=[%s]" n
          (String.concat ";"
             (List.map (fun cl -> String.concat "," (List.map string_of_int cl)) cls)))
    QCheck.Gen.(
      let* n = int_range 3 8 in
      let* n_clauses = int_range 1 30 in
      let gen_lit = map2 (fun v s -> if s then v + 1 else -(v + 1)) (int_bound (n - 1)) bool in
      let gen_clause = list_size (int_range 1 4) gen_lit in
      let* cls = list_size (return n_clauses) gen_clause in
      return (n, cls))

let prop_matches_brute_force =
  QCheck.Test.make ~name:"CDCL = brute force" ~count:400 gen_cnf
    (fun (n, clauses) ->
       let s, vars = mk n clauses in
       let r = is_sat (C.solve s) in
       let bf = brute_force n clauses in
       if r <> bf then false
       else if r then begin
         (* verify the model *)
         let value l =
           if l > 0 then C.value s vars.(l - 1) else not (C.value s vars.(-l - 1))
         in
         List.for_all (fun cl -> List.exists value cl) clauses
       end
       else true)

let prop_assumptions_sound =
  QCheck.Test.make ~name:"assumptions = added units" ~count:200
    (QCheck.pair gen_cnf (QCheck.list_of_size (QCheck.Gen.return 2) QCheck.bool))
    (fun ((n, clauses), signs) ->
       let s1, vars1 = mk n clauses in
       let assumptions =
         List.mapi (fun i b -> if b then C.pos vars1.(i) else C.neg vars1.(i)) signs
       in
       let r1 = is_sat (C.solve ~assumptions s1) in
       let s2, _ = mk n clauses in
       List.iteri
         (fun i b -> C.add_clause s2 [ (if b then C.pos i else C.neg i) ])
         signs;
       let r2 = is_sat (C.solve s2) in
       r1 = r2)

let qsuite = Qutil.qsuite

let () =
  Alcotest.run "sat"
    [
      ( "unit",
        [
          Alcotest.test_case "literal encoding" `Quick test_lit_encoding;
          Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "equality chain unsat" `Quick test_unsat_chain;
          Alcotest.test_case "model satisfies clauses" `Quick test_model_satisfies;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "incremental clauses" `Quick test_incremental_clauses;
          Alcotest.test_case "pigeonhole 3/2" `Quick test_pigeonhole_3_2;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "clause access" `Quick test_clause_access;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "parse" `Quick test_dimacs_parse;
          Alcotest.test_case "multiline clauses" `Quick test_dimacs_multiline_clause;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
          Alcotest.test_case "solve & print" `Quick test_dimacs_solve;
        ] );
      qsuite "props" [ prop_matches_brute_force; prop_assumptions_sound ];
    ]
