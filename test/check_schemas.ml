(* Schema sweep over every committed machine-readable artifact: each
   bench/baselines/BENCH_*.json must parse as rtlsat.bench/1 (via the
   same flattener bench-diff uses), and each fixtures/trace_v<N>.jsonl
   must replay through the profiler at exactly the version its
   filename declares — fixtures named *unsupported* must instead be
   rejected.  Run by the runtest alias so a schema bump that forgets a
   committed artifact fails the build. *)

module Json = Rtlsat_obs.Json
module Forensics = Rtlsat_obs.Forensics
module Report = Rtlsat_harness.Report

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let check_bench path =
  let j =
    match Json.of_string (String.trim (read_file path)) with
    | j -> j
    | exception Json.Parse_error m -> fail "%s: not valid JSON: %s" path m
  in
  let rows =
    match Report.bench_rows j with
    | rows -> rows
    | exception Invalid_argument m -> fail "%s: %s" path m
  in
  if rows = [] then fail "%s: rtlsat.bench/1 artifact with no rows" path;
  Printf.printf "OK: %s (rtlsat.bench/1, %d rows)\n" path (List.length rows)

(* "trace_v5.jsonl" -> Some 5 *)
let declared_version path =
  let base = Filename.remove_extension (Filename.basename path) in
  let prefix = "trace_v" in
  let plen = String.length prefix in
  if String.length base <= plen || String.sub base 0 plen <> prefix then None
  else
    let rest = String.sub base plen (String.length base - plen) in
    let n = ref 0 in
    while
      !n < String.length rest && rest.[!n] >= '0' && rest.[!n] <= '9'
    do
      incr n
    done;
    if !n = 0 then None else int_of_string_opt (String.sub rest 0 !n)

let contains_sub s part =
  let n = String.length s and k = String.length part in
  let rec find i = i + k <= n && (String.sub s i k = part || find (i + 1)) in
  find 0

let check_trace path =
  let version =
    match declared_version path with
    | Some v -> v
    | None -> fail "%s: cannot read a trace version from the filename" path
  in
  if contains_sub (Filename.basename path) "unsupported" then
    match Forensics.profile_file path with
    | _ -> fail "%s: unsupported schema version %d accepted" path version
    | exception Forensics.Unsupported_schema _ ->
      Printf.printf "OK: %s (v%d rejected as unsupported)\n" path version
  else
    let p = Forensics.profile_file path in
    if p.Forensics.pf_version <> version then
      fail "%s: filename says v%d, profiler dispatched v%d" path version
        p.Forensics.pf_version;
    Printf.printf "OK: %s (rtlsat.trace/%d)\n" path version

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then fail "usage: check_schemas FILE...";
  List.iter
    (fun path ->
       if Filename.check_suffix path ".json" then check_bench path
       else if Filename.check_suffix path ".jsonl" then check_trace path
       else fail "%s: neither a .json artifact nor a .jsonl trace" path)
    files
