(* Tests for the hybrid constraint layer: atoms, linear expressions,
   problems and the RTL encoder.  The key property: for every concrete
   input valuation, the simulator's node values (extended with the
   right auxiliary values) satisfy every clause and constraint the
   encoder produced — i.e. the encoding admits exactly the circuit's
   behaviours. *)

module Ir = Rtlsat_rtl.Ir
module N = Rtlsat_rtl.Netlist
module Sim = Rtlsat_rtl.Sim
module T = Rtlsat_constr.Types
module P = Rtlsat_constr.Problem
module E = Rtlsat_constr.Encode
module I = Rtlsat_interval.Interval

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Vec unit tests ---- *)

module Vec = Rtlsat_constr.Vec

let test_vec_basics () =
  let v = Vec.create ~dummy:0 () in
  check_bool "empty" true (Vec.is_empty v);
  for i = 0 to 99 do Vec.push v (i * i) done;
  check_int "length" 100 (Vec.length v);
  check_int "get" 49 (Vec.get v 7);
  Vec.set v 7 (-1);
  check_int "set" (-1) (Vec.get v 7);
  check_int "top" (99 * 99) (Vec.top v);
  check_int "pop" (99 * 99) (Vec.pop v);
  check_int "after pop" 99 (Vec.length v);
  Vec.shrink v 10;
  check_int "after shrink" 10 (Vec.length v);
  check_int "fold" (List.fold_left ( + ) 0 (List.init 10 (fun i -> i * i)) - 49 - 1)
    (Vec.fold ( + ) 0 v);
  Vec.clear v;
  check_bool "cleared" true (Vec.is_empty v)

let test_vec_errors () =
  let v = Vec.create ~dummy:0 () in
  Alcotest.check_raises "get" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 0));
  Alcotest.check_raises "pop" (Invalid_argument "Vec.pop") (fun () ->
      ignore (Vec.pop v));
  Vec.push v 1;
  Alcotest.check_raises "shrink" (Invalid_argument "Vec.shrink") (fun () ->
      Vec.shrink v 5)

let test_vec_of_list () =
  let v = Vec.of_list ~dummy:0 [ 3; 1; 4 ] in
  Alcotest.(check (list int)) "roundtrip" [ 3; 1; 4 ] (Vec.to_list v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check_int "iteri entries" 3 (List.length !acc)

(* ---- Types unit tests ---- *)

let test_negate_atom () =
  let open T in
  Alcotest.(check bool) "pos" true (negate_atom (Pos 3) = Neg 3);
  Alcotest.(check bool) "ge" true (negate_atom (Ge (2, 5)) = Le (2, 4));
  Alcotest.(check bool) "le" true (negate_atom (Le (2, 5)) = Ge (2, 6));
  Alcotest.(check bool) "involution" true
    (negate_atom (negate_atom (Ge (1, 7))) = Ge (1, 7))

let test_lin_normalize () =
  let open T in
  let e = lin_of_terms [ (2, 1); (3, 1); (1, 2); (-1, 2) ] 4 in
  Alcotest.(check bool) "merged" true (e.terms = [ (5, 1) ]);
  check_int "const" 4 e.const

let test_lin_ops () =
  let open T in
  let a = lin_of_terms [ (1, 0); (2, 1) ] 3 in
  let b = lin_of_terms [ (1, 0); (-2, 1) ] (-3) in
  let s = lin_add a b in
  Alcotest.(check bool) "sum" true (s.terms = [ (2, 0) ] && s.const = 0);
  let d = lin_sub a a in
  Alcotest.(check bool) "self-sub" true (d.terms = [] && d.const = 0)

let test_eval () =
  let open T in
  let env = function 0 -> 3 | 1 -> 1 | _ -> 0 in
  check_int "linexpr" 6 (eval_linexpr env (lin_of_terms [ (1, 0); (3, 1) ] 0));
  check_bool "clause true" true (eval_clause env [| Pos 1; Ge (0, 5) |]);
  check_bool "clause false" false (eval_clause env [| Neg 1; Ge (0, 5) |]);
  check_bool "pred holds" true
    (eval_constr env (Pred { b = 1; e = lin_of_terms [ (1, 0) ] (-3) }));
  check_bool "mux" true (eval_constr env (Mux_w { sel = 1; t = 0; e = 1; z = 0 }))

(* ---- Problem tests ---- *)

let test_problem_basics () =
  let p = P.create () in
  let b = P.new_bool p ~name:"b" () in
  let w = P.new_word p ~name:"w" (I.make 0 7) in
  check_int "nvars" 2 (P.n_vars p);
  check_bool "bool kind" true (P.is_bool_var p b);
  check_bool "word kind" false (P.is_bool_var p w);
  Alcotest.(check string) "name" "w" (P.var_name p w);
  check_bool "bool dom" true (I.equal (P.initial_domain p b) I.bool_dom);
  Alcotest.check_raises "empty clause"
    (Invalid_argument "Problem.add_clause: empty clause") (fun () ->
        P.add_clause p [||])

let test_check_model () =
  let p = P.create () in
  let b = P.new_bool p () in
  let w = P.new_word p (I.make 0 7) in
  P.add_clause p [| T.Pos b; T.Ge (w, 5) |];
  P.add_constr p (T.Pred { b; e = T.lin_of_terms [ (1, w) ] (-3) });
  let env_of l v = List.assoc v l in
  check_bool "good model" true
    (Result.is_ok (P.check_model p (env_of [ (b, 1); (w, 2) ])));
  check_bool "bad clause" true
    (Result.is_error (P.check_model p (env_of [ (b, 0); (w, 2) ])));
  check_bool "domain violation" true
    (Result.is_error (P.check_model p (env_of [ (b, 1); (w, 9) ])))

(* ---- Encoder: simulation agreement ---- *)

(* Build an environment for the encoded problem from simulator values,
   solving for auxiliary variables (overflow bits, remainders, ...)
   by constraint inspection. *)
let env_from_sim (enc : E.t) vals =
  let n = P.n_vars enc.problem in
  let env = Array.make n min_int in
  Array.iteri
    (fun node_id v -> if v >= 0 then env.(v) <- Hashtbl.find vals node_id)
    enc.var_of;
  (* solve remaining aux vars: each appears in some Lin_eq with all
     other vars known; iterate to fixpoint *)
  let changed = ref true in
  while !changed do
    changed := false;
    P.iter_constrs
      (fun _ c ->
         match c with
         | T.Lin_eq e ->
           let unknown = List.filter (fun (_, v) -> env.(v) = min_int) e.T.terms in
           (match unknown with
            | [ (coef, v) ] ->
              let rest =
                List.fold_left
                  (fun acc (k, u) -> if u = v then acc else acc + (k * env.(u)))
                  e.T.const e.T.terms
              in
              if rest mod coef = 0 then begin
                env.(v) <- -rest / coef;
                changed := true
              end
            | _ -> ())
         | _ -> ())
      enc.problem
  done;
  (* predicate helper Booleans: b <-> e <= 0 with e fully known *)
  P.iter_constrs
    (fun _ c ->
       match c with
       | T.Pred { b; e } when env.(b) = min_int ->
         let all_known = List.for_all (fun (_, v) -> env.(v) <> min_int) e.T.terms in
         if all_known then
           env.(b) <- (if T.eval_linexpr (fun v -> env.(v)) e <= 0 then 1 else 0)
       | _ -> ())
    enc.problem;
  (* bit-splitting Booleans: recover from the channeled word value *)
  let changed = ref true in
  while !changed do
    changed := false;
    P.iter_constrs
      (fun _ c ->
         match c with
         | T.Lin_eq e ->
           let unknown = List.filter (fun (_, v) -> env.(v) = min_int) e.T.terms in
           (match unknown with
            | [] -> ()
            | _ ->
              (* bit channeling: -1*word + sum 2^i * bit_i = 0 *)
              let word =
                List.find_opt (fun (k, v) -> k = -1 && env.(v) <> min_int) e.T.terms
              in
              (match word with
               | Some (_, wv)
                 when List.for_all
                        (fun (k, v) -> v = wv || (k land (k - 1)) = 0)
                        e.T.terms ->
                 let value = env.(wv) in
                 List.iter
                   (fun (k, v) ->
                      if v <> wv && env.(v) = min_int then begin
                        let bit_idx =
                          let rec log2 k i = if k = 1 then i else log2 (k lsr 1) (i + 1) in
                          log2 k 0
                        in
                        env.(v) <- (value lsr bit_idx) land 1;
                        changed := true
                      end)
                   e.T.terms
               | _ -> ()))
         | _ -> ())
      enc.problem
  done;
  fun v ->
    if env.(v) = min_int then failwith ("aux var not recovered: " ^ P.var_name enc.problem v)
    else env.(v)

let check_encoding_on circuit inputs_list =
  let enc = E.encode circuit in
  List.iter
    (fun inputs ->
       let vals = Sim.eval circuit (Sim.initial_state circuit) ~inputs in
       let env = env_from_sim enc vals in
       match P.check_model enc.problem env with
       | Ok _ -> ()
       | Error msg -> Alcotest.failf "encoding disagrees with simulator: %s" msg)
    inputs_list

let test_encode_gates () =
  let c = N.create "gates" in
  let a = N.input c ~name:"a" 1 and b = N.input c ~name:"b" 1 in
  let x = N.and_ c [ a; b ] in
  let y = N.or_ c [ a; N.not_ c b ] in
  let z = N.xor_ c x y in
  let m = N.mux c ~sel:z ~t:a ~e:b () in
  N.output c "m" m;
  let all =
    List.concat_map (fun av -> List.map (fun bv -> [ (a, av); (b, bv) ]) [ 0; 1 ]) [ 0; 1 ]
  in
  check_encoding_on c all

let test_encode_arith () =
  let c = N.create "arith" in
  let a = N.input c ~name:"a" 3 and b = N.input c ~name:"b" 3 in
  let _sum = N.add c a b in
  let _sume = N.add_ext c a b in
  let _diff = N.sub c a b in
  let _prod = N.mul_const c 3 a in
  let _cc = N.concat c ~hi:a ~lo:b in
  let _ex = N.extract c a ~msb:2 ~lsb:1 in
  let _ze = N.zext c a ~width:5 in
  let _sl = N.shl c a 2 in
  let _sr = N.shr c a 1 in
  let inputs = ref [] in
  for av = 0 to 7 do
    for bv = 0 to 7 do
      inputs := [ (a, av); (b, bv) ] :: !inputs
    done
  done;
  check_encoding_on c !inputs

let test_encode_cmp () =
  let c = N.create "cmps" in
  let a = N.input c ~name:"a" 3 and b = N.input c ~name:"b" 3 in
  List.iter
    (fun op -> ignore (N.cmp c op a b))
    [ Ir.Eq; Ir.Ne; Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge ];
  let inputs = ref [] in
  for av = 0 to 7 do
    for bv = 0 to 7 do
      inputs := [ (a, av); (b, bv) ] :: !inputs
    done
  done;
  check_encoding_on c !inputs

let test_encode_bitwise () =
  let c = N.create "bitwise" in
  let a = N.input c ~name:"a" 3 and b = N.input c ~name:"b" 3 in
  let _x = N.bitand c a b in
  let _y = N.bitor c a b in
  let _z = N.bitxor c a b in
  let inputs = ref [] in
  for av = 0 to 7 do
    for bv = 0 to 7 do
      inputs := [ (a, av); (b, bv) ] :: !inputs
    done
  done;
  check_encoding_on c !inputs

let test_encode_rejects_sequential () =
  let c = N.create "seq" in
  let r = N.reg c ~width:2 ~init:0 () in
  N.connect r r;
  Alcotest.check_raises "regs rejected"
    (Invalid_argument "Encode.encode: sequential circuit (unroll first)")
    (fun () -> ignore (E.encode c))

let test_assume () =
  let c = N.create "assume" in
  let a = N.input c ~name:"a" 3 in
  let p = N.eq_const c a 5 in
  N.output c "p" p;
  let enc = E.encode c in
  let before = P.n_clauses enc.problem in
  E.assume_bool enc p true;
  check_int "one clause" (before + 1) (P.n_clauses enc.problem);
  E.assume_interval enc a (I.make 2 6);
  check_int "two bound clauses" (before + 3) (P.n_clauses enc.problem);
  Alcotest.check_raises "assume_bool on word"
    (Invalid_argument "Encode.assume_bool: word node") (fun () ->
        E.assume_bool enc a true)

(* property: random circuits, random inputs — encoding matches simulator *)
let prop_random_circuit =
  let gen_circuit seed =
    (* build a random 2-input-word circuit from a seed *)
    let rng = Random.State.make [| seed |] in
    let c = N.create "rand" in
    let a = N.input c ~name:"a" 4 and b = N.input c ~name:"b" 4 in
    let words = ref [ a; b ] in
    let bools = ref [] in
    let pick l = List.nth l (Random.State.int rng (List.length l)) in
    for _ = 1 to 12 do
      match Random.State.int rng 8 with
      | 0 -> words := N.add c (pick !words) (pick !words) :: !words
      | 1 -> words := N.sub c (pick !words) (pick !words) :: !words
      | 2 -> bools := N.cmp c (pick [ Ir.Eq; Ir.Lt; Ir.Ge; Ir.Ne ]) (pick !words) (pick !words) :: !bools
      | 3 ->
        if !bools <> [] then
          words := N.mux c ~sel:(pick !bools) ~t:(pick !words) ~e:(pick !words) () :: !words
      | 4 -> if !bools <> [] then bools := N.not_ c (pick !bools) :: !bools
      | 5 -> if List.length !bools >= 2 then bools := N.and_ c [ pick !bools; pick !bools ] :: !bools
      | 6 -> if List.length !bools >= 2 then bools := N.or_ c [ pick !bools; pick !bools ] :: !bools
      | _ -> words := N.bitxor c (pick !words) (pick !words) :: !words
    done;
    (* keep widths uniform: filter to width-4 words for ops above *)
    (c, a, b)
  in
  QCheck.Test.make ~name:"random circuits encode = simulate" ~count:60
    QCheck.(triple (int_bound 10_000) (int_bound 15) (int_bound 15))
    (fun (seed, av, bv) ->
       let c, a, b = gen_circuit seed in
       let enc = E.encode c in
       let vals = Sim.eval c (Sim.initial_state c) ~inputs:[ (a, av); (b, bv) ] in
       let env = env_from_sim enc vals in
       Result.is_ok (P.check_model enc.problem env))

let qsuite = Qutil.qsuite

let () =
  Alcotest.run "constr"
    [
      ( "vec",
        [
          Alcotest.test_case "push/pop/shrink/fold" `Quick test_vec_basics;
          Alcotest.test_case "bounds errors" `Quick test_vec_errors;
          Alcotest.test_case "of_list/iteri" `Quick test_vec_of_list;
        ] );
      ( "types",
        [
          Alcotest.test_case "negate_atom" `Quick test_negate_atom;
          Alcotest.test_case "lin normalize" `Quick test_lin_normalize;
          Alcotest.test_case "lin ops" `Quick test_lin_ops;
          Alcotest.test_case "eval" `Quick test_eval;
        ] );
      ( "problem",
        [
          Alcotest.test_case "basics" `Quick test_problem_basics;
          Alcotest.test_case "check_model" `Quick test_check_model;
        ] );
      ( "encode",
        [
          Alcotest.test_case "boolean gates" `Quick test_encode_gates;
          Alcotest.test_case "arithmetic ops" `Quick test_encode_arith;
          Alcotest.test_case "comparators" `Quick test_encode_cmp;
          Alcotest.test_case "bitwise splitting" `Quick test_encode_bitwise;
          Alcotest.test_case "rejects sequential" `Quick test_encode_rejects_sequential;
          Alcotest.test_case "assume" `Quick test_assume;
        ] );
      qsuite "encode-props" [ prop_random_circuit ];
    ]
