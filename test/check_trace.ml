(* Trace assertion helper for dune rules:

     check_trace TRACE EV [FIELD...]

   checks that TRACE carries the current schema (first line a header
   event carrying Trace.schema) and that at least one event named EV is
   present with every listed FIELD.  Exits non-zero with a message on
   the first violation. *)

module Json = Rtlsat_obs.Json
module Trace = Rtlsat_obs.Trace

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let () =
  let path, ev, fields =
    match Array.to_list Sys.argv with
    | _ :: path :: ev :: fields -> (path, ev, fields)
    | _ -> fail "usage: check_trace TRACE EV [FIELD...]"
  in
  let ic = open_in_bin path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  let events =
    List.map
      (fun line ->
         match Json.of_string line with
         | j -> j
         | exception Json.Parse_error m -> fail "bad trace line %S: %s" line m)
      lines
  in
  (match events with
   | [] -> fail "empty trace %s" path
   | first :: _ ->
     (match Option.bind (Json.member "ev" first) Json.get_string with
      | Some "header" -> ()
      | _ -> fail "first event of %s is not a header" path);
     (match Option.bind (Json.member "schema" first) Json.get_string with
      | Some s when s = Trace.schema -> ()
      | Some s -> fail "schema %S, wanted %S" s Trace.schema
      | None -> fail "header has no schema field"));
  let matches j =
    Option.bind (Json.member "ev" j) Json.get_string = Some ev
    && List.for_all (fun f -> Json.member f j <> None) fields
  in
  if not (List.exists matches events) then
    fail "no %S event with fields [%s] in %s (%d events)" ev
      (String.concat "; " fields)
      path (List.length events);
  Printf.printf "OK: %s has a %S event%s\n" path ev
    (if fields = [] then ""
     else " with " ^ String.concat ", " fields)
