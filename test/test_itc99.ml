(* Tests for the reconstructed ITC'99 benchmarks: structural sanity,
   simulation behaviour, property status at small bounds, and
   cross-engine agreement on real BMC instances. *)

module Ir = Rtlsat_rtl.Ir
module N = Rtlsat_rtl.Netlist
module Sim = Rtlsat_rtl.Sim
module Registry = Rtlsat_itc99.Registry
module Bmc = Rtlsat_bmc.Bmc
module Engines = Rtlsat_harness.Engines

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_registry () =
  Alcotest.(check (list string)) "circuits"
    [ "b01"; "b02"; "b03"; "b04"; "b05"; "b06"; "b07"; "b08"; "b09"; "b10"; "b11"; "b13" ]
    Registry.circuits;
  List.iter
    (fun name ->
       let c, props = Registry.build name in
       check_bool (name ^ " has properties") true (List.length props >= 2);
       check_bool (name ^ " has registers") true (List.length (Ir.regs c) >= 2);
       List.iter
         (fun (pname, p) ->
            check_bool
              (Printf.sprintf "%s_%s boolean" name pname)
              true (Ir.is_bool p))
         props)
    Registry.circuits

let test_unknown_circuit () =
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Registry.build "b99"))

(* random simulation: invariant properties must hold on random traces *)
let invariant_props =
  [ ("b01", "2"); ("b02", "1"); ("b02", "2"); ("b03", "1"); ("b03", "2");
    ("b04", "1"); ("b04", "3"); ("b05", "1"); ("b05", "2"); ("b06", "1"); ("b06", "2"); ("b07", "1");
    ("b07", "2"); ("b08", "1"); ("b08", "2"); ("b09", "1"); ("b09", "2"); ("b09", "3"); ("b10", "1");
    ("b10", "2"); ("b13", "1"); ("b13", "2"); ("b13", "3"); ("b13", "5");
    ("b13", "8") ]

let test_invariants_hold_on_random_traces () =
  let rng = Random.State.make [| 42 |] in
  List.iter
    (fun (cname, pname) ->
       let c, props = Registry.build cname in
       let p = List.assoc pname props in
       let inputs_of _ =
         List.map
           (fun n -> (n, Random.State.int rng (Ir.max_value n + 1)))
           (Ir.inputs c)
       in
       let traces = Sim.run c ~inputs:(List.init 60 inputs_of) in
       List.iteri
         (fun t vals ->
            check_int
              (Printf.sprintf "%s_%s cycle %d" cname pname t)
              1 (Sim.value vals p))
         traces)
    invariant_props

let test_b01_serial_adder () =
  let c, _ = Registry.build "b01" in
  let l1 = N.find_input c "line1" and l2 = N.find_input c "line2" in
  let outp = N.find_output c "outp" in
  (* adding the serial numbers 1 and 1 gives sum bit 0 then carry 1 *)
  let traces = Sim.run c ~inputs:[ [ (l1, 1); (l2, 1) ]; [ (l1, 0); (l2, 0) ] ] in
  check_int "sum bit cycle1" 0 (Sim.value (List.nth traces 0) outp);
  (* outp is registered: cycle 1 shows the cycle-0 sum (1+1 = 0 carry 1) *)
  check_int "sum bit cycle2" 0 (Sim.value (List.nth traces 1) outp)

let test_b04_minmax_behaviour () =
  let c, _ = Registry.build "b04" in
  let data = N.find_input c "data_in" in
  let restart = N.find_input c "restart" in
  let out = N.find_output c "data_out" in
  let feed = List.map (fun v -> [ (data, v); (restart, 0) ]) [ 10; 200; 3; 77 ] in
  let traces = Sim.run c ~inputs:feed in
  (* after seeing 10 (seed), 200, 3: rmax=200, rmin=3 -> spread 197 *)
  check_int "spread" 197 (Sim.value (List.nth traces 3) out)

let test_b13_handshake () =
  let c, _ = Registry.build "b13" in
  let eoc = N.find_input c "eoc" in
  let din = N.find_input c "din" in
  let din_valid = N.find_input c "din_valid" in
  let load = N.find_output c "load_dato" in
  let muxe = N.find_output c "mux_en" in
  (* start a byte, strobe 8 ones in, watch the transmitter fire *)
  let cycle ?(e = 0) ?(d = 1) () = [ (eoc, e); (din, d); (din_valid, 1) ] in
  let inputs = (cycle ~e:1 () :: List.init 10 (fun _ -> cycle ())) @ [ cycle (); cycle () ] in
  let traces = Sim.run c ~inputs in
  let some_load = List.exists (fun vals -> Sim.value vals load = 1) traces in
  let some_send = List.exists (fun vals -> Sim.value vals muxe = 1) traces in
  check_bool "load_dato fired" true some_load;
  check_bool "mux_en fired" true some_send

let test_instance_names () =
  Alcotest.(check string) "label" "b13_5(50)"
    (Registry.instance_name ~circuit:"b13" ~prop:"5" ~bound:50)

(* engine agreement on small real instances *)
let small_matrix =
  [
    ("b01", "1", 6); ("b01", "2", 8); ("b02", "1", 8); ("b02", "3", 8);
    ("b03", "1", 6); ("b03", "3", 6); ("b04", "1", 5); ("b04", "2", 5);
    ("b05", "1", 8); ("b05", "3", 8); ("b06", "1", 8); ("b06", "3", 6); ("b07", "2", 6); ("b07", "3", 5);
    ("b08", "1", 6); ("b08", "3", 4);
    ("b09", "1", 8); ("b09", "3", 12); ("b10", "2", 8); ("b10", "3", 10);
    ("b11", "2", 6); ("b11", "3", 4); ("b13", "3", 8); ("b13", "40", 13);
  ]

let test_engines_agree_on_small_instances () =
  List.iter
    (fun (circuit, prop, bound) ->
       let label = Registry.instance_name ~circuit ~prop ~bound in
       let verdicts =
         List.map
           (fun e ->
              let inst = Registry.instance ~circuit ~prop ~bound in
              let run =
                Engines.run_instance
                  ~req:(Rtlsat_harness.Req.make ~timeout:60.0 ())
                  e inst
              in
              (e, run.Engines.verdict))
           [ Engines.Hdpll; Engines.Hdpll_s; Engines.Hdpll_sp; Engines.Bitblast ]
       in
       match verdicts with
       | [] -> ()
       | (_, first) :: rest ->
         check_bool (label ^ " decided") true
           (first = Engines.Sat || first = Engines.Unsat);
         List.iter
           (fun (e, v) ->
              check_bool
                (Printf.sprintf "%s: %s agrees" label (Engines.engine_name e))
                true (v = first))
           rest)
    small_matrix

let test_b13_40_13_is_sat () =
  (* the paper's one satisfiable b13 row *)
  let inst = Registry.instance ~circuit:"b13" ~prop:"40" ~bound:13 in
  let run =
    Engines.run_instance
      ~req:(Rtlsat_harness.Req.make ~timeout:60.0 ())
      Engines.Hdpll_s inst
  in
  check_bool "b13_40(13) sat" true (run.Engines.verdict = Engines.Sat)

let test_b13_40_below_threshold_unsat () =
  let inst = Registry.instance ~circuit:"b13" ~prop:"40" ~bound:11 in
  let run =
    Engines.run_instance
      ~req:(Rtlsat_harness.Req.make ~timeout:60.0 ())
      Engines.Hdpll inst
  in
  check_bool "b13_40(11) unsat" true (run.Engines.verdict = Engines.Unsat)

let test_op_counts_grow_linearly () =
  let ops b = Engines.op_counts (Registry.instance ~circuit:"b13" ~prop:"1" ~bound:b) in
  let a10, b10 = ops 10 and a20, b20 = ops 20 in
  check_bool "arith grows" true (a20 > a10 && a20 < 3 * a10);
  check_bool "bool grows" true (b20 > b10 && b20 < 3 * b10)

let () =
  Alcotest.run "itc99"
    [
      ( "registry",
        [
          Alcotest.test_case "circuits & properties" `Quick test_registry;
          Alcotest.test_case "unknown circuit" `Quick test_unknown_circuit;
          Alcotest.test_case "instance names" `Quick test_instance_names;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "invariants on random traces" `Quick
            test_invariants_hold_on_random_traces;
          Alcotest.test_case "b01 serial adder" `Quick test_b01_serial_adder;
          Alcotest.test_case "b04 min/max" `Quick test_b04_minmax_behaviour;
          Alcotest.test_case "b13 handshake" `Quick test_b13_handshake;
        ] );
      ( "instances",
        [
          Alcotest.test_case "engines agree (small)" `Slow
            test_engines_agree_on_small_instances;
          Alcotest.test_case "b13_40(13) sat" `Quick test_b13_40_13_is_sat;
          Alcotest.test_case "b13_40(11) unsat" `Quick test_b13_40_below_threshold_unsat;
          Alcotest.test_case "op counts" `Quick test_op_counts_grow_linearly;
        ] );
    ]
