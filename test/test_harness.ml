(* Tests for the experiment harness, the k-induction engine, the
   randomized decision strategy and the learned-clause checker. *)

module Ir = Rtlsat_rtl.Ir
module N = Rtlsat_rtl.Netlist
module Sim = Rtlsat_rtl.Sim
module T = Rtlsat_constr.Types
module E = Rtlsat_constr.Encode
module Unroll = Rtlsat_bmc.Unroll
module Bmc = Rtlsat_bmc.Bmc
module Registry = Rtlsat_itc99.Registry
module Engines = Rtlsat_harness.Engines
module Tables = Rtlsat_harness.Tables
module Induction = Rtlsat_harness.Induction
module Solver = Rtlsat_core.Solver

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- engines ---- *)

let test_engine_names () =
  Alcotest.(check (list string)) "table2 column order"
    [ "hdpll"; "hdpll+s"; "hdpll+s+p"; "bitblast"; "lazy-cdp" ]
    (List.map Engines.engine_name Engines.table2_engines)

let test_verdict_symbols () =
  Alcotest.(check string) "S" "S" (Engines.verdict_symbol Engines.Sat);
  Alcotest.(check string) "U" "U" (Engines.verdict_symbol Engines.Unsat);
  Alcotest.(check string) "to" "-to-" (Engines.verdict_symbol Engines.Timeout);
  Alcotest.(check string) "A" "-A-" (Engines.verdict_symbol (Engines.Abort "x"))

let test_run_instance_validates_witness () =
  let inst = Registry.instance ~circuit:"b13" ~prop:"40" ~bound:13 in
  let r =
    Engines.run_instance
      ~req:(Rtlsat_harness.Req.make ~timeout:60.0 ())
      Engines.Hdpll_sp inst
  in
  check_bool "sat (so the witness replayed)" true (r.Engines.verdict = Engines.Sat)

(* ---- tables ---- *)

let test_table_instances_well_formed () =
  List.iter
    (fun (c, p, b) ->
       check_bool
         (Printf.sprintf "%s_%s(%d) exists" c p b)
         true
         (match Registry.instance ~circuit:c ~prop:p ~bound:b with
          | _ -> true
          | exception Not_found -> false))
    (Tables.table1_instances `Scaled @ Tables.table2_instances `Scaled);
  check_bool "full supersets scaled (t1)" true
    (List.length (Tables.table1_instances `Full)
     >= List.length (Tables.table1_instances `Scaled));
  check_bool "full supersets scaled (t2)" true
    (List.length (Tables.table2_instances `Full)
     >= List.length (Tables.table2_instances `Scaled))

let test_run_row () =
  let row =
    Tables.run_row ~timeout:60.0 ~engines:[ Engines.Hdpll; Engines.Hdpll_s ]
      ("b04", "1", 5)
  in
  Alcotest.(check string) "label" "b04_1(5)" row.Tables.t2_label;
  check_bool "decided" true (row.Tables.t2_type = Engines.Unsat);
  check_int "two runs" 2 (List.length row.Tables.t2_runs);
  check_bool "op counts positive" true (row.Tables.t2_arith > 0 && row.Tables.t2_bool > 0);
  (* the printers don't raise *)
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Tables.print_table2 fmt [ row ];
  Format.pp_print_flush fmt ();
  check_bool "printed something" true (Buffer.length buf > 0);
  (* CSV form: header + one data row, engine columns present *)
  let csv = Buffer.create 128 in
  let fmt = Format.formatter_of_buffer csv in
  Tables.print_table2_csv fmt [ row ];
  Format.pp_print_flush fmt ();
  (match String.split_on_char '\n' (Buffer.contents csv) with
   | header :: data :: _ ->
     Alcotest.(check string) "csv header"
       "instance,result,arith_ops,bool_ops,hdpll,hdpll+s" header;
     check_bool "csv row starts with label" true
       (String.length data > 9 && String.sub data 0 9 = "b04_1(5),")
   | _ -> Alcotest.fail "csv too short")

(* ---- k-induction ---- *)

let test_induction_proves_invariant () =
  (* b04_1 (RMAX >= RMIN in RUN) is inductive at small k *)
  let c, props = Registry.build "b04" in
  let p = List.assoc "1" props in
  match Induction.prove ~max_k:5 c ~prop:p with
  | Induction.Proved k -> check_bool "small k" true (k <= 5)
  | _ -> Alcotest.fail "expected Proved"

let test_induction_falsifies () =
  (* b04_2 (spread != 255) is violable from reset *)
  let c, props = Registry.build "b04" in
  let p = List.assoc "2" props in
  match Induction.prove ~max_k:6 c ~prop:p with
  | Induction.Falsified k -> check_bool "found within bound" true (k <= 6)
  | _ -> Alcotest.fail "expected Falsified"

let test_induction_control_only () =
  (* the receive-FSM encoding invariant of b13 is inductive *)
  let c, props = Registry.build "b13" in
  let p = List.assoc "3" props in
  match Induction.prove ~max_k:4 c ~prop:p with
  | Induction.Proved _ -> ()
  | _ -> Alcotest.fail "expected Proved"

let test_induction_unknown_on_budget () =
  (* with max_k 0 the loop cannot even start *)
  let c, props = Registry.build "b04" in
  let p = List.assoc "1" props in
  check_bool "unknown" true (Induction.prove ~max_k:0 c ~prop:p = Induction.Unknown)

(* ---- randomized decision strategy (§5.1's comparison baseline) ---- *)

let test_random_strategy_agrees () =
  List.iter
    (fun (circuit, prop, bound, expected) ->
       let inst = Registry.instance ~circuit ~prop ~bound in
       let enc = E.encode (Unroll.combo inst.Bmc.unrolled) in
       E.assume_bool enc inst.Bmc.violation true;
       let options = { Solver.hdpll with Solver.random_seed = Some 1234 } in
       let { Solver.result; _ } = Solver.solve ~options enc in
       let got = match result with
         | Solver.Sat _ -> `S | Solver.Unsat -> `U | Solver.Timeout -> `T
       in
       check_bool
         (Printf.sprintf "%s_%s(%d)" circuit prop bound)
         true (got = expected))
    [ ("b04", "1", 5, `U); ("b04", "2", 5, `S); ("b13", "40", 13, `S) ]

(* ---- learned-clause checker ("proof logging lite") ----

   Every clause learned while solving is implied by the original
   problem, so any concrete circuit behaviour (which satisfies the
   problem by construction) must satisfy it.  Fuzz the circuit with
   random inputs and evaluate every learned clause. *)

let eval_atom_with env = T.eval_atom env

let test_learned_clauses_sound () =
  let inst = Registry.instance ~circuit:"b13" ~prop:"2" ~bound:20 in
  let combo = Unroll.combo inst.Bmc.unrolled in
  let enc = E.encode combo in
  E.assume_bool enc inst.Bmc.violation true;
  let options = { Solver.hdpll_sp with Solver.collect_learned = true } in
  let { Solver.result = _; learned_clauses; _ } = Solver.solve ~options enc in
  check_bool "learned something" true (List.length learned_clauses > 0);
  (* random concrete behaviours of the circuit, with the violation
     objective satisfied or not — clauses learned from the problem
     including the objective must hold whenever the objective does *)
  let rng = Random.State.make [| 99 |] in
  let trials = ref 0 in
  for _ = 1 to 200 do
    let inputs =
      List.map
        (fun n -> (n, Random.State.int rng (Ir.max_value n + 1)))
        (Ir.inputs combo)
    in
    let vals = Sim.eval combo (Sim.initial_state combo) ~inputs in
    if Sim.value vals inst.Bmc.violation = 1 then begin
      incr trials;
      (* extend node values to auxiliary solver variables: learned
         clauses may mention them, so restrict the check to clauses
         over node-mapped variables *)
      let node_of_var = Array.make (Rtlsat_constr.Problem.n_vars enc.E.problem) None in
      List.iter
        (fun n -> node_of_var.(E.var enc n) <- Some n)
        (Ir.nodes combo);
      let value v = match node_of_var.(v) with
        | Some n -> Some (Sim.value vals n)
        | None -> None
      in
      List.iter
        (fun cl ->
           let all_mapped =
             Array.for_all (fun a -> value (T.atom_var a) <> None) cl
           in
           if all_mapped then begin
             let env v = Option.get (value v) in
             check_bool "learned clause holds on behaviour" true
               (Array.exists (eval_atom_with env) cl)
           end)
        learned_clauses
    end
  done
  (* note: [trials] may be 0 if random inputs never violate; the SAT
     instance chosen makes violations easy to hit *)

let () =
  Alcotest.run "harness"
    [
      ( "engines",
        [
          Alcotest.test_case "names" `Quick test_engine_names;
          Alcotest.test_case "verdict symbols" `Quick test_verdict_symbols;
          Alcotest.test_case "witness validation" `Quick test_run_instance_validates_witness;
        ] );
      ( "tables",
        [
          Alcotest.test_case "instances well-formed" `Quick test_table_instances_well_formed;
          Alcotest.test_case "run_row" `Quick test_run_row;
        ] );
      ( "induction",
        [
          Alcotest.test_case "proves b04_1" `Quick test_induction_proves_invariant;
          Alcotest.test_case "falsifies b04_2" `Quick test_induction_falsifies;
          Alcotest.test_case "proves b13_3" `Quick test_induction_control_only;
          Alcotest.test_case "unknown on zero budget" `Quick test_induction_unknown_on_budget;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "randomized strategy agrees" `Quick test_random_strategy_agrees;
          Alcotest.test_case "learned clauses sound" `Quick test_learned_clauses_sound;
        ] );
    ]
