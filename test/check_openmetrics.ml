(* OpenMetrics exposition checker for dune rules:

     check_openmetrics FILE

   validates the line grammar of an OpenMetrics text exposition:
   - comment lines are only "# TYPE <name> <type>" / "# HELP <name> <text>"
     / the final "# EOF"
   - sample lines are "<name>[{labels}] <value>" with a well-formed
     metric name, balanced quoted label values and a numeric value
   - every sample belongs to a family declared by a preceding TYPE
     (modulo the _total/_bucket/_sum/_count suffixes)
   - the last line is exactly "# EOF" and nothing follows it

   Exits non-zero with a message on the first violation. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let is_name s =
  s <> ""
  && (let c = s.[0] in not (c >= '0' && c <= '9'))
  && String.for_all is_name_char s

let valid_types = [ "counter"; "gauge"; "histogram"; "summary"; "info" ]

(* strip a sample-name suffix back to its family name *)
let family_of name =
  let strip suffix =
    let n = String.length name and k = String.length suffix in
    if n > k && String.sub name (n - k) k = suffix then
      Some (String.sub name 0 (n - k))
    else None
  in
  match List.filter_map strip [ "_total"; "_bucket"; "_sum"; "_count" ] with
  | base :: _ -> base
  | [] -> name

(* split "name{l="v",..} 1.5" into (name, rest-after-labels); label
   values may contain escaped quotes *)
let parse_sample lineno line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do incr i done;
  if !i = 0 then fail "line %d: no metric name: %S" lineno line;
  let name = String.sub line 0 !i in
  if not (is_name name) then fail "line %d: bad metric name %S" lineno name;
  if !i < n && line.[!i] = '{' then begin
    incr i;
    let in_quotes = ref false and escaped = ref false and closed = ref false in
    while !i < n && not !closed do
      (let c = line.[!i] in
       if !escaped then escaped := false
       else if c = '\\' then escaped := true
       else if c = '"' then in_quotes := not !in_quotes
       else if c = '}' && not !in_quotes then closed := true);
      incr i
    done;
    if not !closed then fail "line %d: unterminated label set: %S" lineno line
  end;
  if !i >= n || line.[!i] <> ' ' then
    fail "line %d: no space before value: %S" lineno line;
  let value = String.sub line (!i + 1) (n - !i - 1) in
  (match float_of_string_opt value with
   | Some _ -> ()
   | None ->
     if value <> "+Inf" && value <> "-Inf" && value <> "NaN" then
       fail "line %d: non-numeric value %S" lineno value);
  name

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ -> fail "usage: check_openmetrics FILE"
  in
  let ic = open_in_bin path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  if lines = [] then fail "empty exposition %s" path;
  let declared = Hashtbl.create 16 in
  let eof_seen = ref false in
  let samples = ref 0 in
  List.iteri
    (fun idx line ->
       let lineno = idx + 1 in
       if !eof_seen then fail "line %d: content after # EOF" lineno;
       if line = "# EOF" then eof_seen := true
       else if String.length line > 0 && line.[0] = '#' then begin
         match String.split_on_char ' ' line with
         | "#" :: "TYPE" :: name :: [ typ ] ->
           if not (is_name name) then
             fail "line %d: bad family name %S" lineno name;
           if not (List.mem typ valid_types) then
             fail "line %d: unknown metric type %S" lineno typ;
           Hashtbl.replace declared name ()
         | "#" :: "HELP" :: name :: _ ->
           if not (is_name name) then
             fail "line %d: bad family name %S" lineno name
         | _ -> fail "line %d: malformed comment %S" lineno line
       end
       else if String.trim line = "" then
         fail "line %d: blank line in exposition" lineno
       else begin
         let name = parse_sample lineno line in
         let fam = family_of name in
         if not (Hashtbl.mem declared fam || Hashtbl.mem declared name) then
           fail "line %d: sample %S has no preceding # TYPE for %S" lineno
             name fam;
         incr samples
       end)
    lines;
  if not !eof_seen then fail "%s does not end with # EOF" path;
  if !samples = 0 then fail "%s has no samples" path;
  Printf.printf "OK: %s is a well-formed OpenMetrics exposition (%d samples)\n"
    path !samples
