(* Tests for the pre/inprocessing pipeline: the pure CNF passes
   (subsumption, self-subsuming resolution, bounded variable
   elimination with model reconstruction, failed-literal probing,
   binary-implication SCC collapsing), the hybrid clause-database pass,
   the DIMACS round trip, and — the lock-in — simplify-on vs
   simplify-off verdict agreement across every engine. *)

module Simp = Rtlsat_simplify.Simp
module Cdcl = Rtlsat_sat.Cdcl
module Dimacs = Rtlsat_sat.Dimacs
module Bitblast = Rtlsat_baselines.Bitblast
module Solver = Rtlsat_core.Solver
module Engines = Rtlsat_harness.Engines
module Registry = Rtlsat_itc99.Registry
module Bmc = Rtlsat_bmc.Bmc
module Unroll = Rtlsat_bmc.Unroll
module Obs = Rtlsat_obs.Obs
module Case = Rtlsat_fuzz.Case
module Gen = Rtlsat_fuzz.Gen
module P = Rtlsat_constr.Problem
module T = Rtlsat_constr.Types
module I = Rtlsat_interval.Interval

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* DIMACS-style literal over 0-based solver encoding: [l 1] is
   variable 0 positive, [l (-1)] its negation *)
let l n = if n > 0 then 2 * (n - 1) else (2 * (-n - 1)) + 1

let clause lits = Array.of_list (List.map l lits)

let run ?elim ?max_rounds ~nvars cls =
  Simp.run ?elim ?max_rounds ~nvars ~units:[]
    ~clauses:(List.map clause cls) ()

(* a clause list is satisfied under a model indexed by variable *)
let sat_under model cls =
  List.for_all
    (fun c ->
       List.exists
         (fun n -> if n > 0 then model.(n - 1) else not model.(-n - 1))
         c)
    cls

(* ---- the individual passes ---- *)

let test_subsumption () =
  let cls = [ [ 1; 2 ]; [ 1; 2; 3 ]; [ -1; 3 ] ] in
  let r = run ~elim:false ~nvars:3 cls in
  check_int "one clause subsumed" 1 r.Simp.r_stats.Simp.subsumed;
  check_bool "not unsat" false r.Simp.r_unsat;
  check_bool "superset clause gone" true
    (not (List.exists (fun c -> Array.length c = 3) r.Simp.r_clauses))

let test_self_subsumption () =
  (* (1 2) with (-1 2 3): the resolvent on 1 strengthens the second
     clause to (2 3) *)
  let r = run ~elim:false ~nvars:3 [ [ 1; 2 ]; [ -1; 2; 3 ] ] in
  check_int "one literal removed" 1 r.Simp.r_stats.Simp.strengthened;
  check_bool "strengthened clause present" true
    (List.exists
       (fun c -> List.sort compare (Array.to_list c) = [ l 2; l 3 ])
       r.Simp.r_clauses)

let test_variable_elimination_and_reconstruction () =
  (* resolving out 1 from (1 2 3) and (-1 2 4) leaves (2 3 4); a model
     of the residue must extend to the eliminated variable *)
  let cls = [ [ 1; 2; 3 ]; [ -1; 2; 4 ] ] in
  let r = run ~nvars:4 cls in
  check_bool "variables eliminated" true (r.Simp.r_stats.Simp.eliminated >= 1);
  check_bool "sat residue" false r.Simp.r_unsat;
  (* everything is eliminable here, so the residue must be empty *)
  check_int "no clauses left" 0 (List.length r.Simp.r_clauses);
  let model = Array.make 4 false in
  List.iter (fun u -> model.(u lsr 1) <- u land 1 = 0) r.Simp.r_units;
  Simp.extend_model r model;
  check_bool "reconstructed model satisfies the original" true
    (sat_under model cls)

let test_failed_literal () =
  (* assuming -1 propagates 2 and 3 into the conflict (-2 -3), so 1 is
     a top-level unit *)
  let r =
    run ~elim:false ~nvars:3 [ [ 1; 2 ]; [ 1; 3 ]; [ -2; -3 ] ]
  in
  check_int "one failed literal" 1 r.Simp.r_stats.Simp.probed;
  check_bool "1 derived as a unit" true (List.mem (l 1) r.Simp.r_units)

let test_scc_equivalence () =
  (* (-1 2)(1 -2) make 1 and 2 equivalent; 2 is substituted by 1 *)
  let r = run ~elim:false ~nvars:3 [ [ -1; 2 ]; [ 1; -2 ]; [ 1; 3 ] ] in
  check_int "one equivalence" 1 r.Simp.r_stats.Simp.equivs;
  check_int "2 maps onto 1" (l 1) (Simp.map_lit r.Simp.r_repr (l 2));
  check_int "-2 maps onto -1" (l (-1)) (Simp.map_lit r.Simp.r_repr (l (-2)))

let test_scc_detects_unsat () =
  (* 1 -> 2 -> -1 and -1 -> 1: a literal in the same component as its
     negation *)
  let r =
    run ~elim:false ~nvars:2 [ [ -1; 2 ]; [ -2; -1 ]; [ 1; 2 ]; [ 1; -2 ] ]
  in
  check_bool "unsat" true r.Simp.r_unsat

let test_frozen_never_eliminated () =
  let cls = [ [ 1; 2; 3 ]; [ -1; 2; 4 ] ] in
  let r =
    Simp.run ~frozen:(fun v -> v = 0) ~nvars:4 ~units:[]
      ~clauses:(List.map clause cls) ()
  in
  check_bool "frozen variable survives" true
    (not (List.mem_assoc 0 r.Simp.r_elim))

(* ---- CDCL end-to-end: on/off equivalence with model checking ---- *)

(* deterministic random k-CNF text; small enough that both arms always
   decide *)
let random_cnf ~seed ~nvars ~nclauses =
  let rng = Random.State.make [| 0x51a9; seed |] in
  let b = Buffer.create 256 in
  Printf.bprintf b "p cnf %d %d\n" nvars nclauses;
  for _ = 1 to nclauses do
    let len = 1 + Random.State.int rng 3 in
    for _ = 1 to len do
      let v = 1 + Random.State.int rng nvars in
      Printf.bprintf b "%d "
        (if Random.State.bool rng then v else -v)
    done;
    Buffer.add_string b "0\n"
  done;
  Buffer.contents b

let test_solve_text_on_off_agree () =
  for seed = 0 to 39 do
    let text = random_cnf ~seed ~nvars:12 ~nclauses:(20 + seed) in
    let _, cls = Dimacs.parse text in
    let verdict = function
      | `Sat _ -> "sat" | `Unsat -> "unsat" | `Timeout -> "timeout"
    in
    let on = Dimacs.solve_text ~simplify:true text in
    let off = Dimacs.solve_text ~simplify:false text in
    check_string
      (Printf.sprintf "seed %d verdicts agree" seed)
      (verdict off) (verdict on);
    (* a Sat model from the simplified solve must check out against
       the *original* clauses: this exercises SCC substitution and
       variable-elimination reconstruction end to end *)
    (match on with
     | `Sat model ->
       check_bool
         (Printf.sprintf "seed %d reconstructed model satisfies input" seed)
         true (sat_under model cls)
     | _ -> ());
    match Dimacs.solve_text ~simplify:true ~inprocess:16 text with
    | `Timeout -> Alcotest.fail "inprocessing timed out a tiny CNF"
    | v ->
      check_string
        (Printf.sprintf "seed %d inprocessing verdict" seed)
        (verdict off) (verdict v)
  done

(* ---- DIMACS round trip ---- *)

let bitblast_instance inst =
  let bb = Bitblast.encode (Unroll.combo inst.Bmc.unrolled) in
  Bitblast.assume_bool bb inst.Bmc.violation true;
  bb

let test_dimacs_roundtrip () =
  (* the exported CNF of a bit-blasted instance must parse back and
     solve to the same verdict as the in-memory clause database *)
  List.iter
    (fun (circuit, prop, bound) ->
       let inst = Registry.instance ~circuit ~prop ~bound in
       let bb = bitblast_instance inst in
       let text = Bitblast.to_dimacs bb in
       let nvars, cls = Dimacs.parse text in
       check_bool "variables declared" true (nvars > 0);
       check_bool "clauses exported" true (List.length cls > 0);
       let direct =
         match Bitblast.solve bb with
         | Bitblast.Sat -> "sat"
         | Bitblast.Unsat -> "unsat"
         | Bitblast.Timeout -> "timeout"
       in
       let roundtrip =
         match Dimacs.solve_text text with
         | `Sat _ -> "sat" | `Unsat -> "unsat" | `Timeout -> "timeout"
       in
       check_string
         (Printf.sprintf "%s_%s(%d) round trip" circuit prop bound)
         direct roundtrip)
    [ ("b01", "1", 4); ("b02", "1", 4); ("b13", "5", 3) ]

let expect_parse_error ~line ~needle text =
  match Dimacs.parse text with
  | _ -> Alcotest.failf "parse accepted malformed input (%s)" needle
  | exception Failure msg ->
    let prefix = Printf.sprintf "line %d:" line in
    let has s =
      let n = String.length msg and k = String.length s in
      let rec at i = i + k <= n && (String.sub msg i k = s || at (i + 1)) in
      at 0
    in
    check_bool (Printf.sprintf "%S carries %S" msg prefix) true (has prefix);
    check_bool (Printf.sprintf "%S mentions %S" msg needle) true (has needle)

let test_dimacs_errors () =
  expect_parse_error ~line:1 ~needle:"bad problem line" "p cnf x\n1 0\n";
  expect_parse_error ~line:2 ~needle:"bad variable count" "c ok\np cnf -1 2\n";
  expect_parse_error ~line:1 ~needle:"clause before the problem line" "1 2 0\n";
  expect_parse_error ~line:2 ~needle:"bad literal" "p cnf 2 1\n1 two 0\n";
  expect_parse_error ~line:3 ~needle:"exceeds declared variables"
    "p cnf 2 2\n1 2 0\n3 0\n";
  expect_parse_error ~line:1 ~needle:"missing problem line" "c nothing else\n"

(* ---- hybrid clause database ---- *)

(* a problem with redundant bound atoms: x <= 5 subsumes x <= 9 at the
   clause level once both appear, and the solve must agree with the
   un-simplified one *)
let hybrid_problem () =
  let p = P.create () in
  let a = P.new_bool p ~name:"a" () in
  let x = P.new_word p ~name:"x" (I.make 0 100) in
  let y = P.new_word p ~name:"y" (I.make 0 100) in
  P.add_constr p (T.Lin_le (T.lin_of_terms [ (1, x); (1, y) ] 90));
  P.add_constr p (T.Lin_le (T.lin_of_terms [ (1, y); (-1, x) ] 10));
  ignore a;
  p

let test_hybrid_on_off_same_result () =
  let on =
    Solver.solve_problem
      ~options:{ Solver.hdpll_sp with Solver.simplify = true }
      (hybrid_problem ())
  in
  let off =
    Solver.solve_problem
      ~options:{ Solver.hdpll_sp with Solver.simplify = false }
      (hybrid_problem ())
  in
  check_bool "same verdict" true
    ((match on.Solver.result with Solver.Sat _ -> "sat" | Solver.Unsat -> "unsat" | _ -> "to")
     = (match off.Solver.result with Solver.Sat _ -> "sat" | Solver.Unsat -> "unsat" | _ -> "to"))

let test_hybrid_phase_instrumented () =
  (* the simplify phase must be entered and its counters surfaced when
     an obs handle is attached.  bound 10 (not 5): b13_1(5) is decided
     at the root by predicate learning, which short-circuits before the
     pre-search simplification hook — the phase is only entered on
     instances that actually reach the search loop *)
  let obs = Obs.create () in
  let inst = Registry.instance ~circuit:"b13" ~prop:"1" ~bound:10 in
  let r =
    Engines.run_instance
      ~req:(Rtlsat_harness.Req.make ~timeout:20.0 ~obs ())
      Engines.Hdpll_sp inst
  in
  check_bool "decided" true
    (match r.Engines.verdict with
     | Engines.Sat | Engines.Unsat -> true
     | _ -> false);
  let s = Obs.snapshot obs in
  let _, _, calls =
    List.find (fun (n, _, _) -> n = "simplify") s.Obs.phases
  in
  check_bool "simplify phase entered" true (calls >= 1)

let test_engine_simplify_off_matches_seed_behaviour () =
  (* --no-simplify must reproduce the prior solver exactly: same
     verdict, same decision/conflict counts with and without the new
     code path for a deterministic instance *)
  let inst () = Registry.instance ~circuit:"b13" ~prop:"1" ~bound:10 in
  let off =
    Engines.run_instance
      ~req:(Rtlsat_harness.Req.make ~timeout:60.0 ~simplify:false ())
      Engines.Hdpll_sp (inst ())
  in
  let on =
    Engines.run_instance
      ~req:(Rtlsat_harness.Req.make ~timeout:60.0 ())
      Engines.Hdpll_sp (inst ())
  in
  check_string "verdicts equal"
    (Engines.verdict_symbol off.Engines.verdict)
    (Engines.verdict_symbol on.Engines.verdict);
  check_bool "off arm decided" true (off.Engines.verdict = Engines.Unsat)

(* ---- the lock-in property: simplify on/off verdict agreement ---- *)

(* every engine, simplify on vs off (plus the bit-blast export through
   the DIMACS front end, on and off): all non-timeout verdicts on a
   random circuit must agree.  Sat answers are only reported after the
   witness replayed through the simulator inside [run_instance], so an
   unsound reconstruction surfaces as Abort and fails the property. *)
let simplify_verdict_agreement =
  QCheck.Test.make ~count:30 ~name:"simplify on/off verdicts agree"
    QCheck.(small_nat)
    (fun seed ->
       let case =
         Gen.circuit ~seed ~cfg:{ Gen.default with Gen.max_nodes = 10 } ()
       in
       let inst = Case.instance case in
       let module E = Engines in
       let run simplify engine =
         (E.run_instance
            ~req:(Rtlsat_harness.Req.make ~timeout:2.0 ~simplify ())
            engine inst)
           .E.verdict
       in
       let engine_vs =
         List.concat_map
           (fun e -> [ run true e; run false e ])
           [ E.Hdpll; E.Hdpll_s; E.Hdpll_p; E.Hdpll_sp; E.Bitblast ]
       in
       let dimacs_vs =
         let text = Bitblast.to_dimacs (bitblast_instance inst) in
         List.map
           (fun simplify ->
              match Dimacs.solve_text ~deadline:(Unix.gettimeofday () +. 2.0)
                      ~simplify text with
              | `Sat _ -> E.Sat
              | `Unsat -> E.Unsat
              | `Timeout -> E.Timeout)
           [ true; false ]
       in
       let vs = engine_vs @ dimacs_vs in
       if List.exists (function E.Abort _ -> true | _ -> false) vs then false
       else
         match
           List.filter (function E.Sat | E.Unsat -> true | _ -> false) vs
         with
         | [] -> true (* timeouts never count as disagreement *)
         | v :: rest -> List.for_all (( = ) v) rest)

let () =
  Alcotest.run "simplify"
    [
      ( "passes",
        [
          Alcotest.test_case "subsumption" `Quick test_subsumption;
          Alcotest.test_case "self-subsumption" `Quick test_self_subsumption;
          Alcotest.test_case "variable elimination + reconstruction" `Quick
            test_variable_elimination_and_reconstruction;
          Alcotest.test_case "failed literal" `Quick test_failed_literal;
          Alcotest.test_case "scc equivalence" `Quick test_scc_equivalence;
          Alcotest.test_case "scc unsat" `Quick test_scc_detects_unsat;
          Alcotest.test_case "frozen variables" `Quick
            test_frozen_never_eliminated;
        ] );
      ( "cdcl",
        [
          Alcotest.test_case "on/off + models on random CNF" `Quick
            test_solve_text_on_off_agree;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "round trip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "malformed input errors" `Quick test_dimacs_errors;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "on/off same result" `Quick
            test_hybrid_on_off_same_result;
          Alcotest.test_case "phase instrumented" `Quick
            test_hybrid_phase_instrumented;
          Alcotest.test_case "off reproduces seed behaviour" `Quick
            test_engine_simplify_off_matches_seed_behaviour;
        ] );
      Qutil.qsuite "equivalence" [ simplify_verdict_agreement ];
    ]
