(* First-class engine modules (Engine.S): the seed-42 equivalence
   suite — every engine routed through the new module surface must
   answer exactly as the pre-refactor dispatch it replaced, which is
   reconstructed here over the raw Solver / Bitblast / Lazy_cdp APIs —
   plus the capability-declaration consistency checks (static caps vs
   observed behaviour) and an in-process warm-reuse check of the
   [rtlsat serve] daemon. *)

module Bmc = Rtlsat_bmc.Bmc
module Unroll = Rtlsat_bmc.Unroll
module E = Rtlsat_constr.Encode
module Solver = Rtlsat_core.Solver
module Bb = Rtlsat_baselines.Bitblast
module Lz = Rtlsat_baselines.Lazy_cdp
module Engine = Rtlsat_harness.Engine
module Engines = Rtlsat_harness.Engines
module Req = Rtlsat_harness.Req
module Serve = Rtlsat_harness.Serve
module Registry = Rtlsat_itc99.Registry
module Obs = Rtlsat_obs.Obs
module Mono = Rtlsat_obs.Mono
module Json = Rtlsat_obs.Json
module Gen = Rtlsat_fuzz.Gen
module Case = Rtlsat_fuzz.Case

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---- the pre-refactor dispatch, reconstructed over the raw APIs ---- *)

(* Verdicts exactly as the old variant-matching [Engines.run_instance]
   computed them before the Engine.S refactor: hand-rolled encode +
   engine call + witness replay, with the old default knobs
   (split on, simplify on, inprocess off).  The module path under test
   must never disagree with this. *)
let direct_verdict ?(timeout = 5.0) engine (inst : Bmc.instance) =
  let deadline = Mono.now () +. timeout in
  match (engine : Engine.id) with
  | Engine.Hdpll | Engine.Hdpll_s | Engine.Hdpll_sp | Engine.Hdpll_p ->
    let enc = E.encode (Unroll.combo inst.Bmc.unrolled) in
    E.assume_bool enc inst.Bmc.violation true;
    let base =
      match engine with
      | Engine.Hdpll -> Solver.hdpll
      | Engine.Hdpll_s -> Solver.hdpll_s
      | Engine.Hdpll_sp -> Solver.hdpll_sp
      | _ -> Solver.hdpll_p
    in
    let options =
      { base with
        Solver.deadline;
        Solver.split = true;
        Solver.simplify = true;
        Solver.inprocess = 0;
      }
    in
    (match (Solver.solve ~options enc).Solver.result with
     | Solver.Unsat -> Engine.Unsat
     | Solver.Timeout -> Engine.Timeout
     | Solver.Sat m ->
       if Bmc.witness_ok inst (fun n -> m.(E.var enc n)) then Engine.Sat
       else Engine.Abort "witness failed replay")
  | Engine.Bitblast ->
    let bb = Bb.encode (Unroll.combo inst.Bmc.unrolled) in
    Bb.assume_bool bb inst.Bmc.violation true;
    Bb.simplify ~elim:true bb;
    (match Bb.solve ~deadline bb with
     | Bb.Unsat -> Engine.Unsat
     | Bb.Timeout -> Engine.Timeout
     | Bb.Sat ->
       if Bmc.witness_ok inst (Bb.node_value bb) then Engine.Sat
       else Engine.Abort "witness failed replay")
  | Engine.Lazy_cdp ->
    let enc = E.encode (Unroll.combo inst.Bmc.unrolled) in
    E.assume_bool enc inst.Bmc.violation true;
    (match Lz.solve ~deadline enc.E.problem with
     | Lz.Unsat, _ -> Engine.Unsat
     | Lz.Timeout, _ -> Engine.Timeout
     | Lz.Sat m, _ ->
       if Bmc.witness_ok inst (fun n -> m.(E.var enc n)) then Engine.Sat
       else Engine.Abort "witness failed replay")

(* Timeouts on either side are budget noise, never a disagreement; a
   witness-replay Abort on either side always fails. *)
let agree label (module_path : Engine.verdict) (direct : Engine.verdict) =
  match (module_path, direct) with
  | Engine.Timeout, _ | _, Engine.Timeout -> ()
  | a, b ->
    check_string label (Engine.verdict_symbol b) (Engine.verdict_symbol a)

(* ---- corpus equivalence, every engine ---- *)

let corpus_dir () =
  if Sys.file_exists "corpus" then "corpus"
  else Filename.concat (Filename.dirname Sys.executable_name) "corpus"

let corpus_cases () =
  let dir = corpus_dir () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".rtl")
  |> List.sort compare
  |> List.map (fun f -> (f, Case.of_file (Filename.concat dir f)))

let test_corpus_equivalence () =
  List.iter
    (fun (file, case) ->
       List.iter
         (fun id ->
            let r =
              Engines.run_instance
                ~req:(Req.make ~timeout:5.0 ())
                id (Case.instance case)
            in
            agree
              (file ^ " on " ^ Engine.name_of id)
              r.Engines.verdict
              (direct_verdict id (Case.instance case)))
         Engine.all_ids)
    (corpus_cases ())

(* ---- the lazy-cdp scratch-sweep arm ---- *)

(* The lazy CDP has no incremental interface: its [session] must
   re-solve every bound from scratch with zero carried counters, and
   still agree with a hand-rolled fresh encode+solve per bound. *)
let test_lazy_scratch_sweep () =
  let source, props = Registry.build "b01" in
  let p = List.assoc "1" props in
  let bounds = [ 2; 4; 6 ] in
  let steps =
    Engines.run_sweep ~req:(Req.make ~timeout:5.0 ()) Engine.Lazy_cdp source
      ~prop:p ~bounds
  in
  check_int "one step per bound" (List.length bounds) (List.length steps);
  let sw = Bmc.sweep source ~prop:p () in
  List.iter2
    (fun (step : Engines.sweep_step) bound ->
       check_int "step bound" bound step.Engines.sw_bound;
       check_int "nothing carried" 0 step.Engines.sw_carried_clauses;
       check_int "no relations carried" 0 step.Engines.sw_carried_relations;
       let vnode = Bmc.sweep_violation sw ~bound in
       let enc = E.encode (Unroll.combo (Bmc.sweep_unrolled sw)) in
       E.assume_bool enc vnode true;
       let direct =
         match Lz.solve ~deadline:(Mono.now () +. 5.0) enc.E.problem with
         | Lz.Unsat, _ -> Engine.Unsat
         | Lz.Timeout, _ -> Engine.Timeout
         | Lz.Sat m, _ ->
           let inst = Bmc.sweep_instance sw ~bound in
           if Bmc.witness_ok inst (fun n -> m.(E.var enc n)) then Engine.Sat
           else Engine.Abort "witness failed replay"
       in
       agree
         (Printf.sprintf "lazy-cdp sweep bound %d" bound)
         step.Engines.sw_run.Engines.verdict direct)
    steps bounds

(* ---- seed-42 property: random circuits, all engines ---- *)

let prop_module_path_equiv =
  QCheck.Test.make ~count:10
    ~name:"Engine.S path agrees with pre-refactor dispatch (all engines)"
    QCheck.small_nat
    (fun seed ->
       let case =
         Gen.circuit ~seed ~cfg:{ Gen.default with Gen.max_nodes = 10 } ()
       in
       List.for_all
         (fun id ->
            let r =
              Engines.run_instance
                ~req:(Req.make ~timeout:2.0 ())
                id (Case.instance case)
            in
            match
              (r.Engines.verdict,
               direct_verdict ~timeout:2.0 id (Case.instance case))
            with
            | Engine.Timeout, _ | _, Engine.Timeout -> true
            | Engine.Abort _, _ | _, Engine.Abort _ -> false
            | a, b -> a = b)
         Engine.all_ids)

(* ---- capability declarations: registry consistency ---- *)

let test_caps_registry () =
  check_int "six engines registered" 6 (List.length Engine.all);
  List.iter2
    (fun id (module M : Engine.S) ->
       let label = Engine.name_of id in
       check_bool (label ^ ": module id matches") true (M.id = id);
       check_string (label ^ ": module name matches") (Engine.name_of id) M.name;
       check_bool (label ^ ": caps match caps_of") true
         (M.caps = Engine.caps_of id);
       check_bool (label ^ ": name round-trips") true
         (Engine.of_name M.name = Some id))
    Engine.all_ids Engine.all

(* ---- capability declarations: observed behaviour ---- *)

(* b13/1 at bound 10 reaches the search loop in every configuration:
   the right instance to watch which phases an engine actually enters
   and whether it exports learned clauses. *)
let test_caps_behaviour () =
  List.iter
    (fun id ->
       let label = Engine.name_of id in
       let caps = Engine.caps_of id in
       let obs = Obs.create () in
       let learned = ref 0 in
       let req =
         Req.make ~timeout:60.0 ~obs ~on_learn:(fun _ -> incr learned) ()
       in
       let inst =
         (* the lazy CDP cannot decide b13 in any reasonable budget;
            its capability probes (no simplify phase, no learned-clause
            export) hold on any instance it can finish *)
         if id = Engine.Lazy_cdp then
           Registry.instance ~circuit:"b01" ~prop:"1" ~bound:3
         else Registry.instance ~circuit:"b13" ~prop:"1" ~bound:10
       in
       let r = Engines.run_instance ~req id inst in
       check_bool (label ^ ": decided within budget") true
         (match r.Engines.verdict with
          | Engines.Sat | Engines.Unsat -> true
          | _ -> false);
       let s = Obs.snapshot obs in
       let simplify_calls =
         match
           List.find_opt (fun (n, _, _) -> n = "simplify") s.Obs.phases
         with
         | Some (_, _, calls) -> calls
         | None -> 0
       in
       (* an engine that does not declare honors_simplify must never
          enter the simplify phase; the declared ones must on an
          instance that reaches search *)
       check_bool
         (Printf.sprintf "%s: honors_simplify=%b consistent with %d calls"
            label caps.Engine.honors_simplify simplify_calls)
         caps.Engine.honors_simplify (simplify_calls > 0);
       if not caps.Engine.exports_learned_clauses then
         check_int (label ^ ": on_learn never fires") 0 !learned
       else if r.Engines.conflicts > 0 then
         check_bool (label ^ ": on_learn fired on conflicts") true
           (!learned > 0);
       Obs.close obs)
    Engine.all_ids

(* supports_sessions = false must mean zero carried counters across a
   whole sweep *)
let test_caps_sessions () =
  let source, props = Registry.build "b02" in
  let p = List.assoc "1" props in
  List.iter
    (fun id ->
       let caps = Engine.caps_of id in
       if not caps.Engine.supports_sessions then
         let steps =
           Engines.run_sweep
             ~req:(Req.make ~timeout:30.0 ())
             id source ~prop:p ~bounds:[ 4; 8 ]
         in
         List.iter
           (fun (st : Engines.sweep_step) ->
              check_int
                (Engine.name_of id ^ ": sessionless carries no clauses")
                0 st.Engines.sw_carried_clauses;
              check_int
                (Engine.name_of id ^ ": sessionless carries no relations")
                0 st.Engines.sw_carried_relations)
           steps)
    Engine.all_ids

(* ---- mode contract: solve vs sweep_step are not interchangeable ---- *)

let test_mode_contract () =
  let source, props = Registry.build "b01" in
  let p = List.assoc "1" props in
  let inst = Registry.instance ~circuit:"b01" ~prop:"1" ~bound:3 in
  List.iter
    (fun (module M : Engine.S) ->
       let req = Req.default in
       let one = M.create ~req inst in
       (try
          ignore (M.sweep_step ~req one ~bound:3);
          Alcotest.failf "%s: sweep_step on a one-shot context must raise"
            M.name
        with Invalid_argument _ -> ());
       let sw = M.session ~req source ~prop:p in
       try
         ignore (M.solve ~req sw);
         Alcotest.failf "%s: solve on a sweep context must raise" M.name
       with Invalid_argument _ -> ())
    Engine.all

(* ---- serve: the second identical request hits the warm session ---- *)

let test_serve_warm_reuse () =
  let t = Serve.create () in
  let request id =
    Printf.sprintf
      "{\"op\":\"solve\",\"id\":%d,\"circuit\":\"b01\",\"prop\":\"1\",\"bound\":10,\"timeout_s\":60}"
      id
  in
  let member name v =
    match Json.member name v with
    | Some j -> j
    | None -> Alcotest.failf "response lacks %S: %s" name (Json.to_string v)
  in
  let r1, k1 = Serve.handle t (Json.of_string (request 1)) in
  let r2, k2 = Serve.handle t (Json.of_string (request 2)) in
  check_bool "loop continues" true (k1 && k2);
  check_string "schema stamped" "rtlsat.serve/1"
    (Option.get (Json.get_string (member "schema" r2)));
  List.iter
    (fun r -> check_bool "ok" true (member "ok" r = Json.Bool true))
    [ r1; r2 ];
  check_string "verdicts agree across the warm boundary"
    (Option.get (Json.get_string (member "verdict" r1)))
    (Option.get (Json.get_string (member "verdict" r2)));
  let sess1 = member "session" r1 and sess2 = member "session" r2 in
  check_bool "first request is cold" true
    (member "warm" sess1 = Json.Bool false);
  check_bool "second request is warm" true
    (member "warm" sess2 = Json.Bool true);
  check_string "unroll prefix cache hit" "hit"
    (Option.get (Json.get_string (member "unroll_cache" sess2)));
  check_int "solve counter advanced" 2
    (Option.get (Json.get_int (member "solves" sess2)));
  (* shutdown stops the loop *)
  let _, continue =
    Serve.handle t (Json.of_string "{\"op\":\"shutdown\",\"id\":3}")
  in
  check_bool "shutdown stops the loop" false continue

let () =
  Alcotest.run "engine"
    [
      ( "equivalence",
        [
          Alcotest.test_case "corpus, all engines" `Slow
            test_corpus_equivalence;
          Alcotest.test_case "lazy-cdp scratch sweep" `Quick
            test_lazy_scratch_sweep;
        ] );
      Qutil.qsuite "properties" [ prop_module_path_equiv ];
      ( "capabilities",
        [
          Alcotest.test_case "registry consistency" `Quick test_caps_registry;
          Alcotest.test_case "behaviour consistency" `Quick
            test_caps_behaviour;
          Alcotest.test_case "sessionless carries nothing" `Quick
            test_caps_sessions;
          Alcotest.test_case "mode contract" `Quick test_mode_contract;
        ] );
      ( "serve",
        [
          Alcotest.test_case "warm reuse over one pool" `Quick
            test_serve_warm_reuse;
        ] );
    ]
