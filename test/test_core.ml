(* End-to-end tests for the HDPLL core: kernel behaviour, propagation,
   conflict analysis, the four engine configurations, justification
   and predicate learning — validated against brute-force simulation
   of the RTL. *)

module Ir = Rtlsat_rtl.Ir
module N = Rtlsat_rtl.Netlist
module Sim = Rtlsat_rtl.Sim
module T = Rtlsat_constr.Types
module P = Rtlsat_constr.Problem
module E = Rtlsat_constr.Encode
module I = Rtlsat_interval.Interval
module State = Rtlsat_core.State
module Propagate = Rtlsat_core.Propagate
module Solver = Rtlsat_core.Solver
module PL = Rtlsat_core.Predicate_learning
module Justify = Rtlsat_core.Justify

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let configs =
  [
    ("hdpll", Solver.hdpll);
    ("hdpll+s", Solver.hdpll_s);
    ("hdpll+p", Solver.hdpll_p);
    ("hdpll+s+p", Solver.hdpll_sp);
  ]

(* ---- kernel ---- *)

let test_state_bounds () =
  let p = P.create () in
  let w = P.new_word p (I.make 0 15) in
  let s = State.create p in
  check_bool "entailed init" true (State.entailed s (T.Ge (w, 0)));
  check_bool "not entailed" false (State.entailed s (T.Ge (w, 3)));
  State.new_level s;
  State.assert_atom s (T.Ge (w, 3)) None;
  check_bool "entailed after" true (State.entailed s (T.Ge (w, 3)));
  check_bool "weaker entailed" true (State.entailed s (T.Ge (w, 2)));
  check_bool "falsified" true (State.falsified s (T.Le (w, 2)));
  State.backtrack_to s 0;
  check_bool "restored" false (State.entailed s (T.Ge (w, 3)))

let test_state_conflict_on_empty () =
  let p = P.create () in
  let w = P.new_word p (I.make 0 15) in
  let s = State.create p in
  State.new_level s;
  State.assert_atom s (T.Le (w, 4)) None;
  match State.assert_atom s (T.Ge (w, 5)) (Some [| T.Pos 99 |]) with
  | exception State.Conflict atoms ->
    check_bool "opposing atom present" true (Array.mem (T.Le (w, 4)) atoms)
  | () -> Alcotest.fail "expected conflict"

let test_entailing_entry () =
  let p = P.create () in
  let w = P.new_word p (I.make 0 15) in
  let s = State.create p in
  State.new_level s;
  State.assert_atom s (T.Ge (w, 3)) None;
  State.new_level s;
  State.assert_atom s (T.Ge (w, 7)) None;
  check_bool "root bound has no entry" true (State.entailing_entry s (T.Ge (w, 0)) = None);
  (* Ge(w,2) was first entailed by the Ge(w,3) event (trail idx 0) *)
  check_int "first event" 0 (Option.get (State.entailing_entry s (T.Ge (w, 2))));
  check_int "second event" 1 (Option.get (State.entailing_entry s (T.Ge (w, 6))))

(* ---- conflict analysis on hand-built trails ---- *)

module Conflict = Rtlsat_core.Conflict

(* b <-> (w <= 5); decide b; a conflicting unit [w >= 9] must learn a
   clause whose literal is the *generalized* bound [w >= 9] (from the
   needed atom [w <= 8]) rather than the stronger event [w <= 5] *)
let test_analyze_generalizes_bounds () =
  let p = P.create () in
  let b = P.new_bool p ~name:"b" () in
  let w = P.new_word p ~name:"w" (I.make 0 15) in
  P.add_constr p (T.Pred { b; e = T.lin_of_terms [ (1, w) ] (-5) });
  let s = State.create p in
  State.new_level s;
  State.assert_atom s (T.Pos b) None;
  (match Propagate.run s with None -> () | Some _ -> Alcotest.fail "conflict");
  check_int "w narrowed" 5 s.State.ub.(w);
  (* the falsified unit clause (w >= 9) yields conflict atoms (w <= 8) *)
  let { Conflict.clause; btlevel } = Conflict.analyze s [| T.Le (w, 8) |] in
  Alcotest.(check int) "btlevel" 0 btlevel;
  check_bool "clause is the generalized bound" true (clause = [| T.Ge (w, 9) |])

(* resolution across reasons terminates at the decision (UIP) *)
let test_analyze_resolves_to_decision () =
  let p = P.create () in
  let b = P.new_bool p ~name:"b" () in
  let w = P.new_word p ~name:"w" (I.make 0 15) in
  P.add_constr p (T.Pred { b; e = T.lin_of_terms [ (1, w) ] (-5) });
  let s = State.create p in
  State.new_level s;
  State.assert_atom s (T.Pos b) None;
  (match Propagate.run s with None -> () | Some _ -> Alcotest.fail "conflict");
  State.assert_atom s (T.Ge (w, 3)) (Some [| T.Pos b |]);
  let { Conflict.clause; btlevel } =
    Conflict.analyze s [| T.Le (w, 5); T.Ge (w, 3) |]
  in
  Alcotest.(check int) "btlevel" 0 btlevel;
  check_bool "resolved to the decision" true (clause = [| T.Neg b |])

let test_analyze_root_conflict () =
  let p = P.create () in
  let w = P.new_word p ~name:"w" (I.make 0 15) in
  P.add_clause p [| T.Le (w, 4) |];
  let s = State.create p in
  (match Propagate.run ~full:true s with None -> () | Some _ -> Alcotest.fail "early");
  match Conflict.analyze s [| T.Le (w, 4) |] with
  | exception Conflict.Root_conflict -> ()
  | _ -> Alcotest.fail "expected Root_conflict"

let test_reduce_clause_db () =
  let p = P.create () in
  let w = P.new_word p ~name:"w" (I.make 0 15) in
  let b = P.new_bool p () in
  P.add_clause p [| T.Pos b; T.Ge (w, 1) |];
  let s = State.create p in
  let roots = Rtlsat_constr.Vec.length s.State.clauses in
  (* add long "learned" clauses and one short one *)
  for i = 0 to 9 do
    State.add_clause s
      [| T.Ge (w, 1 + (i mod 3)); T.Le (w, 14); T.Pos b; T.Neg b; T.Ge (w, 2) |]
  done;
  State.add_clause s [| T.Pos b; T.Le (w, 9) |];
  State.reduce_clauses s ~keep_recent:2;
  let total = Rtlsat_constr.Vec.length s.State.clauses in
  (* roots + 2 recent + the binary survivor *)
  check_bool "reduced" true (total < roots + 11);
  check_bool "kept roots" true (total >= roots + 2);
  check_int "counted" 1 s.State.n_reductions

(* ---- propagation through an encoded circuit ---- *)

let test_icp_comparator () =
  (* b = (x < z) with x,z ∈ <0,15>; assert b: x ∈ <0,14>, z ∈ <1,15> —
     the paper's Equations (2)-(3) *)
  let c = N.create "lt" in
  let x = N.input c ~name:"x" 4 in
  let z = N.input c ~name:"z" 4 in
  let b = N.lt c x z in
  N.output c "b" b;
  let enc = E.encode c in
  E.assume_bool enc b true;
  let s = State.create enc.E.problem in
  (match Propagate.run ~full:true s with
   | Some _ -> Alcotest.fail "unexpected conflict"
   | None -> ());
  let xv = E.var enc x and zv = E.var enc z in
  check_int "x ub" 14 s.State.ub.(xv);
  check_int "z lb" 1 s.State.lb.(zv)

let test_icp_mux_hull_and_select () =
  let c = N.create "mux" in
  let sel = N.input c ~name:"sel" 1 in
  let a = N.input c ~name:"a" 3 in
  let z = N.mux c ~sel ~t:(N.const c ~width:3 6) ~e:a () in
  N.output c "z" z;
  let enc = E.encode c in
  (* force z <= 4: disjoint from the constant branch => sel = 0 *)
  E.assume_interval enc z (I.make 0 4);
  let s = State.create enc.E.problem in
  (match Propagate.run ~full:true s with
   | Some _ -> Alcotest.fail "unexpected conflict"
   | None -> ());
  check_int "sel implied 0" 0 (State.bool_value s (E.var enc sel));
  check_int "a narrowed" 4 s.State.ub.(E.var enc a)

(* ---- solving: model validation helpers ---- *)

let model_agrees_with_sim circuit (enc : E.t) model =
  (* replay the model's primary-input values through the simulator and
     compare every node *)
  let inputs =
    List.map (fun n -> (n, model.(E.var enc n))) (Ir.inputs circuit)
  in
  let vals = Sim.eval circuit (Sim.initial_state circuit) ~inputs in
  List.for_all
    (fun n -> Sim.value vals n = model.(E.var enc n))
    (Ir.nodes circuit)

let build_combo () =
  let c = N.create "combo" in
  let a = N.input c ~name:"a" 4 in
  let b = N.input c ~name:"b" 4 in
  let gtb = N.gt c a b in
  let s = N.add c a b in
  let d = N.sub c a b in
  let z = N.mux c ~sel:gtb ~t:s ~e:d () in
  N.output c "z" z;
  (c, a, b, z)

let test_solve_sat_all_configs () =
  List.iter
    (fun (name, options) ->
       let c, _, _, z = build_combo () in
       let enc = E.encode c in
       (* z = 9 with a > b: e.g. a=5,b=4 -> 9 *)
       E.assume_interval enc z (I.point 9) ;
       let { Solver.result; _ } = Solver.solve ~options enc in
       match result with
       | Solver.Sat m ->
         check_bool (name ^ " model validates") true
           (Result.is_ok (P.check_model enc.E.problem (fun v -> m.(v))));
         check_bool (name ^ " sim agrees") true (model_agrees_with_sim c enc m)
       | _ -> Alcotest.failf "%s: expected sat" name)
    configs

let test_solve_unsat_all_configs () =
  List.iter
    (fun (name, options) ->
       let c = N.create "unsat" in
       let a = N.input c ~name:"a" 4 in
       let b = N.input c ~name:"b" 4 in
       let lt = N.lt c a b in
       let gt = N.gt c a b in
       let both = N.and_ c [ lt; gt ] in
       N.output c "both" both;
       let enc = E.encode c in
       E.assume_bool enc both true;
       let { Solver.result; _ } = Solver.solve ~options enc in
       check_bool (name ^ " unsat") true (result = Solver.Unsat))
    configs

let test_solve_word_unsat () =
  (* x + 1 <= x over a non-wrapping adder is unsatisfiable *)
  List.iter
    (fun (name, options) ->
       let c = N.create "word_unsat" in
       let x = N.input c ~name:"x" 4 in
       let one = N.const c ~width:4 1 in
       let s = N.add_ext c x one in
       let p = N.le c s (N.zext c x ~width:5) in
       N.output c "p" p;
       let enc = E.encode c in
       E.assume_bool enc p true;
       let { Solver.result; _ } = Solver.solve ~options enc in
       check_bool (name ^ " unsat") true (result = Solver.Unsat))
    configs

let test_wrap_add_sat () =
  (* wrap-around: x + 1 = 0 has the solution x = 15 *)
  let c = N.create "wrap" in
  let x = N.input c ~name:"x" 4 in
  let s = N.inc c x in
  let p = N.eq_const c s 0 in
  N.output c "p" p;
  let enc = E.encode c in
  E.assume_bool enc p true;
  let { Solver.result; _ } = Solver.solve enc in
  match result with
  | Solver.Sat m -> check_int "x = 15" 15 m.(E.var enc x)
  | _ -> Alcotest.fail "expected sat"

let test_timeout () =
  let c, _, _, _ = build_combo () in
  let enc = E.encode c in
  let options = { Solver.default with Solver.deadline = Unix.gettimeofday () -. 1.0 } in
  let { Solver.result; _ } = Solver.solve ~options enc in
  (* tiny instances may finish before the first deadline poll *)
  check_bool "timeout or solved" true
    (match result with Solver.Timeout | Solver.Sat _ -> true | Solver.Unsat -> false)

(* ---- Figure 4: structural decision making ---- *)

let build_fig4 () =
  (* w4 = mux(b1, w2, w3); w3 = mux(b2, w2', w1); proposition w4 = 5
     with w2 ranges disjoint from 5 so justification must steer to w1 *)
  let c = N.create "fig4" in
  let w1 = N.input c ~name:"w1" 3 in
  let w2 = N.input c ~name:"w2" 3 in
  let b1 = N.input c ~name:"b1" 1 in
  let b2 = N.input c ~name:"b2" 1 in
  let w6 = N.const c ~width:3 6 in
  let w3 = N.mux c ~name:"w3" ~sel:b2 ~t:w6 ~e:w1 () in
  let w4 = N.mux c ~name:"w4" ~sel:b1 ~t:w2 ~e:w3 () in
  let prop = N.eq_const c w4 5 in
  N.output c "prop" prop;
  (c, w1, w2, b1, b2, w4, prop)

let test_fig4_justification () =
  let c, w1, w2, b1, b2, w4, prop = build_fig4 () in
  let enc = E.encode c in
  E.assume_bool enc prop true;
  E.assume_interval enc w2 (I.make 6 7);
  let { Solver.result; stats; _ } = Solver.solve ~options:Solver.hdpll_s enc in
  match result with
  | Solver.Sat m ->
    check_int "w4 = 5" 5 m.(E.var enc w4);
    check_int "b1 = 0 (w2 disjoint)" 0 m.(E.var enc b1);
    check_int "b2 = 0 (const 6 disjoint)" 0 m.(E.var enc b2);
    check_int "w1 = 5" 5 m.(E.var enc w1);
    check_bool "few decisions" true (stats.Solver.decisions <= 4)
  | _ -> Alcotest.fail "expected sat"

let test_jconflict_direct () =
  (* a mux whose required output interval misses both inputs is a
     structural conflict (§4.3); drive Justify.decide on a hand-built
     state where propagation has not yet looked at the mux *)
  let c = N.create "jc" in
  let sel = N.input c ~name:"sel" 1 in
  let t = N.input c ~name:"t" 3 in
  let e = N.input c ~name:"e" 3 in
  let z = N.mux c ~name:"z" ~sel ~t ~e () in
  N.output c "z" z;
  let enc = E.encode c in
  let s = State.create enc.E.problem in
  let j = Justify.create enc in
  State.new_level s;
  (* narrow the three words by hand, skipping propagation *)
  State.assert_atom s (T.Le (E.var enc z, 2)) None;
  State.assert_atom s (T.Ge (E.var enc t, 4)) None;
  State.assert_atom s (T.Ge (E.var enc e, 5)) None;
  (match Justify.decide j s with
   | exception Justify.Jconflict atoms ->
     check_bool "carries implying atoms" true (Array.length atoms >= 3);
     check_bool "all entailed" true (Array.for_all (State.entailed s) atoms)
   | _ -> Alcotest.fail "expected J-conflict")

let test_justify_candidates () =
  let c, _, _, _, _, _, _ = build_fig4 () in
  let enc = E.encode c in
  let j = Justify.create enc in
  (* two word muxes are justification candidates *)
  check_int "candidates" 2 (Justify.n_candidates j)

(* ---- Figure 1: recursive learning ---- *)

let test_fig1_recursive_learning () =
  (* e = c | d, c = a & b, d = a & b: learning must find e=1 -> a=1, b=1.
     A mux keeps e in the predicate cone. *)
  let c = N.create "fig1" in
  let a = N.input c ~name:"a" 1 in
  let b = N.input c ~name:"b" 1 in
  let g_c = N.and_ c ~name:"c" [ a; b ] in
  let g_d = N.and_ c ~name:"d" [ b; a ] in
  let e = N.or_ c ~name:"e" [ g_c; g_d ] in
  let w = N.input c ~name:"w" 3 in
  let z = N.mux c ~sel:e ~t:w ~e:(N.const c ~width:3 0) () in
  N.output c "z" z;
  let enc = E.encode c in
  let s = State.create enc.E.problem in
  (match Propagate.run ~full:true s with
   | None -> ()
   | Some _ -> Alcotest.fail "root conflict");
  let sm = PL.run s enc in
  check_bool "learned some relations" true (sm.PL.relations > 0);
  (* after learning, asserting e=1 must imply a=1 and b=1 by unit
     propagation over the learned clauses *)
  State.new_level s;
  State.assert_atom s (T.Pos (E.var enc e)) None;
  (match Propagate.run s with
   | Some _ -> Alcotest.fail "conflict"
   | None -> ());
  check_int "a implied" 1 (State.bool_value s (E.var enc a));
  check_int "b implied" 1 (State.bool_value s (E.var enc b))

let test_learning_threshold () =
  let c = N.create "thresh" in
  let a = N.input c ~name:"a" 1 and b = N.input c ~name:"b" 1 in
  let g1 = N.and_ c [ a; b ] in
  let g2 = N.or_ c [ a; b ] in
  let g3 = N.and_ c [ g1; g2 ] in
  let w = N.input c 3 in
  let z = N.mux c ~sel:g3 ~t:w ~e:(N.const c ~width:3 1) () in
  N.output c "z" z;
  let enc = E.encode c in
  let s = State.create enc.E.problem in
  (match Propagate.run ~full:true s with None -> () | Some _ -> Alcotest.fail "conflict");
  let sm = PL.run ~threshold:1 s enc in
  check_bool "capped" true (sm.PL.relations <= 1)

(* ---- additional solver API behaviours ---- *)

let test_learning_depth_2 () =
  (* depth-2 recursion digs one gate deeper than the paper's level 1:
     e = c | d, c = a & b, d = b & a, and a itself is g1 & g2: probing
     e=1 at depth 2 also discovers e=1 -> g1=1 *)
  let c = N.create "deep" in
  let g1 = N.input c ~name:"g1" 1 in
  let g2 = N.input c ~name:"g2" 1 in
  let a = N.and_ c ~name:"a" [ g1; g2 ] in
  let b = N.input c ~name:"b" 1 in
  let gc = N.and_ c ~name:"c" [ a; b ] in
  let gd = N.and_ c ~name:"d" [ b; a ] in
  let e = N.or_ c ~name:"e" [ gc; gd ] in
  let w = N.input c ~name:"w" 3 in
  let z = N.mux c ~sel:e ~t:w ~e:(N.const c ~width:3 0) () in
  N.output c "z" z;
  let enc = E.encode c in
  let s = State.create enc.E.problem in
  (match Propagate.run ~full:true s with None -> () | Some _ -> Alcotest.fail "conflict");
  let sm = PL.run ~threshold:100 ~depth:2 s enc in
  check_bool "learned" true (sm.PL.relations > 0);
  State.new_level s;
  State.assert_atom s (T.Pos (E.var enc e)) None;
  (match Propagate.run s with Some _ -> Alcotest.fail "conflict" | None -> ());
  check_int "g1 implied at depth 2" 1 (State.bool_value s (E.var enc g1));
  check_int "g2 implied at depth 2" 1 (State.bool_value s (E.var enc g2))

let test_solve_problem_bare () =
  (* no netlist: +S and +P silently disabled, solving still works *)
  let p = P.create () in
  let b = P.new_bool p ~name:"b" () in
  let w = P.new_word p ~name:"w" (I.make 0 10) in
  P.add_constr p (T.Pred { b; e = T.lin_of_terms [ (1, w) ] (-4) });
  P.add_clause p [| T.Pos b |];
  P.add_clause p [| T.Ge (w, 2) |];
  let { Solver.result; _ } = Solver.solve_problem ~options:Solver.hdpll_sp p in
  (match result with
   | Solver.Sat m ->
     check_bool "w in [2,4]" true (m.(w) >= 2 && m.(w) <= 4);
     check_int "b true" 1 m.(b)
   | _ -> Alcotest.fail "expected sat");
  (* and an unsatisfiable one *)
  let p = P.create () in
  let w = P.new_word p (I.make 0 10) in
  P.add_clause p [| T.Ge (w, 7) |];
  P.add_constr p (T.Lin_le (T.lin_of_terms [ (1, w) ] (-3)));
  let { Solver.result; _ } = Solver.solve_problem p in
  check_bool "unsat" true (result = Solver.Unsat)

let test_rejects_hybrid_input_clause () =
  let p = P.create () in
  let w = P.new_word p (I.make 0 10) in
  let b = P.new_bool p () in
  P.add_clause p [| T.Pos b; T.Ge (w, 3) |];
  Alcotest.check_raises "rejected"
    (Invalid_argument "Solver: multi-atom input clauses must be purely Boolean")
    (fun () -> ignore (Solver.solve_problem p))

let test_collect_learned_off_by_default () =
  let c, _, _, z = build_combo () in
  let enc = E.encode c in
  E.assume_interval enc z (I.point 9);
  let { Solver.learned_clauses; _ } = Solver.solve enc in
  check_int "no clauses collected" 0 (List.length learned_clauses)

(* ---- randomized: solver vs brute-force simulation ---- *)

let gen_circuit seed =
  let rng = Random.State.make [| seed |] in
  let c = N.create "rand" in
  let a = N.input c ~name:"a" 4 and b = N.input c ~name:"b" 4 in
  let words = ref [ a; b ] in
  let bools = ref [] in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  for _ = 1 to 14 do
    match Random.State.int rng 9 with
    | 0 -> words := N.add c (pick !words) (pick !words) :: !words
    | 1 -> words := N.sub c (pick !words) (pick !words) :: !words
    | 2 ->
      bools :=
        N.cmp c (pick [ Ir.Eq; Ir.Lt; Ir.Ge; Ir.Ne ]) (pick !words) (pick !words)
        :: !bools
    | 3 ->
      if !bools <> [] then
        words := N.mux c ~sel:(pick !bools) ~t:(pick !words) ~e:(pick !words) () :: !words
    | 4 -> if !bools <> [] then bools := N.not_ c (pick !bools) :: !bools
    | 5 -> if List.length !bools >= 2 then bools := N.and_ c [ pick !bools; pick !bools ] :: !bools
    | 6 -> if List.length !bools >= 2 then bools := N.or_ c [ pick !bools; pick !bools ] :: !bools
    | 7 -> if List.length !bools >= 2 then bools := N.xor_ c (pick !bools) (pick !bools) :: !bools
    | _ -> words := N.bitxor c (pick !words) (pick !words) :: !words
  done;
  let goal =
    match !bools with
    | [] -> N.eq_const c (pick !words) 3
    | _ -> pick !bools
  in
  N.output c "goal" goal;
  (c, a, b, goal)

let brute_force_goal c a b goal value =
  let found = ref false in
  for av = 0 to 15 do
    for bv = 0 to 15 do
      if not !found then begin
        let vals = Sim.eval c (Sim.initial_state c) ~inputs:[ (a, av); (b, bv) ] in
        if Sim.value vals goal = value then found := true
      end
    done
  done;
  !found

let prop_solver_matches_sim options name =
  QCheck.Test.make ~name ~count:120
    (QCheck.pair (QCheck.int_bound 100_000) QCheck.bool)
    (fun (seed, value) ->
       let c, a, b, goal = gen_circuit seed in
       let enc = E.encode c in
       E.assume_bool enc goal value;
       let expected = brute_force_goal c a b goal (if value then 1 else 0) in
       let { Solver.result; _ } = Solver.solve ~options enc in
       match result with
       | Solver.Sat m ->
         expected
         && Result.is_ok (P.check_model enc.E.problem (fun v -> m.(v)))
         && model_agrees_with_sim c enc m
       | Solver.Unsat -> not expected
       | Solver.Timeout -> QCheck.assume_fail ())

let qsuite = Qutil.qsuite

let () =
  Alcotest.run "core"
    [
      ( "state",
        [
          Alcotest.test_case "bounds & backtrack" `Quick test_state_bounds;
          Alcotest.test_case "conflict on empty domain" `Quick test_state_conflict_on_empty;
          Alcotest.test_case "entailing entry" `Quick test_entailing_entry;
        ] );
      ( "conflict",
        [
          Alcotest.test_case "generalized bound literal" `Quick
            test_analyze_generalizes_bounds;
          Alcotest.test_case "resolution to decision" `Quick
            test_analyze_resolves_to_decision;
          Alcotest.test_case "root conflict" `Quick test_analyze_root_conflict;
          Alcotest.test_case "clause DB reduction" `Quick test_reduce_clause_db;
        ] );
      ( "icp",
        [
          Alcotest.test_case "comparator (paper eq 2/3)" `Quick test_icp_comparator;
          Alcotest.test_case "mux hull & select" `Quick test_icp_mux_hull_and_select;
        ] );
      ( "solve",
        [
          Alcotest.test_case "sat across configs" `Quick test_solve_sat_all_configs;
          Alcotest.test_case "unsat across configs" `Quick test_solve_unsat_all_configs;
          Alcotest.test_case "word-level unsat" `Quick test_solve_word_unsat;
          Alcotest.test_case "wrap-around sat" `Quick test_wrap_add_sat;
          Alcotest.test_case "timeout" `Quick test_timeout;
        ] );
      ( "structural",
        [
          Alcotest.test_case "figure 4 trace" `Quick test_fig4_justification;
          Alcotest.test_case "candidates" `Quick test_justify_candidates;
          Alcotest.test_case "J-conflict payload" `Quick test_jconflict_direct;
        ] );
      ( "learning",
        [
          Alcotest.test_case "figure 1 recursive learning" `Quick test_fig1_recursive_learning;
          Alcotest.test_case "threshold" `Quick test_learning_threshold;
          Alcotest.test_case "depth 2" `Quick test_learning_depth_2;
        ] );
      ( "api",
        [
          Alcotest.test_case "solve_problem (bare)" `Quick test_solve_problem_bare;
          Alcotest.test_case "hybrid input clause rejected" `Quick
            test_rejects_hybrid_input_clause;
          Alcotest.test_case "collect_learned default" `Quick
            test_collect_learned_off_by_default;
        ] );
      qsuite "props"
        (List.map
           (fun (name, options) ->
              prop_solver_matches_sim options ("solver = brute force (" ^ name ^ ")"))
           configs);
    ]
