(* Benchmark harness: regenerates every table of the paper's
   evaluation and runs Bechamel micro-benchmarks (one Test.make per
   table) on representative instances.

   Default run: scaled-down bound matrix (minutes on a laptop).
   RTLSAT_FULL=1 or --full switches to the paper's full bounds with
   the 1200 s timeout.

   Usage: main.exe [--full] [--json [--json-file FILE]] [SUBCOMMAND]

   Subcommands:
     (none) | all      tables 1 and 2 + extension + wide_wrap + ablation + micro
     table1            Table 1 only
     table2            Table 2 only
     micro             Bechamel micro-benchmarks only
     ablation          decision/learning ablation sweep (see below)
     extension         suite-extension circuits
     wide_wrap         wrap-around corners over wide words (w61 family)
     sweep             scaling curve (CSV)
     bmc_sweep         incremental sessions vs from-scratch bound sweeps
     simplify          pre/inprocessing on vs off, per clause database
     parallel          -j 1 vs -j N engine portfolio (speedup rows)

   --json collects tables 1 and 2 with per-run metrics attached and
   writes a BENCH_<timestamp>.json perf-trajectory artifact (schema
   rtlsat.bench/1, see docs/OBSERVABILITY.md). *)

module Engines = Rtlsat_harness.Engines
module Tables = Rtlsat_harness.Tables
module Report = Rtlsat_harness.Report
module Json = Rtlsat_obs.Json
module Ledger = Rtlsat_obs.Ledger
module Registry = Rtlsat_itc99.Registry
module Bmc = Rtlsat_bmc.Bmc
module Unroll = Rtlsat_bmc.Unroll
module E = Rtlsat_constr.Encode
module Solver = Rtlsat_core.Solver

(* ---- command line (stdlib Arg; previously a raw Sys.argv scan that
   mistook "--full" anywhere — including file names — for the flag) ---- *)

let opt_full = ref (Sys.getenv_opt "RTLSAT_FULL" = Some "1")
let opt_json = ref false
let opt_json_file = ref ""
let opt_ledger = ref ""
let opt_no_ledger = ref false
let subcommand = ref "all"

let usage =
  "main.exe [--full] [--json [--json-file FILE]] \
   [all|table1|table2|micro|ablation|extension|wide_wrap|sweep|bmc_sweep|simplify|parallel]"

let spec =
  Arg.align
    [
      ("--full", Arg.Set opt_full,
       " Paper's full bound matrix and 1200 s timeout (also: RTLSAT_FULL=1)");
      ("--json", Arg.Set opt_json,
       " Write a BENCH_<timestamp>.json perf-trajectory artifact");
      ("--json-file", Arg.Set_string opt_json_file,
       "FILE Override the artifact path (default BENCH_<timestamp>.json)");
      ("--ledger", Arg.Set_string opt_ledger,
       "FILE Append the run record to this ledger \
        (default $RTLSAT_LEDGER or .rtlsat/ledger.jsonl)");
      ("--no-ledger", Arg.Set opt_no_ledger,
       " Do not append a rtlsat.run/1 record to the cross-run ledger");
    ]

let anon cmd =
  match cmd with
  | "all" | "table1" | "table2" | "micro" | "ablation" | "extension"
  | "wide_wrap" | "sweep" | "bmc_sweep" | "simplify" | "parallel" ->
    subcommand := cmd
  | _ -> raise (Arg.Bad (Printf.sprintf "unknown subcommand %S" cmd))

let scale () : Tables.scale = if !opt_full then `Full else `Scaled

(* ---- bechamel micro-benchmarks ---- *)

let solve_with options (circuit, prop, bound) () =
  let inst = Registry.instance ~circuit ~prop ~bound in
  let enc = E.encode (Unroll.combo inst.Bmc.unrolled) in
  E.assume_bool enc inst.Bmc.violation true;
  ignore (Solver.solve ~options enc)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let t1_instance = ("b13", "1", 20) in
  let t2_instance = ("b13", "2", 20) in
  let tests =
    Test.make_grouped ~name:"tables"
      [
        (* Table 1's comparison: HDPLL with and without predicate learning *)
        Test.make ~name:"table1/hdpll/b13_1(20)"
          (Staged.stage (solve_with Solver.hdpll t1_instance));
        Test.make ~name:"table1/hdpll+p/b13_1(20)"
          (Staged.stage (solve_with Solver.hdpll_p t1_instance));
        (* Table 2's comparison: the structural decision strategy *)
        Test.make ~name:"table2/hdpll/b13_2(20)"
          (Staged.stage (solve_with Solver.hdpll t2_instance));
        Test.make ~name:"table2/hdpll+s/b13_2(20)"
          (Staged.stage (solve_with Solver.hdpll_s t2_instance));
        Test.make ~name:"table2/hdpll+s+p/b13_2(20)"
          (Staged.stage (solve_with Solver.hdpll_sp t2_instance));
      ]
  in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 2.0) ~kde:(Some 20) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "@.Bechamel micro-benchmarks (monotonic clock per solve):@.";
  let rows =
    Hashtbl.fold (fun name o acc -> (name, o) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, o) ->
       match Analyze.OLS.estimates o with
       | Some [ est ] -> Format.printf "  %-32s %10.3f ms/run@." name (est /. 1e6)
       | _ -> Format.printf "  %-32s (no estimate)@." name)
    rows

(* ---- ablation sweep (DESIGN.md extension): the individual value of
   each strategy and the learning threshold ---- *)

let ablation () =
  Format.printf "@.Ablation: decision strategy x predicate learning on b13_2(50)@.";
  let run name options =
    let inst = Registry.instance ~circuit:"b13" ~prop:"2" ~bound:50 in
    let enc = E.encode (Unroll.combo inst.Bmc.unrolled) in
    E.assume_bool enc inst.Bmc.violation true;
    let t0 = Unix.gettimeofday () in
    let { Solver.result; stats; _ } = Solver.solve ~options enc in
    Format.printf "  %-28s %-2s %7.2fs  dec=%-6d cfl=%-6d rels=%d@." name
      (match result with
       | Solver.Sat _ -> "S" | Solver.Unsat -> "U" | Solver.Timeout -> "to")
      (Unix.gettimeofday () -. t0)
      stats.Solver.decisions stats.Solver.conflicts stats.Solver.relations
  in
  run "base (no S, no P)" Solver.hdpll;
  run "+S" Solver.hdpll_s;
  run "+P" Solver.hdpll_p;
  run "+S+P" Solver.hdpll_sp;
  run "+S+P, no restarts" { Solver.hdpll_sp with Solver.restarts = false };
  run "+S+P, no fanout seeding" { Solver.hdpll_sp with Solver.seed_fanout = false };
  Format.printf "@.Learning-threshold sweep (+S+P on b13_1(50)):@.";
  List.iter
    (fun threshold ->
       let inst = Registry.instance ~circuit:"b13" ~prop:"1" ~bound:50 in
       let enc = E.encode (Unroll.combo inst.Bmc.unrolled) in
       E.assume_bool enc inst.Bmc.violation true;
       let options = { Solver.hdpll_sp with Solver.learn_threshold = Some threshold } in
       let t0 = Unix.gettimeofday () in
       let { Solver.result = _; stats; _ } = Solver.solve ~options enc in
       Format.printf "  threshold %-6d -> %7.2fs  rels=%-6d learn=%.2fs@." threshold
         (Unix.gettimeofday () -. t0)
         stats.Solver.relations stats.Solver.learn_time)
    [ 0; 100; 500; 2000; 5000 ]

(* scaling curve: solve time vs unrolling bound, one series per
   engine — CSV on stdout, plot with any tool *)
let sweep () =
  let bounds = [ 25; 50; 75; 100; 150; 200 ] in
  let engines = [ Engines.Hdpll; Engines.Hdpll_s; Engines.Hdpll_sp; Engines.Bitblast ] in
  Format.printf "@.Scaling sweep: b13_1(k), time in seconds per engine@.";
  Format.printf "bound%s@."
    (String.concat ""
       (List.map (fun e -> "," ^ Engines.engine_name e) engines));
  List.iter
    (fun bound ->
       Format.printf "%d" bound;
       List.iter
         (fun e ->
            let inst = Registry.instance ~circuit:"b13" ~prop:"1" ~bound in
            let r =
              Engines.run_instance
                ~req:(Rtlsat_harness.Req.make ~timeout:120.0 ())
                e inst
            in
            match r.Engines.verdict with
            | Engines.Sat | Engines.Unsat -> Format.printf ",%.3f" r.Engines.time
            | _ -> Format.printf ",")
         engines;
       Format.printf "@.")
    bounds

let table1 () =
  let rows = Tables.run_table1 (scale ()) in
  Tables.print_table1 Format.std_formatter rows

let table2 () =
  let rows = Tables.run_table2 (scale ()) in
  Tables.print_table2 Format.std_formatter rows

let extension () =
  Format.printf "@.Suite extension (beyond the paper's benchmark subset):@.";
  Tables.print_table2 Format.std_formatter (Tables.run_extension ())

let bmc_sweep () =
  Format.printf
    "@.bmc_sweep family (one solver session per design and engine; each bound \
     posed as an assumption, vs from-scratch re-solves):@.";
  Tables.print_bmc_sweep Format.std_formatter (Tables.run_bmc_sweep (scale ()))

let simplify () =
  Format.printf
    "@.simplify family (pre/inprocessing on vs off over both clause \
     databases; the on arm's counters show the reduction):@.";
  Tables.print_simplify Format.std_formatter (Tables.run_simplify (scale ()))

(* ---- parallel family: the requested engine alone vs a -j N
   portfolio race over domains.  Cases are picked where the requested
   engine is hopeless (times out) but another engine in the lineup is
   fast, so even on one core — where the portfolio only time-shares —
   first-finisher-wins cancellation turns a timeout into ≈ N x the
   fastest engine's time.  Both cases race the lazy CDP — the engine
   with the widest gap to the hybrids — on deep unrollings it cannot
   finish: a Sat one (b01_1) and an Unsat one (b04_1), rescued by
   different winners.  On multi-core hardware the race also helps when
   the gap is small; on one core the overhead of racing N allocating
   domains (minor-GC barriers) is far above Nx, so only
   timeout-vs-instant gaps pay — see DESIGN.md. *)

module Parallel = Rtlsat_parallel.Parallel

let parallel_jobs = 4

let parallel_cases =
  [
    ("b01", "1", 100, Engines.Lazy_cdp, 10.0);
    ("b04", "1", 300, Engines.Lazy_cdp, 10.0);
  ]

let run_parallel () =
  List.map
    (fun (circuit, prop, bound, engine, timeout) ->
       let req = Rtlsat_harness.Req.make ~timeout () in
       let seq =
         Engines.run_instance ~req engine
           (Registry.instance ~circuit ~prop ~bound)
       in
       let p =
         Parallel.portfolio ~req ~j:parallel_jobs ~engine
           (Registry.instance ~circuit ~prop ~bound)
       in
       {
         Report.pl_instance = Registry.instance_name ~circuit ~prop ~bound;
         pl_engine = engine;
         pl_j = parallel_jobs;
         pl_seq = seq;
         pl_par = { p.Parallel.p_run with Engines.time = p.Parallel.p_wall };
         pl_winner = Option.map Engines.engine_name p.Parallel.p_winner;
         pl_lineup =
           List.map (fun (e, _) -> Engines.engine_name e) p.Parallel.p_runs;
       })
    parallel_cases

let print_parallel rows =
  Format.printf "%-12s %-10s %3s %9s %9s %8s  %s@." "instance" "engine" "j"
    "seq(s)" "par(s)" "speedup" "winner";
  List.iter
    (fun (r : Report.parallel_row) ->
       let cell (run : Engines.run) =
         match run.Engines.verdict with
         | Engines.Timeout -> Printf.sprintf "%9s" "-to-"
         | Engines.Abort _ -> Printf.sprintf "%9s" "-A-"
         | _ -> Printf.sprintf "%9.2f" run.Engines.time
       in
       Format.printf "%-12s %-10s %3d %s %s %7.1fx  %s@." r.Report.pl_instance
         (Engines.engine_name r.Report.pl_engine)
         r.Report.pl_j (cell r.Report.pl_seq) (cell r.Report.pl_par)
         (if r.Report.pl_par.Engines.time > 0.0 then
            r.Report.pl_seq.Engines.time /. r.Report.pl_par.Engines.time
          else 0.0)
         (match r.Report.pl_winner with Some w -> w | None -> "-"))
    rows

let parallel () =
  Format.printf
    "@.parallel family (requested engine at -j 1 vs a -j %d portfolio race \
     with first-finisher-wins cancellation):@."
    parallel_jobs;
  print_parallel (run_parallel ())

let wide_wrap () =
  Format.printf
    "@.wide_wrap family (wrap-around corners over wide words; every case Sat \
     at exactly one corner):@.";
  Tables.print_table2 Format.std_formatter (Tables.run_wide_wrap ())

(* ---- the perf-trajectory artifact: both tables with per-run
   metrics, one timestamped JSON file per invocation ---- *)

let bench_artifact () =
  let sc = scale () in
  let tm = Unix.localtime (Unix.gettimeofday ()) in
  let stamp =
    Printf.sprintf "%04d%02d%02d_%02d%02d%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let generated_at =
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let path =
    if !opt_json_file <> "" then !opt_json_file else "BENCH_" ^ stamp ^ ".json"
  in
  let scale_str = Tables.scale_name sc in
  Format.printf "collecting Table 1 with metrics...@.";
  let t1 = Tables.run_table1 ~metrics:true sc in
  Tables.print_table1 Format.std_formatter t1;
  Format.printf "@.collecting Table 2 with metrics...@.";
  let t2 = Tables.run_table2 ~metrics:true sc in
  Tables.print_table2 Format.std_formatter t2;
  Format.printf "@.collecting wide_wrap with metrics...@.";
  let ww = Tables.run_wide_wrap ~metrics:true () in
  Tables.print_table2 Format.std_formatter ww;
  Format.printf "@.collecting bmc_sweep with metrics...@.";
  let sw = Tables.run_bmc_sweep ~metrics:true sc in
  Tables.print_bmc_sweep Format.std_formatter sw;
  Format.printf "@.collecting simplify with metrics...@.";
  let sy = Tables.run_simplify ~metrics:true sc in
  Tables.print_simplify Format.std_formatter sy;
  Format.printf "@.collecting parallel speedups...@.";
  let pl = run_parallel () in
  print_parallel pl;
  let doc =
    Report.bench_json ~generated_at ~scale:scale_str
      ~sections:
        [
          ("table1", Report.table1_json ~scale:scale_str t1);
          ("table2", Report.table2_json ~scale:scale_str t2);
          ("wide_wrap", Report.table2_json ~scale:scale_str ww);
          ("bmc_sweep", Report.bmc_sweep_json ~scale:scale_str sw);
          ("simplify", Report.simplify_json ~scale:scale_str sy);
          ("parallel", Report.parallel_json ~scale:scale_str pl);
        ]
  in
  let oc = open_out path in
  Json.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Format.printf "@.perf-trajectory artifact written to %s@." path;
  Format.printf
    "compare against a committed baseline with: rtlsat bench-diff \
     BENCH_<old>.json %s@."
    path;
  path

(* one rtlsat.run/1 record per invocation, same ledger the rtlsat
   subcommands append to — so `rtlsat runs` sees bench runs too *)
let ledger_append ~wall_s ~artifact =
  if not !opt_no_ledger then begin
    let path =
      if !opt_ledger <> "" then !opt_ledger else Ledger.default_path ()
    in
    let options =
      Printf.sprintf "scale=%s,json=%b" (Tables.scale_name (scale ())) !opt_json
    in
    let record =
      Ledger.make ~subcommand:"bench" ~argv:(Array.to_list Sys.argv)
        ~instance:!subcommand ~engine:"all" ~options ~verdict:"ok" ~wall_s
        ~counters:[]
        ~artifacts:(match artifact with None -> [] | Some a -> [ ("bench", a) ])
        ()
    in
    try Ledger.append ~path record with
    | Sys_error msg -> Format.eprintf "bench: ledger: %s@." msg
    | Unix.Unix_error (e, _, _) ->
      Format.eprintf "bench: ledger: %s@." (Unix.error_message e)
  end

let () =
  Arg.parse spec anon usage;
  Format.printf
    "rtlsat benchmark harness — reproduction of DAC'05 \"Structural Search@.\
     for RTL with Predicate Learning\" (%s)@.@."
    (if !opt_full then "FULL matrix" else "scaled bounds; --full or RTLSAT_FULL=1 for the paper's");
  let t0 = Unix.gettimeofday () in
  let artifact =
    if !opt_json then Some (bench_artifact ())
    else begin
      (match !subcommand with
       | "table1" -> table1 ()
       | "table2" -> table2 ()
       | "micro" -> micro ()
       | "ablation" -> ablation ()
       | "extension" -> extension ()
       | "wide_wrap" -> wide_wrap ()
       | "sweep" -> sweep ()
       | "bmc_sweep" -> bmc_sweep ()
       | "simplify" -> simplify ()
       | "parallel" -> parallel ()
       | _ ->
         table1 ();
         Format.printf "@.";
         table2 ();
         extension ();
         wide_wrap ();
         bmc_sweep ();
         simplify ();
         parallel ();
         ablation ();
         micro ());
      None
    end
  in
  ledger_append ~wall_s:(Unix.gettimeofday () -. t0) ~artifact
