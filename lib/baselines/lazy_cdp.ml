open Rtlsat_constr.Types
module P = Rtlsat_constr.Problem
module C = Rtlsat_sat.Cdcl
module Box = Rtlsat_fme.Boxsearch
module Omega = Rtlsat_fme.Omega
module Interval = Rtlsat_interval.Interval

type result = Sat of int array | Unsat | Timeout

type stats = {
  theory_calls : int;
  blocking_clauses : int;
}

let negate_le (e : linexpr) =
  let n = lin_neg e in
  { n with const = n.const + 1 }

let lin_of (e : linexpr) = Box.lin e.terms e.const

let solve ?(deadline = infinity) ?max_nodes ?cancel prob =
  let nv = P.n_vars prob in
  let sat = C.create () in
  let sat_var = Array.make nv (-1) in
  for v = 0 to nv - 1 do
    if P.is_bool_var prob v then sat_var.(v) <- C.new_var sat
  done;
  let lit_of = function
    | Pos v -> C.pos sat_var.(v)
    | Neg v -> C.neg sat_var.(v)
    | Ge _ | Le _ -> invalid_arg "Lazy_cdp: hybrid clause in input"
  in
  (* initial bounds narrowed by the unit bound clauses *)
  let lo = Array.init nv (fun v -> Interval.lo (P.initial_domain prob v)) in
  let hi = Array.init nv (fun v -> Interval.hi (P.initial_domain prob v)) in
  let root_empty = ref false in
  P.iter_clauses
    (fun cl ->
       match cl with
       | [| Ge (v, k) |] -> lo.(v) <- max lo.(v) k
       | [| Le (v, k) |] -> hi.(v) <- min hi.(v) k
       | _ -> C.add_clause sat (Array.to_list (Array.map lit_of cl)))
    prob;
  for v = 0 to nv - 1 do
    if lo.(v) > hi.(v) then root_empty := true
  done;
  let theory_calls = ref 0 in
  let blocking = ref 0 in
  let result = ref None in
  if !root_empty then result := Some Unsat;
  while !result = None do
    if
      Rtlsat_obs.Mono.now () > deadline
      || (match cancel with Some c -> Atomic.get c | None -> false)
    then result := Some Timeout
    else begin
      match C.solve ~deadline ?cancel sat with
      | C.Timeout -> result := Some Timeout
      | C.Unsat -> result := Some Unsat
      | C.Sat ->
        (* theory check of the activated constraints *)
        incr theory_calls;
        let bool_val v = if C.value sat sat_var.(v) then 1 else 0 in
        let lins = ref [] and guards = ref [] in
        let push l g =
          lins := l :: !lins;
          guards := g :: !guards
        in
        Array.iter
          (fun c ->
             match c with
             | Lin_le e -> push (lin_of e) []
             | Lin_eq e ->
               push (lin_of e) [];
               push (lin_of (lin_neg e)) []
             | Pred { b; e } ->
               if bool_val b = 1 then push (lin_of e) [ Pos b ]
               else push (lin_of (negate_le e)) [ Neg b ]
             | Mux_w { sel; t; e; z } ->
               let chosen, guard =
                 if bool_val sel = 1 then (t, Pos sel) else (e, Neg sel)
               in
               let eq = lin_of_terms [ (1, z); (-1, chosen) ] 0 in
               push (lin_of eq) [ guard ];
               push (lin_of (lin_neg eq)) [ guard ])
          (P.constrs prob);
        let lins = List.rev !lins and guards = Array.of_list (List.rev !guards) in
        (* pin the Boolean variables to their model values *)
        let bounds =
          Array.init nv (fun v ->
              if sat_var.(v) >= 0 then begin
                let b = bool_val v in
                (b, b)
              end
              else (lo.(v), hi.(v)))
        in
        (match Omega.decide ?max_nodes ~bounds lins with
         | Omega.Sat p -> result := Some (Sat p)
         | Omega.Unknown -> result := Some Timeout
         | Omega.Unsat core ->
           (* blocking clause over the guard literals in the core; a
              core with no guards refutes the skeleton-independent part *)
           let atoms =
             List.concat_map (fun tag -> if tag >= 0 then guards.(tag) else []) core
             |> List.sort_uniq compare
           in
           let core_has_bool_bounds =
             List.exists (fun tag -> tag < 0 && sat_var.((-tag) - 1) >= 0) core
           in
           let bool_bound_atoms =
             (* Boolean variables pinned via bounds also belong in the
                blocking clause *)
             if core_has_bool_bounds then
               List.filter_map
                 (fun tag ->
                    if tag < 0 then begin
                      let v = (-tag) - 1 in
                      if sat_var.(v) >= 0 then
                        Some (if bool_val v = 1 then Pos v else Neg v)
                      else None
                    end
                    else None)
                 core
             else []
           in
           let all = List.sort_uniq compare (atoms @ bool_bound_atoms) in
           if all = [] then result := Some Unsat
           else begin
             incr blocking;
             C.add_clause sat (List.map (fun a -> lit_of (negate_atom a)) all)
           end)
    end
  done;
  (Option.get !result, { theory_calls = !theory_calls; blocking_clauses = !blocking })
