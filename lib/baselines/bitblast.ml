module Ir = Rtlsat_rtl.Ir
module C = Rtlsat_sat.Cdcl
module Interval = Rtlsat_interval.Interval

type t = {
  sat : C.t;
  circuit : Ir.circuit;
  mutable bits : C.lit array array; (* node id -> literals, LSB first *)
  ltrue : C.lit;
}

let solver t = t.sat

(* ---- Tseitin gate helpers ---- *)

let fresh t = C.pos (C.new_var t.sat)

let mk_and2 t a b =
  let z = fresh t in
  C.add_clause t.sat [ C.lit_not z; a ];
  C.add_clause t.sat [ C.lit_not z; b ];
  C.add_clause t.sat [ z; C.lit_not a; C.lit_not b ];
  z

let mk_or2 t a b =
  let z = fresh t in
  C.add_clause t.sat [ z; C.lit_not a ];
  C.add_clause t.sat [ z; C.lit_not b ];
  C.add_clause t.sat [ C.lit_not z; a; b ];
  z

let mk_xor2 t a b =
  let z = fresh t in
  C.add_clause t.sat [ C.lit_not z; a; b ];
  C.add_clause t.sat [ C.lit_not z; C.lit_not a; C.lit_not b ];
  C.add_clause t.sat [ z; a; C.lit_not b ];
  C.add_clause t.sat [ z; C.lit_not a; b ];
  z

let mk_and t = function
  | [] -> t.ltrue
  | l :: rest -> List.fold_left (mk_and2 t) l rest

let mk_or t = function
  | [] -> C.lit_not t.ltrue
  | l :: rest -> List.fold_left (mk_or2 t) l rest

let mk_mux t ~sel ~th ~el =
  (* sel ? th : el *)
  let z = fresh t in
  C.add_clause t.sat [ C.lit_not sel; C.lit_not th; z ];
  C.add_clause t.sat [ C.lit_not sel; th; C.lit_not z ];
  C.add_clause t.sat [ sel; C.lit_not el; z ];
  C.add_clause t.sat [ sel; el; C.lit_not z ];
  z

let full_adder t a b cin =
  let sum = mk_xor2 t (mk_xor2 t a b) cin in
  let cout = mk_or2 t (mk_and2 t a b) (mk_and2 t cin (mk_or2 t a b)) in
  (sum, cout)

(* ripple-carry addition of equal-width vectors; returns (bits, carry) *)
let ripple_add t av bv cin =
  let w = Array.length av in
  let out = Array.make w t.ltrue in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, c = full_adder t av.(i) bv.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  (out, !carry)

let lfalse t = C.lit_not t.ltrue

let zext_bits t bv w =
  let cur = Array.length bv in
  if cur >= w then Array.sub bv 0 w
  else Array.append bv (Array.make (w - cur) (lfalse t))

(* unsigned a < b via borrow chain *)
let mk_ult t av bv =
  let w = Array.length av in
  let borrow = ref (lfalse t) in
  for i = 0 to w - 1 do
    (* borrow' = (¬a ∧ b) when the bits differ, else the previous
       borrow *)
    let differ = mk_xor2 t av.(i) bv.(i) in
    borrow :=
      mk_mux t ~sel:differ ~th:(mk_and2 t (C.lit_not av.(i)) bv.(i)) ~el:!borrow
  done;
  !borrow

let mk_eq_vec t av bv =
  let w = Array.length av in
  let bits = List.init w (fun i -> C.lit_not (mk_xor2 t av.(i) bv.(i))) in
  mk_and t bits

let const_bits t value w =
  Array.init w (fun i -> if (value lsr i) land 1 = 1 then t.ltrue else lfalse t)

let check_combinational nodes =
  List.iter
    (fun n ->
       match n.Ir.op with
       | Ir.Reg _ -> invalid_arg "Bitblast.encode: sequential circuit (unroll first)"
       | _ -> ())
    nodes

let encode_nodes t nodes =
  let bit n = t.bits.(n.Ir.id).(0) in
  let bits n = t.bits.(n.Ir.id) in
  let encode_node n =
    let w = n.Ir.width in
    let out =
      match n.Ir.op with
      | Ir.Reg _ -> assert false
      | Ir.Input -> Array.init w (fun _ -> fresh t)
      | Ir.Const v -> const_bits t v w
      | Ir.Not a -> [| C.lit_not (bit a) |]
      | Ir.And ns -> [| mk_and t (Array.to_list (Array.map bit ns)) |]
      | Ir.Or ns -> [| mk_or t (Array.to_list (Array.map bit ns)) |]
      | Ir.Xor (a, b) -> [| mk_xor2 t (bit a) (bit b) |]
      | Ir.Mux { sel; t = th; e } ->
        Array.init w (fun i ->
            mk_mux t ~sel:(bit sel) ~th:(bits th).(i) ~el:(bits e).(i))
      | Ir.Add { a; b; wrap } ->
        if wrap then fst (ripple_add t (bits a) (bits b) (lfalse t))
        else begin
          let sum, carry = ripple_add t (bits a) (bits b) (lfalse t) in
          Array.append sum [| carry |]
        end
      | Ir.Sub { a; b } ->
        (* a - b = a + ¬b + 1 modulo 2^w *)
        fst (ripple_add t (bits a) (Array.map C.lit_not (bits b)) t.ltrue)
      | Ir.Mul_const { k; a } ->
        let acc = ref (const_bits t 0 w) in
        let rec go i k =
          if k <> 0 then begin
            if k land 1 = 1 then begin
              (* acc += a << i, no overflow by construction *)
              let shifted =
                Array.append (Array.make i (lfalse t)) (bits a) |> fun v ->
                zext_bits t v w
              in
              acc := fst (ripple_add t !acc shifted (lfalse t))
            end;
            go (i + 1) (k lsr 1)
          end
        in
        go 0 k;
        !acc
      | Ir.Cmp { op; a; b } ->
        let av = bits a and bv = bits b in
        let l =
          match op with
          | Ir.Eq -> mk_eq_vec t av bv
          | Ir.Ne -> C.lit_not (mk_eq_vec t av bv)
          | Ir.Lt -> mk_ult t av bv
          | Ir.Ge -> C.lit_not (mk_ult t av bv)
          | Ir.Gt -> mk_ult t bv av
          | Ir.Le -> C.lit_not (mk_ult t bv av)
        in
        [| l |]
      | Ir.Concat { hi; lo } -> Array.append (bits lo) (bits hi)
      | Ir.Extract { a; msb; lsb } -> Array.sub (bits a) lsb (msb - lsb + 1)
      | Ir.Zext a -> zext_bits t (bits a) w
      | Ir.Shl { a; k } -> Array.append (Array.make k (lfalse t)) (bits a)
      | Ir.Shr { a; k } ->
        let av = bits a in
        Array.init w (fun i ->
            if i + k < Array.length av then av.(i + k) else lfalse t)
      | Ir.Bitand (a, b) ->
        Array.init w (fun i -> mk_and2 t (bits a).(i) (bits b).(i))
      | Ir.Bitor (a, b) ->
        Array.init w (fun i -> mk_or2 t (bits a).(i) (bits b).(i))
      | Ir.Bitxor (a, b) ->
        Array.init w (fun i -> mk_xor2 t (bits a).(i) (bits b).(i))
    in
    assert (Array.length out = w);
    t.bits.(n.Ir.id) <- out
  in
  List.iter encode_node nodes

let encode circuit =
  check_combinational (Ir.nodes circuit);
  let sat = C.create () in
  let tvar = C.new_var sat in
  C.add_clause sat [ C.pos tvar ];
  let t =
    { sat; circuit; bits = Array.make circuit.Ir.ncount [||]; ltrue = C.pos tvar }
  in
  encode_nodes t (Ir.nodes circuit);
  t

(* incremental path mirroring [Encode.extend]: blast only the nodes
   appended to the circuit since the last encode/extend, keeping the
   CDCL solver — and its learned clauses — intact *)
let extend t =
  let c = t.circuit in
  if c.Ir.ncount > Array.length t.bits then begin
    let nb = Array.make c.Ir.ncount [||] in
    Array.blit t.bits 0 nb 0 (Array.length t.bits);
    t.bits <- nb
  end;
  let fresh = List.filter (fun n -> Array.length t.bits.(n.Ir.id) = 0) (Ir.nodes c) in
  check_combinational fresh;
  encode_nodes t fresh

let bool_lit t n =
  if not (Ir.is_bool n) then invalid_arg "Bitblast.bool_lit: word node";
  t.bits.(n.Ir.id).(0)

let assume_bool t n value =
  if not (Ir.is_bool n) then invalid_arg "Bitblast.assume_bool: word node";
  let l = t.bits.(n.Ir.id).(0) in
  C.add_clause t.sat [ (if value then l else C.lit_not l) ]

let assume_interval t n iv =
  let w = n.Ir.width in
  let bv = t.bits.(n.Ir.id) in
  (* n >= lo: ¬(n < lo); n <= hi: ¬(hi < n) *)
  let lo = Interval.lo iv and hi = Interval.hi iv in
  if lo > 0 then C.add_clause t.sat [ C.lit_not (mk_ult t bv (const_bits t lo w)) ];
  if hi < (1 lsl w) - 1 then
    C.add_clause t.sat [ C.lit_not (mk_ult t (const_bits t hi w) bv) ]

type result = Sat | Unsat | Timeout

(* Pre/inprocess the underlying CNF.  [elim] (variable elimination) is
   only sound for one-shot use: it must stay off when the encoding
   will grow ([extend]) or literals will be assumed later, because
   eliminated variables may no longer be mentioned.  Model readback
   ([node_value]) is unaffected either way — the CDCL engine extends
   Sat models back over substituted and eliminated variables. *)
let simplify ?(elim = false) t = C.simplify ~elim t.sat
let simp_stats t = C.simp_stats t.sat

let solve ?deadline ?assumptions ?inprocess ?cancel t =
  match C.solve ?deadline ?assumptions ?inprocess ?cancel t.sat with
  | C.Sat -> Sat
  | C.Unsat -> Unsat
  | C.Timeout -> Timeout

let node_value t n =
  let bv = t.bits.(n.Ir.id) in
  let acc = ref 0 in
  Array.iteri
    (fun i l ->
       let v = C.value t.sat (C.lit_var l) in
       let v = if C.lit_sign l then v else not v in
       if v then acc := !acc lor (1 lsl i))
    bv;
  !acc

let model_env = node_value

let to_dimacs t =
  let buf = Buffer.create 65536 in
  let dimacs_lit l =
    let v = C.lit_var l + 1 in
    if C.lit_sign l then v else -v
  in
  let units = C.root_units t.sat in
  (* a clause whose literals were all root-false is discarded by
     Cdcl.add_clause after flagging the root conflict, so the stored
     clauses alone under-constrain the formula: emit an explicit empty
     clause to keep the export equisatisfiable *)
  let root_conflict = C.root_conflict t.sat in
  let n_clauses =
    C.n_clauses t.sat + List.length units + (if root_conflict then 1 else 0)
  in
  Buffer.add_string buf
    (Printf.sprintf "c rtlsat bit-blast of %s\np cnf %d %d\n" t.circuit.Ir.cname
       (C.n_vars t.sat) n_clauses);
  if root_conflict then Buffer.add_string buf "0\n";
  List.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%d 0\n" (dimacs_lit l)))
    units;
  C.fold_clauses
    (fun () cl ->
       Array.iter
         (fun l -> Buffer.add_string buf (string_of_int (dimacs_lit l) ^ " "))
         cl;
       Buffer.add_string buf "0\n")
    () t.sat;
  Buffer.contents buf
