(** Eager Boolean translation: bit-blast the RTL netlist to CNF and
    solve with the CDCL engine.

    This is "the most popular method of solving a satisfiability
    problem on RTL" from the paper's introduction, and our stand-in
    for UCLID's eager SAT-based approach in Table 2 — everything,
    including the data-path, is pushed into a Boolean SAT solver
    through ripple-carry adders, borrow-chain comparators and per-bit
    multiplexers. *)

open Rtlsat_rtl

type t

val encode : Ir.circuit -> t
(** @raise Invalid_argument on a sequential circuit. *)

val extend : t -> unit
(** Incremental re-blast after the circuit grew: encodes exactly the
    appended nodes into the same CDCL solver, whose learned clauses
    survive.  Mirrors [Encode.extend] so the eager baseline supports
    the same session interface as the hybrid engines. *)

val solver : t -> Rtlsat_sat.Cdcl.t

val bool_lit : t -> Ir.node -> Rtlsat_sat.Cdcl.lit
(** The CNF literal of a Boolean node — e.g. to pass a violation
    selector as an assumption.
    @raise Invalid_argument on a word node. *)

val assume_bool : t -> Ir.node -> bool -> unit

val assume_interval : t -> Ir.node -> Rtlsat_interval.Interval.t -> unit
(** Encodes the two comparisons against constants as circuits. *)

type result =
  | Sat
  | Unsat
  | Timeout

val simplify : ?elim:bool -> t -> unit
(** Pre/inprocess the CNF with {!Rtlsat_sat.Cdcl.simplify}.
    [elim:true] (bounded variable elimination) is only sound for
    one-shot solving — keep it off (the default) when the encoding
    will later {!extend} or assume literals.  [node_value] keeps
    working either way: Sat models are extended back over substituted
    and eliminated variables. *)

val simp_stats : t -> Rtlsat_simplify.Simp.stats
(** Cumulative simplification counters of the underlying solver. *)

val solve :
  ?deadline:float ->
  ?assumptions:Rtlsat_sat.Cdcl.lit list ->
  ?inprocess:int ->
  ?cancel:bool Atomic.t ->
  t ->
  result
(** [assumptions] are decided before the free search (MiniSat-style);
    [Unsat] then means unsat under them and the solver stays usable.
    [inprocess] > 0 re-simplifies the clause database (without
    elimination) every that many conflicts.  [cancel] makes the
    underlying CDCL loop return [Timeout] at its next step gate —
    cooperative cancellation for the portfolio driver. *)

val to_dimacs : t -> string
(** The current CNF (including assumptions added so far) in DIMACS
    format, for cross-checking with external SAT solvers. *)

val node_value : t -> Ir.node -> int
(** Word value of a node in the model after [solve] returned [Sat]. *)

val model_env : t -> Rtlsat_rtl.Ir.node -> int
(** Alias of {!node_value} in function position for witness replay. *)
