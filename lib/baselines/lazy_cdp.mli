(** Lazy combined decision procedure — the ICS stand-in of Table 2.

    CDCL enumerates complete assignments of the Boolean skeleton; each
    one is checked against the activated linear-arithmetic constraints
    by the FME/Omega oracle; theory refutations come back as blocking
    clauses over the guard literals.  There is no interval
    propagation, no early theory pruning and no structural
    information — exactly the "current CDPs ignore the structure of
    the problem" configuration the paper argues against (§1). *)

type result =
  | Sat of int array  (** full model indexed by problem variable *)
  | Unsat
  | Timeout

type stats = {
  theory_calls : int;
  blocking_clauses : int;
}

val solve :
  ?deadline:float ->
  ?max_nodes:int ->
  ?cancel:bool Atomic.t ->
  Rtlsat_constr.Problem.t ->
  result * stats
(** The problem's multi-atom clauses must be purely Boolean, as
    guaranteed by the RTL encoder.  [cancel] cancels cooperatively:
    checked between skeleton enumerations and inside the CDCL step
    gate, yielding [Timeout]. *)
