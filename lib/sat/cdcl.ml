module Obs = Rtlsat_obs.Obs
module Json = Rtlsat_obs.Json

type lit = int

let pos v = 2 * v
let neg v = (2 * v) + 1
let lit_var l = l lsr 1
let lit_sign l = l land 1 = 0
let lit_not l = l lxor 1

(* ---- indexed max-heap over variable activities ---- *)

module Heap = struct
  type t = {
    mutable heap : int array;   (* heap of vars *)
    mutable index : int array;  (* var -> position, -1 if absent *)
    mutable size : int;
  }

  let create () = { heap = Array.make 16 0; index = Array.make 16 (-1); size = 0 }

  let ensure h n =
    if n > Array.length h.index then begin
      let cap = max n (2 * Array.length h.index) in
      let idx = Array.make cap (-1) in
      Array.blit h.index 0 idx 0 (Array.length h.index);
      h.index <- idx;
      let hp = Array.make cap 0 in
      Array.blit h.heap 0 hp 0 h.size;
      h.heap <- hp
    end

  let mem h v = v < Array.length h.index && h.index.(v) >= 0

  let swap h i j =
    let a = h.heap.(i) and b = h.heap.(j) in
    h.heap.(i) <- b;
    h.heap.(j) <- a;
    h.index.(b) <- i;
    h.index.(a) <- j

  let rec up h act i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if act.(h.heap.(i)) > act.(h.heap.(parent)) then begin
        swap h i parent;
        up h act parent
      end
    end

  let rec down h act i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let best = ref i in
    if l < h.size && act.(h.heap.(l)) > act.(h.heap.(!best)) then best := l;
    if r < h.size && act.(h.heap.(r)) > act.(h.heap.(!best)) then best := r;
    if !best <> i then begin
      swap h i !best;
      down h act !best
    end

  let insert h act v =
    ensure h (v + 1);
    if not (mem h v) then begin
      h.heap.(h.size) <- v;
      h.index.(v) <- h.size;
      h.size <- h.size + 1;
      up h act (h.size - 1)
    end

  let bumped h act v = if mem h v then up h act h.index.(v)

  let pop h act =
    if h.size = 0 then invalid_arg "Heap.pop";
    let v = h.heap.(0) in
    h.size <- h.size - 1;
    h.index.(v) <- -1;
    if h.size > 0 then begin
      h.heap.(0) <- h.heap.(h.size);
      h.index.(h.heap.(0)) <- 0;
      down h act 0
    end;
    v

  let is_empty h = h.size = 0
end

module Simp = Rtlsat_simplify.Simp

type t = {
  mutable nvars : int;
  mutable assign : int array;       (* var -> -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : int array;       (* var -> clause index or -1 *)
  mutable phase : bool array;
  mutable activity : float array;
  mutable watches : int list array; (* index l holds clauses to examine when l becomes true *)
  mutable clauses : int array array;
  mutable nclauses : int;
  mutable trail : int array;
  mutable trail_len : int;
  mutable trail_lim : int list;
  mutable qhead : int;
  mutable var_inc : float;
  mutable conflicts : int;
  mutable learned : int;            (* conflict-learned lemmas, total *)
  mutable unsat_root : bool;
  heap : Heap.t;
  mutable seen : bool array;
  (* --- simplifier bookkeeping --- *)
  mutable repr_l : int array;       (* var -> representative literal, pos v if untouched *)
  mutable elim_v : bool array;      (* var eliminated by BVE *)
  mutable elim_stack : (int * int array list) list; (* most recent first *)
  simp : Simp.stats;                (* cumulative across simplify calls *)
}

let var_decay = 1.0 /. 0.95

let create () =
  {
    nvars = 0;
    assign = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    phase = Array.make 16 false;
    activity = Array.make 16 0.0;
    watches = Array.make 32 [];
    clauses = Array.make 1024 [||];
    nclauses = 0;
    trail = Array.make 16 0;
    trail_len = 0;
    trail_lim = [];
    qhead = 0;
    var_inc = 1.0;
    conflicts = 0;
    learned = 0;
    unsat_root = false;
    heap = Heap.create ();
    seen = Array.make 16 false;
    repr_l = Array.make 16 0;
    elim_v = Array.make 16 false;
    elim_stack = [];
    simp = Simp.empty_stats ();
  }

let grow_array a n dummy =
  if n <= Array.length a then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) dummy in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  t.assign <- grow_array t.assign t.nvars (-1);
  t.level <- grow_array t.level t.nvars 0;
  t.reason <- grow_array t.reason t.nvars (-1);
  t.phase <- grow_array t.phase t.nvars false;
  t.activity <- grow_array t.activity t.nvars 0.0;
  t.seen <- grow_array t.seen t.nvars false;
  t.watches <- grow_array t.watches (2 * t.nvars) [];
  t.trail <- grow_array t.trail t.nvars 0;
  t.repr_l <- grow_array t.repr_l t.nvars 0;
  t.elim_v <- grow_array t.elim_v t.nvars false;
  t.assign.(v) <- -1;
  t.reason.(v) <- -1;
  t.repr_l.(v) <- pos v;
  t.elim_v.(v) <- false;
  Heap.insert t.heap t.activity v;
  v

let n_vars t = t.nvars
let n_clauses t = t.nclauses
let n_conflicts t = t.conflicts
let n_learned t = t.learned

(* rewrite a literal through the equivalent-literal substitution left
   behind by simplify; identity while no simplification has run *)
let rep_lit t l =
  let r = t.repr_l.(lit_var l) in
  if lit_sign l then r else lit_not r

let simp_stats t = t.simp

let lit_value t l =
  let a = t.assign.(lit_var l) in
  if a < 0 then -1 else if lit_sign l then a else 1 - a

let decision_level t = List.length t.trail_lim

let enqueue t l reason =
  let v = lit_var l in
  assert (t.assign.(v) < 0);
  t.assign.(v) <- (if lit_sign l then 1 else 0);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.phase.(v) <- lit_sign l;
  t.trail.(t.trail_len) <- l;
  t.trail_len <- t.trail_len + 1

let backtrack t lvl =
  if decision_level t > lvl then begin
    let len = decision_level t in
    let rec nth_boundary lim n =
      (* head corresponds to the newest level [len] *)
      if n = lvl + 1 then List.hd lim else nth_boundary (List.tl lim) (n - 1)
    in
    let bound = nth_boundary t.trail_lim len in
    for i = t.trail_len - 1 downto bound do
      let v = lit_var t.trail.(i) in
      t.assign.(v) <- -1;
      t.reason.(v) <- -1;
      Heap.insert t.heap t.activity v
    done;
    t.trail_len <- bound;
    t.qhead <- bound;
    let rec drop lim n = if n = lvl then lim else drop (List.tl lim) (n - 1) in
    t.trail_lim <- drop t.trail_lim len
  end

let new_decision_level t = t.trail_lim <- t.trail_len :: t.trail_lim

let attach_clause t ci =
  let c = t.clauses.(ci) in
  t.watches.(lit_not c.(0)) <- ci :: t.watches.(lit_not c.(0));
  t.watches.(lit_not c.(1)) <- ci :: t.watches.(lit_not c.(1))

let add_clause_arr t c =
  if t.nclauses = Array.length t.clauses then
    t.clauses <- grow_array t.clauses (t.nclauses + 1) [||];
  t.clauses.(t.nclauses) <- c;
  t.nclauses <- t.nclauses + 1;
  attach_clause t (t.nclauses - 1);
  t.nclauses - 1

let add_clause t lits =
  (* adding clauses invalidates any model from a previous solve *)
  if decision_level t > 0 then backtrack t 0;
  let lits = List.map (rep_lit t) lits in
  List.iter
    (fun l ->
       if t.elim_v.(lit_var l) then
         invalid_arg "Cdcl.add_clause: eliminated variable")
    lits;
  let lits = List.sort_uniq compare lits in
  let tauto = List.exists (fun l -> List.mem (lit_not l) lits) lits in
  if not tauto && not (List.exists (fun l -> lit_value t l = 1) lits) then begin
    let lits = List.filter (fun l -> lit_value t l <> 0) lits in
    match lits with
    | [] -> t.unsat_root <- true
    | [ l ] -> enqueue t l (-1)
    | _ -> ignore (add_clause_arr t (Array.of_list lits))
  end

let fold_clauses f acc t =
  let acc = ref acc in
  for ci = 0 to t.nclauses - 1 do
    acc := f !acc t.clauses.(ci)
  done;
  !acc

let root_units t =
  (* the level-0 prefix of the trail *)
  let stop =
    match List.rev t.trail_lim with [] -> t.trail_len | b :: _ -> b
  in
  List.init stop (fun i -> t.trail.(i))

let root_conflict t = t.unsat_root

(* propagate; returns conflicting clause index or -1 *)
let propagate t =
  let conflict = ref (-1) in
  while !conflict < 0 && t.qhead < t.trail_len do
    let l = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    let ws = t.watches.(l) in
    t.watches.(l) <- [];
    let rec go = function
      | [] -> ()
      | ci :: rest ->
        if !conflict >= 0 then
          (* conflict found: restore remaining watchers untouched *)
          t.watches.(l) <- ci :: (rest @ t.watches.(l))
        else begin
          let c = t.clauses.(ci) in
          let falsified = lit_not l in
          if c.(0) = falsified then begin
            c.(0) <- c.(1);
            c.(1) <- falsified
          end;
          if lit_value t c.(0) = 1 then begin
            t.watches.(l) <- ci :: t.watches.(l);
            go rest
          end
          else begin
            let n = Array.length c in
            let rec find i =
              if i >= n then -1 else if lit_value t c.(i) <> 0 then i else find (i + 1)
            in
            let i = find 2 in
            if i >= 0 then begin
              c.(1) <- c.(i);
              c.(i) <- falsified;
              t.watches.(lit_not c.(1)) <- ci :: t.watches.(lit_not c.(1));
              go rest
            end
            else begin
              t.watches.(l) <- ci :: t.watches.(l);
              if lit_value t c.(0) = 0 then begin
                conflict := ci;
                go rest
              end
              else begin
                enqueue t c.(0) ci;
                go rest
              end
            end
          end
        end
    in
    go ws
  done;
  !conflict

(* Run the Simp pipeline over the whole clause database (problem and
   learned clauses alike, both are implied) and rebuild the solver from
   the result.  VSIDS activities and saved phases survive; the trail,
   watches and clause store are rebuilt.  [elim] enables bounded
   variable elimination — only sound while no later [add_clause] or
   assumption mentions an eliminated variable, so it defaults to off;
   [frozen] additionally protects known assumption variables. *)
let simplify ?(elim = false) ?(frozen = []) t =
  backtrack t 0;
  if (not t.unsat_root) && propagate t >= 0 then t.unsat_root <- true;
  if not t.unsat_root then begin
    let units = root_units t in
    let clauses = fold_clauses (fun acc c -> Array.copy c :: acc) [] t in
    let frozen_a = Array.make (max t.nvars 1) false in
    List.iter (fun v -> if v < t.nvars then frozen_a.(v) <- true) frozen;
    let r =
      Simp.run ~elim ~frozen:(fun v -> frozen_a.(v)) ~nvars:t.nvars ~units
        ~clauses ()
    in
    Simp.add_stats t.simp r.Simp.r_stats;
    if r.Simp.r_unsat then t.unsat_root <- true
    else begin
      (* compose the substitution and record eliminations *)
      for v = 0 to t.nvars - 1 do
        t.repr_l.(v) <- Simp.map_lit r.Simp.r_repr t.repr_l.(v)
      done;
      t.elim_stack <- r.Simp.r_elim @ t.elim_stack;
      List.iter (fun (v, _) -> t.elim_v.(v) <- true) r.Simp.r_elim;
      (* rebuild: clear trail and watches, re-enqueue the simplified
         units, re-attach the surviving clauses *)
      for i = t.trail_len - 1 downto 0 do
        let v = lit_var t.trail.(i) in
        t.assign.(v) <- -1;
        t.reason.(v) <- -1;
        Heap.insert t.heap t.activity v
      done;
      t.trail_len <- 0;
      t.trail_lim <- [];
      t.qhead <- 0;
      Array.fill t.watches 0 (Array.length t.watches) [];
      t.nclauses <- 0;
      List.iter
        (fun l ->
           match lit_value t l with
           | 1 -> ()
           | 0 -> t.unsat_root <- true
           | _ -> enqueue t l (-1))
        r.Simp.r_units;
      if not t.unsat_root then
        List.iter (fun c -> ignore (add_clause_arr t c)) r.Simp.r_clauses;
      if (not t.unsat_root) && propagate t >= 0 then t.unsat_root <- true
    end
  end

(* After Sat: extend the model over representative variables to the
   substituted and eliminated ones.  Eliminated variables are rebuilt
   most-recent-first from their saved clauses (true iff some saved
   positive clause has every other literal false), so each saved
   clause only mentions variables already valued. *)
let reconstruct t =
  let lit_true l =
    let l = rep_lit t l in
    let av = t.assign.(lit_var l) = 1 in
    if lit_sign l then av else not av
  in
  List.iter
    (fun (v, saved) ->
       let forced =
         List.exists
           (fun c ->
              Array.exists (fun l -> l = pos v) c
              && Array.for_all (fun l -> lit_var l = v || not (lit_true l)) c)
           saved
       in
       t.assign.(v) <- (if forced then 1 else 0))
    t.elim_stack;
  for v = 0 to t.nvars - 1 do
    if t.repr_l.(v) <> pos v then
      t.assign.(v) <- (if lit_true (pos v) then 1 else 0)
  done

let bump_var t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  Heap.bumped t.heap t.activity v

(* first-UIP analysis; returns (learned clause, backtrack level);
   invariant: reason clauses keep their implied literal at index 0 *)
let analyze t confl0 =
  let seen = t.seen in
  let learned = ref [] in
  let counter = ref 0 in
  let confl = ref confl0 in
  let skip_first = ref false in
  let idx = ref (t.trail_len - 1) in
  let btlevel = ref 0 in
  let current = decision_level t in
  let uip = ref 0 in
  let continue = ref true in
  while !continue do
    let c = t.clauses.(!confl) in
    let start = if !skip_first then 1 else 0 in
    for i = start to Array.length c - 1 do
      let q = c.(i) in
      let v = lit_var q in
      if (not seen.(v)) && t.level.(v) > 0 then begin
        seen.(v) <- true;
        bump_var t v;
        if t.level.(v) >= current then incr counter
        else begin
          learned := q :: !learned;
          if t.level.(v) > !btlevel then btlevel := t.level.(v)
        end
      end
    done;
    let rec next () =
      let l = t.trail.(!idx) in
      decr idx;
      if seen.(lit_var l) then l else next ()
    in
    let l = next () in
    seen.(lit_var l) <- false;
    decr counter;
    if !counter = 0 then begin
      uip := lit_not l;
      continue := false
    end
    else begin
      confl := t.reason.(lit_var l);
      skip_first := true
    end
  done;
  List.iter (fun q -> seen.(lit_var q) <- false) !learned;
  (* order: asserting literal first, then a highest-level literal second *)
  let tail = !learned in
  let clause =
    match tail with
    | [] -> [| !uip |]
    | _ ->
      let arr = Array.of_list (!uip :: tail) in
      let besti = ref 1 in
      for i = 2 to Array.length arr - 1 do
        if t.level.(lit_var arr.(i)) > t.level.(lit_var arr.(!besti)) then besti := i
      done;
      let tmp = arr.(1) in
      arr.(1) <- arr.(!besti);
      arr.(!besti) <- tmp;
      arr
  in
  (clause, !btlevel)


(* Luby restart sequence, 0-indexed *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

type outcome = Sat | Unsat | Timeout

let solve ?(deadline = infinity) ?(assumptions = []) ?(inprocess = 0)
    ?cancel ?(obs = Obs.disabled) t =
  let result = ref None in
  let decisions = ref 0 in
  let assumptions =
    ref
      (List.map
         (fun l ->
            if t.elim_v.(lit_var l) then
              invalid_arg "Cdcl.solve: assumption on eliminated variable";
            rep_lit t l)
         assumptions)
  in
  if t.unsat_root then result := Some Unsat
  else if propagate t >= 0 then begin
    t.unsat_root <- true;
    result := Some Unsat
  end;
  let restart_base = 100 in
  let restart_num = ref 0 in
  let conflicts_left = ref (restart_base * luby 0) in
  let last_simp = ref t.conflicts in
  let steps = ref 0 in
  while !result = None do
    incr steps;
    if obs.Obs.enabled && !steps land 255 = 0 then
      Obs.heartbeat_tick obs ~decisions:!decisions ~conflicts:t.conflicts
        ~propagations:0 ~splits:0 ~lvl:(decision_level t);
    if
      !steps land 255 = 0
      && (Rtlsat_obs.Mono.now () > deadline
          || match cancel with Some c -> Atomic.get c | None -> false)
    then begin
      backtrack t 0;
      result := Some Timeout
    end
    else begin
      let confl = propagate t in
      if confl >= 0 then begin
        t.conflicts <- t.conflicts + 1;
        if Obs.tracing obs then
          Obs.event obs "conflict" [ ("lvl", Json.Int (decision_level t)) ];
        decr conflicts_left;
        if decision_level t = 0 then begin
          t.unsat_root <- true;
          result := Some Unsat
        end
        else begin
          let clause, btlevel = analyze t confl in
          backtrack t btlevel;
          t.var_inc <- t.var_inc *. var_decay;
          t.learned <- t.learned + 1;
          if Array.length clause = 1 then begin
            backtrack t 0;
            match lit_value t clause.(0) with
            | -1 -> enqueue t clause.(0) (-1)
            | 0 ->
              t.unsat_root <- true;
              result := Some Unsat
            | _ -> ()
          end
          else begin
            let ci = add_clause_arr t clause in
            if lit_value t clause.(0) = -1 then enqueue t clause.(0) ci
          end
        end
      end
      else if !conflicts_left <= 0 then begin
        incr restart_num;
        conflicts_left := restart_base * luby !restart_num;
        if Obs.tracing obs then
          Obs.event obs "restart"
            [ ("num", Json.Int !restart_num);
              ("conflicts", Json.Int t.conflicts) ];
        backtrack t 0;
        (* inprocessing at restart boundaries: the trail is back at
           level 0, so the whole database can be rewritten; variable
           elimination stays off because assumptions and learned units
           must keep their variables addressable *)
        if inprocess > 0 && t.conflicts - !last_simp >= inprocess then begin
          last_simp := t.conflicts;
          simplify ~elim:false t;
          if t.unsat_root then result := Some Unsat
          else assumptions := List.map (rep_lit t) !assumptions
        end
      end
      else begin
        let lvl = decision_level t in
        let next_assumption =
          if lvl < List.length !assumptions then
            Some (List.nth !assumptions lvl)
          else None
        in
        match next_assumption with
        | Some al ->
          (match lit_value t al with
           | 1 -> new_decision_level t (* hold a dummy level for this assumption *)
           | 0 -> result := Some Unsat
           | _ ->
             incr decisions;
             if Obs.tracing obs then
               Obs.event obs "decide"
                 [ ("kind", Json.Str "assumption");
                   ("lvl", Json.Int (decision_level t + 1));
                   ("var", Json.Int (lit_var al)) ];
             new_decision_level t;
             enqueue t al (-1))
        | None ->
          let rec pick () =
            if Heap.is_empty t.heap then None
            else begin
              let v = Heap.pop t.heap t.activity in
              if t.assign.(v) < 0 && (not t.elim_v.(v)) && t.repr_l.(v) = pos v
              then Some v
              else pick ()
            end
          in
          (match pick () with
           | None -> result := Some Sat
           | Some v ->
             incr decisions;
             if Obs.tracing obs then
               Obs.event obs "decide"
                 [ ("kind", Json.Str "activity");
                   ("lvl", Json.Int (decision_level t + 1));
                   ("var", Json.Int v) ];
             new_decision_level t;
             enqueue t (if t.phase.(v) then pos v else neg v) (-1))
      end
    end
  done;
  if Obs.tracing obs then
    Obs.event obs "done"
      [
        ( "result",
          Json.Str
            (match !result with
             | Some Sat -> "sat"
             | Some Unsat -> "unsat"
             | _ -> "timeout") );
        ("conflicts", Json.Int t.conflicts);
        ("decisions", Json.Int !decisions);
      ];
  match !result with
  | Some Sat ->
    reconstruct t;
    Sat
  | Some r -> r
  | None -> assert false

let value t v = t.assign.(v) = 1

let model t = Array.init t.nvars (fun v -> t.assign.(v) = 1)
