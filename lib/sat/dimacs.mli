(** DIMACS CNF front end for the standalone CDCL solver, so the
    Boolean engine can be used (and cross-checked) on standard SAT
    files. *)

val parse : string -> int * int list list
(** [parse text] is [(n_vars, clauses)] with DIMACS literal
    conventions (positive/negative 1-based integers).
    @raise Failure with a [line N:] prefix on malformed input. *)

val load : Cdcl.t -> string -> int array
(** Parse and add every clause to the solver; returns the variable map
    (DIMACS variable [i] is solver variable [map.(i - 1)]).  Missing
    variables are created. *)

val solve_text :
  ?deadline:float ->
  ?simplify:bool ->
  ?inprocess:int ->
  ?solver_out:Cdcl.t option ref ->
  ?obs:Rtlsat_obs.Obs.t ->
  string ->
  [ `Sat of bool array | `Unsat | `Timeout ]
(** One-shot: parse, solve, and return the model indexed by DIMACS
    variable - 1.  [simplify] (default [true]) runs full preprocessing
    — including variable elimination, sound here because solving is
    one-shot — before the search; [inprocess] > 0 re-simplifies every
    that many conflicts.  [solver_out], when given, receives the
    underlying solver so callers can read {!Cdcl.simp_stats} and
    clause counts afterwards.  [obs] is passed through to
    {!Cdcl.solve} (flight recorder / trace events). *)

val print_result :
  Format.formatter -> [ `Sat of bool array | `Unsat | `Timeout ] -> unit
(** Competition-style output: an [s] line and, when satisfiable,
    [v] lines. *)
