let parse text =
  let n_vars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let saw_header = ref false in
  let handle line_no raw =
    let line = String.trim raw in
    if line = "" || line.[0] = 'c' || line.[0] = '%' then ()
    else if line.[0] = 'p' then begin
      match String.split_on_char ' ' line |> List.filter (( <> ) "") with
      | [ "p"; "cnf"; nv; _nc ] ->
        (match int_of_string_opt nv with
         | Some v when v >= 0 ->
           n_vars := v;
           saw_header := true
         | _ -> failwith (Printf.sprintf "line %d: bad variable count" line_no))
      | _ -> failwith (Printf.sprintf "line %d: bad problem line" line_no)
    end
    else begin
      if not !saw_header then
        failwith (Printf.sprintf "line %d: clause before the problem line" line_no);
      String.split_on_char ' ' line
      |> List.filter (( <> ) "")
      |> List.iter (fun tok ->
          match int_of_string_opt tok with
          | None -> failwith (Printf.sprintf "line %d: bad literal %S" line_no tok)
          | Some 0 ->
            clauses := List.rev !current :: !clauses;
            current := []
          | Some l ->
            if abs l > !n_vars then
              failwith
                (Printf.sprintf "line %d: literal %d exceeds declared variables"
                   line_no l);
            current := l :: !current)
    end
  in
  String.split_on_char '\n' text |> List.iteri (fun i l -> handle (i + 1) l);
  if not !saw_header then failwith "line 1: missing problem line";
  if !current <> [] then clauses := List.rev !current :: !clauses;
  (!n_vars, List.rev !clauses)

let load solver text =
  let n_vars, clauses = parse text in
  let map = Array.init n_vars (fun _ -> Cdcl.new_var solver) in
  List.iter
    (fun cl ->
       Cdcl.add_clause solver
         (List.map
            (fun l ->
               if l > 0 then Cdcl.pos map.(l - 1) else Cdcl.neg map.((-l) - 1))
            cl))
    clauses;
  map

let solve_text ?deadline ?(simplify = true) ?(inprocess = 0) ?solver_out ?obs
    text =
  let solver = Cdcl.create () in
  (match solver_out with Some r -> r := Some solver | None -> ());
  let map = load solver text in
  (* one-shot solving: no clause will ever be added after this point,
     so full preprocessing including variable elimination is sound *)
  if simplify then Cdcl.simplify ~elim:true solver;
  match Cdcl.solve ?deadline ~inprocess ?obs solver with
  | Cdcl.Unsat -> `Unsat
  | Cdcl.Timeout -> `Timeout
  | Cdcl.Sat -> `Sat (Array.map (fun v -> Cdcl.value solver v) map)

let print_result fmt = function
  | `Unsat -> Format.fprintf fmt "s UNSATISFIABLE@."
  | `Timeout -> Format.fprintf fmt "s UNKNOWN@."
  | `Sat model ->
    Format.fprintf fmt "s SATISFIABLE@.";
    Format.fprintf fmt "v";
    Array.iteri
      (fun i b -> Format.fprintf fmt " %d" (if b then i + 1 else -(i + 1)))
      model;
    Format.fprintf fmt " 0@."
