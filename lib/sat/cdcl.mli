(** A standalone CDCL Boolean satisfiability solver.

    Implements the modern DPLL variant sketched in §2.4: two-watched-
    literal unit propagation, first-UIP conflict analysis with clause
    learning, non-chronological backtracking, exponentially-decaying
    variable activities (VSIDS), phase saving and Luby restarts.

    This is the Boolean engine behind the eager bit-blasting baseline
    (the UCLID stand-in) and the propositional skeleton of the lazy
    combined-decision-procedure baseline (the ICS stand-in). *)

type t

type lit = int
(** Literal encoding: [2*v] is the positive literal of variable [v],
    [2*v+1] the negative one. *)

val pos : int -> lit
val neg : int -> lit
val lit_var : lit -> int
val lit_sign : lit -> bool
(** [true] for positive literals. *)

val lit_not : lit -> lit

val create : unit -> t

val new_var : t -> int

val n_vars : t -> int
val n_clauses : t -> int
val n_conflicts : t -> int

val n_learned : t -> int
(** Total conflict-learned lemmas so far (unit learns included).
    Monotone across {!solve} calls and unaffected by {!simplify}'s
    database rebuild — it counts lemmas derived, not lemmas currently
    retained. *)

val add_clause : t -> lit list -> unit
(** May be called only at decision level 0 (before or between
    [solve] calls).  An empty clause makes the instance trivially
    unsatisfiable.  Literals are rewritten through any equivalent-
    literal substitution left by {!simplify}; mentioning a variable
    removed by variable elimination raises [Invalid_argument]. *)

val simplify : ?elim:bool -> ?frozen:int list -> t -> unit
(** Run the pre/inprocessing pipeline ({!Rtlsat_simplify.Simp}) over
    the whole clause database — subsumption, self-subsuming
    resolution, failed-literal probing, binary-implication SCC
    collapsing and (with [elim:true]) bounded variable elimination —
    then rebuild the solver from the simplified formula.  VSIDS
    activities and saved phases survive.

    [elim] defaults to [false]: eliminating a variable is only sound
    while no later [add_clause] or [solve ~assumptions] mentions it,
    so callers opt in for one-shot solving.  [frozen] lists variables
    that must never be eliminated (e.g. future assumption variables).
    Models returned by later [solve] calls are automatically extended
    over substituted and eliminated variables, so {!value} and
    {!model} are unaffected. *)

val simp_stats : t -> Rtlsat_simplify.Simp.stats
(** Cumulative pass counters over every {!simplify} call on this
    solver (including inprocessing runs from inside {!solve}). *)

val rep_lit : t -> lit -> lit
(** Rewrite a literal through the current equivalent-literal
    substitution; the identity before any {!simplify}. *)

val fold_clauses : ('a -> lit array -> 'a) -> 'a -> t -> 'a
(** Fold over the stored clauses (original and learned), in insertion
    order.  Unit clauses are not stored — see {!root_units}. *)

val root_units : t -> lit list
(** Literals asserted at decision level 0 (unit input clauses and
    learned units), in assignment order. *)

val root_conflict : t -> bool
(** The clause database is already unsatisfiable at decision level 0.
    This can hold without any stored clause recording the
    contradiction: {!add_clause} discards a clause whose literals are
    all root-false after setting this flag.  Exporters must check it —
    {!root_units} + {!fold_clauses} alone under-constrain the
    formula. *)

type outcome =
  | Sat
  | Unsat
  | Timeout

val solve :
  ?deadline:float ->
  ?assumptions:lit list ->
  ?inprocess:int ->
  ?cancel:bool Atomic.t ->
  ?obs:Rtlsat_obs.Obs.t ->
  t ->
  outcome
(** [deadline] is an absolute instant compared against the monotonic
    clock ({!Rtlsat_obs.Mono.now}); the solver polls it and returns
    [Timeout] when exceeded.  [cancel] is polled at the same step gate
    (every 256 steps): the portfolio driver sets it when another
    worker wins the race, and this solver returns [Timeout] promptly.
    With [assumptions], [Unsat] means unsatisfiable under them
    (assumption literals are rewritten through the substitution; an
    assumption on an eliminated variable raises [Invalid_argument]).
    [inprocess] > 0 re-runs {!simplify} (without elimination) at the
    first restart after every [inprocess] conflicts; 0 (the default)
    disables inprocessing.  [obs] (default {!Rtlsat_obs.Obs.disabled})
    receives [decide]/[conflict]/[restart]/[done] trace events and
    periodic heartbeats, feeding the [rtlsat sat] flight recorder;
    observation never changes the search. *)

val value : t -> int -> bool
(** Model value of a variable after [solve] returned [Sat]. *)

val model : t -> bool array
