(** Solver-wide observability handle: hierarchical wall-clock span
    timers, named counters, bounded histograms, an optional JSON-lines
    event sink and optional periodic progress reports.

    One handle is threaded through an entire solve (encode → solve →
    final check); hot paths guard every instrumentation site with the
    [enabled] flag, so a disabled handle ({!disabled}) costs one load
    and one branch per site.  A disabled handle is never mutated —
    the shared {!disabled} instance is safe to use everywhere
    concurrently.

    Enabling observability must not change solver behaviour: the
    instrumentation only reads search state, so results, learned
    clauses and their order are identical with and without it
    (checked by [test/test_obs.ml]). *)

(** The hierarchical phases of a solve.  Self-time accounting: while a
    nested span is open, elapsed time is attributed to the innermost
    phase only, so phase times sum to (at most) the observed wall
    clock. *)
type phase =
  | Encode             (** unrolling + RTL → constraint encoding *)
  | Static_learn       (** §3 predicate learning probes *)
  | Simplify           (** pre/inprocessing over the clause database *)
  | Bcp                (** Boolean/hybrid clause propagation *)
  | Icp                (** interval constraint propagation *)
  | Conflict_analysis  (** §2.4 hybrid implication-graph analysis *)
  | Justification      (** §4 structural decision scan *)
  | Final_check        (** solution-box certification *)
  | Fme                (** the FME/Omega arithmetic oracle *)

val phase_name : phase -> string
val all_phases : phase list

type t = {
  enabled : bool;
  self : float array;              (** per-phase self seconds *)
  calls : int array;               (** per-phase span entries *)
  alloc : float array;             (** per-phase allocated words (self,
                                       minor heap only) *)
  mutable stack : int list;        (** open phases, innermost first *)
  mutable mark : float;            (** time of the last span event *)
  mutable alloc_mark : float;      (** allocated words at the last span event *)
  learned_len : Hist.t;            (** learned-clause lengths *)
  backjump : Hist.t;               (** backjump distances (levels) *)
  interval_width : Hist.t;         (** word-interval widths after narrowing *)
  counters : (string, int ref) Hashtbl.t;  (** free-form named counters *)
  trace : Trace.t option;
  recorder : Recorder.t option;
      (** flight recorder; an event sink like [trace], but bounded and
          in-memory — dumped post-mortem via {!flight_dump} *)
  heartbeat : Heartbeat.t option;
  mutable hb_context : (string * Json.t) list;
      (** extra fields appended to every heartbeat (e.g. the sweep
          bound); set with {!set_context} *)
  progress : progress option;
  mutable forensics : Forensics.t option;
      (** per-solve attribution table; attached by the solver via
          {!attach_forensics} when the handle is enabled *)
  mutable worker : int;
      (** worker id tag, [-1] on non-worker handles; when [>= 0],
          every emitted event carries a ["worker"] field (trace/8).
          Set with {!set_worker}. *)
  t0 : float;                      (** handle creation instant *)
  gc0 : Gc.stat;                   (** GC totals at creation; the
                                       snapshot [mem] deltas baseline *)
  gc0_minor : float;               (** [Gc.minor_words ()] at creation —
                                       exact where [gc0.minor_words] only
                                       refreshes at a minor collection *)
}

and progress = {
  p_interval : float;
  mutable p_last : float;
  mutable p_decisions : int;
  mutable p_conflicts : int;
}

val disabled : t
(** The shared no-op handle; [enabled = false], never mutated. *)

val create :
  ?trace:Trace.t ->
  ?recorder:Recorder.t ->
  ?heartbeat_every:float ->
  ?progress_every:float ->
  unit ->
  t
(** A fresh enabled handle.  [recorder] attaches a flight-recorder
    ring that receives every trace event even with no [trace] sink;
    [heartbeat_every] turns on periodic [heartbeat] trace events (at
    most once per that many seconds); [progress_every] turns on
    one-line progress reports on stderr. *)

val tracing : t -> bool
(** [enabled] and an event sink ([trace] or [recorder]) is attached. *)

(* ---- spans ---- *)

val span_enter : t -> phase -> unit
val span_exit : t -> phase -> unit
(** Unbalanced exits are ignored (the solver can unwind through
    exceptions); prefer {!span}. *)

val span : t -> phase -> (unit -> 'a) -> 'a
(** [span t ph f] runs [f] inside phase [ph], exception-safely.
    Disabled handles run [f] directly. *)

(* ---- counters and histograms ---- *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val counter : t -> string -> int
(** 0 when never touched. *)

val observe_learned_len : t -> int -> unit
val observe_backjump : t -> int -> unit

(* ---- events and progress ---- *)

val event : t -> string -> (string * Json.t) list -> unit
(** Emit to every attached sink (trace file and flight recorder).
    No-op unless {!tracing}.  Callers should avoid building the field
    list when not tracing. *)

val set_worker : t -> int -> unit
(** Tag this handle as worker [w]: every subsequent event emitted
    through it carries [("worker", w)].  Used by the parallel driver,
    which gives each domain its own handle sharing the parent's trace
    and recorder sinks (both are internally locked). *)

val set_context : t -> (string * Json.t) list -> unit
(** Fields appended to every subsequent heartbeat — e.g.
    [("bound", Int k)] during a sweep.  Pass [[]] to clear. *)

val heartbeat_tick :
  t ->
  decisions:int ->
  conflicts:int ->
  propagations:int ->
  splits:int ->
  lvl:int ->
  unit
(** Rate-limited: at most one [heartbeat] event per configured
    interval, carrying the given totals, their per-second rates since
    the previous beat, stall/shaved totals from the attached
    forensics, the decision level, a live GC picture ([major_words],
    [heap_mb], [compactions] — trace/7) and the {!set_context}
    fields.  Cheap when not due (one clock read); no-op without a
    heartbeat configuration.  Call from existing step-count gates
    only. *)

val flight_dump : t -> string -> bool
(** Dump the flight-recorder ring to a file ([rtlsat profile] reads
    it).  Returns [false] (and writes nothing) when no recorder is
    attached or nothing was recorded.  @raise Sys_error when the file
    cannot be written. *)

(* ---- forensics (per-constraint / per-variable attribution) ---- *)

val attach_forensics :
  t ->
  nvars:int ->
  nconstrs:int ->
  var_name:(int -> string) ->
  constr_desc:(int -> string) ->
  unit
(** Attach a fresh {!Forensics.t} sized for one solve (replacing any
    previous one, so attribution totals are always per-solve).  No-op
    on a disabled handle — {!disabled} is never mutated. *)

val forensics : t -> Forensics.t option
(** The attached table; [None] when disabled or never attached. *)

val constr_enter : t -> int -> unit
val constr_exit : t -> int -> unit
(** Bracket the propagation of one arithmetic constraint: wakeup
    count, per-constraint time, and the attribution target for
    {!note_narrow}.  Only call from an [enabled]-guarded arm — the
    check inside is [forensics <> None], not [enabled]. *)

val forensics_reset_cur : t -> unit
(** Clear the attribution target after an exception unwound past
    {!constr_exit}. *)

val note_narrow : t -> var:int -> shaved:int -> width:int -> unit
(** Record one word-variable narrowing ([shaved] units removed,
    [width] remaining).  When the narrowing crosses a stall threshold
    (see {!Forensics.note_narrow}), bumps the [icp.stalls] counter and
    emits an [icp_stall] trace event naming the variable and the
    driving constraint. *)

val note_split : t -> var:int -> unit
(** Record one interval-split decision on [var] in the attached
    forensics table (stall → split attribution); no-op without
    forensics.  The [icp.splits] counter and the [split] trace event
    are the solver's responsibility. *)

val emit_summary_events : t -> unit
(** When tracing, emit the end-of-solve summary events: [phases]
    (per-phase self seconds) and, if forensics is attached,
    [hot_constraints] / [hot_vars] (top-10 attribution). *)

val progress_tick :
  t -> decisions:int -> conflicts:int -> learned:int -> depth:int -> unit
(** Rate-limited one-line report on stderr (decisions/s, conflicts/s,
    learned-DB size, current decision depth).  No-op when the handle
    has no progress configuration. *)

val close : t -> unit
(** Close the attached trace sink, if any. *)

(* ---- snapshots ---- *)

(** GC/memory picture of one run: allocation and collection deltas
    over the handle's lifetime ([Gc.quick_stat] at snapshot minus at
    creation), heap sizes absolute at snapshot time. *)
type mem = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;        (** major-heap size, words (absolute) *)
  top_heap_words : int;    (** high-water mark, words (absolute) *)
}

type snapshot = {
  wall : float;                            (** seconds since creation *)
  phases : (string * float * int) list;    (** name, self seconds, entries *)
  phase_alloc : (string * float) list;
      (** name, self allocated words — minor-heap allocation only (the
          hot path reads just [Gc.minor_words]; see [mem] for the full
          major/promoted picture) *)
  histograms : (string * Hist.summary) list;
  counter_values : (string * int) list;    (** sorted by name *)
  trace_events : int;
  stalls : int;                            (** ICP stall reports (forensics) *)
  splits : int;                            (** interval-split decisions (forensics) *)
  hot_constraints : Forensics.hot_constr list;
      (** top-10 constraints by narrowings/time; empty without forensics *)
  hot_vars : Forensics.hot_var list;
      (** top-10 word variables by narrowings; empty without forensics *)
  mem : mem option;                        (** [None] on a disabled handle *)
}

val snapshot : t -> snapshot
(** A disabled handle yields an all-zero snapshot (every phase listed,
    zero everywhere, [mem = None]). *)

val merge_snapshots : snapshot list -> snapshot
(** Combine per-worker snapshots into one run-wide picture at join:
    phase self-times, calls, allocation, histograms, counters, stalls
    and splits are summed; [wall] is the maximum (workers overlap, so
    summing would exceed real time); [trace_events] is the maximum
    (workers share one trace sink with a global count); hot lists are
    re-ranked top-10 across workers; GC words sum, heap sizes take the
    maximum.  The empty list yields the all-zero snapshot. *)

val snapshot_json : snapshot -> Json.t
(** Stable schema: [{"wall_s", "phases": {name:
    {"self_s","calls","alloc_w"}}, "histograms": {...}, "counters":
    {...}, "trace_events", "mem": {"minor_words", "major_words",
    "promoted_words", "minor_collections", "major_collections",
    "compactions", "heap_words", "heap_mb", "top_heap_words"},
    "forensics": {"stalls", "splits", "hot_constraints": [...],
    "hot_vars": [...]}}] with every phase present; the [mem] and
    [forensics] objects are always present and all-zero / empty-armed
    when never populated.  Documented in docs/OBSERVABILITY.md. *)
