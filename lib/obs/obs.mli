(** Solver-wide observability handle: hierarchical wall-clock span
    timers, named counters, bounded histograms, an optional JSON-lines
    event sink and optional periodic progress reports.

    One handle is threaded through an entire solve (encode → solve →
    final check); hot paths guard every instrumentation site with the
    [enabled] flag, so a disabled handle ({!disabled}) costs one load
    and one branch per site.  A disabled handle is never mutated —
    the shared {!disabled} instance is safe to use everywhere
    concurrently.

    Enabling observability must not change solver behaviour: the
    instrumentation only reads search state, so results, learned
    clauses and their order are identical with and without it
    (checked by [test/test_obs.ml]). *)

(** The hierarchical phases of a solve.  Self-time accounting: while a
    nested span is open, elapsed time is attributed to the innermost
    phase only, so phase times sum to (at most) the observed wall
    clock. *)
type phase =
  | Encode             (** unrolling + RTL → constraint encoding *)
  | Static_learn       (** §3 predicate learning probes *)
  | Bcp                (** Boolean/hybrid clause propagation *)
  | Icp                (** interval constraint propagation *)
  | Conflict_analysis  (** §2.4 hybrid implication-graph analysis *)
  | Justification      (** §4 structural decision scan *)
  | Final_check        (** solution-box certification *)
  | Fme                (** the FME/Omega arithmetic oracle *)

val phase_name : phase -> string
val all_phases : phase list

type t = {
  enabled : bool;
  self : float array;              (** per-phase self seconds *)
  calls : int array;               (** per-phase span entries *)
  mutable stack : int list;        (** open phases, innermost first *)
  mutable mark : float;            (** time of the last span event *)
  learned_len : Hist.t;            (** learned-clause lengths *)
  backjump : Hist.t;               (** backjump distances (levels) *)
  interval_width : Hist.t;         (** word-interval widths after narrowing *)
  counters : (string, int ref) Hashtbl.t;  (** free-form named counters *)
  trace : Trace.t option;
  progress : progress option;
  t0 : float;                      (** handle creation instant *)
}

and progress = {
  p_interval : float;
  mutable p_last : float;
  mutable p_decisions : int;
  mutable p_conflicts : int;
}

val disabled : t
(** The shared no-op handle; [enabled = false], never mutated. *)

val create : ?trace:Trace.t -> ?progress_every:float -> unit -> t
(** A fresh enabled handle.  [progress_every] turns on one-line
    progress reports on stderr, at most once per that many seconds. *)

val tracing : t -> bool
(** [enabled] and an event sink is attached. *)

(* ---- spans ---- *)

val span_enter : t -> phase -> unit
val span_exit : t -> phase -> unit
(** Unbalanced exits are ignored (the solver can unwind through
    exceptions); prefer {!span}. *)

val span : t -> phase -> (unit -> 'a) -> 'a
(** [span t ph f] runs [f] inside phase [ph], exception-safely.
    Disabled handles run [f] directly. *)

(* ---- counters and histograms ---- *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val counter : t -> string -> int
(** 0 when never touched. *)

val observe_learned_len : t -> int -> unit
val observe_backjump : t -> int -> unit

(* ---- events and progress ---- *)

val event : t -> string -> (string * Json.t) list -> unit
(** No-op unless {!tracing}.  Callers should avoid building the field
    list when not tracing. *)

val progress_tick :
  t -> decisions:int -> conflicts:int -> learned:int -> depth:int -> unit
(** Rate-limited one-line report on stderr (decisions/s, conflicts/s,
    learned-DB size, current decision depth).  No-op when the handle
    has no progress configuration. *)

val close : t -> unit
(** Close the attached trace sink, if any. *)

(* ---- snapshots ---- *)

type snapshot = {
  wall : float;                            (** seconds since creation *)
  phases : (string * float * int) list;    (** name, self seconds, entries *)
  histograms : (string * Hist.summary) list;
  counter_values : (string * int) list;    (** sorted by name *)
  trace_events : int;
}

val snapshot : t -> snapshot
(** A disabled handle yields an all-zero snapshot (every phase listed,
    zero everywhere). *)

val snapshot_json : snapshot -> Json.t
(** Stable schema: [{"wall_s", "phases": {name: {"self_s","calls"}},
    "histograms": {...}, "counters": {...}, "trace_events"}] with
    every phase present.  Documented in docs/OBSERVABILITY.md. *)
