type side = {
  file : string;
  schema : string option;
  verdict : string option;
  keys : string array;
  phases : (string * float) list;
  counters : (string * int) list;
}

type divergence = {
  index : int;
  older : string option;
  newer : string option;
}

type t = {
  old_side : side;
  new_side : side;
  first : divergence option;
  verdict_diverged : bool;
}

(* canonical rendering of one key event: a stable field whitelist per
   kind, so alignment ignores noisy fields (queue sizes, timestamps)
   but still catches a different variable, arm or learned length *)
let key_fields = function
  | "decide" -> [ "kind"; "var"; "lvl" ]
  | "split" -> [ "var"; "name"; "lo"; "hi"; "mid"; "arm" ]
  | "conflict" -> [ "lvl"; "bt"; "len" ]
  | _ -> []

let render_key ev j =
  let b = Buffer.create 48 in
  Buffer.add_string b ev;
  Buffer.add_char b '(';
  List.iteri
    (fun i name ->
       match Json.member name j with
       | None -> ()
       | Some v ->
         if i > 0 && Buffer.length b > String.length ev + 1 then
           Buffer.add_char b ' ';
         Buffer.add_string b name;
         Buffer.add_char b '=';
         Buffer.add_string b
           (match v with Json.Str s -> s | v -> Json.to_string v))
    (key_fields ev);
  Buffer.add_char b ')';
  Buffer.contents b

let load_side file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
       let schema = ref None in
       let verdict = ref None in
       let keys = ref [] in
       let nkeys = ref 0 in
       let phases = ref [] in
       let done_counters = ref [] in
       let bump tbl k = Hashtbl.replace tbl k (1 + try Hashtbl.find tbl k with Not_found -> 0) in
       let ev_counts = Hashtbl.create 8 in
       (try
          while true do
            let line = input_line ic in
            if String.trim line <> "" then
              match Json.of_string line with
              | exception Json.Parse_error _ -> () (* torn tail of a killed run *)
              | j ->
                (match Json.member "schema" j with
                 | Some (Json.Str s) when !schema = None -> schema := Some s
                 | _ -> ());
                (match Json.member "ev" j with
                 | Some (Json.Str ev) ->
                   bump ev_counts ev;
                   (match ev with
                    | "decide" | "split" | "conflict" ->
                      keys := render_key ev j :: !keys;
                      incr nkeys
                    | "done" ->
                      (match Json.member "result" j with
                       | Some (Json.Str r) -> verdict := Some r
                       | _ -> ());
                      List.iter
                        (fun name ->
                           match Json.member name j with
                           | Some (Json.Int n) -> done_counters := (name, n) :: !done_counters
                           | _ -> ())
                        [ "conflicts"; "decisions" ]
                    | "phases" ->
                      (match Json.member "self_s" j with
                       | Some (Json.Obj fields) ->
                         phases :=
                           List.filter_map
                             (fun (name, v) ->
                                Option.map (fun f -> (name, f)) (Json.get_float v))
                             fields
                       | _ -> ())
                    | _ -> ())
                 | _ -> ())
          done
        with End_of_file -> ());
       let counters =
         List.rev !done_counters
         @ List.sort compare
             (Hashtbl.fold
                (fun ev n acc ->
                   match ev with
                   | "decide" | "split" | "conflict" | "restart" | "icp_stall" ->
                     ("ev." ^ ev, n) :: acc
                   | _ -> acc)
                ev_counts [])
       in
       {
         file;
         schema = !schema;
         verdict = !verdict;
         keys = Array.of_list (List.rev !keys);
         phases = !phases;
         counters;
       })

let first_divergence a b =
  let na = Array.length a.keys and nb = Array.length b.keys in
  let n = min na nb in
  let rec scan i =
    if i < n then
      if String.equal a.keys.(i) b.keys.(i) then scan (i + 1)
      else Some { index = i; older = Some a.keys.(i); newer = Some b.keys.(i) }
    else if na = nb then None
    else
      (* identical prefix, one side kept searching: the divergence is
         the first event the shorter side never made *)
      Some
        {
          index = n;
          older = (if na > n then Some a.keys.(n) else None);
          newer = (if nb > n then Some b.keys.(n) else None);
        }
  in
  scan 0

let diff ~old_file ~new_file =
  let old_side = load_side old_file in
  let new_side = load_side new_file in
  {
    old_side;
    new_side;
    first = first_divergence old_side new_side;
    verdict_diverged = old_side.verdict <> new_side.verdict;
  }

let exit_code d = if d.verdict_diverged then 1 else 0

let opt_str = function Some s -> s | None -> "-"

let print fmt d =
  let o = d.old_side and n = d.new_side in
  Format.fprintf fmt "trace-diff: %s vs %s@." o.file n.file;
  Format.fprintf fmt "  schema:  %s | %s@." (opt_str o.schema) (opt_str n.schema);
  Format.fprintf fmt "  verdict: %s | %s%s@." (opt_str o.verdict) (opt_str n.verdict)
    (if d.verdict_diverged then "   DIVERGED" else "");
  Format.fprintf fmt "  key events (decide/split/conflict): %d | %d@."
    (Array.length o.keys) (Array.length n.keys);
  (match d.first with
   | None -> Format.fprintf fmt "  key sequences identical@."
   | Some dv ->
     Format.fprintf fmt "  first divergence at key event #%d:@." dv.index;
     Format.fprintf fmt "    old: %s@."
       (match dv.older with Some k -> k | None -> "(trace ends)");
     Format.fprintf fmt "    new: %s@."
       (match dv.newer with Some k -> k | None -> "(trace ends)"));
  let phase_names =
    List.sort_uniq compare (List.map fst o.phases @ List.map fst n.phases)
  in
  let lookup l k d = match List.assoc_opt k l with Some v -> v | None -> d in
  let phase_rows =
    List.filter_map
      (fun name ->
         let a = lookup o.phases name 0.0 and b = lookup n.phases name 0.0 in
         if Float.abs (b -. a) > 1e-9 then Some (name, a, b) else None)
      phase_names
  in
  if phase_rows <> [] then begin
    Format.fprintf fmt "  phase deltas (self_s, new-old):@.";
    List.iter
      (fun (name, a, b) ->
         Format.fprintf fmt "    %-18s %+10.4f  (%.4f -> %.4f)@." name (b -. a) a b)
      phase_rows
  end;
  let counter_names =
    List.sort_uniq compare (List.map fst o.counters @ List.map fst n.counters)
  in
  let counter_rows =
    List.filter_map
      (fun name ->
         let a = lookup o.counters name 0 and b = lookup n.counters name 0 in
         if a <> b then Some (name, a, b) else None)
      counter_names
  in
  if counter_rows <> [] then begin
    Format.fprintf fmt "  counter deltas (new-old):@.";
    List.iter
      (fun (name, a, b) ->
         Format.fprintf fmt "    %-18s %+10d  (%d -> %d)@." name (b - a) a b)
      counter_rows
  end
