(** Flight recorder: an always-on bounded ring buffer of the last N
    trace events.  Unlike {!Trace} it never touches the filesystem
    while the solver runs; events are kept unrendered and only
    serialized by {!dump}, which is called on a timeout, an uncaught
    exception, or SIGUSR1 so a hung solve still yields a post-mortem
    for [rtlsat profile]. *)

(** One buffered event, unrendered: serialization cost is paid at
    {!dump} time, not on the solver's path. *)
type entry = {
  e_t : float;  (** seconds since the owning handle's creation *)
  e_ev : string;
  e_fields : (string * Json.t) list;
}

type t

val default_cap : int
(** 4096 events. *)

val create : ?cap:int -> unit -> t
(** @raise Invalid_argument when [cap <= 0]. *)

val record : t -> t_rel:float -> ev:string -> (string * Json.t) list -> unit
(** Append one event ([t_rel] seconds since the owning handle's
    creation); the oldest event is overwritten once the ring is
    full. *)

val recorded : t -> int
(** Events currently held (at most the capacity). *)

val dropped : t -> int
(** Events overwritten so far. *)

val is_empty : t -> bool

val iter : t -> (entry -> unit) -> unit
(** Visit the buffered events oldest-first. *)

val dump : t -> string -> unit
(** Write the buffered events to [path] as a well-formed
    {!Trace.schema} JSON-lines stream: a synthetic [header] line, one
    [recorder] event carrying [recorded]/[dropped]/[cap], then the
    buffered events oldest-first.  @raise Sys_error when the file
    cannot be written. *)
