(* ---- online attribution ---- *)

type t = {
  (* per-constraint *)
  c_wakeups : int array;
  c_narrows : int array;
  c_shaved : int array;
  c_time : float array;
  (* per-word-variable *)
  v_narrows : int array;
  v_shaved : int array;
  mutable total_shaved : int;
  (* stall detection: consecutive small narrowings per variable *)
  v_streak : int array;
  v_streak_shaved : int array;
  v_next_report : int array;
  mutable n_stalls : int;
  (* stall → split attribution: bisection decisions per variable *)
  v_splits : int array;
  mutable n_splits : int;
  (* attribution target while a constraint propagates *)
  mutable cur : int;
  mutable mark : float;
  mutable namer : (int -> string) option;
  mutable descr : (int -> string) option;
}

let stall_min_width = 1 lsl 32
let stall_max_shave = 8
let stall_streak = 512

let create ~nvars ~nconstrs =
  {
    c_wakeups = Array.make nconstrs 0;
    c_narrows = Array.make nconstrs 0;
    c_shaved = Array.make nconstrs 0;
    c_time = Array.make nconstrs 0.0;
    v_narrows = Array.make nvars 0;
    v_shaved = Array.make nvars 0;
    total_shaved = 0;
    v_streak = Array.make nvars 0;
    v_streak_shaved = Array.make nvars 0;
    v_next_report = Array.make nvars stall_streak;
    n_stalls = 0;
    v_splits = Array.make nvars 0;
    n_splits = 0;
    cur = -1;
    mark = 0.0;
    namer = None;
    descr = None;
  }

let set_names t ~var_name ~constr_desc =
  t.namer <- Some var_name;
  t.descr <- Some constr_desc

let var_name t v =
  match t.namer with Some f -> f v | None -> Printf.sprintf "v%d" v

let constr_desc t ci =
  if ci < 0 then "(clause propagation)"
  else match t.descr with Some f -> f ci | None -> Printf.sprintf "c%d" ci

let constr_enter t ci =
  if ci >= 0 && ci < Array.length t.c_wakeups then begin
    t.c_wakeups.(ci) <- t.c_wakeups.(ci) + 1;
    t.cur <- ci;
    t.mark <- Mono.now ()
  end

let constr_exit t ci =
  if t.cur = ci && ci >= 0 && ci < Array.length t.c_time then
    t.c_time.(ci) <- t.c_time.(ci) +. (Mono.now () -. t.mark);
  t.cur <- -1

let reset_cur t = t.cur <- -1

type stall = {
  st_var : int;
  st_constr : int;
  st_streak : int;
  st_shaved : int;
  st_width : int;
}

let note_narrow t ~var ~shaved ~width =
  if var < 0 || var >= Array.length t.v_narrows then None
  else begin
    t.v_narrows.(var) <- t.v_narrows.(var) + 1;
    t.v_shaved.(var) <- t.v_shaved.(var) + shaved;
    t.total_shaved <- t.total_shaved + shaved;
    if t.cur >= 0 then begin
      t.c_narrows.(t.cur) <- t.c_narrows.(t.cur) + 1;
      t.c_shaved.(t.cur) <- t.c_shaved.(t.cur) + shaved
    end;
    if shaved <= stall_max_shave && width >= stall_min_width then begin
      t.v_streak.(var) <- t.v_streak.(var) + 1;
      t.v_streak_shaved.(var) <- t.v_streak_shaved.(var) + shaved;
      if t.v_streak.(var) >= t.v_next_report.(var) then begin
        t.v_next_report.(var) <- t.v_next_report.(var) * 16;
        t.n_stalls <- t.n_stalls + 1;
        Some
          {
            st_var = var;
            st_constr = t.cur;
            st_streak = t.v_streak.(var);
            st_shaved = t.v_streak_shaved.(var);
            st_width = width;
          }
      end
      else None
    end
    else begin
      (* a decisive narrowing (or a shrunken domain) ends the streak *)
      t.v_streak.(var) <- 0;
      t.v_streak_shaved.(var) <- 0;
      t.v_next_report.(var) <- stall_streak;
      None
    end
  end

let stalls t = t.n_stalls
let total_shaved t = t.total_shaved

let note_split t ~var =
  if var >= 0 && var < Array.length t.v_splits then begin
    t.v_splits.(var) <- t.v_splits.(var) + 1;
    t.n_splits <- t.n_splits + 1
  end

let splits t = t.n_splits

type hot_constr = {
  hc_id : int;
  hc_desc : string;
  hc_wakeups : int;
  hc_narrows : int;
  hc_shaved : int;
  hc_time : float;
}

type hot_var = {
  hv_id : int;
  hv_name : string;
  hv_narrows : int;
  hv_shaved : int;
}

let top_k ~k ~score ~active n =
  let ids = ref [] in
  for i = n - 1 downto 0 do
    if active i then ids := i :: !ids
  done;
  let sorted = List.sort (fun a b -> compare (score b) (score a)) !ids in
  let rec take k = function
    | x :: rest when k > 0 -> x :: take (k - 1) rest
    | _ -> []
  in
  take k sorted

let top_constraints t ~k =
  top_k ~k
    ~score:(fun ci -> (t.c_time.(ci), t.c_narrows.(ci), t.c_shaved.(ci)))
    ~active:(fun ci -> t.c_narrows.(ci) > 0 || t.c_wakeups.(ci) > 0)
    (Array.length t.c_wakeups)
  |> List.map (fun ci ->
      {
        hc_id = ci;
        hc_desc = constr_desc t ci;
        hc_wakeups = t.c_wakeups.(ci);
        hc_narrows = t.c_narrows.(ci);
        hc_shaved = t.c_shaved.(ci);
        hc_time = t.c_time.(ci);
      })

let top_vars t ~k =
  top_k ~k
    ~score:(fun v -> (t.v_narrows.(v), t.v_shaved.(v)))
    ~active:(fun v -> t.v_narrows.(v) > 0)
    (Array.length t.v_narrows)
  |> List.map (fun v ->
      {
        hv_id = v;
        hv_name = var_name t v;
        hv_narrows = t.v_narrows.(v);
        hv_shaved = t.v_shaved.(v);
      })

(* ---- offline analysis ---- *)

(* The profiler reads every trace version this repo has ever written;
   the dispatch table is the single place a new version is declared.
   An unknown future version is a hard, explicit error — silently
   misreading a v9 trace as v5 would fabricate diagnoses. *)
let trace_versions =
  [
    (1, "headerless: decide/conflict/learn/restart/done");
    (2, "header + forensics events (icp_stall, hot_constraints, hot_vars, \
         phases)");
    (3, "+ split events and the \"split\" decide kind");
    (4, "+ session lifecycle (session.create, solve.begin, \"assumption\" \
         decides)");
    (5, "+ live telemetry (heartbeat, recorder, sweep.bound/sweep.result)");
    (6, "+ simplify.pass (pre/inprocessing over the clause databases)");
    (7, "+ GC/memory telemetry on heartbeats (major_words, heap_mb, \
         compactions)");
    (8, "+ worker-tagged events (parallel portfolio / cube-and-conquer \
         domains carry a \"worker\" field)");
  ]

let max_trace_version =
  List.fold_left (fun acc (v, _) -> max acc v) 0 trace_versions

exception Unsupported_schema of string

let schema_version tag =
  let prefix = "rtlsat.trace/" in
  let plen = String.length prefix in
  if String.length tag > plen && String.sub tag 0 plen = prefix then
    int_of_string_opt (String.sub tag plen (String.length tag - plen))
  else None

(* [Some v] for a known version, raises for a recognizably
   versioned-but-unknown tag or a foreign schema string *)
let check_schema tag =
  match schema_version tag with
  | Some v when List.mem_assoc v trace_versions -> v
  | _ ->
    raise
      (Unsupported_schema
         (Printf.sprintf
            "unsupported trace schema %S: this build reads rtlsat.trace/1 \
             through rtlsat.trace/%d"
            tag max_trace_version))

type stall_info = {
  si_var : int;
  si_name : string;
  si_desc : string;
  si_reports : int;
  si_max_streak : int;
  si_last_width : int;
}

type profile = {
  pf_schema : string option;
  pf_version : int;
  pf_warnings : string list;
  pf_events : (string * int) list;
  pf_wall : float;
  pf_result : string option;
  pf_decisions : (string * int) list;
  pf_conflicts : int;
  pf_learned_len_mean : float;
  pf_backjump_mean : float;
  pf_local_backjumps : int;
  pf_restarts : int;
  pf_splits : int;
  pf_split_vars : int;
  pf_split_stalled : int;
  pf_heartbeats : int;
  pf_stalls : stall_info list;
  pf_hot_constraints : hot_constr list;
  pf_hot_vars : hot_var list;
  pf_phases : (string * float) list;
  pf_diagnosis : string list;
}

let tally tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl key (ref 1)

let sorted_counts tbl =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
  |> List.sort (fun (ka, a) (kb, b) ->
      if a <> b then compare b a else compare ka kb)

let field_int j name = Option.bind (Json.member name j) Json.get_int
let field_float j name = Option.bind (Json.member name j) Json.get_float
let field_str j name = Option.bind (Json.member name j) Json.get_string

let hot_constr_of_json j =
  {
    hc_id = Option.value (field_int j "constr") ~default:(-1);
    hc_desc = Option.value (field_str j "desc") ~default:"?";
    hc_wakeups = Option.value (field_int j "wakeups") ~default:0;
    hc_narrows = Option.value (field_int j "narrows") ~default:0;
    hc_shaved = Option.value (field_int j "shaved") ~default:0;
    hc_time = Option.value (field_float j "time_s") ~default:0.0;
  }

let hot_var_of_json j =
  {
    hv_id = Option.value (field_int j "var") ~default:(-1);
    hv_name = Option.value (field_str j "name") ~default:"?";
    hv_narrows = Option.value (field_int j "narrows") ~default:0;
    hv_shaved = Option.value (field_int j "shaved") ~default:0;
  }

let diagnose ~result ~stalls ~phases ~conflicts ~local ~bt_mean ~restarts
    ~decisions ~splits ~split_vars ~split_stalled =
  let out = ref [] in
  let push s = out := s :: !out in
  if splits > 0 then
    push
      (Printf.sprintf
         "interval splitting engaged: %d bisection decision(s) over %d \
          variable(s)%s cut the unit-step crawl into binary search%s."
         splits split_vars
         (if split_stalled > 0 then
            Printf.sprintf
              " (%d of them also reported as stalled, so the stall detector \
               and the split heuristic agree on the culprits)"
              split_stalled
          else "")
         (match result with
          | Some "timeout" ->
            "; the run still timed out — the residual work is elsewhere"
          | _ -> ""))
  else
    (match stalls with
     | s :: _ ->
       push
         (Printf.sprintf
            "slow ICP convergence is the dominant behaviour: variable '%s' was \
             narrowed %d+ consecutive times by tiny steps across a >= 2^32-wide \
             domain (last observed width %d, driven by %s)%s.  Suggested next \
             steps: interval splitting / bisection decisions on the stalled \
             variable (rerun without --no-split), a width-triggered fallback \
             to bitblasting, or widening the per-sweep tightening for \
             wrap-around constraints."
            s.si_name s.si_max_streak s.si_last_width s.si_desc
            (match result with
             | Some "timeout" -> "; the run timed out"
             | _ -> ""))
     | [] -> ());
  (match phases with
   | [] -> ()
   | phases ->
     let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 phases in
     let name, self =
       List.fold_left
         (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
         ("", 0.0) phases
     in
     if total > 0.0 && self /. total >= 0.5 then
       push
         (Printf.sprintf
            "phase '%s' dominates solver time: %.3fs of %.3fs (%.0f%%) of \
             attributed phase time." name self total (100.0 *. self /. total)));
  if conflicts >= 100 && float_of_int local >= 0.8 *. float_of_int conflicts
  then
    push
      (Printf.sprintf
         "conflicts are highly local: %d of %d (%.0f%%) backjump <= 2 levels \
          (mean %.1f); the search is thrashing near the leaves — stronger \
          learning or more aggressive restarts may help."
         local conflicts
         (100.0 *. float_of_int local /. float_of_int conflicts)
         bt_mean);
  if restarts > 0 && conflicts > 0 then
    push
      (Printf.sprintf
         "restart efficacy: %d restart(s), a mean of %.0f conflicts between \
          restarts." restarts
         (float_of_int conflicts /. float_of_int (restarts + 1)));
  if decisions = 0 && conflicts = 0 && stalls <> [] then
    push
      "the solver never reached a decision: root-level propagation consumed \
       the whole run.";
  if !out = [] then
    push "no pathology detected: no stalls, no dominant phase, conflicts \
          backjump normally.";
  List.rev !out

let profile_string text =
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun m -> warnings := m :: !warnings) fmt in
  let events = Hashtbl.create 16 in
  let decisions = Hashtbl.create 4 in
  let schema = ref None in
  let version = ref 1 in
  let heartbeats = ref 0 in
  let wall = ref 0.0 in
  let result = ref None in
  let conflicts = ref 0 in
  let len_sum = ref 0 in
  let bt_sum = ref 0 in
  let local = ref 0 in
  let restarts = ref 0 in
  let n_decisions = ref 0 in
  let stall_tbl : (int, stall_info) Hashtbl.t = Hashtbl.create 4 in
  let n_splits = ref 0 in
  let split_tbl : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let hot_constraints = ref [] in
  let hot_vars = ref [] in
  let phases = ref [] in
  let first = ref true in
  let n_bad = ref 0 in
  let handle line =
    match Json.of_string line with
    | exception Json.Parse_error _ -> incr n_bad
    | j ->
      let ev = Option.value (field_str j "ev") ~default:"?" in
      tally events ev;
      (match field_float j "t" with Some t when t > !wall -> wall := t | _ -> ());
      if !first then begin
        first := false;
        match ev with
        | "header" ->
          (match field_str j "schema" with
           | Some tag ->
             version := check_schema tag;
             schema := Some tag
           | None ->
             warn "trace header carries no schema tag; assuming the current \
                   version")
        | _ ->
          warn
            "no trace header: treating this as a v1 (rtlsat.trace/1) trace — \
             stall and attribution events were not emitted by that version"
      end;
      (match ev with
       | "decide" ->
         incr n_decisions;
         tally decisions (Option.value (field_str j "kind") ~default:"?")
       | "conflict" ->
         incr conflicts;
         (match field_int j "len" with Some l -> len_sum := !len_sum + l | None -> ());
         (match (field_int j "lvl", field_int j "bt") with
          | Some lvl, Some bt ->
            let d = lvl - bt in
            bt_sum := !bt_sum + d;
            if d <= 2 then incr local
          | _ -> ())
       | "restart" -> incr restarts
       | "done" -> result := field_str j "result"
       | "heartbeat" -> incr heartbeats
       | "recorder" ->
         (match field_int j "dropped" with
          | Some d when d > 0 ->
            warn
              "flight-recorder dump: %d event(s) dropped (ring capacity %d) — \
               the earliest part of the run is missing"
              d
              (Option.value (field_int j "cap") ~default:0)
          | _ -> ())
       | "icp_stall" ->
         let v = Option.value (field_int j "var") ~default:(-1) in
         let info =
           match Hashtbl.find_opt stall_tbl v with
           | Some i ->
             {
               i with
               si_reports = i.si_reports + 1;
               si_max_streak =
                 max i.si_max_streak
                   (Option.value (field_int j "streak") ~default:0);
               si_last_width = Option.value (field_int j "width") ~default:0;
             }
           | None ->
             {
               si_var = v;
               si_name = Option.value (field_str j "name")
                   ~default:(Printf.sprintf "v%d" v);
               si_desc = Option.value (field_str j "desc")
                   ~default:"(unknown constraint)";
               si_reports = 1;
               si_max_streak = Option.value (field_int j "streak") ~default:0;
               si_last_width = Option.value (field_int j "width") ~default:0;
             }
         in
         Hashtbl.replace stall_tbl v info
       | "split" ->
         incr n_splits;
         let v = Option.value (field_int j "var") ~default:(-1) in
         Hashtbl.replace split_tbl v
           (1 + Option.value (Hashtbl.find_opt split_tbl v) ~default:0)
       | "hot_constraints" ->
         (match Option.bind (Json.member "top" j) Json.get_list with
          | Some l -> hot_constraints := List.map hot_constr_of_json l
          | None -> ())
       | "hot_vars" ->
         (match Option.bind (Json.member "top" j) Json.get_list with
          | Some l -> hot_vars := List.map hot_var_of_json l
          | None -> ())
       | "phases" ->
         (match Json.get_obj (Option.value (Json.member "self_s" j) ~default:Json.Null) with
          | Some fields ->
            phases :=
              List.filter_map
                (fun (n, v) -> Option.map (fun f -> (n, f)) (Json.get_float v))
                fields
          | None -> ())
       | _ -> ())
  in
  String.split_on_char '\n' text
  |> List.iter (fun line -> if String.trim line <> "" then handle line);
  if !n_bad > 0 then warn "%d malformed line(s) skipped" !n_bad;
  if !first then warn "trace is empty";
  let stalls =
    Hashtbl.fold (fun _ i acc -> i :: acc) stall_tbl []
    |> List.sort (fun a b -> compare b.si_max_streak a.si_max_streak)
  in
  let fdiv a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  let split_stalled =
    Hashtbl.fold
      (fun v _ acc -> if Hashtbl.mem stall_tbl v then acc + 1 else acc)
      split_tbl 0
  in
  {
    pf_schema = !schema;
    pf_version = !version;
    pf_warnings = List.rev !warnings;
    pf_events = sorted_counts events;
    pf_wall = !wall;
    pf_result = !result;
    pf_decisions = sorted_counts decisions;
    pf_conflicts = !conflicts;
    pf_learned_len_mean = fdiv !len_sum !conflicts;
    pf_backjump_mean = fdiv !bt_sum !conflicts;
    pf_local_backjumps = !local;
    pf_restarts = !restarts;
    pf_splits = !n_splits;
    pf_split_vars = Hashtbl.length split_tbl;
    pf_split_stalled = split_stalled;
    pf_heartbeats = !heartbeats;
    pf_stalls = stalls;
    pf_hot_constraints = !hot_constraints;
    pf_hot_vars = !hot_vars;
    pf_phases = !phases;
    pf_diagnosis =
      diagnose ~result:!result ~stalls ~phases:!phases ~conflicts:!conflicts
        ~local:!local ~bt_mean:(fdiv !bt_sum !conflicts) ~restarts:!restarts
        ~decisions:!n_decisions ~splits:!n_splits
        ~split_vars:(Hashtbl.length split_tbl) ~split_stalled;
  }

let profile_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> profile_string (really_input_string ic (in_channel_length ic)))

let print_profile fmt p =
  let section name = Format.fprintf fmt "@.%s@." name in
  Format.fprintf fmt "trace profile (%s)@."
    (match p.pf_schema with
     | Some s -> s
     | None -> "headerless; assuming rtlsat.trace/1");
  List.iter (fun w -> Format.fprintf fmt "warning: %s@." w) p.pf_warnings;
  Format.fprintf fmt "wall clock covered: %.3fs   result: %s@." p.pf_wall
    (Option.value p.pf_result ~default:"(no done event)");
  if p.pf_heartbeats > 0 then
    Format.fprintf fmt "telemetry: %d heartbeat(s) over %.3fs@."
      p.pf_heartbeats p.pf_wall;
  section "events:";
  List.iter
    (fun (ev, n) -> Format.fprintf fmt "  %-18s %8d@." ev n)
    p.pf_events;
  if p.pf_decisions <> [] then begin
    section "decisions by kind:";
    List.iter
      (fun (k, n) -> Format.fprintf fmt "  %-18s %8d@." k n)
      p.pf_decisions
  end;
  if p.pf_conflicts > 0 then begin
    section "conflict locality:";
    Format.fprintf fmt
      "  %d conflicts, mean learned length %.1f, mean backjump %.1f levels, \
       %d (%.0f%%) backjump <= 2 levels@."
      p.pf_conflicts p.pf_learned_len_mean p.pf_backjump_mean
      p.pf_local_backjumps
      (100.0 *. float_of_int p.pf_local_backjumps
       /. float_of_int p.pf_conflicts);
    Format.fprintf fmt "  restarts: %d@." p.pf_restarts
  end;
  if p.pf_phases <> [] then begin
    section "phase self-times:";
    List.iter
      (fun (n, v) -> if v > 0.0 then Format.fprintf fmt "  %-18s %8.3fs@." n v)
      p.pf_phases
  end;
  if p.pf_splits > 0 then begin
    section "split/stall interplay:";
    Format.fprintf fmt
      "  %d interval-split decision(s) over %d variable(s); %d split \
       variable(s) also reported as stalled@."
      p.pf_splits p.pf_split_vars p.pf_split_stalled
  end;
  if p.pf_stalls <> [] then begin
    section "detected ICP stalls:";
    List.iter
      (fun s ->
         Format.fprintf fmt
           "  var '%s': %d report(s), max streak %d tiny narrowings, last \
            width %d@.    driving constraint: %s@."
           s.si_name s.si_reports s.si_max_streak s.si_last_width s.si_desc)
      p.pf_stalls
  end;
  if p.pf_hot_constraints <> [] then begin
    section "hot constraints (by propagation time):";
    List.iter
      (fun h ->
         Format.fprintf fmt
           "  #%-5d %8.3fs  %7d wakeups  %7d narrows  %10d units  %s@."
           h.hc_id h.hc_time h.hc_wakeups h.hc_narrows h.hc_shaved h.hc_desc)
      p.pf_hot_constraints
  end;
  if p.pf_hot_vars <> [] then begin
    section "hot variables (by narrowing count):";
    List.iter
      (fun h ->
         Format.fprintf fmt "  %-24s %7d narrows  %12d units shaved@."
           h.hv_name h.hv_narrows h.hv_shaved)
      p.pf_hot_vars
  end;
  section "diagnosis:";
  List.iteri
    (fun i d ->
       Format.fprintf fmt "  %d. @[%a@]@." (i + 1) Format.pp_print_text d)
    p.pf_diagnosis
