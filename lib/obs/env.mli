(** Environment fingerprint: which code, on which machine, under which
    runtime produced an artifact.  Embedded in every ledger record
    ({!Ledger}), in [rtlsat solve --stats-json] and in [BENCH_*.json]
    so results stay attributable after the working tree moves on.

    All probes are best-effort and cached for the process lifetime:
    a missing [git] binary or a non-repo working directory yields
    ["unknown"] / [false] rather than an error. *)

type fingerprint = {
  git_rev : string;      (** 12-char commit id, or ["unknown"] *)
  git_dirty : bool;      (** uncommitted changes in the working tree *)
  hostname : string;
  ocaml_version : string;
  word_size : int;       (** [Sys.word_size], bits *)
}

val fingerprint : unit -> fingerprint
(** Probed once per process (two [git] subprocesses), then cached. *)

val fingerprint_json : unit -> Json.t
(** [{"git_rev", "git_dirty", "hostname", "ocaml_version",
    "word_size"}] — the ["env"] block of ledger records, solve
    stats-json and bench artifacts. *)
