(** Minimal JSON: enough for the observability layer's emission and
    for round-tripping traces in tests.  No external dependency — the
    container image carries no JSON library, and the subset below
    (objects, arrays, strings, ints, floats, bools, null) covers every
    schema this repo produces. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Non-finite floats become
    [null] so the output is always valid JSON. *)

val to_buffer : Buffer.t -> t -> unit
val to_channel : out_channel -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** Strict parser for the emitted subset (plus the usual escapes and
    [\uXXXX], encoded back to UTF-8).  @raise Parse_error on malformed
    input or trailing garbage. *)

(** Accessors; [None] on shape mismatch. *)

val member : string -> t -> t option
val get_int : t -> int option
val get_float : t -> float option
(** Ints promote to floats. *)

val get_string : t -> string option
val get_list : t -> t list option
val get_obj : t -> (string * t) list option
