(** Periodic in-flight progress telemetry.

    {b Emitting} — a rate-limiter plus delta tracker owned by an
    enabled {!Obs.t}.  The solver's existing step-count gates ask
    {!due} (one clock read); at most once per interval {!beat}
    produces the field list of one [heartbeat] trace event: running
    totals (decisions, conflicts, propagations, splits, stalls, total
    interval width shaved, current decision level) and per-second
    rates over the previous beat ([dps]/[cps]/[pps]).

    {b Consuming} — a {!view} folds parsed trace events (live tail or
    completed file) into the latest rates, stall/split activity and
    per-bound sweep progress; [rtlsat top] renders it. *)

type t

val create : every:float -> t
(** A heartbeat due immediately, then at most once per [every]
    seconds.  @raise Invalid_argument when [every <= 0]. *)

val due : t -> float -> bool
(** [due t now]: has the interval elapsed? *)

val beat :
  t ->
  now:float ->
  now_rel:float ->
  decisions:int ->
  conflicts:int ->
  propagations:int ->
  splits:int ->
  stalls:int ->
  shaved:int ->
  lvl:int ->
  (string * Json.t) list
(** Advance the state machine and return the [heartbeat] event fields
    ([seq], totals, rates, [lvl]).  [now] is absolute (for the next
    deadline), [now_rel] is seconds since the owning handle's t0 (for
    rate deltas, matching the trace timestamps).  Non-monotonic or
    zero elapsed time between beats (a stepped clock) freezes the
    delta baseline and re-emits the previous rates instead of
    producing negative or infinite [dps]/[cps]/[pps]; totals still
    carry forward. *)

(* ---- the monitor view (rtlsat top) ---- *)

type bound_result = { b_bound : int; b_verdict : string; b_time : float }

type view = {
  mutable v_schema : string option;
  mutable v_events : int;
  mutable v_t : float;
  mutable v_seq : int;
  mutable v_decisions : int;
  mutable v_conflicts : int;
  mutable v_propagations : int;
  mutable v_splits : int;
  mutable v_stalls : int;
  mutable v_shaved : int;
  mutable v_lvl : int;
  mutable v_dps : float;
  mutable v_cps : float;
  mutable v_pps : float;
  mutable v_heap_mb : float;        (** trace/7 GC fields; 0 on older traces *)
  mutable v_major_words : float;
  mutable v_compactions : int;
  mutable v_bound : int option;
  mutable v_bound_index : int option;
  mutable v_bounds_total : int option;
  mutable v_stall_events : int;
  mutable v_last_stall : string option;
  mutable v_bound_results : bound_result list;  (** newest first *)
  mutable v_result : string option;
}

val view : unit -> view
(** A fresh all-zero view. *)

val view_update : view -> Json.t -> unit
(** Fold one parsed trace event into the view.  Unknown events only
    bump the event count — a view over any trace version is safe. *)
