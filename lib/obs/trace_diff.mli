(** Divergence attribution between two trace files of the same
    instance ([rtlsat trace-diff OLD NEW]): align the key-event
    sequences (decisions, interval splits, conflicts), name the first
    event where the searches part ways, and report per-phase time and
    counter deltas — turning "the bench got slower" into "search
    diverged at decision #412".

    Verdict divergence (the [done] results differ, or one trace has no
    [done] at all) is the signal callers exit 1 on. *)

(** One parsed trace.  [keys] are canonical renderings of the key
    events in file order — e.g. [decide(kind=split var=3 lvl=5)] —
    used both for alignment and for naming the divergence. *)
type side = {
  file : string;
  schema : string option;        (** header schema tag *)
  verdict : string option;       (** [done] result; [None] = no [done] *)
  keys : string array;
  phases : (string * float) list;    (** [phases] event self-seconds *)
  counters : (string * int) list;    (** [done] totals + key-event counts *)
}

type divergence = {
  index : int;              (** 0-based position in the key sequence *)
  older : string option;    (** [None]: this side's trace ended here *)
  newer : string option;
}

type t = {
  old_side : side;
  new_side : side;
  first : divergence option;  (** [None]: key sequences identical *)
  verdict_diverged : bool;
}

val load_side : string -> side
(** Parse one trace; corrupt lines are skipped (torn tails happen on
    killed runs).  @raise Sys_error when the file cannot be read. *)

val diff : old_file:string -> new_file:string -> t

val print : Format.formatter -> t -> unit
(** Schemas, verdicts, the first divergent key event (old vs new
    rendering), then per-phase self-time deltas and counter deltas
    (new − old, only non-zero rows). *)

val exit_code : t -> int
(** 1 on verdict divergence, else 0. *)
