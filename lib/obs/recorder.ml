(* Flight recorder: a bounded ring buffer of trace events that is
   always on (even with --trace off) and cheap enough to leave
   attached to every CLI solve.  Events are stored unrendered — the
   JSON text is only produced at dump time, so the per-event cost is
   one array store and the field list the caller already built.

   The ring is shared between the main domain (SIGUSR1 dump) and any
   worker domains pushing events, so pushes and reads take a mutex:
   an unguarded push concurrent with a dump can hand the dump a
   half-updated (entry, total) pair and malform the trace. *)

type entry = {
  e_t : float;  (* seconds since the owning handle's t0 *)
  e_ev : string;
  e_fields : (string * Json.t) list;
}

type t = {
  cap : int;
  ring : entry array;
  lock : Mutex.t;
  mutable total : int;  (* events ever recorded *)
}

let default_cap = 4096

let dummy = { e_t = 0.0; e_ev = ""; e_fields = [] }

let create ?(cap = default_cap) () =
  if cap <= 0 then invalid_arg "Recorder.create: cap must be positive";
  { cap; ring = Array.make cap dummy; lock = Mutex.create (); total = 0 }

let record t ~t_rel ~ev fields =
  Mutex.lock t.lock;
  t.ring.(t.total mod t.cap) <- { e_t = t_rel; e_ev = ev; e_fields = fields };
  t.total <- t.total + 1;
  Mutex.unlock t.lock

let recorded t = min t.total t.cap
let dropped t = max 0 (t.total - t.cap)
let is_empty t = t.total = 0

(* snapshot under the lock, then run [f] outside it so callbacks that
   re-enter the recorder (or block) cannot deadlock *)
let snapshot t =
  Mutex.lock t.lock;
  let n = min t.total t.cap in
  let first = t.total - n in
  let entries = Array.init n (fun i -> t.ring.((first + i) mod t.cap)) in
  let total = t.total in
  Mutex.unlock t.lock;
  (entries, total)

let iter t f =
  let entries, _ = snapshot t in
  Array.iter f entries

let dump t path =
  let entries, total = snapshot t in
  let n = Array.length entries in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       let buf = Buffer.create 256 in
       let line ev t fields =
         Buffer.clear buf;
         Json.to_buffer buf
           (Json.Obj (("ev", Json.Str ev) :: ("t", Json.Float t) :: fields));
         Buffer.add_char buf '\n';
         Buffer.output_buffer oc buf
       in
       (* the synthetic header makes the dump a well-formed trace that
          [rtlsat profile] reads with no special casing *)
       line "header" 0.0 [ ("schema", Json.Str Trace.schema) ];
       let last_t = if n = 0 then 0.0 else entries.(n - 1).e_t in
       line "recorder" last_t
         [
           ("recorded", Json.Int n);
           ("dropped", Json.Int (max 0 (total - n)));
           ("cap", Json.Int t.cap);
         ];
       Array.iter (fun e -> line e.e_ev e.e_t e.e_fields) entries)
