(* Flight recorder: a bounded ring buffer of trace events that is
   always on (even with --trace off) and cheap enough to leave
   attached to every CLI solve.  Events are stored unrendered — the
   JSON text is only produced at dump time, so the per-event cost is
   one array store and the field list the caller already built. *)

type entry = {
  e_t : float;  (* seconds since the owning handle's t0 *)
  e_ev : string;
  e_fields : (string * Json.t) list;
}

type t = {
  cap : int;
  ring : entry array;
  mutable total : int;  (* events ever recorded *)
}

let default_cap = 4096

let dummy = { e_t = 0.0; e_ev = ""; e_fields = [] }

let create ?(cap = default_cap) () =
  if cap <= 0 then invalid_arg "Recorder.create: cap must be positive";
  { cap; ring = Array.make cap dummy; total = 0 }

let record t ~t_rel ~ev fields =
  t.ring.(t.total mod t.cap) <- { e_t = t_rel; e_ev = ev; e_fields = fields };
  t.total <- t.total + 1

let recorded t = min t.total t.cap
let dropped t = max 0 (t.total - t.cap)
let is_empty t = t.total = 0

let iter t f =
  let n = recorded t in
  let first = t.total - n in
  for i = first to t.total - 1 do
    f t.ring.(i mod t.cap)
  done

let dump t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       let buf = Buffer.create 256 in
       let line ev t fields =
         Buffer.clear buf;
         Json.to_buffer buf
           (Json.Obj (("ev", Json.Str ev) :: ("t", Json.Float t) :: fields));
         Buffer.add_char buf '\n';
         Buffer.output_buffer oc buf
       in
       (* the synthetic header makes the dump a well-formed trace that
          [rtlsat profile] reads with no special casing *)
       line "header" 0.0 [ ("schema", Json.Str Trace.schema) ];
       let last_t =
         if t.total = 0 then 0.0
         else t.ring.((t.total - 1) mod t.cap).e_t
       in
       line "recorder" last_t
         [
           ("recorded", Json.Int (recorded t));
           ("dropped", Json.Int (dropped t));
           ("cap", Json.Int t.cap);
         ];
       iter t (fun e -> line e.e_ev e.e_t e.e_fields))
