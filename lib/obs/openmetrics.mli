(** OpenMetrics text exposition of solver metrics.

    Serializes an {!Obs.snapshot} — or a [rtlsat.solve/1] report
    carrying one under its ["metrics"] member — into the OpenMetrics
    text format (the Prometheus exposition format plus a trailing
    [# EOF]), so a scrape target or a file-based collector can ingest
    rtlsat runs without a JSON sidecar.

    Name mapping (documented in docs/OBSERVABILITY.md):
    - ["wall_s"] → [rtlsat_wall_seconds] (gauge)
    - phases → [rtlsat_phase_self_seconds{phase="icp"}] (gauge) and
      [rtlsat_phase_calls_total{phase="icp"}] (counter)
    - counters → [rtlsat_<name>_total] with dots mapped to
      underscores ([fme.calls] → [rtlsat_fme_calls_total])
    - histograms → [rtlsat_<name>] histogram families with cumulative
      [_bucket{le="K"}] samples derived from the ["<=K"] bucket
      labels, plus [_sum] / [_count]
    - forensics → [rtlsat_forensics_stalls] / [rtlsat_forensics_splits]
      (gauges)
    - a solve report adds [rtlsat_solve_info{instance=,engine=,verdict=}],
      [rtlsat_solve_seconds], [rtlsat_solver_decisions_total] and
      [rtlsat_solver_conflicts_total]. *)

val sanitize : string -> string
(** Map a free-form counter name into the metric-name alphabet
    ([a-zA-Z0-9_:]); every other byte becomes ['_']. *)

val of_json : Json.t -> string
(** Render a snapshot JSON (from {!Obs.snapshot_json}) or a
    [rtlsat.solve/1] object (detected by its ["schema"] member) as an
    OpenMetrics text exposition ending in [# EOF].  Unknown members
    are ignored, so the function is total on well-formed JSON. *)

val of_snapshot : Obs.snapshot -> string

val to_file : string -> Json.t -> unit
(** @raise Sys_error when the file cannot be written. *)
