(** Monotonic-clamped wall clock — the one clock for deadlines and
    elapsed-time measurement.

    [Unix.gettimeofday] follows NTP steps, so an absolute deadline
    computed from it can fire spuriously (step forward) or never (step
    back) mid-solve.  {!now} reads the wall clock and clamps it to the
    largest instant ever observed in this process (shared across
    domains), so differences of two readings are never negative and
    deadlines compare monotonically.

    Use this for every [deadline]/[elapsed] computation; keep
    [Unix.gettimeofday] for ledger and trace {e timestamps}, which
    should reflect civil time. *)

val now : unit -> float
(** Current time, seconds since the epoch, clamped to never decrease
    within this process.  Thread/domain-safe. *)
