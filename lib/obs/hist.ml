type t = {
  limits : int array;
  counts : int array; (* length limits + 1; last is overflow *)
  mutable n : int;
  mutable total : int;
  mutable vmin : int;
  mutable vmax : int;
}

let create limits =
  Array.iteri
    (fun i l -> if i > 0 && l <= limits.(i - 1) then invalid_arg "Hist.create: limits not increasing")
    limits;
  {
    limits;
    counts = Array.make (Array.length limits + 1) 0;
    n = 0;
    total = 0;
    vmin = max_int;
    vmax = min_int;
  }

let observe h x =
  let nb = Array.length h.limits in
  let rec bucket i = if i >= nb || x <= h.limits.(i) then i else bucket (i + 1) in
  let b = bucket 0 in
  h.counts.(b) <- h.counts.(b) + 1;
  h.n <- h.n + 1;
  h.total <- h.total + x;
  if x < h.vmin then h.vmin <- x;
  if x > h.vmax then h.vmax <- x

let count h = h.n

type summary = {
  n : int;
  total : int;
  vmin : int;
  vmax : int;
  mean : float;
  buckets : (string * int) list;
}

let summary h =
  let nb = Array.length h.limits in
  let buckets =
    List.init (nb + 1) (fun i ->
        let label =
          if i < nb then Printf.sprintf "<=%d" h.limits.(i)
          else Printf.sprintf ">%d" h.limits.(nb - 1)
        in
        (label, h.counts.(i)))
  in
  {
    n = h.n;
    total = h.total;
    vmin = (if h.n = 0 then 0 else h.vmin);
    vmax = (if h.n = 0 then 0 else h.vmax);
    mean = (if h.n = 0 then 0.0 else float_of_int h.total /. float_of_int h.n);
    buckets;
  }

let summary_json s =
  Json.Obj
    [
      ("n", Json.Int s.n);
      ("total", Json.Int s.total);
      ("min", Json.Int s.vmin);
      ("max", Json.Int s.vmax);
      ("mean", Json.Float s.mean);
      ("buckets", Json.Obj (List.map (fun (k, c) -> (k, Json.Int c)) s.buckets));
    ]
