type t = {
  oc : out_channel;
  buf : Buffer.t;
  t0 : float;
  lock : Mutex.t;
  mutable n_events : int;
  mutable closed : bool;
}

let schema = "rtlsat.trace/8"

(* [emit] renders into a per-handle scratch buffer and writes to a
   buffered channel — both are shared mutable state, so when worker
   domains share the main handle (parallel portfolio/cube runs) the
   whole render+write must be one critical section or events tear. *)
let emit t ~ev fields =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
       if not t.closed then begin
         let rel = Unix.gettimeofday () -. t.t0 in
         Buffer.clear t.buf;
         Json.to_buffer t.buf
           (Json.Obj (("ev", Json.Str ev) :: ("t", Json.Float rel) :: fields));
         Buffer.add_char t.buf '\n';
         Buffer.output_buffer t.oc t.buf;
         t.n_events <- t.n_events + 1
       end)

let to_file path =
  let t =
    {
      oc = open_out path;
      buf = Buffer.create 256;
      t0 = Unix.gettimeofday ();
      lock = Mutex.create ();
      n_events = 0;
      closed = false;
    }
  in
  (* schema header — always the first line, so offline tooling can
     distinguish v2 traces from headerless v1 ones *)
  emit t ~ev:"header" [ ("schema", Json.Str schema) ];
  t

let events t = t.n_events

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
       if not t.closed then begin
         t.closed <- true;
         flush t.oc;
         close_out t.oc
       end)
