type t = {
  oc : out_channel;
  buf : Buffer.t;
  t0 : float;
  mutable n_events : int;
  mutable closed : bool;
}

let schema = "rtlsat.trace/7"

let emit t ~ev fields =
  if not t.closed then begin
    let rel = Unix.gettimeofday () -. t.t0 in
    Buffer.clear t.buf;
    Json.to_buffer t.buf
      (Json.Obj (("ev", Json.Str ev) :: ("t", Json.Float rel) :: fields));
    Buffer.add_char t.buf '\n';
    Buffer.output_buffer t.oc t.buf;
    t.n_events <- t.n_events + 1
  end

let to_file path =
  let t =
    {
      oc = open_out path;
      buf = Buffer.create 256;
      t0 = Unix.gettimeofday ();
      n_events = 0;
      closed = false;
    }
  in
  (* schema header — always the first line, so offline tooling can
     distinguish v2 traces from headerless v1 ones *)
  emit t ~ev:"header" [ ("schema", Json.Str schema) ];
  t

let events t = t.n_events

let close t =
  if not t.closed then begin
    t.closed <- true;
    flush t.oc;
    close_out t.oc
  end
