type phase =
  | Encode
  | Static_learn
  | Simplify
  | Bcp
  | Icp
  | Conflict_analysis
  | Justification
  | Final_check
  | Fme

let n_phases = 9

let phase_index = function
  | Encode -> 0
  | Static_learn -> 1
  | Simplify -> 2
  | Bcp -> 3
  | Icp -> 4
  | Conflict_analysis -> 5
  | Justification -> 6
  | Final_check -> 7
  | Fme -> 8

let phase_name = function
  | Encode -> "encode"
  | Static_learn -> "static_learn"
  | Simplify -> "simplify"
  | Bcp -> "bcp"
  | Icp -> "icp"
  | Conflict_analysis -> "conflict_analysis"
  | Justification -> "justification"
  | Final_check -> "final_check"
  | Fme -> "fme"

let all_phases =
  [ Encode; Static_learn; Simplify; Bcp; Icp; Conflict_analysis; Justification;
    Final_check; Fme ]

type progress = {
  p_interval : float;
  mutable p_last : float;
  mutable p_decisions : int;
  mutable p_conflicts : int;
}

type t = {
  enabled : bool;
  self : float array;
  calls : int array;
  alloc : float array;
  mutable stack : int list;
  mutable mark : float;
  mutable alloc_mark : float;
  learned_len : Hist.t;
  backjump : Hist.t;
  interval_width : Hist.t;
  counters : (string, int ref) Hashtbl.t;
  trace : Trace.t option;
  recorder : Recorder.t option;
  heartbeat : Heartbeat.t option;
  mutable hb_context : (string * Json.t) list;
  progress : progress option;
  mutable forensics : Forensics.t option;
  mutable worker : int;
  t0 : float;
  gc0 : Gc.stat;
  gc0_minor : float;
}

(* words allocated so far, as seen by the minor heap's young pointer.
   [Gc.minor_words] is a single primitive read; the [Gc.quick_stat]
   needed for the major/promoted correction walks per-domain state and
   costs ~1.3 µs, which at span granularity (bcp/icp enter+exit per
   propagation batch, ~10^6 calls on a b13-class solve) multiplied
   into a 4-6x wall-clock slowdown of every instrumented run — so the
   hot path settles for minor-heap accounting.  Blocks above the
   minor-alloc cutoff go straight to the major heap and are missed
   here; the snapshot's [mem] object still reports the full picture
   from one end-of-run [quick_stat]. *)
let allocated_words () = Gc.minor_words ()

let heap_mb_of_words words =
  float_of_int words *. float_of_int (Sys.word_size / 8) /. 1.0e6

let make ~enabled ~trace ~recorder ~heartbeat ~progress =
  let now = Mono.now () in
  let gc0 = Gc.quick_stat () in
  {
    enabled;
    self = Array.make n_phases 0.0;
    calls = Array.make n_phases 0;
    alloc = Array.make n_phases 0.0;
    stack = [];
    mark = now;
    alloc_mark = allocated_words ();
    learned_len = Hist.create [| 1; 2; 4; 8; 16; 32; 64; 128 |];
    backjump = Hist.create [| 1; 2; 4; 8; 16; 32; 64; 128 |];
    interval_width = Hist.create [| 0; 1; 3; 7; 15; 63; 255; 1023; 65535 |];
    counters = Hashtbl.create 16;
    trace;
    recorder;
    heartbeat;
    hb_context = [];
    progress;
    forensics = None;
    worker = -1;
    t0 = now;
    gc0;
    gc0_minor = Gc.minor_words ();
  }

let disabled =
  make ~enabled:false ~trace:None ~recorder:None ~heartbeat:None ~progress:None

let create ?trace ?recorder ?heartbeat_every ?progress_every () =
  let progress =
    Option.map
      (fun iv ->
         { p_interval = iv; p_last = Mono.now (); p_decisions = 0; p_conflicts = 0 })
      progress_every
  in
  let heartbeat = Option.map (fun iv -> Heartbeat.create ~every:iv) heartbeat_every in
  make ~enabled:true ~trace ~recorder ~heartbeat ~progress

(* the flight recorder is an event sink exactly like the trace file:
   either one makes event construction worthwhile *)
let tracing t = t.enabled && (t.trace <> None || t.recorder <> None)

(* ---- spans: self-time accounting over an explicit phase stack ---- *)

let span_enter t ph =
  if t.enabled then begin
    let now = Mono.now () in
    let words = allocated_words () in
    (match t.stack with
     | p :: _ ->
       t.self.(p) <- t.self.(p) +. (now -. t.mark);
       t.alloc.(p) <- t.alloc.(p) +. (words -. t.alloc_mark)
     | [] -> ());
    let i = phase_index ph in
    t.stack <- i :: t.stack;
    t.calls.(i) <- t.calls.(i) + 1;
    t.mark <- now;
    t.alloc_mark <- words
  end

let span_exit t ph =
  if t.enabled then begin
    let i = phase_index ph in
    match t.stack with
    | p :: rest when p = i ->
      let now = Mono.now () in
      let words = allocated_words () in
      t.self.(p) <- t.self.(p) +. (now -. t.mark);
      t.alloc.(p) <- t.alloc.(p) +. (words -. t.alloc_mark);
      t.stack <- rest;
      t.mark <- now;
      t.alloc_mark <- words
    | _ -> () (* unbalanced (exception unwound past an exit): ignore *)
  end

let span t ph f =
  if not t.enabled then f ()
  else begin
    span_enter t ph;
    match f () with
    | v ->
      span_exit t ph;
      v
    | exception e ->
      (* unwind any nested spans the exception skipped, then exit *)
      let i = phase_index ph in
      while (match t.stack with p :: _ -> p <> i | [] -> false) do
        t.stack <- List.tl t.stack
      done;
      span_exit t ph;
      raise e
  end

(* ---- counters ---- *)

let incr t name =
  if t.enabled then
    match Hashtbl.find_opt t.counters name with
    | Some r -> Stdlib.incr r
    | None -> Hashtbl.replace t.counters name (ref 1)

let add t name k =
  if t.enabled then
    match Hashtbl.find_opt t.counters name with
    | Some r -> r := !r + k
    | None -> Hashtbl.replace t.counters name (ref k)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

(* ---- histograms ---- *)

let observe_learned_len t len = if t.enabled then Hist.observe t.learned_len len
let observe_backjump t d = if t.enabled then Hist.observe t.backjump d

(* ---- events ---- *)

let set_worker t w = if t.enabled then t.worker <- w

(* every event goes to both attached sinks: the trace file (if any)
   and the flight-recorder ring (if any).  Worker handles (parallel
   portfolio/cube domains) tag each event with their worker id so a
   shared trace stays attributable — trace/8. *)
let emit_to_sinks t ev fields =
  let fields =
    if t.worker >= 0 then fields @ [ ("worker", Json.Int t.worker) ]
    else fields
  in
  (match t.trace with Some tr -> Trace.emit tr ~ev fields | None -> ());
  match t.recorder with
  | Some r -> Recorder.record r ~t_rel:(Unix.gettimeofday () -. t.t0) ~ev fields
  | None -> ()

let event t ev fields = if t.enabled then emit_to_sinks t ev fields

(* ---- forensics: attribution and stall diagnosis ---- *)

let attach_forensics t ~nvars ~nconstrs ~var_name ~constr_desc =
  if t.enabled then begin
    let f = Forensics.create ~nvars ~nconstrs in
    Forensics.set_names f ~var_name ~constr_desc;
    t.forensics <- Some f
  end

let forensics t = if t.enabled then t.forensics else None

let constr_enter t ci =
  match t.forensics with Some f -> Forensics.constr_enter f ci | None -> ()

let constr_exit t ci =
  match t.forensics with Some f -> Forensics.constr_exit f ci | None -> ()

let forensics_reset_cur t =
  match t.forensics with Some f -> Forensics.reset_cur f | None -> ()

let note_narrow t ~var ~shaved ~width =
  match t.forensics with
  | None -> ()
  | Some f ->
    (match Forensics.note_narrow f ~var ~shaved ~width with
     | None -> ()
     | Some st ->
       (match Hashtbl.find_opt t.counters "icp.stalls" with
        | Some r -> Stdlib.incr r
        | None -> Hashtbl.replace t.counters "icp.stalls" (ref 1));
       if tracing t then
         emit_to_sinks t "icp_stall"
           [
             ("var", Json.Int st.Forensics.st_var);
             ("name", Json.Str (Forensics.var_name f st.Forensics.st_var));
             ("constr", Json.Int st.Forensics.st_constr);
             ("desc", Json.Str (Forensics.constr_desc f st.Forensics.st_constr));
             ("streak", Json.Int st.Forensics.st_streak);
             ("shaved", Json.Int st.Forensics.st_shaved);
             ("width", Json.Int st.Forensics.st_width);
           ])

let note_split t ~var =
  match t.forensics with Some f -> Forensics.note_split f ~var | None -> ()

let hot_constr_json (h : Forensics.hot_constr) =
  Json.Obj
    [
      ("constr", Json.Int h.Forensics.hc_id);
      ("desc", Json.Str h.Forensics.hc_desc);
      ("wakeups", Json.Int h.Forensics.hc_wakeups);
      ("narrows", Json.Int h.Forensics.hc_narrows);
      ("shaved", Json.Int h.Forensics.hc_shaved);
      ("time_s", Json.Float h.Forensics.hc_time);
    ]

let hot_var_json (h : Forensics.hot_var) =
  Json.Obj
    [
      ("var", Json.Int h.Forensics.hv_id);
      ("name", Json.Str h.Forensics.hv_name);
      ("narrows", Json.Int h.Forensics.hv_narrows);
      ("shaved", Json.Int h.Forensics.hv_shaved);
    ]

let top_k = 10

let emit_summary_events t =
  if tracing t then begin
    emit_to_sinks t "phases"
      [
        ( "self_s",
          Json.Obj
            (List.map
               (fun ph -> (phase_name ph, Json.Float t.self.(phase_index ph)))
               all_phases) );
      ];
    match t.forensics with
    | None -> ()
    | Some f ->
      emit_to_sinks t "hot_constraints"
        [
          ( "top",
            Json.Arr
              (List.map hot_constr_json (Forensics.top_constraints f ~k:top_k)) );
        ];
      emit_to_sinks t "hot_vars"
        [
          ( "top",
            Json.Arr (List.map hot_var_json (Forensics.top_vars f ~k:top_k)) );
        ]
  end

(* ---- progress ---- *)

let progress_tick t ~decisions ~conflicts ~learned ~depth =
  if t.enabled then
    match t.progress with
    | None -> ()
    | Some p ->
      let now = Mono.now () in
      let dt = now -. p.p_last in
      if dt >= p.p_interval then begin
        let rate cur last = float_of_int (cur - last) /. dt in
        Printf.eprintf
          "[obs] %7.1fs  decisions=%d (%.0f/s)  conflicts=%d (%.0f/s)  learned-db=%d  depth=%d\n%!"
          (now -. t.t0) decisions
          (rate decisions p.p_decisions)
          conflicts
          (rate conflicts p.p_conflicts)
          learned depth;
        p.p_last <- now;
        p.p_decisions <- decisions;
        p.p_conflicts <- conflicts
      end

(* ---- heartbeats ---- *)

let set_context t fields = if t.enabled then t.hb_context <- fields

let heartbeat_tick t ~decisions ~conflicts ~propagations ~splits ~lvl =
  if t.enabled then
    match t.heartbeat with
    | None -> ()
    | Some hb ->
      let now = Mono.now () in
      if Heartbeat.due hb now then begin
        let stalls, shaved =
          match t.forensics with
          | Some f -> (Forensics.stalls f, Forensics.total_shaved f)
          | None -> (0, 0)
        in
        let fields =
          Heartbeat.beat hb ~now ~now_rel:(now -. t.t0) ~decisions ~conflicts
            ~propagations ~splits ~stalls ~shaved ~lvl
        in
        (* trace/7: live memory picture on every beat.  Instrumented
           arm only — the beat is already rate-limited, so the extra
           [Gc.quick_stat] is amortised away *)
        let q = Gc.quick_stat () in
        let gc_fields =
          [
            ("major_words", Json.Float q.Gc.major_words);
            ("heap_mb", Json.Float (heap_mb_of_words q.Gc.heap_words));
            ("compactions", Json.Int q.Gc.compactions);
          ]
        in
        emit_to_sinks t "heartbeat" (fields @ gc_fields @ t.hb_context)
      end

(* ---- flight recorder ---- *)

let flight_dump t path =
  match t.recorder with
  | Some r when not (Recorder.is_empty r) ->
    Recorder.dump r path;
    true
  | _ -> false

let close t = match t.trace with Some tr -> Trace.close tr | None -> ()

(* ---- snapshots ---- *)

type mem = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
}

type snapshot = {
  wall : float;
  phases : (string * float * int) list;
  phase_alloc : (string * float) list;
  histograms : (string * Hist.summary) list;
  counter_values : (string * int) list;
  trace_events : int;
  stalls : int;
  splits : int;
  hot_constraints : Forensics.hot_constr list;
  hot_vars : Forensics.hot_var list;
  mem : mem option;
}

let snapshot t =
  {
    wall = (if t.enabled then Mono.now () -. t.t0 else 0.0);
    mem =
      (if not t.enabled then None
       else begin
         (* GC deltas over the handle's lifetime; heap sizes absolute *)
         let q = Gc.quick_stat () in
         Some
           {
             minor_words = Gc.minor_words () -. t.gc0_minor;
             major_words = q.Gc.major_words -. t.gc0.Gc.major_words;
             promoted_words = q.Gc.promoted_words -. t.gc0.Gc.promoted_words;
             minor_collections =
               q.Gc.minor_collections - t.gc0.Gc.minor_collections;
             major_collections =
               q.Gc.major_collections - t.gc0.Gc.major_collections;
             compactions = q.Gc.compactions - t.gc0.Gc.compactions;
             heap_words = q.Gc.heap_words;
             top_heap_words = q.Gc.top_heap_words;
           }
       end);
    phase_alloc =
      List.map
        (fun ph -> (phase_name ph, t.alloc.(phase_index ph)))
        all_phases;
    stalls = (match t.forensics with Some f -> Forensics.stalls f | None -> 0);
    splits = (match t.forensics with Some f -> Forensics.splits f | None -> 0);
    hot_constraints =
      (match t.forensics with
       | Some f -> Forensics.top_constraints f ~k:top_k
       | None -> []);
    hot_vars =
      (match t.forensics with
       | Some f -> Forensics.top_vars f ~k:top_k
       | None -> []);
    phases =
      List.map
        (fun ph ->
           let i = phase_index ph in
           (phase_name ph, t.self.(i), t.calls.(i)))
        all_phases;
    histograms =
      [
        ("learned_clause_len", Hist.summary t.learned_len);
        ("backjump_distance", Hist.summary t.backjump);
        ("interval_width", Hist.summary t.interval_width);
      ];
    counter_values =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    trace_events = (match t.trace with Some tr -> Trace.events tr | None -> 0);
  }

(* ---- merging worker snapshots (parallel runs) ---- *)

let merge_hist (a : Hist.summary) (b : Hist.summary) : Hist.summary =
  let n = a.Hist.n + b.Hist.n in
  let total = a.Hist.total + b.Hist.total in
  {
    Hist.n;
    total;
    vmin =
      (if a.Hist.n = 0 then b.Hist.vmin
       else if b.Hist.n = 0 then a.Hist.vmin
       else min a.Hist.vmin b.Hist.vmin);
    vmax = max a.Hist.vmax b.Hist.vmax;
    mean = (if n = 0 then 0.0 else float_of_int total /. float_of_int n);
    buckets =
      (* per-worker handles use identical bucket limits; fall back to
         [a]'s shape if they somehow differ *)
      (try
         List.map2
           (fun (k, va) (_, vb) -> (k, va + vb))
           a.Hist.buckets b.Hist.buckets
       with Invalid_argument _ -> a.Hist.buckets);
  }

let merge_mem a b =
  match (a, b) with
  | None, m | m, None -> m
  | Some a, Some b ->
    Some
      {
        minor_words = a.minor_words +. b.minor_words;
        major_words = a.major_words +. b.major_words;
        promoted_words = a.promoted_words +. b.promoted_words;
        minor_collections = a.minor_collections + b.minor_collections;
        major_collections = a.major_collections + b.major_collections;
        compactions = max a.compactions b.compactions;
        heap_words = max a.heap_words b.heap_words;
        top_heap_words = max a.top_heap_words b.top_heap_words;
      }

let merge_counters a b =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) a;
  List.iter
    (fun (k, v) ->
       match Hashtbl.find_opt tbl k with
       | Some prev -> Hashtbl.replace tbl k (prev + v)
       | None -> Hashtbl.replace tbl k v)
    b;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge2 a b =
  {
    (* workers run concurrently: merged wall is the longest worker's,
       not the sum (work done is visible in per-phase self seconds,
       which do sum) *)
    wall = Float.max a.wall b.wall;
    phases =
      (try
         List.map2
           (fun (n, s1, c1) (_, s2, c2) -> (n, s1 +. s2, c1 + c2))
           a.phases b.phases
       with Invalid_argument _ -> a.phases);
    phase_alloc =
      (try
         List.map2 (fun (n, w1) (_, w2) -> (n, w1 +. w2)) a.phase_alloc
           b.phase_alloc
       with Invalid_argument _ -> a.phase_alloc);
    histograms =
      (try
         List.map2
           (fun (n, h1) (_, h2) -> (n, merge_hist h1 h2))
           a.histograms b.histograms
       with Invalid_argument _ -> a.histograms);
    counter_values = merge_counters a.counter_values b.counter_values;
    (* workers share one trace sink whose event count is global —
       summing would double-count *)
    trace_events = max a.trace_events b.trace_events;
    stalls = a.stalls + b.stalls;
    splits = a.splits + b.splits;
    hot_constraints =
      (let all = a.hot_constraints @ b.hot_constraints in
       List.sort
         (fun x y ->
            compare y.Forensics.hc_narrows x.Forensics.hc_narrows)
         all
       |> List.filteri (fun i _ -> i < top_k));
    hot_vars =
      (let all = a.hot_vars @ b.hot_vars in
       List.sort
         (fun x y -> compare y.Forensics.hv_narrows x.Forensics.hv_narrows)
         all
       |> List.filteri (fun i _ -> i < top_k));
    mem = merge_mem a.mem b.mem;
  }

let merge_snapshots = function
  | [] -> snapshot disabled
  | s :: rest -> List.fold_left merge2 s rest

let mem_json = function
  | None ->
    (* stable schema: a disabled handle still carries the object *)
    Json.Obj
      [
        ("minor_words", Json.Float 0.0);
        ("major_words", Json.Float 0.0);
        ("promoted_words", Json.Float 0.0);
        ("minor_collections", Json.Int 0);
        ("major_collections", Json.Int 0);
        ("compactions", Json.Int 0);
        ("heap_words", Json.Int 0);
        ("heap_mb", Json.Float 0.0);
        ("top_heap_words", Json.Int 0);
      ]
  | Some m ->
    Json.Obj
      [
        ("minor_words", Json.Float m.minor_words);
        ("major_words", Json.Float m.major_words);
        ("promoted_words", Json.Float m.promoted_words);
        ("minor_collections", Json.Int m.minor_collections);
        ("major_collections", Json.Int m.major_collections);
        ("compactions", Json.Int m.compactions);
        ("heap_words", Json.Int m.heap_words);
        ("heap_mb", Json.Float (heap_mb_of_words m.heap_words));
        ("top_heap_words", Json.Int m.top_heap_words);
      ]

let snapshot_json s =
  let alloc_of name =
    match List.assoc_opt name s.phase_alloc with Some w -> w | None -> 0.0
  in
  Json.Obj
    [
      ("wall_s", Json.Float s.wall);
      ( "phases",
        Json.Obj
          (List.map
             (fun (name, self, calls) ->
                ( name,
                  Json.Obj
                    [
                      ("self_s", Json.Float self);
                      ("calls", Json.Int calls);
                      ("alloc_w", Json.Float (alloc_of name));
                    ] ))
             s.phases) );
      ( "histograms",
        Json.Obj (List.map (fun (name, h) -> (name, Hist.summary_json h)) s.histograms) );
      ( "counters",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) s.counter_values) );
      ("trace_events", Json.Int s.trace_events);
      ("mem", mem_json s.mem);
      ( "forensics",
        Json.Obj
          [
            ("stalls", Json.Int s.stalls);
            ("splits", Json.Int s.splits);
            ("hot_constraints", Json.Arr (List.map hot_constr_json s.hot_constraints));
            ("hot_vars", Json.Arr (List.map hot_var_json s.hot_vars));
          ] );
    ]
