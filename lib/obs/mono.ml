(* Monotonic-clamped wall clock for deadlines and elapsed-time
   measurement.

   OCaml's stdlib exposes no monotonic clock, and [Unix.gettimeofday]
   follows wall-clock adjustments: an NTP step mid-solve makes an
   absolute deadline fire spuriously (step forward) or never (step
   back), and elapsed times go negative.  Same spirit as the
   [Heartbeat.beat] dt-guard: remember the largest instant ever
   observed and clamp every reading to it, so time never goes
   backwards process-wide.  A forward step still passes through (the
   clock jumps ahead once and stays monotonic from there) — the
   failure mode left is a too-early timeout after a large forward
   step, which is benign next to a deadline that never fires.

   The cell is an [Atomic.t] so concurrent solver domains share one
   clamp: [compare_and_set] on the boxed float compares the physical
   box we just read, so a lost race simply retries against the newer
   (larger) value. *)

let last = Atomic.make 0.0

let now () =
  let t = Unix.gettimeofday () in
  let rec clamp () =
    let prev = Atomic.get last in
    if t >= prev then if Atomic.compare_and_set last prev t then t else clamp ()
    else prev
  in
  clamp ()
