(** Search forensics: work attribution and pathology detection.

    Two halves share this module:

    {b Online attribution} — a per-solve table of propagation work,
    attributed to the arithmetic constraint that caused it and the
    word variable it narrowed: wakeups, narrowing counts, total
    interval width shaved, and wall-clock time per constraint.  The
    table also watches for {e ICP stalls} — sustained runs of tiny
    narrowings across a huge domain (the w61 wrap-around pathology,
    where interval propagation converges one unit per sweep across a
    2^61 domain) — and reports them as they happen, so a slow solve
    diagnoses itself instead of timing out silently.

    {b Offline analysis} — a replay profiler for [--trace] JSON-lines
    files ([rtlsat profile]): event statistics, conflict locality,
    restart efficacy, detected stalls and a human-readable diagnosis.

    The online half is only ever reached behind an [Obs.enabled]
    check, so the disabled-observability overhead contract
    (one load + one branch per site) is unaffected. *)

(* ---- online attribution ---- *)

type t

val create : nvars:int -> nconstrs:int -> t
(** Fresh, all-zero attribution table for one solve. *)

val set_names :
  t -> var_name:(int -> string) -> constr_desc:(int -> string) -> unit
(** Late-bound pretty-printers used by stall reports and top-K
    summaries; ids are printed bare until these are set. *)

val var_name : t -> int -> string
val constr_desc : t -> int -> string

val constr_enter : t -> int -> unit
(** The propagator is about to run constraint [ci]: counts a wakeup,
    marks the time, and makes [ci] the attribution target for
    narrowings until {!constr_exit}. *)

val constr_exit : t -> int -> unit
(** Charges the elapsed time since {!constr_enter} to [ci] and clears
    the attribution target. *)

val reset_cur : t -> unit
(** Clear the attribution target without charging time (used when a
    conflict unwinds past {!constr_exit}). *)

(** An ICP stall report: variable [st_var] has been narrowed for
    [st_streak] consecutive events, each shaving at most
    {!stall_max_shave} units, while its domain stayed at least
    {!stall_min_width} wide. *)
type stall = {
  st_var : int;
  st_constr : int;  (** constraint active at the report; -1 = clause *)
  st_streak : int;
  st_shaved : int;  (** total units shaved over the streak *)
  st_width : int;   (** domain width remaining *)
}

val stall_min_width : int
(** 2{^32}: only domains at least this wide can stall. *)

val stall_max_shave : int
(** A narrowing shaving more than this many units breaks a streak. *)

val stall_streak : int
(** First report fires when a streak reaches this length; follow-ups
    re-fire at 16x, 256x, ... so a long stall stays visible without
    flooding the trace. *)

val note_narrow : t -> var:int -> shaved:int -> width:int -> stall option
(** Record one narrowing of a word variable ([shaved] units removed,
    [width] remaining), attributed to the current constraint.
    Returns [Some stall] when this narrowing crosses a stall-report
    threshold. *)

val stalls : t -> int
(** Stall reports issued so far. *)

val total_shaved : t -> int
(** Total interval width removed across every narrowing this solve —
    the progress number heartbeats report for ICP-bound runs. *)

val note_split : t -> var:int -> unit
(** Record one interval-split (bisection) decision on [var], for
    stall → split attribution. *)

val splits : t -> int
(** Split decisions recorded so far. *)

type hot_constr = {
  hc_id : int;
  hc_desc : string;
  hc_wakeups : int;
  hc_narrows : int;
  hc_shaved : int;
  hc_time : float;
}

type hot_var = {
  hv_id : int;
  hv_name : string;
  hv_narrows : int;
  hv_shaved : int;
}

val top_constraints : t -> k:int -> hot_constr list
(** The [k] constraints charged the most propagation time (ties broken
    by narrowing count); constraints that never narrowed anything are
    omitted. *)

val top_vars : t -> k:int -> hot_var list
(** The [k] most-narrowed word variables. *)

(* ---- offline analysis: the trace-replay profiler ---- *)

val trace_versions : (int * string) list
(** Every trace schema version this build reads, with a one-line
    description of what each added — the profiler's dispatch table. *)

val max_trace_version : int

exception Unsupported_schema of string
(** Raised by {!profile_string} / {!profile_file} when the trace
    header carries a schema tag this build does not know (a future
    [rtlsat.trace/N] or a foreign format); the message names the
    supported range. *)

val schema_version : string -> int option
(** Parse ["rtlsat.trace/N"] into [Some N]; [None] for anything
    else. *)

type stall_info = {
  si_var : int;
  si_name : string;
  si_desc : string;      (** description of the driving constraint *)
  si_reports : int;
  si_max_streak : int;
  si_last_width : int;
}

type profile = {
  pf_schema : string option;  (** [None]: headerless (v1) trace *)
  pf_version : int;           (** dispatched schema version; 1 when headerless *)
  pf_warnings : string list;
  pf_events : (string * int) list;  (** event name -> count, by count *)
  pf_wall : float;                  (** t of the last event *)
  pf_result : string option;        (** from the [done] event *)
  pf_decisions : (string * int) list;  (** decision kind -> count *)
  pf_conflicts : int;
  pf_learned_len_mean : float;
  pf_backjump_mean : float;
  pf_local_backjumps : int;  (** conflicts backjumping <= 2 levels *)
  pf_restarts : int;
  pf_splits : int;             (** interval-split decisions ([split] events) *)
  pf_split_vars : int;         (** distinct variables split *)
  pf_split_stalled : int;      (** split variables also reported stalled *)
  pf_heartbeats : int;         (** [heartbeat] telemetry events (v5) *)
  pf_stalls : stall_info list;
  pf_hot_constraints : hot_constr list;  (** from [hot_constraints] *)
  pf_hot_vars : hot_var list;            (** from [hot_vars] *)
  pf_phases : (string * float) list;     (** from [phases] *)
  pf_diagnosis : string list;
      (** ordered findings, dominant behaviour first *)
}

val profile_string : string -> profile
(** Analyze a whole trace given as one string (JSON object per line).
    Never raises on malformed events — they become warnings.
    @raise Unsupported_schema on an unknown header schema tag. *)

val profile_file : string -> profile
(** @raise Sys_error when the file cannot be read.
    @raise Unsupported_schema on an unknown header schema tag. *)

val print_profile : Format.formatter -> profile -> unit
(** The [rtlsat profile] report. *)
