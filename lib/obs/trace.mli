(** Structured event sink: one JSON object per line (JSON-lines).
    Every event carries ["ev"] (the event name) and ["t"] (seconds
    since the sink was opened); the remaining fields are
    event-specific — see docs/OBSERVABILITY.md for the schema. *)

type t

val schema : string
(** The current trace schema tag, ["rtlsat.trace/7"].  Version 2 added
    the leading [header] event and the forensics events ([icp_stall],
    [hot_constraints], [hot_vars], [phases]); v1 traces have no header
    line.  Version 3 adds the [split] event (interval-split decisions)
    and the ["split"] kind of [decide].  Version 4 adds the session
    lifecycle events ([session.create], [solve.begin] with assumption
    count and carried-clause/relation counters) and the ["assumption"]
    kind of [decide].  Version 5 adds the live-telemetry events:
    periodic [heartbeat] progress (totals, per-second rates, decision
    level, sweep context), the [recorder] marker at the head of a
    flight-recorder dump, and the sweep progress events [sweep.bound]
    / [sweep.result].  Version 6 adds [simplify.pass] (per-pass
    pre/inprocessing summary: engine, clauses subsumed / strengthened
    / eliminated, probe results, database size before/after).
    Version 7 adds GC/memory telemetry to [heartbeat] events
    ([major_words], [heap_mb], [compactions] from [Gc.quick_stat]).
    {!Forensics.trace_versions} is the dispatch table offline tooling
    reads. *)

val to_file : string -> t
(** Opens (truncates) [path] for writing and emits the [header] event
    (carrying {!schema}) as the first line. *)

val emit : t -> ev:string -> (string * Json.t) list -> unit
val events : t -> int
(** Events emitted so far. *)

val close : t -> unit
(** Flush and close the underlying channel; further [emit]s are
    ignored. *)
