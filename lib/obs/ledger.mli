(** Append-only cross-run ledger: one JSON-lines record (schema
    ["rtlsat.run/1"]) per [solve] / [sweep] / [sat] / [fuzz] / [bench]
    invocation, so verdicts, wall times and the producing environment
    survive across processes.  [rtlsat runs] lists and filters it.

    The ledger lives at {!default_path} unless overridden
    ([--ledger FILE] / [RTLSAT_LEDGER]); [--no-ledger] disables the
    append.  Reading tolerates a torn final line (a record cut short
    by a crash mid-append) and skips corrupt lines, mirroring the
    tailing discipline of [rtlsat top]. *)

val schema : string
(** ["rtlsat.run/1"] — one ledger record. *)

val runs_schema : string
(** ["rtlsat.runs/1"] — the [rtlsat runs --json] listing. *)

val default_path : unit -> string
(** [$RTLSAT_LEDGER] when set and non-empty, else
    [".rtlsat/ledger.jsonl"]. *)

val make :
  ?now:float ->
  ?pid:int ->
  subcommand:string ->
  argv:string list ->
  instance:string ->
  engine:string ->
  options:string ->
  verdict:string ->
  wall_s:float ->
  counters:(string * int) list ->
  artifacts:(string * string) list ->
  unit ->
  Json.t
(** One [rtlsat.run/1] record: run id (UTC timestamp + pid), [ts],
    the full [argv], the run key ([instance], [engine], [options]
    digest), outcome ([verdict], [wall_s]), key [counters]
    (decisions, conflicts, …), [artifacts] (trace / flight / metrics
    paths, only those actually written) and the {!Env} fingerprint.
    [now] / [pid] default to the current clock and process — they are
    parameters for deterministic tests. *)

val append : path:string -> Json.t -> unit
(** Append one record line, creating the parent directory if needed.
    @raise Sys_error when the path cannot be opened — callers should
    warn and continue, never fail the run over bookkeeping. *)

(** One parsed ledger record.  [json] keeps the full original object
    (counters, artifacts, env) for [--json] output. *)
type record = {
  id : string;
  ts : string;
  subcommand : string;
  instance : string;
  engine : string;
  options : string;
  verdict : string;
  wall_s : float;
  json : Json.t;
}

val of_json : Json.t -> record option
(** [None] for a non-[rtlsat.run/1] object. *)

val load : path:string -> record list
(** All parseable records in file order.  A missing file is an empty
    ledger; corrupt lines — including a torn final line — are
    skipped. *)

val filter :
  ?instance:string -> ?engine:string -> ?last:int -> record list -> record list
(** Restrict to exact instance/engine matches, then keep the last [n]
    records (file order preserved). *)

val median : float list -> float
(** 0.0 on the empty list; mean of the two middles on even length. *)

val group_median : record list -> record -> float
(** Median [wall_s] over every record in the list sharing the given
    record's (instance, engine, options) key. *)

val slow : record list -> record -> bool
(** [wall_s] strictly above {!group_median} — the [rtlsat runs]
    slow-run flag.  A key's only record is never slow. *)
