let schema = "rtlsat.run/1"
let runs_schema = "rtlsat.runs/1"

let default_path () =
  match Sys.getenv_opt "RTLSAT_LEDGER" with
  | Some p when p <> "" -> p
  | _ -> Filename.concat ".rtlsat" "ledger.jsonl"

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* run ids sort chronologically and stay unique across concurrent
   processes AND within one: UTC second + sub-second millis + pid +
   a per-process sequence.  Without the sequence, two records made in
   the same millisecond by the same process (live once solver domains
   append concurrently) collide; the atomic counter is domain-safe. *)
let seq = Atomic.make 0

let run_id now pid =
  let tm = Unix.gmtime now in
  let ms = int_of_float ((now -. Float.of_int (int_of_float now)) *. 1000.0) in
  Printf.sprintf "%04d%02d%02dT%02d%02d%02d.%03d-%d.%d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec (max 0 (min 999 ms)) pid
    (Atomic.fetch_and_add seq 1)

let make ?now ?pid ~subcommand ~argv ~instance ~engine ~options ~verdict ~wall_s
    ~counters ~artifacts () =
  let now = match now with Some t -> t | None -> Unix.gettimeofday () in
  let pid = match pid with Some p -> p | None -> Unix.getpid () in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("id", Json.Str (run_id now pid));
      ("ts", Json.Str (iso8601 now));
      ("subcommand", Json.Str subcommand);
      ("argv", Json.Arr (List.map (fun a -> Json.Str a) argv));
      ("instance", Json.Str instance);
      ("engine", Json.Str engine);
      ("options", Json.Str options);
      ("verdict", Json.Str verdict);
      ("wall_s", Json.Float wall_s);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters));
      ("artifacts", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) artifacts));
      ("env", Env.fingerprint_json ());
    ]

(* One record = one [single_write] of the whole rendered line on an
   [O_APPEND] fd.  The previous buffered-channel version wrote the
   record and the newline separately, so two concurrent appenders
   (worker domains, or two processes sharing a ledger) could
   interleave torn lines.  POSIX makes each O_APPEND write land at the
   then-current end of file, so whole-line writes never interleave;
   the loop only matters for the theoretical short-write case and
   keeps retrying at the file's (moved) end. *)
let append ~path record =
  let dir = Filename.dirname path in
  if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let line = Json.to_string record ^ "\n" in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
       let len = String.length line in
       let off = ref 0 in
       while !off < len do
         off := !off + Unix.single_write_substring fd line !off (len - !off)
       done)

type record = {
  id : string;
  ts : string;
  subcommand : string;
  instance : string;
  engine : string;
  options : string;
  verdict : string;
  wall_s : float;
  json : Json.t;
}

let str_field j name =
  match Json.member name j with Some (Json.Str s) -> Some s | _ -> None

let of_json j =
  match str_field j "schema" with
  | Some s when s = schema ->
    let get name = Option.value ~default:"" (str_field j name) in
    Some
      {
        id = get "id";
        ts = get "ts";
        subcommand = get "subcommand";
        instance = get "instance";
        engine = get "engine";
        options = get "options";
        verdict = get "verdict";
        wall_s =
          (match Option.bind (Json.member "wall_s" j) Json.get_float with
           | Some v -> v
           | None -> 0.0);
        json = j;
      }
  | _ -> None

let load ~path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
         let acc = ref [] in
         (try
            while true do
              let line = input_line ic in
              if String.trim line <> "" then
                (* a torn final line (crash mid-append) or any other
                   corruption is skipped, not fatal *)
                match Json.of_string line with
                | exception Json.Parse_error _ -> ()
                | j -> (match of_json j with Some r -> acc := r :: !acc | None -> ())
            done
          with End_of_file -> ());
         List.rev !acc)
  end

let filter ?instance ?engine ?last records =
  let keep want got = match want with None -> true | Some w -> w = got in
  let records =
    List.filter
      (fun r -> keep instance r.instance && keep engine r.engine)
      records
  in
  match last with
  | None -> records
  | Some n ->
    let drop = max 0 (List.length records - n) in
    List.filteri (fun i _ -> i >= drop) records

let median xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

let same_key a b =
  a.instance = b.instance && a.engine = b.engine && a.options = b.options

let group_median records r =
  median (List.filter_map (fun x -> if same_key x r then Some x.wall_s else None) records)

let slow records r = r.wall_s > group_median records r
