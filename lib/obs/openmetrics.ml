(* OpenMetrics text exposition over an Obs snapshot (or a
   rtlsat.solve/1 report wrapping one).  Hand-rolled like Json: the
   format is line-oriented and tiny, and the container image carries
   no metrics library. *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

(* "fme.calls" -> "fme_calls"; anything outside the metric-name
   alphabet collapses to '_'. *)
let sanitize s =
  String.map (fun c -> if is_name_char c then c else '_') s

let escape_label v =
  let b = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
       match c with
       | '\\' -> Buffer.add_string b "\\\\"
       | '"' -> Buffer.add_string b "\\\""
       | '\n' -> Buffer.add_string b "\\n"
       | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let escape_help v =
  let b = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
       match c with
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let labels_string = function
  | [] -> ""
  | ls ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) ls)
    ^ "}"

let family b ~name ~typ ~help =
  Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ);
  Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name (escape_help help))

let sample b ~name ?(labels = []) v =
  Buffer.add_string b
    (Printf.sprintf "%s%s %s\n" name (labels_string labels) (render_value v))

let gauge b ~name ~help ?labels v =
  family b ~name ~typ:"gauge" ~help;
  sample b ~name ?labels v

(* Counter families expose their one sample under <name>_total. *)
let counter b ~name ~help ?labels v =
  family b ~name ~typ:"counter" ~help;
  sample b ~name:(name ^ "_total") ?labels v

(* ---- JSON helpers ---- *)

let num j = match Json.get_float j with Some f -> f | None -> 0.0

let obj_member name j = Json.member name j

let obj_fields j = match Json.get_obj j with Some fs -> fs | None -> []

(* ---- snapshot sections ---- *)

let phases b j =
  match obj_member "phases" j with
  | None -> ()
  | Some ph ->
    let fields = obj_fields ph in
    family b ~name:"rtlsat_phase_self_seconds" ~typ:"gauge"
      ~help:"Per-phase self wall-clock seconds (innermost attribution)";
    List.iter
      (fun (name, v) ->
         match obj_member "self_s" v with
         | Some s ->
           sample b ~name:"rtlsat_phase_self_seconds"
             ~labels:[ ("phase", name) ] (num s)
         | None -> ())
      fields;
    family b ~name:"rtlsat_phase_calls" ~typ:"counter"
      ~help:"Per-phase span entries";
    List.iter
      (fun (name, v) ->
         match obj_member "calls" v with
         | Some c ->
           sample b ~name:"rtlsat_phase_calls_total"
             ~labels:[ ("phase", name) ] (num c)
         | None -> ())
      fields

let counters b j =
  match obj_member "counters" j with
  | None -> ()
  | Some cs ->
    List.iter
      (fun (name, v) ->
         counter b
           ~name:("rtlsat_" ^ sanitize name)
           ~help:(Printf.sprintf "Solver counter %s" name)
           (num v))
      (obj_fields cs)

(* Bucket labels arrive as "<=K" / ">K"; OpenMetrics wants cumulative
   counts keyed by le="K", closing with le="+Inf". *)
let bucket_le label =
  if String.length label > 2 && String.sub label 0 2 = "<=" then
    Some (String.sub label 2 (String.length label - 2))
  else None

let histogram b ~name j =
  let metric = "rtlsat_" ^ sanitize name in
  let n = match obj_member "n" j with Some v -> num v | None -> 0.0 in
  let total = match obj_member "total" j with Some v -> num v | None -> 0.0 in
  let buckets =
    match obj_member "buckets" j with Some bs -> obj_fields bs | None -> []
  in
  family b ~name:metric ~typ:"histogram"
    ~help:(Printf.sprintf "Distribution of %s" name);
  let cum = ref 0.0 in
  List.iter
    (fun (label, v) ->
       match bucket_le label with
       | Some le ->
         cum := !cum +. num v;
         sample b ~name:(metric ^ "_bucket") ~labels:[ ("le", le) ] !cum
       | None ->
         (* the overflow (">K") bucket folds into +Inf below *)
         ())
    buckets;
  sample b ~name:(metric ^ "_bucket") ~labels:[ ("le", "+Inf") ] n;
  sample b ~name:(metric ^ "_sum") total;
  sample b ~name:(metric ^ "_count") n

let histograms b j =
  match obj_member "histograms" j with
  | None -> ()
  | Some hs -> List.iter (fun (name, v) -> histogram b ~name v) (obj_fields hs)

let forensics b j =
  match obj_member "forensics" j with
  | None -> ()
  | Some f ->
    (match obj_member "stalls" f with
     | Some v ->
       gauge b ~name:"rtlsat_forensics_stalls"
         ~help:"ICP stall reports this solve" (num v)
     | None -> ());
    (match obj_member "splits" f with
     | Some v ->
       gauge b ~name:"rtlsat_forensics_splits"
         ~help:"Interval-split decisions this solve" (num v)
     | None -> ())

(* one [rtlsat_gc_<field>] gauge per field of the snapshot's ["mem"]
   object — the field set is whatever the producing build measured, so
   iterating keeps reader and writer in lockstep *)
let mem b j =
  match obj_member "mem" j with
  | Some (Json.Obj fields) ->
    List.iter
      (fun (name, v) ->
         match v with
         | Json.Int _ | Json.Float _ ->
           gauge b ~name:("rtlsat_gc_" ^ name)
             ~help:("GC/memory telemetry: " ^ name) (num v)
         | _ -> ())
      fields
  | _ -> ()

let snapshot_body b j =
  (match obj_member "wall_s" j with
   | Some w ->
     gauge b ~name:"rtlsat_wall_seconds"
       ~help:"Wall-clock seconds since the observability handle was created"
       (num w)
   | None -> ());
  phases b j;
  histograms b j;
  counters b j;
  (match obj_member "trace_events" j with
   | Some v ->
     counter b ~name:"rtlsat_trace_events"
       ~help:"Events written to the trace sink" (num v)
   | None -> ());
  mem b j;
  forensics b j

(* ---- solve-report wrapper ---- *)

let solve_body b j =
  let str name =
    match obj_member name j with
    | Some v -> ( match Json.get_string v with Some s -> s | None -> "")
    | None -> ""
  in
  gauge b ~name:"rtlsat_solve_info"
    ~help:"Solve metadata; the value is always 1"
    ~labels:
      [
        ("instance", str "instance");
        ("engine", str "engine");
        ("verdict", str "verdict");
      ]
    1.0;
  (match obj_member "time_s" j with
   | Some v ->
     gauge b ~name:"rtlsat_solve_seconds" ~help:"End-to-end solve seconds"
       (num v)
   | None -> ());
  (match obj_member "decisions" j with
   | Some v ->
     counter b ~name:"rtlsat_solver_decisions" ~help:"Solver decisions" (num v)
   | None -> ());
  (match obj_member "conflicts" j with
   | Some v ->
     counter b ~name:"rtlsat_solver_conflicts" ~help:"Solver conflicts" (num v)
   | None -> ());
  match obj_member "metrics" j with
  | Some m -> snapshot_body b m
  | None -> ()

let of_json j =
  let b = Buffer.create 2048 in
  (match obj_member "schema" j with
   | Some s when Json.get_string s = Some "rtlsat.solve/1" -> solve_body b j
   | _ -> snapshot_body b j);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let of_snapshot s = of_json (Obs.snapshot_json s)

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_json j))
