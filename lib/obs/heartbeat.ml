(* Heartbeats: periodic in-flight progress events.

   The emitting half is a tiny state machine owned by [Obs.t]: the
   solver's existing step-count gates call [due] (one clock read) and,
   at most once per interval, [beat] renders a [heartbeat] event with
   totals and per-second deltas.

   The consuming half is a [view] — a fold over parsed trace events
   that keeps the latest rates, stall/split activity and sweep
   progress, used by [rtlsat top] to render a live one-screen
   monitor. *)

type t = {
  interval : float;
  mutable next_due : float;  (* absolute time; 0.0 = due immediately *)
  mutable seq : int;
  mutable last_rel : float;
  mutable last_decisions : int;
  mutable last_conflicts : int;
  mutable last_propagations : int;
  mutable last_dps : float;
  mutable last_cps : float;
  mutable last_pps : float;
}

let create ~every =
  if every <= 0.0 then invalid_arg "Heartbeat.create: interval must be positive";
  {
    interval = every;
    next_due = 0.0;
    seq = 0;
    last_rel = 0.0;
    last_decisions = 0;
    last_conflicts = 0;
    last_propagations = 0;
    last_dps = 0.0;
    last_cps = 0.0;
    last_pps = 0.0;
  }

let due t now = now >= t.next_due

let beat t ~now ~now_rel ~decisions ~conflicts ~propagations ~splits ~stalls
    ~shaved ~lvl =
  let dt = now_rel -. t.last_rel in
  t.seq <- t.seq + 1;
  (* non-monotonic or zero [dt] (the wall clock stepped backwards, or
     two beats landed on the same clock reading): the rate math would
     produce negative or infinite values, so keep the previous rates
     and leave the delta baseline frozen — the next monotonic beat
     amortises the whole span.  Totals always carry forward in the
     emitted fields. *)
  if dt > 0.0 then begin
    t.last_dps <- float_of_int (decisions - t.last_decisions) /. dt;
    t.last_cps <- float_of_int (conflicts - t.last_conflicts) /. dt;
    t.last_pps <- float_of_int (propagations - t.last_propagations) /. dt;
    t.last_rel <- now_rel;
    t.last_decisions <- decisions;
    t.last_conflicts <- conflicts;
    t.last_propagations <- propagations
  end;
  let fields =
    [
      ("seq", Json.Int t.seq);
      ("decisions", Json.Int decisions);
      ("dps", Json.Float t.last_dps);
      ("conflicts", Json.Int conflicts);
      ("cps", Json.Float t.last_cps);
      ("propagations", Json.Int propagations);
      ("pps", Json.Float t.last_pps);
      ("splits", Json.Int splits);
      ("stalls", Json.Int stalls);
      ("shaved", Json.Int shaved);
      ("lvl", Json.Int lvl);
    ]
  in
  t.next_due <- now +. t.interval;
  fields

(* ---- the monitor view ---- *)

type bound_result = {
  b_bound : int;
  b_verdict : string;
  b_time : float;
}

type view = {
  mutable v_schema : string option;
  mutable v_events : int;
  mutable v_t : float;              (* t of the last event seen *)
  mutable v_seq : int;
  mutable v_decisions : int;
  mutable v_conflicts : int;
  mutable v_propagations : int;
  mutable v_splits : int;
  mutable v_stalls : int;
  mutable v_shaved : int;
  mutable v_lvl : int;
  mutable v_dps : float;
  mutable v_cps : float;
  mutable v_pps : float;
  mutable v_heap_mb : float;             (* trace/7 GC fields *)
  mutable v_major_words : float;
  mutable v_compactions : int;
  mutable v_bound : int option;          (* from heartbeat context *)
  mutable v_bound_index : int option;
  mutable v_bounds_total : int option;
  mutable v_stall_events : int;
  mutable v_last_stall : string option;  (* variable name *)
  mutable v_bound_results : bound_result list;  (* newest first *)
  mutable v_result : string option;      (* from the done event *)
}

let view () =
  {
    v_schema = None;
    v_events = 0;
    v_t = 0.0;
    v_seq = 0;
    v_decisions = 0;
    v_conflicts = 0;
    v_propagations = 0;
    v_splits = 0;
    v_stalls = 0;
    v_shaved = 0;
    v_lvl = 0;
    v_dps = 0.0;
    v_cps = 0.0;
    v_pps = 0.0;
    v_heap_mb = 0.0;
    v_major_words = 0.0;
    v_compactions = 0;
    v_bound = None;
    v_bound_index = None;
    v_bounds_total = None;
    v_stall_events = 0;
    v_last_stall = None;
    v_bound_results = [];
    v_result = None;
  }

let fint j name = Option.bind (Json.member name j) Json.get_int
let ffloat j name = Option.bind (Json.member name j) Json.get_float
let fstr j name = Option.bind (Json.member name j) Json.get_string

let view_update v j =
  v.v_events <- v.v_events + 1;
  (match ffloat j "t" with Some t when t > v.v_t -> v.v_t <- t | _ -> ());
  match fstr j "ev" with
  | Some "header" -> v.v_schema <- fstr j "schema"
  | Some "heartbeat" ->
    let set get store = match get with Some x -> store x | None -> () in
    set (fint j "seq") (fun x -> v.v_seq <- x);
    set (fint j "decisions") (fun x -> v.v_decisions <- x);
    set (fint j "conflicts") (fun x -> v.v_conflicts <- x);
    set (fint j "propagations") (fun x -> v.v_propagations <- x);
    set (fint j "splits") (fun x -> v.v_splits <- x);
    set (fint j "stalls") (fun x -> v.v_stalls <- x);
    set (fint j "shaved") (fun x -> v.v_shaved <- x);
    set (fint j "lvl") (fun x -> v.v_lvl <- x);
    set (ffloat j "dps") (fun x -> v.v_dps <- x);
    set (ffloat j "cps") (fun x -> v.v_cps <- x);
    set (ffloat j "pps") (fun x -> v.v_pps <- x);
    (* pre-trace/7 heartbeats simply leave the GC columns at zero *)
    set (ffloat j "heap_mb") (fun x -> v.v_heap_mb <- x);
    set (ffloat j "major_words") (fun x -> v.v_major_words <- x);
    set (fint j "compactions") (fun x -> v.v_compactions <- x);
    v.v_bound <- fint j "bound";
    v.v_bound_index <- fint j "bound_index";
    v.v_bounds_total <- fint j "bounds_total"
  | Some "icp_stall" ->
    v.v_stall_events <- v.v_stall_events + 1;
    v.v_last_stall <- fstr j "name"
  | Some "sweep.bound" ->
    v.v_bound <- fint j "bound";
    v.v_bound_index <- fint j "index";
    v.v_bounds_total <- fint j "total"
  | Some "sweep.result" ->
    (match (fint j "bound", fstr j "verdict") with
     | Some b, Some verdict ->
       v.v_bound_results <-
         {
           b_bound = b;
           b_verdict = verdict;
           b_time = Option.value (ffloat j "time_s") ~default:0.0;
         }
         :: v.v_bound_results
     | _ -> ())
  | Some "done" -> v.v_result <- fstr j "result"
  | _ -> ()
