type fingerprint = {
  git_rev : string;
  git_dirty : bool;
  hostname : string;
  ocaml_version : string;
  word_size : int;
}

(* First line of [git <args>]'s stdout, or [None] on any failure —
   missing binary, non-repo cwd, non-zero exit.  stderr is dropped so
   probing outside a repo stays silent. *)
let git_line args =
  try
    let ic = Unix.open_process_in (Printf.sprintf "git %s 2>/dev/null" args) in
    let line = try Some (input_line ic) with End_of_file -> None in
    (try
       while true do
         ignore (input_line ic)
       done
     with End_of_file -> ());
    match Unix.close_process_in ic with Unix.WEXITED 0 -> line | _ -> None
  with _ -> None

let probe () =
  {
    git_rev =
      (match git_line "rev-parse --short=12 HEAD" with
       | Some rev when rev <> "" -> rev
       | _ -> "unknown");
    git_dirty =
      (* --porcelain prints one line per changed path; clean tree
         prints nothing.  A failed probe reads as clean. *)
      (match git_line "status --porcelain" with Some _ -> true | None -> false);
    hostname = (try Unix.gethostname () with _ -> "unknown");
    ocaml_version = Sys.ocaml_version;
    word_size = Sys.word_size;
  }

(* probed once and shared.  A plain [lazy] here raises
   CamlinternalLazy.Undefined when sibling domains force it
   concurrently — which ledger appends from worker domains do — so the
   memoization is guarded by a mutex instead. *)
let cache = ref None
let cache_lock = Mutex.create ()

let fingerprint () =
  Mutex.lock cache_lock;
  let f =
    match !cache with
    | Some f -> f
    | None ->
        let f = probe () in
        cache := Some f;
        f
  in
  Mutex.unlock cache_lock;
  f

let fingerprint_json () =
  let f = fingerprint () in
  Json.Obj
    [
      ("git_rev", Json.Str f.git_rev);
      ("git_dirty", Json.Bool f.git_dirty);
      ("hostname", Json.Str f.hostname);
      ("ocaml_version", Json.Str f.ocaml_version);
      ("word_size", Json.Int f.word_size);
    ]
