(** Bounded histograms over non-negative integers — fixed bucket
    limits chosen at creation, O(#buckets) per observation, constant
    memory.  Used for learned-clause lengths, backjump distances and
    interval widths after narrowing. *)

type t

val create : int array -> t
(** [create limits]: bucket [i] counts observations [x <= limits.(i)]
    (first matching bucket wins); one extra overflow bucket catches
    the rest.  [limits] must be strictly increasing. *)

val observe : t -> int -> unit
val count : t -> int

type summary = {
  n : int;            (** observations *)
  total : int;        (** sum of observed values *)
  vmin : int;         (** 0 when empty *)
  vmax : int;
  mean : float;       (** 0.0 when empty *)
  buckets : (string * int) list;
      (** bucket label (["<=k"] / [">k"]) → count, in bound order *)
}

val summary : t -> summary
val summary_json : summary -> Json.t
