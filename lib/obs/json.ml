type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- emission ---- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.9g" f)
    else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
         if i > 0 then Buffer.add_char buf ',';
         to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
         if i > 0 then Buffer.add_char buf ',';
         escape_to buf k;
         Buffer.add_char buf ':';
         to_buffer buf item)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

(* ---- parsing ---- *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    cur.pos < String.length cur.text
    && (match cur.text.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some d when d = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.text && String.sub cur.text cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

(* encode a Unicode code point as UTF-8 *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_hex4 cur =
  if cur.pos + 4 > String.length cur.text then fail cur "truncated \\u escape";
  let v = ref 0 in
  for _ = 1 to 4 do
    let c = cur.text.[cur.pos] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail cur "bad hex digit"
    in
    v := (!v * 16) + d;
    advance cur
  done;
  !v

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
       | Some '"' -> Buffer.add_char buf '"'; advance cur
       | Some '\\' -> Buffer.add_char buf '\\'; advance cur
       | Some '/' -> Buffer.add_char buf '/'; advance cur
       | Some 'b' -> Buffer.add_char buf '\b'; advance cur
       | Some 'f' -> Buffer.add_char buf '\012'; advance cur
       | Some 'n' -> Buffer.add_char buf '\n'; advance cur
       | Some 'r' -> Buffer.add_char buf '\r'; advance cur
       | Some 't' -> Buffer.add_char buf '\t'; advance cur
       | Some 'u' ->
         advance cur;
         let cp = parse_hex4 cur in
         (* surrogate pair *)
         if cp >= 0xD800 && cp <= 0xDBFF
         && cur.pos + 1 < String.length cur.text
         && cur.text.[cur.pos] = '\\'
         && cur.text.[cur.pos + 1] = 'u'
         then begin
           cur.pos <- cur.pos + 2;
           let lo = parse_hex4 cur in
           add_utf8 buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
         end
         else add_utf8 buf cp
       | _ -> fail cur "bad escape");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance cur;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek cur with Some c -> is_num_char c | None -> false) do
    advance cur
  done;
  let s = String.sub cur.text start (cur.pos - start) in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail cur "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt s with
       | Some f -> Float f
       | None -> fail cur "bad number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        fields := (k, v) :: !fields;
        skip_ws cur;
        match peek cur with
        | Some ',' -> advance cur; members ()
        | Some '}' -> advance cur
        | _ -> fail cur "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value cur in
        items := v :: !items;
        skip_ws cur;
        match peek cur with
        | Some ',' -> advance cur; elements ()
        | Some ']' -> advance cur
        | _ -> fail cur "expected ',' or ']'"
      in
      elements ();
      Arr (List.rev !items)
    end
  | Some '"' -> Str (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some _ -> parse_number cur

let of_string text =
  let cur = { text; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length text then fail cur "trailing garbage";
  v

(* ---- accessors ---- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_string = function Str s -> Some s | _ -> None
let get_list = function Arr items -> Some items | _ -> None
let get_obj = function Obj fields -> Some fields | _ -> None
