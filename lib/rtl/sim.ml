open Ir

type values = (int, int) Hashtbl.t
type state = (int, int) Hashtbl.t

let initial_state c =
  let st = Hashtbl.create 16 in
  let set_init n = match n.op with Reg r -> Hashtbl.replace st n.id r.init | _ -> () in
  List.iter set_init (regs c);
  st

(* 1 lsl 61 fits comfortably in a 63-bit int, so the full-width mask
   is exact for every supported width; max_int here would leave bit 61
   alive and silently un-wrap 61-bit arithmetic (caught by corpus case
   w61_wrap_corner: Sim disagreed with every engine at x = 2^61 - 1) *)
let mask w = if w >= 62 then max_int else (1 lsl w) - 1

let eval c st ~inputs =
  let vals : values = Hashtbl.create (c.ncount * 2) in
  let ins = Hashtbl.create 16 in
  let add_input (n, v) =
    if v < 0 || v > mask n.width then invalid_arg "Sim.eval: input out of range";
    Hashtbl.replace ins n.id v
  in
  List.iter add_input inputs;
  let value_of m = Hashtbl.find vals m.id in
  let eval_node n =
    let v =
      match n.op with
      | Input -> (match Hashtbl.find_opt ins n.id with Some v -> v | None -> 0)
      | Const v -> v
      | Not a -> 1 - value_of a
      | And ns -> if Array.for_all (fun m -> value_of m = 1) ns then 1 else 0
      | Or ns -> if Array.exists (fun m -> value_of m = 1) ns then 1 else 0
      | Xor (a, b) -> value_of a lxor value_of b
      | Mux { sel; t; e } -> if value_of sel = 1 then value_of t else value_of e
      | Add { a; b; wrap } ->
        let s = value_of a + value_of b in
        if wrap then s land mask n.width else s
      | Sub { a; b } -> (value_of a - value_of b) land mask n.width
      | Mul_const { k; a } -> k * value_of a
      | Cmp { op; a; b } ->
        let x = value_of a and y = value_of b in
        let r =
          match op with
          | Eq -> x = y | Ne -> x <> y | Lt -> x < y
          | Le -> x <= y | Gt -> x > y | Ge -> x >= y
        in
        if r then 1 else 0
      | Concat { hi; lo } -> (value_of hi lsl lo.width) lor value_of lo
      | Extract { a; msb; lsb } -> (value_of a lsr lsb) land mask (msb - lsb + 1)
      | Zext a -> value_of a
      | Shl { a; k } -> value_of a lsl k
      | Shr { a; k } -> value_of a lsr k
      | Bitand (a, b) -> value_of a land value_of b
      | Bitor (a, b) -> value_of a lor value_of b
      | Bitxor (a, b) -> value_of a lxor value_of b
      | Reg _ -> (match Hashtbl.find_opt st n.id with Some v -> v | None -> 0)
    in
    Hashtbl.replace vals n.id v
  in
  List.iter eval_node (nodes c);
  vals

let next_state c vals =
  let st' = Hashtbl.create 16 in
  let step_reg n =
    match n.op with
    | Reg { next = Some nx; _ } -> Hashtbl.replace st' n.id (Hashtbl.find vals nx.id)
    | Reg { next = None; _ } -> invalid_arg "Sim.next_state: unconnected register"
    | _ -> ()
  in
  List.iter step_reg (regs c);
  st'

let step c st ~inputs =
  let vals = eval c st ~inputs in
  (vals, next_state c vals)

let run c ~inputs =
  let rec go st acc = function
    | [] -> List.rev acc
    | ins :: rest ->
      let vals, st' = step c st ~inputs:ins in
      go st' (vals :: acc) rest
  in
  go (initial_state c) [] inputs

let value vals n = Hashtbl.find vals n.id
