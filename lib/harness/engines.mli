(** Uniform driver for every satisfiability engine of the evaluation:
    the four HDPLL configurations, the eager Boolean translation
    (UCLID stand-in) and the lazy combined decision procedure (ICS
    stand-in).  Every satisfiable answer is validated by replaying the
    witness through the RTL simulator. *)

type engine =
  | Hdpll        (** HDPLL [9] *)
  | Hdpll_s      (** + structural decision strategy (§4) *)
  | Hdpll_sp     (** + structural decisions + predicate learning *)
  | Hdpll_p      (** + predicate learning only (Table 1) *)
  | Bitblast     (** Boolean translation + CDCL (UCLID stand-in) *)
  | Lazy_cdp     (** lazy CDP (ICS stand-in) *)

val engine_name : engine -> string
val table2_engines : engine list
(** The five columns of Table 2, in order. *)

type verdict =
  | Sat
  | Unsat
  | Timeout
  | Abort of string
      (** engine failure — e.g. a witness that does not replay *)

type run = {
  verdict : verdict;
  time : float;           (** seconds *)
  relations : int;        (** predicate relations learned (HDPLL+P) *)
  learn_time : float;
  decisions : int;
  conflicts : int;
  stats : Rtlsat_core.Solver.stats option;
      (** full solver counters; [None] for the baseline engines *)
  metrics : Rtlsat_obs.Obs.snapshot option;
      (** observability snapshot; [None] unless an enabled [obs]
          handle was passed to {!run_instance} *)
}

val verdict_symbol : verdict -> string
(** ["S"], ["U"], ["-to-"], ["-A-"] as in the paper's tables. *)

val run_instance :
  ?timeout:float ->
  ?learn_threshold:int ->
  ?obs:Rtlsat_obs.Obs.t ->
  ?dump_graph:string ->
  ?dump_graph_max:int ->
  ?split:bool ->
  engine ->
  Rtlsat_bmc.Bmc.instance ->
  run
(** Solve a BMC instance with the given engine.  [timeout] is a
    per-run budget in seconds (default 1200, the paper's limit).
    Satisfiable results are checked with {!Rtlsat_bmc.Bmc.witness_ok};
    failures become [Abort].  [obs] (default disabled) instruments the
    whole run — encoding included — and fills [run.metrics]; pass a
    fresh handle per run for per-run snapshots.  [dump_graph] (HDPLL
    engines only) exports the first [dump_graph_max] (default 10)
    conflict implication graphs as DOT files into the given directory,
    which must exist.  [split] (HDPLL engines only, default [true])
    enables stall-triggered interval-split decisions; pass [false] to
    reproduce the pre-split kernel behaviour. *)

val op_counts : Rtlsat_bmc.Bmc.instance -> int * int
(** (arith, bool) operator counts of the unrolled instance —
    columns 3–4 of Table 2. *)
