(** Uniform driver for every satisfiability engine of the evaluation:
    the four HDPLL configurations, the eager Boolean translation
    (UCLID stand-in) and the lazy combined decision procedure (ICS
    stand-in).  Every satisfiable answer is validated by replaying the
    witness through the RTL simulator.

    This is the convenience layer over {!Engine}: each engine is a
    first-class module implementing {!Engine.S}, and [run_instance] /
    [run_sweep] dispatch through {!Engine.of_id} with one {!Req.t}
    request context instead of an optional-argument pile. *)

type engine = Engine.id =
  | Hdpll        (** HDPLL [9] *)
  | Hdpll_s      (** + structural decision strategy (§4) *)
  | Hdpll_sp     (** + structural decisions + predicate learning *)
  | Hdpll_p      (** + predicate learning only (Table 1) *)
  | Bitblast     (** Boolean translation + CDCL (UCLID stand-in) *)
  | Lazy_cdp     (** lazy CDP (ICS stand-in) *)

val engine_name : engine -> string
val table2_engines : engine list
(** The five columns of Table 2, in order. *)

type verdict = Engine.verdict =
  | Sat
  | Unsat
  | Timeout
  | Abort of string
      (** engine failure — e.g. a witness that does not replay *)

type run = Engine.run = {
  verdict : verdict;
  time : float;           (** seconds *)
  relations : int;        (** predicate relations learned (HDPLL+P) *)
  learn_time : float;
  decisions : int;
  conflicts : int;
  stats : Rtlsat_core.Solver.stats option;
      (** full solver counters; [None] for the baseline engines *)
  metrics : Rtlsat_obs.Obs.snapshot option;
      (** observability snapshot; [None] unless the request carried an
          enabled [obs] handle *)
}

val verdict_symbol : verdict -> string
(** ["S"], ["U"], ["-to-"], ["-A-"] as in the paper's tables. *)

val run_instance : ?req:Req.t -> engine -> Rtlsat_bmc.Bmc.instance -> run
(** Solve a BMC instance with the given engine under the request
    context [req] (default {!Req.default}: 1200 s budget — the paper's
    limit — observability disabled, simplify and split on).
    Satisfiable results are checked with {!Rtlsat_bmc.Bmc.witness_ok};
    failures become [Abort].  [req.obs] instruments the whole run —
    encoding included — and fills [run.metrics]; pass a fresh handle
    per run for per-run snapshots.  [req.dump_graph] (HDPLL engines
    only) exports the first [req.dump_graph_max] conflict implication
    graphs as DOT files into the given directory, which must exist.
    [req.split] (HDPLL engines only) enables stall-triggered
    interval-split decisions.  [req.simplify] preprocesses the
    engine's clause database before the search — the hybrid pass
    ({!Rtlsat_core.Hsimp}) for the HDPLL engines, the CNF pipeline
    ({!Rtlsat_simplify.Simp}, with variable elimination: one-shot
    solving makes it sound) for the bit-blast baseline; the lazy CDP
    ignores it.  [req.inprocess] > 0 re-simplifies every that many
    conflicts.  [req.cancel], once set, makes the engine return
    [Timeout] at its next step/fuel gate — the parallel portfolio uses
    one flag per race.  [req.on_learn] (HDPLL engines only) receives
    every conflict-learned clause of length ≤ 2 for cross-worker
    clause exchange. *)

type sweep_step = Engine.sweep_step = {
  sw_bound : int;
  sw_run : run;
  sw_carried_clauses : int;
      (** learned clauses already in the solver when this bound's call
          began.  Per-engine semantics: HDPLL engines report the
          session kernel's learned-clause database size at call entry;
          the bit-blast baseline reports the CDCL kernel's total
          conflict-learned lemmas so far ({!Rtlsat_sat.Cdcl.n_learned}
          — derivation count, monotone across inprocessing rebuilds);
          the lazy CDP re-solves from scratch and always reports 0 *)
  sw_carried_relations : int;
      (** predicate relations carried from earlier bounds (HDPLL+P) *)
}

val run_sweep :
  ?req:Req.t ->
  ?semantics:Rtlsat_bmc.Bmc.semantics ->
  engine ->
  Rtlsat_rtl.Ir.circuit ->
  prop:Rtlsat_rtl.Ir.node ->
  bounds:int list ->
  sweep_step list
(** Sweep a list of bounds through {e one} solver session per engine:
    the circuit is unrolled frame-incrementally, each bound's violation
    selector is posed as an assumption literal, and learned clauses,
    predicate relations and heuristic state survive from bound to
    bound.  HDPLL engines use {!Rtlsat_core.Solver.Session}; the
    bit-blast baseline rides the CDCL solver's native assumptions; the
    lazy CDP has no incremental interface and re-solves each bound from
    scratch (uniform API, zero carried counters).  [req.timeout] is a
    per-bound budget in seconds; Sat witnesses are replayed through the
    simulator exactly as in {!run_instance}.  [req.simplify] /
    [req.inprocess] are as in {!run_instance}, except that the
    bit-blast baseline keeps variable elimination {e off}: the encoding
    grows and literals are assumed per bound, which elimination does
    not survive.  [req.cancel] cancels the sweep cooperatively
    mid-bound, as in {!run_instance}. *)

val sweep_with_obs :
  Rtlsat_obs.Obs.t ->
  total:int ->
  index:int ->
  bound:int ->
  (unit -> sweep_step) ->
  sweep_step
(** Per-bound sweep telemetry wrapper: points the heartbeat context at
    the current bound and brackets the step with [sweep.bound] /
    [sweep.result] trace events, so a live monitor can tell which
    bound a long sweep is stuck on.  Used by {!run_sweep} and the
    parallel bound-partitioned sweep driver. *)

val op_counts : Rtlsat_bmc.Bmc.instance -> int * int
(** (arith, bool) operator counts of the unrolled instance —
    columns 3–4 of Table 2. *)
