(** Uniform driver for every satisfiability engine of the evaluation:
    the four HDPLL configurations, the eager Boolean translation
    (UCLID stand-in) and the lazy combined decision procedure (ICS
    stand-in).  Every satisfiable answer is validated by replaying the
    witness through the RTL simulator. *)

type engine =
  | Hdpll        (** HDPLL [9] *)
  | Hdpll_s      (** + structural decision strategy (§4) *)
  | Hdpll_sp     (** + structural decisions + predicate learning *)
  | Hdpll_p      (** + predicate learning only (Table 1) *)
  | Bitblast     (** Boolean translation + CDCL (UCLID stand-in) *)
  | Lazy_cdp     (** lazy CDP (ICS stand-in) *)

val engine_name : engine -> string
val table2_engines : engine list
(** The five columns of Table 2, in order. *)

type verdict =
  | Sat
  | Unsat
  | Timeout
  | Abort of string
      (** engine failure — e.g. a witness that does not replay *)

type run = {
  verdict : verdict;
  time : float;           (** seconds *)
  relations : int;        (** predicate relations learned (HDPLL+P) *)
  learn_time : float;
  decisions : int;
  conflicts : int;
  stats : Rtlsat_core.Solver.stats option;
      (** full solver counters; [None] for the baseline engines *)
  metrics : Rtlsat_obs.Obs.snapshot option;
      (** observability snapshot; [None] unless an enabled [obs]
          handle was passed to {!run_instance} *)
}

val verdict_symbol : verdict -> string
(** ["S"], ["U"], ["-to-"], ["-A-"] as in the paper's tables. *)

val run_instance :
  ?timeout:float ->
  ?learn_threshold:int ->
  ?obs:Rtlsat_obs.Obs.t ->
  ?dump_graph:string ->
  ?dump_graph_max:int ->
  ?split:bool ->
  ?simplify:bool ->
  ?inprocess:int ->
  ?cancel:bool Atomic.t ->
  ?on_learn:(Rtlsat_constr.Types.clause -> unit) ->
  engine ->
  Rtlsat_bmc.Bmc.instance ->
  run
(** Solve a BMC instance with the given engine.  [timeout] is a
    per-run budget in seconds (default 1200, the paper's limit).
    Satisfiable results are checked with {!Rtlsat_bmc.Bmc.witness_ok};
    failures become [Abort].  [obs] (default disabled) instruments the
    whole run — encoding included — and fills [run.metrics]; pass a
    fresh handle per run for per-run snapshots.  [dump_graph] (HDPLL
    engines only) exports the first [dump_graph_max] (default 10)
    conflict implication graphs as DOT files into the given directory,
    which must exist.  [split] (HDPLL engines only, default [true])
    enables stall-triggered interval-split decisions; pass [false] to
    reproduce the pre-split kernel behaviour.  [simplify] (default
    [true]) preprocesses the engine's clause database before the
    search — the hybrid pass ({!Rtlsat_core.Hsimp}) for the HDPLL
    engines, the CNF pipeline ({!Rtlsat_simplify.Simp}, with variable
    elimination: one-shot solving makes it sound) for the bit-blast
    baseline; the lazy CDP ignores it.  [inprocess] > 0 re-simplifies
    every that many conflicts.  [cancel] is a shared cooperative
    cancellation flag: once set, the engine returns [Timeout] at its
    next step/fuel gate — the parallel portfolio uses one flag per
    race.  [on_learn] (HDPLL engines only) receives every
    conflict-learned clause of length ≤ 2 for cross-worker clause
    exchange; it is ignored by the baseline engines. *)

type sweep_step = {
  sw_bound : int;
  sw_run : run;
  sw_carried_clauses : int;
      (** learned clauses already in the solver when this bound's call
          began (HDPLL: session counter; bitblast: conflicts-so-far as
          a stand-in; lazy CDP: always 0) *)
  sw_carried_relations : int;
      (** predicate relations carried from earlier bounds (HDPLL+P) *)
}

val run_sweep :
  ?timeout:float ->
  ?learn_threshold:int ->
  ?obs:Rtlsat_obs.Obs.t ->
  ?split:bool ->
  ?simplify:bool ->
  ?inprocess:int ->
  ?cancel:bool Atomic.t ->
  ?semantics:Rtlsat_bmc.Bmc.semantics ->
  engine ->
  Rtlsat_rtl.Ir.circuit ->
  prop:Rtlsat_rtl.Ir.node ->
  bounds:int list ->
  sweep_step list
(** Sweep a list of bounds through {e one} solver session per engine:
    the circuit is unrolled frame-incrementally, each bound's violation
    selector is posed as an assumption literal, and learned clauses,
    predicate relations and heuristic state survive from bound to
    bound.  HDPLL engines use {!Rtlsat_core.Solver.Session}; the
    bit-blast baseline rides the CDCL solver's native assumptions; the
    lazy CDP has no incremental interface and re-solves each bound from
    scratch (uniform API, zero carried counters).  [timeout] is a
    per-bound budget in seconds; Sat witnesses are replayed through the
    simulator exactly as in {!run_instance}.  [simplify]/[inprocess]
    are as in {!run_instance}, except that the bit-blast baseline keeps
    variable elimination {e off}: the encoding grows and literals are
    assumed per bound, which elimination does not survive.  [cancel]
    cancels the sweep cooperatively mid-bound, as in
    {!run_instance}. *)

val op_counts : Rtlsat_bmc.Bmc.instance -> int * int
(** (arith, bool) operator counts of the unrolled instance —
    columns 3–4 of Table 2. *)
