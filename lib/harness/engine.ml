module Bmc = Rtlsat_bmc.Bmc
module Unroll = Rtlsat_bmc.Unroll
module E = Rtlsat_constr.Encode
module Solver = Rtlsat_core.Solver
module Bb = Rtlsat_baselines.Bitblast
module Lz = Rtlsat_baselines.Lazy_cdp
module Obs = Rtlsat_obs.Obs
module Json = Rtlsat_obs.Json
module Mono = Rtlsat_obs.Mono

type id = Hdpll | Hdpll_s | Hdpll_sp | Hdpll_p | Bitblast | Lazy_cdp

let name_of = function
  | Hdpll -> "hdpll"
  | Hdpll_s -> "hdpll+s"
  | Hdpll_sp -> "hdpll+s+p"
  | Hdpll_p -> "hdpll+p"
  | Bitblast -> "bitblast"
  | Lazy_cdp -> "lazy-cdp"

let all_ids = [ Hdpll; Hdpll_s; Hdpll_sp; Hdpll_p; Bitblast; Lazy_cdp ]

let of_name s =
  List.find_opt (fun id -> String.equal (name_of id) s) all_ids

type verdict = Sat | Unsat | Timeout | Abort of string

let verdict_symbol = function
  | Sat -> "S"
  | Unsat -> "U"
  | Timeout -> "-to-"
  | Abort _ -> "-A-"

type run = {
  verdict : verdict;
  time : float;
  relations : int;
  learn_time : float;
  decisions : int;
  conflicts : int;
  stats : Solver.stats option;
  metrics : Obs.snapshot option;
}

type sweep_step = {
  sw_bound : int;
  sw_run : run;
  sw_carried_clauses : int;
  sw_carried_relations : int;
}

type caps = {
  supports_sessions : bool;
  supports_assumptions : bool;
  exports_learned_clauses : bool;
  honors_simplify : bool;
  honors_split : bool;
}

let caps_of = function
  | Hdpll | Hdpll_s | Hdpll_sp | Hdpll_p ->
    {
      supports_sessions = true;
      supports_assumptions = true;
      exports_learned_clauses = true;
      honors_simplify = true;
      honors_split = true;
    }
  | Bitblast ->
    {
      supports_sessions = true;
      supports_assumptions = true;
      exports_learned_clauses = false;
      honors_simplify = true;
      honors_split = false;
    }
  | Lazy_cdp ->
    {
      supports_sessions = false;
      supports_assumptions = false;
      exports_learned_clauses = false;
      honors_simplify = false;
      honors_split = false;
    }

module type S = sig
  val id : id
  val name : string
  val caps : caps

  type session

  val create : req:Req.t -> Bmc.instance -> session

  val session :
    req:Req.t ->
    ?semantics:Bmc.semantics ->
    Rtlsat_rtl.Ir.circuit ->
    prop:Rtlsat_rtl.Ir.node ->
    session

  val solve : req:Req.t -> session -> run
  val sweep_step : req:Req.t -> session -> bound:int -> sweep_step
  val cancel : session -> unit
  val snapshot : session -> Obs.snapshot option
end

let snap obs = if obs.Obs.enabled then Some (Obs.snapshot obs) else None

let wrong_mode fn = invalid_arg ("Engine." ^ fn ^ ": wrong session mode")

(* ---- the four hybrid configurations, over Solver / Solver.Session ---- *)

module Make_hybrid (C : sig
    val id : id
  end) : S = struct
  let id = C.id
  let name = name_of C.id
  let caps = caps_of C.id

  let base_options () =
    match C.id with
    | Hdpll -> Solver.hdpll
    | Hdpll_s -> Solver.hdpll_s
    | Hdpll_sp -> Solver.hdpll_sp
    | Hdpll_p -> Solver.hdpll_p
    | Bitblast | Lazy_cdp -> invalid_arg "Engine.Make_hybrid"

  let options (req : Req.t) ~deadline ~one_shot =
    let base = base_options () in
    {
      base with
      Solver.deadline;
      Solver.learn_threshold = req.Req.learn_threshold;
      Solver.obs = req.Req.obs;
      Solver.dump_graph = (if one_shot then req.Req.dump_graph else None);
      Solver.dump_graph_max = req.Req.dump_graph_max;
      Solver.split = req.Req.split;
      Solver.simplify = req.Req.simplify;
      Solver.inprocess = req.Req.inprocess;
      Solver.cancel = req.Req.cancel;
      Solver.on_learn = req.Req.on_learn;
    }

  type mode =
    | One_shot of { inst : Bmc.instance; enc : E.t }
    | Sweep of { sw : Bmc.sweep; enc : E.t; sess : Solver.Session.session }

  type session = { s_req : Req.t; s_created : float; mode : mode }

  let create ~req inst =
    let t0 = Mono.now () in
    let obs = req.Req.obs in
    let enc =
      Obs.span obs Obs.Encode (fun () ->
          let enc = E.encode (Unroll.combo inst.Bmc.unrolled) in
          E.assume_bool enc inst.Bmc.violation true;
          enc)
    in
    { s_req = req; s_created = t0; mode = One_shot { inst; enc } }

  let session ~req ?semantics source ~prop =
    let obs = req.Req.obs in
    let sw = Bmc.sweep source ~prop ?semantics () in
    let enc =
      Obs.span obs Obs.Encode (fun () ->
          E.encode (Unroll.combo (Bmc.sweep_unrolled sw)))
    in
    (* the per-call deadline is passed to [Session.solve]; the options
       deadline is a never-fires placeholder *)
    let sess =
      Solver.Session.create ~options:(options req ~deadline:infinity ~one_shot:false) enc
    in
    { s_req = req; s_created = Mono.now (); mode = Sweep { sw; enc; sess } }

  let solve ~req s =
    match s.mode with
    | Sweep _ -> wrong_mode "solve"
    | One_shot { inst; enc } ->
      let t0 = s.s_created in
      let obs = s.s_req.Req.obs in
      let deadline = Req.deadline_from req t0 in
      let options = options s.s_req ~deadline ~one_shot:true in
      let { Solver.result; stats; _ } = Solver.solve ~options enc in
      let mk verdict =
        {
          verdict;
          time = Mono.now () -. t0;
          relations = stats.Solver.relations;
          learn_time = stats.Solver.learn_time;
          decisions = stats.Solver.decisions;
          conflicts = stats.Solver.conflicts;
          stats = Some stats;
          metrics = snap obs;
        }
      in
      (match result with
       | Solver.Unsat -> mk Unsat
       | Solver.Timeout -> mk Timeout
       | Solver.Sat m ->
         if Bmc.witness_ok inst (fun n -> m.(E.var enc n)) then mk Sat
         else mk (Abort "witness failed replay"))

  let sweep_step ~req s ~bound =
    match s.mode with
    | One_shot _ -> wrong_mode "sweep_step"
    | Sweep { sw; enc; sess } ->
      let obs = s.s_req.Req.obs in
      let t0 = Mono.now () in
      let vnode = Bmc.sweep_violation sw ~bound in
      Obs.span obs Obs.Encode (fun () -> E.extend enc);
      let r =
        Solver.Session.solve
          ~assumptions:[| Rtlsat_constr.Types.Pos (E.var enc vnode) |]
          ~deadline:(Req.deadline_from req t0) sess
      in
      let stats = r.Solver.Session.outcome.Solver.stats in
      let mk verdict =
        {
          verdict;
          time = Mono.now () -. t0;
          relations = stats.Solver.relations;
          learn_time = stats.Solver.learn_time;
          decisions = stats.Solver.decisions;
          conflicts = stats.Solver.conflicts;
          stats = Some stats;
          metrics = snap obs;
        }
      in
      let sw_run =
        match r.Solver.Session.outcome.Solver.result with
        | Solver.Unsat -> mk Unsat
        | Solver.Timeout -> mk Timeout
        | Solver.Sat m ->
          let inst = Bmc.sweep_instance sw ~bound in
          if Bmc.witness_ok inst (fun n -> m.(E.var enc n)) then mk Sat
          else mk (Abort "witness failed replay")
      in
      {
        sw_bound = bound;
        sw_run;
        sw_carried_clauses = r.Solver.Session.carried_clauses;
        sw_carried_relations = r.Solver.Session.carried_relations;
      }

  let cancel s = Atomic.set s.s_req.Req.cancel true
  let snapshot s = snap s.s_req.Req.obs
end

module Hdpll_e = Make_hybrid (struct let id = Hdpll end)
module Hdpll_s_e = Make_hybrid (struct let id = Hdpll_s end)
module Hdpll_sp_e = Make_hybrid (struct let id = Hdpll_sp end)
module Hdpll_p_e = Make_hybrid (struct let id = Hdpll_p end)

(* ---- the eager bit-blast baseline, over Bitblast / Cdcl ---- *)

module Bitblast_e : S = struct
  let id = Bitblast
  let name = name_of Bitblast
  let caps = caps_of Bitblast

  type mode =
    | One_shot of { inst : Bmc.instance; bb : Bb.t }
    | Sweep of { sw : Bmc.sweep; bb : Bb.t }

  type session = { s_req : Req.t; s_created : float; mode : mode }

  let create ~req inst =
    let t0 = Mono.now () in
    let obs = req.Req.obs in
    let bb =
      Obs.span obs Obs.Encode (fun () ->
          let bb = Bb.encode (Unroll.combo inst.Bmc.unrolled) in
          Bb.assume_bool bb inst.Bmc.violation true;
          bb)
    in
    { s_req = req; s_created = t0; mode = One_shot { inst; bb } }

  let session ~req ?semantics source ~prop =
    let obs = req.Req.obs in
    let sw = Bmc.sweep source ~prop ?semantics () in
    let bb =
      Obs.span obs Obs.Encode (fun () ->
          Bb.encode (Unroll.combo (Bmc.sweep_unrolled sw)))
    in
    { s_req = req; s_created = Mono.now (); mode = Sweep { sw; bb } }

  let simplify_with_obs obs ~elim bb =
    Obs.span obs Obs.Simplify (fun () ->
        Bb.simplify ~elim bb;
        if elim && obs.Obs.enabled then begin
          let st = Bb.simp_stats bb in
          let open Rtlsat_simplify.Simp in
          Obs.add obs "simplify.subsumed" st.subsumed;
          Obs.add obs "simplify.strengthened" st.strengthened;
          Obs.add obs "simplify.eliminated" st.eliminated;
          Obs.add obs "simplify.probed" st.probed;
          if Obs.tracing obs then
            Obs.event obs "simplify.pass"
              [ ("engine", Json.Str "cdcl");
                ("subsumed", Json.Int st.subsumed);
                ("strengthened", Json.Int st.strengthened);
                ("eliminated", Json.Int st.eliminated);
                ("probed", Json.Int st.probed);
                ("equivs", Json.Int st.equivs) ]
        end)

  let solve ~req s =
    match s.mode with
    | Sweep _ -> wrong_mode "solve"
    | One_shot { inst; bb } ->
      let t0 = s.s_created in
      let obs = s.s_req.Req.obs in
      let deadline = Req.deadline_from req t0 in
      (* one-shot solve: the violation selector was added as a unit
         clause at [create], not an assumption, and the encoding never
         grows — so full preprocessing including variable elimination
         is sound *)
      if s.s_req.Req.simplify then simplify_with_obs obs ~elim:true bb;
      let verdict =
        match
          Bb.solve ~deadline ~inprocess:s.s_req.Req.inprocess
            ~cancel:s.s_req.Req.cancel bb
        with
        | Bb.Unsat -> Unsat
        | Bb.Timeout -> Timeout
        | Bb.Sat ->
          if Bmc.witness_ok inst (Bb.node_value bb) then Sat
          else Abort "witness failed replay"
      in
      {
        verdict;
        time = Mono.now () -. t0;
        relations = 0;
        learn_time = 0.0;
        decisions = 0;
        conflicts = Rtlsat_sat.Cdcl.n_conflicts (Bb.solver bb);
        stats = None;
        metrics = snap obs;
      }

  let sweep_step ~req s ~bound =
    match s.mode with
    | One_shot _ -> wrong_mode "sweep_step"
    | Sweep { sw; bb } ->
      let obs = s.s_req.Req.obs in
      let sat = Bb.solver bb in
      let t0 = Mono.now () in
      let vnode = Bmc.sweep_violation sw ~bound in
      Obs.span obs Obs.Encode (fun () -> Bb.extend bb);
      (* lemmas carried into this call: conflict-learned clauses
         retained so far, as counted by the CDCL kernel *)
      let carried = Rtlsat_sat.Cdcl.n_learned sat in
      let conflicts0 = Rtlsat_sat.Cdcl.n_conflicts sat in
      (* incremental sweep: the encoding keeps growing and literals
         are assumed per bound, so variable elimination stays off —
         subsumption, probing and equivalent-literal substitution
         remain sound (assumptions and later clauses are rewritten
         through the substitution) *)
      if s.s_req.Req.simplify then simplify_with_obs obs ~elim:false bb;
      let verdict =
        match
          Bb.solve ~deadline:(Req.deadline_from req t0)
            ~inprocess:s.s_req.Req.inprocess ~cancel:s.s_req.Req.cancel
            ~assumptions:[ Bb.bool_lit bb vnode ] bb
        with
        | Bb.Unsat -> Unsat
        | Bb.Timeout -> Timeout
        | Bb.Sat ->
          let inst = Bmc.sweep_instance sw ~bound in
          if Bmc.witness_ok inst (Bb.node_value bb) then Sat
          else Abort "witness failed replay"
      in
      let sw_run =
        {
          verdict;
          time = Mono.now () -. t0;
          relations = 0;
          learn_time = 0.0;
          decisions = 0;
          conflicts = Rtlsat_sat.Cdcl.n_conflicts sat - conflicts0;
          stats = None;
          metrics = snap obs;
        }
      in
      {
        sw_bound = bound;
        sw_run;
        sw_carried_clauses = carried;
        sw_carried_relations = 0;
      }

  let cancel s = Atomic.set s.s_req.Req.cancel true
  let snapshot s = snap s.s_req.Req.obs
end

(* ---- the lazy CDP baseline: no incremental interface, each bound is
   an honest fresh solve over the shared unroll ---- *)

module Lazy_cdp_e : S = struct
  let id = Lazy_cdp
  let name = name_of Lazy_cdp
  let caps = caps_of Lazy_cdp

  type mode =
    | One_shot of { inst : Bmc.instance; enc : E.t }
    | Sweep of { sw : Bmc.sweep }

  type session = { s_req : Req.t; s_created : float; mode : mode }

  let create ~req inst =
    let t0 = Mono.now () in
    let obs = req.Req.obs in
    let enc =
      Obs.span obs Obs.Encode (fun () ->
          let enc = E.encode (Unroll.combo inst.Bmc.unrolled) in
          E.assume_bool enc inst.Bmc.violation true;
          enc)
    in
    { s_req = req; s_created = t0; mode = One_shot { inst; enc } }

  let session ~req ?semantics source ~prop =
    let sw = Bmc.sweep source ~prop ?semantics () in
    { s_req = req; s_created = Mono.now (); mode = Sweep { sw } }

  let mk_run ~t0 ~obs verdict (st : Lz.stats) =
    {
      verdict;
      time = Mono.now () -. t0;
      relations = 0;
      learn_time = 0.0;
      decisions = st.Lz.theory_calls;
      conflicts = st.Lz.blocking_clauses;
      stats = None;
      metrics = snap obs;
    }

  let solve ~req s =
    match s.mode with
    | Sweep _ -> wrong_mode "solve"
    | One_shot { inst; enc } ->
      let t0 = s.s_created in
      let obs = s.s_req.Req.obs in
      let deadline = Req.deadline_from req t0 in
      let result, st =
        Lz.solve ~deadline ~cancel:s.s_req.Req.cancel enc.E.problem
      in
      let verdict =
        match result with
        | Lz.Unsat -> Unsat
        | Lz.Timeout -> Timeout
        | Lz.Sat m ->
          if Bmc.witness_ok inst (fun n -> m.(E.var enc n)) then Sat
          else Abort "witness failed replay"
      in
      mk_run ~t0 ~obs verdict st

  let sweep_step ~req s ~bound =
    match s.mode with
    | One_shot _ -> wrong_mode "sweep_step"
    | Sweep { sw } ->
      let obs = s.s_req.Req.obs in
      let t0 = Mono.now () in
      let vnode = Bmc.sweep_violation sw ~bound in
      let enc =
        Obs.span obs Obs.Encode (fun () ->
            let enc = E.encode (Unroll.combo (Bmc.sweep_unrolled sw)) in
            E.assume_bool enc vnode true;
            enc)
      in
      let result, st =
        Lz.solve ~deadline:(Req.deadline_from req t0)
          ~cancel:s.s_req.Req.cancel enc.E.problem
      in
      let verdict =
        match result with
        | Lz.Unsat -> Unsat
        | Lz.Timeout -> Timeout
        | Lz.Sat m ->
          let inst = Bmc.sweep_instance sw ~bound in
          if Bmc.witness_ok inst (fun n -> m.(E.var enc n)) then Sat
          else Abort "witness failed replay"
      in
      {
        sw_bound = bound;
        sw_run = mk_run ~t0 ~obs verdict st;
        sw_carried_clauses = 0;
        sw_carried_relations = 0;
      }

  let cancel s = Atomic.set s.s_req.Req.cancel true
  let snapshot s = snap s.s_req.Req.obs
end

let of_id : id -> (module S) = function
  | Hdpll -> (module Hdpll_e)
  | Hdpll_s -> (module Hdpll_s_e)
  | Hdpll_sp -> (module Hdpll_sp_e)
  | Hdpll_p -> (module Hdpll_p_e)
  | Bitblast -> (module Bitblast_e)
  | Lazy_cdp -> (module Lazy_cdp_e)

let all = List.map of_id all_ids
