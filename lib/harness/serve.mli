(** [rtlsat serve]: a JSON-lines request/response daemon skeleton over
    warm engine sessions.

    One request per line on the input channel, one response per line
    on the output channel, schema ["rtlsat.serve/1"] (see
    docs/OBSERVABILITY.md for the full field catalogue).  The daemon
    keeps a pool of warm per-(circuit, prop, engine) sessions built on
    the first-class {!Engine.S} surface: a repeated solve or sweep
    request reuses the session's frame-incremental unroll prefix and —
    where {!Engine.caps.supports_sessions} — its carried learned
    clauses, so the second identical request answers with
    [session.warm = true], [session.unroll_cache = "hit"] and a
    non-zero [carried_clauses].  Per-request deadlines ride a fresh
    {!Req.t} per request; the pool entry's creation request fixes the
    engine knobs for the session's lifetime.

    Operations: [solve] (one bound), [sweep] (a bound list), [ping],
    [stats] (the session pool), [shutdown].  Malformed or failing
    requests produce [{"ok": false, "error": ...}] responses and keep
    the loop alive; only [shutdown] or end-of-input ends it. *)

val schema : string
(** ["rtlsat.serve/1"] — stamped on every response. *)

type t
(** Daemon state: the warm session pool and request bookkeeping. *)

val create : ?ledger:string -> ?engine:Engine.id -> unit -> t
(** [ledger] appends one [rtlsat.run/1] record (subcommand ["serve"])
    per solve/sweep request; omit it for no ledger.  [engine] (default
    [Hdpll_sp]) serves requests that do not name one. *)

val handle : t -> Rtlsat_obs.Json.t -> Rtlsat_obs.Json.t * bool
(** Process one parsed request; returns the response and whether the
    loop should continue ([false] only after [shutdown]).  Never
    raises on bad requests — errors become [{"ok": false}] responses.
    Exposed for in-process tests. *)

val handle_line : t -> string -> string * bool
(** {!handle} on one raw input line (parse errors become error
    responses). *)

val run : t -> in_channel -> out_channel -> int
(** The blocking request loop: read lines until EOF or [shutdown],
    answer each on [out] (flushed per response).  Returns the number
    of requests served. *)
