module Registry = Rtlsat_itc99.Registry
module Json = Rtlsat_obs.Json
module Ledger = Rtlsat_obs.Ledger

let schema = "rtlsat.serve/1"

(* one warm session: the engine module and its session value packed
   together so the pool can hold any engine's session uniformly *)
type entry =
  | E : {
      m : (module Engine.S with type session = 's);
      sess : 's;
      engine : Engine.id;
      key : string;
      mutable solves : int;
    }
      -> entry

type t = {
  pool : (string, entry) Hashtbl.t;
  ledger : string option;
  default_engine : Engine.id;
  mutable served : int;
}

let create ?ledger ?(engine = Engine.Hdpll_sp) () =
  { pool = Hashtbl.create 8; ledger; default_engine = engine; served = 0 }

(* ---- request plumbing ---- *)

let str_field name j = Option.bind (Json.member name j) Json.get_string
let int_field name j = Option.bind (Json.member name j) Json.get_int
let float_field name j = Option.bind (Json.member name j) Json.get_float

let require name = function
  | Some v -> v
  | None -> failwith (Printf.sprintf "missing field %S" name)

let ok ~id fields =
  Json.Obj
    (("schema", Json.Str schema) :: ("id", id) :: ("ok", Json.Bool true)
     :: fields)

let err ~id msg =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("id", id);
      ("ok", Json.Bool false);
      ("error", Json.Str msg);
    ]

(* ---- the warm session pool ---- *)

let get_session t ~circuit ~prop ~engine ~req =
  let key = Printf.sprintf "%s/%s/%s" circuit prop (Engine.name_of engine) in
  match Hashtbl.find_opt t.pool key with
  | Some e -> (e, true)
  | None ->
    let source, props =
      try Registry.build circuit
      with Not_found -> failwith (Printf.sprintf "unknown circuit %S" circuit)
    in
    let p =
      match List.assoc_opt prop props with
      | Some p -> p
      | None ->
        failwith
          (Printf.sprintf "unknown property %S of circuit %S" prop circuit)
    in
    let (module M : Engine.S) = Engine.of_id engine in
    let sess = M.session ~req source ~prop:p in
    let e = E { m = (module M); sess; engine; key; solves = 0 } in
    Hashtbl.add t.pool key e;
    (e, false)

let step_fields (step : Engine.sweep_step) =
  let r = step.Engine.sw_run in
  [
    ("bound", Json.Int step.Engine.sw_bound);
    ("verdict", Json.Str (Report.verdict_string r.Engine.verdict));
    ("time_s", Json.Float r.Engine.time);
    ("decisions", Json.Int r.Engine.decisions);
    ("conflicts", Json.Int r.Engine.conflicts);
    ("carried_clauses", Json.Int step.Engine.sw_carried_clauses);
    ("carried_relations", Json.Int step.Engine.sw_carried_relations);
  ]

let session_fields ~key ~engine ~solves ~warm =
  ( "session",
    Json.Obj
      [
        ("key", Json.Str key);
        ("engine", Json.Str (Engine.name_of engine));
        ("solves", Json.Int solves);
        ("warm", Json.Bool warm);
        ("unroll_cache", Json.Str (if warm then "hit" else "miss"));
      ] )

let ledger_append t ~instance ~engine ~req ~warm ~verdict ~wall_s ~counters =
  match t.ledger with
  | None -> ()
  | Some path ->
    (try
       Ledger.append ~path
         (Ledger.make ~subcommand:"serve"
            ~argv:(Array.to_list Sys.argv)
            ~instance
            ~engine:(Engine.name_of engine)
            ~options:(Req.options_string req ^ Printf.sprintf ",warm=%b" warm)
            ~verdict ~wall_s ~counters ~artifacts:[] ())
     with Sys_error msg ->
       Printf.eprintf "rtlsat serve: ledger append failed: %s\n%!" msg)

(* ---- operations ---- *)

let parse_engine t request =
  match str_field "engine" request with
  | None -> t.default_engine
  | Some name ->
    (match Engine.of_name name with
     | Some e -> e
     | None -> failwith (Printf.sprintf "unknown engine %S" name))

let do_solve t ~id request =
  let circuit = require "circuit" (str_field "circuit" request) in
  let prop = require "prop" (str_field "prop" request) in
  let bound = require "bound" (int_field "bound" request) in
  let engine = parse_engine t request in
  let timeout = Option.value (float_field "timeout_s" request) ~default:1200.0 in
  let req = Req.make ~timeout ~tag:"serve" () in
  let entry, warm = get_session t ~circuit ~prop ~engine ~req in
  let step, key, solves =
    match entry with
    | E e ->
      let module M = (val e.m) in
      let step = M.sweep_step ~req e.sess ~bound in
      e.solves <- e.solves + 1;
      (step, e.key, e.solves)
  in
  let r = step.Engine.sw_run in
  ledger_append t
    ~instance:(Registry.instance_name ~circuit ~prop ~bound)
    ~engine ~req ~warm
    ~verdict:(Report.verdict_string r.Engine.verdict)
    ~wall_s:r.Engine.time
    ~counters:
      [
        ("decisions", r.Engine.decisions);
        ("conflicts", r.Engine.conflicts);
        ("carried_clauses", step.Engine.sw_carried_clauses);
        ("carried_relations", step.Engine.sw_carried_relations);
      ];
  ok ~id
    (("op", Json.Str "solve")
     :: step_fields step
     @ [ session_fields ~key ~engine ~solves ~warm ])

let do_sweep t ~id request =
  let circuit = require "circuit" (str_field "circuit" request) in
  let prop = require "prop" (str_field "prop" request) in
  let bounds =
    match Option.bind (Json.member "bounds" request) Json.get_list with
    | Some l ->
      List.map (fun b -> require "bounds" (Json.get_int b)) l
    | None -> failwith "missing field \"bounds\""
  in
  let engine = parse_engine t request in
  let timeout = Option.value (float_field "timeout_s" request) ~default:1200.0 in
  let req = Req.make ~timeout ~tag:"serve" () in
  let entry, warm = get_session t ~circuit ~prop ~engine ~req in
  let steps, key, solves =
    match entry with
    | E e ->
      let module M = (val e.m) in
      let steps =
        List.map (fun bound -> M.sweep_step ~req e.sess ~bound) bounds
      in
      e.solves <- e.solves + List.length steps;
      (steps, e.key, e.solves)
  in
  let wall_s =
    List.fold_left (fun a s -> a +. s.Engine.sw_run.Engine.time) 0.0 steps
  in
  let verdict =
    (* first violated bound decides the sweep verdict, as in the CLI *)
    match
      List.find_opt (fun s -> s.Engine.sw_run.Engine.verdict = Engine.Sat)
        steps
    with
    | Some s -> Report.verdict_string s.Engine.sw_run.Engine.verdict
    | None ->
      (match steps with
       | [] -> "unsat"
       | s :: _ ->
         Report.verdict_string
           (List.fold_left
              (fun acc st ->
                 match st.Engine.sw_run.Engine.verdict with
                 | Engine.Unsat -> acc
                 | v -> v)
              s.Engine.sw_run.Engine.verdict
              steps))
  in
  let carried =
    List.fold_left (fun a s -> max a s.Engine.sw_carried_clauses) 0 steps
  in
  ledger_append t
    ~instance:(Printf.sprintf "%s_%s" circuit prop)
    ~engine ~req ~warm ~verdict ~wall_s
    ~counters:
      [ ("bounds", List.length bounds); ("carried_clauses", carried) ];
  ok ~id
    [
      ("op", Json.Str "sweep");
      ("time_s", Json.Float wall_s);
      ("steps", Json.Arr (List.map (fun s -> Json.Obj (step_fields s)) steps));
      session_fields ~key ~engine ~solves ~warm;
    ]

let do_stats t ~id =
  let sessions =
    Hashtbl.fold
      (fun _ (E e) acc ->
         Json.Obj
           [
             ("key", Json.Str e.key);
             ("engine", Json.Str (Engine.name_of e.engine));
             ("solves", Json.Int e.solves);
           ]
         :: acc)
      t.pool []
  in
  ok ~id
    [
      ("op", Json.Str "stats");
      ("served", Json.Int t.served);
      ("sessions", Json.Arr sessions);
    ]

let handle t request =
  let id = Option.value (Json.member "id" request) ~default:Json.Null in
  match str_field "op" request with
  | None -> (err ~id "missing field \"op\"", true)
  | Some "ping" -> (ok ~id [ ("op", Json.Str "ping") ], true)
  | Some "stats" -> (do_stats t ~id, true)
  | Some "shutdown" ->
    (ok ~id [ ("op", Json.Str "shutdown"); ("served", Json.Int t.served) ],
     false)
  | Some (("solve" | "sweep") as op) ->
    let resp =
      try
        let r = if op = "solve" then do_solve t ~id request
          else do_sweep t ~id request
        in
        t.served <- t.served + 1;
        r
      with
      | Failure msg -> err ~id msg
      | Invalid_argument msg -> err ~id msg
      | Not_found -> err ~id "not found"
    in
    (resp, true)
  | Some op -> (err ~id (Printf.sprintf "unknown op %S" op), true)

let handle_line t line =
  let resp, keep =
    match Json.of_string line with
    | request -> handle t request
    | exception Json.Parse_error msg ->
      (err ~id:Json.Null ("parse error: " ^ msg), true)
  in
  (Json.to_string resp, keep)

let run t ic oc =
  let continue = ref true in
  while !continue do
    match input_line ic with
    | exception End_of_file -> continue := false
    | line ->
      if String.trim line <> "" then begin
        let resp, keep = handle_line t line in
        output_string oc resp;
        output_char oc '\n';
        flush oc;
        if not keep then continue := false
      end
  done;
  t.served
