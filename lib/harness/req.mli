(** One request context for every engine invocation.

    [Req.t] replaces the optional-argument explosion that used to ride
    every call into the engine layer ([?timeout ?learn_threshold ?obs
    ?dump_graph ?split ?simplify ?inprocess ?cancel ?on_learn]): the
    CLI, the parallel drivers, the fuzz oracle, the bench harness and
    the [rtlsat serve] daemon all build one record and thread it down.

    Deadline discipline: a request carries {e both} a relative
    [timeout] budget (seconds, applied per engine call — per bound in
    a sweep) and an absolute [deadline] instant on the monotonic clock
    ({!Rtlsat_obs.Mono.now}).  The effective per-call deadline is the
    earlier of the two ({!deadline_from}), so a serve request can say
    "finish by instant T" while a sweep says "spend at most t seconds
    per bound" — or both. *)

type t = {
  timeout : float;
      (** per-engine-call budget, seconds; default 1200 (the paper's
          limit).  In a sweep the budget applies to every bound. *)
  deadline : float;
      (** absolute monotonic-clock cap across the whole request;
          [infinity] (the default) defers to [timeout] alone *)
  cancel : bool Atomic.t;
      (** cooperative cancellation: once set, every engine observing
          this request returns [Timeout] at its next step/fuel gate.
          The default flag is shared and never set — use {!make} [?cancel]
          or {!fresh_cancel} for a flag you intend to trip *)
  obs : Rtlsat_obs.Obs.t;
      (** observability handle threaded through encode and search;
          default {!Rtlsat_obs.Obs.disabled} *)
  learn_threshold : int option;
      (** cap on learned predicate relations (HDPLL+P); [None] =
          solver default *)
  split : bool;  (** interval-split decisions (hybrid engines); default on *)
  simplify : bool;  (** pre/inprocessing; default on *)
  inprocess : int;
      (** conflicts between inprocessing passes; 0 (default) disables *)
  dump_graph : string option;
      (** conflict-graph DOT export directory (hybrid one-shot solves
          only; ignored by sweeps and baseline engines) *)
  dump_graph_max : int;  (** cap on exported conflict graphs; default 10 *)
  on_learn : (Rtlsat_constr.Types.clause -> unit) option;
      (** short-clause export hook (hybrid engines only); must be
          cheap and must not raise *)
  tag : string;
      (** free-form ledger tag naming the caller (e.g. ["serve"]);
          empty by default *)
}

val make :
  ?timeout:float ->
  ?deadline:float ->
  ?cancel:bool Atomic.t ->
  ?obs:Rtlsat_obs.Obs.t ->
  ?learn_threshold:int ->
  ?split:bool ->
  ?simplify:bool ->
  ?inprocess:int ->
  ?dump_graph:string ->
  ?dump_graph_max:int ->
  ?on_learn:(Rtlsat_constr.Types.clause -> unit) ->
  ?tag:string ->
  unit ->
  t
(** A request with the defaults documented on {!t}.  Without [?cancel]
    the request shares the global never-set flag. *)

val default : t
(** [make ()] evaluated once; its [cancel] flag is shared and must
    never be set. *)

val deadline_from : t -> float -> float
(** [deadline_from req t0] is the effective absolute deadline of an
    engine call started at instant [t0]: the earlier of
    [t0 +. req.timeout] and [req.deadline]. *)

val cancelled : t -> bool

val fresh_cancel : t -> t
(** Same request with a private, unset [cancel] flag — give each
    parallel race its own. *)

val with_obs : t -> Rtlsat_obs.Obs.t -> t
val with_cancel : t -> bool Atomic.t -> t
val with_timeout : t -> float -> t
val with_deadline : t -> float -> t

val options_string : t -> string
(** The ledger-facing option digest,
    ["split=<b>,simplify=<b>,inprocess=<n>"] — callers append
    command-specific fields (bound, jobs, …) around it so ledger
    grouping keys stay stable. *)
