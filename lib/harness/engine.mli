(** First-class engine modules.

    Every satisfiability engine of the evaluation — the four HDPLL
    configurations, the eager bit-blast translation and the lazy CDP
    baseline — implements one module type {!S} with explicit
    {!caps} capability declarations and a uniform
    [create / session / solve / sweep_step / cancel / snapshot]
    surface.  Callers dispatch through {!of_id} (or iterate {!all})
    instead of pattern-matching the engine variant, and thread one
    {!Req.t} request context instead of a pile of optional arguments.

    The split between [create]+[solve] (one-shot) and
    [session]+[sweep_step] (incremental) is semantic, not cosmetic:
    a one-shot context asserts the violation selector as a unit clause
    and may run destructive preprocessing (variable elimination on the
    bit-blast CNF); an incremental context keeps the encoding growable
    and poses each bound's selector as an assumption, so carried
    learned clauses and the unroll prefix survive across calls — the
    seam the [rtlsat serve] daemon keeps warm. *)

type id = Hdpll | Hdpll_s | Hdpll_sp | Hdpll_p | Bitblast | Lazy_cdp

val name_of : id -> string
(** ["hdpll"], ["hdpll+s"], ["hdpll+s+p"], ["hdpll+p"], ["bitblast"],
    ["lazy-cdp"]. *)

val of_name : string -> id option
(** Inverse of {!name_of}. *)

val all_ids : id list
(** All six engines, in Table 2 column order then the ±P variant. *)

type verdict =
  | Sat
  | Unsat
  | Timeout
  | Abort of string
      (** engine failure — e.g. a witness that does not replay *)

val verdict_symbol : verdict -> string
(** ["S"], ["U"], ["-to-"], ["-A-"] as in the paper's tables. *)

type run = {
  verdict : verdict;
  time : float;           (** seconds, encode included *)
  relations : int;        (** predicate relations learned (HDPLL+P) *)
  learn_time : float;
  decisions : int;
  conflicts : int;
  stats : Rtlsat_core.Solver.stats option;
      (** full solver counters; [None] for the baseline engines *)
  metrics : Rtlsat_obs.Obs.snapshot option;
      (** observability snapshot; [None] unless the request carried an
          enabled [obs] handle *)
}

type sweep_step = {
  sw_bound : int;
  sw_run : run;
  sw_carried_clauses : int;
      (** learned clauses carried into this bound's call — see the
          per-engine semantics on {!Engines.sweep_step} *)
  sw_carried_relations : int;
      (** predicate relations carried from earlier bounds (HDPLL+P) *)
}

(** What an engine module actually supports.  Declared statically and
    checked against behaviour by [test/test_engine.ml]. *)
type caps = {
  supports_sessions : bool;
      (** [session] keeps solver state warm across [sweep_step] calls
          (learned clauses / activities survive); engines without it
          still expose the uniform surface but re-solve from scratch *)
  supports_assumptions : bool;
      (** per-call queries are posed as assumption literals (MiniSat
          style) rather than baked into the formula *)
  exports_learned_clauses : bool;
      (** honors [Req.on_learn]: short conflict clauses are exported
          for cross-worker exchange *)
  honors_simplify : bool;
      (** [Req.simplify] / [Req.inprocess] select a real
          pre/inprocessing pipeline *)
  honors_split : bool;
      (** [Req.split] toggles interval-split decisions *)
}

val caps_of : id -> caps

(** The uniform engine surface.

    Contexts come in two modes.  [create] builds a {e one-shot}
    context over a pre-unrolled BMC instance (violation asserted as a
    unit clause; destructive preprocessing allowed); decide it with
    [solve].  [session] builds a {e warm incremental} context over a
    frame-incremental unroll; decide one bound at a time with
    [sweep_step].  Calling [solve] on an incremental context or
    [sweep_step] on a one-shot one raises [Invalid_argument].

    Request threading: identity and policy — [obs], [cancel], solver
    knobs ([split]/[simplify]/[inprocess]/[learn_threshold]/
    [on_learn]) — are taken from the {e creation} request and fixed
    for the context's lifetime (an incremental session bakes them into
    its kernel).  Budget — [timeout]/[deadline] — is taken from the
    request passed to each [solve]/[sweep_step] call, so a daemon can
    give every request its own deadline over one warm session. *)
module type S = sig
  val id : id
  val name : string
  val caps : caps

  type session

  val create : req:Req.t -> Rtlsat_bmc.Bmc.instance -> session
  (** One-shot context: encode the instance (under [req.obs]'s Encode
      span) and assert the violation selector as a unit clause. *)

  val session :
    req:Req.t ->
    ?semantics:Rtlsat_bmc.Bmc.semantics ->
    Rtlsat_rtl.Ir.circuit ->
    prop:Rtlsat_rtl.Ir.node ->
    session
  (** Warm incremental context: the circuit is unrolled
      frame-incrementally ({!Rtlsat_bmc.Bmc.sweep}) and the underlying
      solver persists across [sweep_step] calls. *)

  val solve : req:Req.t -> session -> run
  (** Decide a [create] context.  The effective deadline is
      {!Req.deadline_from} of the context's creation instant, so the
      budget covers encoding too (as it always has). *)

  val sweep_step : req:Req.t -> session -> bound:int -> sweep_step
  (** Decide one bound of a [session] context: extend the unroll to
      [bound], pose the bound's violation selector (as an assumption
      where [caps.supports_assumptions]) and solve within
      {!Req.deadline_from} of this call's start. *)

  val cancel : session -> unit
  (** Set the context's cooperative-cancel flag (the creation
      request's [cancel]); any in-flight or future call on this
      context returns [Timeout] at its next step gate. *)

  val snapshot : session -> Rtlsat_obs.Obs.snapshot option
  (** Current observability snapshot of the creation request's handle;
      [None] when it is disabled. *)
end

val of_id : id -> (module S)
val all : (module S) list
(** One module per engine, in {!all_ids} order. *)
