module Json = Rtlsat_obs.Json
module Obs = Rtlsat_obs.Obs
module Solver = Rtlsat_core.Solver

let verdict_string = function
  | Engines.Sat -> "sat"
  | Engines.Unsat -> "unsat"
  | Engines.Timeout -> "timeout"
  | Engines.Abort _ -> "abort"

let stats_json (st : Solver.stats) =
  Json.Obj
    [
      ("decisions", Json.Int st.Solver.decisions);
      ("conflicts", Json.Int st.Solver.conflicts);
      ("propagations", Json.Int st.Solver.propagations);
      ("learned", Json.Int st.Solver.learned);
      ("jconflicts", Json.Int st.Solver.jconflicts);
      ("final_checks", Json.Int st.Solver.final_checks);
      ("splits", Json.Int st.Solver.splits);
      ("relations", Json.Int st.Solver.relations);
      ("learn_time_s", Json.Float st.Solver.learn_time);
      ("solve_time_s", Json.Float st.Solver.solve_time);
    ]

let run_json_named name (r : Engines.run) =
  let base =
    [
      ("engine", Json.Str name);
      ("verdict", Json.Str (verdict_string r.Engines.verdict));
      ("time_s", Json.Float r.Engines.time);
      ("decisions", Json.Int r.Engines.decisions);
      ("conflicts", Json.Int r.Engines.conflicts);
      ("relations", Json.Int r.Engines.relations);
      ("learn_time_s", Json.Float r.Engines.learn_time);
    ]
  in
  let abort =
    match r.Engines.verdict with
    | Engines.Abort msg -> [ ("abort_reason", Json.Str msg) ]
    | _ -> []
  in
  let stats =
    match r.Engines.stats with
    | Some st -> [ ("stats", stats_json st) ]
    | None -> []
  in
  let metrics =
    match r.Engines.metrics with
    | Some m -> [ ("metrics", Obs.snapshot_json m) ]
    | None -> []
  in
  Json.Obj (base @ abort @ stats @ metrics)

let run_json engine r = run_json_named (Engines.engine_name engine) r

let solve_json ~instance ~bound engine r =
  match run_json engine r with
  | Json.Obj fields ->
    Json.Obj
      (("schema", Json.Str "rtlsat.solve/1")
       :: ("instance", Json.Str instance)
       :: ("bound", Json.Int bound)
       :: ("env", Rtlsat_obs.Env.fingerprint_json ())
       :: fields)
  | v -> v

let t1_row_json (row : Tables.t1_row) =
  Json.Obj
    [
      ("instance", Json.Str row.Tables.t1_label);
      ("verdict", Json.Str (verdict_string row.Tables.t1_type));
      ("relations", Json.Int row.Tables.t1_relations);
      ("learn_time_s", Json.Float row.Tables.t1_learn_time);
      ( "runs",
        Json.Arr
          [
            run_json Engines.Hdpll row.Tables.t1_hdpll;
            run_json Engines.Hdpll_p row.Tables.t1_hdpll_p;
          ] );
    ]

let t2_row_json (row : Tables.t2_row) =
  Json.Obj
    [
      ("instance", Json.Str row.Tables.t2_label);
      ("verdict", Json.Str (verdict_string row.Tables.t2_type));
      ("arith_ops", Json.Int row.Tables.t2_arith);
      ("bool_ops", Json.Int row.Tables.t2_bool);
      ( "runs",
        Json.Arr (List.map (fun (e, r) -> run_json e r) row.Tables.t2_runs) );
    ]

let table1_json ~scale rows =
  Json.Obj
    [
      ("schema", Json.Str "rtlsat.table1/1");
      ("scale", Json.Str scale);
      ("rows", Json.Arr (List.map t1_row_json rows));
    ]

let table2_json ~scale rows =
  Json.Obj
    [
      ("schema", Json.Str "rtlsat.table2/1");
      ("scale", Json.Str scale);
      ("rows", Json.Arr (List.map t2_row_json rows));
    ]

(* bmc_sweep rows: one JSON row per bound, with the incremental and
   from-scratch runs side by side under "engine/incr" / "engine/scratch"
   labels so [bench_rows] diffs them as distinct engines *)
let sweep_row_json (row : Tables.sweep_row) =
  let name suffix = Engines.engine_name row.Tables.sr_engine ^ suffix in
  List.map
    (fun ((step : Engines.sweep_step), scratch) ->
       let incr_json =
         match run_json_named (name "/incr") step.Engines.sw_run with
         | Json.Obj fields ->
           Json.Obj
             (fields
              @ [
                  ("carried_clauses", Json.Int step.Engines.sw_carried_clauses);
                  ( "carried_relations",
                    Json.Int step.Engines.sw_carried_relations );
                ])
         | v -> v
       in
       Json.Obj
         [
           ( "instance",
             Json.Str
               (Printf.sprintf "%s(%d)" row.Tables.sr_label
                  step.Engines.sw_bound) );
           ("bound", Json.Int step.Engines.sw_bound);
           ( "runs",
             Json.Arr [ incr_json; run_json_named (name "/scratch") scratch ] );
         ])
    row.Tables.sr_steps

let bmc_sweep_json ~scale rows =
  Json.Obj
    [
      ("schema", Json.Str "rtlsat.bmc_sweep/1");
      ("scale", Json.Str scale);
      ("rows", Json.Arr (List.concat_map sweep_row_json rows));
    ]

(* simplify rows: one JSON row per (instance, engine), with the
   simplify-on and simplify-off runs side by side under "engine/simp"
   / "engine/nosimp" labels so [bench_rows] diffs them as distinct
   engines — a verdict flip between the arms then shows up as a
   verdict change on one of them across baselines *)
let simp_row_json (row : Tables.simp_row) =
  let name suffix = Engines.engine_name row.Tables.sy_engine ^ suffix in
  Json.Obj
    [
      ("instance", Json.Str row.Tables.sy_label);
      ( "runs",
        Json.Arr
          [
            run_json_named (name "/simp") row.Tables.sy_on;
            run_json_named (name "/nosimp") row.Tables.sy_off;
          ] );
    ]

let simplify_json ~scale rows =
  Json.Obj
    [
      ("schema", Json.Str "rtlsat.simplify/1");
      ("scale", Json.Str scale);
      ("rows", Json.Arr (List.map simp_row_json rows));
    ]

let bench_json ~generated_at ~scale ~sections =
  Json.Obj
    [
      ("schema", Json.Str "rtlsat.bench/1");
      ("generated_at", Json.Str generated_at);
      ("scale", Json.Str scale);
      ("env", Rtlsat_obs.Env.fingerprint_json ());
      ("sections", Json.Obj sections);
    ]

(* ---- bench-diff: per-instance comparison of two rtlsat.bench/1
   artifacts (the [rtlsat bench-diff] subcommand) ---- *)

type bench_row = {
  br_section : string;
  br_instance : string;
  br_engine : string;
  br_verdict : string;
  br_time : float;
}

(* parallel rows: the requested engine solved sequentially vs raced
   as a -j N portfolio, side by side under "engine/j1" /
   "portfolio/jN" labels so [bench_rows] diffs both configurations;
   speedup = sequential wall / portfolio wall *)
type parallel_row = {
  pl_instance : string;
  pl_engine : Engines.engine;
  pl_j : int;
  pl_seq : Engines.run;
  pl_par : Engines.run;
  pl_winner : string option;
  pl_lineup : string list;
}

let parallel_row_json row =
  let speedup =
    if row.pl_par.Engines.time > 0.0 then
      row.pl_seq.Engines.time /. row.pl_par.Engines.time
    else 0.0
  in
  Json.Obj
    [
      ("instance", Json.Str row.pl_instance);
      ("j", Json.Int row.pl_j);
      ( "winner",
        match row.pl_winner with Some w -> Json.Str w | None -> Json.Null );
      ("lineup", Json.Arr (List.map (fun e -> Json.Str e) row.pl_lineup));
      ("speedup", Json.Float speedup);
      ( "runs",
        Json.Arr
          [
            run_json_named
              (Engines.engine_name row.pl_engine ^ "/j1")
              row.pl_seq;
            run_json_named
              (Printf.sprintf "portfolio/j%d" row.pl_j)
              row.pl_par;
          ] );
    ]

let parallel_json ~scale rows =
  Json.Obj
    [
      ("schema", Json.Str "rtlsat.parallel/1");
      ("scale", Json.Str scale);
      ("rows", Json.Arr (List.map parallel_row_json rows));
    ]

let bench_rows j =
  let member name j = Json.member name j in
  let str name j = Option.bind (member name j) Json.get_string in
  let schema = str "schema" j in
  if schema <> Some "rtlsat.bench/1" then
    invalid_arg
      (Printf.sprintf "bench_rows: expected schema rtlsat.bench/1, got %s"
         (match schema with Some s -> s | None -> "<none>"));
  let rows = ref [] in
  (match Option.bind (member "sections" j) Json.get_obj with
   | None -> ()
   | Some sections ->
     List.iter
       (fun (section, payload) ->
          match Option.bind (member "rows" payload) Json.get_list with
          | None -> ()
          | Some table_rows ->
            List.iter
              (fun row ->
                 match str "instance" row with
                 | None -> ()
                 | Some instance ->
                   (match Option.bind (member "runs" row) Json.get_list with
                    | None -> ()
                    | Some runs ->
                      List.iter
                        (fun run ->
                           match
                             ( str "engine" run,
                               str "verdict" run,
                               Option.bind (member "time_s" run) Json.get_float )
                           with
                           | Some engine, Some verdict, Some time ->
                             rows :=
                               {
                                 br_section = section;
                                 br_instance = instance;
                                 br_engine = engine;
                                 br_verdict = verdict;
                                 br_time = time;
                               }
                               :: !rows
                           | _ -> ())
                        runs))
              table_rows)
       sections);
  List.rev !rows

type diff_status = Regression | Improvement | Unchanged

type diff_entry = {
  de_section : string;
  de_instance : string;
  de_engine : string;
  de_old_verdict : string;
  de_new_verdict : string;
  de_old_time : float;
  de_new_time : float;
  de_status : diff_status;
  de_note : string;
}

type bench_diff = {
  bd_entries : diff_entry list;  (** instance order of the new artifact *)
  bd_only_old : (string * string * string) list;
  bd_only_new : (string * string * string) list;
  bd_regressions : int;
}

let solved = function "sat" | "unsat" -> true | _ -> false

let diff_rows ?(threshold = 0.20) ?(min_time = 0.05) old_rows new_rows =
  let key r = (r.br_section, r.br_instance, r.br_engine) in
  let old_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace old_tbl (key r) r) old_rows;
  let matched = Hashtbl.create 64 in
  let entries =
    List.filter_map
      (fun n ->
         match Hashtbl.find_opt old_tbl (key n) with
         | None -> None
         | Some o ->
           Hashtbl.replace matched (key n) ();
           let status, note =
             if o.br_verdict <> n.br_verdict then begin
               if solved o.br_verdict && not (solved n.br_verdict) then
                 ( Regression,
                   Printf.sprintf "verdict degraded: %s -> %s" o.br_verdict
                     n.br_verdict )
               else if solved o.br_verdict && solved n.br_verdict then
                 (* sat <-> unsat is a correctness alarm, not a slowdown *)
                 ( Regression,
                   Printf.sprintf "VERDICT FLIP: %s -> %s" o.br_verdict
                     n.br_verdict )
               else
                 ( Improvement,
                   Printf.sprintf "now solved: %s -> %s" o.br_verdict
                     n.br_verdict )
             end
             else begin
               (* same verdict: a slowdown only counts when it clears
                  both the relative threshold and the absolute noise
                  floor [min_time] *)
               let limit =
                 max (o.br_time *. (1.0 +. threshold)) (o.br_time +. min_time)
               in
               if n.br_time > limit then
                 ( Regression,
                   Printf.sprintf "%.3fs -> %.3fs (+%.0f%%)" o.br_time
                     n.br_time
                     ((n.br_time -. o.br_time) /. (max o.br_time 1e-9) *. 100.) )
               else if
                 o.br_time > n.br_time *. (1.0 +. threshold)
                 && o.br_time > n.br_time +. min_time
               then
                 ( Improvement,
                   Printf.sprintf "%.3fs -> %.3fs" o.br_time n.br_time )
               else (Unchanged, "")
             end
           in
           Some
             {
               de_section = n.br_section;
               de_instance = n.br_instance;
               de_engine = n.br_engine;
               de_old_verdict = o.br_verdict;
               de_new_verdict = n.br_verdict;
               de_old_time = o.br_time;
               de_new_time = n.br_time;
               de_status = status;
               de_note = note;
             })
      new_rows
  in
  let only_new =
    List.filter_map
      (fun n -> if Hashtbl.mem old_tbl (key n) then None else Some (key n))
      new_rows
  in
  let only_old =
    List.filter_map
      (fun o -> if Hashtbl.mem matched (key o) then None else Some (key o))
      old_rows
  in
  {
    bd_entries = entries;
    bd_only_old = only_old;
    bd_only_new = only_new;
    bd_regressions =
      List.length (List.filter (fun e -> e.de_status = Regression) entries);
  }

let bench_diff ?threshold ?min_time old_json new_json =
  diff_rows ?threshold ?min_time (bench_rows old_json) (bench_rows new_json)

let print_bench_diff fmt d =
  let pp_key fmt (s, i, e) = Format.fprintf fmt "%s/%s [%s]" s i e in
  let by_status st =
    List.filter (fun e -> e.de_status = st) d.bd_entries
  in
  let section title entries =
    if entries <> [] then begin
      Format.fprintf fmt "%s:@." title;
      List.iter
        (fun e ->
           Format.fprintf fmt "  %a  %s@." pp_key
             (e.de_section, e.de_instance, e.de_engine)
             e.de_note)
        entries
    end
  in
  section "REGRESSIONS" (by_status Regression);
  section "improvements" (by_status Improvement);
  if d.bd_only_old <> [] then begin
    Format.fprintf fmt "only in OLD:@.";
    List.iter (fun k -> Format.fprintf fmt "  %a@." pp_key k) d.bd_only_old
  end;
  if d.bd_only_new <> [] then begin
    Format.fprintf fmt "only in NEW:@.";
    List.iter (fun k -> Format.fprintf fmt "  %a@." pp_key k) d.bd_only_new
  end;
  Format.fprintf fmt
    "%d instances compared: %d regression%s, %d improvement%s, %d unchanged@."
    (List.length d.bd_entries) d.bd_regressions
    (if d.bd_regressions = 1 then "" else "s")
    (List.length (by_status Improvement))
    (if List.length (by_status Improvement) = 1 then "" else "s")
    (List.length (by_status Unchanged))

(* ---- bench-history ---- *)

type history_point = {
  hp_label : string;
  hp_generated_at : string;
  hp_section : string;
  hp_runs : int;
  hp_solved : int;
  hp_timeouts : int;
  hp_aborts : int;
  hp_total_time : float;
}

let bench_history artifacts =
  List.concat_map
    (fun (label, j) ->
       let generated_at =
         match Option.bind (Json.member "generated_at" j) Json.get_string with
         | Some s -> s
         | None -> ""
       in
       let rows = bench_rows j in
       let sections =
         List.fold_left
           (fun acc r ->
              if List.mem r.br_section acc then acc else r.br_section :: acc)
           [] rows
         |> List.rev
       in
       List.map
         (fun section ->
            let rs = List.filter (fun r -> r.br_section = section) rows in
            let count p = List.length (List.filter p rs) in
            {
              hp_label = label;
              hp_generated_at = generated_at;
              hp_section = section;
              hp_runs = List.length rs;
              hp_solved = count (fun r -> solved r.br_verdict);
              hp_timeouts = count (fun r -> r.br_verdict = "timeout");
              hp_aborts =
                count (fun r ->
                    (not (solved r.br_verdict)) && r.br_verdict <> "timeout");
              hp_total_time =
                List.fold_left (fun t r -> t +. r.br_time) 0.0 rs;
            })
         sections)
    artifacts

let history_point_json p =
  Json.Obj
    [
      ("label", Json.Str p.hp_label);
      ("generated_at", Json.Str p.hp_generated_at);
      ("runs", Json.Int p.hp_runs);
      ("solved", Json.Int p.hp_solved);
      ("timeouts", Json.Int p.hp_timeouts);
      ("aborts", Json.Int p.hp_aborts);
      ("total_time_s", Json.Float p.hp_total_time);
    ]

let history_sections points =
  List.fold_left
    (fun acc p ->
       if List.mem p.hp_section acc then acc else p.hp_section :: acc)
    [] points
  |> List.rev

let bench_history_json points =
  Json.Obj
    [
      ("schema", Json.Str "rtlsat.bench_history/1");
      ( "sections",
        Json.Obj
          (List.map
             (fun section ->
                ( section,
                  Json.Arr
                    (List.filter_map
                       (fun p ->
                          if p.hp_section = section then
                            Some (history_point_json p)
                          else None)
                       points) ))
             (history_sections points)) );
    ]

let print_bench_history fmt points =
  let width =
    List.fold_left (fun w p -> max w (String.length p.hp_label)) 8 points
  in
  List.iter
    (fun section ->
       let ps = List.filter (fun p -> p.hp_section = section) points in
       Format.fprintf fmt "%s:@." section;
       Format.fprintf fmt "  %-*s  %5s  %6s  %7s  %6s  %9s@." width "artifact"
         "runs" "solved" "timeout" "abort" "total_s";
       List.iter
         (fun p ->
            Format.fprintf fmt "  %-*s  %5d  %6d  %7d  %6d  %9.3f@." width
              p.hp_label p.hp_runs p.hp_solved p.hp_timeouts p.hp_aborts
              p.hp_total_time)
         ps)
    (history_sections points)

let fuzz_json ~seed ~count ~instances ~sat ~unsat ~timeouts ~wall_s ~failures
    ~metrics =
  let metrics =
    match metrics with
    | Some m -> [ ("metrics", Obs.snapshot_json m) ]
    | None -> []
  in
  Json.Obj
    ([
       ("schema", Json.Str "rtlsat.fuzz/1");
       ("seed", Json.Int seed);
       ("count", Json.Int count);
       ("instances", Json.Int instances);
       ("sat", Json.Int sat);
       ("unsat", Json.Int unsat);
       ("timeouts", Json.Int timeouts);
       ("failures", Json.Int (List.length failures));
       ("failure_cases", Json.Arr failures);
       ("wall_s", Json.Float wall_s);
     ]
     @ metrics)
