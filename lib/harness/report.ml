module Json = Rtlsat_obs.Json
module Obs = Rtlsat_obs.Obs
module Solver = Rtlsat_core.Solver

let verdict_string = function
  | Engines.Sat -> "sat"
  | Engines.Unsat -> "unsat"
  | Engines.Timeout -> "timeout"
  | Engines.Abort _ -> "abort"

let stats_json (st : Solver.stats) =
  Json.Obj
    [
      ("decisions", Json.Int st.Solver.decisions);
      ("conflicts", Json.Int st.Solver.conflicts);
      ("propagations", Json.Int st.Solver.propagations);
      ("learned", Json.Int st.Solver.learned);
      ("jconflicts", Json.Int st.Solver.jconflicts);
      ("final_checks", Json.Int st.Solver.final_checks);
      ("relations", Json.Int st.Solver.relations);
      ("learn_time_s", Json.Float st.Solver.learn_time);
      ("solve_time_s", Json.Float st.Solver.solve_time);
    ]

let run_json engine (r : Engines.run) =
  let base =
    [
      ("engine", Json.Str (Engines.engine_name engine));
      ("verdict", Json.Str (verdict_string r.Engines.verdict));
      ("time_s", Json.Float r.Engines.time);
      ("decisions", Json.Int r.Engines.decisions);
      ("conflicts", Json.Int r.Engines.conflicts);
      ("relations", Json.Int r.Engines.relations);
      ("learn_time_s", Json.Float r.Engines.learn_time);
    ]
  in
  let abort =
    match r.Engines.verdict with
    | Engines.Abort msg -> [ ("abort_reason", Json.Str msg) ]
    | _ -> []
  in
  let stats =
    match r.Engines.stats with
    | Some st -> [ ("stats", stats_json st) ]
    | None -> []
  in
  let metrics =
    match r.Engines.metrics with
    | Some m -> [ ("metrics", Obs.snapshot_json m) ]
    | None -> []
  in
  Json.Obj (base @ abort @ stats @ metrics)

let solve_json ~instance ~bound engine r =
  match run_json engine r with
  | Json.Obj fields ->
    Json.Obj
      (("schema", Json.Str "rtlsat.solve/1")
       :: ("instance", Json.Str instance)
       :: ("bound", Json.Int bound)
       :: fields)
  | v -> v

let t1_row_json (row : Tables.t1_row) =
  Json.Obj
    [
      ("instance", Json.Str row.Tables.t1_label);
      ("verdict", Json.Str (verdict_string row.Tables.t1_type));
      ("relations", Json.Int row.Tables.t1_relations);
      ("learn_time_s", Json.Float row.Tables.t1_learn_time);
      ( "runs",
        Json.Arr
          [
            run_json Engines.Hdpll row.Tables.t1_hdpll;
            run_json Engines.Hdpll_p row.Tables.t1_hdpll_p;
          ] );
    ]

let t2_row_json (row : Tables.t2_row) =
  Json.Obj
    [
      ("instance", Json.Str row.Tables.t2_label);
      ("verdict", Json.Str (verdict_string row.Tables.t2_type));
      ("arith_ops", Json.Int row.Tables.t2_arith);
      ("bool_ops", Json.Int row.Tables.t2_bool);
      ( "runs",
        Json.Arr (List.map (fun (e, r) -> run_json e r) row.Tables.t2_runs) );
    ]

let table1_json ~scale rows =
  Json.Obj
    [
      ("schema", Json.Str "rtlsat.table1/1");
      ("scale", Json.Str scale);
      ("rows", Json.Arr (List.map t1_row_json rows));
    ]

let table2_json ~scale rows =
  Json.Obj
    [
      ("schema", Json.Str "rtlsat.table2/1");
      ("scale", Json.Str scale);
      ("rows", Json.Arr (List.map t2_row_json rows));
    ]

let bench_json ~generated_at ~scale ~sections =
  Json.Obj
    [
      ("schema", Json.Str "rtlsat.bench/1");
      ("generated_at", Json.Str generated_at);
      ("scale", Json.Str scale);
      ("sections", Json.Obj sections);
    ]

let fuzz_json ~seed ~count ~instances ~sat ~unsat ~timeouts ~wall_s ~failures
    ~metrics =
  let metrics =
    match metrics with
    | Some m -> [ ("metrics", Obs.snapshot_json m) ]
    | None -> []
  in
  Json.Obj
    ([
       ("schema", Json.Str "rtlsat.fuzz/1");
       ("seed", Json.Int seed);
       ("count", Json.Int count);
       ("instances", Json.Int instances);
       ("sat", Json.Int sat);
       ("unsat", Json.Int unsat);
       ("timeouts", Json.Int timeouts);
       ("failures", Json.Int (List.length failures));
       ("failure_cases", Json.Arr failures);
       ("wall_s", Json.Float wall_s);
     ]
     @ metrics)
