module Bmc = Rtlsat_bmc.Bmc
module Unroll = Rtlsat_bmc.Unroll
module Structure = Rtlsat_rtl.Structure
module Obs = Rtlsat_obs.Obs
module Json = Rtlsat_obs.Json

type engine = Engine.id =
  | Hdpll
  | Hdpll_s
  | Hdpll_sp
  | Hdpll_p
  | Bitblast
  | Lazy_cdp

let engine_name = Engine.name_of
let table2_engines = [ Hdpll; Hdpll_s; Hdpll_sp; Bitblast; Lazy_cdp ]

type verdict = Engine.verdict = Sat | Unsat | Timeout | Abort of string

type run = Engine.run = {
  verdict : verdict;
  time : float;
  relations : int;
  learn_time : float;
  decisions : int;
  conflicts : int;
  stats : Rtlsat_core.Solver.stats option;
  metrics : Rtlsat_obs.Obs.snapshot option;
}

let verdict_symbol = Engine.verdict_symbol

let run_instance ?(req = Req.default) engine inst =
  let (module M : Engine.S) = Engine.of_id engine in
  M.solve ~req (M.create ~req inst)

type sweep_step = Engine.sweep_step = {
  sw_bound : int;
  sw_run : run;
  sw_carried_clauses : int;
  sw_carried_relations : int;
}

(* Per-bound sweep telemetry: point the heartbeat context at the
   current bound and bracket the solve with sweep.bound/sweep.result
   trace events, so a live monitor can tell which bound a long sweep
   is stuck on. *)
let sweep_with_obs obs ~total ~index ~bound f =
  if obs.Obs.enabled then begin
    Obs.set_context obs
      [
        ("bound", Json.Int bound);
        ("bound_index", Json.Int index);
        ("bounds_total", Json.Int total);
      ];
    if Obs.tracing obs then
      Obs.event obs "sweep.bound"
        [
          ("bound", Json.Int bound);
          ("index", Json.Int index);
          ("total", Json.Int total);
        ]
  end;
  let step = f () in
  if obs.Obs.enabled then begin
    if Obs.tracing obs then begin
      let verdict =
        match step.sw_run.verdict with
        | Sat -> "sat"
        | Unsat -> "unsat"
        | Timeout -> "timeout"
        | Abort _ -> "abort"
      in
      Obs.event obs "sweep.result"
        [
          ("bound", Json.Int bound);
          ("verdict", Json.Str verdict);
          ("time_s", Json.Float step.sw_run.time);
          ("carried_clauses", Json.Int step.sw_carried_clauses);
        ]
    end;
    if index = total - 1 then Obs.set_context obs []
  end;
  step

let run_sweep ?(req = Req.default) ?semantics engine source ~prop ~bounds =
  let (module M : Engine.S) = Engine.of_id engine in
  let sess = M.session ~req ?semantics source ~prop in
  let nbounds = List.length bounds in
  List.mapi
    (fun index bound ->
       sweep_with_obs req.Req.obs ~total:nbounds ~index ~bound @@ fun () ->
       M.sweep_step ~req sess ~bound)
    bounds

let op_counts (inst : Bmc.instance) =
  Structure.op_counts (Unroll.combo inst.Bmc.unrolled)
