module Bmc = Rtlsat_bmc.Bmc
module Unroll = Rtlsat_bmc.Unroll
module E = Rtlsat_constr.Encode
module Solver = Rtlsat_core.Solver
module Bitblast = Rtlsat_baselines.Bitblast
module Lazy_cdp = Rtlsat_baselines.Lazy_cdp
module Structure = Rtlsat_rtl.Structure
module Obs = Rtlsat_obs.Obs
module Json = Rtlsat_obs.Json
module Mono = Rtlsat_obs.Mono

type engine = Hdpll | Hdpll_s | Hdpll_sp | Hdpll_p | Bitblast | Lazy_cdp

let engine_name = function
  | Hdpll -> "hdpll"
  | Hdpll_s -> "hdpll+s"
  | Hdpll_sp -> "hdpll+s+p"
  | Hdpll_p -> "hdpll+p"
  | Bitblast -> "bitblast"
  | Lazy_cdp -> "lazy-cdp"

let table2_engines = [ Hdpll; Hdpll_s; Hdpll_sp; Bitblast; Lazy_cdp ]

type verdict = Sat | Unsat | Timeout | Abort of string

type run = {
  verdict : verdict;
  time : float;
  relations : int;
  learn_time : float;
  decisions : int;
  conflicts : int;
  stats : Solver.stats option;
  metrics : Obs.snapshot option;
}

let verdict_symbol = function
  | Sat -> "S"
  | Unsat -> "U"
  | Timeout -> "-to-"
  | Abort _ -> "-A-"

let solver_options engine ?learn_threshold ?dump_graph ?(dump_graph_max = 10)
    ?(split = true) ?(simplify = true) ?(inprocess = 0) ?cancel ?on_learn
    ~deadline ~obs () =
  let base =
    match engine with
    | Hdpll -> Solver.hdpll
    | Hdpll_s -> Solver.hdpll_s
    | Hdpll_sp -> Solver.hdpll_sp
    | Hdpll_p -> Solver.hdpll_p
    | Bitblast | Lazy_cdp -> invalid_arg "solver_options"
  in
  {
    base with
    Solver.deadline;
    Solver.learn_threshold = learn_threshold;
    Solver.obs = obs;
    Solver.dump_graph;
    Solver.dump_graph_max;
    Solver.split;
    Solver.simplify;
    Solver.inprocess;
    Solver.cancel =
      (match cancel with Some c -> c | None -> base.Solver.cancel);
    Solver.on_learn = on_learn;
  }

let run_instance ?(timeout = 1200.0) ?learn_threshold ?(obs = Obs.disabled)
    ?dump_graph ?dump_graph_max ?split ?(simplify = true) ?(inprocess = 0)
    ?cancel ?on_learn engine (inst : Bmc.instance) =
  let t0 = Mono.now () in
  let deadline = t0 +. timeout in
  let elapsed () = Mono.now () -. t0 in
  let snap () = if obs.Obs.enabled then Some (Obs.snapshot obs) else None in
  match engine with
  | Hdpll | Hdpll_s | Hdpll_sp | Hdpll_p ->
    let enc =
      Obs.span obs Obs.Encode (fun () ->
          let enc = E.encode (Unroll.combo inst.Bmc.unrolled) in
          E.assume_bool enc inst.Bmc.violation true;
          enc)
    in
    let options =
      solver_options engine ?learn_threshold ?dump_graph ?dump_graph_max
        ?split ~simplify ~inprocess ?cancel ?on_learn ~deadline ~obs ()
    in
    let { Solver.result; stats; _ } = Solver.solve ~options enc in
    let mk verdict =
      {
        verdict;
        time = elapsed ();
        relations = stats.Solver.relations;
        learn_time = stats.Solver.learn_time;
        decisions = stats.Solver.decisions;
        conflicts = stats.Solver.conflicts;
        stats = Some stats;
        metrics = snap ();
      }
    in
    (match result with
     | Solver.Unsat -> mk Unsat
     | Solver.Timeout -> mk Timeout
     | Solver.Sat m ->
       if Bmc.witness_ok inst (fun n -> m.(E.var enc n)) then mk Sat
       else mk (Abort "witness failed replay"))
  | Bitblast ->
    let bb =
      Obs.span obs Obs.Encode (fun () ->
          let bb = Bitblast.encode (Unroll.combo inst.Bmc.unrolled) in
          Bitblast.assume_bool bb inst.Bmc.violation true;
          bb)
    in
    (* one-shot solve: the violation selector was added as a unit
       clause above, not an assumption, and the encoding never grows —
       so full preprocessing including variable elimination is sound *)
    if simplify then
      Obs.span obs Obs.Simplify (fun () ->
          Bitblast.simplify ~elim:true bb;
          if obs.Obs.enabled then begin
            let st = Bitblast.simp_stats bb in
            let open Rtlsat_simplify.Simp in
            Obs.add obs "simplify.subsumed" st.subsumed;
            Obs.add obs "simplify.strengthened" st.strengthened;
            Obs.add obs "simplify.eliminated" st.eliminated;
            Obs.add obs "simplify.probed" st.probed;
            if Obs.tracing obs then
              Obs.event obs "simplify.pass"
                [ ("engine", Json.Str "cdcl");
                  ("subsumed", Json.Int st.subsumed);
                  ("strengthened", Json.Int st.strengthened);
                  ("eliminated", Json.Int st.eliminated);
                  ("probed", Json.Int st.probed);
                  ("equivs", Json.Int st.equivs) ]
          end);
    let verdict =
      match Bitblast.solve ~deadline ~inprocess ?cancel bb with
      | Bitblast.Unsat -> Unsat
      | Bitblast.Timeout -> Timeout
      | Bitblast.Sat ->
        if Bmc.witness_ok inst (Bitblast.node_value bb) then Sat
        else Abort "witness failed replay"
    in
    {
      verdict;
      time = elapsed ();
      relations = 0;
      learn_time = 0.0;
      decisions = 0;
      conflicts = Rtlsat_sat.Cdcl.n_conflicts (Bitblast.solver bb);
      stats = None;
      metrics = snap ();
    }
  | Lazy_cdp ->
    let enc =
      Obs.span obs Obs.Encode (fun () ->
          let enc = E.encode (Unroll.combo inst.Bmc.unrolled) in
          E.assume_bool enc inst.Bmc.violation true;
          enc)
    in
    let result, st = Lazy_cdp.solve ~deadline ?cancel enc.E.problem in
    let verdict =
      match result with
      | Lazy_cdp.Unsat -> Unsat
      | Lazy_cdp.Timeout -> Timeout
      | Lazy_cdp.Sat m ->
        if Bmc.witness_ok inst (fun n -> m.(E.var enc n)) then Sat
        else Abort "witness failed replay"
    in
    {
      verdict;
      time = elapsed ();
      relations = 0;
      learn_time = 0.0;
      decisions = st.Lazy_cdp.theory_calls;
      conflicts = st.Lazy_cdp.blocking_clauses;
      stats = None;
      metrics = snap ();
    }

(* ---- session-based bound sweeps ---- *)

type sweep_step = {
  sw_bound : int;
  sw_run : run;
  sw_carried_clauses : int;
  sw_carried_relations : int;
}

(* Per-bound sweep telemetry: point the heartbeat context at the
   current bound and bracket the solve with sweep.bound/sweep.result
   trace events, so a live monitor can tell which bound a long sweep
   is stuck on. *)
let sweep_with_obs obs ~total ~index ~bound f =
  if obs.Obs.enabled then begin
    Obs.set_context obs
      [
        ("bound", Json.Int bound);
        ("bound_index", Json.Int index);
        ("bounds_total", Json.Int total);
      ];
    if Obs.tracing obs then
      Obs.event obs "sweep.bound"
        [
          ("bound", Json.Int bound);
          ("index", Json.Int index);
          ("total", Json.Int total);
        ]
  end;
  let step = f () in
  if obs.Obs.enabled then begin
    if Obs.tracing obs then begin
      let verdict =
        match step.sw_run.verdict with
        | Sat -> "sat"
        | Unsat -> "unsat"
        | Timeout -> "timeout"
        | Abort _ -> "abort"
      in
      Obs.event obs "sweep.result"
        [
          ("bound", Json.Int bound);
          ("verdict", Json.Str verdict);
          ("time_s", Json.Float step.sw_run.time);
          ("carried_clauses", Json.Int step.sw_carried_clauses);
        ]
    end;
    if index = total - 1 then Obs.set_context obs []
  end;
  step

let run_sweep ?(timeout = 1200.0) ?learn_threshold ?(obs = Obs.disabled)
    ?split ?(simplify = true) ?(inprocess = 0) ?cancel ?semantics engine
    source ~prop ~bounds =
  let snap () = if obs.Obs.enabled then Some (Obs.snapshot obs) else None in
  let nbounds = List.length bounds in
  match engine with
  | Hdpll | Hdpll_s | Hdpll_sp | Hdpll_p ->
    let sw = Bmc.sweep source ~prop ?semantics () in
    let enc =
      Obs.span obs Obs.Encode (fun () ->
          E.encode (Unroll.combo (Bmc.sweep_unrolled sw)))
    in
    (* the per-call deadline is passed to [Session.solve]; the options
       deadline is a never-fires placeholder *)
    let options =
      solver_options engine ?learn_threshold ?split ~simplify ~inprocess
        ?cancel ~deadline:infinity ~obs ()
    in
    let sess = Solver.Session.create ~options enc in
    List.mapi
      (fun index bound ->
         sweep_with_obs obs ~total:nbounds ~index ~bound @@ fun () ->
         let t0 = Mono.now () in
         let vnode = Bmc.sweep_violation sw ~bound in
         Obs.span obs Obs.Encode (fun () -> E.extend enc);
         let r =
           Solver.Session.solve
             ~assumptions:[| Rtlsat_constr.Types.Pos (E.var enc vnode) |]
             ~deadline:(t0 +. timeout) sess
         in
         let stats = r.Solver.Session.outcome.Solver.stats in
         let mk verdict =
           {
             verdict;
             time = Mono.now () -. t0;
             relations = stats.Solver.relations;
             learn_time = stats.Solver.learn_time;
             decisions = stats.Solver.decisions;
             conflicts = stats.Solver.conflicts;
             stats = Some stats;
             metrics = snap ();
           }
         in
         let sw_run =
           match r.Solver.Session.outcome.Solver.result with
           | Solver.Unsat -> mk Unsat
           | Solver.Timeout -> mk Timeout
           | Solver.Sat m ->
             let inst = Bmc.sweep_instance sw ~bound in
             if Bmc.witness_ok inst (fun n -> m.(E.var enc n)) then mk Sat
             else mk (Abort "witness failed replay")
         in
         {
           sw_bound = bound;
           sw_run;
           sw_carried_clauses = r.Solver.Session.carried_clauses;
           sw_carried_relations = r.Solver.Session.carried_relations;
         })
      bounds
  | Bitblast ->
    let sw = Bmc.sweep source ~prop ?semantics () in
    let bb =
      Obs.span obs Obs.Encode (fun () ->
          Bitblast.encode (Unroll.combo (Bmc.sweep_unrolled sw)))
    in
    let sat = Bitblast.solver bb in
    List.mapi
      (fun index bound ->
         sweep_with_obs obs ~total:nbounds ~index ~bound @@ fun () ->
         let t0 = Mono.now () in
         let vnode = Bmc.sweep_violation sw ~bound in
         Obs.span obs Obs.Encode (fun () -> Bitblast.extend bb);
         (* CDCL keeps no learned-clause counter distinct from its
            clause database, so conflicts-so-far stands in for the
            lemmas carried into this call *)
         let carried = Rtlsat_sat.Cdcl.n_conflicts sat in
         (* incremental sweep: the encoding keeps growing and literals
            are assumed per bound, so variable elimination stays off —
            subsumption, probing and equivalent-literal substitution
            remain sound (assumptions and later clauses are rewritten
            through the substitution) *)
         if simplify then
           Obs.span obs Obs.Simplify (fun () -> Bitblast.simplify bb);
         let verdict =
           match
             Bitblast.solve ~deadline:(t0 +. timeout) ~inprocess ?cancel
               ~assumptions:[ Bitblast.bool_lit bb vnode ] bb
           with
           | Bitblast.Unsat -> Unsat
           | Bitblast.Timeout -> Timeout
           | Bitblast.Sat ->
             let inst = Bmc.sweep_instance sw ~bound in
             if Bmc.witness_ok inst (Bitblast.node_value bb) then Sat
             else Abort "witness failed replay"
         in
         let sw_run =
           {
             verdict;
             time = Mono.now () -. t0;
             relations = 0;
             learn_time = 0.0;
             decisions = 0;
             conflicts = Rtlsat_sat.Cdcl.n_conflicts sat - carried;
             stats = None;
             metrics = snap ();
           }
         in
         {
           sw_bound = bound;
           sw_run;
           sw_carried_clauses = carried;
           sw_carried_relations = 0;
         })
      bounds
  | Lazy_cdp ->
    (* no incremental interface: each bound is an honest fresh solve
       over the shared unroll, for a uniform six-engine oracle *)
    let sw = Bmc.sweep source ~prop ?semantics () in
    List.mapi
      (fun index bound ->
         sweep_with_obs obs ~total:nbounds ~index ~bound @@ fun () ->
         let t0 = Mono.now () in
         let vnode = Bmc.sweep_violation sw ~bound in
         let enc =
           Obs.span obs Obs.Encode (fun () ->
               let enc = E.encode (Unroll.combo (Bmc.sweep_unrolled sw)) in
               E.assume_bool enc vnode true;
               enc)
         in
         let result, st = Lazy_cdp.solve ~deadline:(t0 +. timeout) ?cancel enc.E.problem in
         let verdict =
           match result with
           | Lazy_cdp.Unsat -> Unsat
           | Lazy_cdp.Timeout -> Timeout
           | Lazy_cdp.Sat m ->
             let inst = Bmc.sweep_instance sw ~bound in
             if Bmc.witness_ok inst (fun n -> m.(E.var enc n)) then Sat
             else Abort "witness failed replay"
         in
         let sw_run =
           {
             verdict;
             time = Mono.now () -. t0;
             relations = 0;
             learn_time = 0.0;
             decisions = st.Lazy_cdp.theory_calls;
             conflicts = st.Lazy_cdp.blocking_clauses;
             stats = None;
             metrics = snap ();
           }
         in
         { sw_bound = bound; sw_run; sw_carried_clauses = 0; sw_carried_relations = 0 })
      bounds

let op_counts (inst : Bmc.instance) =
  Structure.op_counts (Unroll.combo inst.Bmc.unrolled)
