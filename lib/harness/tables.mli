(** Regeneration of the paper's two evaluation tables.

    [`Scaled] uses reduced bound lists and timeout so the whole suite
    runs in minutes on a laptop; [`Full] uses the paper's exact bounds
    (up to 400 time frames) and its 1200-second timeout. *)

type scale = [ `Scaled | `Full ]

val scale_name : scale -> string
(** ["scaled"] / ["full"], as used in JSON reports. *)

type t1_row = {
  t1_label : string;
  t1_type : Engines.verdict;   (** from the HDPLL+P run *)
  t1_relations : int;
  t1_learn_time : float;
  t1_hdpll : Engines.run;
  t1_hdpll_p : Engines.run;
}

val table1_instances : scale -> (string * string * int) list
(** (circuit, property, bound) triples of Table 1 rows. *)

val run_table1 : ?timeout:float -> ?metrics:bool -> scale -> t1_row list
(** [metrics] (default false) attaches a fresh observability handle to
    every run, filling [Engines.run.metrics] for JSON reports. *)

val print_table1 : Format.formatter -> t1_row list -> unit

type t2_row = {
  t2_label : string;
  t2_type : Engines.verdict;
  t2_arith : int;
  t2_bool : int;
  t2_runs : (Engines.engine * Engines.run) list;
}

val table2_instances : scale -> (string * string * int) list

val run_table2 :
  ?timeout:float -> ?metrics:bool -> ?engines:Engines.engine list -> scale -> t2_row list

val print_table2 : Format.formatter -> t2_row list -> unit

val run_row :
  ?timeout:float ->
  ?metrics:bool ->
  engines:Engines.engine list ->
  string * string * int ->
  t2_row
(** Run one instance across engines (used by the CLI). *)

val extension_instances : (string * string * int) list
(** BMC instances over the suite-extension circuits (b03, b06, b07,
    b09, b10, b11) — not part of the paper's tables. *)

val run_extension :
  ?timeout:float -> ?metrics:bool -> ?engines:Engines.engine list -> unit -> t2_row list

val wide_wrap_cases : (string * int) list
(** (kind, width) pairs of the wide_wrap family: wrap-around add, sub
    and mul-by-const corners at widths 32, 48 and 61.  Each case is a
    one-frame Sat instance whose only witness sits at a wrap corner —
    the workload class behind the w61 slow-ICP pathology. *)

val wide_wrap_label : string * int -> string
(** e.g. ["wide_add_w61"]. *)

val wide_wrap_instance : string * int -> Rtlsat_bmc.Bmc.instance

val run_wide_wrap :
  ?timeout:float ->
  ?metrics:bool ->
  ?engines:Engines.engine list ->
  unit ->
  t2_row list
(** Run the whole family (default: the four HDPLL configurations,
    20 s timeout). *)

type sweep_row = {
  sr_label : string;           (** e.g. ["b13_5"] *)
  sr_engine : Engines.engine;
  sr_steps : (Engines.sweep_step * Engines.run) list;
      (** per bound: the incremental step and its from-scratch twin *)
}

val bmc_sweep_cases : scale -> (string * string * int list) list
(** (circuit, property, bounds) of the bmc_sweep bench family. *)

val bmc_sweep_engines : Engines.engine list
(** Default engines of the family: HDPLL, HDPLL+S+P and the eager
    bit-blast baseline. *)

val run_bmc_sweep :
  ?timeout:float ->
  ?metrics:bool ->
  ?engines:Engines.engine list ->
  scale ->
  sweep_row list
(** Sweep every case's bounds through one solver session per engine
    ({!Engines.run_sweep}) and re-solve each bound from scratch for
    comparison.  [timeout] is a per-bound budget. *)

val print_bmc_sweep : Format.formatter -> sweep_row list -> unit

type simp_row = {
  sy_label : string;           (** e.g. ["b13_1(10)"] *)
  sy_engine : Engines.engine;
  sy_on : Engines.run;   (** simplify on (the default configuration) *)
  sy_off : Engines.run;  (** simplify off (the seed solver's behaviour) *)
}

val simplify_cases : scale -> (string * string * int) list
(** (circuit, property, bound) of the simplify bench family. *)

val simplify_engines : Engines.engine list
(** Default engines of the family: the hybrid HDPLL+S+P configuration
    and the eager bit-blast baseline — one arm per clause database the
    pre/inprocessing pipeline touches. *)

val run_simplify :
  ?timeout:float ->
  ?metrics:bool ->
  ?engines:Engines.engine list ->
  scale ->
  simp_row list
(** Solve every case twice per engine, simplification on and off.
    [metrics] defaults to [true] (unlike the other families) so the
    simplify.* counters always land in the artifact — the family's
    whole point is pinning the database reduction. *)

val print_simplify : Format.formatter -> simp_row list -> unit

val print_table2_csv : Format.formatter -> t2_row list -> unit
(** Machine-readable variant (label, result, ops, one time column per
    engine; timeouts as empty cells). *)
