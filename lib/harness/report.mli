(** The one JSON schema for every machine-readable result this repo
    emits — [rtlsat solve --stats-json], [rtlsat table1/table2 --json]
    and the bench harness's [BENCH_<timestamp>.json] perf-trajectory
    artifact all go through these serializers.  The schema is
    documented in docs/OBSERVABILITY.md; bump the ["schema"] tags when
    changing shapes. *)

module Json = Rtlsat_obs.Json

val verdict_string : Engines.verdict -> string
(** ["sat"], ["unsat"], ["timeout"], ["abort"]. *)

val stats_json : Rtlsat_core.Solver.stats -> Json.t
(** Every §5 counter: decisions, conflicts, propagations, learned,
    jconflicts, final_checks, splits, relations, learn_time_s,
    solve_time_s. *)

val run_json_named : string -> Engines.run -> Json.t
(** Like {!run_json} with an explicit engine label — e.g.
    ["hdpll+s+p/incr"] vs ["hdpll+s+p/scratch"] in bmc_sweep rows. *)

val run_json : Engines.engine -> Engines.run -> Json.t
(** One engine run: engine, verdict, time_s, plus [stats]/[metrics]
    objects when present. *)

val solve_json : instance:string -> bound:int -> Engines.engine -> Engines.run -> Json.t
(** Top-level object of [rtlsat solve --stats-json]
    (schema ["rtlsat.solve/1"]); carries the {!Rtlsat_obs.Env}
    fingerprint under ["env"]. *)

val t1_row_json : Tables.t1_row -> Json.t
val t2_row_json : Tables.t2_row -> Json.t

val table1_json : scale:string -> Tables.t1_row list -> Json.t
(** Schema ["rtlsat.table1/1"]. *)

val table2_json : scale:string -> Tables.t2_row list -> Json.t
(** Schema ["rtlsat.table2/1"]. *)

val sweep_row_json : Tables.sweep_row -> Json.t list
(** One JSON row per bound; each row's ["runs"] pairs the incremental
    session run (["<engine>/incr"], with carried-clause / relation
    counters) with its from-scratch twin (["<engine>/scratch"]). *)

val bmc_sweep_json : scale:string -> Tables.sweep_row list -> Json.t
(** The ["rtlsat.bmc_sweep/1"] section — shaped so {!bench_rows} picks
    the per-bound runs up for {!bench_diff}. *)

val simplify_json : scale:string -> Tables.simp_row list -> Json.t
(** The ["rtlsat.simplify/1"] section: one row per (instance, engine),
    its ["runs"] pairing the simplify-on arm (["<engine>/simp"]) with
    the simplify-off arm (["<engine>/nosimp"]) so {!bench_diff} flags
    a verdict flip or slowdown on either configuration. *)

(** One parallel-portfolio comparison: the requested engine solved
    sequentially ([pl_seq], labelled ["<engine>/j1"]) vs raced as a
    [-j pl_j] portfolio ([pl_par], labelled ["portfolio/j<N>"] — wall
    clock of the whole race, winner's verdict). *)
type parallel_row = {
  pl_instance : string;
  pl_engine : Engines.engine;  (** the requested (sequential) engine *)
  pl_j : int;
  pl_seq : Engines.run;
  pl_par : Engines.run;
  pl_winner : string option;   (** winning engine's name, if any *)
  pl_lineup : string list;     (** engine names raced *)
}

val parallel_json : scale:string -> parallel_row list -> Json.t
(** The ["rtlsat.parallel/1"] section: per row, both configurations
    under ["runs"] (so {!bench_rows} flags a verdict flip or slowdown
    on either) plus ["winner"], ["lineup"] and ["speedup"] =
    sequential wall / portfolio wall. *)

val bench_json :
  generated_at:string ->
  scale:string ->
  sections:(string * Json.t) list ->
  Json.t
(** The perf-trajectory artifact (schema ["rtlsat.bench/1"]):
    [sections] maps section names (["table1"], ["table2"], …) to
    their [table*_json] payloads.  Carries the {!Rtlsat_obs.Env}
    fingerprint under ["env"], so every committed baseline is
    self-describing. *)

(* ---- bench-diff ---- *)

type bench_row = {
  br_section : string;   (** e.g. ["table2"] *)
  br_instance : string;
  br_engine : string;
  br_verdict : string;
  br_time : float;
}

val bench_rows : Json.t -> bench_row list
(** Flatten a parsed [rtlsat.bench/1] artifact into one row per
    (section, instance, engine).  @raise Invalid_argument on a wrong
    or missing schema tag. *)

type diff_status = Regression | Improvement | Unchanged

type diff_entry = {
  de_section : string;
  de_instance : string;
  de_engine : string;
  de_old_verdict : string;
  de_new_verdict : string;
  de_old_time : float;
  de_new_time : float;
  de_status : diff_status;
  de_note : string;  (** human-readable reason; empty when unchanged *)
}

type bench_diff = {
  bd_entries : diff_entry list;
      (** matched keys, in the new artifact's order *)
  bd_only_old : (string * string * string) list;
  bd_only_new : (string * string * string) list;
  bd_regressions : int;
}

val diff_rows :
  ?threshold:float ->
  ?min_time:float ->
  bench_row list ->
  bench_row list ->
  bench_diff
(** Compare old vs new rows keyed by (section, instance, engine).
    A matched pair regresses when the verdict degrades (solved →
    timeout/abort, or a sat/unsat flip) or when, at equal verdicts,
    [new_time > max (old_time * (1 + threshold)) (old_time +
    min_time)] — the absolute floor [min_time] (default 0.05 s) keeps
    micro-instance jitter from flagging.  Default [threshold] 0.20. *)

val bench_diff : ?threshold:float -> ?min_time:float -> Json.t -> Json.t -> bench_diff
(** [bench_diff old new] over whole parsed artifacts. *)

val print_bench_diff : Format.formatter -> bench_diff -> unit
(** The [rtlsat bench-diff] report: regressions first, then
    improvements, unmatched keys, and a one-line summary. *)

(* ---- bench-history ---- *)

(** One (artifact, section) aggregate in a perf trajectory: how many
    (instance, engine) runs the section carried and how they went. *)
type history_point = {
  hp_label : string;         (** artifact label, e.g. the file basename *)
  hp_generated_at : string;  (** empty when the artifact carries none *)
  hp_section : string;
  hp_runs : int;
  hp_solved : int;           (** sat or unsat verdicts *)
  hp_timeouts : int;
  hp_aborts : int;           (** anything neither solved nor timeout *)
  hp_total_time : float;
}

val bench_history : (string * Json.t) list -> history_point list
(** Aggregate labelled [rtlsat.bench/1] artifacts (oldest first) into
    one point per (artifact, section), preserving artifact order so
    each section reads as a time series.  @raise Invalid_argument when
    an artifact has a wrong or missing schema tag. *)

val bench_history_json : history_point list -> Json.t
(** Schema ["rtlsat.bench_history/1"]: [{"sections": {name: [point,
    …]}}] with points in artifact order. *)

val print_bench_history : Format.formatter -> history_point list -> unit
(** The [rtlsat bench-history] table: per section, one row per
    artifact with runs/solved/timeout/abort counts and total time. *)

val fuzz_json :
  seed:int ->
  count:int ->
  instances:int ->
  sat:int ->
  unsat:int ->
  timeouts:int ->
  wall_s:float ->
  failures:Json.t list ->
  metrics:Rtlsat_obs.Obs.snapshot option ->
  Json.t
(** Campaign summary of [rtlsat fuzz --json] (schema
    ["rtlsat.fuzz/1"]).  [failures] are pre-serialized failure objects
    (the fuzz library builds them — the dependency points that way);
    the ["failures"] field is their count, the cases live under
    ["failure_cases"]. *)
