module Registry = Rtlsat_itc99.Registry
module Obs = Rtlsat_obs.Obs

type scale = [ `Scaled | `Full ]

let scale_name = function `Scaled -> "scaled" | `Full -> "full"

(* fresh per-run obs handle when metrics collection is requested *)
let run_obs metrics = if metrics then Obs.create () else Obs.disabled

(* fresh request per engine run: a private obs handle so [run.metrics]
   snapshots stay per-run *)
let run_req ?learn_threshold ?(simplify = true) ~timeout metrics =
  Req.make ~timeout ?learn_threshold ~simplify ~obs:(run_obs metrics) ()

(* ---- Table 1 (§3.1): predicate learning analysis ---- *)

let table1_instances = function
  | `Full ->
    [
      ("b01", "1", 10); ("b01", "1", 20);
      ("b02", "1", 10); ("b02", "1", 20);
      ("b04", "1", 20);
      ("b13", "5", 10); ("b13", "1", 10);
      ("b13", "5", 20); ("b13", "1", 20);
      ("b13", "5", 30); ("b13", "1", 30);
      ("b13", "5", 50); ("b13", "1", 50);
      ("b13", "5", 100); ("b13", "1", 100);
      ("b13", "5", 200); ("b13", "1", 200);
      ("b13", "1", 300);
    ]
  | `Scaled ->
    [
      ("b01", "1", 10); ("b01", "1", 20);
      ("b02", "1", 10); ("b02", "1", 20);
      ("b04", "1", 20);
      ("b13", "5", 10); ("b13", "1", 10);
      ("b13", "5", 20); ("b13", "1", 20);
      ("b13", "5", 30); ("b13", "1", 30);
    ]

type t1_row = {
  t1_label : string;
  t1_type : Engines.verdict;
  t1_relations : int;
  t1_learn_time : float;
  t1_hdpll : Engines.run;
  t1_hdpll_p : Engines.run;
}

let default_timeout = function `Full -> 1200.0 | `Scaled -> 20.0

(* the paper's Table 1 threshold: 2500 learned relations *)
let t1_threshold = 2500

let run_table1 ?timeout ?(metrics = false) scale =
  let timeout = match timeout with Some t -> t | None -> default_timeout scale in
  List.map
    (fun (circuit, prop, bound) ->
       let mk () = Registry.instance ~circuit ~prop ~bound in
       let base =
         Engines.run_instance ~req:(run_req ~timeout metrics) Engines.Hdpll
           (mk ())
       in
       let learned =
         Engines.run_instance
           ~req:(run_req ~learn_threshold:t1_threshold ~timeout metrics)
           Engines.Hdpll_p (mk ())
       in
       {
         t1_label = Registry.instance_name ~circuit ~prop ~bound;
         t1_type = learned.Engines.verdict;
         t1_relations = learned.Engines.relations;
         t1_learn_time = learned.Engines.learn_time;
         t1_hdpll = base;
         t1_hdpll_p = learned;
       })
    (table1_instances scale)

let pp_time fmt (r : Engines.run) =
  match r.Engines.verdict with
  | Engines.Timeout -> Format.fprintf fmt "%8s" "-to-"
  | Engines.Abort _ -> Format.fprintf fmt "%8s" "-A-"
  | _ -> Format.fprintf fmt "%8.2f" r.Engines.time

let print_table1 fmt rows =
  Format.fprintf fmt
    "Table 1: Run-Time Analysis of Predicate Learning (times in seconds)@.";
  Format.fprintf fmt "%-14s %-4s %8s %10s %8s %8s@." "Ckt" "Type" "No.Rels"
    "LearnTime" "HDPLL" "HDPLL+P";
  List.iter
    (fun r ->
       Format.fprintf fmt "%-14s %-4s %8d %10.2f %a %a@." r.t1_label
         (Engines.verdict_symbol r.t1_type)
         r.t1_relations r.t1_learn_time pp_time r.t1_hdpll pp_time r.t1_hdpll_p)
    rows

(* ---- Table 2 (§5): structural decision strategy ---- *)

let table2_instances = function
  | `Full ->
    [
      ("b01", "1", 50); ("b01", "1", 100);
      ("b02", "1", 50); ("b02", "1", 100);
      ("b04", "1", 50); ("b04", "1", 100);
      ("b13", "40", 13);
      ("b13", "1", 50); ("b13", "2", 50); ("b13", "3", 50); ("b13", "5", 50);
      ("b13", "8", 50);
      ("b13", "1", 100); ("b13", "2", 100); ("b13", "3", 100); ("b13", "5", 100);
      ("b13", "8", 100);
      ("b13", "1", 200); ("b13", "2", 200); ("b13", "3", 200); ("b13", "5", 200);
      ("b13", "8", 200);
      ("b13", "1", 300); ("b13", "2", 300); ("b13", "3", 300); ("b13", "5", 300);
      ("b13", "8", 300);
      ("b13", "1", 400); ("b13", "2", 400); ("b13", "3", 400); ("b13", "5", 400);
      ("b13", "8", 400);
    ]
  | `Scaled ->
    [
      ("b01", "1", 50); ("b01", "1", 100);
      ("b02", "1", 50); ("b02", "1", 100);
      ("b04", "1", 50);
      ("b13", "40", 13);
      ("b13", "1", 50); ("b13", "2", 50); ("b13", "3", 50); ("b13", "5", 50);
      ("b13", "8", 50);
    ]

type t2_row = {
  t2_label : string;
  t2_type : Engines.verdict;
  t2_arith : int;
  t2_bool : int;
  t2_runs : (Engines.engine * Engines.run) list;
}

let run_row ?(timeout = 1200.0) ?(metrics = false) ~engines (circuit, prop, bound) =
  let arith, boolean =
    Engines.op_counts (Registry.instance ~circuit ~prop ~bound)
  in
  let runs =
    List.map
      (fun e ->
         ( e,
           Engines.run_instance ~req:(run_req ~timeout metrics) e
             (Registry.instance ~circuit ~prop ~bound) ))
      engines
  in
  let t2_type =
    (* the reference verdict: first engine that decided *)
    match
      List.find_opt
        (fun (_, r) ->
           match r.Engines.verdict with
           | Engines.Sat | Engines.Unsat -> true
           | _ -> false)
        runs
    with
    | Some (_, r) -> r.Engines.verdict
    | None -> Engines.Timeout
  in
  {
    t2_label = Registry.instance_name ~circuit ~prop ~bound;
    t2_type;
    t2_arith = arith;
    t2_bool = boolean;
    t2_runs = runs;
  }

let run_table2 ?timeout ?metrics ?(engines = Engines.table2_engines) scale =
  let timeout = match timeout with Some t -> t | None -> default_timeout scale in
  List.map (run_row ~timeout ?metrics ~engines) (table2_instances scale)

let print_table2 fmt rows =
  Format.fprintf fmt
    "Table 2: Run-Time Analysis of Structural Decision Strategy (times in seconds)@.";
  Format.fprintf fmt
    "(UCLID is substituted by eager bit-blasting, ICS by a lazy CDP; see DESIGN.md)@.";
  (match rows with
   | [] -> ()
   | row :: _ ->
     Format.fprintf fmt "%-14s %-4s %8s %8s" "Test-case" "Rslt" "ArithOps" "BoolOps";
     List.iter
       (fun (e, _) -> Format.fprintf fmt " %9s" (Engines.engine_name e))
       row.t2_runs;
     Format.fprintf fmt "@.");
  List.iter
    (fun r ->
       Format.fprintf fmt "%-14s %-4s %8d %8d" r.t2_label
         (Engines.verdict_symbol r.t2_type)
         r.t2_arith r.t2_bool;
       List.iter
         (fun (_, run) ->
            match run.Engines.verdict with
            | Engines.Timeout -> Format.fprintf fmt " %9s" "-to-"
            | Engines.Abort _ -> Format.fprintf fmt " %9s" "-A-"
            | _ -> Format.fprintf fmt " %9.2f" run.Engines.time)
         r.t2_runs;
       Format.fprintf fmt "@.")
    rows

(* ---- suite extension: the circuits beyond the paper's subset ---- *)

let extension_instances =
  [
    ("b03", "1", 30); ("b03", "2", 30);
    ("b05", "1", 20); ("b05", "2", 20);
    ("b06", "1", 30); ("b06", "2", 30);
    ("b07", "1", 30); ("b07", "2", 30);
    ("b08", "1", 30); ("b08", "2", 30);
    ("b09", "1", 30); ("b09", "3", 30);
    ("b10", "1", 30); ("b10", "2", 30);
    ("b11", "1", 12); ("b11", "3", 12);
  ]

let run_extension ?(timeout = 20.0) ?metrics
    ?(engines = [ Engines.Hdpll; Engines.Hdpll_s; Engines.Hdpll_sp; Engines.Bitblast ]) () =
  List.map (run_row ~timeout ?metrics ~engines) extension_instances

(* ---- wide_wrap family: wrap-around arithmetic corners over wide
   words.  One-frame BMC with Final semantics; every case is Sat with
   exactly one witness at a wrap corner, which the interval kernel can
   only reach through the overflow branch — the workload class behind
   the w61 slow-convergence pathology. ---- *)

module N = Rtlsat_rtl.Netlist
module Bmc = Rtlsat_bmc.Bmc

let wide_wrap_widths = [ 32; 48; 61 ]
let wide_wrap_kinds = [ "add"; "sub"; "mulc" ]

let wide_wrap_cases =
  List.concat_map
    (fun kind -> List.map (fun w -> (kind, w)) wide_wrap_widths)
    wide_wrap_kinds

let wide_wrap_label (kind, width) = Printf.sprintf "wide_%s_w%d" kind width

let wide_wrap_instance (kind, width) =
  let c = N.create (wide_wrap_label (kind, width)) in
  let p =
    match kind with
    | "add" ->
      (* x+1 wraps below x only at the all-ones corner *)
      let x = N.input c ~name:"x" width in
      N.le c x (N.add c x (N.const c ~width 1))
    | "sub" ->
      (* x-1 wraps above x only at zero *)
      let x = N.input c ~name:"x" width in
      N.le c (N.sub c x (N.const c ~width 1)) x
    | "mulc" ->
      (* 3x drops below x only when the product wraps.  mul_const is
         exact (the product grows two bits), so the operand lives at
         width-2 and the product wraps back to it via extract; the
         family width is the product's.  This also keeps the top case
         inside the backend's 61-bit word ceiling. *)
      let ow = width - 2 in
      let x = N.input c ~name:"x" ow in
      let z = N.mul_const c 3 x in
      N.le c x (N.extract c z ~msb:(ow - 1) ~lsb:0)
    | _ -> invalid_arg "wide_wrap_instance"
  in
  N.output c "prop" p;
  Bmc.make c ~prop:p ~bound:1 ~semantics:Bmc.Final ()

let wide_wrap_engines =
  [ Engines.Hdpll; Engines.Hdpll_s; Engines.Hdpll_sp; Engines.Hdpll_p ]

let run_wide_wrap ?(timeout = 20.0) ?(metrics = false)
    ?(engines = wide_wrap_engines) () =
  List.map
    (fun case ->
       let arith, boolean = Engines.op_counts (wide_wrap_instance case) in
       let runs =
         List.map
           (fun e ->
              ( e,
                Engines.run_instance ~req:(run_req ~timeout metrics) e
                  (wide_wrap_instance case) ))
           engines
       in
       let t2_type =
         match
           List.find_opt
             (fun (_, r) ->
                match r.Engines.verdict with
                | Engines.Sat | Engines.Unsat -> true
                | _ -> false)
             runs
         with
         | Some (_, r) -> r.Engines.verdict
         | None -> Engines.Timeout
       in
       {
         t2_label = wide_wrap_label case;
         t2_type;
         t2_arith = arith;
         t2_bool = boolean;
         t2_runs = runs;
       })
    wide_wrap_cases

(* ---- bmc_sweep family: incremental sessions vs from-scratch ----

   Each case sweeps a list of bounds for one (circuit, property)
   through a single solver session per engine — the unroll grows
   frame-incrementally and every bound is posed as an assumption
   literal — and, for comparison, re-solves each bound from scratch
   with [run_instance].  The carried-clause / carried-relation
   counters make the session reuse visible. *)

type sweep_row = {
  sr_label : string;
  sr_engine : Engines.engine;
  sr_steps : (Engines.sweep_step * Engines.run) list;
      (** per bound: the incremental step and its from-scratch twin *)
}

let bmc_sweep_cases = function
  | `Full ->
    [
      ("b01", "1", [ 10; 20; 30; 40; 50 ]);
      ("b02", "1", [ 10; 20; 30; 40; 50 ]);
      ("b04", "1", [ 10; 20; 30; 40 ]);
      ("b13", "5", [ 10; 20; 30; 40; 50 ]);
    ]
  | `Scaled ->
    [
      ("b01", "1", [ 4; 8; 12; 16 ]);
      ("b02", "1", [ 4; 8; 12; 16 ]);
      ("b13", "5", [ 4; 8; 12 ]);
    ]

let bmc_sweep_engines = [ Engines.Hdpll; Engines.Hdpll_sp; Engines.Bitblast ]

let run_bmc_sweep ?timeout ?(metrics = false) ?(engines = bmc_sweep_engines)
    scale =
  let timeout = match timeout with Some t -> t | None -> default_timeout scale in
  List.concat_map
    (fun (circuit, prop, bounds) ->
       let source, props = Registry.build circuit in
       let p = List.assoc prop props in
       List.map
         (fun e ->
            let incr =
              Engines.run_sweep ~req:(run_req ~timeout metrics) e source
                ~prop:p ~bounds
            in
            let steps =
              List.map
                (fun (step : Engines.sweep_step) ->
                   let scratch =
                     Engines.run_instance ~req:(run_req ~timeout metrics) e
                       (Registry.instance ~circuit ~prop
                          ~bound:step.Engines.sw_bound)
                   in
                   (step, scratch))
                incr
            in
            {
              sr_label = Printf.sprintf "%s_%s" circuit prop;
              sr_engine = e;
              sr_steps = steps;
            })
         engines)
    (bmc_sweep_cases scale)

let print_bmc_sweep fmt rows =
  Format.fprintf fmt
    "bmc_sweep: one solver session per (design, engine); bounds as assumptions (times in seconds)@.";
  Format.fprintf fmt "%-10s %-10s %5s %-4s %8s %8s %12s %12s@." "design"
    "engine" "bound" "rslt" "incr" "scratch" "carried-cls" "carried-rels";
  List.iter
    (fun row ->
       List.iter
         (fun ((step : Engines.sweep_step), scratch) ->
            Format.fprintf fmt "%-10s %-10s %5d %-4s %a %a %12d %12d@."
              row.sr_label
              (Engines.engine_name row.sr_engine)
              step.Engines.sw_bound
              (Engines.verdict_symbol step.Engines.sw_run.Engines.verdict)
              pp_time step.Engines.sw_run pp_time scratch
              step.Engines.sw_carried_clauses step.Engines.sw_carried_relations)
         row.sr_steps)
    rows

(* ---- simplify family: pre/inprocessing on vs off ----

   Each case solves one instance per engine twice — simplification on
   (the default) and off — with obs attached to the on arm so the
   simplify.* counters land in the artifact.  The family locks in two
   facts: simplification never flips a verdict, and it actually
   reduces the clause databases (all-zero counters would mean the
   pipeline is wired but dead). *)

type simp_row = {
  sy_label : string;
  sy_engine : Engines.engine;
  sy_on : Engines.run;   (** simplify on (the default configuration) *)
  sy_off : Engines.run;  (** simplify off (the seed solver's behaviour) *)
}

let simplify_cases = function
  | `Full ->
    [
      ("b01", "1", 20);
      ("b02", "1", 20);
      ("b04", "1", 20);
      ("b13", "1", 30);
      ("b13", "5", 30);
    ]
  | `Scaled -> [ ("b01", "1", 10); ("b02", "1", 10); ("b13", "1", 10) ]

let simplify_engines = [ Engines.Hdpll_sp; Engines.Bitblast ]

let run_simplify ?timeout ?(metrics = true) ?(engines = simplify_engines)
    scale =
  let timeout = match timeout with Some t -> t | None -> default_timeout scale in
  List.concat_map
    (fun (circuit, prop, bound) ->
       List.map
         (fun e ->
            let mk () = Registry.instance ~circuit ~prop ~bound in
            let on =
              Engines.run_instance ~req:(run_req ~timeout metrics) e (mk ())
            in
            let off =
              Engines.run_instance
                ~req:(run_req ~simplify:false ~timeout metrics) e (mk ())
            in
            {
              sy_label = Printf.sprintf "%s_%s(%d)" circuit prop bound;
              sy_engine = e;
              sy_on = on;
              sy_off = off;
            })
         engines)
    (simplify_cases scale)

let simp_counter (r : Engines.run) name =
  match r.Engines.metrics with
  | None -> 0
  | Some s ->
    (match List.assoc_opt name s.Obs.counter_values with
     | Some n -> n
     | None -> 0)

let print_simplify fmt rows =
  Format.fprintf fmt
    "simplify: pre/inprocessing on vs off (times in seconds; counters from \
     the on arm)@.";
  Format.fprintf fmt "%-12s %-10s %-4s %-4s %8s %8s %6s %6s %6s %6s@."
    "instance" "engine" "on" "off" "t_on" "t_off" "subs" "str" "elim" "probe";
  List.iter
    (fun row ->
       Format.fprintf fmt "%-12s %-10s %-4s %-4s %a %a %6d %6d %6d %6d@."
         row.sy_label
         (Engines.engine_name row.sy_engine)
         (Engines.verdict_symbol row.sy_on.Engines.verdict)
         (Engines.verdict_symbol row.sy_off.Engines.verdict)
         pp_time row.sy_on pp_time row.sy_off
         (simp_counter row.sy_on "simplify.subsumed")
         (simp_counter row.sy_on "simplify.strengthened")
         (simp_counter row.sy_on "simplify.eliminated")
         (simp_counter row.sy_on "simplify.probed"))
    rows

let print_table2_csv fmt rows =
  (match rows with
   | [] -> ()
   | row :: _ ->
     Format.fprintf fmt "instance,result,arith_ops,bool_ops";
     List.iter
       (fun (e, _) -> Format.fprintf fmt ",%s" (Engines.engine_name e))
       row.t2_runs;
     Format.fprintf fmt "@.");
  List.iter
    (fun r ->
       Format.fprintf fmt "%s,%s,%d,%d" r.t2_label
         (Engines.verdict_symbol r.t2_type)
         r.t2_arith r.t2_bool;
       List.iter
         (fun (_, run) ->
            match run.Engines.verdict with
            | Engines.Timeout | Engines.Abort _ -> Format.fprintf fmt ","
            | _ -> Format.fprintf fmt ",%.3f" run.Engines.time)
         r.t2_runs;
       Format.fprintf fmt "@.")
    rows
