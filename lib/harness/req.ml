module Obs = Rtlsat_obs.Obs

type t = {
  timeout : float;
  deadline : float;
  cancel : bool Atomic.t;
  obs : Obs.t;
  learn_threshold : int option;
  split : bool;
  simplify : bool;
  inprocess : int;
  dump_graph : string option;
  dump_graph_max : int;
  on_learn : (Rtlsat_constr.Types.clause -> unit) option;
  tag : string;
}

(* the shared never-set flag backing every request that does not ask
   for its own; mirrors [Solver.default.cancel] *)
let never_cancel = Atomic.make false

let make ?(timeout = 1200.0) ?(deadline = infinity) ?(cancel = never_cancel)
    ?(obs = Obs.disabled) ?learn_threshold ?(split = true) ?(simplify = true)
    ?(inprocess = 0) ?dump_graph ?(dump_graph_max = 10) ?on_learn ?(tag = "")
    () =
  {
    timeout;
    deadline;
    cancel;
    obs;
    learn_threshold;
    split;
    simplify;
    inprocess;
    dump_graph;
    dump_graph_max;
    on_learn;
    tag;
  }

let default = make ()

let deadline_from t t0 = Float.min (t0 +. t.timeout) t.deadline
let cancelled t = Atomic.get t.cancel
let fresh_cancel t = { t with cancel = Atomic.make false }
let with_obs t obs = { t with obs }
let with_cancel t cancel = { t with cancel }
let with_timeout t timeout = { t with timeout }
let with_deadline t deadline = { t with deadline }

let options_string t =
  Printf.sprintf "split=%b,simplify=%b,inprocess=%d" t.split t.simplify
    t.inprocess
