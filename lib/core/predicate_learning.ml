open Rtlsat_constr.Types
module Ir = Rtlsat_rtl.Ir
module Structure = Rtlsat_rtl.Structure
module Encode = Rtlsat_constr.Encode
module Vec = Rtlsat_constr.Vec
module Obs = Rtlsat_obs.Obs
module Json = Rtlsat_obs.Json

type summary = {
  relations : int;
  probes : int;
  learn_time : float;
  root_unsat : bool;
  pos_score : int array;
  neg_score : int array;
}

(* the ways of satisfying a controlling output value: a disjunctive
   cover — every solution satisfying (gate = value) satisfies at least
   one way — so implications common to all ways are implied by the
   value itself (recursive learning, §2.3) *)
let ways_of enc n value =
  let v m = enc.Encode.var_of.(m.Ir.id) in
  match (n.Ir.op, value) with
  | Ir.And ns, false -> Some (Array.to_list (Array.map (fun m -> [ Neg (v m) ]) ns))
  | Ir.Or ns, true -> Some (Array.to_list (Array.map (fun m -> [ Pos (v m) ]) ns))
  | Ir.Xor (a, b), true -> Some [ [ Pos (v a); Neg (v b) ]; [ Neg (v a); Pos (v b) ] ]
  | Ir.Xor (a, b), false -> Some [ [ Pos (v a); Pos (v b) ]; [ Neg (v a); Neg (v b) ] ]
  | Ir.Cmp _, value ->
    (* theory predicate: a single "way" — assert it and let interval
       constraint propagation carry implications across the data-path *)
    Some [ [ (if value then Pos (v n) else Neg (v n)) ] ]
  | _ -> None

(* Boolean atoms pushed on the trail above position [from] *)
let bool_atoms_above s from =
  let out = ref [] in
  for i = from to Vec.length s.State.trail - 1 do
    let e = Vec.get s.State.trail i in
    match e.State.eatom with
    | (Pos _ | Neg _) as a -> out := a :: !out
    | Ge _ | Le _ -> ()
  done;
  !out

let intersect_lists lists =
  match lists with
  | [] -> []
  | first :: rest ->
    List.filter (fun a -> List.for_all (fun l -> List.mem a l) rest) first

let run ?threshold ?(depth = 1) ?(deadline = infinity) s (enc : Encode.t) =
  assert (State.decision_level s = 0);
  let t0 = Rtlsat_obs.Mono.now () in
  let candidates = Structure.candidate_gates enc.Encode.circuit in
  let threshold =
    match threshold with Some t -> t | None -> min (List.length candidates) 2000
  in
  let relations = ref 0 in
  let probes = ref 0 in
  let root_unsat = ref false in
  let pos_score = Array.make s.State.nv 0 in
  let neg_score = Array.make s.State.nv 0 in
  let known : (atom * atom, unit) Hashtbl.t = Hashtbl.create 64 in
  let out_of_budget () =
    !relations >= threshold || Rtlsat_obs.Mono.now () > deadline || !root_unsat
  in
  (* probe a conjunction of atoms: propagate it in isolation and
     return the Boolean implications, recursing on nested gates when
     depth allows; None when the assumption is infeasible *)
  let rec probe_way atoms d =
    let base = Vec.length s.State.trail in
    let level = State.decision_level s in
    State.new_level s;
    incr probes;
    let outcome =
      try
        List.iter (fun a -> State.assert_atom s a None) atoms;
        match Propagate.run ~deadline s with
        | exception Propagate.Propagation_timeout ->
          (* out of time: no implication learned from this probe; the
             budget check stops the sweep on the next iteration *)
          None
        | Some _ -> None
        | None ->
          let implied = ref (bool_atoms_above s base) in
          if d > 1 then begin
            (* recurse: strengthen with common implications of nested
               unjustified candidate gates (bounded fan-out per level) *)
            let expanded = ref 0 in
            List.iter
              (fun n ->
                 if !expanded < 4 && not (out_of_budget ()) then begin
                   let zv = enc.Encode.var_of.(n.Ir.id) in
                   let bv = State.bool_value s zv in
                   if bv <> -1 then begin
                     match ways_of enc n (bv = 1) with
                     | Some ways when List.length ways > 1 ->
                       incr expanded;
                       (* infeasible ways admit no solutions, so the
                          intersection over the feasible ones is still
                          implied *)
                       let sub = List.filter_map (fun w -> probe_way w (d - 1)) ways in
                       if sub <> [] then implied := intersect_lists sub @ !implied
                     | _ -> ()
                   end
                 end)
              candidates
          end;
          Some !implied
      with State.Conflict _ -> None
    in
    State.backtrack_to s level;
    outcome
  in
  let learn_clause trigger a =
    (* trigger -> a, stored as the clause (¬trigger ∨ a) *)
    let cl = (negate_atom trigger, a) in
    if not (Hashtbl.mem known cl) && atom_var a <> atom_var trigger then begin
      Hashtbl.replace known cl ();
      State.add_clause s [| fst cl; snd cl |];
      s.State.n_learned <- s.State.n_learned + 1;
      incr relations;
      if Obs.tracing s.State.obs then
        Obs.event s.State.obs "learn"
          [
            ("cause", Json.Str "static");
            ("len", Json.Int 2);
            ("trigger_var", Json.Int (atom_var trigger));
          ];
      List.iter
        (fun at ->
           State.bump_var s (atom_var at);
           match at with
           | Pos v -> pos_score.(v) <- pos_score.(v) + 1
           | Neg v -> neg_score.(v) <- neg_score.(v) + 1
           | Ge _ | Le _ -> ())
        [ fst cl; snd cl ]
    end
  in
  let probe_gate n =
    let zv = enc.Encode.var_of.(n.Ir.id) in
    let values =
      match n.Ir.op with
      | Ir.And _ -> [ false ]
      | Ir.Or _ -> [ true ]
      | Ir.Xor _ | Ir.Cmp _ -> [ true; false ]
      | _ -> []
    in
    List.iter
      (fun value ->
         if (not (out_of_budget ())) && State.bool_value s zv = -1 then begin
           let trigger = if value then Pos zv else Neg zv in
           match ways_of enc n value with
           | None -> ()
           | Some ways ->
             let results = List.map (fun w -> probe_way w depth) ways in
             let feasible = List.filter_map (fun r -> r) results in
             if feasible = [] then begin
               (* no way satisfies the value: it is refuted at the root *)
               match
                 State.assert_atom s (negate_atom trigger) None;
                 Propagate.run ~deadline s
               with
               | Some _ -> root_unsat := true
               | None -> ()
               | exception State.Conflict _ -> root_unsat := true
               | exception Propagate.Propagation_timeout -> ()
             end
             else begin
               (* infeasible ways admit no solutions at all, so the
                  common implications of the feasible ways suffice *)
               let common = intersect_lists feasible in
               List.iter
                 (fun a -> if not (out_of_budget ()) then learn_clause trigger a)
                 common
             end
         end)
      values
  in
  List.iter (fun n -> if not (out_of_budget ()) then probe_gate n) candidates;
  {
    relations = !relations;
    probes = !probes;
    learn_time = Rtlsat_obs.Mono.now () -. t0;
    root_unsat = !root_unsat;
    pos_score;
    neg_score;
  }
