open Rtlsat_constr.Types
module Vec = Rtlsat_constr.Vec
module Obs = Rtlsat_obs.Obs

let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let cdiv a b = -(fdiv (-a) b)

let check_clause s ci =
  let c = Vec.get s.State.clauses ci in
  if not (Array.exists (State.entailed s) c) then begin
    let non_false = ref [] and n_non_false = ref 0 in
    Array.iter
      (fun a ->
         if not (State.falsified s a) then begin
           non_false := a :: !non_false;
           incr n_non_false
         end)
      c;
    match !non_false with
    | [] -> raise (State.Conflict (Array.map negate_atom c))
    | [ a ] ->
      let reason =
        Array.of_list
          (List.filter_map
             (fun b -> if b == a then None else Some (negate_atom b))
             (Array.to_list c))
      in
      State.assert_atom s a (Some reason)
    | _ -> ()
  end

(* ---- linear constraints ---- *)

(* Overflow-checked arithmetic.  Encoded coefficients reach 2^60 and
   word bounds 2^61 - 1, so c·bound can exceed the native int range
   (observed by the differential fuzzer: a dead 61-bit shr wrapped
   min_value positive and turned a satisfiable instance Unsat).  An
   evaluation that overflows yields None and the corresponding check
   or tightening is skipped — sound, since ICP is optional. *)

let mul_opt = Rtlsat_num.Checked.mul
let add_opt = Rtlsat_num.Checked.add
let sub_opt = Rtlsat_num.Checked.sub
let ( let* ) = Option.bind

let min_value s (e : linexpr) =
  List.fold_left
    (fun acc (c, v) ->
       let* m = acc in
       let* p = mul_opt c (if c > 0 then s.State.lb.(v) else s.State.ub.(v)) in
       add_opt m p)
    (Some e.const) e.terms

let max_value s (e : linexpr) =
  List.fold_left
    (fun acc (c, v) ->
       let* m = acc in
       let* p = mul_opt c (if c > 0 then s.State.ub.(v) else s.State.lb.(v)) in
       add_opt m p)
    (Some e.const) e.terms

(* min over every term but [except]; the slow path when the full
   minimum overflowed but the residual might not *)
let min_rest s (e : linexpr) ~except =
  List.fold_left
    (fun acc (c, v) ->
       if v = except then acc
       else
         let* m = acc in
         let* p = mul_opt c (if c > 0 then s.State.lb.(v) else s.State.ub.(v)) in
         add_opt m p)
    (Some e.const) e.terms

(* non-trivial bound atoms only: atoms already implied by the initial
   domain add noise to explanations (conflict analysis would drop them,
   but keeping explanations small is cheap here) *)
let bound_atom_lo s v =
  if s.State.lb.(v) > s.State.init_lb.(v) then
    Some (State.canonical s (Ge (v, s.State.lb.(v))))
  else None

let bound_atom_hi s v =
  if s.State.ub.(v) < s.State.init_ub.(v) then
    Some (State.canonical s (Le (v, s.State.ub.(v))))
  else None

let min_expl s (e : linexpr) ~except =
  List.filter_map
    (fun (c, v) ->
       if v = except then None
       else if c > 0 then bound_atom_lo s v
       else bound_atom_hi s v)
    e.terms

let max_expl s (e : linexpr) ~except =
  List.filter_map
    (fun (c, v) ->
       if v = except then None
       else if c > 0 then bound_atom_hi s v
       else bound_atom_lo s v)
    e.terms

(* propagate Σ cᵢvᵢ + const ≤ 0 *)
let propagate_le s ?(extra = []) (e : linexpr) =
  let m_opt = min_value s e in
  (match m_opt with
   | Some m when m > 0 ->
     let expl = min_expl s e ~except:(-1) @ extra in
     raise (State.Conflict (Array.of_list expl))
   | _ -> ());
  List.iter
    (fun (c, v) ->
       let rest =
         match m_opt with
         | Some m ->
           let* contribution =
             mul_opt c (if c > 0 then s.State.lb.(v) else s.State.ub.(v))
           in
           sub_opt m contribution
         | None -> min_rest s e ~except:v
       in
       match rest with
       | None -> ()
       | Some rest when rest = min_int -> ()
       | Some rest ->
         if c > 0 then begin
           (* c·v ≤ -rest *)
           let ub' = fdiv (-rest) c in
           if ub' < s.State.ub.(v) then begin
             let reason = Array.of_list (min_expl s e ~except:v @ extra) in
             State.assert_atom s (State.canonical s (Le (v, ub'))) (Some reason)
           end
         end
         else begin
           (* (-c)·v ≥ rest, -c > 0 *)
           let lb' = cdiv rest (-c) in
           if lb' > s.State.lb.(v) then begin
             let reason = Array.of_list (min_expl s e ~except:v @ extra) in
             State.assert_atom s (State.canonical s (Ge (v, lb'))) (Some reason)
           end
         end)
    e.terms

let negate_le (e : linexpr) =
  (* ¬(e ≤ 0) over integers is e ≥ 1, i.e. -e + 1 ≤ 0 *)
  let n = lin_neg e in
  { n with const = n.const + 1 }

let propagate_constr s ci =
  match s.State.constrs.(ci) with
  | Lin_le e -> propagate_le s e
  | Lin_eq e ->
    propagate_le s e;
    propagate_le s (lin_neg e)
  | Pred { b; e } ->
    (match State.bool_value s b with
     | 1 -> propagate_le s ~extra:[ Pos b ] e
     | 0 -> propagate_le s ~extra:[ Neg b ] (negate_le e)
     | _ ->
       (match max_value s e with
        | Some mx when mx <= 0 ->
          let reason = Array.of_list (max_expl s e ~except:(-1)) in
          State.assert_atom s (Pos b) (Some reason)
        | _ ->
          (match min_value s e with
           | Some m when m > 0 ->
             let reason = Array.of_list (min_expl s e ~except:(-1)) in
             State.assert_atom s (Neg b) (Some reason)
           | _ -> ())))
  | Mux_w { sel; t; e; z } ->
    let lb = s.State.lb and ub = s.State.ub in
    let equality extra x =
      (* z = x, both directions *)
      if lb.(x) > lb.(z) then
        State.assert_atom s
          (State.canonical s (Ge (z, lb.(x))))
          (Some (Array.of_list (extra @ Option.to_list (bound_atom_lo s x))));
      if ub.(x) < ub.(z) then
        State.assert_atom s
          (State.canonical s (Le (z, ub.(x))))
          (Some (Array.of_list (extra @ Option.to_list (bound_atom_hi s x))));
      if lb.(z) > lb.(x) then
        State.assert_atom s
          (State.canonical s (Ge (x, lb.(z))))
          (Some (Array.of_list (extra @ Option.to_list (bound_atom_lo s z))));
      if ub.(z) < ub.(x) then
        State.assert_atom s
          (State.canonical s (Le (x, ub.(z))))
          (Some (Array.of_list (extra @ Option.to_list (bound_atom_hi s z))))
    in
    (match State.bool_value s sel with
     | 1 -> equality [ Pos sel ] t
     | 0 -> equality [ Neg sel ] e
     | _ ->
       (* hull narrowing of z *)
       let klo = min lb.(t) lb.(e) in
       if klo > lb.(z) then begin
         let reason = [| State.canonical s (Ge (t, klo)); State.canonical s (Ge (e, klo)) |] in
         State.assert_atom s (State.canonical s (Ge (z, klo))) (Some reason)
       end;
       let khi = max ub.(t) ub.(e) in
       if khi < ub.(z) then begin
         let reason = [| State.canonical s (Le (t, khi)); State.canonical s (Le (e, khi)) |] in
         State.assert_atom s (State.canonical s (Le (z, khi))) (Some reason)
       end;
       (* select implication from disjointness *)
       let disjoint_expl x =
         if lb.(z) > ub.(x) then
           Some [| State.canonical s (Ge (z, ub.(x) + 1)); State.canonical s (Le (x, ub.(x))) |]
         else if ub.(z) < lb.(x) then
           Some [| State.canonical s (Le (z, lb.(x) - 1)); State.canonical s (Ge (x, lb.(x))) |]
         else None
       in
       (match disjoint_expl t with
        | Some reason -> State.assert_atom s (Neg sel) (Some reason)
        | None -> ());
       (match disjoint_expl e with
        | Some reason -> State.assert_atom s (Pos sel) (Some reason)
        | None -> ()))

exception Propagation_timeout

(* forensics bracketing: wakeup count, per-constraint time, and the
   attribution target for narrowings.  Only reached from the
   obs-enabled arm, so the disabled hot path stays closure-free. *)
let propagate_constr_attr obs s ci =
  Obs.constr_enter obs ci;
  (match propagate_constr s ci with
   | () -> ()
   | exception e ->
     Obs.constr_exit obs ci;
     raise e);
  Obs.constr_exit obs ci

let run ?(full = false) ?(deadline = infinity) ?cancel s =
  let obs = s.State.obs in
  (* ICP can tighten a bound by 1 per sweep over a 2^61 domain, so the
     fixpoint loop must watch the clock itself; check sparsely to keep
     the hot path free of syscalls *)
  let fuel = ref 4096 in
  try
    if full then begin
      Obs.span obs Obs.Bcp (fun () ->
          for ci = 0 to Vec.length s.State.clauses - 1 do
            check_clause s ci
          done);
      Obs.span obs Obs.Icp (fun () ->
          if obs.Obs.enabled then
            Array.iteri (fun ci _ -> propagate_constr_attr obs s ci) s.State.constrs
          else Array.iteri (fun ci _ -> propagate_constr s ci) s.State.constrs)
    end;
    (* a split candidate suspends the fixpoint: the solver takes the
       bisection decision first (the queued consequences stay on the
       trail and we resume from qhead afterwards).  With splits off the
       heap is never populated and the loop runs to fixpoint as
       before. *)
    let suspended () =
      s.State.split && not (Heap.is_empty s.State.split_heap)
    in
    while s.State.qhead < Vec.length s.State.trail && not (suspended ()) do
      decr fuel;
      if !fuel <= 0 then begin
        fuel := 4096;
        (* the w61 crawl spins here without ever returning to the
           solve loop, so heartbeats must also fire from this gate *)
        if obs.Obs.enabled then
          Obs.heartbeat_tick obs ~decisions:s.State.n_decisions
            ~conflicts:s.State.n_conflicts
            ~propagations:s.State.n_propagations ~splits:s.State.n_splits
            ~lvl:(State.decision_level s);
        if deadline < infinity && Rtlsat_obs.Mono.now () > deadline then
          raise Propagation_timeout;
        (match cancel with
         | Some c when Atomic.get c -> raise Propagation_timeout
         | _ -> ())
      end;
      let e = Vec.get s.State.trail s.State.qhead in
      s.State.qhead <- s.State.qhead + 1;
      s.State.n_propagations <- s.State.n_propagations + 1;
      let v = atom_var e.State.eatom in
      (* the duplicated disabled arm keeps the hot path closure-free *)
      if obs.Obs.enabled then begin
        Obs.span obs Obs.Bcp (fun () ->
            List.iter (check_clause s) s.State.clause_occs.(v));
        Obs.span obs Obs.Icp (fun () ->
            List.iter (propagate_constr_attr obs s) s.State.constr_occs.(v))
      end
      else begin
        List.iter (check_clause s) s.State.clause_occs.(v);
        List.iter (propagate_constr s) s.State.constr_occs.(v)
      end
    done;
    None
  with State.Conflict c ->
    if obs.Obs.enabled then Obs.forensics_reset_cur obs;
    Some c
