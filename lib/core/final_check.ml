open Rtlsat_constr.Types
module Box = Rtlsat_fme.Boxsearch
module Omega = Rtlsat_fme.Omega
module Obs = Rtlsat_obs.Obs

type outcome =
  | Model of int array
  | Conflict_atoms of atom array
  | Resource_out

let negate_le (e : linexpr) =
  let n = lin_neg e in
  { n with const = n.const + 1 }

(* active inequalities under the current Boolean assignment: each is
   (terms, const, guard atoms, original variables) *)
let active_lins s =
  let out = ref [] in
  let push e guards = out := (e.terms, e.const, guards) :: !out in
  Array.iter
    (fun c ->
       match c with
       | Lin_le e -> push e []
       | Lin_eq e ->
         push e [];
         push (lin_neg e) []
       | Pred { b; e } ->
         (match State.bool_value s b with
          | 1 -> push e [ Pos b ]
          | 0 -> push (negate_le e) [ Neg b ]
          | _ -> invalid_arg "Final_check: unassigned predicate guard")
       | Mux_w { sel; t; e; z } ->
         let chosen, guard =
           match State.bool_value s sel with
           | 1 -> (t, Pos sel)
           | 0 -> (e, Neg sel)
           | _ -> invalid_arg "Final_check: unassigned mux select"
         in
         let eq = lin_of_terms [ (1, z); (-1, chosen) ] 0 in
         push eq [ guard ];
         push (lin_neg eq) [ guard ])
    s.State.constrs;
  List.rev !out

(* union-find over variables *)
let find parent v =
  let rec go v = if parent.(v) = v then v else go parent.(v) in
  let root = go v in
  let rec compress v =
    if parent.(v) <> root then begin
      let next = parent.(v) in
      parent.(v) <- root;
      compress next
    end
  in
  compress v;
  root

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(ra) <- rb

let nontrivial_bound_atoms s v =
  let out = ref [] in
  if s.State.lb.(v) > s.State.init_lb.(v) then
    out := State.canonical s (Ge (v, s.State.lb.(v))) :: !out;
  if s.State.ub.(v) < s.State.init_ub.(v) then
    out := State.canonical s (Le (v, s.State.ub.(v))) :: !out;
  !out

let check ?max_nodes s obs =
  let lb = s.State.lb and ub = s.State.ub in
  let fixed v = lb.(v) = ub.(v) in
  (* substitute fixed variables; keep the fixed vars for explanations.
     A substitution whose product or sum would overflow keeps the
     variable free instead (its point bounds carry the value exactly
     into the Bigint-based oracle). *)
  let substituted =
    List.map
      (fun (terms, const, guards) ->
         let free, const, fixed_vars =
           List.fold_left
             (fun (free, const, fv) (c, v) ->
                let substituted_const =
                  if fixed v then
                    match Rtlsat_num.Checked.mul c lb.(v) with
                    | Some p -> Rtlsat_num.Checked.add const p
                    | None -> None
                  else None
                in
                match substituted_const with
                | Some const -> (free, const, v :: fv)
                | None -> ((c, v) :: free, const, fv))
             ([], const, []) terms
         in
         (free, const, guards, fixed_vars))
      (active_lins s)
  in
  (* constant rows are bounds-consistent by fixpoint; ignore them.
     group the rest into connected components of free variables *)
  let rows = List.filter (fun (free, _, _, _) -> free <> []) substituted in
  let parent = Array.init s.State.nv (fun v -> v) in
  List.iter
    (fun (free, _, _, _) ->
       match free with
       | (_, v0) :: rest -> List.iter (fun (_, v) -> union parent v0 v) rest
       | [] -> ())
    rows;
  (* model: fixed vars at their value; free vars filled per component *)
  let model = Array.init s.State.nv (fun v -> lb.(v)) in
  let components : (int, (((int * int) list * int * atom list * int list) list)) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun ((free, _, _, _) as row) ->
       let root = find parent (snd (List.hd free)) in
       Hashtbl.replace components root
         (row :: Option.value ~default:[] (Hashtbl.find_opt components root)))
    rows;
  let exception Conflict_found of atom array in
  let exception Out_of_resource in
  try
    (* exact re-check of the constant rows: ICP skips overflowing
       evaluations, so the bounds fixpoint no longer guarantees their
       consistency (their substituted constant is exact by
       construction — overflowing substitutions stay free) *)
    List.iter
      (fun (free, const, guards, fixed_vars) ->
         if free = [] && const > 0 then begin
           let atoms = ref guards in
           List.iter
             (fun v -> atoms := nontrivial_bound_atoms s v @ !atoms)
             fixed_vars;
           raise (Conflict_found (Array.of_list (List.sort_uniq compare !atoms)))
         end)
      substituted;
    Hashtbl.iter
      (fun root rows ->
         ignore root;
         (* compact variable indices for this component *)
         let index = Hashtbl.create 16 in
         let back = ref [] in
         let idx_of v =
           match Hashtbl.find_opt index v with
           | Some i -> i
           | None ->
             let i = Hashtbl.length index in
             Hashtbl.replace index v i;
             back := v :: !back;
             i
         in
         let lins =
           List.map
             (fun (free, const, _, _) ->
                Box.lin (List.map (fun (c, v) -> (c, idx_of v)) free) const)
             rows
         in
         let back = Array.of_list (List.rev !back) in
         let bounds = Array.map (fun v -> (lb.(v), ub.(v))) back in
         match Omega.decide ~obs ?max_nodes ~bounds lins with
         | Omega.Sat p -> Array.iteri (fun i v -> model.(v) <- p.(i)) back
         | Omega.Unknown -> raise Out_of_resource
         | Omega.Unsat core ->
           let atoms = ref [] in
           let row_arr = Array.of_list rows in
           List.iter
             (fun tag ->
                if tag >= 0 then begin
                  let _, _, guards, fixed_vars = row_arr.(tag) in
                  List.iter (fun a -> atoms := a :: !atoms) guards;
                  List.iter
                    (fun v -> atoms := nontrivial_bound_atoms s v @ !atoms)
                    fixed_vars
                end
                else begin
                  let v = back.((-tag) - 1) in
                  atoms := nontrivial_bound_atoms s v @ !atoms
                end)
             core;
           raise (Conflict_found (Array.of_list (List.sort_uniq compare !atoms))))
      components;
    Model model
  with
  | Conflict_found atoms -> Conflict_atoms atoms
  | Out_of_resource -> Resource_out

let run ?max_nodes s =
  s.State.n_final_checks <- s.State.n_final_checks + 1;
  let obs = s.State.obs in
  let outcome = Obs.span obs Obs.Final_check (fun () -> check ?max_nodes s obs) in
  if Obs.tracing obs then
    Obs.event obs "final_check"
      [
        ( "result",
          Rtlsat_obs.Json.Str
            (match outcome with
             | Model _ -> "model"
             | Conflict_atoms _ -> "conflict"
             | Resource_out -> "resource_out") );
      ];
  outcome
