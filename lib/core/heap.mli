(** Indexed max-heap over externally-stored [float] priorities; the
    decision queue of the hybrid solver. *)

type t

val create : unit -> t
val insert : t -> float array -> int -> unit
(** No-op if the element is already present. *)

val bumped : t -> float array -> int -> unit
(** Restore heap order after the element's priority increased. *)

val pop : t -> float array -> int
(** @raise Invalid_argument on empty. *)

val is_empty : t -> bool
val mem : t -> int -> bool
val size : t -> int

val clear : t -> unit
(** Drop every element (the backing storage is kept). *)
