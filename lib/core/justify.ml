open Rtlsat_constr.Types
module Ir = Rtlsat_rtl.Ir
module Structure = Rtlsat_rtl.Structure
module Encode = Rtlsat_constr.Encode
module Interval = Rtlsat_interval.Interval

(* inputs carry (solver var, node level, fanout) for the choice
   heuristic: closest to the primary inputs first, then max fanout *)
type inp = { iv : var; ilevel : int; ifanout : int }

type gate =
  | GAnd of { z : var; inputs : inp array }
  | GOr of { z : var; inputs : inp array }
  | GXor of { z : var; a : var; b : var }
  | GMuxB of { sel : var; t : var; e : var; z : var }
  | GMuxW of { sel : var; t : var; e : var; z : var }

type t = { gates : gate array }

exception Jconflict of atom array

let create (enc : Encode.t) =
  let c = enc.Encode.circuit in
  let lvl = Structure.levels c in
  let fo = Structure.fanout_counts c in
  let v n = enc.Encode.var_of.(n.Ir.id) in
  let inp n = { iv = v n; ilevel = lvl.(n.Ir.id); ifanout = fo.(n.Ir.id) } in
  let gates =
    List.filter_map
      (fun n ->
         match n.Ir.op with
         | Ir.And ns -> Some (lvl.(n.Ir.id), GAnd { z = v n; inputs = Array.map inp ns })
         | Ir.Or ns -> Some (lvl.(n.Ir.id), GOr { z = v n; inputs = Array.map inp ns })
         | Ir.Xor (a, b) -> Some (lvl.(n.Ir.id), GXor { z = v n; a = v a; b = v b })
         | Ir.Mux { sel; t; e } ->
           if Ir.is_bool n then
             Some (lvl.(n.Ir.id), GMuxB { sel = v sel; t = v t; e = v e; z = v n })
           else Some (lvl.(n.Ir.id), GMuxW { sel = v sel; t = v t; e = v e; z = v n })
         | _ -> None)
      (Ir.nodes c)
    (* outputs first: descending level, as in the worked example of
       Figure 4 where the output mux is justified before its fanin *)
    |> List.stable_sort (fun (l1, _) (l2, _) -> compare l2 l1)
    |> List.map snd
    |> Array.of_list
  in
  { gates }

let n_candidates t = Array.length t.gates

(* choose a free input: minimal distance from the inputs, then maximal
   fanout *)
let pick_input s inputs =
  Array.fold_left
    (fun best i ->
       if State.bool_value s i.iv <> -1 then best
       else
         match best with
         | None -> Some i
         | Some b ->
           if i.ilevel < b.ilevel || (i.ilevel = b.ilevel && i.ifanout > b.ifanout)
           then Some i
           else best)
    None inputs

let bound_atoms s v =
  let out = ref [] in
  if s.State.lb.(v) > s.State.init_lb.(v) then
    out := State.canonical s (Ge (v, s.State.lb.(v))) :: !out;
  if s.State.ub.(v) < s.State.init_ub.(v) then
    out := State.canonical s (Le (v, s.State.ub.(v))) :: !out;
  !out

let check_gate ?mux_pref t s gate =
  ignore t;
  match gate with
  | GAnd { z; inputs } ->
    if State.bool_value s z = 0
    && not (Array.exists (fun i -> State.bool_value s i.iv = 0) inputs)
    then
      match pick_input s inputs with
      | Some i -> Some (Neg i.iv)
      | None -> None (* all inputs 1: propagation will conflict *)
    else None
  | GOr { z; inputs } ->
    if State.bool_value s z = 1
    && not (Array.exists (fun i -> State.bool_value s i.iv = 1) inputs)
    then
      match pick_input s inputs with
      | Some i -> Some (Pos i.iv)
      | None -> None
    else None
  | GXor { z; a; b } ->
    if State.bool_value s z <> -1
    && State.bool_value s a = -1
    && State.bool_value s b = -1
    then Some (Neg a)
    else None
  | GMuxB { sel; t; e; z } ->
    let zv = State.bool_value s z in
    if zv <> -1 && State.bool_value s sel = -1 then begin
      let viable x = State.bool_value s x = -1 || State.bool_value s x = zv in
      if viable t && viable e then Some (Pos sel) else None
      (* only one side viable: the mux clauses imply sel; none viable:
         they conflict — both handled by propagation *)
    end
    else None
  | GMuxW { sel; t; e; z } ->
    if State.bool_value s sel <> -1 then None
    else begin
      let iz = State.dom s z and it = State.dom s t and ie = State.dom s e in
      let required = not (Interval.subset (Interval.hull it ie) iz) in
      if not required then None
      else begin
        let viable_t = not (Interval.disjoint it iz) in
        let viable_e = not (Interval.disjoint ie iz) in
        match (viable_t, viable_e) with
        | true, true ->
          let choose_true =
            match mux_pref with
            | Some pref ->
              let ps, ns = pref sel in
              if ps <> ns then ps > ns
              else
                (* tie-break on overlap size *)
                let size_opt = function None -> 0 | Some i -> Interval.size i in
                size_opt (Interval.inter it iz) >= size_opt (Interval.inter ie iz)
            | None ->
              let size_opt = function None -> 0 | Some i -> Interval.size i in
              size_opt (Interval.inter it iz) >= size_opt (Interval.inter ie iz)
          in
          Some (if choose_true then Pos sel else Neg sel)
        | true, false | false, true ->
          (* the disjointness propagator implies the select *)
          None
        | false, false ->
          let atoms = bound_atoms s z @ bound_atoms s t @ bound_atoms s e in
          raise (Jconflict (Array.of_list atoms))
      end
    end

let decide ?mux_pref t s =
  let n = Array.length t.gates in
  let rec scan i =
    if i >= n then None
    else
      match check_gate ?mux_pref t s t.gates.(i) with
      | Some a -> Some a
      | None -> scan (i + 1)
  in
  scan 0

let frontier_size t s =
  let n = ref 0 in
  Array.iter
    (fun g ->
       match check_gate t s g with
       | Some _ -> incr n
       | None -> ()
       | exception Jconflict _ -> incr n)
    t.gates;
  !n
