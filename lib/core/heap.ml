type t = {
  mutable heap : int array;
  mutable index : int array;
  mutable size : int;
}

let create () = { heap = Array.make 16 0; index = Array.make 16 (-1); size = 0 }

let ensure h n =
  if n > Array.length h.index then begin
    let cap = max n (2 * Array.length h.index) in
    let idx = Array.make cap (-1) in
    Array.blit h.index 0 idx 0 (Array.length h.index);
    h.index <- idx;
    let hp = Array.make cap 0 in
    Array.blit h.heap 0 hp 0 h.size;
    h.heap <- hp
  end

let mem h v = v < Array.length h.index && h.index.(v) >= 0

let swap h i j =
  let a = h.heap.(i) and b = h.heap.(j) in
  h.heap.(i) <- b;
  h.heap.(j) <- a;
  h.index.(b) <- i;
  h.index.(a) <- j

let rec up h act i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if act.(h.heap.(i)) > act.(h.heap.(parent)) then begin
      swap h i parent;
      up h act parent
    end
  end

let rec down h act i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < h.size && act.(h.heap.(l)) > act.(h.heap.(!best)) then best := l;
  if r < h.size && act.(h.heap.(r)) > act.(h.heap.(!best)) then best := r;
  if !best <> i then begin
    swap h i !best;
    down h act !best
  end

let insert h act v =
  ensure h (v + 1);
  if not (mem h v) then begin
    h.heap.(h.size) <- v;
    h.index.(v) <- h.size;
    h.size <- h.size + 1;
    up h act (h.size - 1)
  end

let bumped h act v = if mem h v then up h act h.index.(v)

let pop h act =
  if h.size = 0 then invalid_arg "Heap.pop";
  let v = h.heap.(0) in
  h.size <- h.size - 1;
  h.index.(v) <- -1;
  if h.size > 0 then begin
    h.heap.(0) <- h.heap.(h.size);
    h.index.(h.heap.(0)) <- 0;
    down h act 0
  end;
  v

let is_empty h = h.size = 0
let size h = h.size

let clear h =
  for i = 0 to h.size - 1 do
    h.index.(h.heap.(i)) <- -1
  done;
  h.size <- 0
