(** Structural decision strategy (§4, Algorithm 2).

    Maintains the candidates of the dynamic J-frontier — Boolean gates
    and word-level muxes, the justifiable operators of Definition 4.1 —
    and turns the first unjustified one (scanning from the outputs
    toward the inputs) into a Boolean decision.  Purely arithmetic
    operators (adders, comparators, shifts) are not justifiable: their
    values are determined by interval constraint propagation alone.

    A mux whose required output interval intersects neither input is a
    structural conflict (J-conflict, §4.3): {!Jconflict} carries the
    implying bound atoms, and the caller feeds them to the regular
    hybrid conflict analysis to learn a clause and backtrack
    non-chronologically. *)

open Rtlsat_constr.Types

type t

val create : Rtlsat_constr.Encode.t -> t

exception Jconflict of atom array

val n_candidates : t -> int

val decide :
  ?mux_pref:(var -> int * int) ->
  t ->
  State.t ->
  atom option
(** The next justification decision, or [None] when every candidate is
    justified.  [mux_pref sel] gives [(score for sel=1, score for
    sel=0)] from static predicate learning (§4.4): with a choice of
    select values, prefer the one satisfying more learned relations.
    @raise Jconflict on a structural conflict. *)

val frontier_size : t -> State.t -> int
(** Number of currently unjustified candidates (gates {!decide} would
    still act on, plus structurally conflicting muxes).  A full scan —
    intended for trace emission, not for the decision hot path. *)
