open Rtlsat_constr.Types
module Vec = Rtlsat_constr.Vec
module Problem = Rtlsat_constr.Problem
module Encode = Rtlsat_constr.Encode
module Structure = Rtlsat_rtl.Structure
module Obs = Rtlsat_obs.Obs
module Json = Rtlsat_obs.Json
module Mono = Rtlsat_obs.Mono

type options = {
  structural : bool;
  predicate_learning : bool;
  learn_threshold : int option;
  learn_depth : int;
  deadline : float;
  max_final_nodes : int;
  restarts : bool;
  split : bool;
  simplify : bool;
  inprocess : int;
  seed_fanout : bool;
  random_seed : int option;
  collect_learned : bool;
  reduce_db : int option;
  obs : Obs.t;
  dump_graph : string option;
  dump_graph_max : int;
  cancel : bool Atomic.t;
  on_learn : (clause -> unit) option;
}

(* the default cancel flag is shared by every options record that
   doesn't override it; it is never set, so sharing is harmless *)
let never_cancelled = Atomic.make false

let default =
  {
    structural = false;
    predicate_learning = false;
    learn_threshold = None;
    learn_depth = 1;
    deadline = infinity;
    max_final_nodes = 200_000;
    restarts = true;
    split = true;
    simplify = true;
    inprocess = 0;
    seed_fanout = true;
    random_seed = None;
    collect_learned = false;
    reduce_db = Some 20_000;
    obs = Obs.disabled;
    dump_graph = None;
    dump_graph_max = 10;
    cancel = never_cancelled;
    on_learn = None;
  }

let hdpll = default
let hdpll_s = { default with structural = true }
let hdpll_sp = { default with structural = true; predicate_learning = true }
let hdpll_p = { default with predicate_learning = true }

type result = Sat of int array | Unsat | Timeout

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  learned : int;
  jconflicts : int;
  final_checks : int;
  splits : int;
  relations : int;
  learn_time : float;
  solve_time : float;
}

type outcome = {
  result : result;
  stats : stats;
  learned_clauses : clause list;
  metrics : Obs.snapshot;
}

let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let validate_clause prob cl =
  if Array.length cl > 1 then
    Array.iter
      (fun a ->
         match a with
         | Ge _ | Le _ ->
           if not (Problem.is_bool_var prob (atom_var a)) then
             invalid_arg
               "Solver: multi-atom input clauses must be purely Boolean"
         | Pos _ | Neg _ -> ())
      cl

let validate_input_clauses prob =
  Problem.iter_clauses (fun cl -> validate_clause prob cl) prob

let seed_activities s enc =
  match enc with
  | None -> ()
  | Some enc ->
    let c = enc.Encode.circuit in
    let fo = Structure.fanout_counts c in
    Rtlsat_rtl.Ir.nodes c
    |> List.iter (fun n ->
        let v = enc.Encode.var_of.(n.Rtlsat_rtl.Ir.id) in
        if Problem.is_bool_var s.State.prob v then begin
          s.State.activity.(v) <- float_of_int fo.(n.Rtlsat_rtl.Ir.id);
          Heap.bumped s.State.heap s.State.activity v
        end)

(* hottest split candidate whose interval is still splittable; stale
   nominations (variables fixed since they were queued, or queued at a
   later level and since backtracked) are discarded.  The heap is
   emptied either way: co-crawling variables nominate together, and
   acting on each in turn just manufactures trivial conflicts between
   the halves — one action per nomination batch.  Clearing also
   guarantees the suspended propagation queue drains before the next
   decision. *)
let pick_split s =
  if (not s.State.split) || Heap.is_empty s.State.split_heap then None
  else begin
    let rec pop () =
      if Heap.is_empty s.State.split_heap then None
      else begin
        let v = Heap.pop s.State.split_heap s.State.activity in
        if s.State.lb.(v) < s.State.ub.(v) then Some v else pop ()
      end
    in
    let r = pop () in
    Heap.clear s.State.split_heap;
    r
  end

(* bisect [v]'s interval as a decision.  The arm keeps chasing the
   observed crawl: a lower bound creeping up means the interesting
   values are high, so take the upper half first.  Both arms strictly
   tighten a non-singleton interval, so the assertion can neither
   conflict nor no-op; the learned clause that negates the decision
   yields exactly the other half. *)
let split_decide obs s v =
  let lo = s.State.lb.(v) and hi = s.State.ub.(v) in
  let mid = lo + ((hi - lo) / 2) in
  let arm =
    if s.State.split_dir.(v) then State.canonical s (Ge (v, mid + 1))
    else State.canonical s (Le (v, mid))
  in
  s.State.n_decisions <- s.State.n_decisions + 1;
  s.State.n_splits <- s.State.n_splits + 1;
  if obs.Obs.enabled then begin
    Obs.incr obs "icp.splits";
    Obs.note_split obs ~var:v;
    if Obs.tracing obs then begin
      Obs.event obs "decide"
        [ ("kind", Json.Str "split");
          ("lvl", Json.Int (State.decision_level s + 1));
          ("var", Json.Int v) ];
      Obs.event obs "split"
        [ ("var", Json.Int v);
          ("name", Json.Str (Problem.var_name s.State.prob v));
          ("lo", Json.Int lo);
          ("hi", Json.Int hi);
          ("mid", Json.Int mid);
          ("arm", Json.Str (if s.State.split_dir.(v) then "ge" else "le"));
          ("pending", Json.Int (Heap.size s.State.split_heap)) ]
    end
  end;
  State.new_level s;
  State.assert_atom s arm None

(* next unassigned Boolean by activity *)
let rec pick_activity s =
  if Heap.is_empty s.State.heap then None
  else begin
    let v = Heap.pop s.State.heap s.State.activity in
    if State.bool_value s v = -1 then Some v else pick_activity s
  end

(* is any Boolean still unassigned?  Free Booleans always remain in
   the decision heap (deletion is lazy and a popped free variable is
   immediately decided), so peeking it is a sound emptiness test;
   re-insert what we popped. *)
let free_bool s =
  match pick_activity s with
  | Some v ->
    Heap.insert s.State.heap s.State.activity v;
    true
  | None -> false

(* A box handed to the certificate oracle mid-suspension is not at
   propagation fixpoint: a clause falsified by queued-but-unprocessed
   bound events has not surfaced as a conflict yet, so a claimed model
   must be re-checked against the clause database before it is
   trusted.  (The word constraints themselves are enforced by the
   oracle.) *)
let model_ok s m =
  let sat_atom = function
    | Pos v -> m.(v) >= 1
    | Neg v -> m.(v) <= 0
    | Ge (v, k) -> m.(v) >= k
    | Le (v, k) -> m.(v) <= k
  in
  let ok = ref true in
  let n = Vec.length s.State.clauses in
  let i = ref 0 in
  while !ok && !i < n do
    if not (Array.exists sat_atom (Vec.get s.State.clauses !i)) then ok := false;
    incr i
  done;
  !ok

(* the randomized strategy the paper compares against in §5.1: a
   uniformly random free Boolean variable, random phase *)
let pick_random rng s =
  let n = s.State.nv in
  let start = Random.State.int rng n in
  let rec scan i tried =
    if tried >= n then None
    else begin
      let v = (start + i) mod n in
      if Problem.is_bool_var s.State.prob v && State.bool_value s v = -1 then Some v
      else scan (i + 1) (tried + 1)
    end
  in
  scan 0 0

let collected_clauses opts s =
  if not opts.collect_learned then []
  else begin
    let out = ref [] in
    for i = Vec.length s.State.clauses - 1 downto 0 do
      if not (State.is_root_clause s i) then
        out := Vec.get s.State.clauses i :: !out
    done;
    !out
  end

(* one pre/inprocessing pass over the hybrid clause database
   (subsumption by interval inclusion + self-subsuming strengthening,
   see Hsimp); runs at decision level 0 from both the pre-search hook
   and the restart-time inprocessing hook *)
let simplify_db opts s =
  let obs = opts.obs in
  Obs.span obs Obs.Simplify (fun () ->
      let before = Vec.length s.State.clauses in
      let st = Hsimp.run s in
      if obs.Obs.enabled then begin
        Obs.add obs "simplify.subsumed" st.Hsimp.subsumed;
        Obs.add obs "simplify.strengthened" st.Hsimp.strengthened;
        if Obs.tracing obs then
          Obs.event obs "simplify.pass"
            [ ("engine", Json.Str "hybrid");
              ("subsumed", Json.Int st.Hsimp.subsumed);
              ("strengthened", Json.Int st.Hsimp.strengthened);
              ("clauses_before", Json.Int before);
              ("clauses_after", Json.Int (Vec.length s.State.clauses)) ]
      end)

(* summary trace events + the final [done] line, shared by the main
   loop and the early-exit (root) paths *)
let emit_done obs s r =
  if Obs.tracing obs then begin
    Obs.emit_summary_events obs;
    Obs.event obs "done"
      [
        ( "result",
          Json.Str
            (match r with Sat _ -> "sat" | Unsat -> "unsat" | Timeout -> "timeout") );
        ("conflicts", Json.Int s.State.n_conflicts);
        ("decisions", Json.Int s.State.n_decisions);
      ]
  end

let solve_loop ?(assumptions = [||]) opts s enc t0 learn_summary =
  let obs = opts.obs in
  let assumptions = Array.map (State.canonical s) assumptions in
  (* conflict forensics: --dump-graph exports the implication graph of
     the first [dump_graph_max] conflicts as DOT files *)
  let dumped = ref 0 in
  let maybe_dump kind conflict =
    match opts.dump_graph with
    | Some dir when !dumped < opts.dump_graph_max ->
      incr dumped;
      let path =
        Filename.concat dir (Printf.sprintf "conflict_%04d.dot" !dumped)
      in
      (try
         let oc = open_out path in
         let fmt = Format.formatter_of_out_channel oc in
         Conflict.dump_dot s ~kind conflict fmt;
         Format.pp_print_flush fmt ();
         close_out oc
       with Sys_error _ -> ())
    | _ -> ()
  in
  let justifier =
    match (opts.structural, enc) with
    | true, Some enc -> Some (Justify.create enc)
    | _ -> None
  in
  let mux_pref =
    match learn_summary with
    | Some (sm : Predicate_learning.summary) ->
      (* in a session the problem can grow after learning ran; score
         arrays keep their learning-time size, new variables score 0 *)
      Some
        (fun v ->
           if v < Array.length sm.Predicate_learning.pos_score then
             (sm.Predicate_learning.pos_score.(v), sm.Predicate_learning.neg_score.(v))
           else (0, 0))
    | None -> None
  in
  let rng = Option.map (fun seed -> Random.State.make [| seed |]) opts.random_seed in
  let restart_base = 100 in
  let restart_num = ref 0 in
  let conflicts_left = ref (restart_base * luby 0) in
  let last_inproc = ref s.State.n_conflicts in
  let steps = ref 0 in
  let result = ref None in
  let rec handle_conflict ?(kind = "conflict") conflict =
    maybe_dump kind conflict;
    s.State.n_conflicts <- s.State.n_conflicts + 1;
    decr conflicts_left;
    let level = State.decision_level s in
    match Obs.span obs Obs.Conflict_analysis (fun () -> Conflict.analyze s conflict) with
    | exception Conflict.Root_conflict -> result := Some Unsat
    | { Conflict.clause; btlevel } ->
      Obs.observe_learned_len obs (Array.length clause);
      Obs.observe_backjump obs (level - btlevel);
      if Obs.tracing obs then begin
        Obs.event obs "conflict"
          [ ("lvl", Json.Int level); ("bt", Json.Int btlevel);
            ("len", Json.Int (Array.length clause)) ];
        Obs.event obs "learn"
          [ ("cause", Json.Str "conflict"); ("len", Json.Int (Array.length clause)) ]
      end;
      State.backtrack_to s btlevel;
      State.add_clause s clause;
      s.State.n_learned <- s.State.n_learned + 1;
      (* clause-exchange hook: only short clauses are worth shipping
         between portfolio/cube workers, so filter at the source *)
      (match opts.on_learn with
       | Some f when Array.length clause <= 2 -> f clause
       | _ -> ());
      State.decay_activities s;
      (* the learned clause is asserting at the backjump level *)
      let uip = clause.(0) in
      if not (State.entailed s uip) then begin
        let reason =
          Array.of_list
            (List.filter_map
               (fun a -> if a == uip then None else Some (negate_atom a))
               (Array.to_list clause))
        in
        (* asserting cannot conflict at the backjump level (its bounds
           are a prefix of the state in which the UIP held), but guard
           anyway: a follow-up conflict re-enters the analysis *)
        try State.assert_atom s uip (Some reason)
        with State.Conflict c ->
          if State.decision_level s = 0 then result := Some Unsat
          else handle_conflict c
      end
  in
  while !result = None do
    incr steps;
    if obs.Obs.enabled && !steps land 255 = 0 then begin
      Obs.progress_tick obs ~decisions:s.State.n_decisions
        ~conflicts:s.State.n_conflicts
        ~learned:(Vec.length s.State.clauses - s.State.n_root_clauses)
        ~depth:(State.decision_level s);
      Obs.heartbeat_tick obs ~decisions:s.State.n_decisions
        ~conflicts:s.State.n_conflicts ~propagations:s.State.n_propagations
        ~splits:s.State.n_splits ~lvl:(State.decision_level s)
    end;
    if
      !steps land 63 = 0
      && (Mono.now () > opts.deadline || Atomic.get opts.cancel)
    then result := Some Timeout
    else begin
      match Propagate.run ~deadline:opts.deadline ~cancel:opts.cancel s with
      | exception Propagate.Propagation_timeout -> result := Some Timeout
      | Some conflict ->
        if State.decision_level s = 0 then result := Some Unsat
        else handle_conflict conflict
      | None ->
        if opts.restarts && !conflicts_left <= 0 then begin
          incr restart_num;
          conflicts_left := restart_base * luby !restart_num;
          if Obs.tracing obs then
            Obs.event obs "restart"
              [ ("num", Json.Int !restart_num);
                ("conflicts", Json.Int s.State.n_conflicts) ];
          State.backtrack_to s 0;
          (match opts.reduce_db with
           | Some budget
             when Vec.length s.State.clauses - s.State.n_root_clauses > budget ->
             State.reduce_clauses s ~keep_recent:(budget / 2);
             if Obs.tracing obs then
               Obs.event obs "reduce_db"
                 [ ( "learned_db",
                     Json.Int (Vec.length s.State.clauses - s.State.n_root_clauses) ) ]
           | _ -> ());
          (* inprocessing: re-simplify the clause database at the
             first restart after every [inprocess] conflicts — the
             solver is back at level 0 here, the precondition of the
             pass *)
          if opts.inprocess > 0
             && s.State.n_conflicts - !last_inproc >= opts.inprocess
          then begin
            last_inproc := s.State.n_conflicts;
            simplify_db opts s
          end
        end
        else if State.decision_level s < Array.length assumptions then begin
          (* MiniSat-style assumption push: the next assumption becomes
             this level's decision.  An already-entailed assumption
             still opens a (dummy) level so levels 1..k stay in
             bijection with assumption indices across backjumps and
             restarts; a falsified one means unsat under the current
             assumptions (learned clauses remain globally valid either
             way — analysis resolves only through reasons, so
             assumption decisions appear negated in the clause, never
             resolved away). *)
          let a = assumptions.(State.decision_level s) in
          if State.falsified s a then result := Some Unsat
          else if State.entailed s a then State.new_level s
          else begin
            s.State.n_decisions <- s.State.n_decisions + 1;
            if Obs.tracing obs then
              Obs.event obs "decide"
                [ ("kind", Json.Str "assumption");
                  ("lvl", Json.Int (State.decision_level s + 1));
                  ("var", Json.Int (atom_var a)) ];
            State.new_level s;
            State.assert_atom s a None
          end
        end
        else begin
          match pick_split s with
          | Some v ->
            (* A shave-streak suspended propagation.  With free
               Booleans left, bisect the crawling interval so search
               progresses by halving instead of unit steps.  With the
               Boolean skeleton complete the stalled box is determined
               up to word intervals, so hand it straight to the
               certificate oracle: FME refutes an infeasible box in
               one call where bisection would still crawl, and a
               feasible box yields a model immediately.  Bisection
               remains the fallback when the oracle runs out of
               budget. *)
            if free_bool s then split_decide obs s v
            else begin
              match Final_check.run ~max_nodes:opts.max_final_nodes s with
              | Final_check.Model m when model_ok s m -> result := Some (Sat m)
              | Final_check.Model _ | Final_check.Resource_out ->
                split_decide obs s v
              | Final_check.Conflict_atoms atoms ->
                if State.decision_level s = 0 then result := Some Unsat
                else handle_conflict ~kind:"final_check" atoms
            end
          | None ->
          if s.State.qhead < Vec.length s.State.trail then
            (* the split heap drained to stale entries while the
               propagation queue is still pending: loop back into
               Propagate to resume the fixpoint before deciding *)
            ()
          else begin
          (* Decide(): structural justification first (Algorithm 2),
             then the activity heuristic *)
          let structural_decision =
            match justifier with
            | None -> None
            | Some j ->
              (try Obs.span obs Obs.Justification (fun () -> Justify.decide ?mux_pref j s)
               with Justify.Jconflict atoms ->
                 s.State.n_jconflicts <- s.State.n_jconflicts + 1;
                 if Obs.tracing obs then
                   Obs.event obs "jconflict"
                     [ ("lvl", Json.Int (State.decision_level s)) ];
                 if State.decision_level s = 0 then begin
                   result := Some Unsat;
                   None
                 end
                 else begin
                   handle_conflict ~kind:"jconflict" atoms;
                   (* skip deciding this round *)
                   Some (Pos (-1))
                 end)
          in
          match structural_decision with
          | Some (Pos v) when v = -1 -> () (* J-conflict handled *)
          | Some a ->
            s.State.n_decisions <- s.State.n_decisions + 1;
            if Obs.tracing obs then begin
              Obs.event obs "decide"
                [ ("kind", Json.Str "structural");
                  ("lvl", Json.Int (State.decision_level s + 1));
                  ("var", Json.Int (atom_var a)) ];
              match justifier with
              | Some j ->
                Obs.event obs "jfrontier"
                  [ ("size", Json.Int (Justify.frontier_size j s)) ]
              | None -> ()
            end;
            State.new_level s;
            State.assert_atom s a None
          | None ->
            let pick =
              match rng with
              | Some rng ->
                (match pick_random rng s with
                 | Some v -> Some v
                 | None -> pick_activity s)
              | None -> pick_activity s
            in
            (match pick with
             | Some v ->
               s.State.n_decisions <- s.State.n_decisions + 1;
               if Obs.tracing obs then
                 Obs.event obs "decide"
                   [ ( "kind",
                       Json.Str (match rng with Some _ -> "random" | None -> "activity") );
                     ("lvl", Json.Int (State.decision_level s + 1));
                     ("var", Json.Int v) ];
               State.new_level s;
               State.assert_atom s
                 (if s.State.phase.(v) then Pos v else Neg v)
                 None
             | None ->
               (* all Booleans assigned: certify the solution box *)
               (match Final_check.run ~max_nodes:opts.max_final_nodes s with
                | Final_check.Model m -> result := Some (Sat m)
                | Final_check.Resource_out -> result := Some Timeout
                | Final_check.Conflict_atoms atoms ->
                  if State.decision_level s = 0 then result := Some Unsat
                  else handle_conflict ~kind:"final_check" atoms))
          end
        end
    end
  done;
  let r = Option.get !result in
  emit_done obs s r;
  let relations, learn_time =
    match learn_summary with
    | Some sm -> (sm.Predicate_learning.relations, sm.Predicate_learning.learn_time)
    | None -> (0, 0.0)
  in
  {
    result = r;
    stats =
      {
        decisions = s.State.n_decisions;
        conflicts = s.State.n_conflicts;
        propagations = s.State.n_propagations;
        learned = s.State.n_learned;
        jconflicts = s.State.n_jconflicts;
        final_checks = s.State.n_final_checks;
        splits = s.State.n_splits;
        relations;
        learn_time;
        solve_time = Mono.now () -. t0;
      };
    learned_clauses = collected_clauses opts s;
    metrics = Obs.snapshot opts.obs;
  }

let root_outcome r opts s t0 learn_summary =
  emit_done opts.obs s r;
  let relations, learn_time =
    match learn_summary with
    | Some (sm : Predicate_learning.summary) -> (sm.relations, sm.learn_time)
    | None -> (0, 0.0)
  in
  {
    result = r;
    stats =
      {
        decisions = s.State.n_decisions;
        conflicts = s.State.n_conflicts;
        propagations = s.State.n_propagations;
        learned = s.State.n_learned;
        jconflicts = s.State.n_jconflicts;
        final_checks = s.State.n_final_checks;
        splits = s.State.n_splits;
        relations;
        learn_time;
        solve_time = Mono.now () -. t0;
      };
    learned_clauses = collected_clauses opts s;
    metrics = Obs.snapshot opts.obs;
  }

let solve_common ?(options = default) ?assumptions prob enc =
  let t0 = Mono.now () in
  validate_input_clauses prob;
  let s = State.create prob in
  s.State.split <- options.split;
  s.State.obs <- options.obs;
  if options.obs.Obs.enabled then
    Obs.attach_forensics options.obs ~nvars:(Problem.n_vars prob)
      ~nconstrs:(Array.length s.State.constrs)
      ~var_name:(Problem.var_name prob)
      ~constr_desc:(fun ci ->
        Format.asprintf "%a"
          (pp_constr ~name:(Problem.var_name prob) ())
          s.State.constrs.(ci));
  if options.seed_fanout then seed_activities s enc;
  match Propagate.run ~full:true ~deadline:options.deadline ~cancel:options.cancel s with
  | exception Propagate.Propagation_timeout -> root_outcome Timeout options s t0 None
  | Some _ -> root_outcome Unsat options s t0 None
  | None ->
    let learn_summary =
      (* a suspended root propagation (pending queue + split
         candidate) would make every probe inside predicate learning
         return immediately; skip it and let the main loop split and
         finish the fixpoint first *)
      let suspended = s.State.qhead < Vec.length s.State.trail in
      match (options.predicate_learning && not suspended, enc) with
      | true, Some enc ->
        Some
          (Obs.span options.obs Obs.Static_learn (fun () ->
               Predicate_learning.run ?threshold:options.learn_threshold
                 ~depth:options.learn_depth ~deadline:options.deadline s enc))
      | _ -> None
    in
    (match learn_summary with
     | Some sm when sm.Predicate_learning.root_unsat ->
       root_outcome Unsat options s t0 learn_summary
     | _ ->
       (* preprocessing after predicate learning so the learned
          relations participate in subsumption/strengthening *)
       if options.simplify then simplify_db options s;
       solve_loop ?assumptions options s enc t0 learn_summary)

let solve ?options ?assumptions enc =
  solve_common ?options ?assumptions enc.Encode.problem (Some enc)

let solve_problem ?options ?assumptions prob =
  solve_common ?options ?assumptions prob None

(* ---- persistent solver sessions (incremental interface) ----

   One [State.t] lives across many [solve] calls: learned clauses,
   predicate relations, VSIDS activities, phase saving and split
   nominations all carry over.  Constraints are append-only
   ([add_clause]/[add_atom], or appending to the underlying problem /
   encoder directly); each call syncs the kernel via [State.grow],
   which is sound because variable numbering is append-only on both
   sides.  Per-call queries are posed as assumptions — decided on
   levels 1..k of the search and popped afterwards.  Every learned
   clause is retained: conflict analysis resolves only through reasons
   (never through decisions), so assumption decisions show up negated
   in learned clauses ("guarded") and each lemma is implied by the
   clause database and the theory alone. *)
module Session = struct
  type session = {
    opts : options;
    prob : Problem.t;
    enc : Encode.t option;
    s : State.t;
    mutable learn_summary : Predicate_learning.summary option;
    mutable learn_pending : bool;
    mutable validated : int;  (* problem clauses validated so far *)
    mutable seeded : int;     (* circuit nodes activity-seeded so far *)
    mutable n_solves : int;
    mutable prev_stats : stats;
    mutable total_time : float;
  }

  type solve_result = {
    outcome : outcome;
    cumulative : stats;
    carried_clauses : int;
    carried_relations : int;
    n_solves : int;
  }

  let zero_stats =
    {
      decisions = 0;
      conflicts = 0;
      propagations = 0;
      learned = 0;
      jconflicts = 0;
      final_checks = 0;
      splits = 0;
      relations = 0;
      learn_time = 0.0;
      solve_time = 0.0;
    }

  let make ?(options = default) prob enc =
    validate_input_clauses prob;
    let s = State.create prob in
    s.State.split <- options.split;
    s.State.obs <- options.obs;
    if options.obs.Obs.enabled then begin
      Obs.attach_forensics options.obs ~nvars:(Problem.n_vars prob)
        ~nconstrs:(Array.length s.State.constrs)
        ~var_name:(Problem.var_name prob)
        ~constr_desc:(fun ci ->
          Format.asprintf "%a"
            (pp_constr ~name:(Problem.var_name prob) ())
            s.State.constrs.(ci));
      Obs.incr options.obs "session.creates";
      if Obs.tracing options.obs then
        Obs.event options.obs "session.create"
          [ ("vars", Json.Int (Problem.n_vars prob));
            ("clauses", Json.Int (Problem.n_clauses prob));
            ("constrs", Json.Int (Problem.n_constrs prob)) ]
    end;
    {
      opts = options;
      prob;
      enc;
      s;
      learn_summary = None;
      learn_pending = options.predicate_learning && Option.is_some enc;
      validated = Problem.n_clauses prob;
      seeded = 0;
      n_solves = 0;
      prev_stats = zero_stats;
      total_time = 0.0;
    }

  let create ?options (enc : Encode.t) = make ?options enc.Encode.problem (Some enc)
  let of_problem ?options prob = make ?options prob None

  let add_clause t cl = Problem.add_clause t.prob cl
  let add_atom t a = Problem.add_clause t.prob [| a |]
  let problem t = t.prob
  let state t = t.s

  (* activity seeding restricted to circuit nodes added since the last
     call, so VSIDS bumps earned by the old variables are preserved *)
  let seed_new t =
    match t.enc with
    | Some enc when t.opts.seed_fanout ->
      let c = enc.Encode.circuit in
      if c.Rtlsat_rtl.Ir.ncount > t.seeded then begin
        let fo = Structure.fanout_counts c in
        Rtlsat_rtl.Ir.nodes c
        |> List.iter (fun n ->
            if n.Rtlsat_rtl.Ir.id >= t.seeded then begin
              let v = enc.Encode.var_of.(n.Rtlsat_rtl.Ir.id) in
              if v >= 0 && Problem.is_bool_var t.s.State.prob v then begin
                t.s.State.activity.(v) <-
                  t.s.State.activity.(v)
                  +. float_of_int fo.(n.Rtlsat_rtl.Ir.id);
                Heap.bumped t.s.State.heap t.s.State.activity v
              end
            end);
        t.seeded <- c.Rtlsat_rtl.Ir.ncount
      end
    | _ -> ()

  let solve ?(assumptions = [||]) ?deadline t =
    let t0 = Mono.now () in
    let opts =
      match deadline with
      | Some d -> { t.opts with deadline = d }
      | None -> t.opts
    in
    let obs = opts.obs in
    State.backtrack_to t.s 0;
    let ncl = Problem.n_clauses t.prob in
    for i = t.validated to ncl - 1 do
      validate_clause t.prob (Problem.clause_at t.prob i)
    done;
    t.validated <- ncl;
    State.grow t.s;
    seed_new t;
    let carried_clauses =
      Vec.length t.s.State.clauses - t.s.State.n_root_clauses
    in
    let carried_relations =
      match t.learn_summary with
      | Some sm -> sm.Predicate_learning.relations
      | None -> 0
    in
    t.n_solves <- t.n_solves + 1;
    if obs.Obs.enabled then begin
      Obs.incr obs "session.solves";
      if Obs.tracing obs then
        Obs.event obs "solve.begin"
          [ ("call", Json.Int t.n_solves);
            ("assumptions", Json.Int (Array.length assumptions));
            ("carried_clauses", Json.Int carried_clauses);
            ("carried_relations", Json.Int carried_relations);
            ("vars", Json.Int (Problem.n_vars t.prob)) ]
    end;
    let raw =
      match Propagate.run ~full:true ~deadline:opts.deadline ~cancel:opts.cancel t.s with
      | exception Propagate.Propagation_timeout ->
        root_outcome Timeout opts t.s t0 t.learn_summary
      | Some _ -> root_outcome Unsat opts t.s t0 t.learn_summary
      | None ->
        if t.learn_pending then begin
          (* same suspension rule as the one-shot path: a pending split
             nomination would make every learning probe return
             immediately, so retry on the next call instead *)
          let suspended = t.s.State.qhead < Vec.length t.s.State.trail in
          if not suspended then begin
            (match t.enc with
             | Some enc ->
               t.learn_summary <-
                 Some
                   (Obs.span obs Obs.Static_learn (fun () ->
                        Predicate_learning.run ?threshold:opts.learn_threshold
                          ~depth:opts.learn_depth ~deadline:opts.deadline t.s
                          enc))
             | None -> ());
            t.learn_pending <- false
          end
        end;
        (match t.learn_summary with
         | Some sm when sm.Predicate_learning.root_unsat ->
           root_outcome Unsat opts t.s t0 t.learn_summary
         | _ ->
           (* per-call preprocessing: clauses learned by earlier calls
              and grown problem clauses get subsumed/strengthened
              before the new query runs; only non-root clauses are
              touched, so session growth stays sound *)
           if opts.simplify then simplify_db opts t.s;
           solve_loop ~assumptions opts t.s t.enc t0 t.learn_summary)
    in
    State.backtrack_to t.s 0;
    (* kernel counters are cumulative across the session; report the
       per-call delta in [outcome] and the running totals alongside *)
    let cum = raw.stats in
    let prev = t.prev_stats in
    t.total_time <- t.total_time +. cum.solve_time;
    let per_call =
      {
        decisions = cum.decisions - prev.decisions;
        conflicts = cum.conflicts - prev.conflicts;
        propagations = cum.propagations - prev.propagations;
        learned = cum.learned - prev.learned;
        jconflicts = cum.jconflicts - prev.jconflicts;
        final_checks = cum.final_checks - prev.final_checks;
        splits = cum.splits - prev.splits;
        relations = cum.relations - prev.relations;
        learn_time = cum.learn_time -. prev.learn_time;
        solve_time = cum.solve_time;
      }
    in
    t.prev_stats <- cum;
    {
      outcome = { raw with stats = per_call };
      cumulative = { cum with solve_time = t.total_time };
      carried_clauses;
      carried_relations;
      n_solves = t.n_solves;
    }

  (* split-cube export for the cube-and-conquer driver: drain the
     split heap's live nominations first (the hottest crawling
     intervals — exactly the variables stall-triggered splitting would
     bisect next), then top up with the highest-activity unfixed word
     variables.  Draining is destructive, which is fine: [pick_split]
     clears the whole heap per nomination batch anyway, and the next
     stall re-nominates. *)
  let split_candidates ?(max = 4) t =
    let s = t.s in
    State.backtrack_to s 0;
    let out = ref [] and n = ref 0 in
    let seen = Hashtbl.create 16 in
    let push v =
      if
        !n < max
        && (not (Hashtbl.mem seen v))
        && s.State.lb.(v) < s.State.ub.(v)
      then begin
        Hashtbl.add seen v ();
        out := (v, s.State.lb.(v), s.State.ub.(v)) :: !out;
        incr n
      end
    in
    while !n < max && not (Heap.is_empty s.State.split_heap) do
      push (Heap.pop s.State.split_heap s.State.activity)
    done;
    if !n < max then begin
      let rest = ref [] in
      for v = 0 to s.State.nv - 1 do
        if
          (not (Problem.is_bool_var s.State.prob v))
          && (not (Hashtbl.mem seen v))
          && s.State.lb.(v) < s.State.ub.(v)
        then rest := v :: !rest
      done;
      !rest
      |> List.sort (fun a b ->
          compare s.State.activity.(b) s.State.activity.(a))
      |> List.iter push
    end;
    List.rev !out
end
