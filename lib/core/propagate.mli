(** Hybrid deduction — the [Ddeduce()] of Algorithm 1.

    Event-driven propagation to bounds consistency: Boolean constraint
    propagation over (hybrid) clauses and interval constraint
    propagation over the arithmetic constraints (§2.2), every deduced
    fact carrying its antecedent atoms for the hybrid implication
    graph. *)

open Rtlsat_constr.Types

exception Propagation_timeout
(** Raised by {!run} when [deadline] passes mid-fixpoint, or when the
    [cancel] flag is observed set.  Interval propagation can converge
    arbitrarily slowly (a wrap-around constraint over a 61-bit word
    may tighten a bound by 1 per sweep), so the fixpoint loop itself
    has to watch the clock — callers only regain control between
    propagation calls. *)

val run :
  ?full:bool ->
  ?deadline:float ->
  ?cancel:bool Atomic.t ->
  State.t ->
  atom array option
(** Propagate to fixpoint; [Some conflict] on inconsistency (the atoms
    are entailed and jointly inconsistent).  [full] additionally scans
    every clause and constraint once first — required for the initial
    root propagation, where unit clauses have produced no events yet.
    [deadline] is compared against the monotonic clock
    ({!Rtlsat_obs.Mono.now}); [cancel] is polled at the same fuel gate
    (every 4096 events), bounding how long a cancelled worker keeps
    running.
    @raise Propagation_timeout when [deadline] passes or [cancel] is
    set. *)

val check_clause : State.t -> int -> unit
(** Examine one clause: no-op if satisfied or undetermined, asserts
    the unit atom, or @raise State.Conflict when falsified. *)

val propagate_constr : State.t -> int -> unit
(** Narrow the variables of one arithmetic constraint.
    @raise State.Conflict on empty domains. *)
