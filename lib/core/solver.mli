(** The hybrid DPLL solver (Algorithm 1), with the paper's two
    optional strategies: the structural decision strategy of §4
    ([structural], "+S" in Table 2) and static predicate learning of
    §3 ([predicate_learning], "+P").

    The solver decides Boolean variables and — beyond the paper, which
    decides Booleans only (§2) — bisects word intervals when interval
    propagation degenerates into a one-unit-per-sweep crawl ([split]).
    A shave-streak detected inside {!State.assert_atom} suspends the
    propagation fixpoint; the solver pushes an interval literal
    ([v ≥ mid+1] or [v ≤ mid]) as a decision on the hybrid trail, so
    conflict analysis learns clauses over split literals and backjumps
    across them exactly as for Boolean decisions.  Conflicts are
    analyzed over the hybrid implication graph; and when all Boolean
    variables are assigned and the split queue is empty, the solution
    box is certified by the FME/Omega oracle.

    Restriction: multi-atom clauses of the *input* problem must be
    purely Boolean (the RTL encoder guarantees this; learned hybrid
    clauses are unconstrained). *)

type options = {
  structural : bool;            (** §4 justification decisions (+S) *)
  predicate_learning : bool;    (** §3 static learning (+P) *)
  learn_threshold : int option; (** cap on learned relations; default
                                    [min #candidates 2000] *)
  learn_depth : int;            (** recursive-learning depth, default 1 *)
  deadline : float;             (** absolute wall-clock instant *)
  max_final_nodes : int;        (** box-search budget per final check *)
  restarts : bool;              (** Luby restarts *)
  split : bool;                 (** interval-split decisions on ICP
                                    shave-streaks; default on.  Off
                                    reproduces the paper's
                                    Boolean-only decision rule *)
  simplify : bool;              (** pre-search {!Hsimp} pass over the
                                    clause database (subsumption by
                                    interval inclusion, self-subsuming
                                    strengthening); default on.  Runs
                                    after predicate learning so the
                                    learned relations participate, and
                                    before every session call *)
  inprocess : int;              (** > 0: re-run the {!Hsimp} pass at
                                    the first restart after every this
                                    many conflicts; default 0 (off) *)
  seed_fanout : bool;           (** seed activities with fanout counts *)
  random_seed : int option;     (** randomized decision strategy (the
                                    baseline the paper's §5.1 compares
                                    against); overrides activities *)
  collect_learned : bool;       (** return the learned clauses *)
  reduce_db : int option;       (** learned-clause budget; on restarts
                                    beyond it, old long clauses are
                                    dropped ([None] keeps everything) *)
  obs : Rtlsat_obs.Obs.t;       (** observability handle (span timers,
                                    histograms, trace sink, progress);
                                    default {!Rtlsat_obs.Obs.disabled},
                                    which costs one branch per
                                    instrumentation site and never
                                    changes solver behaviour *)
  dump_graph : string option;   (** conflict forensics: when [Some dir],
                                    export the hybrid implication graph
                                    of the first [dump_graph_max]
                                    conflicts as GraphViz DOT files
                                    [conflict_NNNN.dot] in [dir], which
                                    must already exist *)
  dump_graph_max : int;         (** cap on exported conflict graphs;
                                    default 10 *)
  cancel : bool Atomic.t;       (** cooperative cancellation: when set,
                                    the solver returns [Timeout] at the
                                    next step-count gate (the same
                                    gates that check [deadline]).  The
                                    default flag is shared and never
                                    set; the parallel portfolio gives
                                    each race one flag and sets it when
                                    a first finisher wins *)
  on_learn : (Rtlsat_constr.Types.clause -> unit) option;
                                (** called for every conflict-learned
                                    clause of length ≤ 2, from the
                                    learning site.  Learned clauses are
                                    implied by the clause database and
                                    theory alone (assumptions appear
                                    negated, never resolved away), so
                                    they are valid in any solver over
                                    the same problem — the parallel
                                    driver ships them between workers.
                                    Must be cheap and must not raise *)
}

val default : options

val hdpll : options
(** Plain HDPLL [9]: no structure, no static learning. *)

val hdpll_s : options
(** HDPLL + structural decisions. *)

val hdpll_sp : options
(** HDPLL + structural decisions + predicate learning. *)

val hdpll_p : options
(** HDPLL + predicate learning only (Table 1 configuration). *)

type result =
  | Sat of int array   (** variable → value, a full model *)
  | Unsat
  | Timeout

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  learned : int;
  jconflicts : int;
  final_checks : int;
  splits : int;         (** interval-split decisions taken *)
  relations : int;      (** static predicate relations learned *)
  learn_time : float;   (** static learning seconds *)
  solve_time : float;   (** total seconds *)
}

type outcome = {
  result : result;
  stats : stats;
  learned_clauses : Rtlsat_constr.Types.clause list;
      (** conflict-learned and statically-learned clauses, in learning
          order; empty unless [collect_learned] *)
  metrics : Rtlsat_obs.Obs.snapshot;
      (** per-phase timings, histograms and counters from the run's
          [obs] handle; all-zero when observability was disabled.  The
          [stats] record above is unchanged — [metrics] extends it. *)
}

val solve :
  ?options:options ->
  ?assumptions:Rtlsat_constr.Types.atom array ->
  Rtlsat_constr.Encode.t ->
  outcome
(** Decide the encoded RTL problem.  [assumptions] are hybrid literals
    (Boolean or word-interval atoms) decided on levels 1..k before the
    free search; [Unsat] then means unsat {e under the assumptions}. *)

val solve_problem :
  ?options:options ->
  ?assumptions:Rtlsat_constr.Types.atom array ->
  Rtlsat_constr.Problem.t ->
  outcome
(** Decide a bare constraint problem (no netlist): the structural
    strategy and predicate learning are unavailable and silently
    disabled. *)

(** Persistent solver sessions: one kernel across many [solve] calls.

    Learned clauses, predicate relations, VSIDS activities, saved
    phases and split nominations survive between calls.  Constraints
    are append-only — push them with {!Session.add_clause} /
    {!Session.add_atom} or by appending to the underlying problem or
    encoder; the next [solve] syncs the kernel ({!State.grow}), which
    is sound because variable numbering is append-only.  Per-call
    queries go in as [assumptions], decided at levels 1..k of the
    search and popped when the call returns.

    Lemma retention: {e every} learned clause carries over.  Conflict
    analysis resolves only through reasons, never through decisions,
    so an assumption contributing to a conflict appears {e negated} in
    the learned clause (it is "guarded" in the ISSUE's sense); each
    lemma is therefore implied by the clause database and the theory
    alone and stays valid for every later call. *)
module Session : sig
  type session

  type solve_result = {
    outcome : outcome;
        (** result + {e per-call} stats (deltas of the kernel's
            cumulative counters; [solve_time] is this call's) *)
    cumulative : stats;  (** running totals across the session *)
    carried_clauses : int;
        (** learned clauses already in the database when the call
            started *)
    carried_relations : int;
        (** predicate relations learned by an earlier call *)
    n_solves : int;  (** 1-based index of this call *)
  }

  val create : ?options:options -> Rtlsat_constr.Encode.t -> session
  (** The encoder's problem and circuit stay owned by the caller and
      may keep growing (e.g. [Encode.extend] after unrolling more
      frames); each [solve] picks up whatever has been appended. *)

  val of_problem : ?options:options -> Rtlsat_constr.Problem.t -> session
  (** Bare-problem session: structural strategy and predicate learning
      silently disabled, as in {!solve_problem}. *)

  val add_clause : session -> Rtlsat_constr.Types.clause -> unit
  (** Append a clause to the underlying problem (multi-atom clauses
      must be purely Boolean, as for input problems). *)

  val add_atom : session -> Rtlsat_constr.Types.atom -> unit
  (** Append a unit clause. *)

  val problem : session -> Rtlsat_constr.Problem.t
  val state : session -> State.t

  val solve :
    ?assumptions:Rtlsat_constr.Types.atom array ->
    ?deadline:float ->
    session ->
    solve_result
  (** Sync appended constraints into the kernel, then decide under
      [assumptions].  [Unsat] with a nonempty [assumptions] means
      unsat under those assumptions; the session stays usable either
      way.  [deadline] overrides the session options' deadline for
      this call only. *)

  val split_candidates : ?max:int -> session -> (int * int * int) list
  (** [(v, lo, hi)] cube candidates for cube-and-conquer, best first:
      live split-heap nominations (stall-triggered bisection targets),
      topped up with the highest-activity word variables whose root
      interval is still splittable ([lo < hi], bounds at decision
      level 0).  At most [max] (default 4).  Drains the split heap
      destructively — harmless, the solver clears it per nomination
      batch anyway.  Backtracks the session to level 0. *)
end
