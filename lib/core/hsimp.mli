(** Pre/inprocessing over the hybrid clause database.

    Subsumption lifted to bound atoms by interval inclusion — an atom
    [a] implies an atom [b] when every assignment satisfying [a]
    satisfies [b] (e.g. [x <= 5] implies [x <= 9]), so a clause all of
    whose atoms imply into another clause subsumes it.  Self-subsuming
    strengthening drops an atom [b] from a clause [D] when some other
    clause [C] has an atom incompatible with [b] and the rest of [C]
    implies into [D \ {b}] — learned predicate relations, being root
    clauses, act as subsumers and strengtheners here.  Clauses
    satisfied under the root bounds are deleted and atoms falsified
    under them removed.

    Only non-root clauses are ever deleted or strengthened; root
    clauses (problem clauses and learned predicate relations)
    participate solely as subsumers, so [State.grow] and the session
    interface stay sound.  The pass must run at decision level 0;
    everything it removes is implied by the remaining database, so
    learned-clause invariants (each lemma implied by clauses + theory)
    are preserved. *)

type stats = {
  mutable subsumed : int;      (** clauses deleted (incl. root-satisfied) *)
  mutable strengthened : int;  (** atoms removed from surviving clauses *)
}

val run : State.t -> stats
(** Simplify the clause database in place (the clause vector is
    compacted, occurrence lists rebuilt).  Requires decision level 0.
    Sound mid-suspension: it never manufactures an empty clause, so a
    pending root conflict still surfaces through propagation. *)
