open Rtlsat_constr.Types
module Vec = Rtlsat_constr.Vec

type result = {
  clause : atom array;
  btlevel : int;
}

exception Root_conflict

(* ---- conflict forensics: DOT export of the hybrid implication graph
   (§2.4) reachable from one conflict.  Boolean literals render as
   ellipses, interval (bound) literals as boxes, decisions with a
   double border (interval-split decisions additionally tagged
   "[split]" in orange); the conflict sink is a red octagon labelled
   with the conflict kind ("conflict" / "jconflict" /
   "final_check"). ---- *)

let dot_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let dump_dot s ?(kind = "conflict") conflict fmt =
  let atom_label a =
    dot_escape (Format.asprintf "%a" (State.pp_atom s) a)
  in
  Format.fprintf fmt "digraph conflict {@.";
  Format.fprintf fmt "  rankdir=LR;@.";
  Format.fprintf fmt "  node [fontname=\"monospace\", fontsize=10];@.";
  Format.fprintf fmt
    "  conflict [label=\"%s\", shape=octagon, style=filled, \
     fillcolor=\"#e05050\", fontcolor=white];@."
    (dot_escape kind);
  (* one node per contributing trail entry; root facts (entailed by
     the initial domain or level 0) collapse into shared leaf nodes *)
  let visited = Hashtbl.create 64 in
  let roots = Hashtbl.create 16 in
  let node_decl idx (e : State.entry) =
    let is_bool = match e.State.eatom with Pos _ | Neg _ -> true | _ -> false in
    (* an interval atom with no reason is a split decision: same double
       border as a Boolean decision, its own colour + label tag *)
    let is_split = e.State.ereason = None && not is_bool in
    Format.fprintf fmt
      "  n%d [label=\"%s%s\\nL%d @@%d\", shape=%s%s, style=filled, \
       fillcolor=\"%s\"];@."
      idx (atom_label e.State.eatom)
      (if is_split then "\\n[split]" else "")
      e.State.elevel idx
      (if is_bool then "ellipse" else "box")
      (match e.State.ereason with None -> ", peripheries=2" | Some _ -> "")
      (if is_split then "#ffd9a8" else if is_bool then "#cfe2ff" else "#fff3c4")
  in
  (* returns the DOT node id of the entry entailing [a] *)
  let rec node_of a =
    match State.entailing_entry s a with
    | None ->
      let key = atom_label a in
      (match Hashtbl.find_opt roots key with
       | Some id -> id
       | None ->
         let id = Printf.sprintf "r%d" (Hashtbl.length roots) in
         Hashtbl.replace roots key id;
         Format.fprintf fmt
           "  %s [label=\"%s\\nroot\", shape=box, style=\"filled,dashed\", \
            fillcolor=\"#e8e8e8\"];@."
           id key;
         id)
    | Some idx ->
      if not (Hashtbl.mem visited idx) then begin
        Hashtbl.replace visited idx ();
        let e = Vec.get s.State.trail idx in
        node_decl idx e;
        match e.State.ereason with
        | None -> ()
        | Some reason ->
          Array.iter
            (fun b ->
               let src = node_of b in
               Format.fprintf fmt "  %s -> n%d;@." src idx)
            reason
      end;
      Printf.sprintf "n%d" idx
  in
  Array.iter
    (fun a ->
       let src = node_of a in
       Format.fprintf fmt "  %s -> conflict;@." src)
    conflict;
  Format.fprintf fmt "}@."

(* direction-aware strength: for two entailed atoms on the same
   (var, direction), the stronger one subsumes the weaker *)
let stronger a b =
  match (a, b) with
  | Ge (v, k1), Ge (v', k2) when v = v' -> Ge (v, max k1 k2)
  | Le (v, k1), Le (v', k2) when v = v' -> Le (v, min k1 k2)
  | _ -> a (* Pos/Neg: identical *)

let dir_key = function
  | Pos v -> (v, 0)
  | Neg v -> (v, 1)
  | Ge (v, _) -> (v, 2)
  | Le (v, _) -> (v, 3)

let analyze s conflict =
  let entry_of a =
    match State.entailing_entry s a with
    | None -> None
    | Some idx ->
      let e = Vec.get s.State.trail idx in
      if e.State.elevel = 0 then None else Some (idx, e)
  in
  (* conflict level: maximal level among the conflict atoms *)
  let current =
    Array.fold_left
      (fun acc a ->
         match entry_of a with None -> acc | Some (_, e) -> max acc e.State.elevel)
      0 conflict
  in
  if current = 0 then raise Root_conflict;
  (* pending: trail index -> strongest needed atom at the conflict level
     lower: (var, direction) -> strongest needed atom below it *)
  let pending : (int, atom) Hashtbl.t = Hashtbl.create 16 in
  let lower : (int * int, atom) Hashtbl.t = Hashtbl.create 16 in
  let add a =
    State.bump_var s (atom_var a);
    match entry_of a with
    | None -> ()
    | Some (idx, e) ->
      if e.State.elevel = current then begin
        match Hashtbl.find_opt pending idx with
        | None -> Hashtbl.replace pending idx a
        | Some b -> Hashtbl.replace pending idx (stronger a b)
      end
      else begin
        let key = dir_key a in
        match Hashtbl.find_opt lower key with
        | None -> Hashtbl.replace lower key a
        | Some b -> Hashtbl.replace lower key (stronger a b)
      end
  in
  Array.iter add conflict;
  let uip = ref None in
  let idx = ref (Vec.length s.State.trail - 1) in
  while !uip = None do
    if !idx < 0 then
      (* cannot happen on a well-formed conflict; fail loudly *)
      invalid_arg "Conflict.analyze: exhausted trail";
    (match Hashtbl.find_opt pending !idx with
     | None -> ()
     | Some needed ->
       if Hashtbl.length pending = 1 then uip := Some needed
       else begin
         Hashtbl.remove pending !idx;
         let e = Vec.get s.State.trail !idx in
         match e.State.ereason with
         | Some reason -> Array.iter add reason
         | None ->
           (* a decision with other pending entries would contradict
              trail order (the decision is the level's first entry) *)
           invalid_arg "Conflict.analyze: resolved into a decision"
       end);
    decr idx
  done;
  let uip = Option.get !uip in
  (* clause minimization (self-subsumption): a kept atom [a] is
     redundant when the antecedents of its establishing event are all
     either root facts or implied by other atoms of the cut — then
     resolving [a] away cannot weaken the clause *)
  let implies stronger weaker =
    match (stronger, weaker) with
    | Pos v, Pos u | Neg v, Neg u -> v = u
    | Ge (v, k1), Ge (u, k2) -> v = u && k1 >= k2
    | Le (v, k1), Le (u, k2) -> v = u && k1 <= k2
    | _ -> false
  in
  let atoms () = Hashtbl.fold (fun _ a acc -> a :: acc) lower [] in
  let redundant a =
    match entry_of a with
    | None -> true (* root-entailed: trivially redundant in the cut *)
    | Some (_, e) ->
      (match e.State.ereason with
       | None -> false (* decision *)
       | Some reason ->
         Array.for_all
           (fun r ->
              (match entry_of r with None -> true | Some _ -> false)
              || implies uip r
              || List.exists (fun b -> b != a && implies b r) (atoms ()))
           reason)
  in
  let removed = ref true in
  while !removed do
    removed := false;
    Hashtbl.iter
      (fun key a ->
         if redundant a then begin
           Hashtbl.remove lower key;
           removed := true
         end)
      (Hashtbl.copy lower)
  done;
  let tail = Hashtbl.fold (fun _ a acc -> negate_atom a :: acc) lower [] in
  let clause = Array.of_list (negate_atom uip :: tail) in
  let btlevel =
    Hashtbl.fold
      (fun _ a acc ->
         match entry_of a with None -> acc | Some (_, e) -> max acc e.State.elevel)
      lower 0
  in
  { clause; btlevel }
