open Rtlsat_constr.Types
module Vec = Rtlsat_constr.Vec

type stats = {
  mutable subsumed : int;
  mutable strengthened : int;
}

(* every atom is a half-interval bound: (var, lower?, k) where
   [true, k] means v >= k and [false, k] means v <= k (Booleans are
   the one-bit special case, cf. State.bound_of) *)
let bound_of = function
  | Pos v -> (v, true, 1)
  | Neg v -> (v, false, 0)
  | Ge (v, k) -> (v, true, k)
  | Le (v, k) -> (v, false, k)

(* a ⇒ b: the interval of [a] is included in the interval of [b] *)
let imp a b =
  let va, la, ka = bound_of a and vb, lb, kb = bound_of b in
  va = vb && la = lb && (if la then ka >= kb else ka <= kb)

(* a ∧ b unsatisfiable: opposite bounds on one variable that cross *)
let incompatible a b =
  let va, la, ka = bound_of a and vb, lb, kb = bound_of b in
  va = vb && la <> lb && (if la then ka > kb else kb > ka)

(* C subsumes D: every atom of C implies some atom of D, so C ⊨ D *)
let subsumes c d =
  Array.for_all (fun a -> Array.exists (fun b -> imp a b) d) c

(* cost cap: only short clauses act as subsumers/strengtheners, the
   standard occurrence-list trade-off *)
let max_subsumer_len = 10

(* the candidate variable of [c] with the fewest clause occurrences *)
let best_var s c =
  let occ v = List.length s.State.clause_occs.(v) in
  let best = ref (atom_var c.(0)) in
  Array.iter
    (fun a ->
       let v = atom_var a in
       if occ v < occ !best then best := v)
    c;
  !best

let run s =
  if State.decision_level s <> 0 then invalid_arg "Hsimp.run: decision level";
  let st = { subsumed = 0; strengthened = 0 } in
  let n = Vec.length s.State.clauses in
  if n = 0 then st
  else begin
    let dead = Array.make n false in
    (* 1. root-bound cleaning of non-root clauses: a clause with an
       entailed atom is permanently satisfied, a falsified atom can
       never help.  Never shrink to the empty clause — a fully
       falsified clause (possible only mid-suspension) is left for
       propagation to turn into the root conflict. *)
    for ci = 0 to n - 1 do
      if not (State.is_root_clause s ci) then begin
        let cl = Vec.get s.State.clauses ci in
        if Array.exists (fun a -> State.entailed s a) cl then begin
          dead.(ci) <- true;
          st.subsumed <- st.subsumed + 1
        end
        else begin
          let kept =
            Array.to_list cl
            |> List.filter (fun a -> not (State.falsified s a))
            |> Array.of_list
          in
          if Array.length kept < Array.length cl && Array.length kept >= 1
          then begin
            st.strengthened <-
              st.strengthened + (Array.length cl - Array.length kept);
            Vec.set s.State.clauses ci kept
          end
        end
      end
    done;
    (* 2. subsumption + self-subsuming strengthening to (bounded)
       fixpoint.  Candidates come through the occurrence lists of the
       rarest variable; occurrence entries can be stale after an
       in-place strengthening, so membership is re-checked by [imp] /
       [incompatible] on the current clause content. *)
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds < 3 do
      changed := false;
      incr rounds;
      for ci = 0 to n - 1 do
        if not dead.(ci) then begin
          let c = Vec.get s.State.clauses ci in
          let len = Array.length c in
          if len > 0 && len <= max_subsumer_len then begin
            (* backward subsumption: kill non-root clauses implied by c *)
            List.iter
              (fun di ->
                 if di < n && di <> ci && (not dead.(di))
                    && not (State.is_root_clause s di)
                 then begin
                   let d = Vec.get s.State.clauses di in
                   if subsumes c d then begin
                     dead.(di) <- true;
                     st.subsumed <- st.subsumed + 1;
                     changed := true
                   end
                 end)
              s.State.clause_occs.(best_var s c);
            (* self-subsuming strengthening: for an atom a of c, find a
               clause d with an atom b incompatible with a such that
               every atom of c either clashes with b or implies into
               d \ {b}; then c ∧ d ⊨ d \ {b} and b can be dropped *)
            Array.iter
              (fun a ->
                 List.iter
                   (fun di ->
                      if di < n && di <> ci && (not dead.(di))
                         && not (State.is_root_clause s di)
                      then begin
                        let d = Vec.get s.State.clauses di in
                        let nd = Array.length d in
                        if nd > 1 then begin
                          let ok_against b bi a' =
                            incompatible a' b
                            ||
                            (let found = ref false in
                             Array.iteri
                               (fun j b' ->
                                  if j <> bi && imp a' b' then found := true)
                               d;
                             !found)
                          in
                          let bi = ref 0 and hit = ref (-1) in
                          while !hit < 0 && !bi < nd do
                            let b = d.(!bi) in
                            if incompatible a b
                               && Array.for_all (ok_against b !bi) c
                            then hit := !bi;
                            incr bi
                          done;
                          if !hit >= 0 then begin
                            let k = !hit in
                            let d' =
                              Array.init (nd - 1) (fun j ->
                                  if j < k then d.(j) else d.(j + 1))
                            in
                            Vec.set s.State.clauses di d';
                            st.strengthened <- st.strengthened + 1;
                            changed := true
                          end
                        end
                      end)
                   s.State.clause_occs.(atom_var a))
              c
          end
        end
      done
    done;
    (* 3. compact: rebuild the clause vector and occurrence lists
       without the dead clauses, preserving every root clause
       (mirrors State.reduce_clauses) *)
    if st.subsumed > 0 || st.strengthened > 0 then begin
      let kept = ref [] in
      for ci = n - 1 downto 0 do
        if not dead.(ci) then
          kept :=
            (Vec.get s.State.clauses ci, State.is_root_clause s ci) :: !kept
      done;
      Vec.clear s.State.clauses;
      Vec.clear s.State.root_flags;
      s.State.n_root_clauses <- 0;
      Array.fill s.State.clause_occs 0 s.State.nv [];
      List.iter (fun (cl, root) -> State.add_clause s ~root cl) !kept
    end;
    st
  end
