open Rtlsat_constr.Types
module Vec = Rtlsat_constr.Vec
module Problem = Rtlsat_constr.Problem
module Interval = Rtlsat_interval.Interval
module Obs = Rtlsat_obs.Obs
module Hist = Rtlsat_obs.Hist

type reason = atom array option

type entry = {
  eatom : atom;
  prev : int;
  elevel : int;
  ereason : reason;
}

exception Conflict of atom array

type t = {
  prob : Problem.t;
  mutable nv : int;
  mutable lb : int array;
  mutable ub : int array;
  mutable init_lb : int array;
  mutable init_ub : int array;
  trail : entry Vec.t;
  lim : int Vec.t;
  mutable lo_ev : (int * int) list array;
  mutable hi_ev : (int * int) list array;
  clauses : clause Vec.t;
  root_flags : bool Vec.t;
  mutable clause_occs : int list array;
  mutable n_root_clauses : int;
  mutable n_prob_clauses : int;
  mutable constrs : constr array;
  mutable constr_occs : int list array;
  mutable qhead : int;
  mutable activity : float array;
  mutable var_inc : float;
  heap : Heap.t;
  mutable phase : bool array;
  mutable n_decisions : int;
  mutable n_conflicts : int;
  mutable n_propagations : int;
  mutable n_learned : int;
  mutable n_jconflicts : int;
  mutable n_final_checks : int;
  mutable n_reductions : int;
  (* interval-split decisions: per-variable shave-streak counters feed
     a candidate heap the solver bisects from.  The counters are plain
     ints updated on every word-level narrowing regardless of whether
     observability is attached, so observing a solve can never change
     it. *)
  mutable split_streak : int array;
  mutable split_dir : bool array;
  split_heap : Heap.t;
  mutable split : bool;
  mutable n_splits : int;
  mutable obs : Obs.t;
}

(* a narrowing counts toward a variable's streak when it shaves at
   most [split_max_shave] units off a domain still at least
   [split_min_width] wide; [split_streak_limit] consecutive such
   shaves nominate the variable for bisection.  The width floor is
   deliberately far below Forensics.stall_min_width: splitting must
   keep chasing the crawl down to small domains, while stall
   *reporting* only cares about the pathological wide ones. *)
let split_max_shave = 8
let split_streak_limit = 512
let split_min_width = 16

let decision_level s = Vec.length s.lim

let canonical s a =
  match a with
  | Pos _ | Neg _ -> a
  | Ge (v, k) when Problem.is_bool_var s.prob v ->
    if k >= 1 then Pos v else invalid_arg "State.canonical: trivial Boolean atom"
  | Le (v, k) when Problem.is_bool_var s.prob v ->
    if k <= 0 then Neg v else invalid_arg "State.canonical: trivial Boolean atom"
  | a -> a

(* internal view of an atom as a (var, direction, bound) triple;
   [`Lo k] means v >= k, [`Hi k] means v <= k *)
let bound_of = function
  | Pos v -> (v, `Lo, 1)
  | Neg v -> (v, `Hi, 0)
  | Ge (v, k) -> (v, `Lo, k)
  | Le (v, k) -> (v, `Hi, k)

let entailed s a =
  match bound_of a with
  | v, `Lo, k -> s.lb.(v) >= k
  | v, `Hi, k -> s.ub.(v) <= k

let falsified s a =
  match bound_of a with
  | v, `Lo, k -> s.ub.(v) < k
  | v, `Hi, k -> s.lb.(v) > k

let bool_value s v =
  if s.lb.(v) >= 1 then 1 else if s.ub.(v) <= 0 then 0 else -1

let dom s v = Interval.make s.lb.(v) s.ub.(v)

let mk_lo s v k = canonical s (Ge (v, k))
let mk_hi s v k = canonical s (Le (v, k))

let note_shave s v ~shaved ~width =
  if shaved <= split_max_shave && width >= split_min_width then begin
    let n = s.split_streak.(v) + 1 in
    s.split_streak.(v) <- n;
    if n >= split_streak_limit && s.split && not (Heap.mem s.split_heap v) then
      Heap.insert s.split_heap s.activity v
  end
  else s.split_streak.(v) <- 0

let assert_atom s a reason =
  let v, dir, k = bound_of a in
  match dir with
  | `Lo ->
    if k > s.lb.(v) then begin
      if k > s.ub.(v) then begin
        let opposing = mk_hi s v (k - 1) in
        let expl = match reason with None -> [||] | Some r -> r in
        raise (Conflict (Array.append expl [| opposing |]))
      end;
      let idx = Vec.length s.trail in
      let prev = s.lb.(v) in
      Vec.push s.trail
        { eatom = mk_lo s v k; prev; elevel = decision_level s; ereason = reason };
      s.lb.(v) <- k;
      s.lo_ev.(v) <- (k, idx) :: s.lo_ev.(v);
      if k = 1 && Problem.is_bool_var s.prob v then s.phase.(v) <- true
      else if not (Problem.is_bool_var s.prob v) then begin
        let width = s.ub.(v) - s.lb.(v) in
        s.split_dir.(v) <- true;
        note_shave s v ~shaved:(k - prev) ~width;
        if s.obs.Obs.enabled then begin
          Hist.observe s.obs.Obs.interval_width width;
          Obs.note_narrow s.obs ~var:v ~shaved:(k - prev) ~width
        end
      end
    end
  | `Hi ->
    if k < s.ub.(v) then begin
      if k < s.lb.(v) then begin
        let opposing = mk_lo s v (k + 1) in
        let expl = match reason with None -> [||] | Some r -> r in
        raise (Conflict (Array.append expl [| opposing |]))
      end;
      let idx = Vec.length s.trail in
      let prev = s.ub.(v) in
      Vec.push s.trail
        { eatom = mk_hi s v k; prev; elevel = decision_level s; ereason = reason };
      s.ub.(v) <- k;
      s.hi_ev.(v) <- (k, idx) :: s.hi_ev.(v);
      if k = 0 && Problem.is_bool_var s.prob v then s.phase.(v) <- false
      else if not (Problem.is_bool_var s.prob v) then begin
        let width = s.ub.(v) - s.lb.(v) in
        s.split_dir.(v) <- false;
        note_shave s v ~shaved:(prev - k) ~width;
        if s.obs.Obs.enabled then begin
          Hist.observe s.obs.Obs.interval_width width;
          Obs.note_narrow s.obs ~var:v ~shaved:(prev - k) ~width
        end
      end
    end

let new_level s = Vec.push s.lim (Vec.length s.trail)

let backtrack_to s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.lim lvl in
    while Vec.length s.trail > bound do
      let e = Vec.pop s.trail in
      let v, dir, _ = bound_of e.eatom in
      (match dir with
       | `Lo ->
         s.lb.(v) <- e.prev;
         s.lo_ev.(v) <- List.tl s.lo_ev.(v)
       | `Hi ->
         s.ub.(v) <- e.prev;
         s.hi_ev.(v) <- List.tl s.hi_ev.(v));
      if Problem.is_bool_var s.prob v && bool_value s v = -1 then
        Heap.insert s.heap s.activity v
    done;
    Vec.shrink s.lim lvl;
    s.qhead <- min s.qhead bound
  end

let entailing_entry s a =
  let v, dir, k = bound_of a in
  match dir with
  | `Lo ->
    if s.init_lb.(v) >= k then None
    else begin
      (* events newest first with decreasing values; the entailing
         entry is the oldest one whose value is still >= k *)
      let rec find best = function
        | (value, idx) :: rest when value >= k -> find (Some idx) rest
        | _ -> best
      in
      find None s.lo_ev.(v)
    end
  | `Hi ->
    if s.init_ub.(v) <= k then None
    else begin
      let rec find best = function
        | (value, idx) :: rest when value <= k -> find (Some idx) rest
        | _ -> best
      in
      find None s.hi_ev.(v)
    end

let add_clause s ?(root = false) cl =
  let ci = Vec.length s.clauses in
  Vec.push s.clauses cl;
  Vec.push s.root_flags root;
  if root then s.n_root_clauses <- s.n_root_clauses + 1;
  let seen = Hashtbl.create 4 in
  Array.iter
    (fun a ->
       let v = atom_var a in
       if not (Hashtbl.mem seen v) then begin
         Hashtbl.replace seen v ();
         s.clause_occs.(v) <- ci :: s.clause_occs.(v)
       end)
    cl

let is_root_clause s ci = Vec.get s.root_flags ci

(* in a session, root (problem) clauses may arrive after learned ones,
   so "root" is a per-clause flag rather than a prefix of the database *)
let reduce_clauses s ~keep_recent =
  let total = Vec.length s.clauses in
  if total - s.n_root_clauses > keep_recent then begin
    let cutoff = total - keep_recent in
    let kept = ref [] in
    for ci = total - 1 downto 0 do
      let cl = Vec.get s.clauses ci in
      let root = Vec.get s.root_flags ci in
      if root || ci >= cutoff || Array.length cl <= 4 then
        kept := (cl, root) :: !kept
    done;
    Vec.clear s.clauses;
    Vec.clear s.root_flags;
    s.n_root_clauses <- 0;
    Array.fill s.clause_occs 0 s.nv [];
    List.iter (fun (cl, root) -> add_clause s ~root cl) !kept;
    s.n_reductions <- s.n_reductions + 1
  end

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nv - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  Heap.bumped s.heap s.activity v;
  Heap.bumped s.split_heap s.activity v

let decay_activities s = s.var_inc <- s.var_inc /. 0.95

let pp_atom s fmt a = pp_atom ~name:(Problem.var_name s.prob) () fmt a

let pp_trail s fmt () =
  Vec.iteri
    (fun i e ->
       Format.fprintf fmt "%4d L%d %a%s@." i e.elevel (pp_atom s) e.eatom
         (match e.ereason with None -> " (decision)" | Some _ -> ""))
    s.trail

let create prob =
  let nv = Problem.n_vars prob in
  let lb = Array.make nv 0 and ub = Array.make nv 0 in
  for v = 0 to nv - 1 do
    let d = Problem.initial_domain prob v in
    lb.(v) <- Interval.lo d;
    ub.(v) <- Interval.hi d
  done;
  let s =
    {
      prob;
      nv;
      lb;
      ub;
      init_lb = Array.copy lb;
      init_ub = Array.copy ub;
      trail = Vec.create ~dummy:{ eatom = Pos 0; prev = 0; elevel = 0; ereason = None } ();
      lim = Vec.create ~dummy:0 ();
      lo_ev = Array.make nv [];
      hi_ev = Array.make nv [];
      clauses = Vec.create ~dummy:[||] ();
      root_flags = Vec.create ~dummy:false ();
      clause_occs = Array.make nv [];
      n_root_clauses = 0;
      n_prob_clauses = 0;
      constrs = Problem.constrs prob;
      constr_occs = Array.make nv [];
      qhead = 0;
      activity = Array.make nv 0.0;
      var_inc = 1.0;
      heap = Heap.create ();
      phase = Array.make nv false;
      n_decisions = 0;
      n_conflicts = 0;
      n_propagations = 0;
      n_learned = 0;
      n_jconflicts = 0;
      n_final_checks = 0;
      n_reductions = 0;
      split_streak = Array.make nv 0;
      split_dir = Array.make nv true;
      split_heap = Heap.create ();
      split = false;
      n_splits = 0;
      obs = Obs.disabled;
    }
  in
  (* clause and constraint occurrence lists *)
  List.iter (fun cl -> add_clause s ~root:true cl) (Problem.clauses prob);
  s.n_prob_clauses <- Problem.n_clauses prob;
  Array.iteri
    (fun ci c ->
       List.iter (fun v -> s.constr_occs.(v) <- ci :: s.constr_occs.(v)) (constr_vars c))
    s.constrs;
  (* decision heap holds every Boolean variable *)
  for v = 0 to nv - 1 do
    if Problem.is_bool_var prob v then Heap.insert s.heap s.activity v
  done;
  s

(* session support: absorb everything appended to the problem since
   the last sync.  Variable numbering is append-only on both sides, so
   existing indices — and every learned clause and activity referring
   to them — stay valid; only the per-variable arrays reallocate.
   Must run at decision level 0 (bounds arrays hold root values). *)
let grow s =
  if decision_level s <> 0 then invalid_arg "State.grow: not at level 0";
  let nv = Problem.n_vars s.prob in
  if nv > s.nv then begin
    let old = s.nv in
    let grown a fill =
      let b = Array.make nv fill in
      Array.blit a 0 b 0 old;
      b
    in
    s.lb <- grown s.lb 0;
    s.ub <- grown s.ub 0;
    for v = old to nv - 1 do
      let d = Problem.initial_domain s.prob v in
      s.lb.(v) <- Interval.lo d;
      s.ub.(v) <- Interval.hi d
    done;
    s.init_lb <- grown s.init_lb 0;
    s.init_ub <- grown s.init_ub 0;
    Array.blit s.lb old s.init_lb old (nv - old);
    Array.blit s.ub old s.init_ub old (nv - old);
    s.lo_ev <- grown s.lo_ev [];
    s.hi_ev <- grown s.hi_ev [];
    s.clause_occs <- grown s.clause_occs [];
    s.constr_occs <- grown s.constr_occs [];
    s.activity <- grown s.activity 0.0;
    s.phase <- grown s.phase false;
    s.split_streak <- grown s.split_streak 0;
    s.split_dir <- grown s.split_dir true;
    s.nv <- nv;
    for v = old to nv - 1 do
      if Problem.is_bool_var s.prob v then Heap.insert s.heap s.activity v
    done
  end;
  let old_cn = Array.length s.constrs in
  let ncn = Problem.n_constrs s.prob in
  if ncn > old_cn then begin
    s.constrs <- Problem.constrs s.prob;
    for ci = old_cn to ncn - 1 do
      List.iter
        (fun v -> s.constr_occs.(v) <- ci :: s.constr_occs.(v))
        (constr_vars s.constrs.(ci))
    done
  end;
  let ncl = Problem.n_clauses s.prob in
  for i = s.n_prob_clauses to ncl - 1 do
    add_clause s ~root:true (Problem.clause_at s.prob i)
  done;
  s.n_prob_clauses <- ncl
