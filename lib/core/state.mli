(** Solver kernel: variable bounds, the hybrid trail, the hybrid
    implication graph and the clause database.

    This is the machinery behind §2.4's hybrid implication graph, in
    the bound-atom formulation: every fact on the trail is an atom
    ([b], [¬b], [w ≥ k], [w ≤ k]) together with its decision level and
    an explanation (the antecedent atoms that implied it).  Boolean
    assignments are the singleton bounds [⟨1,1⟩]/[⟨0,0⟩], so the whole
    trail is uniform and conflict analysis works over one atom
    vocabulary. *)

open Rtlsat_constr.Types

type reason = atom array option
(** [None] for decisions; otherwise the antecedent atoms, all entailed
    when the entry was pushed. *)

type entry = {
  eatom : atom;      (** the new fact, in canonical bound form *)
  prev : int;        (** bound value this event replaced (for undo) *)
  elevel : int;
  ereason : reason;
}

exception Conflict of atom array
(** The payload atoms are all entailed and jointly inconsistent. *)

type t = {
  prob : Rtlsat_constr.Problem.t;
  mutable nv : int;
  mutable lb : int array;
  mutable ub : int array;
  mutable init_lb : int array;
  mutable init_ub : int array;
  trail : entry Rtlsat_constr.Vec.t;
  lim : int Rtlsat_constr.Vec.t;            (** decision-level boundaries *)
  mutable lo_ev : (int * int) list array;   (** var → (new lb, trail idx), newest first *)
  mutable hi_ev : (int * int) list array;   (** var → (new ub, trail idx), newest first *)
  clauses : clause Rtlsat_constr.Vec.t;
  root_flags : bool Rtlsat_constr.Vec.t;
      (** parallel to [clauses]: [true] for problem ("root") clauses.
          A per-clause flag, not a prefix — in a session, appended
          problem clauses land after learned ones *)
  mutable clause_occs : int list array;     (** var → clause indices *)
  mutable n_root_clauses : int;             (** count of root-flagged clauses *)
  mutable n_prob_clauses : int;
      (** how many of the problem's clauses have been loaded; the sync
          cursor for {!grow} *)
  mutable constrs : constr array;
  mutable constr_occs : int list array;     (** var → constraint indices *)
  mutable qhead : int;
  mutable activity : float array;
  mutable var_inc : float;
  heap : Heap.t;
  mutable phase : bool array;
  (* statistics *)
  mutable n_decisions : int;
  mutable n_conflicts : int;
  mutable n_propagations : int;
  mutable n_learned : int;
  mutable n_jconflicts : int;
  mutable n_final_checks : int;
  mutable n_reductions : int;
  (* interval-split decisions *)
  mutable split_streak : int array;
      (** per-variable count of consecutive tiny shaves; plain ints,
          maintained on every word narrowing whether or not
          observability is attached *)
  mutable split_dir : bool array;
      (** direction of the variable's last narrowing: [true] when the
          lower bound crawled up, [false] when the upper bound crawled
          down; the bisection decides the arm that keeps chasing it *)
  split_heap : Heap.t;
      (** activity-ordered candidates whose streak crossed
          {!split_streak_limit}; only populated when [split] is on *)
  mutable split : bool;
      (** master switch, set by the solver from its options; when off
          the kernel behaves exactly as if splits did not exist *)
  mutable n_splits : int;
  (* observability *)
  mutable obs : Rtlsat_obs.Obs.t;
      (** instrumentation handle threaded through every kernel client;
          {!Rtlsat_obs.Obs.disabled} (the default) makes every
          instrumentation site a single load-and-branch *)
}

val split_max_shave : int
(** A narrowing counts toward the streak when it shaves at most this
    many units. *)

val split_streak_limit : int
(** Consecutive tiny shaves before the variable is nominated for
    bisection. *)

val split_min_width : int
(** Narrowings of domains below this width never count toward a
    streak; far below {!Rtlsat_obs.Forensics.stall_min_width} so
    splitting keeps chasing the crawl into small domains. *)

val create : Rtlsat_constr.Problem.t -> t
(** Builds the kernel, loads the problem's clauses and constraints and
    registers occurrence lists.  Unit clauses are asserted at level 0
    ({!propagate-time} conflicts there surface as {!Conflict}). *)

val grow : t -> unit
(** Absorb variables, clauses and constraints appended to the problem
    since [create] (or the previous [grow]).  Variable numbering is
    append-only, so existing indices, learned clauses and activities
    stay valid; the per-variable arrays reallocate in place.  New
    problem clauses are registered as root.  Must be called at
    decision level 0.
    @raise Invalid_argument above level 0. *)

val decision_level : t -> int
val new_level : t -> unit
val backtrack_to : t -> int -> unit

val entailed : t -> atom -> bool
val falsified : t -> atom -> bool
val bool_value : t -> var -> int
(** -1 unassigned, 0, or 1. *)

val dom : t -> var -> Rtlsat_interval.Interval.t

val assert_atom : t -> atom -> reason -> unit
(** Tighten a bound / assign a Boolean.  No-op when already entailed.
    @raise Conflict when it empties the domain; the conflict contains
    the reason atoms plus the opposing bound atom. *)

val canonical : t -> atom -> atom
(** Bound atoms over Boolean variables become [Pos]/[Neg]. *)

val add_clause : t -> ?root:bool -> clause -> unit
(** Register a clause (learned by default; [~root:true] for problem
    clauses, which database reduction never drops) with occurrence
    lists; the caller is responsible for any immediate propagation. *)

val is_root_clause : t -> int -> bool
(** Whether the clause at this database index is root (problem-level)
    as opposed to learned. *)

val reduce_clauses : t -> keep_recent:int -> unit
(** Learned-clause database reduction: drop long, old learned clauses,
    keeping every original clause, every binary/short learned clause
    and the [keep_recent] most recent ones.  Safe at any decision
    level — trail explanations are copied atom arrays and never
    reference clause storage. *)

val entailing_entry : t -> atom -> int option
(** Trail index of the event that first entailed the (currently
    entailed) atom; [None] when the initial domain already entails it. *)

val bump_var : t -> var -> unit
val decay_activities : t -> unit

val note_shave : t -> var -> shaved:int -> width:int -> unit
(** Feed one word-level narrowing into the split-streak machinery:
    tiny shaves of wide domains extend the streak (nominating the
    variable once it crosses {!split_streak_limit}), anything else
    resets it.  Called from {!assert_atom}; exposed for tests. *)

val pp_atom : t -> Format.formatter -> atom -> unit
val pp_trail : t -> Format.formatter -> unit -> unit
