(** Hybrid conflict analysis (§2.4): find a cut of the hybrid
    implication graph that covers all implication paths to the
    conflict, negate it into a learned hybrid clause, and compute the
    non-chronological backtracking level. *)

open Rtlsat_constr.Types

type result = {
  clause : atom array;  (** learned clause; the asserting atom first *)
  btlevel : int;
}

exception Root_conflict
(** The conflict does not depend on any decision: the problem is
    unsatisfiable. *)

val analyze : State.t -> atom array -> result
(** [analyze s conflict] runs first-UIP resolution over the trail.
    The [conflict] atoms must all be entailed and jointly
    inconsistent.  Bumps the activity of involved variables.
    @raise Root_conflict when every conflict atom holds at level 0. *)

val dump_dot :
  State.t -> ?kind:string -> atom array -> Format.formatter -> unit
(** Export the slice of the hybrid implication graph reaching this
    conflict as GraphViz DOT, before any backtracking.  Boolean
    literals are ellipses, interval (bound) literals boxes, decisions
    double-bordered, root facts dashed; the conflict sink is labelled
    [kind] ("conflict", "jconflict" or "final_check").  Used by
    [rtlsat solve --dump-graph DIR]. *)
