let mul a b =
  if a = 0 || b = 0 then Some 0
  else if a = min_int || b = min_int then None
  else if abs a <= max_int / abs b then Some (a * b)
  else None

let add a b =
  let s = a + b in
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then None else Some s

let sub a b = if b = min_int then None else add a (-b)
