(** Overflow-checked native-int arithmetic.

    The word-level layers (ICP in [Rtlsat_core.Propagate], the box
    search, the final-check substitution) evaluate Σ cᵢ·xᵢ with
    coefficients up to 2^60 and word bounds up to 2^61 - 1, so
    individual products can exceed the native int range.  These
    helpers return [None] instead of wrapping; callers skip the
    affected check or tightening, which is always sound for optional
    propagation and falls back to exact {!Bigint} evaluation where a
    definite answer is required. *)

val mul : int -> int -> int option
val add : int -> int -> int option
val sub : int -> int -> int option
