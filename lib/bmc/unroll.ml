open Rtlsat_rtl

type t = {
  combo : Ir.circuit;
  source : Ir.circuit;
  mutable frames : int;
  map : (int * int, Ir.node) Hashtbl.t;
}

let combo u = u.combo
let source u = u.source
let frames u = u.frames

let node_at u n f = Hashtbl.find u.map (n.Ir.id, f)

let input_at u n f =
  match n.Ir.op with
  | Ir.Input -> node_at u n f
  | _ -> invalid_arg "Unroll.input_at: not a primary input"

let copy_node ~free_init combo map f n =
  let get n f = Hashtbl.find map (n.Ir.id, f) in
  let name = Option.map (fun s -> Printf.sprintf "%s@%d" s f) n.Ir.name in
  let fresh =
    match n.Ir.op with
    | Ir.Input -> Netlist.input combo ?name n.Ir.width
    | Ir.Const v -> Netlist.const combo ~width:n.Ir.width v
    | Ir.Reg r ->
      if f = 0 then begin
        if free_init then
          (* arbitrary initial state: the induction step starts from
             any state, not just reset *)
          Netlist.input combo
            ?name:(Option.map (fun s -> s ^ "@init") n.Ir.name)
            n.Ir.width
        else Netlist.const combo ~width:n.Ir.width r.Ir.init
      end
      else begin
        match r.Ir.next with
        | None -> invalid_arg "Unroll.unroll: unconnected register"
        | Some nx -> get nx (f - 1)
      end
    | Ir.Not a -> Netlist.not_ combo (get a f)
    | Ir.And ns ->
      Netlist.and_ combo ?name (Array.to_list (Array.map (fun m -> get m f) ns))
    | Ir.Or ns ->
      Netlist.or_ combo ?name (Array.to_list (Array.map (fun m -> get m f) ns))
    | Ir.Xor (a, b) -> Netlist.xor_ combo (get a f) (get b f)
    | Ir.Mux { sel; t; e } ->
      Netlist.mux combo ?name ~sel:(get sel f) ~t:(get t f) ~e:(get e f) ()
    | Ir.Add { a; b; wrap } ->
      if wrap then Netlist.add combo (get a f) (get b f)
      else Netlist.add_ext combo (get a f) (get b f)
    | Ir.Sub { a; b } -> Netlist.sub combo (get a f) (get b f)
    | Ir.Mul_const { k; a } -> Netlist.mul_const combo k (get a f)
    | Ir.Cmp { op; a; b } -> Netlist.cmp combo ?name op (get a f) (get b f)
    | Ir.Concat { hi; lo } -> Netlist.concat combo ~hi:(get hi f) ~lo:(get lo f)
    | Ir.Extract { a; msb; lsb } -> Netlist.extract combo (get a f) ~msb ~lsb
    | Ir.Zext a -> Netlist.zext combo (get a f) ~width:n.Ir.width
    | Ir.Shl { a; k } -> Netlist.shl combo (get a f) k
    | Ir.Shr { a; k } -> Netlist.shr combo (get a f) k
    | Ir.Bitand (a, b) -> Netlist.bitand combo (get a f) (get b f)
    | Ir.Bitor (a, b) -> Netlist.bitor combo (get a f) (get b f)
    | Ir.Bitxor (a, b) -> Netlist.bitxor combo (get a f) (get b f)
  in
  Hashtbl.replace map (n.Ir.id, f) fresh

(* copy frames [lo..hi-1] and register the outputs of frame hi-1
   (names carry the frame, so successive extensions never clash) *)
let add_frames ~free_init u lo hi =
  let nodes = Ir.nodes u.source in
  for f = lo to hi - 1 do
    List.iter (copy_node ~free_init u.combo u.map f) nodes
  done;
  List.iter
    (fun (oname, n) ->
       Netlist.output u.combo
         (Printf.sprintf "%s@%d" oname (hi - 1))
         (Hashtbl.find u.map (n.Ir.id, hi - 1)))
    u.source.Ir.outputs

let unroll ?(free_init = false) source ~frames =
  if frames < 1 then invalid_arg "Unroll.unroll: frames < 1";
  let u =
    {
      combo = Netlist.create (source.Ir.cname ^ "_u" ^ string_of_int frames);
      source;
      frames;
      map = Hashtbl.create 1024;
    }
  in
  add_frames ~free_init u 0 frames;
  u

let extend u ~frames =
  if frames > u.frames then begin
    (* frame 0 already exists, so [free_init] is irrelevant here: new
       frames always chain registers to the previous frame *)
    add_frames ~free_init:false u u.frames frames;
    u.frames <- frames
  end
