open Rtlsat_rtl

type semantics = Final | Any | Never

type instance = {
  source : Ir.circuit;
  prop : Ir.node;
  bound : int;
  semantics : semantics;
  unrolled : Unroll.t;
  violation : Ir.node;
}

(* prefix sharing: repeated [make] on the same physical circuit and
   property reuses one unroll, extending it frame-incrementally when a
   larger bound comes along — a bound ladder over one (design, prop)
   unrolls frame 0 exactly once.  Keyed by physical circuit equality
   (a rebuilt, structurally identical circuit gets a fresh unroll, so
   callers that mutate their source are unaffected) AND by property,
   because encoders encode every node present: sharing one unroll
   across properties would make each instance's encoded problem absorb
   the violation logic of whatever ran before it, perturbing variable
   numbering and hence search order between a batch run and a solo
   run of the same instance.  Small cap so fuzzing's thousands of
   throwaway circuits don't pile up. *)
let unroll_cache : ((Ir.circuit * int) * Unroll.t) list ref = ref []
let unroll_cache_cap = 4

(* [make] must be idempotent on a shared unroll: repeated instances of
   the same (prop, bound, semantics) reuse one violation node instead
   of appending a fresh copy to the shared combo each time — otherwise
   two textually identical instances encode different circuits and
   solve nondeterministically.  Keyed per unroll, so evicting a cache
   entry drops its memo with it. *)
let violation_memo : (Unroll.t * (int * int * semantics, Ir.node) Hashtbl.t) list ref =
  ref []

let violation_memo_for unrolled =
  match List.find_opt (fun (u, _) -> u == unrolled) !violation_memo with
  | Some (_, tbl) -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    let keep =
      List.filter
        (fun (u, _) -> List.exists (fun (_, u') -> u == u') !unroll_cache)
        !violation_memo
    in
    violation_memo := (unrolled, tbl) :: keep;
    tbl

let shared_unroll source ~prop ~frames =
  let key = (source, prop.Ir.id) in
  let hit (c, p) = c == source && p = prop.Ir.id in
  match List.find_opt (fun (k, _) -> hit k) !unroll_cache with
  | Some (_, u) when Unroll.frames u <= frames ->
    if Unroll.frames u < frames then Unroll.extend u ~frames;
    u
  | Some _ ->
    (* the cached unroll is deeper than this bound: encoders encode
       every frame present, so handing it out would make this
       instance pay for frames it never constrains.  An exact-depth
       private unroll keeps the problem at the instance's own size;
       the deeper entry stays cached for its own ladder. *)
    Unroll.unroll source ~frames
  | None ->
    let u = Unroll.unroll source ~frames in
    let keep = List.filteri (fun i _ -> i < unroll_cache_cap - 1) !unroll_cache in
    unroll_cache := (key, u) :: keep;
    u

let violation_node unrolled ~prop ~bound ~semantics ~name =
  let combo = Unroll.combo unrolled in
  match semantics with
  | Final -> Netlist.not_ combo (Unroll.node_at unrolled prop (bound - 1))
  | Any ->
    let frames =
      List.init bound (fun f -> Netlist.not_ combo (Unroll.node_at unrolled prop f))
    in
    (match frames with
     | [ one ] -> one
     | many -> Netlist.or_ combo ~name many)
  | Never ->
    let frames =
      List.init bound (fun f -> Netlist.not_ combo (Unroll.node_at unrolled prop f))
    in
    (match frames with
     | [ one ] -> one
     | many -> Netlist.and_ combo ~name many)

let make source ~prop ~bound ?(semantics = Final) () =
  if not (Ir.is_bool prop) then invalid_arg "Bmc.make: property must be Boolean";
  let unrolled = shared_unroll source ~prop ~frames:bound in
  let memo = violation_memo_for unrolled in
  let key = (prop.Ir.id, bound, semantics) in
  let violation =
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
      let v = violation_node unrolled ~prop ~bound ~semantics ~name:"violation" in
      Netlist.output (Unroll.combo unrolled)
        (Printf.sprintf "violation@%d" bound)
        v;
      Hashtbl.add memo key v;
      v
  in
  { source; prop; bound; semantics; unrolled; violation }

(* ---- bound sweeps: one unroll, one violation selector per bound ----

   The incremental-session workload: a design checked at a list of
   bounds shares a single frame-incrementally extended unroll, and
   each bound's violation objective is a distinct node of the same
   combinational circuit.  Solvers pose the per-bound question as the
   assumption literal of that node instead of baking a unit clause in,
   so one session answers every bound. *)

type sweep = {
  sw_source : Ir.circuit;
  sw_prop : Ir.node;
  sw_semantics : semantics;
  sw_unrolled : Unroll.t;
  sw_selectors : (int, Ir.node) Hashtbl.t;
}

let sweep source ~prop ?(semantics = Final) () =
  if not (Ir.is_bool prop) then invalid_arg "Bmc.sweep: property must be Boolean";
  {
    sw_source = source;
    sw_prop = prop;
    sw_semantics = semantics;
    sw_unrolled = Unroll.unroll source ~frames:1;
    sw_selectors = Hashtbl.create 16;
  }

let sweep_unrolled sw = sw.sw_unrolled

let sweep_violation sw ~bound =
  if bound < 1 then invalid_arg "Bmc.sweep_violation: bound < 1";
  match Hashtbl.find_opt sw.sw_selectors bound with
  | Some v -> v
  | None ->
    Unroll.extend sw.sw_unrolled ~frames:bound;
    let v =
      violation_node sw.sw_unrolled ~prop:sw.sw_prop ~bound
        ~semantics:sw.sw_semantics
        ~name:(Printf.sprintf "violation@%d" bound)
    in
    Netlist.output
      (Unroll.combo sw.sw_unrolled)
      (Printf.sprintf "violation@%d" bound)
      v;
    Hashtbl.replace sw.sw_selectors bound v;
    v

let sweep_instance sw ~bound =
  let violation = sweep_violation sw ~bound in
  {
    source = sw.sw_source;
    prop = sw.sw_prop;
    bound;
    semantics = sw.sw_semantics;
    unrolled = sw.sw_unrolled;
    violation;
  }

let witness_ok inst value =
  (* extract per-frame input valuations from the unrolled model *)
  let inputs_at f =
    List.map
      (fun n -> (n, value (Unroll.input_at inst.unrolled n f)))
      (Ir.inputs inst.source)
  in
  let traces =
    Array.of_list (Sim.run inst.source ~inputs:(List.init inst.bound inputs_at))
  in
  let prop_at f = Sim.value traces.(f) inst.prop in
  match inst.semantics with
  | Final -> prop_at (inst.bound - 1) = 0
  | Any ->
    let rec any f = f < inst.bound && (prop_at f = 0 || any (f + 1)) in
    any 0
  | Never ->
    let rec all f = f >= inst.bound || (prop_at f = 0 && all (f + 1)) in
    all 0
