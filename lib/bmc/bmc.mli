(** Bounded model checking of safety properties — the workload
    generator for §3.1 and §5.

    A safety property is a Boolean circuit signal that must be 1 in
    every reachable cycle.  [b01_1(10)]-style instances ask for a
    counterexample within 10 time frames; the instance is satisfiable
    iff the property can be violated. *)

open Rtlsat_rtl

type semantics =
  | Final  (** violation in the last frame exactly *)
  | Any    (** violation anywhere within the bound *)
  | Never
      (** bounded guarantee: the signal must hold at least once within
          the bound; the violation is "it stays low in every frame" *)

type instance = {
  source : Ir.circuit;
  prop : Ir.node;       (** width-1 signal expected to hold (be 1) *)
  bound : int;
  semantics : semantics;
  unrolled : Unroll.t;
  violation : Ir.node;  (** Boolean node of the unrolled circuit that
                            is 1 iff the property is violated *)
}

val make : Ir.circuit -> prop:Ir.node -> bound:int -> ?semantics:semantics -> unit -> instance
(** Unrolls the circuit and builds the violation objective.  Default
    semantics: [Final].

    Repeated calls on the {e same physical} circuit and property share
    one unroll, extended frame-incrementally — an ascending bound
    ladder no longer re-unrolls frames 0..k-1 at every bound.  Sharing
    is deliberately scoped: a different property, or a bound below the
    shared unroll's depth, gets a private exact-depth unroll, so an
    instance never encodes frames or violation logic it does not own
    and a batch run solves the same problem a solo run would.
    Repeated identical calls return the {e same} violation node rather
    than appending a fresh copy. *)

(** {2 Bound sweeps}

    One frame-incrementally extended unroll per (circuit, property),
    with a distinct violation selector node per bound.  A session-based
    solver poses each bound as the assumption literal of its selector,
    carrying learned clauses across the whole sweep. *)

type sweep

val sweep : Ir.circuit -> prop:Ir.node -> ?semantics:semantics -> unit -> sweep
(** Start a sweep (initially one frame is unrolled).  Default
    semantics: [Final]. *)

val sweep_unrolled : sweep -> Unroll.t
(** The shared unroll; grows as bounds are requested. *)

val sweep_violation : sweep -> bound:int -> Ir.node
(** The violation selector for [bound]: extends the unroll to [bound]
    frames if needed and memoizes the selector node (registered as
    output ["violation@<bound>"]).  @raise Invalid_argument if
    [bound < 1]. *)

val sweep_instance : sweep -> bound:int -> instance
(** A per-bound [instance] view over the shared unroll — e.g. to
    replay a witness through {!witness_ok}. *)

val witness_ok : instance -> (Ir.node -> int) -> bool
(** [witness_ok inst value] replays a model of the *unrolled* circuit
    (queried per unrolled node by [value]) through the sequential
    simulator and confirms that the property is indeed violated at the
    frame the semantics requires.  This validates SAT answers
    end-to-end against the RTL. *)
