(** Time-frame expansion of sequential circuits.

    Unrolling replaces each register by its reset constant in frame 0
    and by (a copy of) its next-state function from the previous frame
    afterwards; primary inputs get one fresh copy per frame.  The
    result is the purely combinational circuit the RTL satisfiability
    engines operate on — "b01_1(10) is a BMC problem … expanded for 10
    time-frames" (§3.1). *)

open Rtlsat_rtl

type t

val unroll : ?free_init:bool -> Ir.circuit -> frames:int -> t
(** Unroll [frames] time frames.  With [free_init] (default false)
    frame-0 registers become fresh primary inputs instead of their
    reset constants — the arbitrary starting state of a k-induction
    step.  @raise Invalid_argument if [frames < 1] or a register is
    unconnected. *)

val extend : t -> frames:int -> unit
(** Frame-incremental unrolling: grow to [frames] time frames, reusing
    frames [0..frames u - 1] untouched and appending only the new
    copies to the same combinational circuit.  The new last frame's
    outputs are registered as ["name@frame"].  No-op when [frames] is
    not larger than the current count. *)

val combo : t -> Ir.circuit
(** The unrolled, purely combinational circuit. *)

val source : t -> Ir.circuit
val frames : t -> int

val node_at : t -> Ir.node -> int -> Ir.node
(** [node_at u n f] is the copy of source node [n] in frame [f]
    (0-based).  @raise Not_found for foreign nodes or frames. *)

val input_at : t -> Ir.node -> int -> Ir.node
(** Same, restricted to primary inputs. *)
