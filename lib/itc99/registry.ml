(* b01/b02/b04/b13 are the paper's benchmark subset; the rest extend
   the suite (see DESIGN.md) *)
let circuits = [ "b01"; "b02"; "b03"; "b04"; "b05"; "b06"; "b07"; "b08"; "b09"; "b10"; "b11"; "b13" ]

let build = function
  | "b01" -> B01.build ()
  | "b02" -> B02.build ()
  | "b03" -> B03.build ()
  | "b04" -> B04.build ()
  | "b05" -> B05.build ()
  | "b06" -> B06.build ()
  | "b07" -> B07.build ()
  | "b08" -> B08.build ()
  | "b09" -> B09.build ()
  | "b10" -> B10.build ()
  | "b11" -> B11.build ()
  | "b13" -> B13.build ()
  | _ -> raise Not_found

let properties name = List.map fst (snd (build name))

(* [instance] keeps one built circuit per name so that every bound and
   engine sees the same physical source and Bmc's unroll-prefix cache
   can hit across them.  Private to [instance]: [build] still hands
   out fresh circuits, since some callers register extra outputs on
   what they get back. *)
let instance_circuits :
  (string, Rtlsat_rtl.Ir.circuit * (string * Rtlsat_rtl.Ir.node) list) Hashtbl.t =
  Hashtbl.create 12

let instance ~circuit ~prop ~bound =
  let c, props =
    match Hashtbl.find_opt instance_circuits circuit with
    | Some r -> r
    | None ->
      let r = build circuit in
      Hashtbl.add instance_circuits circuit r;
      r
  in
  let p = List.assoc prop props in
  Rtlsat_bmc.Bmc.make c ~prop:p ~bound ()

let instance_name ~circuit ~prop ~bound =
  Printf.sprintf "%s_%s(%d)" circuit prop bound
