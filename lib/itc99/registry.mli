(** The benchmark suite: reconstructed ITC'99 circuits and the safety
    properties behind the [bXX_N(bound)] instances of Tables 1 and 2.
    See DESIGN.md for the substitution notes. *)

open Rtlsat_rtl

val circuits : string list
(** The paper's subset (b01, b02, b04, b13) plus the suite extension
    (b03, b06, b07, b09, b10, b11). *)

val build : string -> Ir.circuit * (string * Ir.node) list
(** Fresh circuit plus its named properties.
    @raise Not_found for unknown circuit names. *)

val properties : string -> string list
(** Property names of a circuit. *)

val instance : circuit:string -> prop:string -> bound:int -> Rtlsat_bmc.Bmc.instance
(** [instance ~circuit:"b13" ~prop:"5" ~bound:50] is the paper's
    [b13_5(50)].  Unlike [build], the underlying circuit is memoized
    per name so repeated instances (across bounds and engines) share
    one unroll prefix via [Bmc.make]'s cache.
    @raise Not_found for unknown names. *)

val instance_name : circuit:string -> prop:string -> bound:int -> string
(** Pretty row label, e.g. ["b13_5(50)"]. *)
