(** Differential fuzzing campaign driver.

    Each iteration draws a fresh case from {!Gen.circuit} (instance
    seed = campaign seed + index, so any failure is replayable on its
    own with [--count 1]), cross-checks it with {!Oracle.check}, and on
    failure minimizes it with {!Shrink.shrink} before recording it —
    the recorded circuit text is ready to drop into [test/corpus/].

    Obs counters (on the handle in the config, when enabled):
    [fuzz.instances], [fuzz.sat], [fuzz.unsat], [fuzz.timeouts],
    [fuzz.discrepancies], [fuzz.shrink_steps]. *)

module Obs = Rtlsat_obs.Obs
module Json = Rtlsat_obs.Json
module Engines = Rtlsat_harness.Engines

type config = {
  seed : int;
  count : int;                  (** instances to attempt *)
  gen : Gen.cfg;
  engines : Engines.engine list;
  req : Rtlsat_harness.Req.t;
      (** request context of every engine run — its [timeout] bounds
          each run, its [simplify]/[inprocess] select pre/inprocessing
          inside every engine, see {!Oracle.check} *)
  deadline : float;             (** campaign wall-clock budget, seconds *)
  cert_budget : int;            (** Unsat certificate matrices, see {!Oracle.check} *)
  shrink_steps : int;           (** oracle evaluations per shrink *)
  obs : Obs.t;
      (** campaign-level telemetry (fuzz.* counters, progress events);
          distinct from [req.obs], which would instrument the
          individual engine runs *)
  log : (int -> Case.t -> Oracle.outcome -> unit) option;
      (** per-instance progress callback (index, case, outcome) *)
}

val default : config
(** seed 0, count 100, {!Gen.default}, all six engines, 2s/run (a
    fuzz campaign favors instance throughput over engine
    completeness; timeouts never count as disagreement), no deadline,
    cert budget 4096, 128 shrink steps, disabled obs. *)

type failure = {
  f_index : int;                (** campaign index of the instance *)
  f_seed : int;                 (** generator seed (replayable alone) *)
  f_case : Case.t;              (** the {e shrunk} case *)
  f_outcome : Oracle.outcome;   (** oracle outcome on the shrunk case *)
  f_steps : int;                (** shrink oracle evaluations spent *)
}

type summary = {
  instances : int;              (** actually run (≤ count under a deadline) *)
  sat : int;
  unsat : int;
  timeouts : int;               (** instances where no engine answered *)
  wall : float;
  failures : failure list;
  stopped_early : bool;         (** deadline hit before [count] *)
}

val instance_seed : config -> int -> int
(** The generator seed of campaign instance [i]. *)

val run : config -> summary

val failure_reason : Oracle.outcome -> string
(** ["disagreement"], ["witness-rejected:<engine>"], ["unsat-refuted"]
    or ["none"]. *)

val failure_json : failure -> Json.t
val summary_json : config -> summary -> Json.t
(** Schema ["rtlsat.fuzz/1"] via {!Rtlsat_harness.Report.fuzz_json};
    includes the obs snapshot when the config's handle is enabled. *)
