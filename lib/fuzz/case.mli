(** A fuzz case: a circuit, the safety property under test and the BMC
    parameters, with a textual round-trip so failing cases can be
    committed to [test/corpus/] and replayed by [dune runtest].

    The serialized form is the {!Rtlsat_rtl.Text} netlist format plus
    one directive comment line

    {v
    # fuzz-case bound=3 semantics=any
    v}

    and the convention that the output port named ["prop"] holds the
    property (falling back to the first output port).  [semantics] is
    one of [final], [any], [never] (see {!Rtlsat_bmc.Bmc.semantics});
    both fields default to [bound=1]/[final] when the directive is
    absent, so any plain netlist with a Boolean output is a valid
    case. *)

open Rtlsat_rtl

type t = {
  circuit : Ir.circuit;
  prop : Ir.node;         (** width-1 signal expected to hold (be 1) *)
  bound : int;
  semantics : Rtlsat_bmc.Bmc.semantics;
}

val make :
  Ir.circuit -> prop:Ir.node -> bound:int -> semantics:Rtlsat_bmc.Bmc.semantics -> t
(** @raise Invalid_argument if [prop] is not Boolean or [bound < 1]. *)

val instance : t -> Rtlsat_bmc.Bmc.instance
(** Unroll into a BMC instance (see {!Rtlsat_bmc.Bmc.make}). *)

val semantics_name : Rtlsat_bmc.Bmc.semantics -> string
(** ["final"], ["any"], ["never"]. *)

val to_string : t -> string
(** Directive line + canonical {!Rtlsat_rtl.Text} form; the property
    node is exported as output port ["prop"]. *)

val of_string : string -> t
(** @raise Failure on malformed netlists, unknown directives, or a
    missing/non-Boolean property output. *)

val of_file : string -> t
(** @raise Sys_error on I/O failure, [Failure] as {!of_string}. *)
