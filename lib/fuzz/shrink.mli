(** Greedy minimizer for failing fuzz cases.

    Starting from a case for which [still_failing] holds, repeatedly
    tries size-reducing rewrites and keeps the first one that still
    fails, until no rewrite helps or the step budget is exhausted:

    - lower the BMC bound;
    - replace an operator node by one of its same-width fanins
      (dropping the node and everything only it needed);
    - replace a node by a constant (0, or 1 for Booleans);
    - narrow a primary input to roughly half its width (zero-extended
      back, so the circuit stays well-typed);
    - dead logic is pruned after every accepted rewrite.

    The rewrites only need to {e preserve failure}, not semantics, so
    the shrunk circuit is usually far smaller than the generated one.
    Every candidate is re-validated by calling [still_failing] (one
    full differential-oracle run); the returned step count is the
    number of such validations, mirrored in the fuzz driver's
    [fuzz.shrink_steps] counter. *)

val node_count : Case.t -> int
(** Number of live nodes (the cone of the property plus register
    feedback), i.e. the size being minimized. *)

val prune : Case.t -> Case.t
(** Rebuild the case keeping only live nodes.  The circuit is copied;
    the input case is not mutated. *)

val shrink :
  ?max_steps:int -> still_failing:(Case.t -> bool) -> Case.t -> Case.t * int
(** [shrink ~still_failing case] is the minimized case and the number
    of [still_failing] evaluations spent (capped by [max_steps],
    default 256).  [case] itself is assumed failing and is returned
    (pruned) if no rewrite preserves the failure. *)
